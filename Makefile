# Build/test entry points. ROADMAP.md tier-1 verification is
# `make build test`; `make race` is the concurrency gate for the
# parallel sweep engine and must stay green.

GO ?= go

.PHONY: all build test race bench benchsmoke fabric-smoke cover fuzz fuzzsmoke chaos-smoke crash-smoke failover-smoke daemon-smoke nemesis-smoke storm-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package. The packet-level campaigns
# are slow under the detector, so long-running cases honour -short;
# the determinism and cache-contention tests still run.
race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/parallel/ ./internal/survival/ ./internal/metrics/

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark (catches benchmarks that no longer
# compile or panic), then the hot-path drift gate: the four core
# benchmarks rerun at the fixed-iteration BENCH methodology and fail
# if the minimum of 5 runs drifts >15% above the ns/op baseline in
# BENCH_fabric.json (CI gate).
benchsmoke:
	$(GO) test -run xxx -bench=. -benchtime=1x ./...
	$(GO) test -run xxx -bench 'ProbeRound|SendDataDirect|RelayForward|QueryOfferChurn' \
		-benchtime 1000x -count 5 ./internal/core/ | $(GO) run ./cmd/benchgate -baseline BENCH_fabric.json

# Switched-fabric gate: the fabric graph, forwarding, Monte Carlo and
# scenario-layer tests, then the shipped fat-tree scenario (ToR outage
# under the forwarding-invariant checker) through drsim, and one small
# fabric survivability table. Deterministic end to end, so any diff is
# a real regression.
fabric-smoke:
	$(GO) test ./internal/topology/ ./internal/conn/ ./internal/netsim/ ./internal/montecarlo/
	$(GO) test ./internal/scenario/ -run 'Topology|FatTree|RoundTrip'
	$(GO) run ./cmd/drsim -config examples/scenarios/fat-tree.json
	$(GO) run ./cmd/drsurvive -topology fatTree:k=4 -f 1,2,4 -mc 20000

# Coverage pass: per-package profile plus the aggregate per-function
# summary (the `total:` line at the end is the headline number).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 25

# Short fuzz session for the scenario loader (regression corpus runs
# in plain `make test` as well).
fuzz:
	$(GO) test ./internal/scenario/ -run FuzzLoad -fuzz FuzzLoad -fuzztime 30s

# Ten-second fuzz pass over the wire-format frame parser — the surface
# the chaos layer's frame corruption exercises (CI gate).
fuzzsmoke:
	$(GO) test -run='^$$' -fuzz=FuzzFrame -fuzztime=10s ./internal/routing/wire

# Gray-failure gate: the chaos injector and campaign-harness tests
# (golden tables, worker-count determinism) plus one quick live
# campaign and the flapping-rail damping scenario. Everything here is
# deterministic, so any diff is a real regression.
chaos-smoke:
	$(GO) test ./internal/chaos/ ./cmd/drschaos/
	$(GO) run ./cmd/drschaos -nodes 4 -duration 20s -levels 0,0.2 -protocols drs,static
	$(GO) run ./cmd/drsim -config examples/scenarios/flapping-rail.json

# Crash–restart lifecycle gate: the crash scheduler, lifecycle and
# campaign tests (warm-vs-cold goldens, worker-count determinism) plus
# one live crash campaign and the rolling-crash scenario. Deterministic
# end to end, so any diff is a real regression.
crash-smoke:
	$(GO) test ./internal/chaos/ ./internal/linkmon/ ./cmd/drschaos/
	$(GO) test ./internal/core/ ./internal/runtime/ -run 'Lifecycle|Crash|Warm|Rejoin|Incarnation|RTO'
	$(GO) run ./cmd/drschaos -mode crash -nodes 4 -duration 30s -protocols drs,reactive -rto
	$(GO) run ./cmd/drsim -config examples/scenarios/rolling-crash.json

# Static fast-failover gate: the failover family and the invariant
# checker (exhaustive single-failure sweeps, dynamic-flap goldens,
# negative loop controls), the head-to-head campaign goldens, one live
# campaign run and the invariant-enforced scenario. Deterministic end
# to end, so any diff is a real regression.
failover-smoke:
	$(GO) test ./internal/failover/ ./internal/invariant/ ./cmd/drschaos/
	$(GO) test ./internal/runtime/ -run 'Invariant|Failover'
	$(GO) run ./cmd/drschaos -mode failover -nodes 4 -duration 20s -protocols failover-rotor,failover-arbor,failover-bounce,drs
	$(GO) run ./cmd/drsim -config examples/scenarios/static-failover.json

# Live daemon gate: the clock and transport seams (in-memory, UDP),
# the hermetic multi-daemon lifecycle and clock-parity regressions,
# drsd's -validate golden errors, and the real 3-process localhost
# cluster: converge, SIGHUP reload, kill -9, warm rejoin, SIGTERM
# drain. The process test binds ephemeral loopback UDP ports only.
daemon-smoke:
	$(GO) test ./internal/clock/ ./internal/transport/
	$(GO) test ./internal/runtime/ -run 'HermeticLifecycle|ClockParity'
	$(GO) test ./cmd/drsd/ -timeout 180s

# Nemesis gate: the fault-schedule fuzzer's own tests (determinism,
# shrinking, invariants) under the race detector, a fixed-seed campaign
# that must heal clean, and the pinned regression replay that must
# still reproduce its shrunk violation (exit 1). Everything runs on
# virtual time, bit-identical from its seeds.
nemesis-smoke:
	$(GO) test -race ./internal/nemesis/ ./cmd/drsnemesis/
	$(GO) run ./cmd/drsnemesis -seed 1 -schedules 10 -horizon 6s -repro /dev/null
	$(GO) run ./cmd/drsnemesis -replay cmd/drsnemesis/testdata/regression.json; \
		status=$$?; test $$status -eq 1 || { echo "regression replay exited $$status, want 1"; exit 1; }

# Overload-protection gate: the budget/queue/governor primitives and
# the wiring tests across the stack (core overload behaviors, tunable
# plumbing, scenario schema, drsd gauges), the storm-campaign harness
# (golden table, worker-count determinism, budget-bound property), the
# budgeted nemesis invariant, then one live correlated-failure storm
# campaign. Deterministic end to end, so any diff is a real regression.
storm-smoke:
	$(GO) test ./internal/overload/ ./internal/dataplane/
	$(GO) test ./internal/core/ ./internal/runtime/ ./internal/scenario/ -run 'Overload|Storm'
	$(GO) test ./cmd/drsd/ -run 'Overload|MetricsSnapshot'
	$(GO) test ./cmd/drschaos/ -run 'Storm'
	$(GO) test ./internal/nemesis/ -run 'Budget'
	$(GO) run ./cmd/drschaos -mode storm -nodes 5 -duration 30s -levels 0,0.5 -seed 3

clean:
	$(GO) clean ./...
