package drsnet

import (
	"time"

	"drsnet/internal/availability"
	"drsnet/internal/survival"
)

// AllPairsPSuccess returns the probability that EVERY pair of servers
// in an n-node dual-rail cluster can still communicate when exactly f
// components have failed — full-cluster survivability, a strictly
// stronger criterion than the paper's designated-pair PSuccess. The
// closed form is this reproduction's extension, validated against
// brute-force enumeration.
func AllPairsPSuccess(n, f int) float64 {
	return survival.AllPairsPSuccessFloat(n, f)
}

// Availability is the time-based view of survivability: with every
// component independently down with its steady-state probability
// (MTTR / (MTBF+MTTR)), the fraction of time the designated pair can
// communicate, and the effective figure after charging the DRS's
// failure-detection window.
type Availability struct {
	// Q is the per-component steady-state unavailability.
	Q float64
	// Structural assumes instantaneous rerouting.
	Structural float64
	// Effective subtracts the first-order detection penalty.
	Effective float64
	// Nines is the whole number of nines of Effective.
	Nines int
	// DowntimePerYear is the expected yearly downtime at Effective.
	DowntimePerYear time.Duration
}

// ClusterAvailability computes the availability of an n-node DRS
// cluster whose components fail every mtbf on average and take mttr
// to repair, with the DRS detecting failures within repairWindow
// (≈ miss-threshold × probe interval).
func ClusterAvailability(n int, mtbf, mttr, repairWindow time.Duration) (Availability, error) {
	res, err := availability.Effective(availability.Params{
		Nodes:        n,
		MTBF:         mtbf,
		MTTR:         mttr,
		RepairWindow: repairWindow,
	})
	if err != nil {
		return Availability{}, err
	}
	return Availability{
		Q:               res.Q,
		Structural:      res.Structural,
		Effective:       res.Effective,
		Nines:           availability.Nines(res.Effective),
		DowntimePerYear: availability.DowntimePerYear(1 - res.Effective),
	}, nil
}
