// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index), plus the
// ablations the design calls out. Run:
//
//	go test -bench=. -benchmem
//
// Each benchmark times the full generator for its artifact; the cmd/
// tools print the corresponding rows, and EXPERIMENTS.md records
// paper-vs-measured values.
package drsnet

import (
	"io"
	"testing"
	"time"

	"drsnet/internal/availability"
	"drsnet/internal/costmodel"
	"drsnet/internal/experiments"
	"drsnet/internal/failure"
	"drsnet/internal/montecarlo"
	"drsnet/internal/runtime"
	"drsnet/internal/survival"
	"drsnet/internal/topology"
)

// BenchmarkFigure1ProbeCost regenerates E1: the Figure 1 cost curves
// (response time vs nodes at 5/10/15/25% budgets).
func BenchmarkFigure1ProbeCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(costmodel.Defaults(), costmodel.FigureBudgets, 2, 128, 2)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteTable(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Analytic regenerates E2: all nine P[Success] curves
// of Figure 2 (f = 2..10, f < N < 64) in exact arithmetic, at each
// worker count of the scaling ladder. survival.ResetCaches() inside
// the loop keeps every iteration cold, so the sub-benchmarks measure
// parallel scaling of the real computation rather than memo hits —
// speedup shows on multi-core hardware, not on a single-CPU runner.
func BenchmarkFigure2Analytic(b *testing.B) {
	fs := []int{2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				survival.ResetCaches()
				res, err := experiments.Figure2Workers(fs, 63, workers)
				if err != nil {
					b.Fatal(err)
				}
				if err := res.WriteTable(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure2Memoized is the same sweep warm: after the first
// run every Equation 1 term is served from the combinatorics memo.
func BenchmarkFigure2Memoized(b *testing.B) {
	fs := []int{2, 3, 4, 5, 6, 7, 8, 9, 10}
	survival.ResetCaches()
	if _, err := experiments.Figure2(fs, 63); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(fs, 63); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Thresholds regenerates E2a: the first N with
// P[Success] > 0.99 for f = 2, 3, 4 (paper: 18, 32, 45).
func BenchmarkFigure2Thresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Thresholds([]int{2, 3, 4}, 0.99, 100)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Found {
				b.Fatal("threshold missing")
			}
		}
	}
}

// BenchmarkFigure3Convergence regenerates E3 at a reduced ladder (the
// full 1e5-iteration sweep runs via cmd/drsconverge); it still covers
// every f of the paper across the full f < N < 64 range.
func BenchmarkFigure3Convergence(b *testing.B) {
	cfg := experiments.Figure3Defaults()
	cfg.Iterations = []int64{10, 100, 1000}
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		if _, err := experiments.Figure3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetFailureLog regenerates E4: the one-year 100-server
// hardware failure log behind the 13% statistic.
func BenchmarkFleetFailureLog(b *testing.B) {
	cfg := failure.DefaultFleetConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		log, err := failure.GenerateFleetLog(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if log.Summary().Total == 0 {
			b.Fatal("empty log")
		}
	}
}

// BenchmarkProactiveVsReactive regenerates E5: the packet-level
// recovery comparison on the single-NIC scenario.
func BenchmarkProactiveVsReactive(b *testing.B) {
	base := experiments.DefaultRecoveryConfig(runtime.ProtoDRS, experiments.ScenarioNIC)
	for i := 0; i < b.N; i++ {
		results, err := experiments.CompareRecovery(base)
		if err != nil {
			b.Fatal(err)
		}
		if !results[0].Recovered {
			b.Fatal("DRS failed to recover")
		}
	}
}

// BenchmarkFaultCoverage times the exhaustive fault-coverage campaign
// (all 1- and 2-fault scenarios of an 8-node cluster, each a full
// packet-level simulation checked against the analytic predicate) at
// each worker count of the scaling ladder. Every scenario runs in a
// private simulator, so the campaign parallelizes embarrassingly and
// the sub-benchmarks expose the speedup on multi-core hardware.
func BenchmarkFaultCoverage(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			cfg := experiments.DefaultCoverageConfig()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i) + 1
				res, err := experiments.FaultCoverage(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Total.Inconsistent != 0 {
					b.Fatalf("inconsistency: %s", res.FirstInconsistency)
				}
			}
			b.ReportMetric(float64(171), "scenarios")
		})
	}
}

// BenchmarkFlowRecovery regenerates the connection-level E5 variant:
// a reliable retransmitting stream crossing a NIC failure under the
// DRS.
func BenchmarkFlowRecovery(b *testing.B) {
	cfg := experiments.DefaultFlowRecoveryConfig(runtime.ProtoDRS, experiments.ScenarioNIC)
	for i := 0; i < b.N; i++ {
		res, err := experiments.FlowRecovery(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Survived {
			b.Fatal("connection died")
		}
		b.ReportMetric(res.Flow.MaxAckStall.Seconds(), "max-stall-s")
	}
}

// BenchmarkMonteCarloScaling is the parallel-scaling ablation: the
// same 2M-scenario estimate at increasing worker counts. Deterministic
// chunked substreams make every variant return identical results.
func BenchmarkMonteCarloScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			cfg := montecarlo.Config{
				Cluster:    topology.Dual(63),
				Failures:   4,
				Iterations: 2_000_000,
				Seed:       1,
				Workers:    workers,
			}
			for i := 0; i < b.N; i++ {
				if _, err := montecarlo.Estimate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationProbeInterval quantifies the Figure 1 trade-off in
// the running system: recovery outage as the probe interval varies.
func BenchmarkAblationProbeInterval(b *testing.B) {
	for _, probe := range []time.Duration{200 * time.Millisecond, time.Second, 5 * time.Second} {
		b.Run(probe.String(), func(b *testing.B) {
			cfg := experiments.DefaultRecoveryConfig(runtime.ProtoDRS, experiments.ScenarioNIC)
			cfg.ProbeInterval = probe
			cfg.Duration = cfg.FailAt + 10*probe + 10*time.Second
			var outage time.Duration
			for i := 0; i < b.N; i++ {
				res, err := experiments.Recovery(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Recovered {
					b.Fatal("no recovery")
				}
				outage = res.Outage
			}
			b.ReportMetric(outage.Seconds(), "outage-s")
		})
	}
}

// BenchmarkAblationMissThreshold quantifies detection speed vs the
// miss threshold.
func BenchmarkAblationMissThreshold(b *testing.B) {
	for _, miss := range []int{1, 2, 4} {
		b.Run(benchName("miss", miss), func(b *testing.B) {
			cfg := experiments.DefaultRecoveryConfig(runtime.ProtoDRS, experiments.ScenarioNIC)
			cfg.MissThreshold = miss
			var outage time.Duration
			for i := 0; i < b.N; i++ {
				res, err := experiments.Recovery(cfg)
				if err != nil {
					b.Fatal(err)
				}
				outage = res.Outage
			}
			b.ReportMetric(outage.Seconds(), "outage-s")
		})
	}
}

// BenchmarkAblationProbePolicy quantifies the factor-two cost of
// ordered-pair probing in the Figure 1 model.
func BenchmarkAblationProbePolicy(b *testing.B) {
	for _, ordered := range []bool{false, true} {
		name := "per-pair"
		if ordered {
			name = "ordered-pairs"
		}
		b.Run(name, func(b *testing.B) {
			params := costmodel.Defaults()
			params.OrderedPairs = ordered
			var rt float64
			for i := 0; i < b.N; i++ {
				var err error
				rt, err = params.ResponseTime(90, 0.10)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rt, "round-s")
		})
	}
}

// BenchmarkAblationHubVsSwitch quantifies the alternative-topology
// study: the same probe round on the paper's shared hub vs a switched
// fabric, in the cost model and empirically in the packet simulator.
func BenchmarkAblationHubVsSwitch(b *testing.B) {
	for _, switched := range []bool{false, true} {
		name := "hub"
		if switched {
			name = "switch"
		}
		b.Run(name, func(b *testing.B) {
			var measured float64
			for i := 0; i < b.N; i++ {
				var err error
				measured, _, err = experiments.ProbeOverhead(10, time.Second, 10*time.Second, switched)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*measured, "util-%")
		})
	}
}

// BenchmarkAblationStagger compares bursty and staggered probing: same
// protocol work, different instantaneous load shape.
func BenchmarkAblationStagger(b *testing.B) {
	for _, stagger := range []bool{false, true} {
		name := "burst"
		if stagger {
			name = "staggered"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := NewCluster(ClusterConfig{
					Nodes:         10,
					ProbeInterval: time.Second,
					StaggerProbes: stagger,
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
				c.Run(30 * time.Second)
				c.Stop()
			}
		})
	}
}

// BenchmarkAblationRails times the redundancy ablation (1/2/3 rails,
// Monte Carlo, f = 2 and 4).
func BenchmarkAblationRails(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RailsComparison(12, []int{1, 2, 3}, []int{2, 4}, 100000, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if res.P[0][1] <= res.P[0][0] {
			b.Fatal("dual rail did not beat single rail")
		}
	}
}

// BenchmarkClusterSimulation times the packet-level simulator end to
// end: a 12-node cluster (the deployed maximum) probing for 60
// simulated seconds.
func BenchmarkClusterSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(ClusterConfig{Nodes: 12, ProbeInterval: time.Second, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		c.Run(60 * time.Second)
		c.Stop()
	}
}

// BenchmarkEquation1Exact times one exact Equation 1 evaluation at the
// largest figure point.
func BenchmarkEquation1Exact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		survival.PSuccess(63, 10)
	}
}

// BenchmarkAllPairsAnalytic times the extension model: full-cluster
// survivability curves for f = 2..10 over f < N < 64.
func BenchmarkAllPairsAnalytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for f := 2; f <= 10; f++ {
			survival.AllPairsSeries(f, f+1, 63)
		}
	}
}

// BenchmarkAvailabilityModel times the IID availability surface used
// by cmd/drsavail (6 q-values × 6 cluster sizes, pair + all-pairs).
func BenchmarkAvailabilityModel(b *testing.B) {
	qs := []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1}
	ns := []int{4, 8, 12, 16, 32, 64}
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			for _, n := range ns {
				if _, err := availability.PSuccessIID(n, q); err != nil {
					b.Fatal(err)
				}
				if _, err := availability.AllPairsIID(n, q); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkAvailabilityMeasurement times the packet-level long-run
// availability experiment (2 simulated hours of continuous churn).
func BenchmarkAvailabilityMeasurement(b *testing.B) {
	cfg := experiments.DefaultAvailabilityConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res, err := experiments.MeasureAvailability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Measured, "availability")
	}
}

func benchName(prefix string, v int) string {
	digits := ""
	if v == 0 {
		digits = "0"
	}
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return prefix + "-" + digits
}
