package drsnet

import (
	"fmt"
	"time"

	"drsnet/internal/runtime"
)

// ClusterConfig configures a simulated DRS cluster.
type ClusterConfig struct {
	// Nodes is the number of servers (the deployed clusters ran 8–12).
	Nodes int
	// ProbeInterval is the DRS link-check period (default 1 s).
	ProbeInterval time.Duration
	// MissThreshold is the consecutive-miss count that declares a
	// link down (default 2).
	MissThreshold int
	// LossRate injects random frame loss (default 0).
	LossRate float64
	// StaggerProbes spreads each daemon's link checks across the
	// probe interval instead of bursting them at the round start.
	StaggerProbes bool
	// PreferLowLatency steers routes toward the rail with the lower
	// measured probe RTT (2x hysteresis).
	PreferLowLatency bool
	// Switched replaces the shared hubs with switched fabrics (every
	// node gets a dedicated full-rate port per rail).
	Switched bool
	// Seed drives the simulation's stochastic pieces.
	Seed uint64
}

// Message is an application datagram delivered by the cluster.
type Message struct {
	From, To int
	Data     []byte
	// At is the simulated delivery time.
	At time.Duration
}

// RouteInfo describes a node's current route to a peer.
type RouteInfo struct {
	// Kind is "direct", "relay" or "none".
	Kind string
	// Rail is the first-hop network (0 or 1).
	Rail int
	// Via is the next-hop server (the peer itself for direct routes).
	Via int
}

// RepairInfo records one completed DRS route repair.
type RepairInfo struct {
	Node, Peer int
	Latency    time.Duration
	Route      RouteInfo
}

// Cluster is a deterministic packet-level simulation of a dual-rail
// server cluster running one DRS daemon per node. Time only advances
// when Run is called, so failure injection and observation interleave
// exactly as scripted. A Cluster is not safe for concurrent use.
//
// Cluster is an interactive facade over internal/runtime: the runtime
// assembles and starts the cluster, and this type exposes the DRS
// daemons' observable state step by step.
type Cluster struct {
	cfg       ClusterConfig
	rt        *runtime.Cluster
	delivered []Message
}

// NewCluster builds a healthy cluster and starts its DRS daemons.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := validateClusterSize(cfg.Nodes); err != nil {
		return nil, err
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.MissThreshold == 0 {
		cfg.MissThreshold = 2
	}
	c := &Cluster{cfg: cfg}
	rt, err := runtime.Build(runtime.ClusterSpec{
		Nodes:    cfg.Nodes,
		Protocol: runtime.ProtoDRS,
		Switched: cfg.Switched,
		LossRate: cfg.LossRate,
		Seed:     cfg.Seed,
		Tunables: runtime.Tunables{
			ProbeInterval:    cfg.ProbeInterval,
			MissThreshold:    cfg.MissThreshold,
			StaggerProbes:    cfg.StaggerProbes,
			PreferLowLatency: cfg.PreferLowLatency,
		},
		OnDeliver: func(at time.Duration, src, dst int, data []byte) {
			c.delivered = append(c.delivered, Message{
				From: src, To: dst,
				Data: append([]byte(nil), data...),
				At:   at,
			})
		},
	})
	if err != nil {
		return nil, err
	}
	c.rt = rt
	if err := rt.Start(); err != nil {
		return nil, err
	}
	return c, nil
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Now returns the current simulated time.
func (c *Cluster) Now() time.Duration { return c.rt.Now() }

// Run advances the simulation by d of simulated time.
func (c *Cluster) Run(d time.Duration) {
	c.rt.RunFor(d)
}

// Send hands an application datagram from node from to node to. The
// DRS routes it over whatever path currently survives; during an
// undetected failure it may be lost, exactly as on real hardware.
func (c *Cluster) Send(from, to int, data []byte) error {
	if err := c.checkNode(from); err != nil {
		return err
	}
	if err := c.checkNode(to); err != nil {
		return err
	}
	return c.rt.Router(from).SendData(to, data)
}

// Delivered returns every application message delivered so far.
func (c *Cluster) Delivered() []Message {
	return append([]Message(nil), c.delivered...)
}

// FailNIC takes down the NIC of node on rail.
func (c *Cluster) FailNIC(node, rail int) error {
	if err := c.checkNode(node); err != nil {
		return err
	}
	if err := c.checkRail(rail); err != nil {
		return err
	}
	net := c.rt.Network()
	net.Fail(net.Cluster().NIC(node, rail))
	return nil
}

// RestoreNIC brings the NIC of node on rail back up.
func (c *Cluster) RestoreNIC(node, rail int) error {
	if err := c.checkNode(node); err != nil {
		return err
	}
	if err := c.checkRail(rail); err != nil {
		return err
	}
	net := c.rt.Network()
	net.Restore(net.Cluster().NIC(node, rail))
	return nil
}

// FailBackplane takes down an entire shared network.
func (c *Cluster) FailBackplane(rail int) error {
	if err := c.checkRail(rail); err != nil {
		return err
	}
	net := c.rt.Network()
	net.Fail(net.Cluster().Backplane(rail))
	return nil
}

// RestoreBackplane brings a shared network back up.
func (c *Cluster) RestoreBackplane(rail int) error {
	if err := c.checkRail(rail); err != nil {
		return err
	}
	net := c.rt.Network()
	net.Restore(net.Cluster().Backplane(rail))
	return nil
}

// LinkUp reports whether node currently believes its path to peer on
// rail is healthy (the DRS monitoring state, not ground truth).
func (c *Cluster) LinkUp(node, peer, rail int) bool {
	d, _ := c.rt.Daemon(node)
	return d.LinkUp(peer, rail)
}

// RouteOf returns node's current route to peer.
func (c *Cluster) RouteOf(node, peer int) (RouteInfo, error) {
	if err := c.checkNode(node); err != nil {
		return RouteInfo{}, err
	}
	if err := c.checkNode(peer); err != nil {
		return RouteInfo{}, err
	}
	d, _ := c.rt.Daemon(node)
	rt := d.RouteTo(peer)
	return RouteInfo{Kind: rt.Kind.String(), Rail: rt.Rail, Via: rt.Via}, nil
}

// Repairs returns every completed route repair across the cluster.
func (c *Cluster) Repairs() []RepairInfo {
	var out []RepairInfo
	for node := 0; node < c.cfg.Nodes; node++ {
		d, ok := c.rt.Daemon(node)
		if !ok {
			continue
		}
		for _, r := range d.Repairs() {
			out = append(out, RepairInfo{
				Node:    node,
				Peer:    r.Peer,
				Latency: r.Latency(),
				Route:   RouteInfo{Kind: r.Route.Kind.String(), Rail: r.Route.Rail, Via: r.Route.Via},
			})
		}
	}
	return out
}

// PathRTT is the DRS's smoothed round-trip estimate for one monitored
// path.
type PathRTT struct {
	SRTT, RTTVar time.Duration
	Samples      int64
}

// RTTOf returns node's smoothed probe round-trip estimate toward peer
// on rail; ok is false before the first probe completes.
func (c *Cluster) RTTOf(node, peer, rail int) (PathRTT, bool) {
	if node < 0 || node >= c.cfg.Nodes {
		return PathRTT{}, false
	}
	d, _ := c.rt.Daemon(node)
	stats, ok := d.RTT(peer, rail)
	if !ok {
		return PathRTT{}, false
	}
	return PathRTT{SRTT: stats.SRTT, RTTVar: stats.RTTVar, Samples: stats.Samples}, true
}

// Utilization returns the fraction of rail capacity consumed so far —
// the observable cost of proactive monitoring (compare CostModel).
func (c *Cluster) Utilization(rail int) (float64, error) {
	if err := c.checkRail(rail); err != nil {
		return 0, err
	}
	return c.rt.Network().Utilization(rail), nil
}

// Stop halts every daemon. The cluster can still be inspected but no
// longer routes.
func (c *Cluster) Stop() {
	c.rt.StopRouters()
}

func (c *Cluster) checkNode(n int) error {
	if n < 0 || n >= c.cfg.Nodes {
		return fmt.Errorf("drsnet: node %d out of range [0,%d)", n, c.cfg.Nodes)
	}
	return nil
}

func (c *Cluster) checkRail(r int) error {
	if r < 0 || r >= 2 {
		return fmt.Errorf("drsnet: rail %d out of range [0,2)", r)
	}
	return nil
}
