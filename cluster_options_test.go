package drsnet

import (
	"testing"
	"time"
)

func TestClusterSwitchedFabricWorks(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Nodes:         5,
		ProbeInterval: 200 * time.Millisecond,
		Switched:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Run(time.Second)
	if err := c.Send(0, 1, []byte("switched")); err != nil {
		t.Fatal(err)
	}
	c.Run(100 * time.Millisecond)
	if len(c.Delivered()) != 1 {
		t.Fatal("switched fabric did not deliver")
	}
	// Failover still works on a switch.
	if err := c.FailNIC(1, 0); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	rt, err := c.RouteOf(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Kind != "direct" || rt.Rail != 1 {
		t.Fatalf("route = %+v", rt)
	}
}

func TestClusterSwitchedLowerUtilization(t *testing.T) {
	run := func(switched bool) float64 {
		c, err := NewCluster(ClusterConfig{
			Nodes:         10,
			ProbeInterval: 500 * time.Millisecond,
			Switched:      switched,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		c.Run(10 * time.Second)
		u, err := c.Utilization(0)
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	hub := run(false)
	sw := run(true)
	if !(sw < hub) {
		t.Fatalf("switched utilization %v not below hub %v", sw, hub)
	}
}

func TestClusterStaggeredStillDetects(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Nodes:         4,
		ProbeInterval: 200 * time.Millisecond,
		StaggerProbes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Run(time.Second)
	if err := c.FailBackplane(0); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	if c.LinkUp(0, 1, 0) {
		t.Fatal("staggered cluster missed the backplane failure")
	}
	if err := c.Send(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Run(200 * time.Millisecond)
	if len(c.Delivered()) != 1 {
		t.Fatal("no delivery after staggered failover")
	}
}
