// Command benchgate guards the hot-path benchmarks against silent
// regressions. It reads `go test -bench` output on stdin, takes the
// minimum ns/op per benchmark across repeated runs (the minimum is far
// more stable than the mean on shared builders), and fails when a
// gated benchmark drifts more than the configured tolerance above the
// baseline recorded in the bench JSON's "gate" section.
//
// Usage:
//
//	go test -run xxx -bench ... -benchtime 1000x -count 5 ./internal/core/ | benchgate -baseline BENCH_fabric.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type gate struct {
	TolerancePct float64 `json:"tolerance_pct"`
	Benchmarks   []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

type baselineFile struct {
	Gate gate `json:"gate"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	flags.SetOutput(stderr)
	baseline := flags.String("baseline", "BENCH_fabric.json", "bench JSON with a gate section")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 1
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		fmt.Fprintf(stderr, "benchgate: %s: %v\n", *baseline, err)
		return 1
	}
	if bf.Gate.TolerancePct <= 0 || len(bf.Gate.Benchmarks) == 0 {
		fmt.Fprintf(stderr, "benchgate: %s has no usable gate section\n", *baseline)
		return 1
	}

	best, err := parseBest(stdin, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 1
	}

	failures := 0
	for _, b := range bf.Gate.Benchmarks {
		got, ok := best[b.Name]
		if !ok {
			fmt.Fprintf(stderr, "benchgate: FAIL %s: not present in benchmark output\n", b.Name)
			failures++
			continue
		}
		limit := b.NsPerOp * (1 + bf.Gate.TolerancePct/100)
		drift := 100 * (got - b.NsPerOp) / b.NsPerOp
		if got > limit {
			fmt.Fprintf(stderr, "benchgate: FAIL %s: %.1f ns/op is %+.1f%% vs baseline %.1f (tolerance %.0f%%)\n",
				b.Name, got, drift, b.NsPerOp, bf.Gate.TolerancePct)
			failures++
			continue
		}
		fmt.Fprintf(stdout, "benchgate: ok %s: %.1f ns/op (%+.1f%% vs baseline %.1f)\n",
			b.Name, got, drift, b.NsPerOp)
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// parseBest scans `go test -bench` output, echoing it to out, and
// returns the minimum ns/op seen per benchmark name (GOMAXPROCS
// suffixes like -8 are stripped).
func parseBest(r io.Reader, out io.Writer) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(out, line)
		fields := strings.Fields(line)
		// BenchmarkName[-P]  <iters>  <ns> ns/op  ...
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if old, ok := best[name]; !ok || ns < old {
			best[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return best, nil
}
