package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleBaseline = `{
  "gate": {
    "tolerance_pct": 15,
    "benchmarks": [
      {"name": "BenchmarkRelayForward", "ns_per_op": 800},
      {"name": "BenchmarkSendDataDirect", "ns_per_op": 450}
    ]
  }
}`

func TestGatePassesWithinTolerance(t *testing.T) {
	path := writeBaseline(t, sampleBaseline)
	in := strings.NewReader(`goos: linux
BenchmarkRelayForward-8    1000    905 ns/op    377 B/op    5 allocs/op
BenchmarkRelayForward-8    1000    820 ns/op    377 B/op    5 allocs/op
BenchmarkSendDataDirect    1000    460.5 ns/op  231 B/op    3 allocs/op
PASS
`)
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", path}, in, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	// The minimum of repeated runs is what gets gated: 820, not 905.
	if !strings.Contains(out.String(), "ok BenchmarkRelayForward: 820.0") {
		t.Fatalf("min-of-runs not used:\n%s", out.String())
	}
}

func TestGateFailsOnDrift(t *testing.T) {
	path := writeBaseline(t, sampleBaseline)
	in := strings.NewReader(`BenchmarkRelayForward    1000    1000 ns/op
BenchmarkSendDataDirect  1000    455 ns/op
`)
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", path}, in, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "FAIL BenchmarkRelayForward") {
		t.Fatalf("missing failure line:\n%s", errb.String())
	}
	// The in-tolerance benchmark still reports ok.
	if !strings.Contains(out.String(), "ok BenchmarkSendDataDirect") {
		t.Fatalf("missing ok line:\n%s", out.String())
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	path := writeBaseline(t, sampleBaseline)
	in := strings.NewReader("BenchmarkRelayForward 1000 700 ns/op\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", path}, in, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "BenchmarkSendDataDirect: not present") {
		t.Fatalf("missing-benchmark not reported:\n%s", errb.String())
	}
}

func TestGateRejectsBadInputs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", "/nonexistent.json"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Fatalf("missing baseline: exit %d", code)
	}
	path := writeBaseline(t, `{"gate": {"tolerance_pct": 0, "benchmarks": []}}`)
	if code := run([]string{"-baseline", path}, strings.NewReader("x"), &out, &errb); code != 1 {
		t.Fatalf("empty gate: exit %d", code)
	}
	path = writeBaseline(t, sampleBaseline)
	if code := run([]string{"-baseline", path}, strings.NewReader("no benchmarks here\n"), &out, &errb); code != 1 {
		t.Fatalf("no results: exit %d", code)
	}
}

// TestRealBaselineHasGate guards the checked-in BENCH_fabric.json: the
// Makefile pipes into it, so its gate section must stay parseable.
func TestRealBaselineHasGate(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_fabric.json")
	in := strings.NewReader(`BenchmarkProbeRound 1000 1 ns/op
BenchmarkSendDataDirect 1000 1 ns/op
BenchmarkRelayForward 1000 1 ns/op
BenchmarkQueryOfferChurn 1000 1 ns/op
`)
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", path}, in, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
}
