// Command drsavail explores cluster availability — the time-based
// extension of the paper's survivability model. It prints the IID
// availability surface (per-component unavailability q × cluster
// size), the effective availability including the DRS detection
// window, and optionally a packet-level measurement of the same
// regime.
//
// Usage:
//
//	drsavail [-nodes n] [-mtbf d] [-mttr d] [-probe d] [-miss k]
//	         [-workers w] [-allpairs] [-measure] [-horizon d]
//	         [-topology desc] [-mc iterations] [-seed s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"drsnet/internal/availability"
	"drsnet/internal/experiments"
	"drsnet/internal/topology"
)

func main() {
	nodes := flag.Int("nodes", 10, "cluster size")
	mtbf := flag.Duration("mtbf", 1000*time.Hour, "per-component mean time between failures")
	mttr := flag.Duration("mttr", 4*time.Hour, "per-component mean time to repair")
	probe := flag.Duration("probe", time.Second, "DRS probe interval")
	miss := flag.Int("miss", 2, "DRS miss threshold")
	allPairs := flag.Bool("allpairs", false, "also print full-cluster (all-pairs) availability")
	measure := flag.Bool("measure", false, "run the packet-level measurement alongside the model")
	horizon := flag.Duration("horizon", 2*time.Hour, "measurement horizon (with -measure)")
	workers := flag.Int("workers", 0, "surface worker goroutines (0 = all CPUs); output is identical for every count")
	topo := flag.String("topology", "", `switched fabric descriptor (e.g. "fatTree:k=8", "bcube:n=4,k=1"); Monte Carlo-estimates fabric availability instead of the dual-rail closed form`)
	mc := flag.Int64("mc", 100000, "Monte Carlo iterations for the fabric structural term (with -topology)")
	seed := flag.Uint64("seed", 1, "Monte Carlo seed (with -topology)")
	flag.Parse()

	if *topo != "" {
		fabricMode(*topo, *mtbf, *mttr, *probe, *miss, *mc, *seed, *workers)
		return
	}

	q, err := availability.SteadyStateQ(*mtbf, *mttr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# per-component steady state: MTBF %v, MTTR %v → q = %.6f\n\n", *mtbf, *mttr, q)

	// Availability surface over q and cluster size.
	fmt.Printf("# pair availability under IID component failures (Equation 1 mixture)\n")
	surface, err := experiments.Surface(experiments.DefaultSurfaceQs(), experiments.DefaultSurfaceSizes(), false, *workers)
	if err != nil {
		fail(err)
	}
	if err := experiments.WriteSurface(os.Stdout, surface); err != nil {
		fail(err)
	}

	if *allPairs {
		fmt.Printf("\n# full-cluster (all-pairs) availability\n")
		surface, err := experiments.Surface(experiments.DefaultSurfaceQs(), experiments.DefaultSurfaceSizes(), true, *workers)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteSurface(os.Stdout, surface); err != nil {
			fail(err)
		}
	}

	res, err := availability.Effective(availability.Params{
		Nodes:        *nodes,
		MTBF:         *mtbf,
		MTTR:         *mttr,
		RepairWindow: time.Duration(float64(*miss)+0.5) * *probe,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("\n# effective pair availability at N=%d (probe %v, miss %d)\n", *nodes, *probe, *miss)
	fmt.Printf("structural: %.6f   detection penalty: %.6f   effective: %.6f (%d nines, %v downtime/yr)\n",
		res.Structural, res.DetectionPenalty, res.Effective,
		availability.Nines(res.Effective),
		availability.DowntimePerYear(1-res.Effective).Round(time.Minute))

	if *measure {
		cfg := experiments.DefaultAvailabilityConfig()
		cfg.Nodes = *nodes
		cfg.ProbeInterval = *probe
		cfg.MissThreshold = *miss
		cfg.Horizon = *horizon
		// Scale failure pressure so a short horizon still sees churn.
		cfg.MTBF = 20 * time.Minute
		cfg.MTTR = time.Minute
		fmt.Printf("\n")
		mres, err := experiments.MeasureAvailability(cfg)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteAvailability(os.Stdout, mres); err != nil {
			fail(err)
		}
	}
}

// fabricMode prints the effective availability of a DRS deployment on
// a switched fabric: a Monte Carlo structural term plus the detection
// penalty over the fabric's active-path component count.
func fabricMode(desc string, mtbf, mttr, probe time.Duration, miss int, mc int64, seed uint64, workers int) {
	fab, err := topology.Parse(desc)
	if err != nil {
		fail(err)
	}
	res, err := availability.EffectiveFabric(availability.FabricParams{
		Fabric:       fab,
		MTBF:         mtbf,
		MTTR:         mttr,
		RepairWindow: time.Duration(float64(miss)+0.5) * probe,
		Iterations:   mc,
		Seed:         seed,
		Workers:      workers,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("# %s: %d hosts × %d ports, %d switches, %d trunks (%d components)\n",
		fab.Kind, fab.Hosts(), fab.Ports(), fab.Switches(), fab.Trunks(), fab.Components())
	fmt.Printf("# per-component steady state: MTBF %v, MTTR %v → q = %.6f\n", mtbf, mttr, res.Q)
	fmt.Printf("# monitored pair: hosts 0 and %d (%d active-path components)\n\n",
		fab.Hosts()-1, res.PathComponents)
	fmt.Printf("structural: %.6f ±%.6f (Monte Carlo, %d iterations)\n",
		res.Structural, res.CI95, mc)
	fmt.Printf("detection penalty: %.6f   effective: %.6f (%d nines, %v downtime/yr)\n",
		res.DetectionPenalty, res.Effective,
		availability.Nines(res.Effective),
		availability.DowntimePerYear(1-res.Effective).Round(time.Minute))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "drsavail: %v\n", err)
	os.Exit(1)
}
