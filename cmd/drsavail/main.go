// Command drsavail explores cluster availability — the time-based
// extension of the paper's survivability model. It prints the IID
// availability surface (per-component unavailability q × cluster
// size), the effective availability including the DRS detection
// window, and optionally a packet-level measurement of the same
// regime.
//
// Usage:
//
//	drsavail [-nodes n] [-mtbf d] [-mttr d] [-probe d] [-miss k]
//	         [-workers w] [-allpairs] [-measure] [-horizon d]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"drsnet/internal/availability"
	"drsnet/internal/experiments"
)

func main() {
	nodes := flag.Int("nodes", 10, "cluster size")
	mtbf := flag.Duration("mtbf", 1000*time.Hour, "per-component mean time between failures")
	mttr := flag.Duration("mttr", 4*time.Hour, "per-component mean time to repair")
	probe := flag.Duration("probe", time.Second, "DRS probe interval")
	miss := flag.Int("miss", 2, "DRS miss threshold")
	allPairs := flag.Bool("allpairs", false, "also print full-cluster (all-pairs) availability")
	measure := flag.Bool("measure", false, "run the packet-level measurement alongside the model")
	horizon := flag.Duration("horizon", 2*time.Hour, "measurement horizon (with -measure)")
	workers := flag.Int("workers", 0, "surface worker goroutines (0 = all CPUs); output is identical for every count")
	flag.Parse()

	q, err := availability.SteadyStateQ(*mtbf, *mttr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# per-component steady state: MTBF %v, MTTR %v → q = %.6f\n\n", *mtbf, *mttr, q)

	// Availability surface over q and cluster size.
	fmt.Printf("# pair availability under IID component failures (Equation 1 mixture)\n")
	surface, err := experiments.Surface(experiments.DefaultSurfaceQs(), experiments.DefaultSurfaceSizes(), false, *workers)
	if err != nil {
		fail(err)
	}
	if err := experiments.WriteSurface(os.Stdout, surface); err != nil {
		fail(err)
	}

	if *allPairs {
		fmt.Printf("\n# full-cluster (all-pairs) availability\n")
		surface, err := experiments.Surface(experiments.DefaultSurfaceQs(), experiments.DefaultSurfaceSizes(), true, *workers)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteSurface(os.Stdout, surface); err != nil {
			fail(err)
		}
	}

	res, err := availability.Effective(availability.Params{
		Nodes:        *nodes,
		MTBF:         *mtbf,
		MTTR:         *mttr,
		RepairWindow: time.Duration(float64(*miss)+0.5) * *probe,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("\n# effective pair availability at N=%d (probe %v, miss %d)\n", *nodes, *probe, *miss)
	fmt.Printf("structural: %.6f   detection penalty: %.6f   effective: %.6f (%d nines, %v downtime/yr)\n",
		res.Structural, res.DetectionPenalty, res.Effective,
		availability.Nines(res.Effective),
		availability.DowntimePerYear(1-res.Effective).Round(time.Minute))

	if *measure {
		cfg := experiments.DefaultAvailabilityConfig()
		cfg.Nodes = *nodes
		cfg.ProbeInterval = *probe
		cfg.MissThreshold = *miss
		cfg.Horizon = *horizon
		// Scale failure pressure so a short horizon still sees churn.
		cfg.MTBF = 20 * time.Minute
		cfg.MTTR = time.Minute
		fmt.Printf("\n")
		mres, err := experiments.MeasureAvailability(cfg)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteAvailability(os.Stdout, mres); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "drsavail: %v\n", err)
	os.Exit(1)
}
