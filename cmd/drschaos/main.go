// Command drschaos runs gray-failure campaigns against the routing
// protocols: instead of the fail-stop faults of the paper's
// experiments, it sweeps an impairment intensity ladder — random frame
// loss on a backplane, or link flapping at increasing duty cycles —
// and reports how each protocol's delivery availability degrades,
// how many link flaps it observed, and how fast it repaired routes.
//
// The sweep runs on the parallel engine: every (protocol, intensity)
// cell is an independent deterministic simulation, so the output is
// bit-identical for any -workers count.
//
// Usage:
//
//	drschaos [-mode loss|flap] [-protocols list] [-levels list]
//	         [-nodes n] [-duration d] [-seed s] [-damping]
//	         [-workers n] [-plot]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"drsnet/internal/asciiplot"
	"drsnet/internal/chaos"
	"drsnet/internal/linkmon"
	"drsnet/internal/netsim"
	"drsnet/internal/runtime"
	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// campaign parameterizes one sweep.
type campaign struct {
	mode      string
	protocols []string
	levels    []float64
	nodes     int
	duration  time.Duration
	seed      uint64
	damping   bool
	workers   int
}

// cell is the outcome of one (protocol, intensity) run.
type cell struct {
	protocol        string
	intensity       float64
	sent, delivered int
	flaps, damped   int
	meanRepair      time.Duration // 0 when the protocol records no repairs
	repairs         int
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("drschaos", flag.ContinueOnError)
	flags.SetOutput(stderr)
	mode := flags.String("mode", "loss", "campaign mode: loss (backplane frame loss) or flap (NIC duty-cycle flapping)")
	protocols := flags.String("protocols", "drs,reactive,linkstate,static", "protocols to torment, comma separated")
	levels := flags.String("levels", "", "intensity ladder, comma separated (loss probabilities or flap duty cycles; default per mode)")
	nodes := flags.Int("nodes", 6, "cluster size")
	duration := flags.Duration("duration", 60*time.Second, "simulated horizon per run")
	seed := flags.Uint64("seed", 1, "simulation seed")
	damping := flags.Bool("damping", false, "enable DRS route-flap damping (linkmon defaults)")
	workers := flags.Int("workers", 0, "worker goroutines (0 = all CPUs)")
	plot := flags.Bool("plot", false, "render availability as an ASCII chart instead of a table")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	c := campaign{
		mode:     *mode,
		nodes:    *nodes,
		duration: *duration,
		seed:     *seed,
		damping:  *damping,
		workers:  *workers,
	}
	switch c.mode {
	case "loss", "flap":
	default:
		fmt.Fprintf(stderr, "drschaos: unknown mode %q (want loss or flap)\n", c.mode)
		return 1
	}
	for _, tok := range strings.Split(*protocols, ",") {
		p := strings.TrimSpace(tok)
		if _, err := runtime.Lookup(p); err != nil {
			fmt.Fprintf(stderr, "drschaos: %v\n", err)
			return 1
		}
		c.protocols = append(c.protocols, p)
	}
	ladder := *levels
	if ladder == "" {
		if c.mode == "loss" {
			ladder = "0,0.05,0.1,0.2,0.4"
		} else {
			ladder = "0,0.2,0.4,0.6"
		}
	}
	for _, tok := range strings.Split(ladder, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Fprintf(stderr, "drschaos: bad intensity %q: %v\n", tok, err)
			return 1
		}
		if v < 0 || v >= 1 {
			fmt.Fprintf(stderr, "drschaos: intensity %v outside [0,1)\n", v)
			return 1
		}
		c.levels = append(c.levels, v)
	}
	if c.nodes < 2 {
		fmt.Fprintf(stderr, "drschaos: need at least 2 nodes, have %d\n", c.nodes)
		return 1
	}
	if c.duration <= 0 {
		fmt.Fprintf(stderr, "drschaos: duration must be positive\n")
		return 1
	}

	cells, err := c.sweep()
	if err != nil {
		fmt.Fprintf(stderr, "drschaos: %v\n", err)
		return 1
	}
	if *plot {
		err = c.writePlot(stdout, cells)
	} else {
		err = c.writeTable(stdout, cells)
	}
	if err != nil {
		fmt.Fprintf(stderr, "drschaos: %v\n", err)
		return 1
	}
	return 0
}

// spec builds the deterministic simulation for one campaign cell.
func (c *campaign) spec(protocol string, intensity float64) runtime.ClusterSpec {
	cl := topology.Dual(c.nodes)
	spec := runtime.ClusterSpec{
		Nodes:    c.nodes,
		Protocol: protocol,
		Seed:     c.seed,
		Duration: c.duration,
	}
	if c.damping {
		spec.Tunables.FlapDamping = linkmon.DefaultDamping()
	}
	// Ring traffic: every node talks to its successor, so every rail
	// segment carries load and any impairment is felt somewhere.
	for n := 0; n < c.nodes; n++ {
		spec.Flows = append(spec.Flows, runtime.Flow{
			From: n, To: (n + 1) % c.nodes, Interval: 250 * time.Millisecond,
		})
	}
	switch c.mode {
	case "loss":
		// Degrade rail 0's backplane for the whole run; rail 1 stays
		// clean, so a protocol that reroutes can dodge the loss.
		if intensity > 0 {
			spec.Impairments = append(spec.Impairments, chaos.Spec{
				Comp:   cl.Backplane(0),
				Impair: netsim.Impairment{Loss: intensity},
			})
		}
	case "flap":
		// Node 1 loses its rail-1 NIC for good at 1 s, then its rail-0
		// NIC — the only path left — flaps with the intensity as duty
		// cycle. Higher duty, longer outages, more route churn.
		spec.Faults = append(spec.Faults, runtime.Fault{At: time.Second, Comp: cl.NIC(1, 1)})
		if intensity > 0 {
			spec.Impairments = append(spec.Impairments, chaos.Spec{
				Comp:       cl.NIC(1, 0),
				Start:      5 * time.Second,
				FlapPeriod: 8 * time.Second,
				FlapDuty:   intensity,
			})
		}
	}
	return spec
}

// sweep runs the full (protocol × intensity) grid on the parallel
// engine and reduces each run to a table cell.
func (c *campaign) sweep() ([]cell, error) {
	var specs []runtime.ClusterSpec
	var cells []cell
	for _, p := range c.protocols {
		for _, lv := range c.levels {
			specs = append(specs, c.spec(p, lv))
			cells = append(cells, cell{protocol: p, intensity: lv})
		}
	}
	results, err := runtime.RunMany(context.Background(), specs, c.workers)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		for _, f := range res.Flows {
			cells[i].sent += f.Sent
			cells[i].delivered += f.Delivered
		}
		cells[i].flaps = res.Trace.Count(trace.KindLinkDown)
		cells[i].damped = res.Trace.Count(trace.KindRouteDamped)
		cells[i].repairs = len(res.Repairs)
		var total time.Duration
		for _, r := range res.Repairs {
			total += r.Latency()
		}
		if len(res.Repairs) > 0 {
			cells[i].meanRepair = total / time.Duration(len(res.Repairs))
		}
	}
	return cells, nil
}

// availability is the cell's delivered fraction.
func (cl *cell) availability() float64 {
	if cl.sent == 0 {
		return 0
	}
	return float64(cl.delivered) / float64(cl.sent)
}

func (c *campaign) title() string {
	what := "backplane-0 frame loss"
	if c.mode == "flap" {
		what = "rail-0 flap duty cycle"
	}
	damp := ""
	if c.damping {
		damp = ", damping on"
	}
	return fmt.Sprintf("chaos campaign: %s (%d nodes, %v, seed %d%s)",
		what, c.nodes, c.duration, c.seed, damp)
}

func (c *campaign) writeTable(w io.Writer, cells []cell) error {
	if _, err := fmt.Fprintf(w, "# %s\n", c.title()); err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %10s %8s %7s %7s %8s %13s\n",
		"protocol", "intensity", "avail%", "flaps", "damped", "repairs", "mean-failover")
	for i := range cells {
		cl := &cells[i]
		failover := "-"
		if cl.repairs > 0 {
			failover = cl.meanRepair.Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "%10s %10.2f %8.2f %7d %7d %8d %13s\n",
			cl.protocol, cl.intensity, 100*cl.availability(),
			cl.flaps, cl.damped, cl.repairs, failover)
	}
	return nil
}

func (c *campaign) writePlot(w io.Writer, cells []cell) error {
	series := make([]asciiplot.Series, 0, len(c.protocols))
	for _, p := range c.protocols {
		s := asciiplot.Series{Name: p}
		for i := range cells {
			if cells[i].protocol != p {
				continue
			}
			s.X = append(s.X, cells[i].intensity)
			s.Y = append(s.Y, 100*cells[i].availability())
		}
		series = append(series, s)
	}
	return asciiplot.Render(w, asciiplot.Config{
		Title:  c.title(),
		XLabel: "intensity",
		YLabel: "availability (%)",
	}, series...)
}
