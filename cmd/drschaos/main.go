// Command drschaos runs gray-failure campaigns against the routing
// protocols: instead of the fail-stop faults of the paper's
// experiments, it sweeps an impairment intensity ladder — random frame
// loss on a backplane, or link flapping at increasing duty cycles —
// and reports how each protocol's delivery availability degrades,
// how many link flaps it observed, and how fast it repaired routes.
//
// A third mode torments the daemons themselves: -mode crash sweeps a
// mean-time-to-repair ladder (seconds a crashed daemon stays dead) and
// runs every cell twice — cold restart and warm restart (crash-time
// checkpoint restored) — reporting delivery availability and the mean
// recovery latency from restart to the node's first repaired route.
//
// A fifth mode is the overload campaign: -mode storm sweeps the
// correlated-failure fraction — rail 0's backplane dies and that
// fraction of the cluster crash-restarts in lock-step — and runs every
// cell twice, once with the DRS control-plane budgets off and once
// with the overload-protection layer on. The table reports delivery
// availability next to the shed/degraded counters and the maximum
// per-node control-traffic counts, so the budgets' bound is visible in
// the same row that shows what they cost.
//
// A fourth mode is the static fast-failover head-to-head: -mode
// failover runs every protocol through a fixed regime ladder — clean,
// loss, flap, crash and the Dai & Foerster dynamic regime (two NICs on
// different nodes and rails flapping with incommensurate periods, so
// mixed-rail cuts open and close faster than any control plane
// converges) — with the forwarding-trace invariant checker enabled in
// every cell. The table reports availability alongside the checker's
// loop, revisit and drop counts, so a variant that buys availability
// by looping is convicted in the same row.
//
// The sweep runs on the parallel engine: every (protocol, intensity)
// cell is an independent deterministic simulation, so the output is
// bit-identical for any -workers count.
//
// Usage:
//
//	drschaos [-mode loss|flap|crash|failover|storm] [-protocols list]
//	         [-levels list] [-nodes n] [-duration d] [-seed s]
//	         [-damping] [-rto] [-workers n] [-plot]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"drsnet/internal/asciiplot"
	"drsnet/internal/chaos"
	"drsnet/internal/invariant"
	"drsnet/internal/linkmon"
	"drsnet/internal/netsim"
	"drsnet/internal/overload"
	"drsnet/internal/routing"
	"drsnet/internal/runtime"
	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// campaign parameterizes one sweep.
type campaign struct {
	mode      string
	protocols []string
	levels    []float64
	nodes     int
	duration  time.Duration
	seed      uint64
	damping   bool
	rto       bool
	workers   int
}

// cell is the outcome of one (protocol, intensity) run. In crash mode
// the intensity is the MTTR in seconds, warm distinguishes the
// cold/warm pair, and crashes/recovery carry the lifecycle columns. In
// failover mode the regime names the cell's fault cocktail and the
// loops/revisits/drops columns carry the invariant checker's verdict.
type cell struct {
	protocol        string
	intensity       float64
	warm            bool
	budgeted        bool
	regime          string
	sent, delivered int
	flaps, damped   int
	meanRepair      time.Duration // 0 when the protocol records no repairs
	repairs         int
	crashes         int
	meanRecovery    time.Duration
	recovered       int // restarts that repaired at least one route
	loops           int
	revisits        int
	drops           int
	// Storm-mode columns, reduced from Result.Counters: total budget
	// sheds and degraded-mode entries across the cluster, and the
	// worst single node's retransmit and query-frame counts.
	shed       int64
	degraded   int64
	maxRetrans int64
	maxQueries int64
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("drschaos", flag.ContinueOnError)
	flags.SetOutput(stderr)
	mode := flags.String("mode", "loss", "campaign mode: loss (backplane frame loss), flap (NIC duty-cycle flapping), crash (daemon crash-restart MTTR sweep), failover (static fast-failover head-to-head across fault regimes) or storm (correlated-failure fraction sweep, budgets off vs on)")
	protocols := flags.String("protocols", "drs,reactive,linkstate,static", "protocols to torment, comma separated (failover mode defaults to the static family plus the convergence protocols)")
	levels := flags.String("levels", "", "intensity ladder, comma separated (loss probabilities, flap duty cycles or crash MTTRs in seconds; default per mode)")
	nodes := flags.Int("nodes", 6, "cluster size")
	duration := flags.Duration("duration", 60*time.Second, "simulated horizon per run")
	seed := flags.Uint64("seed", 1, "simulation seed")
	damping := flags.Bool("damping", false, "enable DRS route-flap damping (linkmon defaults)")
	rto := flags.Bool("rto", false, "enable DRS adaptive probe deadlines (linkmon defaults)")
	workers := flags.Int("workers", 0, "worker goroutines (0 = all CPUs)")
	plot := flags.Bool("plot", false, "render availability as an ASCII chart instead of a table")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	c := campaign{
		mode:     *mode,
		nodes:    *nodes,
		duration: *duration,
		seed:     *seed,
		damping:  *damping,
		rto:      *rto,
		workers:  *workers,
	}
	switch c.mode {
	case "loss", "flap", "crash", "failover", "storm":
	default:
		fmt.Fprintf(stderr, "drschaos: unknown mode %q (want loss, flap, crash, failover or storm)\n", c.mode)
		return 1
	}
	protocolList := *protocols
	if c.mode == "storm" {
		// The budget on/off comparison is a DRS feature; the baselines
		// ignore the overload tunable, so their row pairs would be
		// identical. Default to the DRS unless the user picked a lineup.
		explicit := false
		flags.Visit(func(f *flag.Flag) {
			if f.Name == "protocols" {
				explicit = true
			}
		})
		if !explicit {
			protocolList = "drs"
		}
		if *plot {
			fmt.Fprintf(stderr, "drschaos: -plot cannot render storm mode's budget on/off row pairs\n")
			return 1
		}
	}
	if c.mode == "failover" {
		// The head-to-head compares the whole static family against the
		// convergence protocols unless the user picked a lineup.
		explicit := false
		flags.Visit(func(f *flag.Flag) {
			if f.Name == "protocols" {
				explicit = true
			}
		})
		if !explicit {
			protocolList = "failover-rotor,failover-arbor,failover-bounce,drs,linkstate,reactive"
		}
		if *levels != "" {
			fmt.Fprintf(stderr, "drschaos: -levels is not used by -mode failover (the regime ladder is fixed)\n")
			return 1
		}
		if *plot {
			fmt.Fprintf(stderr, "drschaos: -plot needs a numeric intensity axis; -mode failover has none\n")
			return 1
		}
	}
	for _, tok := range strings.Split(protocolList, ",") {
		p := strings.TrimSpace(tok)
		if _, err := runtime.Lookup(p); err != nil {
			fmt.Fprintf(stderr, "drschaos: %v\n", err)
			return 1
		}
		c.protocols = append(c.protocols, p)
	}
	ladder := *levels
	if ladder == "" {
		switch c.mode {
		case "loss":
			ladder = "0,0.05,0.1,0.2,0.4"
		case "flap":
			ladder = "0,0.2,0.4,0.6"
		case "crash":
			ladder = "0,2,8"
		case "storm":
			ladder = "0,0.25,0.5,0.75"
		case "failover":
			ladder = "" // the regime ladder replaces numeric intensities
		}
	}
	for _, tok := range strings.Split(ladder, ",") {
		if c.mode == "failover" {
			break
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Fprintf(stderr, "drschaos: bad intensity %q: %v\n", tok, err)
			return 1
		}
		if c.mode == "crash" {
			// Crash levels are MTTRs in seconds; 0 means the node never
			// restarts.
			if v < 0 {
				fmt.Fprintf(stderr, "drschaos: negative MTTR %v\n", v)
				return 1
			}
		} else if v < 0 || v >= 1 {
			fmt.Fprintf(stderr, "drschaos: intensity %v outside [0,1)\n", v)
			return 1
		}
		c.levels = append(c.levels, v)
	}
	minNodes := 2
	if c.mode == "crash" || c.mode == "failover" {
		minNodes = 3 // the scenarios fault node 2's NIC and torment node 1
	}
	if c.mode == "storm" {
		minNodes = 4 // a fraction of the cluster crashes; someone must survive to route
	}
	if c.nodes < minNodes {
		fmt.Fprintf(stderr, "drschaos: mode %s needs at least %d nodes, have %d\n", c.mode, minNodes, c.nodes)
		return 1
	}
	if c.duration <= 0 {
		fmt.Fprintf(stderr, "drschaos: duration must be positive\n")
		return 1
	}

	cells, err := c.sweep()
	if err != nil {
		fmt.Fprintf(stderr, "drschaos: %v\n", err)
		return 1
	}
	if *plot {
		err = c.writePlot(stdout, cells)
	} else {
		err = c.writeTable(stdout, cells)
	}
	if err != nil {
		fmt.Fprintf(stderr, "drschaos: %v\n", err)
		return 1
	}
	return 0
}

// spec builds the deterministic simulation for one campaign cell. The
// variant flag only matters in crash mode, where it selects warm-start
// recovery for the scripted restarts, and in storm mode, where it
// enables the overload-protection budgets.
func (c *campaign) spec(protocol string, intensity float64, variant bool) runtime.ClusterSpec {
	cl := topology.Dual(c.nodes)
	spec := runtime.ClusterSpec{
		Nodes:    c.nodes,
		Protocol: protocol,
		Seed:     c.seed,
		Duration: c.duration,
	}
	if c.damping {
		spec.Tunables.FlapDamping = linkmon.DefaultDamping()
	}
	if c.rto {
		spec.Tunables.AdaptiveRTO = linkmon.DefaultRTO()
	}
	// Ring traffic: every node talks to its successor, so every rail
	// segment carries load and any impairment is felt somewhere.
	for n := 0; n < c.nodes; n++ {
		spec.Flows = append(spec.Flows, runtime.Flow{
			From: n, To: (n + 1) % c.nodes, Interval: 250 * time.Millisecond,
		})
	}
	switch c.mode {
	case "loss":
		// Degrade rail 0's backplane for the whole run; rail 1 stays
		// clean, so a protocol that reroutes can dodge the loss.
		if intensity > 0 {
			spec.Impairments = append(spec.Impairments, chaos.Spec{
				Comp:   cl.Backplane(0),
				Impair: netsim.Impairment{Loss: intensity},
			})
		}
	case "flap":
		// Node 1 loses its rail-1 NIC for good at 1 s, then its rail-0
		// NIC — the only path left — flaps with the intensity as duty
		// cycle. Higher duty, longer outages, more route churn.
		spec.Faults = append(spec.Faults, runtime.Fault{At: time.Second, Comp: cl.NIC(1, 1)})
		if intensity > 0 {
			spec.Impairments = append(spec.Impairments, chaos.Spec{
				Comp:       cl.NIC(1, 0),
				Start:      5 * time.Second,
				FlapPeriod: 8 * time.Second,
				FlapDuty:   intensity,
			})
		}
	case "crash":
		// Node 2 loses its rail-0 NIC at 1 s, so by the first crash the
		// survivors hold non-default routes — exactly what a warm
		// checkpoint preserves and a cold restart must relearn. Node 1
		// then crashes at 10 s and 35 s; the intensity is the MTTR in
		// seconds (0 = the node never comes back, one crash only).
		spec.Faults = append(spec.Faults, runtime.Fault{At: time.Second, Comp: cl.NIC(2, 0)})
		mttr := time.Duration(intensity * float64(time.Second))
		crashAts := []time.Duration{10 * time.Second, 35 * time.Second}
		if mttr == 0 {
			crashAts = crashAts[:1]
		}
		for _, at := range crashAts {
			cs := chaos.CrashSpec{Node: 1, At: at, Warm: variant && mttr > 0}
			if mttr > 0 {
				cs.RestartAt = at + mttr
			}
			spec.Crashes = append(spec.Crashes, cs)
		}
	case "storm":
		// Correlated failure storm: rail 0's backplane dies at 5 s
		// (healing at 20 s) and the intensity fraction of the cluster
		// crashes with it, every victim restarting cold at the same
		// instant — a synchronized rejoin burst on a degraded network,
		// the worst case the budgets exist for. Adaptive RTO is always
		// on (retransmit pressure is the point of the exercise); the
		// variant flag turns on the overload-protection layer.
		spec.Tunables.AdaptiveRTO = linkmon.DefaultRTO()
		spec.Tunables.Lifecycle = true // keep f=0 rows wire-comparable
		if variant {
			spec.Tunables.Overload = overload.Default()
		}
		spec.Faults = append(spec.Faults,
			runtime.Fault{At: 5 * time.Second, Comp: cl.Backplane(0)},
			runtime.Fault{At: 20 * time.Second, Comp: cl.Backplane(0), Restore: true})
		k := int(intensity * float64(c.nodes))
		if intensity > 0 && k < 1 {
			k = 1
		}
		if k > c.nodes-1 {
			k = c.nodes - 1 // node 0 always survives to measure from
		}
		for n := 1; n <= k; n++ {
			spec.Crashes = append(spec.Crashes, chaos.CrashSpec{
				Node: n, At: 5 * time.Second, RestartAt: 8 * time.Second,
			})
		}
	}
	return spec
}

// failoverRegimes is the head-to-head ladder: every protocol faces the
// same five fault cocktails, from nothing at all to failures faster
// than any control plane converges.
var failoverRegimes = []string{"clean", "loss", "flap", "crash", "dynamic"}

// specFailover builds one head-to-head cell: the campaign's ring
// traffic under the named regime, with the forwarding-trace invariant
// checker installed so the table can report loops, revisits and drops
// next to availability.
func (c *campaign) specFailover(protocol, regime string) runtime.ClusterSpec {
	cl := topology.Dual(c.nodes)
	spec := runtime.ClusterSpec{
		Nodes:     c.nodes,
		Protocol:  protocol,
		Seed:      c.seed,
		Duration:  c.duration,
		Invariant: &invariant.Config{},
	}
	if c.damping {
		spec.Tunables.FlapDamping = linkmon.DefaultDamping()
	}
	if c.rto {
		spec.Tunables.AdaptiveRTO = linkmon.DefaultRTO()
	}
	for n := 0; n < c.nodes; n++ {
		spec.Flows = append(spec.Flows, runtime.Flow{
			From: n, To: (n + 1) % c.nodes, Interval: 250 * time.Millisecond,
		})
	}
	switch regime {
	case "clean":
		// Nothing: the baseline row every other regime degrades from.
	case "loss":
		// Rail 0's backplane drops a fifth of its frames for the whole
		// run — a gray failure no carrier oracle can see.
		spec.Impairments = append(spec.Impairments, chaos.Spec{
			Comp:   cl.Backplane(0),
			Impair: netsim.Impairment{Loss: 0.2},
		})
	case "flap":
		// Node 1 loses its rail-1 NIC for good, then its only remaining
		// NIC flaps — the drschaos flap campaign's 0.4-duty cell.
		spec.Faults = append(spec.Faults, runtime.Fault{At: time.Second, Comp: cl.NIC(1, 1)})
		spec.Impairments = append(spec.Impairments, chaos.Spec{
			Comp:       cl.NIC(1, 0),
			Start:      5 * time.Second,
			FlapPeriod: 8 * time.Second,
			FlapDuty:   0.4,
		})
	case "crash":
		// Node 1's daemon fail-stops with its link lights on: the
		// carrier oracle keeps vouching for a dead forwarder, the
		// static family blackholes, and only a probing control plane
		// notices. Node 2's rail-0 NIC dies first so the survivors
		// hold non-trivial routes when the crash lands.
		spec.Faults = append(spec.Faults, runtime.Fault{At: time.Second, Comp: cl.NIC(2, 0)})
		spec.Crashes = append(spec.Crashes, chaos.CrashSpec{
			Node: 1, At: 10 * time.Second, RestartAt: 18 * time.Second,
		})
	case "dynamic":
		// Dai & Foerster's adversary: two NICs on different nodes and
		// rails flapping with incommensurate periods, so mixed-rail
		// cuts open and close continuously — faster than DRS probes
		// converge, slow enough that carrier sensing stays truthful.
		spec.Impairments = append(spec.Impairments,
			chaos.Spec{
				Comp:       cl.NIC(1, 1),
				Start:      time.Second,
				FlapPeriod: 900 * time.Millisecond,
				FlapDuty:   0.5,
			},
			chaos.Spec{
				Comp:       cl.NIC(2, 0),
				Start:      time.Second,
				FlapPeriod: 1300 * time.Millisecond,
				FlapDuty:   0.5,
			})
	}
	return spec
}

// sweep runs the full (protocol × intensity) grid on the parallel
// engine and reduces each run to a table cell. Crash mode doubles the
// grid: every restartable MTTR level runs cold and warm. Failover mode
// replaces the intensity axis with the fixed regime ladder.
func (c *campaign) sweep() ([]cell, error) {
	var specs []runtime.ClusterSpec
	var cells []cell
	if c.mode == "failover" {
		for _, p := range c.protocols {
			for _, rg := range failoverRegimes {
				specs = append(specs, c.specFailover(p, rg))
				cells = append(cells, cell{protocol: p, regime: rg})
			}
		}
	} else {
		for _, p := range c.protocols {
			for _, lv := range c.levels {
				specs = append(specs, c.spec(p, lv, false))
				cells = append(cells, cell{protocol: p, intensity: lv})
				switch {
				case c.mode == "crash" && lv > 0:
					specs = append(specs, c.spec(p, lv, true))
					cells = append(cells, cell{protocol: p, intensity: lv, warm: true})
				case c.mode == "storm":
					specs = append(specs, c.spec(p, lv, true))
					cells = append(cells, cell{protocol: p, intensity: lv, budgeted: true})
				}
			}
		}
	}
	results, err := runtime.RunMany(context.Background(), specs, c.workers)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		for _, f := range res.Flows {
			cells[i].sent += f.Sent
			cells[i].delivered += f.Delivered
		}
		cells[i].flaps = res.Trace.Count(trace.KindLinkDown)
		cells[i].damped = res.Trace.Count(trace.KindRouteDamped)
		cells[i].repairs = len(res.Repairs)
		var total time.Duration
		for _, r := range res.Repairs {
			total += r.Latency()
		}
		if len(res.Repairs) > 0 {
			cells[i].meanRepair = total / time.Duration(len(res.Repairs))
		}
		if c.mode == "crash" {
			cells[i].crashes = res.Trace.Count(trace.KindNodeCrashed)
			cells[i].meanRecovery, cells[i].recovered = crashRecovery(res.Trace, 1)
		}
		if c.mode == "storm" {
			cells[i].crashes = res.Trace.Count(trace.KindNodeCrashed)
			for _, m := range res.Counters {
				cells[i].shed += m[routing.CtrProbeShed] + m[routing.CtrQueryShed]
				cells[i].degraded += m[routing.CtrDegradedEnter]
				if v := m[routing.CtrProbeRetransmits]; v > cells[i].maxRetrans {
					cells[i].maxRetrans = v
				}
				if v := m[routing.CtrQueriesSent]; v > cells[i].maxQueries {
					cells[i].maxQueries = v
				}
			}
		}
		if rep := res.Invariant; rep != nil {
			cells[i].loops = rep.Loops
			cells[i].revisits = rep.Revisits
			cells[i].drops = rep.Undelivered
		}
	}
	return cells, nil
}

// crashRecovery scans a run's trace for the crashed node's recovery
// latency: for each restart, the delay until the node's next repaired
// route (warm restores count — their route-installed events carry the
// restart's timestamp). Restarts that never repair a route before the
// next crash (or the horizon) are excluded from the mean.
func crashRecovery(log *trace.Log, node int) (mean time.Duration, recovered int) {
	events := log.Events()
	var total time.Duration
	for i, ev := range events {
		if ev.Kind != trace.KindNodeRestarted || ev.Node != node {
			continue
		}
	scan:
		for _, later := range events[i+1:] {
			switch {
			case later.Node == node && later.Kind == trace.KindRouteInstalled:
				total += later.At - ev.At
				recovered++
				break scan
			case later.Node == node && later.Kind == trace.KindNodeCrashed:
				break scan // died again before repairing anything
			}
		}
	}
	if recovered > 0 {
		mean = total / time.Duration(recovered)
	}
	return mean, recovered
}

// availability is the cell's delivered fraction.
func (cl *cell) availability() float64 {
	if cl.sent == 0 {
		return 0
	}
	return float64(cl.delivered) / float64(cl.sent)
}

func (c *campaign) title() string {
	var what string
	switch c.mode {
	case "loss":
		what = "backplane-0 frame loss"
	case "flap":
		what = "rail-0 flap duty cycle"
	case "crash":
		what = "node-1 crash MTTR"
	case "failover":
		what = "static fast-failover head-to-head"
	case "storm":
		what = "correlated-failure storm fraction"
	}
	damp := ""
	if c.damping {
		damp = ", damping on"
	}
	rto := ""
	if c.rto {
		rto = ", adaptive rto"
	}
	return fmt.Sprintf("chaos campaign: %s (%d nodes, %v, seed %d%s%s)",
		what, c.nodes, c.duration, c.seed, damp, rto)
}

func (c *campaign) writeTable(w io.Writer, cells []cell) error {
	if _, err := fmt.Fprintf(w, "# %s\n", c.title()); err != nil {
		return err
	}
	if c.mode == "crash" {
		return c.writeCrashTable(w, cells)
	}
	if c.mode == "failover" {
		return c.writeFailoverTable(w, cells)
	}
	if c.mode == "storm" {
		return c.writeStormTable(w, cells)
	}
	fmt.Fprintf(w, "%10s %10s %8s %7s %7s %8s %13s\n",
		"protocol", "intensity", "avail%", "flaps", "damped", "repairs", "mean-failover")
	for i := range cells {
		cl := &cells[i]
		failover := "-"
		if cl.repairs > 0 {
			failover = cl.meanRepair.Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "%10s %10.2f %8.2f %7d %7d %8d %13s\n",
			cl.protocol, cl.intensity, 100*cl.availability(),
			cl.flaps, cl.damped, cl.repairs, failover)
	}
	return nil
}

// writeFailoverTable renders the head-to-head grid: availability side
// by side with the invariant checker's verdict, so a protocol cannot
// look good by looping (the loops column convicts it in the same row)
// and honest loss is distinguishable from misrouting (drops counts
// tracked packets that vanished, excused or not).
func (c *campaign) writeFailoverTable(w io.Writer, cells []cell) error {
	fmt.Fprintf(w, "%15s %8s %8s %6s %9s %6s %8s\n",
		"protocol", "regime", "avail%", "loops", "revisits", "drops", "repairs")
	for i := range cells {
		cl := &cells[i]
		fmt.Fprintf(w, "%15s %8s %8.2f %6d %9d %6d %8d\n",
			cl.protocol, cl.regime, 100*cl.availability(),
			cl.loops, cl.revisits, cl.drops, cl.repairs)
	}
	return nil
}

// writeStormTable renders storm mode's budget off/on row pairs:
// fraction is the share of the cluster that crash-restarted in
// lock-step, shed and degraded sum the budget refusals and
// degraded-mode entries across the cluster, and max-rt / max-qry are
// the worst single node's probe-retransmit and query-frame counts —
// the numbers the budgets bound. An unbudgeted row shows what the
// storm costs without admission control; its budgeted twin shows the
// bound holding.
func (c *campaign) writeStormTable(w io.Writer, cells []cell) error {
	fmt.Fprintf(w, "%10s %9s %7s %8s %8s %8s %6s %9s %7s %8s\n",
		"protocol", "fraction", "budget", "avail%", "crashes", "repairs", "shed", "degraded", "max-rt", "max-qry")
	for i := range cells {
		cl := &cells[i]
		budget := "off"
		if cl.budgeted {
			budget = "on"
		}
		fmt.Fprintf(w, "%10s %9.2f %7s %8.2f %8d %8d %6d %9d %7d %8d\n",
			cl.protocol, cl.intensity, budget, 100*cl.availability(),
			cl.crashes, cl.repairs, cl.shed, cl.degraded, cl.maxRetrans, cl.maxQueries)
	}
	return nil
}

// writeCrashTable renders crash mode's cold/warm row pairs: mttr-s is
// the level (seconds the node stays dead), recovery is the mean delay
// from a restart to the crashed node's next repaired route ("-" when
// no restart repaired anything — baselines without repair accounting,
// or a node that never came back).
func (c *campaign) writeCrashTable(w io.Writer, cells []cell) error {
	fmt.Fprintf(w, "%10s %8s %6s %8s %8s %8s %10s\n",
		"protocol", "mttr-s", "start", "avail%", "crashes", "repairs", "recovery")
	for i := range cells {
		cl := &cells[i]
		start := "cold"
		if cl.warm {
			start = "warm"
		}
		recovery := "-"
		if cl.recovered > 0 {
			recovery = cl.meanRecovery.Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "%10s %8.2f %6s %8.2f %8d %8d %10s\n",
			cl.protocol, cl.intensity, start, 100*cl.availability(),
			cl.crashes, cl.repairs, recovery)
	}
	return nil
}

func (c *campaign) writePlot(w io.Writer, cells []cell) error {
	var series []asciiplot.Series
	variants := []bool{false}
	if c.mode == "crash" {
		variants = []bool{false, true}
	}
	for _, p := range c.protocols {
		for _, warm := range variants {
			name := p
			if c.mode == "crash" {
				if warm {
					name += "(warm)"
				} else {
					name += "(cold)"
				}
			}
			s := asciiplot.Series{Name: name}
			for i := range cells {
				if cells[i].protocol != p || cells[i].warm != warm {
					continue
				}
				s.X = append(s.X, cells[i].intensity)
				s.Y = append(s.Y, 100*cells[i].availability())
			}
			if len(s.X) > 0 {
				series = append(series, s)
			}
		}
	}
	xlabel := "intensity"
	if c.mode == "crash" {
		xlabel = "mttr (s)"
	}
	return asciiplot.Render(w, asciiplot.Config{
		Title:  c.title(),
		XLabel: xlabel,
		YLabel: "availability (%)",
	}, series...)
}
