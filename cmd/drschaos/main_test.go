package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestLossCampaignGolden pins the loss-sweep table to the digit: the
// impairment randomness comes from seeded substreams, so availability,
// flap counts and repair counts are exactly reproducible.
func TestLossCampaignGolden(t *testing.T) {
	const golden = `# chaos campaign: backplane-0 frame loss (4 nodes, 30s, seed 3)
  protocol  intensity   avail%   flaps  damped  repairs mean-failover
       drs       0.00    99.17       0       0        0             -
       drs       0.30    87.29      30       0       12            0s
    static       0.00    99.17       0       0        0             -
    static       0.30    66.67       0       0        0             -
`
	var out, errb bytes.Buffer
	args := []string{"-nodes", "4", "-duration", "30s", "-levels", "0,0.3",
		"-protocols", "drs,static", "-seed", "3"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != golden {
		t.Fatalf("loss campaign drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestFlapCampaignGolden pins the flap sweep with damping enabled —
// the damped column being non-zero proves the hold-down engaged.
func TestFlapCampaignGolden(t *testing.T) {
	const golden = `# chaos campaign: rail-0 flap duty cycle (4 nodes, 1m0s, seed 3, damping on)
  protocol  intensity   avail%   flaps  damped  repairs mean-failover
       drs       0.00    99.58       6       0        0             -
       drs       0.50    78.75      48       6       30         667ms
`
	var out, errb bytes.Buffer
	args := []string{"-mode", "flap", "-nodes", "4", "-duration", "60s",
		"-levels", "0,0.5", "-protocols", "drs", "-damping", "-seed", "3"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != golden {
		t.Fatalf("flap campaign drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestCrashCampaignGolden pins the crash–restart sweep: each nonzero
// MTTR level yields a cold and a warm row, and the warm start's
// restored checkpoint must show as strictly higher availability and
// a shorter post-restart recovery for the DRS. The reactive baseline
// has no checkpoint to restore, so its warm rows equal its cold ones.
// (The mttr-0 repair count dropped by one when the one-way-crash
// double count was fixed: the dead node's banked repairs used to be
// re-read from its still-registered router at Finish.)
func TestCrashCampaignGolden(t *testing.T) {
	const golden = `# chaos campaign: node-1 crash MTTR (4 nodes, 30s, seed 3)
  protocol   mttr-s  start   avail%  crashes  repairs   recovery
       drs     0.00   cold    62.50        1        8          -
       drs     2.00   cold    90.83        1       12         2s
       drs     2.00   warm    92.50        1       11         0s
       drs     8.00   cold    83.96        1       12         2s
       drs     8.00   warm    85.62        1       11         0s
  reactive     0.00   cold    56.25        1        0          -
  reactive     2.00   cold    86.04        1        0         0s
  reactive     2.00   warm    86.04        1        0         0s
  reactive     8.00   cold    76.04        1        0         0s
  reactive     8.00   warm    76.04        1        0         0s
`
	var out, errb bytes.Buffer
	args := []string{"-mode", "crash", "-nodes", "4", "-duration", "30s",
		"-protocols", "drs,reactive", "-seed", "3"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != golden {
		t.Fatalf("crash campaign drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestCrashCampaignAdaptiveRTOGolden: with -rto the adaptive probe
// deadline detects the dead node's silence within the backed-off RTT
// envelope instead of at the next round, cutting the cold recovery
// from 2 s to 1 s while the warm restore stays instant.
func TestCrashCampaignAdaptiveRTOGolden(t *testing.T) {
	const golden = `# chaos campaign: node-1 crash MTTR (4 nodes, 30s, seed 3, adaptive rto)
  protocol   mttr-s  start   avail%  crashes  repairs   recovery
       drs     0.00   cold    65.42        1        8          -
       drs     2.00   cold    96.04        1       12         1s
       drs     2.00   warm    96.88        1       11         0s
       drs     8.00   cold    87.71        1       12         1s
       drs     8.00   warm    88.54        1       11         0s
`
	var out, errb bytes.Buffer
	args := []string{"-mode", "crash", "-nodes", "4", "-duration", "30s",
		"-protocols", "drs", "-rto", "-seed", "3"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != golden {
		t.Fatalf("rto crash campaign drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestWorkersIdentical: the sweep is sharded over the parallel engine;
// the worker count must change wall time only, never a byte of output.
func TestWorkersIdentical(t *testing.T) {
	render := func(workers string) string {
		var out, errb bytes.Buffer
		args := []string{"-mode", "flap", "-nodes", "4", "-duration", "30s",
			"-levels", "0,0.25,0.5", "-protocols", "drs,reactive", "-damping",
			"-workers", workers}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("workers=%s: exit %d, stderr: %s", workers, code, errb.String())
		}
		return out.String()
	}
	ref := render("1")
	for _, w := range []string{"2", "8", "0"} {
		if got := render(w); got != ref {
			t.Fatalf("workers=%s output differs:\n--- got ---\n%s--- want ---\n%s", w, got, ref)
		}
	}
}

// TestCrashWorkersIdentical: the crash sweep interleaves cold and warm
// cells per level; sharding must not reorder or perturb a byte.
func TestCrashWorkersIdentical(t *testing.T) {
	render := func(workers string) string {
		var out, errb bytes.Buffer
		args := []string{"-mode", "crash", "-nodes", "4", "-duration", "30s",
			"-levels", "0,2,8", "-protocols", "drs,reactive", "-rto",
			"-workers", workers}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("workers=%s: exit %d, stderr: %s", workers, code, errb.String())
		}
		return out.String()
	}
	ref := render("1")
	for _, w := range []string{"2", "8", "0"} {
		if got := render(w); got != ref {
			t.Fatalf("workers=%s output differs:\n--- got ---\n%s--- want ---\n%s", w, got, ref)
		}
	}
}

// TestPlotMode: -plot renders the ASCII chart with per-protocol legend.
func TestPlotMode(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-nodes", "4", "-duration", "20s", "-levels", "0,0.2",
		"-protocols", "drs,static", "-plot"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"availability (%)", "intensity", "drs", "static"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("plot output missing %q:\n%s", want, out.String())
		}
	}
}

// TestBadFlags exercises the error paths.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "meteor"},
		{"-protocols", "ospf"},
		{"-levels", "lots"},
		{"-levels", "1.5"},
		{"-nodes", "1"},
		{"-duration", "-3s"},
		{"-not-a-flag"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("args %v accepted", args)
		}
		if errb.Len() == 0 {
			t.Errorf("args %v produced no diagnostics", args)
		}
	}
}

// TestFailoverCampaignGolden pins the static fast-failover head-to-head
// to the digit, default lineup included (no -protocols flag: the mode
// swaps in the static family plus the convergence protocols). The
// rows carry the head-to-head story: the relay-capable variants hold
// the clean-run availability through the dynamic regime that degrades
// every convergence protocol, the stateless arborescence is convicted
// of forwarding loops when a node is fully cut off mid-flap, and the
// bounce variant matches its availability with provable loop-freedom.
func TestFailoverCampaignGolden(t *testing.T) {
	const golden = `# chaos campaign: static fast-failover head-to-head (4 nodes, 30s, seed 3)
       protocol   regime   avail%  loops  revisits  drops  repairs
 failover-rotor    clean    99.17      0         0      4        0
 failover-rotor     loss    88.96      0         0     53        0
 failover-rotor     flap    81.25      0         0      2        0
 failover-rotor    crash    85.83      0         0     36        0
 failover-rotor  dynamic    93.12      0         0      3        0
 failover-arbor    clean    99.17      0         0      4        0
 failover-arbor     loss    88.96      0         0     53        0
 failover-arbor     flap    81.25    172         0     46        0
 failover-arbor    crash    85.83      0         0     36        0
 failover-arbor  dynamic    99.17      0         0      4        0
failover-bounce    clean    99.17      0         0      4        0
failover-bounce     loss    88.96      0         0     53        0
failover-bounce     flap    81.25      0         0     46        0
failover-bounce    crash    85.83      0         0     36        0
failover-bounce  dynamic    99.17      0         0      4        0
            drs    clean    99.17      0         0      4        0
            drs     loss    85.83      0         0     68        5
            drs     flap    87.50      0         0     60       21
            drs    crash    83.96      0         0     36       12
            drs  dynamic    85.83      0         0     68       24
      linkstate    clean    99.17      0         0      4        0
      linkstate     loss    79.38      0         0     99        0
      linkstate     flap    78.12     36         0    129        0
      linkstate    crash    79.17     12         0     60        0
      linkstate  dynamic    75.00      0         0    120        0
       reactive    clean    99.17      0         0      4        0
       reactive     loss    77.29      0         0    109        0
       reactive     flap    81.25      0         0     90        0
       reactive    crash    76.04      0         0     82        0
       reactive  dynamic    75.00      0         0    120        0
`
	var out, errb bytes.Buffer
	args := []string{"-mode", "failover", "-nodes", "4", "-duration", "30s", "-seed", "3"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != golden {
		t.Fatalf("failover head-to-head drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestFailoverWorkersIdentical: the head-to-head grid — invariant
// verdict columns included — is byte-identical at every worker count.
func TestFailoverWorkersIdentical(t *testing.T) {
	render := func(workers string) string {
		var out, errb bytes.Buffer
		args := []string{"-mode", "failover", "-nodes", "4", "-duration", "15s",
			"-protocols", "failover-rotor,failover-bounce,drs", "-workers", workers}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("workers=%s: exit %d, stderr: %s", workers, code, errb.String())
		}
		return out.String()
	}
	ref := render("1")
	for _, w := range []string{"2", "8", "0"} {
		if got := render(w); got != ref {
			t.Fatalf("workers=%s output differs:\n--- got ---\n%s--- want ---\n%s", w, got, ref)
		}
	}
}

// TestFailoverModeFlagErrors: the regime ladder replaces the numeric
// intensity axis, so -levels and -plot must be refused loudly.
func TestFailoverModeFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "failover", "-levels", "0,0.5"},
		{"-mode", "failover", "-plot"},
		{"-mode", "failover", "-nodes", "2"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("args %v accepted", args)
		}
		if errb.Len() == 0 {
			t.Errorf("args %v produced no diagnostics", args)
		}
	}
}

// TestStormCampaignGolden pins the correlated-failure storm sweep to
// the digit. Each fraction level yields a budget-off and a budget-on
// row; the headline property is in the max-rt column: without budgets
// the worst node's probe retransmits grow with the crash fraction,
// with budgets they stay pinned under the token-bucket bound
// (rate·T + burst = 2·30 + 4 = 64) while the shed and degraded
// columns show the protection engaging.
func TestStormCampaignGolden(t *testing.T) {
	const golden = `# chaos campaign: correlated-failure storm fraction (5 nodes, 30s, seed 3)
  protocol  fraction  budget   avail%  crashes  repairs   shed  degraded  max-rt  max-qry
       drs      0.00     off    98.33        0       20      0         0     128        0
       drs      0.00      on    98.33        0       20    310         5      54        0
       drs      0.50     off    93.33        2       26      0         0     144       14
       drs      0.50      on    89.50        2       30    207         3      55        4
`
	var out, errb bytes.Buffer
	args := []string{"-mode", "storm", "-nodes", "5", "-duration", "30s",
		"-levels", "0,0.5", "-seed", "3"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != golden {
		t.Fatalf("storm campaign drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
	// Beyond the exact bytes, assert the property the table exists to
	// demonstrate so a regenerated golden can't silently lose it: every
	// budgeted row's max-rt must sit under the bucket bound.
	const bound = 2*30 + 4
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.Contains(line, " on ") {
			continue
		}
		f := strings.Fields(line)
		if rt, err := strconv.Atoi(f[len(f)-2]); err != nil || rt > bound {
			t.Errorf("budgeted row exceeds retransmit bound %d: %q", bound, line)
		}
	}
}

// TestStormWorkersIdentical: the storm sweep runs budget-off/on pairs
// per fraction level across the parallel engine; the per-node counter
// collection must stay byte-identical at any worker count.
func TestStormWorkersIdentical(t *testing.T) {
	render := func(workers string) string {
		var out, errb bytes.Buffer
		args := []string{"-mode", "storm", "-nodes", "4", "-duration", "20s",
			"-levels", "0,0.5", "-workers", workers}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("workers=%s: exit %d, stderr: %s", workers, code, errb.String())
		}
		return out.String()
	}
	ref := render("1")
	for _, w := range []string{"2", "8", "0"} {
		if got := render(w); got != ref {
			t.Fatalf("workers=%s output differs:\n--- got ---\n%s--- want ---\n%s", w, got, ref)
		}
	}
}

// TestStormModeFlagErrors: the storm table has no plot rendering, the
// fraction axis must stay below 1 (at least one survivor), and the
// campaign needs enough nodes for a meaningful correlated kill.
func TestStormModeFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "storm", "-plot"},
		{"-mode", "storm", "-levels", "0,1"},
		{"-mode", "storm", "-nodes", "3"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("args %v accepted", args)
		}
		if errb.Len() == 0 {
			t.Errorf("args %v produced no diagnostics", args)
		}
	}
}
