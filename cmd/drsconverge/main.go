// Command drsconverge regenerates the paper's Figure 3: the mean
// absolute difference between the Monte Carlo simulation and the
// analytic Equation 1, over f < N < 64, as the iteration count grows
// (log10 ladder) — converging to zero.
//
// Usage:
//
//	drsconverge [-f list] [-nmax n] [-iters list] [-seed s] [-workers n]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"drsnet/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("drsconverge", flag.ContinueOnError)
	flags.SetOutput(stderr)
	fs := flags.String("f", "2,3,4,5,6,7,8,9,10", "failure counts, comma separated")
	nmax := flags.Int("nmax", 63, "largest cluster size")
	iters := flags.String("iters", "10,100,1000,10000,100000", "iteration ladder, ascending")
	seed := flags.Uint64("seed", 1, "simulation seed")
	workers := flags.Int("workers", 0, "worker goroutines (0 = all CPUs)")
	plot := flags.Bool("plot", false, "render the figure as an ASCII chart instead of a table")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	cfg := experiments.Figure3Defaults()
	cfg.NMax = *nmax
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Failures = nil
	for _, tok := range strings.Split(*fs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fmt.Fprintf(stderr, "drsconverge: bad failure count %q: %v\n", tok, err)
			return 1
		}
		cfg.Failures = append(cfg.Failures, v)
	}
	cfg.Iterations = nil
	for _, tok := range strings.Split(*iters, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			fmt.Fprintf(stderr, "drsconverge: bad iteration count %q: %v\n", tok, err)
			return 1
		}
		cfg.Iterations = append(cfg.Iterations, v)
	}

	res, err := experiments.Figure3(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "drsconverge: %v\n", err)
		return 1
	}
	write := res.WriteTable
	if *plot {
		write = res.WritePlot
	}
	if err := write(stdout); err != nil {
		fmt.Fprintf(stderr, "drsconverge: %v\n", err)
		return 1
	}
	return 0
}
