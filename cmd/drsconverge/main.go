// Command drsconverge regenerates the paper's Figure 3: the mean
// absolute difference between the Monte Carlo simulation and the
// analytic Equation 1, over f < N < 64, as the iteration count grows
// (log10 ladder) — converging to zero.
//
// Usage:
//
//	drsconverge [-f list] [-nmax n] [-iters list] [-seed s] [-workers n]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"drsnet/internal/experiments"
)

func main() {
	fs := flag.String("f", "2,3,4,5,6,7,8,9,10", "failure counts, comma separated")
	nmax := flag.Int("nmax", 63, "largest cluster size")
	iters := flag.String("iters", "10,100,1000,10000,100000", "iteration ladder, ascending")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "worker goroutines (0 = all CPUs)")
	plot := flag.Bool("plot", false, "render the figure as an ASCII chart instead of a table")
	flag.Parse()

	cfg := experiments.Figure3Defaults()
	cfg.NMax = *nmax
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Failures = nil
	for _, tok := range strings.Split(*fs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsconverge: bad failure count %q: %v\n", tok, err)
			os.Exit(1)
		}
		cfg.Failures = append(cfg.Failures, v)
	}
	cfg.Iterations = nil
	for _, tok := range strings.Split(*iters, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsconverge: bad iteration count %q: %v\n", tok, err)
			os.Exit(1)
		}
		cfg.Iterations = append(cfg.Iterations, v)
	}

	res, err := experiments.Figure3(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drsconverge: %v\n", err)
		os.Exit(1)
	}
	write := res.WriteTable
	if *plot {
		write = res.WritePlot
	}
	if err := write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "drsconverge: %v\n", err)
		os.Exit(1)
	}
}
