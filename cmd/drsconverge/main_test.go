package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFigure3Golden pins the exact convergence table for a small grid:
// the Monte Carlo substreams are seeded, so the mean absolute
// deviations are reproducible to the digit.
func TestFigure3Golden(t *testing.T) {
	const golden = `# Figure 3: mean |simulated - analytic| over f<N<13 vs iterations
     iters         2f         3f
        10   0.041632   0.073011
       100   0.028219   0.026630
`
	var out, errb bytes.Buffer
	if code := run([]string{"-f", "2,3", "-nmax", "12", "-iters", "10,100"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != golden {
		t.Fatalf("Figure 3 table drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestFigure3WorkersIdentical: worker count changes wall time only.
func TestFigure3WorkersIdentical(t *testing.T) {
	render := func(workers string) string {
		var out, errb bytes.Buffer
		args := []string{"-f", "2,3,4", "-nmax", "14", "-iters", "10,100", "-workers", workers}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("workers=%s: exit %d, stderr: %s", workers, code, errb.String())
		}
		return out.String()
	}
	ref := render("1")
	for _, w := range []string{"2", "8", "0"} {
		if got := render(w); got != ref {
			t.Fatalf("workers=%s output differs:\n--- got ---\n%s--- want ---\n%s", w, got, ref)
		}
	}
}

// TestPlotMode: -plot renders the ASCII chart with the per-f legend.
func TestPlotMode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-f", "2,3", "-nmax", "12", "-iters", "10,100", "-plot"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"iterations (log scale)", "f=2", "f=3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("plot output missing %q:\n%s", want, out.String())
		}
	}
}

// TestBadFlags exercises the error paths.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-f", "two"},
		{"-iters", "ten"},
		{"-not-a-flag"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("args %v accepted", args)
		}
		if errb.Len() == 0 {
			t.Errorf("args %v produced no diagnostics", args)
		}
	}
}
