// Command drscost regenerates the paper's Figure 1: the response time
// of a full DRS link-check round versus cluster size, for several
// probe-bandwidth budgets on a 100 Mb/s network.
//
// Usage:
//
//	drscost [-rate bits] [-frame bytes] [-budgets list] [-min n] [-max n] [-step n] [-ordered]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"drsnet/internal/costmodel"
	"drsnet/internal/experiments"
)

func main() {
	rate := flag.Float64("rate", costmodel.DefaultLinkRate, "link rate in bits/s")
	frame := flag.Int("frame", costmodel.DefaultFrameBytes, "probe frame size on the wire (bytes)")
	budgets := flag.String("budgets", "5,10,15,25", "bandwidth budgets in percent, comma separated")
	minN := flag.Int("min", 2, "smallest cluster size")
	maxN := flag.Int("max", 128, "largest cluster size")
	step := flag.Int("step", 2, "cluster size step")
	ordered := flag.Bool("ordered", false, "model every daemon probing every peer (doubles traffic)")
	plot := flag.Bool("plot", false, "render the figure as an ASCII chart instead of a table")
	flag.Parse()

	params := costmodel.Params{LinkRate: *rate, FrameBytes: *frame, OrderedPairs: *ordered}
	var buds []float64
	for _, tok := range strings.Split(*budgets, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drscost: bad budget %q: %v\n", tok, err)
			os.Exit(1)
		}
		buds = append(buds, v/100)
	}

	res, err := experiments.Figure1(params, buds, *minN, *maxN, *step)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drscost: %v\n", err)
		os.Exit(1)
	}
	write := res.WriteTable
	if *plot {
		write = res.WritePlot
	}
	if err := write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "drscost: %v\n", err)
		os.Exit(1)
	}

	// The paper's headline, recomputed for the chosen parameters.
	for _, b := range buds {
		n, err := params.MaxNodes(b, 1.0)
		if err != nil {
			continue
		}
		fmt.Printf("# budget %4.0f%%: up to %d hosts checked in < 1 s\n", b*100, n)
	}
}
