// Command drscost regenerates the paper's Figure 1: the response time
// of a full DRS link-check round versus cluster size, for several
// probe-bandwidth budgets on a 100 Mb/s network.
//
// Usage:
//
//	drscost [-rate bits] [-frame bytes] [-budgets list] [-min n] [-max n]
//	        [-step n] [-workers w] [-ordered]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"drsnet/internal/costmodel"
	"drsnet/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("drscost", flag.ContinueOnError)
	flags.SetOutput(stderr)
	rate := flags.Float64("rate", costmodel.DefaultLinkRate, "link rate in bits/s")
	frame := flags.Int("frame", costmodel.DefaultFrameBytes, "probe frame size on the wire (bytes)")
	budgets := flags.String("budgets", "5,10,15,25", "bandwidth budgets in percent, comma separated")
	minN := flags.Int("min", 2, "smallest cluster size")
	maxN := flags.Int("max", 128, "largest cluster size")
	step := flags.Int("step", 2, "cluster size step")
	workers := flags.Int("workers", 0, "sweep worker goroutines (0 = all CPUs); output is identical for every count")
	ordered := flags.Bool("ordered", false, "model every daemon probing every peer (doubles traffic)")
	plot := flags.Bool("plot", false, "render the figure as an ASCII chart instead of a table")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	params := costmodel.Params{LinkRate: *rate, FrameBytes: *frame, OrderedPairs: *ordered}
	var buds []float64
	for _, tok := range strings.Split(*budgets, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Fprintf(stderr, "drscost: bad budget %q: %v\n", tok, err)
			return 1
		}
		buds = append(buds, v/100)
	}

	res, err := experiments.Figure1Workers(params, buds, *minN, *maxN, *step, *workers)
	if err != nil {
		fmt.Fprintf(stderr, "drscost: %v\n", err)
		return 1
	}
	write := res.WriteTable
	if *plot {
		write = res.WritePlot
	}
	if err := write(stdout); err != nil {
		fmt.Fprintf(stderr, "drscost: %v\n", err)
		return 1
	}

	// The paper's headline, recomputed for the chosen parameters.
	for _, b := range buds {
		n, err := params.MaxNodes(b, 1.0)
		if err != nil {
			continue
		}
		fmt.Fprintf(stdout, "# budget %4.0f%%: up to %d hosts checked in < 1 s\n", b*100, n)
	}
	return 0
}
