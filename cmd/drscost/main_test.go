package main

import (
	"bytes"
	"testing"
)

// TestFigure1Golden pins the exact Figure 1 table for the default
// 100 Mb/s parameters at a coarse grid, plus the paper's "hosts in
// under a second" headline lines.
func TestFigure1Golden(t *testing.T) {
	const golden = `# Figure 1: response time (s) vs number of nodes, 100 Mb/s network
 nodes         5%        10%        15%        25%
     8     0.0075     0.0038     0.0025     0.0015
    16     0.0323     0.0161     0.0108     0.0065
    24     0.0742     0.0371     0.0247     0.0148
    32     0.1333     0.0667     0.0444     0.0267
    40     0.2097     0.1048     0.0699     0.0419
    48     0.3032     0.1516     0.1011     0.0606
    56     0.4140     0.2070     0.1380     0.0828
    64     0.5419     0.2710     0.1806     0.1084
# budget    5%: up to 86 hosts checked in < 1 s
# budget   10%: up to 122 hosts checked in < 1 s
# budget   15%: up to 149 hosts checked in < 1 s
# budget   25%: up to 193 hosts checked in < 1 s
`
	var out, errb bytes.Buffer
	if code := run([]string{"-budgets", "5,10,15,25", "-min", "8", "-max", "64", "-step", "8"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != golden {
		t.Fatalf("Figure 1 table drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestFigure1WorkersIdentical: the table must be byte-identical at
// every worker count.
func TestFigure1WorkersIdentical(t *testing.T) {
	render := func(workers string) string {
		var out, errb bytes.Buffer
		if code := run([]string{"-min", "2", "-max", "96", "-step", "2", "-workers", workers}, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		return out.String()
	}
	ref := render("1")
	for _, w := range []string{"2", "8"} {
		if got := render(w); got != ref {
			t.Fatalf("workers=%s output differs", w)
		}
	}
}

// TestBadFlags exercises the error paths.
func TestBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-budgets", "lots"}, &out, &errb); code == 0 {
		t.Fatal("bad -budgets accepted")
	}
	if code := run([]string{"-step", "0"}, &out, &errb); code == 0 {
		t.Fatal("zero step accepted")
	}
}
