package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"drsnet/internal/runtime"
	"drsnet/internal/scenario"
	"drsnet/internal/transport"
)

// Config is one daemon's node file: which node of which cluster this
// process is, where its sockets live, and how it persists and reports.
// The cluster itself — shape, protocol, tunables — comes from the
// referenced ClusterSpec scenario document, the exact same JSON
// cmd/drsim executes (its traffic and duration describe the simulated
// workload and are ignored live).
type Config struct {
	// Node is the local node index.
	Node int `json:"node"`
	// Cluster is the path to the ClusterSpec scenario JSON, resolved
	// relative to this config file.
	Cluster string `json:"cluster"`
	// Listen holds this node's bind address per rail.
	Listen []string `json:"listen"`
	// Peers holds every node's per-rail address: peers[node][rail].
	Peers [][]string `json:"peers"`
	// Checkpoint is the warm-start image path. Empty disables
	// checkpointing (every restart is cold).
	Checkpoint string `json:"checkpoint,omitempty"`
	// CheckpointEvery is the persistence period (default 1s).
	CheckpointEvery scenario.Duration `json:"checkpointEvery,omitempty"`
	// Status is the status-snapshot path, rewritten atomically each
	// period; empty emits JSON lines on stdout instead.
	Status string `json:"status,omitempty"`
	// StatusEvery is the reporting period (default 1s).
	StatusEvery scenario.Duration `json:"statusEvery,omitempty"`
	// HTTPAddr, when set, serves GET /status and /metrics there.
	HTTPAddr string `json:"httpAddr,omitempty"`
}

// loadConfig parses and cross-validates a node config, returning it
// together with the cluster spec it names. Every error string is part
// of the -validate contract and golden-tested.
func loadConfig(path string) (*Config, runtime.ClusterSpec, error) {
	var spec runtime.ClusterSpec
	f, err := os.Open(path)
	if err != nil {
		return nil, spec, fmt.Errorf("drsd: %v", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, spec, fmt.Errorf("drsd: config %s: %v", path, err)
	}
	if cfg.Cluster == "" {
		return nil, spec, fmt.Errorf("drsd: config %s: no cluster spec named", path)
	}
	clusterPath := cfg.Cluster
	if !filepath.IsAbs(clusterPath) {
		clusterPath = filepath.Join(filepath.Dir(path), clusterPath)
	}
	cf, err := os.Open(clusterPath)
	if err != nil {
		return nil, spec, fmt.Errorf("drsd: %v", err)
	}
	defer cf.Close()
	sc, err := scenario.Load(cf)
	if err != nil {
		return nil, spec, fmt.Errorf("drsd: cluster %s: %v", cfg.Cluster, err)
	}
	spec, err = sc.Spec()
	if err != nil {
		return nil, spec, fmt.Errorf("drsd: cluster %s: %v", cfg.Cluster, err)
	}
	if kind := spec.Topology.Kind; !(kind == "" || kind == "dualRail") {
		return nil, spec, fmt.Errorf("drsd: cluster %s: live mode supports dual-rail clusters only, not %q fabrics", cfg.Cluster, kind)
	}
	rails := spec.Rails
	if rails == 0 {
		rails = 2 // the dual-rail default runtime normalization applies
	}
	if cfg.Node < 0 || cfg.Node >= spec.Nodes {
		return nil, spec, fmt.Errorf("drsd: node %d out of range [0,%d)", cfg.Node, spec.Nodes)
	}
	if len(cfg.Listen) != rails {
		return nil, spec, fmt.Errorf("drsd: listen has %d addresses, cluster has %d rails", len(cfg.Listen), rails)
	}
	if len(cfg.Peers) != spec.Nodes {
		return nil, spec, fmt.Errorf("drsd: peers has %d rows, cluster has %d nodes", len(cfg.Peers), spec.Nodes)
	}
	for i, row := range cfg.Peers {
		if len(row) != rails {
			return nil, spec, fmt.Errorf("drsd: peers[%d] has %d addresses, cluster has %d rails", i, len(row), rails)
		}
	}
	if cfg.CheckpointEvery < 0 || cfg.StatusEvery < 0 {
		return nil, spec, fmt.Errorf("drsd: negative checkpointEvery or statusEvery")
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = scenario.Duration(time.Second)
	}
	if cfg.StatusEvery == 0 {
		cfg.StatusEvery = scenario.Duration(time.Second)
	}
	return &cfg, spec, nil
}

// transportConfig maps the node file onto the UDP transport.
func (c *Config) transportConfig() transport.UDPConfig {
	return transport.UDPConfig{Node: c.Node, Listen: c.Listen, Peers: c.Peers}
}
