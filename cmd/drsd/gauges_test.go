package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"drsnet/internal/clock"
	"drsnet/internal/core"
	"drsnet/internal/routing"
	"drsnet/internal/runtime"
	"drsnet/internal/scenario"
	"drsnet/internal/transport"
)

// gaugeCluster is the overload-enabled cluster document the gauge
// tests run — the same JSON a drsd node file would reference, so this
// pins the scenario→daemon wiring of the overload block too.
const gaugeCluster = `{
  "nodes": 3,
  "protocol": "drs",
  "duration": "30s",
  "probeInterval": "250ms",
  "missThreshold": 2,
  "adaptiveRTO": true,
  "overload": {},
  "traffic": [{"from": 0, "to": 1, "interval": "500ms"}]
}`

// buildGaugeInstance assembles a hermetic 3-daemon cluster (in-memory
// fabric, drained clock) from gaugeCluster and wraps node 0's router
// in an instance, the unit report() and metricsSnapshot() hang off.
func buildGaugeInstance(t *testing.T) (*instance, []routing.Router, *transport.Mem, *clock.Wall) {
	t.Helper()
	sc, err := scenario.Load(strings.NewReader(gaugeCluster))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Spec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Protocol = protocolOf(spec)
	clk := clock.NewManual()
	mem := transport.NewMem(spec.Nodes, 2, clk, 200*time.Microsecond)
	routers := make([]routing.Router, spec.Nodes)
	for n := range routers {
		r, err := runtime.BuildNode(spec, n, mem.Node(n), clk, 1, nil)
		if err != nil {
			t.Fatalf("node %d: %v", n, err)
		}
		if err := r.Start(); err != nil {
			t.Fatalf("node %d start: %v", n, err)
		}
		routers[n] = r
	}
	inst := &instance{
		cfg:    &Config{Node: 0},
		spec:   spec,
		inc:    1,
		router: routers[0],
	}
	return inst, routers, mem, clk
}

// TestOverloadGaugesGolden pins the control-plane gauge surface of an
// overload-enabled daemon: the typed `overload` block inside the JSON
// status report, byte for byte at converged steady state (buckets
// full, queues empty, not degraded), and the integer gauge samples the
// /metrics snapshot carries beside the counters.
func TestOverloadGaugesGolden(t *testing.T) {
	inst, routers, _, clk := buildGaugeInstance(t)
	defer func() {
		for _, r := range routers {
			r.Stop()
		}
	}()

	// Converge, then idle long enough for the budget buckets to refill
	// to their caps: every gauge is at its quiescent value.
	clk.Advance(5 * time.Second)

	buf, err := json.Marshal(inst.report())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Overload json.RawMessage `json:"overload"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	const golden = `{"degraded":false,"probeTokens":4,"queryTokens":2,"deferred":[0,0,0],"pinned":0}`
	if string(doc.Overload) != golden {
		t.Fatalf("status overload block drifted:\n got: %s\nwant: %s", doc.Overload, golden)
	}

	snap := inst.metricsSnapshot()
	for key, want := range map[string]int64{
		"overload.gauge_queue_depth":        0,
		"overload.gauge_probe_tokens_milli": 4000,
		"overload.gauge_query_tokens_milli": 2000,
		"overload.gauge_pinned":             0,
		"overload.gauge_degraded":           0,
	} {
		got, ok := snap[key]
		if !ok {
			t.Errorf("metrics snapshot missing gauge %s", key)
		} else if got != want {
			t.Errorf("gauge %s = %d, want %d", key, got, want)
		}
	}
}

// TestOverloadGaugesUnderStress: with every peer crashed, node 0's
// retransmit budget drains and the shed counter moves — the gauges
// must show the protection engaging, not stay frozen at quiescent.
func TestOverloadGaugesUnderStress(t *testing.T) {
	inst, routers, mem, clk := buildGaugeInstance(t)
	defer func() {
		for _, r := range routers {
			r.Stop()
		}
	}()

	clk.Advance(2 * time.Second)
	mem.FailNode(1)
	mem.FailNode(2)
	routers[1].Stop()
	routers[2].Stop()

	// The bucket refills between retransmit waves, so sample the gauge
	// across the episode instead of at one instant: it must dip below
	// its cap while the RTO storm is being bounded.
	minTokens := int64(4000)
	for i := 0; i < 100; i++ {
		clk.Advance(100 * time.Millisecond)
		if got := inst.metricsSnapshot()["overload.gauge_probe_tokens_milli"]; got < minTokens {
			minTokens = got
		}
	}
	snap := inst.metricsSnapshot()
	if snap["overload.probe_shed"] == 0 {
		t.Error("no probe retransmit was shed with every peer dead")
	}
	if minTokens >= 4000 {
		t.Errorf("probe token gauge never left its cap under sustained misses (min %d)", minTokens)
	}
}

// TestMetricsSnapshotDisabled: without an overload block the gauge
// keys must not appear — the /metrics surface is unchanged when the
// protection layer is off.
func TestMetricsSnapshotDisabled(t *testing.T) {
	clk := clock.NewManual()
	mem := transport.NewMem(3, 2, clk, 200*time.Microsecond)
	spec := runtime.ClusterSpec{
		Nodes:    3,
		Protocol: runtime.ProtoDRS,
		Duration: 10 * time.Second,
	}
	r, err := runtime.BuildNode(spec, 0, mem.Node(0), clk, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	clk.Advance(time.Second)
	inst := &instance{cfg: &Config{Node: 0}, spec: spec, inc: 1, router: r}
	for key := range inst.metricsSnapshot() {
		if strings.HasPrefix(key, "overload.gauge_") {
			t.Errorf("gauge %s present with overload disabled", key)
		}
	}
	if d, ok := r.(*core.Daemon); !ok {
		t.Fatalf("router is %T, want *core.Daemon", r)
	} else if d.Status().Overload != nil {
		t.Error("status carries an overload block with the layer disabled")
	}
}
