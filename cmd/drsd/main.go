// Command drsd runs one node of a DRS cluster for real: the same
// protocol stack the simulator exercises — linkmon probe rounds with
// adaptive RTO, route table, dataplane, membership, flap damping —
// assembled over a wall clock and UDP sockets instead of the
// simulator's virtual clock and netsim. The cluster's shape, protocol
// and tunables come from the exact ClusterSpec scenario JSON cmd/drsim
// executes; a small per-node config adds the socket addresses and the
// persistence paths.
//
// Lifecycle:
//
//	boot     — if a checkpoint file exists, the daemon warm-starts the
//	           next incarnation from it (incarnation-guarded, exactly
//	           like the simulator's warm restarts); otherwise it cold
//	           boots incarnation 1.
//	run      — periodic checkpoints and status snapshots; optional
//	           HTTP /status and /metrics.
//	SIGHUP   — graceful reload: re-read the config, and if it is
//	           valid, hand the current routes to the next incarnation
//	           in-process (an invalid config is logged and ignored).
//	SIGTERM  — drain: announce departure (goodbye), write a final
//	           checkpoint, exit 0. SIGINT behaves the same.
//	kill -9  — nothing graceful happens, which is the point: the next
//	           boot warm-starts from the last periodic checkpoint and
//	           rejoins under a newer incarnation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"drsnet/internal/clock"
	"drsnet/internal/core"
	"drsnet/internal/routing"
	"drsnet/internal/runtime"
	"drsnet/internal/transport"
)

func main() {
	configPath := flag.String("config", "", "node config file (JSON)")
	validate := flag.Bool("validate", false, "parse and validate the config, then exit")
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("drsd ")
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "drsd: -config is required")
		os.Exit(2)
	}
	if *validate {
		cfg, spec, err := loadConfig(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("config ok: node %d of %d-node %d-rail cluster, protocol %s\n",
			cfg.Node, spec.Nodes, railsOf(spec), protocolOf(spec))
		return
	}
	if err := runDaemon(*configPath); err != nil {
		log.Fatal(err)
	}
}

func railsOf(spec runtime.ClusterSpec) int {
	if spec.Rails == 0 {
		return 2
	}
	return spec.Rails
}

func protocolOf(spec runtime.ClusterSpec) string {
	if spec.Protocol == "" {
		return runtime.ProtoDRS
	}
	return spec.Protocol
}

// instance is one life of the daemon: router, transport, clock and
// the periodic reporters, torn down together on reload or exit.
type instance struct {
	cfg    *Config
	spec   runtime.ClusterSpec
	inc    uint32
	router routing.Router
	tr     *transport.UDP
	clk    *clock.Wall
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// start boots one incarnation from the config file.
func start(configPath string, inc uint32, restore *core.Checkpoint) (*instance, error) {
	cfg, spec, err := loadConfig(configPath)
	if err != nil {
		return nil, err
	}
	spec.Protocol = protocolOf(spec)
	tr, err := transport.NewUDP(cfg.transportConfig())
	if err != nil {
		return nil, fmt.Errorf("drsd: %v", err)
	}
	clk := clock.NewWall()
	router, err := runtime.BuildNode(spec, cfg.Node, tr, clk, inc, restore)
	if err != nil {
		tr.Close()
		clk.Stop()
		return nil, fmt.Errorf("drsd: %v", err)
	}
	// Socket errors land in the router's metric set, so the status and
	// metrics endpoints report transport.rx_errors / tx_errors beside
	// the protocol counters.
	tr.SetMetrics(router.Metrics())
	if err := router.Start(); err != nil {
		tr.Close()
		clk.Stop()
		return nil, fmt.Errorf("drsd: %v", err)
	}
	inst := &instance{
		cfg: cfg, spec: spec, inc: inc,
		router: router, tr: tr, clk: clk,
		stopCh: make(chan struct{}),
	}
	inst.wg.Add(2)
	go inst.checkpointLoop()
	go inst.statusLoop()
	if cfg.HTTPAddr != "" {
		inst.serveHTTP()
	}
	return inst, nil
}

// stop tears the instance down. announce sends the membership goodbye
// (drain); a reload keeps quiet so peers hold their routes for the
// next incarnation's rejoin.
func (i *instance) stop(announce bool) {
	close(i.stopCh)
	i.wg.Wait()
	if d, ok := i.router.(*core.Daemon); ok && announce {
		d.Leave()
	} else {
		i.router.Stop()
	}
	i.tr.Close()
	i.clk.Stop()
}

// checkpointImage captures the warm-start image, nil when the router
// is not a checkpointing protocol.
func (i *instance) checkpointImage() *core.Checkpoint {
	if d, ok := i.router.(*core.Daemon); ok {
		return d.Checkpoint()
	}
	return nil
}

// persistCheckpoint writes the warm-start image to the configured
// path (atomically: a kill -9 mid-write must never corrupt the last
// good image).
func (i *instance) persistCheckpoint() {
	if i.cfg.Checkpoint == "" {
		return
	}
	cp := i.checkpointImage()
	if cp == nil {
		return
	}
	buf, err := json.Marshal(cp)
	if err != nil {
		log.Printf("checkpoint: %v", err)
		return
	}
	if err := writeFileAtomic(i.cfg.Checkpoint, buf); err != nil {
		log.Printf("checkpoint: %v", err)
	}
}

func (i *instance) checkpointLoop() {
	defer i.wg.Done()
	if i.cfg.Checkpoint == "" {
		return
	}
	t := time.NewTicker(time.Duration(i.cfg.CheckpointEvery))
	defer t.Stop()
	for {
		select {
		case <-t.C:
			i.persistCheckpoint()
		case <-i.stopCh:
			return
		}
	}
}

// nextLife decides the boot incarnation: a readable checkpoint for
// this node warm-starts the life after it; anything else (no file,
// unreadable, wrong node) cold boots incarnation 1.
func nextLife(path string, node int) (uint32, *core.Checkpoint) {
	if path == "" {
		return 1, nil
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return 1, nil
	}
	var cp core.Checkpoint
	if err := json.Unmarshal(buf, &cp); err != nil || cp.Node != node {
		log.Printf("ignoring checkpoint %s: %v", path, err)
		return 1, nil
	}
	return cp.Incarnation + 1, &cp
}

func runDaemon(configPath string) error {
	cfg, _, err := loadConfig(configPath)
	if err != nil {
		return err
	}
	inc, restore := nextLife(cfg.Checkpoint, cfg.Node)
	inst, err := start(configPath, inc, restore)
	if err != nil && restore != nil {
		// A stale or incompatible image must not keep the daemon down.
		log.Printf("warm start failed (%v); booting cold", err)
		inst, err = start(configPath, inc, nil)
	}
	if err != nil {
		return err
	}
	boot := "cold"
	if restore != nil {
		boot = "warm"
	}
	log.Printf("node %d up: incarnation %d (%s), %d-node %d-rail cluster, protocol %s",
		inst.cfg.Node, inst.inc, boot, inst.spec.Nodes, railsOf(inst.spec), inst.spec.Protocol)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGHUP, syscall.SIGTERM, os.Interrupt)
	for sig := range sigc {
		if sig == syscall.SIGHUP {
			// Validate the new config before touching the running stack:
			// a bad reload is rejected, not fatal.
			if _, _, err := loadConfig(configPath); err != nil {
				log.Printf("reload rejected: %v", err)
				continue
			}
			cp := inst.checkpointImage()
			inst.stop(false)
			next, err := start(configPath, inst.inc+1, cp)
			if err != nil {
				return fmt.Errorf("drsd: reload: %v", err)
			}
			inst = next
			inst.persistCheckpoint()
			log.Printf("reloaded: incarnation %d", inst.inc)
			continue
		}
		// SIGTERM / SIGINT: drain.
		log.Printf("draining on %v", sig)
		inst.persistCheckpoint()
		inst.stop(true)
		return nil
	}
	return nil
}

// writeFileAtomic writes data via a same-directory temp file and
// rename, so readers (and the next boot) only ever see a complete
// image.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
