package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonSmoke is the acceptance demo as a test: build drsd, spawn
// a 3-process cluster on loopback, watch it converge, SIGHUP one
// daemon (graceful reload), kill -9 another, watch the survivors
// drop its routes, warm-restart it from its checkpoint, and watch the
// incarnation-guarded rejoin land in everyone's route tables. Skipped
// under -short (make race stays fast); `make daemon-smoke` runs it in
// CI with a bounded timeout.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()

	const nodes, rails = 3, 2
	addrs := make([][]string, nodes)
	for n := range addrs {
		addrs[n] = freeUDPAddrs(t, rails)
	}
	peers, _ := json.Marshal(addrs)

	clusterPath := filepath.Join(dir, "cluster.json")
	writeSmoke(t, clusterPath, `{
  "nodes": 3,
  "protocol": "drs",
  "duration": "30s",
  "probeInterval": "50ms",
  "missThreshold": 2,
  "traffic": [{"from": 0, "to": 1, "interval": "500ms"}]
}`)
	cfgPath := make([]string, nodes)
	statusPath := make([]string, nodes)
	for n := 0; n < nodes; n++ {
		listen, _ := json.Marshal(addrs[n])
		cfgPath[n] = filepath.Join(dir, fmt.Sprintf("node%d.json", n))
		statusPath[n] = filepath.Join(dir, fmt.Sprintf("node%d.status", n))
		writeSmoke(t, cfgPath[n], fmt.Sprintf(`{
  "node": %d,
  "cluster": "cluster.json",
  "listen": %s,
  "peers": %s,
  "checkpoint": "node%d.ckpt",
  "checkpointEvery": "100ms",
  "status": "node%d.status",
  "statusEvery": "100ms"
}`, n, listen, peers, n, n))
	}

	// The -validate mode must accept what we are about to run.
	out, err := exec.Command(bin, "-config", cfgPath[0], "-validate").CombinedOutput()
	if err != nil || !strings.HasPrefix(string(out), "config ok:") {
		t.Fatalf("-validate: %v\n%s", err, out)
	}

	procs := make([]*exec.Cmd, nodes)
	for n := 0; n < nodes; n++ {
		procs[n] = spawnDaemon(t, bin, cfgPath[n], dir, n)
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()

	// Phase 1: convergence — every daemon sees both peers direct with
	// completed probe rounds.
	for n := 0; n < nodes; n++ {
		waitStatus(t, statusPath[n], "converge", func(s smokeStatus) bool {
			if _, ok := s.Counters["transport.rx_errors"]; !ok {
				return false // socket counters must ride in the status report
			}
			if _, ok := s.Counters["transport.tx_errors"]; !ok {
				return false
			}
			return s.allDirect(nodes) && s.Counters["probes.replies"] >= 4
		})
	}

	// Phase 2: graceful reload — SIGHUP node 0, which hands its routes
	// to incarnation 2 in-process; the cluster must stay converged.
	if err := procs[0].Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, statusPath[0], "reload", func(s smokeStatus) bool {
		return s.Incarnation == 2 && s.allDirect(nodes)
	})

	// Phase 3: kill -9 node 2; the survivors must mark every rail to
	// it down and demote the direct route. (A stale relay entry may
	// linger — the protocol only withdraws relays when the relay
	// itself dies or the target rejoins — so "not direct" is the
	// faithful crash-detection signal.)
	if err := procs[2].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[2].Wait()
	for _, n := range []int{0, 1} {
		waitStatus(t, statusPath[n], "detect crash", func(s smokeStatus) bool {
			return s.route(2) != "direct" && s.railsDown(2)
		})
	}

	// Phase 4: warm restart — the new process finds the checkpoint,
	// boots incarnation 2 and rejoins; the survivors' route tables
	// heal back to direct and record the new incarnation.
	procs[2] = spawnDaemon(t, bin, cfgPath[2], dir, 2)
	waitStatus(t, statusPath[2], "warm restart", func(s smokeStatus) bool {
		return s.Incarnation == 2 && s.allDirect(nodes)
	})
	for _, n := range []int{0, 1} {
		waitStatus(t, statusPath[n], "rejoin", func(s smokeStatus) bool {
			return s.route(2) == "direct" && s.peerIncarnation(2) == 2
		})
	}

	// Phase 5: drain — SIGTERM everyone; each must exit 0.
	for n := 0; n < nodes; n++ {
		if err := procs[n].Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < nodes; n++ {
		if err := waitExit(procs[n], 10*time.Second); err != nil {
			t.Fatalf("node %d drain: %v\n%s", n, err, daemonLog(dir, n))
		}
		procs[n] = nil
	}
}

// smokeStatus is the slice of statusReport the smoke assertions read.
type smokeStatus struct {
	Node        int              `json:"node"`
	Incarnation uint32           `json:"incarnation"`
	Counters    map[string]int64 `json:"counters"`
	Peers       []struct {
		Peer        int    `json:"peer"`
		Route       string `json:"route"`
		Incarnation uint32 `json:"incarnation"`
		Rails       []struct {
			Up bool `json:"up"`
		} `json:"rails"`
	} `json:"peers"`
}

func (s smokeStatus) route(peer int) string {
	for _, p := range s.Peers {
		if p.Peer == peer {
			return p.Route
		}
	}
	return ""
}

func (s smokeStatus) peerIncarnation(peer int) uint32 {
	for _, p := range s.Peers {
		if p.Peer == peer {
			return p.Incarnation
		}
	}
	return 0
}

func (s smokeStatus) railsDown(peer int) bool {
	for _, p := range s.Peers {
		if p.Peer != peer {
			continue
		}
		for _, r := range p.Rails {
			if r.Up {
				return false
			}
		}
		return len(p.Rails) > 0
	}
	return false
}

func (s smokeStatus) allDirect(nodes int) bool {
	if len(s.Peers) != nodes-1 {
		return false
	}
	for _, p := range s.Peers {
		if p.Route != "direct" {
			return false
		}
	}
	return true
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "drsd")
	out, err := exec.Command("go", "build", "-o", bin, "drsnet/cmd/drsd").CombinedOutput()
	if err != nil {
		t.Fatalf("building drsd: %v\n%s", err, out)
	}
	return bin
}

func freeUDPAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = conn.LocalAddr().String()
		conn.Close()
	}
	return addrs
}

func writeSmoke(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func spawnDaemon(t *testing.T, bin, cfg, dir string, node int) *exec.Cmd {
	t.Helper()
	logf, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("node%d.log", node)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-config", cfg)
	cmd.Dir = dir // checkpoint/status paths in the configs are relative
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	logf.Close() // the child holds its own descriptor
	return cmd
}

func daemonLog(dir string, node int) string {
	buf, _ := os.ReadFile(filepath.Join(dir, fmt.Sprintf("node%d.log", node)))
	return string(buf)
}

// waitStatus polls a status file until cond holds, failing after a
// bounded timeout with the last snapshot for diagnosis.
func waitStatus(t *testing.T, path, what string, cond func(smokeStatus) bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	var last []byte
	for time.Now().Before(deadline) {
		buf, err := os.ReadFile(path)
		if err == nil && len(buf) > 0 {
			last = buf
			var s smokeStatus
			if json.Unmarshal(buf, &s) == nil && cond(s) {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s on %s; last status: %s", what, path, last)
}

func waitExit(cmd *exec.Cmd, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		cmd.Process.Kill()
		return fmt.Errorf("did not exit within %v", timeout)
	}
}
