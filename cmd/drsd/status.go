package main

import (
	"encoding/json"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"drsnet/internal/core"
)

// statusReport is one status snapshot: the daemon's route/link view
// (DRS protocols) plus the raw protocol counters, serialized as one
// JSON object. The smoke tests and operators read convergence,
// crash detection and rejoin out of these.
type statusReport struct {
	core.Status
	Protocol string           `json:"protocol"`
	Pid      int              `json:"pid"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

func (i *instance) report() statusReport {
	r := statusReport{
		Protocol: i.spec.Protocol,
		Pid:      os.Getpid(),
		Counters: i.router.Metrics().Snapshot(),
	}
	if d, ok := i.router.(*core.Daemon); ok {
		r.Status = d.Status()
	} else {
		r.Node = i.cfg.Node
		r.Incarnation = i.inc
	}
	return r
}

// statusLoop emits one snapshot per period: atomically into the
// configured file, or as a JSON line on stdout when no file is set.
func (i *instance) statusLoop() {
	defer i.wg.Done()
	t := time.NewTicker(time.Duration(i.cfg.StatusEvery))
	defer t.Stop()
	for {
		select {
		case <-t.C:
			buf, err := json.Marshal(i.report())
			if err != nil {
				log.Printf("status: %v", err)
				continue
			}
			if i.cfg.Status == "" {
				os.Stdout.Write(append(buf, '\n'))
				continue
			}
			if err := writeFileAtomic(i.cfg.Status, buf); err != nil {
				log.Printf("status: %v", err)
			}
		case <-i.stopCh:
			return
		}
	}
}

// serveHTTP exposes GET /status and /metrics on the configured
// address. The listener dies with the instance.
func (i *instance) serveHTTP() {
	ln, err := net.Listen("tcp", i.cfg.HTTPAddr)
	if err != nil {
		log.Printf("http: %v", err)
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(i.report())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(i.router.Metrics().Snapshot())
	})
	srv := &http.Server{Handler: mux}
	i.wg.Add(1)
	go func() {
		defer i.wg.Done()
		<-i.stopCh
		ln.Close()
	}()
	go srv.Serve(ln)
}
