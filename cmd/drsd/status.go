package main

import (
	"encoding/json"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"drsnet/internal/core"
)

// statusReport is one status snapshot: the daemon's route/link view
// (DRS protocols) plus the raw protocol counters, serialized as one
// JSON object. The smoke tests and operators read convergence,
// crash detection and rejoin out of these.
type statusReport struct {
	core.Status
	Protocol string           `json:"protocol"`
	Pid      int              `json:"pid"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

func (i *instance) report() statusReport {
	r := statusReport{
		Protocol: i.spec.Protocol,
		Pid:      os.Getpid(),
		Counters: i.router.Metrics().Snapshot(),
	}
	if d, ok := i.router.(*core.Daemon); ok {
		r.Status = d.Status()
	} else {
		r.Node = i.cfg.Node
		r.Incarnation = i.inc
	}
	return r
}

// metricsSnapshot is the /metrics document: the raw counter set, plus
// — when overload protection is configured — the live control-plane
// gauges sampled as integers, so a flat scrape sees the deferred-queue
// depth, remaining budget tokens (in milli-tokens: the buckets refill
// fractionally), pinned-route count and degraded bit beside the
// monotonic overload.* counters.
func (i *instance) metricsSnapshot() map[string]int64 {
	snap := i.router.Metrics().Snapshot()
	d, ok := i.router.(*core.Daemon)
	if !ok {
		return snap
	}
	ov := d.Status().Overload
	if ov == nil {
		return snap
	}
	if snap == nil {
		snap = make(map[string]int64)
	}
	var depth int64
	for _, n := range ov.Deferred {
		depth += int64(n)
	}
	snap["overload.gauge_queue_depth"] = depth
	snap["overload.gauge_probe_tokens_milli"] = int64(ov.ProbeTokens * 1000)
	snap["overload.gauge_query_tokens_milli"] = int64(ov.QueryTokens * 1000)
	snap["overload.gauge_pinned"] = int64(ov.Pinned)
	if ov.Degraded {
		snap["overload.gauge_degraded"] = 1
	} else {
		snap["overload.gauge_degraded"] = 0
	}
	return snap
}

// statusLoop emits one snapshot per period: atomically into the
// configured file, or as a JSON line on stdout when no file is set.
func (i *instance) statusLoop() {
	defer i.wg.Done()
	t := time.NewTicker(time.Duration(i.cfg.StatusEvery))
	defer t.Stop()
	for {
		select {
		case <-t.C:
			buf, err := json.Marshal(i.report())
			if err != nil {
				log.Printf("status: %v", err)
				continue
			}
			if i.cfg.Status == "" {
				os.Stdout.Write(append(buf, '\n'))
				continue
			}
			if err := writeFileAtomic(i.cfg.Status, buf); err != nil {
				log.Printf("status: %v", err)
			}
		case <-i.stopCh:
			return
		}
	}
}

// serveHTTP exposes GET /status and /metrics on the configured
// address. The listener dies with the instance.
func (i *instance) serveHTTP() {
	ln, err := net.Listen("tcp", i.cfg.HTTPAddr)
	if err != nil {
		log.Printf("http: %v", err)
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(i.report())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(i.metricsSnapshot())
	})
	srv := &http.Server{Handler: mux}
	i.wg.Add(1)
	go func() {
		defer i.wg.Done()
		<-i.stopCh
		ln.Close()
	}()
	go srv.Serve(ln)
}
