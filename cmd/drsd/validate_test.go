package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goodCluster is a minimal valid ClusterSpec scenario document.
const goodCluster = `{
  "nodes": 3,
  "duration": "10s",
  "probeInterval": "100ms",
  "traffic": [{"from": 0, "to": 1, "interval": "500ms"}]
}`

// write drops a file into dir and returns its path.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func goodNodeConfig(listen, peers string) string {
	return fmt.Sprintf(`{
  "node": 0,
  "cluster": "cluster.json",
  "listen": %s,
  "peers": %s
}`, listen, peers)
}

const (
	goodListen = `["127.0.0.1:0", "127.0.0.1:0"]`
	goodPeers  = `[["127.0.0.1:0","127.0.0.1:0"],["127.0.0.1:0","127.0.0.1:0"],["127.0.0.1:0","127.0.0.1:0"]]`
)

// TestValidateErrors is the golden contract for drsd -validate: each
// malformed config produces exactly this error string (module the
// config's own path, which the test substitutes).
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		cluster string // cluster.json content; empty = omit the file
		config  string
		wantErr string // %q-style template; CONFIG expands to the config path
	}{
		{
			name:    "no cluster named",
			cluster: goodCluster,
			config:  `{"node": 0, "listen": [], "peers": []}`,
			wantErr: "drsd: config CONFIG: no cluster spec named",
		},
		{
			name:    "unknown field",
			cluster: goodCluster,
			config:  `{"node": 0, "cluster": "cluster.json", "listen": [], "peers": [], "watchdog": true}`,
			wantErr: `drsd: config CONFIG: json: unknown field "watchdog"`,
		},
		{
			name:    "missing cluster file",
			config:  goodNodeConfig(goodListen, goodPeers),
			wantErr: "drsd: open CLUSTER: no such file or directory",
		},
		{
			name:    "invalid cluster document",
			cluster: `{"nodes": 3, "duration": "10s", "traffic": []}`,
			config:  goodNodeConfig(goodListen, goodPeers),
			wantErr: "drsd: cluster cluster.json: scenario: no traffic flows",
		},
		{
			name: "fabric topology rejected",
			cluster: `{
  "topology": {"kind": "fatTree", "k": 4},
  "duration": "10s",
  "traffic": [{"from": 0, "to": 1, "interval": "500ms"}]
}`,
			config:  goodNodeConfig(`["a","b","c","d"]`, goodPeers),
			wantErr: `drsd: cluster cluster.json: live mode supports dual-rail clusters only, not "fatTree" fabrics`,
		},
		{
			name:    "node out of range",
			cluster: goodCluster,
			config:  `{"node": 5, "cluster": "cluster.json", "listen": ` + goodListen + `, "peers": ` + goodPeers + `}`,
			wantErr: "drsd: node 5 out of range [0,3)",
		},
		{
			name:    "listen rail count",
			cluster: goodCluster,
			config:  goodNodeConfig(`["127.0.0.1:0"]`, goodPeers),
			wantErr: "drsd: listen has 1 addresses, cluster has 2 rails",
		},
		{
			name:    "peers node count",
			cluster: goodCluster,
			config:  goodNodeConfig(goodListen, `[["a","b"],["c","d"]]`),
			wantErr: "drsd: peers has 2 rows, cluster has 3 nodes",
		},
		{
			name:    "ragged peer row",
			cluster: goodCluster,
			config:  goodNodeConfig(goodListen, `[["a","b"],["c"],["e","f"]]`),
			wantErr: "drsd: peers[1] has 1 addresses, cluster has 2 rails",
		},
		{
			name:    "negative period",
			cluster: goodCluster,
			config: `{"node": 0, "cluster": "cluster.json", "listen": ` + goodListen +
				`, "peers": ` + goodPeers + `, "statusEvery": "-1s"}`,
			wantErr: "drsd: negative checkpointEvery or statusEvery",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if tc.cluster != "" {
				write(t, dir, "cluster.json", tc.cluster)
			}
			cfgPath := write(t, dir, "node.json", tc.config)
			_, _, err := loadConfig(cfgPath)
			if err == nil {
				t.Fatalf("config accepted, want %q", tc.wantErr)
			}
			want := tc.wantErr
			want = strings.ReplaceAll(want, "CONFIG", cfgPath)
			want = strings.ReplaceAll(want, "CLUSTER", filepath.Join(dir, "cluster.json"))
			if err.Error() != want {
				t.Fatalf("error mismatch\n got: %s\nwant: %s", err, want)
			}
		})
	}
}

// TestValidateAccepts checks a well-formed config loads with the
// documented defaults applied.
func TestValidateAccepts(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "cluster.json", goodCluster)
	cfgPath := write(t, dir, "node.json", goodNodeConfig(goodListen, goodPeers))
	cfg, spec, err := loadConfig(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 3 || cfg.Node != 0 {
		t.Fatalf("spec nodes %d, cfg node %d", spec.Nodes, cfg.Node)
	}
	if cfg.CheckpointEvery == 0 || cfg.StatusEvery == 0 {
		t.Fatal("periods not defaulted")
	}
}

// TestValidateExampleConfigs keeps the shipped examples/daemon set
// loadable — the README quick-start depends on it.
func TestValidateExampleConfigs(t *testing.T) {
	for i := 0; i < 3; i++ {
		path := filepath.Join("..", "..", "examples", "daemon", fmt.Sprintf("node%d.json", i))
		cfg, spec, err := loadConfig(path)
		if err != nil {
			t.Fatalf("examples/daemon/node%d.json: %v", i, err)
		}
		if cfg.Node != i || spec.Nodes != 3 {
			t.Fatalf("examples/daemon/node%d.json: node %d of %d", i, cfg.Node, spec.Nodes)
		}
	}
}
