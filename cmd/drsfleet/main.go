// Command drsfleet regenerates the paper's motivating statistic: a
// synthetic one-year hardware failure log for a fleet of servers in
// which about thirteen percent of failures are network related.
//
// Usage:
//
//	drsfleet [-servers n] [-days n] [-rate f] [-seed s] [-log]
package main

import (
	"flag"
	"fmt"
	"os"

	"drsnet/internal/experiments"
	"drsnet/internal/failure"
)

func main() {
	servers := flag.Int("servers", 100, "fleet size (paper: 100)")
	days := flag.Int("days", 365, "observation window in days")
	rate := flag.Float64("rate", 1.2, "hardware failures per server per year")
	seed := flag.Uint64("seed", 1, "generator seed")
	dump := flag.Bool("log", false, "also print every failure event")
	flag.Parse()

	cfg := failure.DefaultFleetConfig()
	cfg.Servers = *servers
	cfg.Days = *days
	cfg.AnnualFailureRate = *rate
	cfg.Seed = *seed

	log, _, err := experiments.Fleet(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drsfleet: %v\n", err)
		os.Exit(1)
	}
	if err := experiments.WriteFleet(os.Stdout, log); err != nil {
		fmt.Fprintf(os.Stderr, "drsfleet: %v\n", err)
		os.Exit(1)
	}
	if *dump {
		fmt.Println()
		for _, e := range log.Events {
			fmt.Printf("day %3d server %3d %v\n", e.Day, e.Server, e.Category)
		}
	}
}
