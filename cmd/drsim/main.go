// Command drsim runs the packet-level recovery experiment: an
// application flow crosses an injected component failure under every
// registered routing protocol — the DRS, a RIP-like reactive protocol,
// an OSPF-like link-state protocol, and static routing — on identical
// clusters, quantifying the paper's claim that proactive routing fixes
// network problems before applications notice.
//
// Usage:
//
//	drsim [-nodes n] [-scenario nic|backplane|crossrail] [-probe d]
//	      [-miss k] [-advertise d] [-timeout d] [-traffic d]
//	      [-failat d] [-duration d]
//	      [-protocol all|drs|linkstate|reactive|static]
//	      [-overhead]
//
// The -protocol choices come from the runtime protocol registry; a
// protocol registered by a plugin is accepted here without any change
// to this command.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"drsnet/internal/experiments"
	"drsnet/internal/runtime"
	"drsnet/internal/scenario"
	"drsnet/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	registered := strings.Join(runtime.Protocols(), ", ")

	fs := flag.NewFlagSet("drsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nodes := fs.Int("nodes", 10, "cluster size (deployed clusters ran 8-12)")
	scenarioName := fs.String("scenario", "nic", "failure scenario: nic, backplane, crossrail")
	probe := fs.Duration("probe", time.Second, "DRS probe interval")
	miss := fs.Int("miss", 2, "DRS miss threshold")
	advertise := fs.Duration("advertise", time.Second, "reactive advertisement interval")
	timeout := fs.Duration("timeout", 6*time.Second, "reactive route timeout")
	traffic := fs.Duration("traffic", 100*time.Millisecond, "application message interval")
	failAt := fs.Duration("failat", 10*time.Second, "failure injection time")
	duration := fs.Duration("duration", 40*time.Second, "total simulated time")
	protocol := fs.String("protocol", "all", "protocol: all, or one of: "+registered)
	overhead := fs.Bool("overhead", false, "also measure probe bandwidth overhead vs the cost model")
	flowLevel := fs.Bool("flow", false, "also run the connection-level experiment (reliable stream over each protocol)")
	traceDump := fs.Bool("trace", false, "dump the protocol event trace of the (single-protocol) run")
	configPath := fs.String("config", "", "run a declarative JSON scenario file instead of the canned experiment")
	coverage := fs.Bool("coverage", false, "run the exhaustive fault-coverage campaign (every 1- and 2-fault scenario)")
	switched := fs.Bool("switched", false, "use a switched fabric instead of shared hubs for -overhead")
	workers := fs.Int("workers", 0, "coverage campaign worker goroutines (0 = all CPUs); output is identical for every count")
	seed := fs.Uint64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "drsim: %v\n", err)
		return 1
	}

	if *coverage {
		cfg := experiments.DefaultCoverageConfig()
		cfg.Nodes = *nodes
		cfg.ProbeInterval = *probe
		cfg.MissThreshold = *miss
		cfg.Seed = *seed
		cfg.Workers = *workers
		res, err := experiments.FaultCoverage(cfg)
		if err != nil {
			return fail(err)
		}
		if err := experiments.WriteCoverage(stdout, res); err != nil {
			return fail(err)
		}
		return 0
	}

	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return fail(err)
		}
		sc, err := scenario.Load(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		rep, err := sc.Run()
		if err != nil {
			return fail(err)
		}
		if err := rep.Write(stdout); err != nil {
			return fail(err)
		}
		if *traceDump {
			fmt.Fprintln(stdout, "\n# protocol event trace (state changes)")
			for _, e := range rep.Trace.Events() {
				if interestingKinds[e.Kind] {
					fmt.Fprintln(stdout, e)
				}
			}
		}
		return 0
	}

	base := experiments.RecoveryConfig{
		Protocol:          runtime.ProtoDRS,
		Nodes:             *nodes,
		Scenario:          experiments.Scenario(*scenarioName),
		TrafficInterval:   *traffic,
		FailAt:            *failAt,
		Duration:          *duration,
		ProbeInterval:     *probe,
		MissThreshold:     *miss,
		AdvertiseInterval: *advertise,
		RouteTimeout:      *timeout,
		Seed:              *seed,
	}

	var log *trace.Log
	if *traceDump {
		if *protocol == "all" {
			fmt.Fprintf(stderr, "drsim: -trace requires a single -protocol (one of: %s)\n", registered)
			return 1
		}
		log = trace.NewLog(0)
		base.TraceSink = log
	}

	var results []*experiments.RecoveryResult
	if *protocol == "all" {
		var err error
		results, err = experiments.CompareRecovery(base)
		if err != nil {
			return fail(err)
		}
	} else {
		base.Protocol = *protocol
		res, err := experiments.Recovery(base)
		if err != nil {
			return fail(err)
		}
		results = append(results, res)
	}

	if log != nil {
		fmt.Fprintln(stdout, "# protocol event trace (state changes; per-datagram events omitted)")
		for _, e := range log.Events() {
			if interestingKinds[e.Kind] {
				fmt.Fprintln(stdout, e)
			}
		}
		fmt.Fprintln(stdout)
	}
	if err := experiments.WriteRecovery(stdout, results); err != nil {
		return fail(err)
	}

	if *flowLevel {
		fcfg := experiments.DefaultFlowRecoveryConfig(runtime.ProtoDRS, experiments.Scenario(*scenarioName))
		fcfg.Nodes = *nodes
		fcfg.ProbeInterval = *probe
		fcfg.MissThreshold = *miss
		fcfg.AdvertiseInterval = *advertise
		fcfg.RouteTimeout = *timeout
		fcfg.Seed = *seed
		flowResults, err := experiments.CompareFlowRecovery(fcfg)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout)
		if err := experiments.WriteFlowRecovery(stdout, flowResults); err != nil {
			return fail(err)
		}
	}

	if *overhead {
		measured, predicted, err := experiments.ProbeOverhead(*nodes, *probe, 10*(*probe), *switched)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\n# probe bandwidth overhead on one rail (%d nodes, %v interval)\n", *nodes, *probe)
		fmt.Fprintf(stdout, "measured %.4f%%  cost-model prediction %.4f%%\n", 100*measured, 100*predicted)
	}
	return 0
}

// interestingKinds selects the state-change events worth dumping with
// -trace; per-datagram events are far too chatty.
var interestingKinds = map[trace.Kind]bool{
	trace.KindLinkDown:       true,
	trace.KindLinkUp:         true,
	trace.KindRouteInstalled: true,
	trace.KindRouteLost:      true,
	trace.KindQuerySent:      true,
	trace.KindOfferSent:      true,
}
