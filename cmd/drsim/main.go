// Command drsim runs the packet-level recovery experiment: an
// application flow crosses an injected component failure under the
// DRS, a RIP-like reactive protocol, and static routing, on identical
// clusters — quantifying the paper's claim that proactive routing
// fixes network problems before applications notice.
//
// Usage:
//
//	drsim [-nodes n] [-scenario nic|backplane|crossrail] [-probe d]
//	      [-miss k] [-advertise d] [-timeout d] [-traffic d]
//	      [-failat d] [-duration d] [-protocol all|drs|reactive|static]
//	      [-overhead]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"drsnet/internal/experiments"
	"drsnet/internal/scenario"
	"drsnet/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 10, "cluster size (deployed clusters ran 8-12)")
	scenarioName := flag.String("scenario", "nic", "failure scenario: nic, backplane, crossrail")
	probe := flag.Duration("probe", time.Second, "DRS probe interval")
	miss := flag.Int("miss", 2, "DRS miss threshold")
	advertise := flag.Duration("advertise", time.Second, "reactive advertisement interval")
	timeout := flag.Duration("timeout", 6*time.Second, "reactive route timeout")
	traffic := flag.Duration("traffic", 100*time.Millisecond, "application message interval")
	failAt := flag.Duration("failat", 10*time.Second, "failure injection time")
	duration := flag.Duration("duration", 40*time.Second, "total simulated time")
	protocol := flag.String("protocol", "all", "protocol: all, drs, reactive, static")
	overhead := flag.Bool("overhead", false, "also measure probe bandwidth overhead vs the cost model")
	flowLevel := flag.Bool("flow", false, "also run the connection-level experiment (reliable stream over each protocol)")
	traceDump := flag.Bool("trace", false, "dump the protocol event trace of the (single-protocol) run")
	configPath := flag.String("config", "", "run a declarative JSON scenario file instead of the canned experiment")
	coverage := flag.Bool("coverage", false, "run the exhaustive fault-coverage campaign (every 1- and 2-fault scenario)")
	switched := flag.Bool("switched", false, "use a switched fabric instead of shared hubs for -overhead")
	workers := flag.Int("workers", 0, "coverage campaign worker goroutines (0 = all CPUs); output is identical for every count")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	if *coverage {
		cfg := experiments.DefaultCoverageConfig()
		cfg.Nodes = *nodes
		cfg.ProbeInterval = *probe
		cfg.MissThreshold = *miss
		cfg.Seed = *seed
		cfg.Workers = *workers
		res, err := experiments.FaultCoverage(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.WriteCoverage(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			os.Exit(1)
		}
		sc, err := scenario.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			os.Exit(1)
		}
		rep, err := sc.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			os.Exit(1)
		}
		if err := rep.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			os.Exit(1)
		}
		if *traceDump {
			fmt.Println("\n# protocol event trace (state changes)")
			interesting := map[trace.Kind]bool{
				trace.KindLinkDown: true, trace.KindLinkUp: true,
				trace.KindRouteInstalled: true, trace.KindRouteLost: true,
				trace.KindQuerySent: true, trace.KindOfferSent: true,
			}
			for _, e := range rep.Trace.Events() {
				if interesting[e.Kind] {
					fmt.Println(e)
				}
			}
		}
		return
	}

	base := experiments.RecoveryConfig{
		Protocol:          experiments.ProtoDRS,
		Nodes:             *nodes,
		Scenario:          experiments.Scenario(*scenarioName),
		TrafficInterval:   *traffic,
		FailAt:            *failAt,
		Duration:          *duration,
		ProbeInterval:     *probe,
		MissThreshold:     *miss,
		AdvertiseInterval: *advertise,
		RouteTimeout:      *timeout,
		Seed:              *seed,
	}

	var log *trace.Log
	if *traceDump {
		if *protocol == "all" {
			fmt.Fprintln(os.Stderr, "drsim: -trace requires a single -protocol (drs, reactive or static)")
			os.Exit(1)
		}
		log = trace.NewLog(0)
		base.TraceSink = log
	}

	var results []*experiments.RecoveryResult
	if *protocol == "all" {
		var err error
		results, err = experiments.CompareRecovery(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		base.Protocol = experiments.Protocol(*protocol)
		res, err := experiments.Recovery(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			os.Exit(1)
		}
		results = append(results, res)
	}

	if log != nil {
		fmt.Println("# protocol event trace (state changes; per-datagram events omitted)")
		interesting := map[trace.Kind]bool{
			trace.KindLinkDown:       true,
			trace.KindLinkUp:         true,
			trace.KindRouteInstalled: true,
			trace.KindRouteLost:      true,
			trace.KindQuerySent:      true,
			trace.KindOfferSent:      true,
		}
		for _, e := range log.Events() {
			if interesting[e.Kind] {
				fmt.Println(e)
			}
		}
		fmt.Println()
	}
	if err := experiments.WriteRecovery(os.Stdout, results); err != nil {
		fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
		os.Exit(1)
	}

	if *flowLevel {
		fcfg := experiments.DefaultFlowRecoveryConfig(experiments.ProtoDRS, experiments.Scenario(*scenarioName))
		fcfg.Nodes = *nodes
		fcfg.ProbeInterval = *probe
		fcfg.MissThreshold = *miss
		fcfg.AdvertiseInterval = *advertise
		fcfg.RouteTimeout = *timeout
		fcfg.Seed = *seed
		flowResults, err := experiments.CompareFlowRecovery(fcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if err := experiments.WriteFlowRecovery(os.Stdout, flowResults); err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			os.Exit(1)
		}
	}

	if *overhead {
		measured, predicted, err := experiments.ProbeOverhead(*nodes, *probe, 10*(*probe), *switched)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n# probe bandwidth overhead on one rail (%d nodes, %v interval)\n", *nodes, *probe)
		fmt.Printf("measured %.4f%%  cost-model prediction %.4f%%\n", 100*measured, 100*predicted)
	}
}
