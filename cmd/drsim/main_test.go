package main

import (
	"bytes"
	"strings"
	"testing"

	"drsnet/internal/runtime"
)

// TestRecoveryGoldenAllProtocols pins the default comparison table —
// every registered protocol, including the link-state baseline, on the
// canonical NIC-failure run.
func TestRecoveryGoldenAllProtocols(t *testing.T) {
	const golden = `# Recovery: scenario=nic nodes=10 traffic every 100ms, failure at 10s
protocol             sent      lost   recov       outage       detect       repair  masked tcp-alive
drs                   400        21    true  2.00061652s           2s           2s   false      true
failover-arbor        400         1    true      11.72µs           0s           0s    true      true
failover-bounce       400         1    true      11.72µs           0s           0s    true      true
failover-rotor        400         1    true      11.72µs           0s           0s    true      true
linkstate             400        32    true  3.10001172s           0s           0s   false      true
reactive              400        52    true  5.10001172s           0s           0s   false      true
static                400       301   false         >30s           0s           0s   false     false
`
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != golden {
		t.Fatalf("recovery table drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestSingleProtocolRowsMatchComparison: each -protocol run reproduces
// exactly its row of the all-protocols table.
func TestSingleProtocolRowsMatchComparison(t *testing.T) {
	var all, errb bytes.Buffer
	if code := run(nil, &all, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	rows := map[string]string{}
	lines := strings.Split(strings.TrimSuffix(all.String(), "\n"), "\n")
	for _, line := range lines[2:] {
		rows[strings.Fields(line)[0]] = line
	}
	for _, p := range runtime.Protocols() {
		var out bytes.Buffer
		errb.Reset()
		if code := run([]string{"-protocol", p}, &out, &errb); code != 0 {
			t.Fatalf("-protocol %s: exit %d, stderr: %s", p, code, errb.String())
		}
		single := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
		got := single[len(single)-1]
		if got != rows[p] {
			t.Errorf("-protocol %s row drifted from the comparison:\n got %q\nwant %q", p, got, rows[p])
		}
	}
}

// TestCoverageWorkersIdentical: the campaign output is byte-identical
// for every worker count.
func TestCoverageWorkersIdentical(t *testing.T) {
	render := func(workers string) string {
		var out, errb bytes.Buffer
		if code := run([]string{"-coverage", "-nodes", "5", "-workers", workers}, &out, &errb); code != 0 {
			t.Fatalf("workers=%s: exit %d, stderr: %s", workers, code, errb.String())
		}
		return out.String()
	}
	ref := render("1")
	if !strings.Contains(ref, "TOTAL") {
		t.Fatalf("coverage output missing total row:\n%s", ref)
	}
	for _, w := range []string{"2", "7", "0"} {
		if got := render(w); got != ref {
			t.Fatalf("workers=%s output differs:\n--- got ---\n%s--- want ---\n%s", w, got, ref)
		}
	}
}

// TestUnknownProtocolListsRegistry: the registry's error surfaces the
// available names on the command line.
func TestUnknownProtocolListsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-protocol", "ospf"}, &out, &errb); code == 0 {
		t.Fatal("unknown -protocol accepted")
	}
	msg := errb.String()
	for _, name := range runtime.Protocols() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list registered protocol %q", msg, name)
		}
	}
}

// TestTraceRequiresSingleProtocol pins the guidance message.
func TestTraceRequiresSingleProtocol(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-trace"}, &out, &errb); code == 0 {
		t.Fatal("-trace without a single -protocol accepted")
	}
	if !strings.Contains(errb.String(), "linkstate") {
		t.Errorf("error %q does not list the registered protocols", errb.String())
	}
}

// TestConfigScenario drives a shipped declarative scenario end to end.
func TestConfigScenario(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-config", "../../examples/scenarios/nic-failover.json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "route repairs:") {
		t.Fatalf("scenario report missing repairs line:\n%s", out.String())
	}
}

// TestPartitionHealGolden pins the shipped partition scenario — the
// asymmetric one-way cut a nemesis campaign surfaced, shrunk to a
// single episode. The 0→1 flow loses frames only until strict-evidence
// DRS accumulates misses on the dead tx direction and fails over; the
// reverse flow barely notices. The digits are the regression test.
func TestPartitionHealGolden(t *testing.T) {
	const golden = `# asymmetric partition found by drsnemesis, shrunk to one episode
  from     to       sent  delivered       loss
     0      1        150        144      4.00%
     1      0        150        149      0.67%
route repairs: 2   utilization rail0 0.0347%  rail1 0.0429%
`
	var out, errb bytes.Buffer
	code := run([]string{"-config", "../../examples/scenarios/partition-heal.json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != golden {
		t.Fatalf("partition-heal report drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}
