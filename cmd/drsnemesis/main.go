// Command drsnemesis fuzzes the live daemon stack with deterministic
// fault schedules: randomized campaigns of partitions (symmetric and
// asymmetric), process crashes with warm or cold restarts, NIC flaps
// and clock-skew windows run against a hermetic in-process cluster —
// the same runtime.BuildNode assembly cmd/drsd boots, over the
// in-memory transport and a manual wall clock. After every schedule
// heals, the post-heal invariants must hold: routes reconverge to
// direct, no stale incarnation survives a restart, membership is
// fresh, and the data plane delivers on every ordered pair.
//
// Everything replays from its seed. A failing schedule is
// automatically shrunk to a minimal failing schedule (deterministic
// delta debugging over its episodes), written as a JSON repro file,
// and reported with the exact command lines that reproduce it.
//
// Usage:
//
//	drsnemesis [-seed s] [-schedules n] [-nodes n] [-protocol p]
//	           [-episodes n] [-horizon d] [-settle d] [-probe d]
//	           [-repro file]
//	drsnemesis -replay file
//
// Exit status: 0 when every invariant held, 1 when a schedule (or the
// replayed file) violated one, 2 on usage or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"drsnet/internal/nemesis"
	"drsnet/internal/runtime"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drsnemesis", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1, "campaign seed; schedule i runs with seed+i")
	schedules := fs.Int("schedules", 20, "number of schedules to generate and run")
	nodes := fs.Int("nodes", 3, "cluster size")
	protocol := fs.String("protocol", runtime.ProtoDRS, "routing protocol under test")
	episodes := fs.Int("episodes", 4, "fault episodes per schedule")
	horizon := fs.Duration("horizon", 10*time.Second, "fault phase length (virtual time)")
	settle := fs.Duration("settle", 2*time.Second, "post-heal reconvergence window before invariants")
	probe := fs.Duration("probe", 100*time.Millisecond, "DRS probe interval")
	repro := fs.String("repro", "nemesis-repro.json", "where to write the shrunk failing schedule")
	replay := fs.String("replay", "", "replay a schedule JSON file instead of running a campaign")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "drsnemesis: %v\n", err)
		return 2
	}

	if *replay != "" {
		return runReplay(*replay, stdout, fail)
	}

	cfg := nemesis.Config{
		Nodes:         *nodes,
		Protocol:      *protocol,
		Episodes:      *episodes,
		Horizon:       *horizon,
		Settle:        *settle,
		ProbeInterval: *probe,
	}
	fmt.Fprintf(stdout, "# nemesis campaign: %d schedules from seed %d (%d nodes, %s, %d episodes, horizon %v, settle %v)\n",
		*schedules, *seed, *nodes, *protocol, *episodes, *horizon, *settle)
	for i := 0; i < *schedules; i++ {
		s := nemesis.Generate(*seed+uint64(i), cfg)
		out, err := nemesis.Run(s)
		if err != nil {
			return fail(err)
		}
		if !out.Failed() {
			fmt.Fprintf(stdout, "schedule seed=%d: ok (%d episodes; %d frames delivered, %d cut, %d dropped)\n",
				s.Seed, len(s.Episodes), out.Faults.Delivered, out.Faults.Partitioned, out.Faults.Dropped)
			continue
		}
		fmt.Fprintf(stdout, "schedule seed=%d: FAIL — %d invariant violations\n", s.Seed, len(out.Violations))
		shrunk, sout := nemesis.Shrink(s)
		fmt.Fprintf(stdout, "shrunk to %d of %d episodes, %d violations:\n",
			len(shrunk.Episodes), len(s.Episodes), len(sout.Violations))
		printOutcome(stdout, shrunk, sout)
		if err := writeSchedule(*repro, shrunk); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "repro: drsnemesis -replay %s\n", *repro)
		fmt.Fprintf(stdout, "  (or regenerate: drsnemesis -seed %d -schedules 1 -nodes %d -protocol %s -episodes %d -horizon %v -settle %v -probe %v)\n",
			s.Seed, *nodes, *protocol, *episodes, *horizon, *settle, *probe)
		return 1
	}
	fmt.Fprintf(stdout, "all %d schedules healed clean\n", *schedules)
	return 0
}

func runReplay(path string, stdout io.Writer, fail func(error) int) int {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fail(err)
	}
	var s nemesis.Schedule
	if err := json.Unmarshal(buf, &s); err != nil {
		return fail(fmt.Errorf("%s: %v", path, err))
	}
	out, err := nemesis.Run(s)
	if err != nil {
		return fail(fmt.Errorf("%s: %v", path, err))
	}
	fmt.Fprintf(stdout, "# replay %s: seed %d, %d nodes, %d episodes\n",
		path, s.Seed, s.Nodes, len(s.Episodes))
	printOutcome(stdout, s, out)
	if out.Failed() {
		fmt.Fprintf(stdout, "FAIL — %d invariant violations\n", len(out.Violations))
		return 1
	}
	fmt.Fprintln(stdout, "ok — every invariant held")
	return 0
}

func printOutcome(w io.Writer, s nemesis.Schedule, out *nemesis.Outcome) {
	for _, e := range s.Episodes {
		fmt.Fprintf(w, "  episode: %v\n", e)
	}
	for _, v := range out.Violations {
		fmt.Fprintf(w, "  violation: %v\n", v)
	}
}

func writeSchedule(path string, s nemesis.Schedule) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
