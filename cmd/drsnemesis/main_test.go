package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestCampaignDeterministic: the acceptance bar — the same seed and
// flags produce bit-identical campaign output, run after run.
func TestCampaignDeterministic(t *testing.T) {
	args := []string{"-seed", "3", "-schedules", "3", "-horizon", "4s", "-settle", "2s"}
	code1, out1, _ := runCLI(t, args...)
	code2, out2, _ := runCLI(t, args...)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("campaign exits %d/%d, want 0; output:\n%s", code1, code2, out1)
	}
	if out1 != out2 {
		t.Fatalf("two identical campaigns diverged:\n%s\n---\n%s", out1, out2)
	}
	if !strings.Contains(out1, "all 3 schedules healed clean") {
		t.Fatalf("campaign summary missing:\n%s", out1)
	}
}

// TestCampaignFindsShrinksAndWritesRepro drives the full violation
// path: a settle window too short for reconvergence makes seed 7's
// schedule fail, the shrinker strips it to a minimal episode set, the
// repro file lands on disk, and replaying that file reproduces the
// exact violation.
func TestCampaignFindsShrinksAndWritesRepro(t *testing.T) {
	repro := filepath.Join(t.TempDir(), "repro.json")
	code, out, _ := runCLI(t, "-seed", "7", "-schedules", "1",
		"-horizon", "6s", "-settle", "1ms", "-repro", repro)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (violation); output:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "violation: convergence") {
		t.Fatalf("violation not reported:\n%s", out)
	}
	if !strings.Contains(out, "shrunk to 2 of 4 episodes") {
		t.Fatalf("shrinker did not reduce the schedule:\n%s", out)
	}
	if _, err := os.Stat(repro); err != nil {
		t.Fatalf("repro file not written: %v", err)
	}

	rcode, rout, _ := runCLI(t, "-replay", repro)
	if rcode != 1 {
		t.Fatalf("replay exit %d, want 1; output:\n%s", rcode, rout)
	}
	var violation string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "violation:") {
			violation = strings.TrimSpace(line)
		}
	}
	if violation == "" || !strings.Contains(rout, violation) {
		t.Fatalf("replay did not reproduce %q:\n%s", violation, rout)
	}
}

// TestReplayRegressionGolden pins the replay of the checked-in shrunk
// schedule byte for byte — the nemesis equivalent of a simulator
// golden. If protocol behavior shifts under this schedule, the diff
// shows up here, not in production.
func TestReplayRegressionGolden(t *testing.T) {
	code, out, _ := runCLI(t, "-replay", "testdata/regression.json")
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	want := `# replay testdata/regression.json: seed 7, 3 nodes, 2 episodes
  episode: partition 1–0 rx all rails [4.935590943s,6s)
  episode: crash 1 (cold restart) [512.69362ms,2.094541483s)
  violation: convergence: node 1 peer 0: route "relay" (rail 0 via 2), want direct
FAIL — 1 invariant violations
`
	if out != want {
		t.Fatalf("replay drifted from the pinned outcome:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

// TestReplayHealedSchedule: the same regression schedule with an
// honest settle window converges — proving the pinned violation is
// about reconvergence time, not a permanently wedged cluster.
func TestReplayHealedSchedule(t *testing.T) {
	buf, err := os.ReadFile("testdata/regression.json")
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.Replace(string(buf), `"settle": "1ms"`, `"settle": "2s"`, 1)
	if patched == string(buf) {
		t.Fatal("settle not found in regression.json")
	}
	path := filepath.Join(t.TempDir(), "healed.json")
	if err := os.WriteFile(path, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, "-replay", path)
	if code != 0 || !strings.Contains(out, "ok — every invariant held") {
		t.Fatalf("exit %d, want 0 with a clean bill; output:\n%s", code, out)
	}
}

func TestBadInputs(t *testing.T) {
	if code, _, _ := runCLI(t, "-replay", "testdata/no-such-file.json"); code != 2 {
		t.Fatalf("missing replay file: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "-bogus"); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nodes": 1, "horizon": "1s", "settle": "0s"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "-replay", bad)
	if code != 2 || !strings.Contains(errOut, "nodes") {
		t.Fatalf("invalid schedule: exit %d stderr %q, want 2 with a nodes complaint", code, errOut)
	}
}
