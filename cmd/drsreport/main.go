// Command drsreport regenerates the paper's entire evaluation — every
// figure, table and extension ablation — into one Markdown report, and
// verifies the headline numbers reproduce.
//
// Usage:
//
//	drsreport [-out file] [-quick] [-seed s]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"drsnet/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("drsreport", flag.ContinueOnError)
	flags.SetOutput(stderr)
	out := flags.String("out", "", "output file (default stdout)")
	quick := flags.Bool("quick", false, "shrink Monte Carlo ladders for a fast smoke report")
	seed := flags.Uint64("seed", 1, "seed for every stochastic experiment")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	w := bufio.NewWriter(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "drsreport: %v\n", err)
			return 1
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := report.Generate(w, report.Config{Quick: *quick, Seed: *seed}); err != nil {
		fmt.Fprintf(stderr, "drsreport: %v\n", err)
		return 1
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(stderr, "drsreport: %v\n", err)
		return 1
	}

	if err := report.Headline(); err != nil {
		fmt.Fprintf(stderr, "drsreport: HEADLINE CHECK FAILED: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, "drsreport: headline numbers reproduce (thresholds 18/32/45, 90 hosts < 1 s at 10%)")
	return 0
}
