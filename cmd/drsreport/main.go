// Command drsreport regenerates the paper's entire evaluation — every
// figure, table and extension ablation — into one Markdown report, and
// verifies the headline numbers reproduce.
//
// Usage:
//
//	drsreport [-out file] [-quick] [-seed s]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"drsnet/internal/report"
)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	quick := flag.Bool("quick", false, "shrink Monte Carlo ladders for a fast smoke report")
	seed := flag.Uint64("seed", 1, "seed for every stochastic experiment")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsreport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := report.Generate(w, report.Config{Quick: *quick, Seed: *seed}); err != nil {
		fmt.Fprintf(os.Stderr, "drsreport: %v\n", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "drsreport: %v\n", err)
		os.Exit(1)
	}

	if err := report.Headline(); err != nil {
		fmt.Fprintf(os.Stderr, "drsreport: HEADLINE CHECK FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "drsreport: headline numbers reproduce (thresholds 18/32/45, 90 hosts < 1 s at 10%)")
}
