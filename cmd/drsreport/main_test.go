package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestQuickReportGolden pins the full -quick report byte-for-byte: the
// shrunk Monte Carlo ladders are seeded, so every figure and table in
// the Markdown output is deterministic.
func TestQuickReportGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "quick_report.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-quick"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("quick report drifted from testdata/quick_report.golden (%d vs %d bytes)\n--- got ---\n%s",
			out.Len(), len(want), out.String())
	}
	const headline = "drsreport: headline numbers reproduce"
	if !strings.Contains(errb.String(), headline) {
		t.Fatalf("stderr missing %q:\n%s", headline, errb.String())
	}
}

// TestOutFlag writes the report to a file instead of stdout.
func TestOutFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-out", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("stdout not empty with -out: %q", out.String())
	}
	want, err := os.ReadFile(filepath.Join("testdata", "quick_report.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("-out file differs from golden (%d vs %d bytes)", len(got), len(want))
	}
}

// TestBadFlags: unwritable -out path and unknown flags fail loudly.
func TestBadFlags(t *testing.T) {
	for _, tc := range []struct {
		args []string
		code int
	}{
		{[]string{"-quick", "-out", filepath.Join(t.TempDir(), "no", "such", "dir", "r.md")}, 1},
		{[]string{"-not-a-flag"}, 2},
	} {
		var out, errb bytes.Buffer
		if code := run(tc.args, &out, &errb); code != tc.code {
			t.Errorf("args %v: exit %d, want %d (stderr: %s)", tc.args, code, tc.code, errb.String())
		}
		if errb.Len() == 0 {
			t.Errorf("args %v produced no diagnostics", tc.args)
		}
	}
}
