// Command drsurvive regenerates the paper's Figure 2 (the analytic
// P[Success] curves of Equation 1) and the 0.99 thresholds the paper
// highlights (N=18 for f=2, N=32 for f=3, N=45 for f=4), optionally
// cross-checked by Monte Carlo simulation.
//
// Usage:
//
//	drsurvive [-f list] [-nmax n] [-target p] [-thresholds]
//	          [-workers w] [-mc iterations] [-seed s]
//	          [-topology desc] [-allpairs]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"drsnet/internal/experiments"
	"drsnet/internal/montecarlo"
	"drsnet/internal/survival"
	"drsnet/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("drsurvive", flag.ContinueOnError)
	flags.SetOutput(stderr)
	fs := flags.String("f", "2,3,4,5,6,7,8,9,10", "failure counts, comma separated")
	nmax := flags.Int("nmax", 63, "largest cluster size (paper: f < N < 64)")
	target := flags.Float64("target", 0.99, "threshold target probability")
	thresholdsOnly := flags.Bool("thresholds", false, "print only the 0.99-threshold table")
	workers := flags.Int("workers", 0, "sweep worker goroutines (0 = all CPUs); output is identical for every count")
	mc := flags.Int64("mc", 0, "if > 0, also Monte Carlo-estimate each curve with this many iterations")
	seed := flags.Uint64("seed", 1, "Monte Carlo seed")
	rails := flags.Bool("rails", false, "also print the redundancy ablation (1/2/3 rails, Monte Carlo)")
	plot := flags.Bool("plot", false, "render Figure 2 as an ASCII chart instead of a table")
	railsN := flags.Int("railsn", 12, "cluster size for the rails ablation")
	topo := flags.String("topology", "", `switched fabric descriptor (e.g. "fatTree:k=8", "bcube:n=4,k=1"); Monte Carlo-estimates fabric survivability instead of the dual-rail closed form`)
	allPairs := flags.Bool("allpairs", false, "with -topology, score full-fabric (all-pairs) connectivity")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	var failures []int
	for _, tok := range strings.Split(*fs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fmt.Fprintf(stderr, "drsurvive: bad failure count %q: %v\n", tok, err)
			return 1
		}
		failures = append(failures, v)
	}

	if *topo != "" {
		return runFabric(*topo, failures, *mc, *seed, *workers, *allPairs, stdout, stderr)
	}

	if !*thresholdsOnly {
		res, err := experiments.Figure2Workers(failures, *nmax, *workers)
		if err != nil {
			fmt.Fprintf(stderr, "drsurvive: %v\n", err)
			return 1
		}
		write := res.WriteTable
		if *plot {
			write = res.WritePlot
		}
		if err := write(stdout); err != nil {
			fmt.Fprintf(stderr, "drsurvive: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout)
	}

	rows, err := experiments.ThresholdsWorkers(failures, *target, 4*(*nmax), *workers)
	if err != nil {
		fmt.Fprintf(stderr, "drsurvive: %v\n", err)
		return 1
	}
	if err := experiments.WriteThresholds(stdout, rows, *target); err != nil {
		fmt.Fprintf(stderr, "drsurvive: %v\n", err)
		return 1
	}

	if *rails {
		iters := *mc
		if iters <= 0 {
			iters = 100000
		}
		res, err := experiments.RailsComparison(*railsN, []int{1, 2, 3}, failures, iters, *seed)
		if err != nil {
			fmt.Fprintf(stderr, "drsurvive: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout)
		if err := res.WriteTable(stdout); err != nil {
			fmt.Fprintf(stderr, "drsurvive: %v\n", err)
			return 1
		}
	}

	if *mc > 0 {
		fmt.Fprintf(stdout, "\n# Monte Carlo cross-check (%d iterations per point)\n", *mc)
		fmt.Fprintf(stdout, "%4s %6s %10s %10s %10s\n", "f", "N", "analytic", "simulated", "|diff|")
		for _, f := range failures {
			for _, n := range []int{f + 1, (f + 1 + *nmax) / 2, *nmax} {
				est, err := montecarlo.Estimate(montecarlo.Config{
					Cluster: topology.Dual(n), Failures: f,
					Iterations: *mc, Seed: *seed,
					Workers: *workers,
				})
				if err != nil {
					fmt.Fprintf(stderr, "drsurvive: %v\n", err)
					return 1
				}
				a := survival.PSuccessFloat(n, f)
				diff := est.P - a
				if diff < 0 {
					diff = -diff
				}
				fmt.Fprintf(stdout, "%4d %6d %10.5f %10.5f %10.5f\n", f, n, a, est.P, diff)
			}
		}
	}
	return 0
}

// runFabric prints the Monte Carlo survivability table for a general
// switched fabric, where Equation 1 does not apply. The monitored pair
// is host 0 and the highest-numbered host — the "far corner" of the
// fabric (cross-pod in a fat-tree, all-levels-distinct in a BCube).
func runFabric(desc string, failures []int, mc int64, seed uint64, workers int, allPairs bool, stdout, stderr io.Writer) int {
	fab, err := topology.Parse(desc)
	if err != nil {
		fmt.Fprintf(stderr, "drsurvive: %v\n", err)
		return 1
	}
	iters := mc
	if iters <= 0 {
		iters = 100000
	}
	criterion := fmt.Sprintf("pair (0,%d)", fab.Hosts()-1)
	if allPairs {
		criterion = "all pairs"
	}
	fmt.Fprintf(stdout, "# %s: %d hosts × %d ports, %d switches, %d trunks (%d components)\n",
		fab.Kind, fab.Hosts(), fab.Ports(), fab.Switches(), fab.Trunks(), fab.Components())
	fmt.Fprintf(stdout, "# Monte Carlo %s survivability, %d iterations per point, seed %d\n",
		criterion, iters, seed)
	fmt.Fprintf(stdout, "%4s %12s %10s\n", "f", "P[Success]", "±95%")
	for _, f := range failures {
		res, err := montecarlo.EstimateFabric(montecarlo.FabricConfig{
			Fabric:     fab,
			Failures:   f,
			Iterations: iters,
			Seed:       seed,
			Workers:    workers,
			PairA:      0,
			PairB:      fab.Hosts() - 1,
			AllPairs:   allPairs,
		})
		if err != nil {
			fmt.Fprintf(stderr, "drsurvive: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "%4d %12.5f %10.5f\n", f, res.P, res.CI95)
	}
	return 0
}
