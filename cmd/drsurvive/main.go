// Command drsurvive regenerates the paper's Figure 2 (the analytic
// P[Success] curves of Equation 1) and the 0.99 thresholds the paper
// highlights (N=18 for f=2, N=32 for f=3, N=45 for f=4), optionally
// cross-checked by Monte Carlo simulation.
//
// Usage:
//
//	drsurvive [-f list] [-nmax n] [-target p] [-mc iterations] [-seed s]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"drsnet/internal/experiments"
	"drsnet/internal/montecarlo"
	"drsnet/internal/survival"
	"drsnet/internal/topology"
)

func main() {
	fs := flag.String("f", "2,3,4,5,6,7,8,9,10", "failure counts, comma separated")
	nmax := flag.Int("nmax", 63, "largest cluster size (paper: f < N < 64)")
	target := flag.Float64("target", 0.99, "threshold target probability")
	mc := flag.Int64("mc", 0, "if > 0, also Monte Carlo-estimate each curve with this many iterations")
	seed := flag.Uint64("seed", 1, "Monte Carlo seed")
	rails := flag.Bool("rails", false, "also print the redundancy ablation (1/2/3 rails, Monte Carlo)")
	plot := flag.Bool("plot", false, "render Figure 2 as an ASCII chart instead of a table")
	railsN := flag.Int("railsn", 12, "cluster size for the rails ablation")
	flag.Parse()

	var failures []int
	for _, tok := range strings.Split(*fs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsurvive: bad failure count %q: %v\n", tok, err)
			os.Exit(1)
		}
		failures = append(failures, v)
	}

	res, err := experiments.Figure2(failures, *nmax)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drsurvive: %v\n", err)
		os.Exit(1)
	}
	write := res.WriteTable
	if *plot {
		write = res.WritePlot
	}
	if err := write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "drsurvive: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()

	rows, err := experiments.Thresholds(failures, *target, 4*(*nmax))
	if err != nil {
		fmt.Fprintf(os.Stderr, "drsurvive: %v\n", err)
		os.Exit(1)
	}
	if err := experiments.WriteThresholds(os.Stdout, rows, *target); err != nil {
		fmt.Fprintf(os.Stderr, "drsurvive: %v\n", err)
		os.Exit(1)
	}

	if *rails {
		iters := *mc
		if iters <= 0 {
			iters = 100000
		}
		res, err := experiments.RailsComparison(*railsN, []int{1, 2, 3}, failures, iters, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsurvive: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if err := res.WriteTable(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "drsurvive: %v\n", err)
			os.Exit(1)
		}
	}

	if *mc > 0 {
		fmt.Printf("\n# Monte Carlo cross-check (%d iterations per point)\n", *mc)
		fmt.Printf("%4s %6s %10s %10s %10s\n", "f", "N", "analytic", "simulated", "|diff|")
		for _, f := range failures {
			for _, n := range []int{f + 1, (f + 1 + *nmax) / 2, *nmax} {
				est, err := montecarlo.Estimate(montecarlo.Config{
					Cluster: topology.Dual(n), Failures: f,
					Iterations: *mc, Seed: *seed,
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "drsurvive: %v\n", err)
					os.Exit(1)
				}
				a := survival.PSuccessFloat(n, f)
				diff := est.P - a
				if diff < 0 {
					diff = -diff
				}
				fmt.Printf("%4d %6d %10.5f %10.5f %10.5f\n", f, n, a, est.P, diff)
			}
		}
	}
}
