package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestThresholdsGolden pins the exact -thresholds table, including the
// paper's headline values: N=18 (f=2), N=32 (f=3), N=45 (f=4) at 0.99.
func TestThresholdsGolden(t *testing.T) {
	const golden = `# First N with P[Success] > 0.99
   f      N  P[S](N,f)
   2     18    0.99004
   3     32    0.99043
   4     45    0.99028
`
	var out, errb bytes.Buffer
	if code := run([]string{"-thresholds", "-f", "2,3,4"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != golden {
		t.Fatalf("threshold table drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestThresholdsGoldenWorkersIdentical: the same table must come out
// byte-identical at every worker count.
func TestThresholdsGoldenWorkersIdentical(t *testing.T) {
	render := func(workers string) string {
		var out, errb bytes.Buffer
		if code := run([]string{"-thresholds", "-f", "2,3,4", "-workers", workers}, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		return out.String()
	}
	ref := render("1")
	for _, w := range []string{"2", "8"} {
		if got := render(w); got != ref {
			t.Fatalf("workers=%s output differs:\n%s\nvs\n%s", w, got, ref)
		}
	}
}

// TestFullOutputShape: the default run prints the Figure 2 table then
// the threshold table.
func TestFullOutputShape(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-f", "2", "-nmax", "20"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "# Figure 2") {
		t.Fatalf("missing Figure 2 header:\n%s", s)
	}
	if !strings.Contains(s, "# First N with P[Success] > 0.99") {
		t.Fatalf("missing threshold header:\n%s", s)
	}
}

// TestBadFlags exercises the error paths.
func TestBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-f", "two"}, &out, &errb); code == 0 {
		t.Fatal("bad -f accepted")
	}
	if code := run([]string{"-nosuchflag"}, &out, &errb); code != 2 {
		t.Fatal("unknown flag not rejected with usage exit code")
	}
}

// TestFabricMode exercises -topology: the header names the fabric, a
// row appears per failure count, and the output is worker-independent.
func TestFabricMode(t *testing.T) {
	render := func(workers string) string {
		var out, errb bytes.Buffer
		code := run([]string{"-topology", "fatTree:k=4", "-f", "1,2", "-mc", "5000", "-workers", workers}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		return out.String()
	}
	s := render("0")
	if !strings.Contains(s, "# fatTree: 16 hosts") {
		t.Fatalf("missing fabric header:\n%s", s)
	}
	if !strings.Contains(s, "pair (0,15)") {
		t.Fatalf("missing pair criterion:\n%s", s)
	}
	if got := render("1"); got != s {
		t.Fatalf("workers=1 output differs:\n%s\nvs\n%s", got, s)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-topology", "torus:k=3"}, &out, &errb); code == 0 {
		t.Fatal("unknown fabric kind accepted")
	}
}
