// Package drsnet is a library reproduction of the Dynamic Routing
// System (DRS) and its network survivability study:
//
//	Chowdhury, Frieder, Luse, Wan. "Network Survivability Simulation
//	of a Commercially Deployed Dynamic Routing System Protocol."
//	IPDPS 2000 Workshops, LNCS 1800, pp. 181–185.
//
// The DRS is a proactive failover protocol for server clusters in
// which every server has two NICs on two separate shared networks.
// Daemons continuously ICMP-probe every peer on every network; when a
// link check fails they install a route around the fault — the second
// rail, or a relay server found by broadcast — before applications
// notice.
//
// The package exposes the three layers of the paper:
//
//   - the analytic survivability model (Equation 1): PSuccess,
//     SurvivabilityThreshold, SimulateSurvivability;
//   - the proactive monitoring cost model (Figure 1): CostModel;
//   - the running protocol on a deterministic packet-level cluster
//     simulation: Cluster, and the recovery experiment
//     CompareProtocols.
//
// Implementation detail lives in internal/ packages; see DESIGN.md for
// the system inventory and EXPERIMENTS.md for paper-vs-measured
// results.
package drsnet

import (
	"fmt"
	"math/big"
	"time"

	"drsnet/internal/costmodel"
	"drsnet/internal/failure"
	"drsnet/internal/montecarlo"
	"drsnet/internal/survival"
	"drsnet/internal/topology"
)

// ---------------------------------------------------------------
// Survivability analytics (the paper's Equation 1, Figure 2).

// PSuccess returns the probability that a designated pair of servers
// in an n-node dual-rail cluster can still communicate when exactly f
// of the 2n+2 components (2n NICs + 2 back planes) have failed,
// assuming all failure combinations are equally likely and DRS routing
// (direct on either rail, or through any relay server).
//
// This is the paper's Equation 1, evaluated exactly and rounded once.
func PSuccess(n, f int) float64 {
	return survival.PSuccessFloat(n, f)
}

// PSuccessExact returns Equation 1 as an exact rational.
func PSuccessExact(n, f int) *big.Rat {
	return survival.PSuccess(n, f)
}

// SurvivabilityThreshold returns the smallest cluster size N ≤ maxN at
// which PSuccess(N, f) exceeds target. For target 0.99 the paper
// reports 18 (f=2), 32 (f=3) and 45 (f=4), which this function
// reproduces exactly.
func SurvivabilityThreshold(f int, target float64, maxN int) (int, error) {
	return survival.ThresholdFloat(f, target, 2, maxN)
}

// SurvivabilitySeries returns PSuccess(n, f) for n = f+1 .. maxN —
// one curve of the paper's Figure 2.
func SurvivabilitySeries(f, maxN int) []float64 {
	return survival.Series(f, f+1, maxN)
}

// SimulateSurvivability estimates PSuccess(n, f) by Monte Carlo
// simulation with the given iteration count and seed, using all CPUs;
// results are deterministic for a seed regardless of parallelism. It
// returns the estimate and a 95% confidence half-width. This is the
// simulation the paper uses to validate Equation 1 (Figure 3).
func SimulateSurvivability(n, f int, iterations int64, seed uint64) (p, ci95 float64, err error) {
	res, err := montecarlo.Estimate(montecarlo.Config{
		Cluster:    topology.Dual(n),
		Failures:   f,
		Iterations: iterations,
		Seed:       seed,
	})
	if err != nil {
		return 0, 0, err
	}
	return res.P, res.CI95, nil
}

// ---------------------------------------------------------------
// Proactive monitoring cost (the paper's Figure 1).

// CostModel quantifies the bandwidth price of proactive link checking
// on a shared-medium network.
type CostModel struct {
	// LinkRateBits is each network's capacity in bits/s
	// (default 100 Mb/s, the paper's network).
	LinkRateBits float64
	// ProbeFrameBytes is the on-wire size of one probe frame
	// (default 84: a minimum Ethernet frame plus preamble and gap).
	ProbeFrameBytes int
	// OrderedPairs, when true, models every daemon independently
	// probing every peer (double the traffic of per-pair checking).
	OrderedPairs bool
}

func (c CostModel) params() costmodel.Params {
	p := costmodel.Defaults()
	if c.LinkRateBits > 0 {
		p.LinkRate = c.LinkRateBits
	}
	if c.ProbeFrameBytes > 0 {
		p.FrameBytes = c.ProbeFrameBytes
	}
	p.OrderedPairs = c.OrderedPairs
	return p
}

// ResponseTime returns the time to complete one full round of link
// checks on an n-node cluster when probing may use at most budget
// (a fraction in (0,1]) of each network's bandwidth — the system's
// error-detection latency, the y-axis of Figure 1.
func (c CostModel) ResponseTime(n int, budget float64) (time.Duration, error) {
	rt, err := c.params().ResponseTime(n, budget)
	if err != nil {
		return 0, err
	}
	return time.Duration(rt * float64(time.Second)), nil
}

// MaxNodes returns the largest cluster whose check round completes
// within responseTime at the given bandwidth budget. The paper:
// "ninety hosts are supported in less than 1 second with only 10% of
// the bandwidth usage."
func (c CostModel) MaxNodes(budget float64, responseTime time.Duration) (int, error) {
	return c.params().MaxNodes(budget, responseTime.Seconds())
}

// Overhead returns the fraction of bandwidth consumed when an n-node
// cluster must detect failures within responseTime.
func (c CostModel) Overhead(n int, responseTime time.Duration) (float64, error) {
	return c.params().Overhead(n, responseTime.Seconds())
}

// ---------------------------------------------------------------
// Fleet failure statistics (the paper's 13% motivation).

// FleetStats summarizes a synthetic one-year hardware failure log.
type FleetStats struct {
	Servers         int
	Days            int
	TotalFailures   int
	NetworkFailures int
	NetworkFraction float64
}

// SimulateFleet regenerates the paper's motivating statistic: a
// hardware failure log for a fleet of servers in which network
// components (NICs, hubs, cabling) account for ≈13% of failures.
func SimulateFleet(servers, days int, seed uint64) (FleetStats, error) {
	cfg := failure.DefaultFleetConfig()
	cfg.Servers = servers
	cfg.Days = days
	cfg.Seed = seed
	log, err := failure.GenerateFleetLog(cfg)
	if err != nil {
		return FleetStats{}, err
	}
	s := log.Summary()
	return FleetStats{
		Servers:         servers,
		Days:            days,
		TotalFailures:   s.Total,
		NetworkFailures: s.Network,
		NetworkFraction: s.NetworkFraction,
	}, nil
}

// validateClusterSize is shared by the cluster simulation constructors.
func validateClusterSize(n int) error {
	if n < 2 {
		return fmt.Errorf("drsnet: a cluster needs at least 2 servers, have %d", n)
	}
	if n > 1<<15 {
		return fmt.Errorf("drsnet: cluster size %d unreasonably large", n)
	}
	return nil
}
