package drsnet

import (
	"math"
	"testing"
	"time"
)

func TestPSuccessHeadlines(t *testing.T) {
	if p := PSuccess(18, 2); p < 0.99 {
		t.Fatalf("PSuccess(18,2) = %v, want > 0.99", p)
	}
	if p := PSuccess(17, 2); p >= 0.99 {
		t.Fatalf("PSuccess(17,2) = %v, want < 0.99", p)
	}
	r := PSuccessExact(18, 2)
	if got := r.RatString(); got != "696/703" {
		t.Fatalf("PSuccessExact(18,2) = %s, want 696/703", got)
	}
}

func TestSurvivabilityThresholds(t *testing.T) {
	for _, tc := range []struct{ f, want int }{{2, 18}, {3, 32}, {4, 45}} {
		n, err := SurvivabilityThreshold(tc.f, 0.99, 100)
		if err != nil || n != tc.want {
			t.Fatalf("Threshold(f=%d) = %d, %v; paper says %d", tc.f, n, err, tc.want)
		}
	}
	if _, err := SurvivabilityThreshold(8, 0.99, 10); err == nil {
		t.Fatal("unreachable threshold accepted")
	}
}

func TestSurvivabilitySeries(t *testing.T) {
	s := SurvivabilitySeries(2, 63)
	if len(s) != 61 {
		t.Fatalf("len = %d", len(s))
	}
	if s[len(s)-1] <= s[0] {
		t.Fatal("series not increasing toward 1")
	}
}

func TestSimulateSurvivabilityAgreesWithAnalytic(t *testing.T) {
	p, ci, err := SimulateSurvivability(20, 3, 100000, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := PSuccess(20, 3)
	if math.Abs(p-want) > 4*ci+1e-9 {
		t.Fatalf("simulated %v vs analytic %v (ci %v)", p, want, ci)
	}
	if _, _, err := SimulateSurvivability(1, 3, 100, 7); err == nil {
		t.Fatal("bad cluster accepted")
	}
}

func TestCostModelHeadline(t *testing.T) {
	var m CostModel // zero value = paper defaults
	rt, err := m.ResponseTime(90, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if rt >= time.Second {
		t.Fatalf("90 hosts at 10%% = %v, paper says < 1 s", rt)
	}
	n, err := m.MaxNodes(0.10, time.Second)
	if err != nil || n < 90 {
		t.Fatalf("MaxNodes = %d, %v", n, err)
	}
	over, err := m.Overhead(90, rt)
	if err != nil || math.Abs(over-0.10) > 1e-9 {
		t.Fatalf("Overhead = %v, %v", over, err)
	}
	if _, err := m.ResponseTime(1, 0.1); err == nil {
		t.Fatal("1-node cluster accepted")
	}
}

func TestSimulateFleet(t *testing.T) {
	s, err := SimulateFleet(100, 365, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalFailures == 0 || s.NetworkFailures == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.NetworkFraction-0.13) > 0.09 {
		t.Fatalf("network fraction = %v, want ≈ 0.13", s.NetworkFraction)
	}
	if _, err := SimulateFleet(0, 365, 1); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestClusterFailoverEndToEnd(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 5, ProbeInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Run(time.Second)
	if err := c.Send(0, 1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	c.Run(100 * time.Millisecond)
	if err := c.FailNIC(1, 0); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Second)
	rt, err := c.RouteOf(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Kind != "direct" || rt.Rail != 1 {
		t.Fatalf("route = %+v, want direct rail 1", rt)
	}
	if err := c.Send(0, 1, []byte("after")); err != nil {
		t.Fatal(err)
	}
	c.Run(200 * time.Millisecond)
	msgs := c.Delivered()
	if len(msgs) != 2 || string(msgs[1].Data) != "after" || msgs[1].To != 1 {
		t.Fatalf("delivered = %v", msgs)
	}
	if reps := c.Repairs(); len(reps) == 0 {
		t.Fatal("no repairs recorded")
	}
	if c.LinkUp(0, 1, 0) {
		t.Fatal("failed link still reported up")
	}
	u, err := c.Utilization(0)
	if err != nil || u <= 0 {
		t.Fatalf("utilization = %v, %v", u, err)
	}
}

func TestClusterCrossRailRelay(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 4, ProbeInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Run(time.Second)
	if err := c.FailNIC(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.FailNIC(1, 1); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Second)
	rt, err := c.RouteOf(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Kind != "relay" {
		t.Fatalf("route = %+v, want relay", rt)
	}
	if err := c.Send(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Run(500 * time.Millisecond)
	if len(c.Delivered()) != 1 {
		t.Fatal("relay path did not deliver")
	}
}

func TestClusterRestore(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 3, ProbeInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Run(500 * time.Millisecond)
	if err := c.FailBackplane(0); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	if c.LinkUp(0, 1, 0) {
		t.Fatal("backplane failure unnoticed")
	}
	if err := c.RestoreBackplane(0); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	if !c.LinkUp(0, 1, 0) {
		t.Fatal("restored backplane unnoticed")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Nodes: 1}); err == nil {
		t.Fatal("1-node cluster accepted")
	}
	if _, err := NewCluster(ClusterConfig{Nodes: 1 << 20}); err == nil {
		t.Fatal("absurd cluster accepted")
	}
	c, err := NewCluster(ClusterConfig{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Send(0, 9, nil); err == nil {
		t.Error("bad destination accepted")
	}
	if err := c.FailNIC(9, 0); err == nil {
		t.Error("bad node accepted")
	}
	if err := c.FailNIC(0, 9); err == nil {
		t.Error("bad rail accepted")
	}
	if err := c.FailBackplane(3); err == nil {
		t.Error("bad backplane accepted")
	}
	if _, err := c.RouteOf(0, 9); err == nil {
		t.Error("bad peer accepted")
	}
	if _, err := c.Utilization(7); err == nil {
		t.Error("bad rail accepted")
	}
	if c.Nodes() != 3 || c.Now() != 0 {
		t.Error("basic accessors wrong")
	}
}

func TestCompareProtocolsOrdering(t *testing.T) {
	results, err := CompareProtocols(8, FailureNIC)
	if err != nil {
		t.Fatal(err)
	}
	names := Protocols()
	if len(results) != len(names) {
		t.Fatalf("%d results for %d registered protocols %v", len(results), len(names), names)
	}
	for i, r := range results {
		if r.Protocol != names[i] {
			t.Fatalf("result %d is %q, want registry order %v", i, r.Protocol, names)
		}
	}
	byName := map[string]ProtocolResult{}
	for _, r := range results {
		byName[r.Protocol] = r
	}
	if !byName["drs"].Recovered {
		t.Fatal("DRS did not recover")
	}
	if byName["static"].Recovered {
		t.Fatal("static recovered")
	}
	if byName["drs"].Outage >= byName["reactive"].Outage {
		t.Fatalf("drs outage %v not better than reactive %v",
			byName["drs"].Outage, byName["reactive"].Outage)
	}
	if _, err := CompareProtocols(8, "meteor"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := CompareProtocols(0, FailureNIC); err == nil {
		t.Fatal("bad size accepted")
	}
}
