package drsnet_test

import (
	"fmt"
	"time"

	"drsnet"
)

// The analytic survivability model (Equation 1): the paper's headline
// thresholds fall out directly.
func ExamplePSuccess() {
	fmt.Printf("P(17,2) = %.5f\n", drsnet.PSuccess(17, 2))
	fmt.Printf("P(18,2) = %.5f\n", drsnet.PSuccess(18, 2))
	n, _ := drsnet.SurvivabilityThreshold(4, 0.99, 100)
	fmt.Printf("f=4 crosses 0.99 at N=%d\n", n)
	// Output:
	// P(17,2) = 0.98889
	// P(18,2) = 0.99004
	// f=4 crosses 0.99 at N=45
}

// The probing cost model (Figure 1): how long a full link-check round
// takes, and how large a cluster fits a detection budget.
func ExampleCostModel() {
	var m drsnet.CostModel // zero value = the paper's 100 Mb/s network
	rt, _ := m.ResponseTime(90, 0.10)
	fmt.Printf("90 hosts at 10%% budget: %.0f ms per round\n", float64(rt.Milliseconds()))
	n, _ := m.MaxNodes(0.10, time.Second)
	fmt.Printf("1-second ceiling at 10%%: %d hosts\n", n)
	// Output:
	// 90 hosts at 10% budget: 538 ms per round
	// 1-second ceiling at 10%: 122 hosts
}

// A packet-level cluster simulation: fail a NIC and watch the DRS
// reroute before the application's next message.
func ExampleNewCluster() {
	cluster, err := drsnet.NewCluster(drsnet.ClusterConfig{
		Nodes:         5,
		ProbeInterval: 200 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Stop()

	cluster.Run(time.Second)
	cluster.FailNIC(1, 0) // server 1 loses its primary NIC
	cluster.Run(time.Second)

	route, _ := cluster.RouteOf(0, 1)
	fmt.Printf("route 0→1 after failover: %s rail %d\n", route.Kind, route.Rail)

	cluster.Send(0, 1, []byte("hello"))
	cluster.Run(100 * time.Millisecond)
	fmt.Printf("delivered: %d message(s)\n", len(cluster.Delivered()))
	// Output:
	// route 0→1 after failover: direct rail 1
	// delivered: 1 message(s)
}

// Monte Carlo validation of Equation 1 (the Figure 3 machinery).
func ExampleSimulateSurvivability() {
	p, ci, _ := drsnet.SimulateSurvivability(18, 2, 500000, 1)
	analytic := drsnet.PSuccess(18, 2)
	fmt.Printf("within CI: %v\n", p-analytic < 4*ci && analytic-p < 4*ci)
	// Output:
	// within CI: true
}

// Time-based availability: what an operator gets from MTBF/MTTR plus
// the DRS detection window.
func ExampleClusterAvailability() {
	av, _ := drsnet.ClusterAvailability(10, 1000*time.Hour, 4*time.Hour, 2500*time.Millisecond)
	fmt.Printf("nines: %d\n", av.Nines)
	fmt.Printf("downtime/year: %v\n", av.DowntimePerYear.Round(time.Minute))
	// Output:
	// nines: 3
	// downtime/year: 59m0s
}
