// Capacityplanner: the operator-facing view of the paper's trade-offs.
// Given a failure-detection budget and an acceptable monitoring
// overhead, how large can a DRS cluster grow (Figure 1), how
// survivable is that cluster (Figure 2 / Equation 1), and what
// availability should an operator expect at realistic MTBF/MTTR?
//
//	go run ./examples/capacityplanner
package main

import (
	"fmt"
	"log"
	"time"

	"drsnet"
)

func main() {
	model := drsnet.CostModel{} // the paper's 100 Mb/s defaults

	fmt.Println("== How big can the cluster be? (Figure 1)")
	fmt.Printf("%22s", "detect within \\ budget")
	budgets := []float64{0.05, 0.10, 0.15, 0.25}
	for _, b := range budgets {
		fmt.Printf(" %7.0f%%", b*100)
	}
	fmt.Println()
	for _, detect := range []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second, 2 * time.Second} {
		fmt.Printf("%22v", detect)
		for _, b := range budgets {
			n, err := model.MaxNodes(b, detect)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8d", n)
		}
		fmt.Println()
	}

	fmt.Println("\n== How survivable is a cluster of that size? (Equation 1)")
	fmt.Printf("%8s %12s %12s %16s\n", "nodes", "P[S] | f=2", "P[S] | f=4", "all-pairs | f=2")
	for _, n := range []int{8, 12, 18, 45, 90} {
		fmt.Printf("%8d %12.5f %12.5f %16.5f\n",
			n, drsnet.PSuccess(n, 2), drsnet.PSuccess(n, 4), drsnet.AllPairsPSuccess(n, 2))
	}
	for _, f := range []int{2, 3, 4} {
		n, err := drsnet.SurvivabilityThreshold(f, 0.99, 200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P[Success] > 0.99 for f=%d from %d nodes\n", f, n)
	}

	fmt.Println("\n== What availability does that buy? (MTBF/MTTR view)")
	fmt.Printf("%8s %14s %14s %12s %8s %16s\n",
		"nodes", "mtbf", "mttr", "effective", "nines", "downtime/yr")
	for _, tc := range []struct {
		nodes      int
		mtbf, mttr time.Duration
	}{
		{10, 1000 * time.Hour, 4 * time.Hour},
		{10, 1000 * time.Hour, 30 * time.Minute},
		{45, 1000 * time.Hour, 4 * time.Hour},
		{10, 200 * time.Hour, 4 * time.Hour},
	} {
		// Detection window: 2 missed probes at a 1 s interval.
		av, err := drsnet.ClusterAvailability(tc.nodes, tc.mtbf, tc.mttr, 2500*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %14v %14v %12.6f %8d %16v\n",
			tc.nodes, tc.mtbf, tc.mttr, av.Effective, av.Nines,
			av.DowntimePerYear.Round(time.Minute))
	}

	fmt.Println("\nReading the tables: a 10% probe budget checks 122 hosts inside a")
	fmt.Println("second; at that scale a double component failure is survived with")
	fmt.Println("probability > 0.99, and with day-scale repair the pair sees four-nines")
	fmt.Println("availability dominated by the repair discipline, not the protocol.")
}
