// Livecluster: the same DRS daemon that runs inside the deterministic
// simulator, running for real — over UDP sockets on the loopback
// interface, with the wall clock as its timer source. A software "NIC"
// flag per (node, rail) lets us unplug interfaces the way a failed
// card would, without leaving the process.
//
// Four nodes probe each other every 50 ms on two rails (two UDP ports
// per node). We unplug interfaces and watch the daemons fail over to
// the second rail and then to a relay, live.
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"drsnet/internal/core"
	"drsnet/internal/routing"
)

const (
	nodes = 4
	rails = 2
)

// realClock adapts the wall clock to the routing.Clock interface the
// daemons expect.
type realClock struct{ start time.Time }

func (c realClock) Now() time.Duration { return time.Since(c.start) }
func (c realClock) AfterFunc(d time.Duration, fn func()) func() bool {
	t := time.AfterFunc(d, fn)
	return t.Stop
}

// udpTransport is one node's pair of "NICs": a UDP socket per rail on
// 127.0.0.1, plus an up/down flag per rail for fault injection.
type udpTransport struct {
	node  int
	conns []*net.UDPConn // one per rail
	nicUp []atomic.Bool
	peers [][]*net.UDPAddr // peers[node][rail]

	mu   sync.Mutex
	recv func(rail, src int, payload []byte)
	done chan struct{}
}

func newUDPTransport(node int) (*udpTransport, error) {
	t := &udpTransport{
		node:  node,
		conns: make([]*net.UDPConn, rails),
		nicUp: make([]atomic.Bool, rails),
		done:  make(chan struct{}),
	}
	for rail := 0; rail < rails; rail++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			return nil, err
		}
		t.conns[rail] = conn
		t.nicUp[rail].Store(true)
	}
	return t, nil
}

// start launches the receive loops once every peer address is known.
func (t *udpTransport) start(peers [][]*net.UDPAddr) {
	t.peers = peers
	for rail := 0; rail < rails; rail++ {
		rail := rail
		go func() {
			buf := make([]byte, 64*1024)
			for {
				n, _, err := t.conns[rail].ReadFromUDP(buf)
				if err != nil {
					select {
					case <-t.done:
						return
					default:
						continue
					}
				}
				if n < 1 || !t.nicUp[rail].Load() {
					continue // a dead NIC hears nothing
				}
				src := int(buf[0])
				if src < 0 || src >= nodes || src == t.node {
					continue
				}
				payload := append([]byte(nil), buf[1:n]...)
				t.mu.Lock()
				recv := t.recv
				t.mu.Unlock()
				if recv != nil {
					recv(rail, src, payload)
				}
			}
		}()
	}
}

func (t *udpTransport) close() {
	close(t.done)
	for _, c := range t.conns {
		c.Close()
	}
}

func (t *udpTransport) Node() int  { return t.node }
func (t *udpTransport) Nodes() int { return nodes }
func (t *udpTransport) Rails() int { return rails }

func (t *udpTransport) Send(rail, dst int, payload []byte) error {
	if !t.nicUp[rail].Load() {
		return nil // a dead NIC sends nothing, silently — like hardware
	}
	frame := append([]byte{byte(t.node)}, payload...)
	send := func(to int) {
		if addr := t.peers[to][rail]; addr != nil {
			_, _ = t.conns[rail].WriteToUDP(frame, addr)
		}
	}
	if dst == routing.Broadcast {
		for to := 0; to < nodes; to++ {
			if to != t.node {
				send(to)
			}
		}
		return nil
	}
	send(dst)
	return nil
}

func (t *udpTransport) SetReceiver(fn func(rail, src int, payload []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recv = fn
}

func main() {
	clock := realClock{start: time.Now()}

	// Bind every socket first so all addresses are known, then wire
	// the mesh.
	transports := make([]*udpTransport, nodes)
	for n := 0; n < nodes; n++ {
		t, err := newUDPTransport(n)
		if err != nil {
			log.Fatal(err)
		}
		transports[n] = t
	}
	peers := make([][]*net.UDPAddr, nodes)
	for n, t := range transports {
		peers[n] = make([]*net.UDPAddr, rails)
		for r, conn := range t.conns {
			peers[n][r] = conn.LocalAddr().(*net.UDPAddr)
		}
	}
	for _, t := range transports {
		t.start(peers)
	}
	defer func() {
		for _, t := range transports {
			t.close()
		}
	}()

	// One DRS daemon per node, probing every 50 ms. Nobody is given a
	// host list: the daemons discover each other over the wire
	// (dynamic membership).
	cfg := core.DefaultConfig()
	cfg.ProbeInterval = 50 * time.Millisecond
	cfg.MissThreshold = 2
	cfg.DynamicMembership = true

	daemons := make([]*core.Daemon, nodes)
	var deliveredMu sync.Mutex
	var delivered []string
	for n := 0; n < nodes; n++ {
		d, err := core.New(transports[n], clock, cfg)
		if err != nil {
			log.Fatal(err)
		}
		n := n
		d.SetDeliverFunc(func(src int, data []byte) {
			deliveredMu.Lock()
			delivered = append(delivered, fmt.Sprintf("%d→%d %q", src, n, data))
			deliveredMu.Unlock()
		})
		daemons[n] = d
	}
	for _, d := range daemons {
		if err := d.Start(); err != nil {
			log.Fatal(err)
		}
	}
	defer func() {
		for _, d := range daemons {
			d.Stop()
		}
	}()

	route := func(a, b int) string {
		rt := daemons[a].RouteTo(b)
		return fmt.Sprintf("%s rail %d via %d", rt.Kind, rt.Rail, rt.Via)
	}

	time.Sleep(300 * time.Millisecond)
	fmt.Printf("discovered:     node 0 monitors %v\n", daemons[0].Peers())
	fmt.Printf("healthy:        route 0→1 is %s\n", route(0, 1))
	must(daemons[0].SendData(1, []byte("over the primary rail")))
	time.Sleep(50 * time.Millisecond) // let the datagram land before unplugging

	// Unplug node 1's rail-0 NIC.
	transports[1].nicUp[0].Store(false)
	time.Sleep(500 * time.Millisecond)
	fmt.Printf("nic(1,0) dead:  route 0→1 is %s\n", route(0, 1))
	must(daemons[0].SendData(1, []byte("over the second rail")))

	// Now also unplug node 0's rail-1 NIC: no direct path remains and
	// the daemons must find a relay by broadcast.
	transports[0].nicUp[1].Store(false)
	time.Sleep(700 * time.Millisecond)
	fmt.Printf("cross-rail cut: route 0→1 is %s\n", route(0, 1))
	must(daemons[0].SendData(1, []byte("through a relay server")))

	time.Sleep(300 * time.Millisecond)
	deliveredMu.Lock()
	for _, line := range delivered {
		fmt.Println("delivered:", line)
	}
	deliveredMu.Unlock()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
