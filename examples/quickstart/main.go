// Quickstart: build a simulated dual-rail server cluster running the
// DRS, kill a NIC, and watch the daemons reroute around it before the
// application's next message. The drsnet.Cluster facade used here is
// assembled by internal/runtime — the same unified spec/registry path
// every experiment harness and scenario file runs through.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"drsnet"
)

func main() {
	// An 8-server cluster — the small end of the deployed voice-mail
	// clusters — probing every 200 ms.
	cluster, err := drsnet.NewCluster(drsnet.ClusterConfig{
		Nodes:         8,
		ProbeInterval: 200 * time.Millisecond,
		MissThreshold: 2,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// Let the daemons complete a few link-check rounds.
	cluster.Run(time.Second)

	route, err := cluster.RouteOf(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%-8v route 0→1: %s rail %d via %d\n", cluster.Now(), route.Kind, route.Rail, route.Via)

	if err := cluster.Send(0, 1, []byte("before failure")); err != nil {
		log.Fatal(err)
	}
	cluster.Run(50 * time.Millisecond)

	// Server 1's primary NIC dies.
	fmt.Printf("t=%-8v failing nic(1,0)\n", cluster.Now())
	if err := cluster.FailNIC(1, 0); err != nil {
		log.Fatal(err)
	}

	// Within MissThreshold probe rounds the DRS detects the dead link
	// and fails over to the second rail.
	cluster.Run(time.Second)
	route, err = cluster.RouteOf(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%-8v route 0→1: %s rail %d via %d\n", cluster.Now(), route.Kind, route.Rail, route.Via)

	if err := cluster.Send(0, 1, []byte("after failover")); err != nil {
		log.Fatal(err)
	}
	cluster.Run(100 * time.Millisecond)

	for _, m := range cluster.Delivered() {
		fmt.Printf("t=%-8v delivered %d→%d: %q\n", m.At, m.From, m.To, m.Data)
	}
	for _, r := range cluster.Repairs() {
		if r.Node == 0 && r.Peer == 1 {
			fmt.Printf("repair at node %d for peer %d: %s rail %d (latency %v)\n",
				r.Node, r.Peer, r.Route.Kind, r.Route.Rail, r.Latency)
		}
	}

	// The analytic model behind it all: how survivable is this shape?
	fmt.Printf("P[Success] for 8 nodes, 2 failures: %.5f\n", drsnet.PSuccess(8, 2))
	n, err := drsnet.SurvivabilityThreshold(2, 0.99, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P[Success] exceeds 0.99 from %d nodes (paper: 18)\n", n)
}
