// Reactive vs proactive: the paper's core argument, measured. The same
// failure is replayed on identical clusters under every routing
// protocol in the runtime registry — the proactive DRS, an OSPF-like
// link-state baseline, a RIP-like reactive protocol that only
// discovers failures when routes time out, and static routing — and
// the application-visible outage is compared against what TCP can
// mask. A protocol registered by a plugin would appear in these tables
// without any change here.
//
//	go run ./examples/reactivevsproactive
package main

import (
	"fmt"
	"log"
	"strings"

	"drsnet"
)

func main() {
	fmt.Printf("protocols under test: %s\n\n", strings.Join(drsnet.Protocols(), ", "))
	scenarios := []struct {
		name, key, blurb string
	}{
		{"single NIC", drsnet.FailureNIC,
			"the destination's primary NIC dies; the second rail survives"},
		{"back plane", drsnet.FailureBackplane,
			"an entire shared network dies; every node must fail over at once"},
		{"cross rail", drsnet.FailureCrossRail,
			"sender and receiver lose opposite rails; only a relay server reconnects them"},
	}

	for _, sc := range scenarios {
		fmt.Printf("== %s failure — %s\n", sc.name, sc.blurb)
		results, err := drsnet.CompareProtocols(10, sc.key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10s %7s %14s %14s %8s\n",
			"protocol", "lost", "recov", "outage", "repair", "masked")
		for _, r := range results {
			outage := r.Outage.String()
			if !r.Recovered {
				outage = "never (>" + outage + ")"
			}
			fmt.Printf("%-10s %10d %7v %14s %14v %8v\n",
				r.Protocol, r.Lost, r.Recovered, outage, r.RepairLatency, r.MaskedFromTCP)
		}
		fmt.Println()
	}

	fmt.Println("The DRS recovers within its detection budget (miss-threshold × probe")
	fmt.Println("interval); the reactive protocol waits for its route timeout; static")
	fmt.Println("routing never recovers. Shrink the probe interval and the DRS outage")
	fmt.Println("drops inside a single TCP retransmission — the paper's \"applications")
	fmt.Println("are unaware\" regime (see cmd/drsim -probe 200ms).")
}
