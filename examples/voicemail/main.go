// Voicemail: the deployment scenario from the paper — MCI WorldCom ran
// the DRS in 27 local voice-mail server clusters of 8 to 12 servers
// each. This example subjects every cluster to a compressed "year" of
// random NIC and back-plane failures (with repairs) while a voice-mail
// front end exchanges messages with its store server, and reports the
// availability each cluster achieved, alongside the fleet failure
// statistic the paper opens with.
//
// Each cluster is described declaratively as a runtime.ClusterSpec and
// the whole fleet runs through runtime.RunMany — concurrently across
// clusters, with output identical for every -workers count.
//
//	go run ./examples/voicemail [-workers n]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"drsnet"
	"drsnet/internal/runtime"
	"drsnet/internal/topology"
)

const (
	clusters = 27
	// One compressed "year": time is scaled so that two simulated
	// hours stand in for twelve months — the failure/repair cycle
	// counts match a real year at the paper's failure rates, while
	// the whole 27-cluster campaign runs in seconds.
	campaign = 2 * time.Hour
	// Mean time between failures per component, and mean repair time
	// (scaled with the campaign).
	mtbf = 20 * time.Minute
	mttr = 90 * time.Second
	// The application exchanges a message every 10 s of simulated time.
	appInterval = 10 * time.Second
)

func main() {
	workers := flag.Int("workers", 0, "clusters simulated concurrently (0 = all CPUs); output is identical for every count")
	flag.Parse()

	fmt.Printf("DRS voice-mail deployment: %d clusters, %v campaign per cluster\n\n", clusters, campaign)
	fmt.Printf("%8s %6s %9s %10s %10s %12s %12s\n",
		"cluster", "nodes", "failures", "sent", "delivered", "availability", "worst-repair")

	// Describe every cluster declaratively: its shape, its application
	// flow, and a pre-drawn failure/repair plan.
	type meta struct{ nodes, failures int }
	specs := make([]runtime.ClusterSpec, clusters)
	metas := make([]meta, clusters)
	for id := 0; id < clusters; id++ {
		rng := rand.New(rand.NewSource(int64(id) + 1))
		nodes := 8 + rng.Intn(5) // 8..12, as deployed

		// Alternating up/down periods for each NIC and back plane.
		type event struct {
			at   time.Duration
			fail bool
			node int // -1 for a back plane
			rail int
		}
		var plan []event
		addComponent := func(node, rail int) {
			t := time.Duration(rng.ExpFloat64() * float64(mtbf))
			for t < campaign {
				plan = append(plan, event{at: t, fail: true, node: node, rail: rail})
				t += time.Duration(rng.ExpFloat64() * float64(mttr))
				if t >= campaign {
					break
				}
				plan = append(plan, event{at: t, fail: false, node: node, rail: rail})
				t += time.Duration(rng.ExpFloat64() * float64(mtbf))
			}
		}
		for n := 0; n < nodes; n++ {
			addComponent(n, 0)
			addComponent(n, 1)
		}
		addComponent(-1, 0) // back planes fail too, just less often in
		addComponent(-1, 1) // practice; the exponential clock handles it

		// Sort the plan by time (insertion order is per component).
		for i := 1; i < len(plan); i++ {
			for j := i; j > 0 && plan[j].at < plan[j-1].at; j-- {
				plan[j], plan[j-1] = plan[j-1], plan[j]
			}
		}

		spec := runtime.ClusterSpec{
			Nodes:    nodes,
			Protocol: runtime.ProtoDRS,
			Seed:     uint64(id) + 1,
			// Five seconds past the campaign drain in-flight deliveries.
			Duration: campaign + 5*time.Second,
			Tunables: runtime.Tunables{
				ProbeInterval: 2 * time.Second,
				MissThreshold: 2,
			},
			// Front end (node 0) → message store (node 1), first message
			// at t = 0, last before the campaign ends.
			Flows: []runtime.Flow{{
				From:     0,
				To:       1,
				Interval: appInterval,
				Start:    runtime.StartImmediately,
				Stop:     campaign,
				Payload:  []byte("voicemail-chunk"),
			}},
		}
		cl := topology.Dual(nodes)
		failures := 0
		for _, e := range plan {
			comp := cl.Backplane(e.rail)
			if e.node >= 0 {
				comp = cl.NIC(e.node, e.rail)
			}
			spec.Faults = append(spec.Faults, runtime.Fault{At: e.at, Comp: comp, Restore: !e.fail})
			if e.fail {
				failures++
			}
		}
		specs[id] = spec
		metas[id] = meta{nodes: nodes, failures: failures}
	}

	results, err := runtime.RunMany(context.Background(), specs, *workers)
	if err != nil {
		log.Fatal(err)
	}

	var totalSent, totalDelivered int
	for id, run := range results {
		flow := run.Flows[0]
		worst := time.Duration(0)
		for _, r := range run.Repairs {
			if l := r.Latency(); l > worst {
				worst = l
			}
		}
		availability := float64(flow.Delivered) / float64(flow.Sent)
		totalSent += flow.Sent
		totalDelivered += flow.Delivered
		fmt.Printf("%8d %6d %9d %10d %10d %11.3f%% %12v\n",
			id, metas[id].nodes, metas[id].failures, flow.Sent, flow.Delivered, 100*availability, worst)
	}

	fmt.Printf("\nfleet-wide: %d/%d messages delivered (%.3f%%) despite continuous component churn\n",
		totalDelivered, totalSent, 100*float64(totalDelivered)/float64(totalSent))

	// The statistic that motivated the DRS in the first place.
	stats, err := drsnet.SimulateFleet(100, 365, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardware failure log (100 servers, 1 year): %d failures, %.1f%% network related (paper: 13%%)\n",
		stats.TotalFailures, 100*stats.NetworkFraction)
}
