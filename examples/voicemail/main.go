// Voicemail: the deployment scenario from the paper — MCI WorldCom ran
// the DRS in 27 local voice-mail server clusters of 8 to 12 servers
// each. This example subjects every cluster to a compressed "year" of
// random NIC and back-plane failures (with repairs) while a voice-mail
// front end exchanges messages with its store server, and reports the
// availability each cluster achieved, alongside the fleet failure
// statistic the paper opens with.
//
//	go run ./examples/voicemail
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"drsnet"
)

const (
	clusters = 27
	// One compressed "year": time is scaled so that two simulated
	// hours stand in for twelve months — the failure/repair cycle
	// counts match a real year at the paper's failure rates, while
	// the whole 27-cluster campaign runs in seconds.
	campaign = 2 * time.Hour
	// Mean time between failures per component, and mean repair time
	// (scaled with the campaign).
	mtbf = 20 * time.Minute
	mttr = 90 * time.Second
	// The application exchanges a message every 10 s of simulated time.
	appInterval = 10 * time.Second
)

func main() {
	fmt.Printf("DRS voice-mail deployment: %d clusters, %v campaign per cluster\n\n", clusters, campaign)
	fmt.Printf("%8s %6s %9s %10s %10s %12s %12s\n",
		"cluster", "nodes", "failures", "sent", "delivered", "availability", "worst-repair")

	var totalSent, totalDelivered int
	for id := 0; id < clusters; id++ {
		rng := rand.New(rand.NewSource(int64(id) + 1))
		nodes := 8 + rng.Intn(5) // 8..12, as deployed

		cluster, err := drsnet.NewCluster(drsnet.ClusterConfig{
			Nodes:         nodes,
			ProbeInterval: 2 * time.Second,
			MissThreshold: 2,
			Seed:          uint64(id) + 1,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Pre-draw a failure/repair plan: alternating up/down periods
		// for each NIC and back plane.
		type event struct {
			at   time.Duration
			fail bool
			node int // -1 for a back plane
			rail int
		}
		var plan []event
		addComponent := func(node, rail int) {
			t := time.Duration(rng.ExpFloat64() * float64(mtbf))
			for t < campaign {
				plan = append(plan, event{at: t, fail: true, node: node, rail: rail})
				t += time.Duration(rng.ExpFloat64() * float64(mttr))
				if t >= campaign {
					break
				}
				plan = append(plan, event{at: t, fail: false, node: node, rail: rail})
				t += time.Duration(rng.ExpFloat64() * float64(mtbf))
			}
		}
		for n := 0; n < nodes; n++ {
			addComponent(n, 0)
			addComponent(n, 1)
		}
		addComponent(-1, 0) // back planes fail too, just less often in
		addComponent(-1, 1) // practice; the exponential clock handles it

		// Sort the plan by time (insertion order is per component).
		for i := 1; i < len(plan); i++ {
			for j := i; j > 0 && plan[j].at < plan[j-1].at; j-- {
				plan[j], plan[j-1] = plan[j-1], plan[j]
			}
		}

		// Interleave: advance simulation to each event, injecting app
		// traffic (front end node 0 → message store node 1) as we go.
		sent, failures := 0, 0
		next := time.Duration(0)
		step := func(until time.Duration) {
			for next < until {
				cluster.Run(next - cluster.Now())
				_ = cluster.Send(0, 1, []byte("voicemail-chunk"))
				sent++
				next += appInterval
			}
			cluster.Run(until - cluster.Now())
		}
		apply := func(e event) {
			if e.node < 0 {
				if e.fail {
					_ = cluster.FailBackplane(e.rail)
				} else {
					_ = cluster.RestoreBackplane(e.rail)
				}
			} else {
				if e.fail {
					_ = cluster.FailNIC(e.node, e.rail)
				} else {
					_ = cluster.RestoreNIC(e.node, e.rail)
				}
			}
		}
		for _, e := range plan {
			step(e.at)
			apply(e)
			if e.fail {
				failures++
			}
		}
		step(campaign)
		cluster.Run(5 * time.Second) // drain in-flight deliveries
		cluster.Stop()

		delivered := 0
		for _, m := range cluster.Delivered() {
			if m.From == 0 && m.To == 1 {
				delivered++
			}
		}
		worst := time.Duration(0)
		for _, r := range cluster.Repairs() {
			if r.Latency > worst {
				worst = r.Latency
			}
		}
		availability := float64(delivered) / float64(sent)
		totalSent += sent
		totalDelivered += delivered
		fmt.Printf("%8d %6d %9d %10d %10d %11.3f%% %12v\n",
			id, nodes, failures, sent, delivered, 100*availability, worst)
	}

	fmt.Printf("\nfleet-wide: %d/%d messages delivered (%.3f%%) despite continuous component churn\n",
		totalDelivered, totalSent, 100*float64(totalDelivered)/float64(totalSent))

	// The statistic that motivated the DRS in the first place.
	stats, err := drsnet.SimulateFleet(100, 365, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardware failure log (100 servers, 1 year): %d failures, %.1f%% network related (paper: 13%%)\n",
		stats.TotalFailures, 100*stats.NetworkFraction)
}
