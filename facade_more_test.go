package drsnet

import (
	"math"
	"testing"
	"time"
)

func TestAllPairsPSuccessFacade(t *testing.T) {
	// All-pairs is strictly stricter than the designated pair.
	for _, n := range []int{4, 12, 45} {
		for _, f := range []int{2, 4} {
			all := AllPairsPSuccess(n, f)
			pair := PSuccess(n, f)
			if all > pair {
				t.Fatalf("n=%d f=%d: all-pairs %v exceeds pair %v", n, f, all, pair)
			}
			if all <= 0 || all >= 1 {
				t.Fatalf("n=%d f=%d: all-pairs = %v", n, f, all)
			}
		}
	}
}

func TestClusterAvailabilityFacade(t *testing.T) {
	av, err := ClusterAvailability(10, 1000*time.Hour, 4*time.Hour, 2500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if av.Q <= 0 || av.Q >= 1 {
		t.Fatalf("q = %v", av.Q)
	}
	if !(av.Effective < av.Structural) {
		t.Fatalf("effective %v not below structural %v", av.Effective, av.Structural)
	}
	if av.Nines < 2 {
		t.Fatalf("nines = %d for a 1000h-MTBF cluster", av.Nines)
	}
	wantDowntime := time.Duration((1 - av.Effective) * 365 * 24 * float64(time.Hour))
	if d := av.DowntimePerYear - wantDowntime; d < -time.Second || d > time.Second {
		t.Fatalf("downtime %v inconsistent with effective %v", av.DowntimePerYear, av.Effective)
	}
	if _, err := ClusterAvailability(1, time.Hour, time.Minute, time.Second); err == nil {
		t.Fatal("bad cluster size accepted")
	}
	if _, err := ClusterAvailability(10, 0, time.Minute, time.Second); err == nil {
		t.Fatal("zero MTBF accepted")
	}
}

func TestClusterRestoreNIC(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 3, ProbeInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Run(500 * time.Millisecond)
	if err := c.FailNIC(1, 0); err != nil {
		t.Fatal(err)
	}
	c.Run(500 * time.Millisecond)
	if c.LinkUp(0, 1, 0) {
		t.Fatal("failure unnoticed")
	}
	if err := c.RestoreNIC(1, 0); err != nil {
		t.Fatal(err)
	}
	c.Run(500 * time.Millisecond)
	if !c.LinkUp(0, 1, 0) {
		t.Fatal("restore unnoticed")
	}
	// Validation paths.
	if err := c.RestoreNIC(9, 0); err == nil {
		t.Error("bad node accepted")
	}
	if err := c.RestoreNIC(0, 9); err == nil {
		t.Error("bad rail accepted")
	}
	if err := c.RestoreBackplane(9); err == nil {
		t.Error("bad backplane accepted")
	}
}

func TestCostModelCustomParams(t *testing.T) {
	m := CostModel{LinkRateBits: 1e9, ProbeFrameBytes: 84, OrderedPairs: true}
	rt, err := m.ResponseTime(90, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Gigabit: 10× faster than the default net the ordered-pairs 2×:
	// 2 × 0.538s / 10 = 107.7ms.
	want := 2 * 0.53827 / 10
	if math.Abs(rt.Seconds()-want) > 1e-3 {
		t.Fatalf("gigabit ordered response = %v, want ~%vs", rt, want)
	}
}

func TestClusterRTTFacade(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 3, ProbeInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, ok := c.RTTOf(0, 1, 0); ok {
		t.Fatal("RTT before first probe reported")
	}
	c.Run(time.Second)
	rtt, ok := c.RTTOf(0, 1, 0)
	if !ok || rtt.Samples == 0 || rtt.SRTT <= 0 {
		t.Fatalf("rtt = %+v, ok = %v", rtt, ok)
	}
	if _, ok := c.RTTOf(9, 1, 0); ok {
		t.Fatal("bad node accepted")
	}
}
