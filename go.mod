module drsnet

go 1.22
