// Package asciiplot renders line charts as plain text, so the cmd/
// tools can reproduce the paper's figures — not just their data — in a
// terminal. It supports multiple series, automatic axis scaling, and a
// logarithmic x-axis (Figure 3 plots iterations on log10).
package asciiplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one curve.
type Series struct {
	Name string
	X, Y []float64
}

// Config controls the rendering.
type Config struct {
	// Title is printed above the plot.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Width and Height are the plot area in character cells
	// (default 72×20).
	Width, Height int
	// LogX plots x on a log10 scale (all x must be positive).
	LogX bool
	// YMin/YMax fix the y range; when both are zero the range is
	// derived from the data.
	YMin, YMax float64
}

// markers assigns one rune per series, cycling if there are many.
var markers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&', '~'}

// Render draws the chart to w.
func Render(w io.Writer, cfg Config, series ...Series) error {
	if len(series) == 0 {
		return fmt.Errorf("asciiplot: no series")
	}
	if cfg.Width <= 0 {
		cfg.Width = 72
	}
	if cfg.Height <= 0 {
		cfg.Height = 20
	}
	if cfg.Width < 8 || cfg.Height < 4 {
		return fmt.Errorf("asciiplot: plot area %dx%d too small", cfg.Width, cfg.Height)
	}

	// Determine ranges.
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("asciiplot: series %q has %d x values and %d y values",
				s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if cfg.LogX && x <= 0 {
				return fmt.Errorf("asciiplot: log x-axis requires positive x, have %v", x)
			}
			points++
			xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
			yMin, yMax = math.Min(yMin, y), math.Max(yMax, y)
		}
	}
	if points == 0 {
		return fmt.Errorf("asciiplot: no finite points")
	}
	if cfg.YMin != 0 || cfg.YMax != 0 {
		yMin, yMax = cfg.YMin, cfg.YMax
		if !(yMax > yMin) {
			return fmt.Errorf("asciiplot: fixed y range [%v,%v] invalid", yMin, yMax)
		}
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}

	xPos := func(x float64) int {
		var frac float64
		if cfg.LogX {
			frac = (math.Log10(x) - math.Log10(xMin)) / (math.Log10(xMax) - math.Log10(xMin))
		} else {
			frac = (x - xMin) / (xMax - xMin)
		}
		col := int(math.Round(frac * float64(cfg.Width-1)))
		if col < 0 {
			col = 0
		}
		if col >= cfg.Width {
			col = cfg.Width - 1
		}
		return col
	}
	yPos := func(y float64) int {
		frac := (y - yMin) / (yMax - yMin)
		row := int(math.Round((1 - frac) * float64(cfg.Height-1)))
		if row < 0 {
			row = 0
		}
		if row >= cfg.Height {
			row = cfg.Height - 1
		}
		return row
	}

	// Paint the grid.
	grid := make([][]rune, cfg.Height)
	for r := range grid {
		grid[r] = make([]rune, cfg.Width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if y < yMin || y > yMax {
				continue
			}
			grid[yPos(y)][xPos(x)] = m
		}
	}

	// Emit.
	if cfg.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", cfg.Title); err != nil {
			return err
		}
	}
	if cfg.YLabel != "" {
		fmt.Fprintf(w, "%s\n", cfg.YLabel)
	}
	const gutter = 9
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = axisLabel(yMax)
		case cfg.Height - 1:
			label = axisLabel(yMin)
		case (cfg.Height - 1) / 2:
			label = axisLabel((yMin + yMax) / 2)
		}
		fmt.Fprintf(w, "%*s |%s\n", gutter-2, label, string(row))
	}
	fmt.Fprintf(w, "%*s +%s\n", gutter-2, "", strings.Repeat("-", cfg.Width))
	lo, hi := axisLabel(xMin), axisLabel(xMax)
	if cfg.LogX {
		lo = fmt.Sprintf("10^%.0f", math.Log10(xMin))
		hi = fmt.Sprintf("10^%.0f", math.Log10(xMax))
	}
	pad := cfg.Width - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(w, "%*s %s%s%s\n", gutter-2, "", lo, strings.Repeat(" ", pad), hi)
	if cfg.XLabel != "" {
		fmt.Fprintf(w, "%*s %s\n", gutter-2, "", center(cfg.XLabel, cfg.Width))
	}
	// Legend.
	var legend []string
	for si, s := range series {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("series %d", si+1)
		}
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], name))
	}
	fmt.Fprintf(w, "%*s %s\n", gutter-2, "", strings.Join(legend, "   "))
	return nil
}

func axisLabel(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 10000 || av < 0.001:
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s
}
