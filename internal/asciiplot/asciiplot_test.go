package asciiplot

import (
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, cfg Config, series ...Series) string {
	t.Helper()
	var sb strings.Builder
	if err := Render(&sb, cfg, series...); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestBasicPlacement(t *testing.T) {
	// A 3-point diagonal on a tiny canvas: corners must be hit.
	out := render(t, Config{Width: 11, Height: 5},
		Series{Name: "diag", X: []float64{0, 5, 10}, Y: []float64{0, 5, 10}})
	lines := strings.Split(out, "\n")
	// Row 0 is y=10 (top): marker at last column of the plot area.
	top := lines[0]
	if !strings.HasSuffix(top, "*") {
		t.Fatalf("top row misses the (10,10) point: %q", top)
	}
	// Bottom plot row is y=0: marker right after the axis bar.
	bottom := lines[4]
	if !strings.Contains(bottom, "|*") {
		t.Fatalf("bottom row misses the (0,0) point: %q", bottom)
	}
	// Middle row has the midpoint.
	if !strings.Contains(lines[2], "*") {
		t.Fatalf("middle row misses (5,5): %q", lines[2])
	}
}

func TestAxisLabels(t *testing.T) {
	out := render(t, Config{Width: 20, Height: 5, Title: "T", XLabel: "nodes", YLabel: "P"},
		Series{Name: "s", X: []float64{1, 100}, Y: []float64{0.5, 0.99}})
	for _, want := range []string{"T", "nodes", "P", "0.99", "0.50", "100", "* s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMultipleSeriesMarkers(t *testing.T) {
	out := render(t, Config{Width: 20, Height: 5},
		Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 0}},
		Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 1}})
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Fatalf("legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestLogXAxis(t *testing.T) {
	out := render(t, Config{Width: 21, Height: 5, LogX: true},
		Series{Name: "mad", X: []float64{10, 1000, 100000}, Y: []float64{3, 2, 1}})
	if !strings.Contains(out, "10^1") || !strings.Contains(out, "10^5") {
		t.Fatalf("log ticks missing:\n%s", out)
	}
	// 1000 is the geometric midpoint: its marker must land mid-plot.
	lines := strings.Split(out, "\n")
	mid := lines[2]
	idx := strings.IndexRune(mid, '*')
	if idx < 0 {
		t.Fatalf("midpoint missing:\n%s", out)
	}
	bar := strings.IndexRune(mid, '|')
	col := idx - bar - 1
	if col < 8 || col > 12 {
		t.Fatalf("log midpoint at column %d of 21, want ~10:\n%s", col, out)
	}
}

func TestFixedYRangeClipping(t *testing.T) {
	out := render(t, Config{Width: 12, Height: 4, YMin: 0, YMax: 1},
		Series{Name: "s", X: []float64{0, 1, 2}, Y: []float64{0.5, 5, -3}})
	// Out-of-range points are dropped, not clamped into the frame.
	count := strings.Count(out, "*")
	if count != 1+1 { // one plotted point + one legend marker
		t.Fatalf("plotted %d markers, want 1 (plus legend):\n%s", count-1, out)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, Config{}); err == nil {
		t.Error("no series accepted")
	}
	if err := Render(&sb, Config{}, Series{X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Render(&sb, Config{Width: 2, Height: 2}, Series{X: []float64{1}, Y: []float64{1}}); err == nil {
		t.Error("tiny canvas accepted")
	}
	if err := Render(&sb, Config{LogX: true}, Series{X: []float64{0}, Y: []float64{1}}); err == nil {
		t.Error("nonpositive x on log axis accepted")
	}
	if err := Render(&sb, Config{}, Series{X: []float64{math.NaN()}, Y: []float64{1}}); err == nil {
		t.Error("all-NaN series accepted")
	}
	if err := Render(&sb, Config{YMin: 1, YMax: 1}, Series{X: []float64{1}, Y: []float64{1}}); err == nil {
		t.Error("degenerate fixed y range accepted")
	}
}

func TestConstantSeries(t *testing.T) {
	// Degenerate ranges (single point, constant y) must still render.
	out := render(t, Config{Width: 10, Height: 4},
		Series{Name: "c", X: []float64{5}, Y: []float64{2}})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestNaNPointsSkipped(t *testing.T) {
	out := render(t, Config{Width: 12, Height: 4},
		Series{Name: "s", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 3}})
	count := strings.Count(out, "*") - 1 // minus legend
	if count != 2 {
		t.Fatalf("plotted %d points, want 2:\n%s", count, out)
	}
}
