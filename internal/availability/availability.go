// Package availability extends the paper's conditional survivability
// model (Equation 1: "given exactly f failures") to the unconditional,
// time-based questions an operator actually asks:
//
//   - If every component is independently down with probability q —
//     the steady state of an MTBF/MTTR repair process — what fraction
//     of the time can the pair (or the whole cluster) communicate?
//   - Adding the DRS's detection window (failures cost a few probe
//     intervals of outage even when an alternative path exists), what
//     effective availability does an application see?
//
// The paper itself motivates this view: it introduces a per-component
// failure probability q and argues multi-failure scenarios decay as
// q^f. Here the mixture is carried out exactly over Equation 1's
// closed-form counts.
package availability

import (
	"fmt"
	"math"
	"math/big"
	"time"

	"drsnet/internal/conn"
	"drsnet/internal/rng"
	"drsnet/internal/stats"
	"drsnet/internal/survival"
	"drsnet/internal/topology"
)

// SteadyStateQ returns the steady-state probability that a component
// with the given mean time between failures and mean time to repair is
// down at a random instant: MTTR / (MTBF + MTTR).
func SteadyStateQ(mtbf, mttr time.Duration) (float64, error) {
	if mtbf <= 0 || mttr < 0 {
		return 0, fmt.Errorf("availability: MTBF must be positive and MTTR non-negative")
	}
	return float64(mttr) / float64(mtbf+mttr), nil
}

// PSuccessIID returns the probability that the designated pair can
// communicate when every one of the 2n+2 components is independently
// failed with probability q:
//
//	Σ_f  q^f (1-q)^(2n+2-f) · F(n, f)
//
// with F the closed-form success count behind Equation 1.
func PSuccessIID(n int, q float64) (float64, error) {
	return iidMixture(n, q, survival.SuccessCount)
}

// AllPairsIID is PSuccessIID for full-cluster survivability (every
// pair must communicate).
func AllPairsIID(n int, q float64) (float64, error) {
	return iidMixture(n, q, survival.AllPairsSuccessCount)
}

func iidMixture(n int, q float64, count func(n, f int) *big.Int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("availability: need n >= 2, have %d", n)
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("availability: q=%v outside [0,1]", q)
	}
	m := 2*n + 2
	if q == 0 {
		// Only the failure-free scenario has weight; it always
		// succeeds (F(n,0) = 1).
		return 1, nil
	}
	if q == 1 {
		// Everything is down.
		return 0, nil
	}
	lq := math.Log(q)
	l1q := math.Log1p(-q)
	total := 0.0
	for f := 0; f <= m; f++ {
		c := count(n, f)
		if c.Sign() == 0 {
			continue
		}
		cf, _ := new(big.Float).SetInt(c).Float64()
		total += math.Exp(math.Log(cf) + float64(f)*lq + float64(m-f)*l1q)
	}
	if total > 1 {
		total = 1 // guard against last-ulp drift
	}
	return total, nil
}

// EstimateIID is the Monte Carlo counterpart of PSuccessIID (or, with
// allPairs, of AllPairsIID): sample every component independently down
// with probability q and evaluate connectivity. It returns the
// estimate and a 95% confidence half-width; results are deterministic
// for a seed.
func EstimateIID(n int, q float64, allPairs bool, iterations int64, seed uint64) (p, ci95 float64, err error) {
	if n < 2 {
		return 0, 0, fmt.Errorf("availability: need n >= 2, have %d", n)
	}
	if q < 0 || q > 1 {
		return 0, 0, fmt.Errorf("availability: q=%v outside [0,1]", q)
	}
	if iterations <= 0 {
		return 0, 0, fmt.Errorf("availability: iterations must be positive")
	}
	cluster := topology.Dual(n)
	eval, err := conn.NewEvaluator(cluster)
	if err != nil {
		return 0, 0, err
	}
	r := rng.New(seed)
	m := cluster.Components()
	failed := make([]topology.Component, 0, m)
	var successes int64
	for i := int64(0); i < iterations; i++ {
		failed = failed[:0]
		for comp := 0; comp < m; comp++ {
			if r.Float64() < q {
				failed = append(failed, topology.Component(comp))
			}
		}
		ok := false
		if allPairs {
			ok = eval.AllConnected(failed)
		} else {
			ok = eval.PairConnected(failed, 0, 1)
		}
		if ok {
			successes++
		}
	}
	p = float64(successes) / float64(iterations)
	return p, stats.BernoulliCI(successes, iterations, 1.96), nil
}

// Params describes an operating regime for effective-availability
// estimates.
type Params struct {
	// Nodes is the cluster size.
	Nodes int
	// MTBF and MTTR characterize each component's failure/repair
	// process.
	MTBF, MTTR time.Duration
	// RepairWindow is the DRS's failure-to-reroute latency
	// (≈ miss-threshold × probe interval plus the discovery exchange).
	RepairWindow time.Duration
}

func (p Params) validate() error {
	if p.Nodes < 2 {
		return fmt.Errorf("availability: need ≥ 2 nodes, have %d", p.Nodes)
	}
	if p.MTBF <= 0 || p.MTTR < 0 || p.RepairWindow < 0 {
		return fmt.Errorf("availability: MTBF must be positive; MTTR and repair window non-negative")
	}
	if p.RepairWindow > p.MTBF/10 {
		return fmt.Errorf("availability: repair window %v too close to MTBF %v for the first-order model",
			p.RepairWindow, p.MTBF)
	}
	return nil
}

// Result is an effective-availability estimate.
type Result struct {
	// Q is the steady-state per-component unavailability.
	Q float64
	// Structural is the pair availability with instantaneous rerouting
	// (PSuccessIID): the limit a perfect protocol approaches.
	Structural float64
	// DetectionPenalty is the first-order availability loss from the
	// DRS's repair window: the pair's active path crosses three
	// components (two NICs and a back plane), each failing at rate
	// 1/MTBF, and each such failure blinds the flow for RepairWindow.
	DetectionPenalty float64
	// Effective is Structural − DetectionPenalty, floored at 0.
	Effective float64
}

// Effective computes the first-order effective pair availability of a
// DRS cluster in the given regime.
func Effective(p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	q, err := SteadyStateQ(p.MTBF, p.MTTR)
	if err != nil {
		return Result{}, err
	}
	structural, err := PSuccessIID(p.Nodes, q)
	if err != nil {
		return Result{}, err
	}
	// Active-path components: src NIC, dst NIC, shared back plane.
	const activePathComponents = 3
	penalty := activePathComponents * p.RepairWindow.Seconds() / p.MTBF.Seconds()
	eff := structural - penalty
	if eff < 0 {
		eff = 0
	}
	return Result{
		Q:                q,
		Structural:       structural,
		DetectionPenalty: penalty,
		Effective:        eff,
	}, nil
}

// Nines returns the whole number of nines in an availability a
// (0.999 → 3). It returns 0 for a ≤ 0.9 and caps at 9 for a == 1.
func Nines(a float64) int {
	if a >= 1 {
		return 9
	}
	if a <= 0.9 {
		if a >= 0.9 {
			return 1
		}
		return 0
	}
	// The epsilon absorbs float representation error in 1-a (e.g.
	// 1-0.999 = 0.0010000000000000000208…).
	n := int(-math.Log10(1-a) + 1e-9)
	if n > 9 {
		n = 9
	}
	return n
}

// DowntimePerYear converts an unavailability into expected downtime
// per (365-day) year.
func DowntimePerYear(unavailability float64) time.Duration {
	if unavailability < 0 {
		unavailability = 0
	}
	if unavailability > 1 {
		unavailability = 1
	}
	year := 365 * 24 * time.Hour
	return time.Duration(unavailability * float64(year))
}
