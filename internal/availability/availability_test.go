package availability

import (
	"math"
	"testing"
	"time"

	"drsnet/internal/conn"
	"drsnet/internal/survival"
	"drsnet/internal/topology"
)

func TestSteadyStateQ(t *testing.T) {
	q, err := SteadyStateQ(99*time.Hour, time.Hour)
	if err != nil || math.Abs(q-0.01) > 1e-12 {
		t.Fatalf("q = %v, %v; want 0.01", q, err)
	}
	if _, err := SteadyStateQ(0, time.Hour); err == nil {
		t.Fatal("zero MTBF accepted")
	}
	q, err = SteadyStateQ(time.Hour, 0)
	if err != nil || q != 0 {
		t.Fatalf("zero MTTR: q = %v, %v", q, err)
	}
}

func TestIIDEdgeCases(t *testing.T) {
	p, err := PSuccessIID(10, 0)
	if err != nil || p != 1 {
		t.Fatalf("q=0: %v, %v", p, err)
	}
	p, err = PSuccessIID(10, 1)
	if err != nil || p != 0 {
		t.Fatalf("q=1: %v, %v", p, err)
	}
	if _, err := PSuccessIID(1, 0.1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := PSuccessIID(10, -0.1); err == nil {
		t.Fatal("negative q accepted")
	}
	if _, err := PSuccessIID(10, 1.1); err == nil {
		t.Fatal("q>1 accepted")
	}
}

// refIID computes the IID success probability by enumerating every
// subset of components — an independent check of the mixture.
func refIID(t *testing.T, n int, q float64, allPairs bool) float64 {
	t.Helper()
	cluster := topology.Dual(n)
	eval, err := conn.NewEvaluator(cluster)
	if err != nil {
		t.Fatal(err)
	}
	m := cluster.Components()
	total := 0.0
	for mask := 0; mask < 1<<m; mask++ {
		var failed []topology.Component
		for c := 0; c < m; c++ {
			if mask&(1<<c) != 0 {
				failed = append(failed, topology.Component(c))
			}
		}
		ok := false
		if allPairs {
			ok = eval.AllConnected(failed)
		} else {
			ok = eval.PairConnected(failed, 0, 1)
		}
		if !ok {
			continue
		}
		f := len(failed)
		total += math.Pow(q, float64(f)) * math.Pow(1-q, float64(m-f))
	}
	return total
}

func TestIIDMatchesEnumeration(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		for _, q := range []float64{0.01, 0.1, 0.3, 0.7} {
			got, err := PSuccessIID(n, q)
			if err != nil {
				t.Fatal(err)
			}
			want := refIID(t, n, q, false)
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("PSuccessIID(%d, %v) = %v, enumeration %v", n, q, got, want)
			}
			gotAll, err := AllPairsIID(n, q)
			if err != nil {
				t.Fatal(err)
			}
			wantAll := refIID(t, n, q, true)
			if math.Abs(gotAll-wantAll) > 1e-10 {
				t.Errorf("AllPairsIID(%d, %v) = %v, enumeration %v", n, q, gotAll, wantAll)
			}
			if gotAll > got+1e-12 {
				t.Errorf("all-pairs %v exceeds pair %v", gotAll, got)
			}
		}
	}
}

func TestIIDMonotoneInQ(t *testing.T) {
	prev := 1.0
	for _, q := range []float64{0, 0.01, 0.05, 0.1, 0.2, 0.5, 0.9, 1} {
		p, err := PSuccessIID(12, q)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+1e-12 {
			t.Fatalf("PSuccessIID not monotone at q=%v: %v > %v", q, p, prev)
		}
		prev = p
	}
}

func TestIIDMatchesMonteCarlo(t *testing.T) {
	for _, tc := range []struct {
		n        int
		q        float64
		allPairs bool
	}{
		{10, 0.05, false},
		{10, 0.05, true},
		{20, 0.02, false},
	} {
		analytic, err := PSuccessIID(tc.n, tc.q)
		if tc.allPairs {
			analytic, err = AllPairsIID(tc.n, tc.q)
		}
		if err != nil {
			t.Fatal(err)
		}
		est, ci, err := EstimateIID(tc.n, tc.q, tc.allPairs, 200000, 3)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-analytic) > 4*ci+1e-9 {
			t.Errorf("n=%d q=%v allPairs=%v: MC %v vs analytic %v (ci %v)",
				tc.n, tc.q, tc.allPairs, est, analytic, ci)
		}
	}
}

func TestEstimateIIDDeterministic(t *testing.T) {
	a, _, err := EstimateIID(8, 0.1, false, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := EstimateIID(8, 0.1, false, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestEstimateIIDValidation(t *testing.T) {
	if _, _, err := EstimateIID(1, 0.1, false, 100, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, _, err := EstimateIID(4, 2, false, 100, 1); err == nil {
		t.Error("q=2 accepted")
	}
	if _, _, err := EstimateIID(4, 0.1, false, 0, 1); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestIIDConsistentWithFixedFModel(t *testing.T) {
	// The mixture must agree with Σ_f Binom(M,f,q)·P(n,f).
	n, q := 8, 0.07
	m := 2*n + 2
	want := 0.0
	for f := 0; f <= m; f++ {
		pmf := binomPMF(m, f, q)
		want += pmf * survival.PSuccessFloat(n, f)
	}
	got, err := PSuccessIID(n, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("mixture %v vs pmf-weighted %v", got, want)
	}
}

func binomPMF(n, k int, p float64) float64 {
	c, _ := survival.Binomial(n, k).Float64()
	_ = c
	// survival.Binomial returns *big.Int; use floats carefully.
	bf := 1.0
	for i := 0; i < k; i++ {
		bf = bf * float64(n-i) / float64(i+1)
	}
	return bf * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}

func TestEffective(t *testing.T) {
	p := Params{
		Nodes:        10,
		MTBF:         1000 * time.Hour,
		MTTR:         2 * time.Hour,
		RepairWindow: 2 * time.Second,
	}
	res, err := Effective(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Q <= 0 || res.Q >= 1 {
		t.Fatalf("q = %v", res.Q)
	}
	if res.Structural <= 0.99 || res.Structural >= 1 {
		t.Fatalf("structural = %v", res.Structural)
	}
	if res.DetectionPenalty <= 0 {
		t.Fatal("no detection penalty")
	}
	if !(res.Effective < res.Structural) {
		t.Fatal("effective not below structural")
	}
	// Faster probing (smaller repair window) must improve things.
	p2 := p
	p2.RepairWindow = 200 * time.Millisecond
	res2, err := Effective(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !(res2.Effective > res.Effective) {
		t.Fatalf("faster repair did not help: %v vs %v", res2.Effective, res.Effective)
	}
}

func TestEffectiveValidation(t *testing.T) {
	good := Params{Nodes: 8, MTBF: time.Hour, MTTR: time.Minute, RepairWindow: time.Second}
	for name, mutate := range map[string]func(*Params){
		"nodes":       func(p *Params) { p.Nodes = 1 },
		"mtbf":        func(p *Params) { p.MTBF = 0 },
		"neg mttr":    func(p *Params) { p.MTTR = -time.Second },
		"huge window": func(p *Params) { p.RepairWindow = p.MTBF },
	} {
		p := good
		mutate(&p)
		if _, err := Effective(p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNines(t *testing.T) {
	for _, tc := range []struct {
		a    float64
		want int
	}{
		{0.5, 0}, {0.9, 1}, {0.95, 1}, {0.99, 2}, {0.999, 3},
		{0.9999, 4}, {1.0, 9}, {0, 0},
	} {
		if got := Nines(tc.a); got != tc.want {
			t.Errorf("Nines(%v) = %d, want %d", tc.a, got, tc.want)
		}
	}
}

func TestDowntimePerYear(t *testing.T) {
	d := DowntimePerYear(0.001)
	want := time.Duration(0.001 * 365 * 24 * float64(time.Hour))
	if d != want {
		t.Fatalf("downtime = %v, want %v", d, want)
	}
	if DowntimePerYear(-1) != 0 {
		t.Fatal("negative unavailability not clamped")
	}
	if DowntimePerYear(2) != 365*24*time.Hour {
		t.Fatal("unavailability > 1 not clamped")
	}
}
