package availability

import (
	"fmt"
	"time"

	"drsnet/internal/montecarlo"
	"drsnet/internal/topology"
)

// FabricParams describes an effective-availability estimate over a
// general switched fabric, where the dual-rail closed form does not
// apply and the structural term is estimated by Monte Carlo instead.
type FabricParams struct {
	// Fabric is the system under test.
	Fabric *topology.Fabric
	// MTBF and MTTR characterize each component's failure/repair
	// process.
	MTBF, MTTR time.Duration
	// RepairWindow is the DRS's failure-to-reroute latency.
	RepairWindow time.Duration
	// Iterations is the Monte Carlo sample count for the structural
	// term (default 100000).
	Iterations int64
	// Seed selects the random stream.
	Seed uint64
	// Workers bounds estimator concurrency; 0 means GOMAXPROCS.
	Workers int
	// PairA, PairB designate the monitored pair. Both zero selects the
	// fabric's far corner: hosts 0 and Hosts()-1.
	PairA, PairB int
}

// FabricResult is a fabric effective-availability estimate.
type FabricResult struct {
	// Q is the steady-state per-component unavailability.
	Q float64
	// Structural is the Monte Carlo estimate of pair availability with
	// instantaneous rerouting, and CI95 its 95% half-width.
	Structural float64
	CI95       float64
	// PathComponents is the number of components on a minimum-hop
	// active path between the pair (both NICs, every switch and trunk
	// crossed, and the NICs of any relay hosts).
	PathComponents int
	// DetectionPenalty is the first-order availability loss from the
	// repair window: each active-path component failure blinds the
	// flow for RepairWindow.
	DetectionPenalty float64
	// Effective is Structural − DetectionPenalty, floored at 0.
	Effective float64
}

// EffectiveFabric computes the first-order effective pair availability
// of a DRS deployment on a switched fabric. The structural term is the
// Q-model Monte Carlo estimate (each component independently down with
// the steady-state probability); the detection penalty generalizes the
// dual-rail active-path count of 3 (NIC, back plane, NIC) to the
// component length of a shortest path through the fabric.
func EffectiveFabric(p FabricParams) (FabricResult, error) {
	if p.Fabric == nil {
		return FabricResult{}, fmt.Errorf("availability: Fabric not set")
	}
	if p.MTBF <= 0 || p.MTTR < 0 || p.RepairWindow < 0 {
		return FabricResult{}, fmt.Errorf("availability: MTBF must be positive; MTTR and repair window non-negative")
	}
	if p.RepairWindow > p.MTBF/10 {
		return FabricResult{}, fmt.Errorf("availability: repair window %v too close to MTBF %v for the first-order model",
			p.RepairWindow, p.MTBF)
	}
	if p.PairA == 0 && p.PairB == 0 {
		p.PairB = p.Fabric.Hosts() - 1
	}
	if p.Iterations == 0 {
		p.Iterations = 100000
	}
	q, err := SteadyStateQ(p.MTBF, p.MTTR)
	if err != nil {
		return FabricResult{}, err
	}
	est, err := montecarlo.EstimateFabric(montecarlo.FabricConfig{
		Fabric:     p.Fabric,
		Q:          q,
		Iterations: p.Iterations,
		Seed:       p.Seed,
		Workers:    p.Workers,
		PairA:      p.PairA,
		PairB:      p.PairB,
	})
	if err != nil {
		return FabricResult{}, err
	}
	path, err := pathComponents(p.Fabric, p.PairA, p.PairB)
	if err != nil {
		return FabricResult{}, err
	}
	penalty := float64(path) * p.RepairWindow.Seconds() / p.MTBF.Seconds()
	eff := est.P - penalty
	if eff < 0 {
		eff = 0
	}
	return FabricResult{
		Q:                q,
		Structural:       est.P,
		CI95:             est.CI95,
		PathComponents:   path,
		DetectionPenalty: penalty,
		Effective:        eff,
	}, nil
}

// pathComponents returns the number of gating components on a
// minimum-component path from host a to host b, allowing host relay
// (BCube-style): each NIC or trunk edge costs 1, and entering a switch
// vertex costs 1 more for the switch itself. A dual-rail fabric yields
// the classic 3 (NIC, back plane, NIC).
func pathComponents(f *topology.Fabric, a, b int) (int, error) {
	hosts, ports, switches := f.Hosts(), f.Ports(), f.Switches()
	if a < 0 || a >= hosts || b < 0 || b >= hosts || a == b {
		return 0, fmt.Errorf("availability: bad pair (%d,%d) for %d hosts", a, b, hosts)
	}
	// Vertices: hosts then switches. Edge weights are 1; switch
	// vertices carry an extra entry cost of 1, so run Dijkstra over
	// weights {1, 2} with a two-bucket queue.
	verts := hosts + switches
	const inf = int32(1) << 30
	dist := make([]int32, verts)
	for i := range dist {
		dist[i] = inf
	}
	// attached[s] lists hosts on switch s (built once; CLI scale).
	attached := make([][]int32, switches)
	for h := 0; h < hosts; h++ {
		for pt := 0; pt < ports; pt++ {
			s := f.HostSwitch(h, pt)
			attached[s] = append(attached[s], int32(h))
		}
	}
	// Two-bucket deque for 1/2 weights: plain slices keyed by distance.
	buckets := map[int32][]int32{0: {int32(a)}}
	dist[a] = 0
	for d := int32(0); d < inf; d++ {
		frontier := buckets[d]
		if frontier == nil {
			if len(buckets) == 0 {
				break
			}
			continue
		}
		delete(buckets, d)
		for _, v := range frontier {
			if dist[v] != d {
				continue // stale entry
			}
			if int(v) == b {
				return int(d), nil
			}
			relax := func(u, nd int32) {
				if nd < dist[u] {
					dist[u] = nd
					buckets[nd] = append(buckets[nd], u)
				}
			}
			if int(v) < hosts {
				// Host → its switches: NIC edge (1) + switch (1).
				for pt := 0; pt < ports; pt++ {
					relax(int32(hosts+f.HostSwitch(int(v), pt)), d+2)
				}
			} else {
				s := int(v) - hosts
				// Switch → attached hosts: NIC edge (1).
				for _, h := range attached[s] {
					relax(h, d+1)
				}
				// Switch → peer switches: trunk (1) + switch (1).
				f.SwitchNeighbors(s, func(nb, _ int) {
					relax(int32(hosts+nb), d+2)
				})
			}
		}
	}
	return 0, fmt.Errorf("availability: hosts %d and %d are not connected in the healthy fabric", a, b)
}
