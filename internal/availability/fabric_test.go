package availability

import (
	"math"
	"testing"
	"time"

	"drsnet/internal/topology"
)

func TestPathComponents(t *testing.T) {
	dual, err := topology.FromCluster(topology.Dual(8))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := pathComponents(dual, 0, 5); err != nil || n != 3 {
		t.Fatalf("dual-rail path = %d, %v; want 3 (NIC, back plane, NIC)", n, err)
	}

	ft, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// Same ToR: NIC, edge switch, NIC.
	if n, err := pathComponents(ft, 0, 1); err != nil || n != 3 {
		t.Fatalf("same-ToR path = %d, %v; want 3", n, err)
	}
	// Cross-pod: 2 NICs, 5 switches (edge-agg-core-agg-edge), 4 trunks.
	if n, err := pathComponents(ft, 0, 15); err != nil || n != 11 {
		t.Fatalf("cross-pod path = %d, %v; want 11", n, err)
	}

	// BCube(2,1): hosts 0 and 3 share no switch; the minimum path
	// relays through a host (e.g. 0 →sw→ 1 →sw→ 3): 4 NIC edges and
	// 2 switches.
	bc, err := topology.BCube(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := pathComponents(bc, 0, 3); err != nil || n != 6 {
		t.Fatalf("BCube relay path = %d, %v; want 6", n, err)
	}

	if _, err := pathComponents(ft, 0, 0); err == nil {
		t.Fatal("equal pair accepted")
	}
}

func TestEffectiveFabricMatchesDualRailModel(t *testing.T) {
	const n = 10
	mtbf, mttr := 1000*time.Hour, 4*time.Hour
	window := 2500 * time.Millisecond

	exact, err := Effective(Params{Nodes: n, MTBF: mtbf, MTTR: mttr, RepairWindow: window})
	if err != nil {
		t.Fatal(err)
	}

	fab, err := topology.FromCluster(topology.Dual(n))
	if err != nil {
		t.Fatal(err)
	}
	got, err := EffectiveFabric(FabricParams{
		Fabric: fab, MTBF: mtbf, MTTR: mttr, RepairWindow: window,
		Iterations: 200000, Seed: 5, PairA: 0, PairB: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Q != exact.Q {
		t.Fatalf("q = %v, want %v", got.Q, exact.Q)
	}
	if got.PathComponents != 3 {
		t.Fatalf("path components = %d, want 3", got.PathComponents)
	}
	if math.Abs(got.DetectionPenalty-exact.DetectionPenalty) > 1e-12 {
		t.Fatalf("penalty = %v, want %v", got.DetectionPenalty, exact.DetectionPenalty)
	}
	if d := math.Abs(got.Structural - exact.Structural); d > 3*got.CI95+1e-9 {
		t.Fatalf("structural %.6f vs exact %.6f (CI95 %.6f)", got.Structural, exact.Structural, got.CI95)
	}
}

func TestEffectiveFabricErrors(t *testing.T) {
	fab, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]FabricParams{
		"nil fabric": {MTBF: time.Hour},
		"bad mtbf":   {Fabric: fab},
		"wide window": {
			Fabric: fab, MTBF: time.Hour, RepairWindow: time.Hour,
		},
		"bad pair": {
			Fabric: fab, MTBF: 1000 * time.Hour, PairA: 3, PairB: 3, Iterations: 10,
		},
	}
	for name, p := range cases {
		if _, err := EffectiveFabric(p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
