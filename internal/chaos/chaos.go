// Package chaos scripts gray failures against the packet simulator:
// timed impairment episodes (loss, corruption, delay, jitter),
// unidirectional component kills, and periodic link flapping with a
// configurable period and duty cycle.
//
// Fail-stop faults (runtime.Fault) model the paper's experiments —
// a component dies cleanly and every frame through it vanishes. The
// failures that hurt deployed systems are rarely that polite: a NIC
// whose transmit side dies while receive keeps working, a backplane
// that delivers 95% of frames, a link that flaps faster than the
// routing protocol can converge. This package schedules exactly those
// against a netsim.Network, deterministically: episodes fire at fixed
// simulated times, and the per-frame randomness (which frame is lost
// or corrupted) comes from the network's own seeded impairment stream,
// so a chaos campaign is bit-identical across runs and worker counts.
package chaos

import (
	"fmt"
	"time"

	"drsnet/internal/netsim"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

// Spec is one scripted gray-failure episode on one component. Exactly
// one of the three modes must be active:
//
//   - Impair non-zero: the component degrades (loss, corruption,
//     delay, jitter) between Start and Stop but stays "up".
//   - Kill: the component goes down between Start and Stop —
//     optionally only one direction (Direction), which is the
//     classic gray NIC that transmits but no longer receives.
//   - FlapPeriod > 0: the component cycles down/up with the given
//     period; each period it is down for FlapPeriod×FlapDuty and up
//     for the remainder, starting down at Start.
type Spec struct {
	// Comp is the NIC or backplane being tormented (topology numbering
	// for the run's cluster shape).
	Comp topology.Component
	// Start is when the episode begins.
	Start time.Duration
	// Stop is when the episode ends and the component is restored
	// (and any impairment cleared). Zero means the episode lasts to
	// the simulation horizon.
	Stop time.Duration
	// Impair is the degradation applied while the episode is active.
	Impair netsim.Impairment
	// Kill takes the component down for the whole episode.
	Kill bool
	// Direction selects which half of the component Kill and flapping
	// affect (DirBoth, DirTx, DirRx). Ignored for pure impairments.
	Direction netsim.Direction
	// FlapPeriod, when positive, makes the episode a flap cycle.
	FlapPeriod time.Duration
	// FlapDuty is the fraction of each period spent down, in (0,1).
	// Zero defaults to 0.5.
	FlapDuty float64
}

// mode classifies the spec; used by Validate and Schedule.
func (s *Spec) flapping() bool { return s.FlapPeriod != 0 }

// downFor returns how long the component stays down each flap period.
func (s *Spec) downFor() time.Duration {
	duty := s.FlapDuty
	if duty == 0 {
		duty = 0.5
	}
	return time.Duration(float64(s.FlapPeriod) * duty)
}

// Validate checks the spec against a cluster shape. The index i is
// used in error messages so callers can report which entry of a
// schedule is broken.
func (s *Spec) Validate(cl topology.Cluster, i int) error {
	if int(s.Comp) < 0 || int(s.Comp) >= cl.Components() {
		return fmt.Errorf("chaos: spec[%d]: component %d outside universe of %d (cluster %d×%d)",
			i, int(s.Comp), cl.Components(), cl.Nodes, cl.Rails)
	}
	return s.validateBody(cl.Name(s.Comp), i)
}

// ValidateFabric checks the spec against a switched fabric, where the
// component universe also contains switches and trunks.
func (s *Spec) ValidateFabric(f *topology.Fabric, i int) error {
	if int(s.Comp) < 0 || int(s.Comp) >= f.Components() {
		return fmt.Errorf("chaos: spec[%d]: component %d outside universe of %d (%s fabric, %d hosts)",
			i, int(s.Comp), f.Components(), f.Kind, f.Hosts())
	}
	return s.validateBody(f.Name(s.Comp), i)
}

// validateBody checks everything past the component-range check; name
// is the component's human-readable name for error messages.
func (s *Spec) validateBody(name string, i int) error {
	if s.Start < 0 {
		return fmt.Errorf("chaos: spec[%d] (%s): start %v before time zero", i, name, s.Start)
	}
	if s.Stop < 0 {
		return fmt.Errorf("chaos: spec[%d] (%s): negative stop %v", i, name, s.Stop)
	}
	if s.Stop != 0 && s.Stop <= s.Start {
		return fmt.Errorf("chaos: spec[%d] (%s): stop %v not after start %v", i, name, s.Stop, s.Start)
	}
	if s.Direction < netsim.DirBoth || s.Direction > netsim.DirRx {
		return fmt.Errorf("chaos: spec[%d] (%s): unknown direction %d", i, name, s.Direction)
	}
	if err := s.Impair.Validate(); err != nil {
		return fmt.Errorf("chaos: spec[%d] (%s): %v", i, name, err)
	}
	if s.FlapPeriod < 0 {
		return fmt.Errorf("chaos: spec[%d] (%s): flap period must be positive, got %v", i, name, s.FlapPeriod)
	}
	if s.FlapDuty < 0 || s.FlapDuty >= 1 {
		return fmt.Errorf("chaos: spec[%d] (%s): flap duty %v outside (0,1)", i, name, s.FlapDuty)
	}
	if s.FlapDuty != 0 && s.FlapPeriod == 0 {
		return fmt.Errorf("chaos: spec[%d] (%s): flap duty set without a flap period", i, name)
	}
	if s.flapping() && s.Kill {
		return fmt.Errorf("chaos: spec[%d] (%s): kill and flap are mutually exclusive (flapping already cycles the component down)", i, name)
	}
	if !s.Kill && !s.flapping() && s.Impair.IsZero() {
		return fmt.Errorf("chaos: spec[%d] (%s): episode does nothing (no impairment, kill or flap)", i, name)
	}
	if s.flapping() && s.downFor() <= 0 {
		return fmt.Errorf("chaos: spec[%d] (%s): flap period %v with duty %v rounds to zero down-time",
			i, name, s.FlapPeriod, s.FlapDuty)
	}
	return nil
}

// Validate checks a whole schedule against a cluster shape.
func Validate(specs []Spec, cl topology.Cluster) error {
	for i := range specs {
		if err := specs[i].Validate(cl, i); err != nil {
			return err
		}
	}
	return nil
}

// ValidateFabric checks a whole schedule against a switched fabric.
func ValidateFabric(specs []Spec, f *topology.Fabric) error {
	for i := range specs {
		if err := specs[i].ValidateFabric(f, i); err != nil {
			return err
		}
	}
	return nil
}

// Injector schedules a gray-failure script onto a simulated network.
// All events are installed up front at fixed simulated times (flap
// cycles reschedule themselves), so the injector adds no per-frame
// work and no nondeterminism.
type Injector struct {
	sched *simtime.Scheduler
	net   netsim.Net
	specs []Spec
}

// NewInjector validates the schedule against the network's component
// universe and returns an injector ready to Schedule. A dual-rail
// Network validates against its cluster shape (preserving the classic
// error messages); any other Net validates against its fabric.
func NewInjector(net netsim.Net, specs []Spec) (*Injector, error) {
	if nw, ok := net.(*netsim.Network); ok {
		if err := Validate(specs, nw.Cluster()); err != nil {
			return nil, err
		}
	} else if err := ValidateFabric(specs, net.Fabric()); err != nil {
		return nil, err
	}
	return &Injector{sched: net.Scheduler(), net: net, specs: specs}, nil
}

// Schedule installs every episode, in spec order. Call once, before
// advancing the simulation past the earliest Start.
func (inj *Injector) Schedule() {
	for i := range inj.specs {
		inj.scheduleOne(&inj.specs[i])
	}
}

func (inj *Injector) scheduleOne(s *Spec) {
	at := func(t time.Duration, fn func()) { inj.sched.At(simtime.Time(t), fn) }

	if !s.Impair.IsZero() {
		imp := s.Impair
		comp := s.Comp
		at(s.Start, func() { _ = inj.net.SetImpairment(comp, imp) })
		if s.Stop > 0 {
			at(s.Stop, func() { inj.net.ClearImpairment(comp) })
		}
	}
	if s.Kill {
		comp, dir := s.Comp, s.Direction
		at(s.Start, func() { inj.net.FailDir(comp, dir) })
		if s.Stop > 0 {
			at(s.Stop, func() { inj.net.RestoreDir(comp, dir) })
		}
	}
	if s.flapping() {
		inj.scheduleFlap(s)
	}
}

// scheduleFlap installs one self-rescheduling flap cycle: down at each
// period start, up after the duty fraction, restored for good at Stop.
// A cycle whose down-edge would land at or past Stop never fires, so
// the component always ends the episode up.
func (inj *Injector) scheduleFlap(s *Spec) {
	comp, dir := s.Comp, s.Direction
	period, down := s.FlapPeriod, s.downFor()
	stop := s.Stop

	var cycle func()
	cycle = func() {
		now := inj.sched.Now().Duration()
		if stop > 0 && now >= stop {
			return
		}
		inj.net.FailDir(comp, dir)
		up := now + down
		if stop > 0 && up > stop {
			up = stop
		}
		inj.sched.At(simtime.Time(up), func() { inj.net.RestoreDir(comp, dir) })
		inj.sched.At(simtime.Time(now+period), cycle)
	}
	inj.sched.At(simtime.Time(s.Start), cycle)
}
