package chaos

import (
	"strings"
	"testing"
	"time"

	"drsnet/internal/netsim"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

func newNet(t *testing.T) (*simtime.Scheduler, *netsim.Network) {
	t.Helper()
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(3), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return sched, net
}

func runTo(sched *simtime.Scheduler, d time.Duration) {
	sched.RunUntil(simtime.Time(d))
}

func TestKillEpisode(t *testing.T) {
	sched, net := newNet(t)
	nic := net.Cluster().NIC(1, 0)
	inj, err := NewInjector(net, []Spec{{Comp: nic, Start: time.Second, Stop: 3 * time.Second, Kill: true}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Schedule()

	runTo(sched, 500*time.Millisecond)
	if !net.ComponentUp(nic) {
		t.Fatal("component down before the episode starts")
	}
	runTo(sched, 1500*time.Millisecond)
	if net.ComponentUp(nic) {
		t.Fatal("component up mid-episode")
	}
	runTo(sched, 3500*time.Millisecond)
	if !net.ComponentUp(nic) {
		t.Fatal("component not restored after the episode")
	}
}

func TestUnidirectionalKill(t *testing.T) {
	sched, net := newNet(t)
	nic := net.Cluster().NIC(0, 1)
	inj, err := NewInjector(net, []Spec{{Comp: nic, Start: time.Second, Kill: true, Direction: netsim.DirTx}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Schedule()
	runTo(sched, 2*time.Second)
	if net.DirUp(nic, netsim.DirTx) {
		t.Fatal("tx half still up")
	}
	if !net.DirUp(nic, netsim.DirRx) {
		t.Fatal("rx half went down too — kill was not unidirectional")
	}
	// Stop == 0: the episode lasts forever.
	runTo(sched, time.Hour)
	if net.DirUp(nic, netsim.DirTx) {
		t.Fatal("open-ended kill was restored")
	}
}

func TestImpairEpisode(t *testing.T) {
	sched, net := newNet(t)
	bp := net.Cluster().Backplane(0)
	imp := netsim.Impairment{Loss: 0.3, Delay: time.Millisecond}
	inj, err := NewInjector(net, []Spec{{Comp: bp, Start: time.Second, Stop: 2 * time.Second, Impair: imp}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Schedule()

	runTo(sched, 1500*time.Millisecond)
	got, ok := net.ImpairmentOn(bp)
	if !ok || got != imp {
		t.Fatalf("mid-episode impairment = %+v, %v; want %+v", got, ok, imp)
	}
	if !net.ComponentUp(bp) {
		t.Fatal("impairment should degrade, not kill")
	}
	runTo(sched, 2500*time.Millisecond)
	if _, ok := net.ImpairmentOn(bp); ok {
		t.Fatal("impairment not cleared at stop")
	}
}

func TestFlapCycle(t *testing.T) {
	sched, net := newNet(t)
	nic := net.Cluster().NIC(2, 0)
	inj, err := NewInjector(net, []Spec{{
		Comp: nic, Start: time.Second, Stop: 3500 * time.Millisecond,
		FlapPeriod: time.Second, FlapDuty: 0.25,
	}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Schedule()

	// Period 1 s, duty 0.25: down during [1,1.25), [2,2.25), [3,3.25);
	// up otherwise; no cycle starts at or after stop = 3.5 s.
	checks := []struct {
		at time.Duration
		up bool
	}{
		{900 * time.Millisecond, true},
		{1100 * time.Millisecond, false},
		{1600 * time.Millisecond, true},
		{2100 * time.Millisecond, false},
		{2600 * time.Millisecond, true},
		{3100 * time.Millisecond, false},
		{3300 * time.Millisecond, true},
		{4100 * time.Millisecond, true}, // stopped: no fourth down edge
		{10 * time.Second, true},
	}
	for _, c := range checks {
		runTo(sched, c.at)
		if got := net.ComponentUp(nic); got != c.up {
			t.Fatalf("at %v: up = %v, want %v", c.at, got, c.up)
		}
	}
}

func TestFlapDownEdgeClampedAtStop(t *testing.T) {
	sched, net := newNet(t)
	nic := net.Cluster().NIC(0, 0)
	// Down phase [1, 1.8) would outlive stop = 1.5: the restore must be
	// clamped so the component ends the episode up.
	inj, err := NewInjector(net, []Spec{{
		Comp: nic, Start: time.Second, Stop: 1500 * time.Millisecond,
		FlapPeriod: time.Second, FlapDuty: 0.8,
	}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Schedule()
	runTo(sched, 1400*time.Millisecond)
	if net.ComponentUp(nic) {
		t.Fatal("component up during the down phase")
	}
	runTo(sched, 1600*time.Millisecond)
	if !net.ComponentUp(nic) {
		t.Fatal("restore not clamped to the episode stop")
	}
}

func TestDefaultDutyIsHalf(t *testing.T) {
	s := Spec{FlapPeriod: time.Second}
	if got := s.downFor(); got != 500*time.Millisecond {
		t.Fatalf("default downFor = %v, want 500ms", got)
	}
}

func TestValidate(t *testing.T) {
	cl := topology.Dual(3)
	nic := cl.NIC(1, 0)
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error; "" means valid
	}{
		{"kill ok", Spec{Comp: nic, Kill: true}, ""},
		{"impair ok", Spec{Comp: nic, Impair: netsim.Impairment{Loss: 0.1}}, ""},
		{"flap ok", Spec{Comp: nic, FlapPeriod: time.Second, FlapDuty: 0.3}, ""},
		{"bad component", Spec{Comp: topology.Component(99), Kill: true}, "component 99 outside universe"},
		{"negative component", Spec{Comp: topology.Component(-1), Kill: true}, "outside universe"},
		{"negative start", Spec{Comp: nic, Kill: true, Start: -time.Second}, "before time zero"},
		{"stop before start", Spec{Comp: nic, Kill: true, Start: 2 * time.Second, Stop: time.Second}, "not after start"},
		{"loss out of range", Spec{Comp: nic, Impair: netsim.Impairment{Loss: 1.5}}, "loss"},
		{"negative delay", Spec{Comp: nic, Impair: netsim.Impairment{Delay: -time.Second}}, "delay"},
		{"bad direction", Spec{Comp: nic, Kill: true, Direction: netsim.Direction(7)}, "unknown direction"},
		{"negative period", Spec{Comp: nic, FlapPeriod: -time.Second}, "flap period"},
		{"duty too high", Spec{Comp: nic, FlapPeriod: time.Second, FlapDuty: 1.0}, "flap duty"},
		{"duty without period", Spec{Comp: nic, Kill: true, FlapDuty: 0.5}, "without a flap period"},
		{"kill and flap", Spec{Comp: nic, Kill: true, FlapPeriod: time.Second}, "mutually exclusive"},
		{"does nothing", Spec{Comp: nic}, "does nothing"},
	}
	for _, c := range cases {
		err := c.spec.Validate(cl, 0)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.want)
		}
	}
	// The schedule-level helper reports the failing index.
	err := Validate([]Spec{{Comp: nic, Kill: true}, {Comp: nic}}, cl)
	if err == nil || !strings.Contains(err.Error(), "spec[1]") {
		t.Errorf("Validate = %v, want spec[1] error", err)
	}
}
