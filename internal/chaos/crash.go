package chaos

import (
	"fmt"
	"sort"
	"time"

	"drsnet/internal/simtime"
)

// CrashSpec is one scripted daemon fail-stop episode: the node's
// routing process dies at At — NICs stay electrically up, every frame
// the node sends or would receive blackholes — and, when RestartAt is
// nonzero, is restarted there, cold or warm. Warm restarts reuse a
// checkpoint taken at the instant of the crash (route table,
// membership view, RTT estimates); cold restarts re-learn everything.
type CrashSpec struct {
	// Node is the daemon that crashes.
	Node int
	// At is when the process fail-stops.
	At time.Duration
	// RestartAt, when nonzero, is when the next incarnation boots.
	// It must be strictly after At. Zero means the node never returns.
	RestartAt time.Duration
	// Warm requests a checkpoint at crash time and a restore at
	// restart (requires RestartAt).
	Warm bool
}

// Lifecycle is what a crash schedule drives. The cluster runtime
// implements it: Crash stops and fail-stops the daemon (taking a
// checkpoint when warm), Restart builds and starts the node's next
// incarnation.
type Lifecycle interface {
	Crash(node int, warm bool)
	Restart(node int)
}

// Validate checks one crash episode against a cluster of nodes. The
// index i names the entry in error messages.
func (s *CrashSpec) Validate(nodes, i int) error {
	if s.Node < 0 || s.Node >= nodes {
		return fmt.Errorf("chaos: crash[%d]: unknown node %d (cluster of %d)", i, s.Node, nodes)
	}
	if s.At < 0 {
		return fmt.Errorf("chaos: crash[%d] (node %d): crash at %v before time zero", i, s.Node, s.At)
	}
	if s.RestartAt != 0 && s.RestartAt <= s.At {
		return fmt.Errorf("chaos: crash[%d] (node %d): restart at %v not after crash at %v",
			i, s.Node, s.RestartAt, s.At)
	}
	if s.Warm && s.RestartAt == 0 {
		return fmt.Errorf("chaos: crash[%d] (node %d): warm restart requested but the node never restarts",
			i, s.Node)
	}
	return nil
}

// ValidateCrashes checks a whole crash schedule: each episode on its
// own, then per-node overlap — a node cannot crash again before its
// previous episode restarted it (a crash scheduled at the exact
// restart instant is allowed; episodes run in spec order).
func ValidateCrashes(specs []CrashSpec, nodes int) error {
	for i := range specs {
		if err := specs[i].Validate(nodes, i); err != nil {
			return err
		}
	}
	perNode := make(map[int][]int)
	for i := range specs {
		perNode[specs[i].Node] = append(perNode[specs[i].Node], i)
	}
	for node, idx := range perNode {
		sort.Slice(idx, func(a, b int) bool { return specs[idx[a]].At < specs[idx[b]].At })
		for k := 0; k+1 < len(idx); k++ {
			prev, next := &specs[idx[k]], &specs[idx[k+1]]
			if prev.RestartAt == 0 {
				return fmt.Errorf("chaos: crash[%d] (node %d): node crashes at %v but a previous episode never restarts it",
					idx[k+1], node, next.At)
			}
			if next.At < prev.RestartAt {
				return fmt.Errorf("chaos: crash[%d] (node %d): crash at %v overlaps the episode restarting at %v",
					idx[k+1], node, next.At, prev.RestartAt)
			}
		}
	}
	return nil
}

// ScheduleCrashes installs a validated crash schedule, in spec order,
// on the scheduler. Call once, before advancing the simulation past
// the earliest episode.
func ScheduleCrashes(sched *simtime.Scheduler, specs []CrashSpec, lc Lifecycle) {
	for i := range specs {
		s := specs[i]
		sched.At(simtime.Time(s.At), func() { lc.Crash(s.Node, s.Warm) })
		if s.RestartAt > 0 {
			sched.At(simtime.Time(s.RestartAt), func() { lc.Restart(s.Node) })
		}
	}
}
