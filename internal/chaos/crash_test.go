package chaos

import (
	"strings"
	"testing"
	"time"

	"drsnet/internal/simtime"
)

func TestValidateCrashes(t *testing.T) {
	sec := func(s int) time.Duration { return time.Duration(s) * time.Second }
	cases := []struct {
		name    string
		specs   []CrashSpec
		wantErr string // substring; empty = valid
	}{
		{"empty schedule", nil, ""},
		{"one-way crash", []CrashSpec{{Node: 1, At: sec(5)}}, ""},
		{"warm restart", []CrashSpec{{Node: 1, At: sec(5), RestartAt: sec(9), Warm: true}}, ""},
		{"sequential episodes", []CrashSpec{
			{Node: 1, At: sec(5), RestartAt: sec(9)},
			{Node: 1, At: sec(20), RestartAt: sec(25), Warm: true},
		}, ""},
		{"crash at exact restart instant", []CrashSpec{
			{Node: 1, At: sec(5), RestartAt: sec(9)},
			{Node: 1, At: sec(9), RestartAt: sec(12)},
		}, ""},
		{"different nodes overlap freely", []CrashSpec{
			{Node: 1, At: sec(5), RestartAt: sec(30)},
			{Node: 2, At: sec(10), RestartAt: sec(15)},
		}, ""},
		{"unknown node", []CrashSpec{{Node: 9, At: sec(5)}}, "unknown node 9"},
		{"negative node", []CrashSpec{{Node: -1, At: sec(5)}}, "unknown node -1"},
		{"negative time", []CrashSpec{{Node: 1, At: -sec(1)}}, "before time zero"},
		{"restart before crash", []CrashSpec{
			{Node: 1, At: sec(5), RestartAt: sec(3)},
		}, "not after crash"},
		{"restart equals crash", []CrashSpec{
			{Node: 1, At: sec(5), RestartAt: sec(5)},
		}, "not after crash"},
		{"warm without restart", []CrashSpec{
			{Node: 1, At: sec(5), Warm: true},
		}, "never restarts"},
		{"second crash while dead", []CrashSpec{
			{Node: 1, At: sec(5), RestartAt: sec(20)},
			{Node: 1, At: sec(10), RestartAt: sec(15)},
		}, "overlaps"},
		{"crash after a final death", []CrashSpec{
			{Node: 1, At: sec(5)},
			{Node: 1, At: sec(10), RestartAt: sec(15)},
		}, "never restarts it"},
		{"overlap detected out of spec order", []CrashSpec{
			{Node: 1, At: sec(10), RestartAt: sec(15)},
			{Node: 1, At: sec(5), RestartAt: sec(12)},
		}, "overlaps"},
	}
	for _, tc := range cases {
		err := ValidateCrashes(tc.specs, 4)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// lifecycleRecorder captures the Crash/Restart calls a schedule makes.
type lifecycleRecorder struct {
	sched *simtime.Scheduler
	calls []string
}

func (r *lifecycleRecorder) Crash(node int, warm bool) {
	kind := "cold"
	if warm {
		kind = "warm"
	}
	r.calls = append(r.calls, call("crash", kind, node, r.sched))
}

func (r *lifecycleRecorder) Restart(node int) {
	r.calls = append(r.calls, call("restart", "", node, r.sched))
}

func call(what, kind string, node int, sched *simtime.Scheduler) string {
	s := what
	if kind != "" {
		s += "-" + kind
	}
	return s + "@" + sched.Now().Duration().String() + "#" + string(rune('0'+node))
}

// TestScheduleCrashes: each episode fires its crash (with the right
// warmth) and its restart at the scripted instants, in order.
func TestScheduleCrashes(t *testing.T) {
	sched := simtime.NewScheduler()
	rec := &lifecycleRecorder{sched: sched}
	specs := []CrashSpec{
		{Node: 1, At: 2 * time.Second, RestartAt: 5 * time.Second, Warm: true},
		{Node: 2, At: 3 * time.Second}, // never returns
	}
	if err := ValidateCrashes(specs, 4); err != nil {
		t.Fatal(err)
	}
	ScheduleCrashes(sched, specs, rec)
	sched.RunUntil(simtime.Time(10 * time.Second))
	want := []string{
		"crash-warm@2s#1",
		"crash-cold@3s#2",
		"restart@5s#1",
	}
	if len(rec.calls) != len(want) {
		t.Fatalf("calls = %v, want %v", rec.calls, want)
	}
	for i := range want {
		if rec.calls[i] != want[i] {
			t.Fatalf("call %d = %q, want %q", i, rec.calls[i], want[i])
		}
	}
}
