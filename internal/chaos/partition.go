package chaos

import (
	"fmt"
	"time"

	"drsnet/internal/netsim"
	"drsnet/internal/simtime"
)

// PartitionSpec is one timed network-partition episode between a pair
// of nodes: from Start to Stop the directed paths selected by
// Direction are severed on Rail (netsim.AllRails = every rail), then
// healed. Partitions are the fault the fail-stop model cannot
// express at all — both endpoints are alive and their hardware is
// healthy, yet frames between them vanish, possibly in one direction
// only:
//
//   - DirBoth severs A↔B symmetrically — the classic split.
//   - DirTx severs A→B only: B goes deaf to A while A still hears B.
//   - DirRx severs B→A only: the mirror-image asymmetric cut.
type PartitionSpec struct {
	// A and B are the partitioned pair.
	A, B int
	// Rail selects one segment, or netsim.AllRails for all of them.
	Rail int
	// Start is when the cut lands; Stop, when nonzero, is when it
	// heals. Zero means the partition lasts to the horizon.
	Start, Stop time.Duration
	// Direction selects which directed paths are cut (see above).
	Direction netsim.Direction
}

// PartitionNet is the network surface partitions act on; the
// dual-rail netsim.Network implements it.
type PartitionNet interface {
	Partition(src, dst, rail int)
	Heal(src, dst, rail int)
}

// Validate checks one partition episode against a nodes×rails
// cluster. The index i names the entry in error messages.
func (s *PartitionSpec) Validate(nodes, rails, i int) error {
	if s.A < 0 || s.A >= nodes {
		return fmt.Errorf("chaos: partition[%d]: unknown node %d (cluster of %d)", i, s.A, nodes)
	}
	if s.B < 0 || s.B >= nodes {
		return fmt.Errorf("chaos: partition[%d]: unknown node %d (cluster of %d)", i, s.B, nodes)
	}
	if s.A == s.B {
		return fmt.Errorf("chaos: partition[%d]: node %d partitioned from itself", i, s.A)
	}
	if s.Rail != netsim.AllRails && (s.Rail < 0 || s.Rail >= rails) {
		return fmt.Errorf("chaos: partition[%d]: rail %d outside [0,%d)", i, s.Rail, rails)
	}
	if s.Start < 0 {
		return fmt.Errorf("chaos: partition[%d]: start %v before time zero", i, s.Start)
	}
	if s.Stop != 0 && s.Stop <= s.Start {
		return fmt.Errorf("chaos: partition[%d]: stop %v not after start %v", i, s.Stop, s.Start)
	}
	switch s.Direction {
	case netsim.DirBoth, netsim.DirTx, netsim.DirRx:
	default:
		return fmt.Errorf("chaos: partition[%d]: unknown direction %v", i, s.Direction)
	}
	return nil
}

// ValidatePartitions checks a whole partition schedule.
func ValidatePartitions(specs []PartitionSpec, nodes, rails int) error {
	for i := range specs {
		if err := specs[i].Validate(nodes, rails, i); err != nil {
			return err
		}
	}
	return nil
}

// apply installs or heals the episode's directed cuts on the network.
func (s *PartitionSpec) apply(net PartitionNet, heal bool) {
	act := net.Partition
	if heal {
		act = net.Heal
	}
	if s.Direction == netsim.DirBoth || s.Direction == netsim.DirTx {
		act(s.A, s.B, s.Rail)
	}
	if s.Direction == netsim.DirBoth || s.Direction == netsim.DirRx {
		act(s.B, s.A, s.Rail)
	}
}

// SchedulePartitions installs a validated partition schedule, in spec
// order, on the scheduler. Call once, before advancing the simulation
// past the earliest episode. Overlapping episodes compose in schedule
// order: a heal removes exactly the directed cuts its episode
// installed (an overlapping episode that cut the same directed path
// is healed with it — directed cuts are idempotent flags, not
// refcounts).
func SchedulePartitions(sched *simtime.Scheduler, specs []PartitionSpec, net PartitionNet) {
	for i := range specs {
		s := specs[i]
		sched.At(simtime.Time(s.Start), func() { s.apply(net, false) })
		if s.Stop > 0 {
			sched.At(simtime.Time(s.Stop), func() { s.apply(net, true) })
		}
	}
}
