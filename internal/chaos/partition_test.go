package chaos

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"drsnet/internal/netsim"
	"drsnet/internal/simtime"
)

// fakePartNet records Partition/Heal calls in order.
type fakePartNet struct{ calls []string }

func (f *fakePartNet) Partition(src, dst, rail int) {
	f.calls = append(f.calls, pcall("cut", src, dst, rail))
}
func (f *fakePartNet) Heal(src, dst, rail int) {
	f.calls = append(f.calls, pcall("heal", src, dst, rail))
}
func pcall(verb string, src, dst, rail int) string {
	return fmt.Sprintf("%s:%d>%d@%d", verb, src, dst, rail)
}

// TestValidatePartitions covers the rejection matrix with precise
// error substrings.
func TestValidatePartitions(t *testing.T) {
	cases := []struct {
		name string
		spec PartitionSpec
		want string // "" = valid
	}{
		{"valid symmetric", PartitionSpec{A: 0, B: 1, Rail: netsim.AllRails, Start: time.Second, Stop: 2 * time.Second}, ""},
		{"valid asymmetric open-ended", PartitionSpec{A: 2, B: 0, Rail: 1, Direction: netsim.DirTx}, ""},
		{"bad node A", PartitionSpec{A: -1, B: 1}, "unknown node -1"},
		{"bad node B", PartitionSpec{A: 0, B: 9}, "unknown node 9"},
		{"self partition", PartitionSpec{A: 1, B: 1}, "partitioned from itself"},
		{"bad rail", PartitionSpec{A: 0, B: 1, Rail: 2}, "rail 2 outside [0,2)"},
		{"negative start", PartitionSpec{A: 0, B: 1, Start: -time.Second}, "before time zero"},
		{"stop before start", PartitionSpec{A: 0, B: 1, Start: 2 * time.Second, Stop: time.Second}, "not after start"},
		{"bad direction", PartitionSpec{A: 0, B: 1, Direction: netsim.Direction(9)}, "unknown direction"},
	}
	for _, c := range cases {
		err := ValidatePartitions([]PartitionSpec{c.spec}, 3, 2)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestSchedulePartitions: episodes land and heal at their instants,
// expanding Direction into the right directed cuts, and an open-ended
// episode never heals.
func TestSchedulePartitions(t *testing.T) {
	sched := simtime.NewScheduler()
	net := &fakePartNet{}
	specs := []PartitionSpec{
		{A: 0, B: 1, Rail: 0, Start: time.Second, Stop: 3 * time.Second},                     // symmetric
		{A: 1, B: 2, Rail: netsim.AllRails, Start: 2 * time.Second, Direction: netsim.DirTx}, // open-ended, 1→2 only
	}
	if err := ValidatePartitions(specs, 3, 2); err != nil {
		t.Fatal(err)
	}
	SchedulePartitions(sched, specs, net)

	sched.RunUntil(simtime.Time(time.Second))
	want := []string{pcall("cut", 0, 1, 0), pcall("cut", 1, 0, 0)}
	if !reflect.DeepEqual(net.calls, want) {
		t.Fatalf("after 1s: calls %v, want %v", net.calls, want)
	}
	sched.RunUntil(simtime.Time(10 * time.Second))
	want = append(want,
		pcall("cut", 1, 2, netsim.AllRails), // asymmetric: 1→2 only, never healed
		pcall("heal", 0, 1, 0),
		pcall("heal", 1, 0, 0),
	)
	if !reflect.DeepEqual(net.calls, want) {
		t.Fatalf("full schedule: calls %v, want %v", net.calls, want)
	}
}
