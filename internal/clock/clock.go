// Package clock defines the timing seam every protocol layer in this
// repository runs behind: a Clock hands out the current time and
// one-shot timers, nothing more. Two implementations exist — Sim,
// backed by the deterministic simtime.Scheduler, and Wall, backed by
// the process's monotonic clock (with a drainable manual mode for
// tests). Protocol code written against Clock runs unmodified under
// the simulator and inside a live daemon.
//
// Both implementations execute timers in (deadline, scheduling-order)
// total order. That shared contract is what makes the clock-parity
// regression test hold: the same scenario driven through Sim and
// through a drained Wall produces the identical event sequence.
package clock

import "time"

// Clock abstracts time so protocol code runs identically under the
// simulator's virtual clock and the real one.
type Clock interface {
	// Now returns the time elapsed since an arbitrary epoch.
	Now() time.Duration
	// AfterFunc schedules fn after d; the returned function cancels
	// the timer and reports whether it was still pending.
	AfterFunc(d time.Duration, fn func()) (cancel func() bool)
}
