package clock

import (
	"sync"
	"testing"
	"time"

	"drsnet/internal/simtime"
)

func TestManualOrdering(t *testing.T) {
	w := NewManual()
	var got []int
	w.AfterFunc(20*time.Millisecond, func() { got = append(got, 2) })
	w.AfterFunc(10*time.Millisecond, func() { got = append(got, 0) })
	w.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) }) // same deadline: scheduling order breaks the tie
	if n := w.Advance(15 * time.Millisecond); n != 2 {
		t.Fatalf("Advance ran %d timers, want 2", n)
	}
	if n := w.Advance(10 * time.Millisecond); n != 1 {
		t.Fatalf("second Advance ran %d timers, want 1", n)
	}
	want := []int{0, 1, 2}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if w.Now() != 25*time.Millisecond {
		t.Fatalf("Now = %v, want 25ms", w.Now())
	}
}

func TestManualReentrantScheduling(t *testing.T) {
	w := NewManual()
	var fired []time.Duration
	w.AfterFunc(10*time.Millisecond, func() {
		fired = append(fired, w.Now())
		w.AfterFunc(5*time.Millisecond, func() {
			fired = append(fired, w.Now())
		})
	})
	// The nested timer lands inside the window and must run in the
	// same drain, at its own deadline.
	if n := w.RunUntil(30 * time.Millisecond); n != 2 {
		t.Fatalf("RunUntil ran %d timers, want 2", n)
	}
	if fired[0] != 10*time.Millisecond || fired[1] != 15*time.Millisecond {
		t.Fatalf("fired at %v, want [10ms 15ms]", fired)
	}
}

func TestManualCancel(t *testing.T) {
	w := NewManual()
	ran := false
	cancel := w.AfterFunc(10*time.Millisecond, func() { ran = true })
	if !cancel() {
		t.Fatal("first cancel reported not pending")
	}
	if cancel() {
		t.Fatal("second cancel reported pending")
	}
	w.Advance(time.Second)
	if ran {
		t.Fatal("cancelled timer ran")
	}
	if w.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", w.Pending())
	}
}

func TestManualPastTargetClamps(t *testing.T) {
	w := NewManual()
	w.Advance(50 * time.Millisecond)
	if n := w.RunUntil(10 * time.Millisecond); n != 0 {
		t.Fatalf("RunUntil past target ran %d timers", n)
	}
	if w.Now() != 50*time.Millisecond {
		t.Fatalf("Now moved backwards to %v", w.Now())
	}
}

func TestLiveWallFires(t *testing.T) {
	w := NewWall()
	defer w.Stop()
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	w.AfterFunc(20*time.Millisecond, func() {
		mu.Lock()
		order = append(order, 1)
		mu.Unlock()
		close(done)
	})
	// Scheduled later but due sooner: the dispatcher must re-arm.
	w.AfterFunc(time.Millisecond, func() {
		mu.Lock()
		order = append(order, 0)
		mu.Unlock()
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timers did not fire within 5s")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("fire order %v, want [0 1]", order)
	}
}

func TestLiveWallCancel(t *testing.T) {
	w := NewWall()
	defer w.Stop()
	var mu sync.Mutex
	ran := false
	cancel := w.AfterFunc(50*time.Millisecond, func() {
		mu.Lock()
		ran = true
		mu.Unlock()
	})
	if !cancel() {
		t.Fatal("cancel reported not pending")
	}
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if ran {
		t.Fatal("cancelled timer ran")
	}
}

func TestLiveWallStopIdempotent(t *testing.T) {
	w := NewWall()
	w.Stop()
	w.Stop() // must not panic or double-close
}

func TestLiveWallMonotonicNow(t *testing.T) {
	w := NewWall()
	defer w.Stop()
	a := w.Now()
	time.Sleep(time.Millisecond)
	if b := w.Now(); b <= a {
		t.Fatalf("Now not monotonic: %v then %v", a, b)
	}
}

func TestSimAdapter(t *testing.T) {
	sched := simtime.NewScheduler()
	c := Sim{Sched: sched}
	ran := false
	c.AfterFunc(10*time.Millisecond, func() { ran = true })
	cancel := c.AfterFunc(20*time.Millisecond, func() { t.Error("cancelled simtime timer ran") })
	if !cancel() {
		t.Fatal("cancel reported not pending")
	}
	sched.Run(0)
	if !ran {
		t.Fatal("simtime timer did not run")
	}
	if c.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v, want 10ms", c.Now())
	}
}
