package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestManualAdvanceRacesAfterFunc drives a manual Wall's Advance from
// one goroutine while others concurrently register and cancel timers —
// the exact overlap the nemesis runner produces when daemons arm
// probe timers while the harness drains the clock. Under -race this is
// the memory-safety gate; the accounting check catches lost timers.
func TestManualAdvanceRacesAfterFunc(t *testing.T) {
	clk := NewManual()
	var fired, cancelled, registered atomic.Int64

	const workers = 4
	const perWorker = 200
	stop := make(chan struct{})
	driverDone := make(chan struct{})

	// Driver: advance in small steps until told to stop.
	go func() {
		defer close(driverDone)
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := time.Duration(i%7) * 100 * time.Microsecond
				registered.Add(1)
				cancel := clk.AfterFunc(d, func() { fired.Add(1) })
				// Some timers are cancelled immediately; a successful
				// cancel must mean the callback never runs.
				if (i+w)%5 == 0 && cancel() {
					cancelled.Add(1)
				}
			}
		}()
	}

	// Let the workers finish, stop the driver, then drain whatever is
	// still pending (Advance is single-driver: wait for the goroutine
	// to exit before draining from this one).
	wg.Wait()
	close(stop)
	<-driverDone
	clk.Advance(time.Second)

	if clk.Pending() != 0 {
		t.Fatalf("%d timers still pending after the final drain", clk.Pending())
	}
	if got := fired.Load() + cancelled.Load(); got != registered.Load() {
		t.Fatalf("fired %d + cancelled %d = %d, want %d registered",
			fired.Load(), cancelled.Load(), got, registered.Load())
	}
}
