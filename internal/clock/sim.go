package clock

import (
	"time"

	"drsnet/internal/simtime"
)

// Sim adapts a simtime.Scheduler to the Clock interface. It is the
// simulator-side implementation: time only advances when the scheduler
// executes events, so every run is deterministic.
type Sim struct {
	Sched *simtime.Scheduler
}

// Now implements Clock.
func (c Sim) Now() time.Duration { return c.Sched.Now().Duration() }

// AfterFunc implements Clock.
func (c Sim) AfterFunc(d time.Duration, fn func()) (cancel func() bool) {
	return c.Sched.AfterFunc(d, fn)
}

var _ Clock = Sim{}
