package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Wall is a Clock backed by real time. It comes in two modes:
//
//   - Live (NewWall): Now is the monotonic time elapsed since the
//     clock was created, and timers fire from a single dispatcher
//     goroutine driven by the operating system. This is the daemon
//     mode.
//   - Manual (NewManual): time is virtual and only advances when the
//     test calls Advance or RunUntil, which execute every due timer
//     synchronously on the caller's goroutine. This is the drained
//     mode the hermetic multi-daemon tests run under.
//
// In both modes timers execute in (deadline, scheduling-order) total
// order — the same order simtime uses — so a scenario driven through
// a manual Wall unfolds identically to the same scenario under the
// simulator's clock.
type Wall struct {
	mu      sync.Mutex
	timers  timerHeap
	seq     uint64
	manual  bool
	now     time.Duration // manual mode only
	start   time.Time     // live mode epoch
	kick    chan struct{} // live mode: wakes the dispatcher on a new head
	done    chan struct{} // live mode: closed by Stop
	stopped bool
}

// NewWall returns a live Wall: Now tracks the monotonic clock and
// timers fire in real time. Call Stop to shut down the dispatcher
// goroutine.
func NewWall() *Wall {
	w := &Wall{
		start: time.Now(),
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	go w.loop()
	return w
}

// NewManual returns a drained Wall for tests: time stands still until
// Advance or RunUntil moves it, executing due timers synchronously.
func NewManual() *Wall {
	return &Wall{manual: true}
}

func (w *Wall) nowLocked() time.Duration {
	if w.manual {
		return w.now
	}
	return time.Since(w.start)
}

// Now implements Clock.
func (w *Wall) Now() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nowLocked()
}

// AfterFunc implements Clock. A negative delay is clamped to zero —
// unlike the simulator, a real clock cannot treat "slightly in the
// past" as a protocol bug, because the wall moved while the caller
// computed d.
func (w *Wall) AfterFunc(d time.Duration, fn func()) (cancel func() bool) {
	if fn == nil {
		panic("clock: nil timer function")
	}
	if d < 0 {
		d = 0
	}
	w.mu.Lock()
	t := &wallTimer{at: w.nowLocked() + d, seq: w.seq, fn: fn}
	w.seq++
	heap.Push(&w.timers, t)
	newHead := w.timers[0] == t
	live := !w.manual && !w.stopped
	w.mu.Unlock()
	if live && newHead {
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	return func() bool {
		w.mu.Lock()
		defer w.mu.Unlock()
		if t.fn == nil {
			return false
		}
		t.fn = nil
		return true
	}
}

// Pending returns the number of scheduled, uncancelled timers.
func (w *Wall) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, t := range w.timers {
		if t.fn != nil {
			n++
		}
	}
	return n
}

// Stop shuts down a live Wall's dispatcher goroutine. Pending timers
// never fire. Stop is idempotent and a no-op on a manual Wall.
func (w *Wall) Stop() {
	w.mu.Lock()
	if w.manual || w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	close(w.done)
}

// Advance moves a manual Wall forward by d, executing every timer due
// in the window in (deadline, scheduling-order) order. Timers that
// callbacks schedule inside the window also run. It returns the
// number of timers executed. Negative d is clamped to zero.
func (w *Wall) Advance(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	w.mu.Lock()
	target := w.now + d
	w.mu.Unlock()
	return w.RunUntil(target)
}

// RunUntil advances a manual Wall to absolute time t (clamped: a
// target in the past is a no-op), executing every due timer
// synchronously on the caller's goroutine. It returns the number of
// timers executed. It panics on a live Wall, where the dispatcher
// owns execution.
func (w *Wall) RunUntil(t time.Duration) int {
	if !w.manual {
		panic("clock: RunUntil on a live Wall")
	}
	n := 0
	for {
		w.mu.Lock()
		if t < w.now {
			w.mu.Unlock()
			return n
		}
		var fn func()
		for len(w.timers) > 0 {
			head := w.timers[0]
			if head.fn == nil { // cancelled
				heap.Pop(&w.timers)
				continue
			}
			if head.at > t {
				break
			}
			heap.Pop(&w.timers)
			fn, head.fn = head.fn, nil
			w.now = head.at
			break
		}
		if fn == nil {
			w.now = t
			w.mu.Unlock()
			return n
		}
		w.mu.Unlock()
		fn()
		n++
	}
}

// loop is the live-mode dispatcher: it sleeps until the earliest
// deadline (or a kick, when a sooner timer arrives), then runs every
// due timer outside the lock.
func (w *Wall) loop() {
	for {
		w.mu.Lock()
		now := time.Since(w.start)
		var due []func()
		for len(w.timers) > 0 {
			head := w.timers[0]
			if head.fn == nil { // cancelled
				heap.Pop(&w.timers)
				continue
			}
			if head.at > now {
				break
			}
			heap.Pop(&w.timers)
			due = append(due, head.fn)
			head.fn = nil
		}
		wait := time.Duration(-1)
		if len(w.timers) > 0 {
			wait = w.timers[0].at - now
		}
		w.mu.Unlock()

		for _, fn := range due {
			fn()
		}
		if len(due) > 0 {
			// Callbacks may have scheduled or cancelled; recompute
			// before sleeping.
			select {
			case <-w.done:
				return
			default:
			}
			continue
		}

		var tc <-chan time.Time
		var tm *time.Timer
		if wait >= 0 {
			tm = time.NewTimer(wait)
			tc = tm.C
		}
		select {
		case <-tc:
		case <-w.kick:
		case <-w.done:
			if tm != nil {
				tm.Stop()
			}
			return
		}
		if tm != nil {
			tm.Stop()
		}
	}
}

// wallTimer is one scheduled callback. Cancellation nils fn in place;
// the heap lazily discards dead entries when they surface.
type wallTimer struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// timerHeap orders timers by (deadline, sequence) — the same total
// order simtime uses, which is what makes drained-mode execution
// reproduce the simulator's event sequence.
type timerHeap []*wallTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *timerHeap) Push(x any) { *h = append(*h, x.(*wallTimer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

var _ Clock = (*Wall)(nil)
