// Package conn evaluates cluster connectivity under a failure
// scenario. It answers the question at the heart of the paper's
// survivability model: given a set of failed components (NICs and back
// planes), can two servers still communicate when routing is allowed
// to relay through intermediate servers?
//
// Semantics: node i is attached to rail k iff both nic(i,k) and
// backplane(k) are operational. Two nodes can communicate iff they lie
// in the same connected component of the node–rail incidence graph —
// exactly the reachability a correctly functioning DRS provides (the
// DRS relays application traffic through any server that can reach
// both ends).
//
// The evaluator is the hot path of the Monte Carlo simulation, so the
// core entry points take failure scenarios as small component slices
// and allocate nothing.
package conn

import (
	"fmt"

	"drsnet/internal/topology"
)

// Evaluator answers connectivity queries for one cluster shape.
// It is safe for concurrent use: all per-query state lives on the
// stack or in caller-provided scratch.
type Evaluator struct {
	c topology.Cluster
}

// NewEvaluator returns an Evaluator for the given cluster shape.
// Rails must be ≤ 64 (rail sets are held in a uint64 mask).
func NewEvaluator(c topology.Cluster) (*Evaluator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Rails > 64 {
		return nil, fmt.Errorf("conn: at most 64 rails supported, have %d", c.Rails)
	}
	return &Evaluator{c: c}, nil
}

// Cluster returns the cluster shape the evaluator was built for.
func (e *Evaluator) Cluster() topology.Cluster { return e.c }

// maxTrackedNodes bounds the scratch used to track nodes that have at
// least one failed NIC; failure scenarios larger than this fall back
// to the general path. The paper's experiments use f ≤ 10.
const maxTrackedNodes = 32

// affected records, for one node, the bitmask of rails whose NIC on
// that node has failed.
type affected struct {
	node int
	mask uint64
}

// scenario is the decoded form of a failure list.
type scenario struct {
	aliveRails uint64 // rails whose backplane is up
	aff        [maxTrackedNodes]affected
	nAff       int
	overflow   bool // more distinct affected nodes than we track
}

func (e *Evaluator) decode(failed []topology.Component) scenario {
	var s scenario
	s.aliveRails = railMaskAll(e.c.Rails)
	for _, comp := range failed {
		kind, node, rail := e.c.Describe(comp)
		if kind == topology.KindBackplane {
			s.aliveRails &^= 1 << uint(rail)
			continue
		}
		idx := -1
		for i := 0; i < s.nAff; i++ {
			if s.aff[i].node == node {
				idx = i
				break
			}
		}
		if idx < 0 {
			if s.nAff == maxTrackedNodes {
				s.overflow = true
				continue
			}
			idx = s.nAff
			s.aff[idx] = affected{node: node}
			s.nAff++
		}
		s.aff[idx].mask |= 1 << uint(rail)
	}
	return s
}

func railMaskAll(r int) uint64 {
	if r == 64 {
		return ^uint64(0)
	}
	return (1 << uint(r)) - 1
}

// nodeMask returns the alive-rail attachment mask of node under s.
func (s *scenario) nodeMask(node int) uint64 {
	m := s.aliveRails
	for i := 0; i < s.nAff; i++ {
		if s.aff[i].node == node {
			m &^= s.aff[i].mask
			break
		}
	}
	return m
}

// PairConnected reports whether nodes a and b can communicate under
// the failure scenario given as a component slice. Components may
// repeat; repeats are harmless.
func (e *Evaluator) PairConnected(failed []topology.Component, a, b int) bool {
	if a == b {
		return true
	}
	e.checkNode(a)
	e.checkNode(b)
	if len(failed) > maxTrackedNodes {
		return e.pairConnectedGeneral(failed, a, b)
	}
	s := e.decode(failed)
	if s.overflow {
		return e.pairConnectedGeneral(failed, a, b)
	}
	maskA := s.nodeMask(a)
	maskB := s.nodeMask(b)
	if maskA == 0 || maskB == 0 {
		return false
	}
	// Direct: the pair shares a live rail.
	if maskA&maskB != 0 {
		return true
	}
	// Relay: any node with no failed NIC is attached to every alive
	// rail, so a single healthy third server bridges all rails.
	othersAffected := 0
	for i := 0; i < s.nAff; i++ {
		if n := s.aff[i].node; n != a && n != b {
			othersAffected++
		}
	}
	if e.c.Nodes-2 > othersAffected {
		return true
	}
	// Every other node has at least one failed NIC: run the rail-set
	// closure over the few affected nodes (plus the endpoints, whose
	// own multi-rail attachment can also bridge rails).
	reached := maskA
	for {
		prev := reached
		for i := 0; i < s.nAff; i++ {
			if m := s.aliveRails &^ s.aff[i].mask; m&reached != 0 {
				reached |= m
			}
		}
		// Endpoints as bridges.
		if maskA&reached != 0 {
			reached |= maskA
		}
		if maskB&reached != 0 {
			reached |= maskB
		}
		if reached == prev {
			break
		}
	}
	return reached&maskB != 0
}

// PairConnectedSet is PairConnected for scenarios stored as a Set.
func (e *Evaluator) PairConnectedSet(failed *topology.Set, a, b int) bool {
	return e.PairConnected(failed.Components(), a, b)
}

// pairConnectedGeneral handles arbitrarily large failure scenarios by
// materializing every node's mask. O(Nodes · len(failed)) worst case,
// used only off the hot path.
func (e *Evaluator) pairConnectedGeneral(failed []topology.Component, a, b int) bool {
	masks := e.allMasks(failed)
	if masks[a] == 0 || masks[b] == 0 {
		return false
	}
	if masks[a]&masks[b] != 0 {
		return true
	}
	reached := masks[a]
	for {
		prev := reached
		for _, m := range masks {
			if m&reached != 0 {
				reached |= m
			}
		}
		if reached == prev {
			break
		}
	}
	return reached&masks[b] != 0
}

// allMasks computes every node's alive-rail attachment mask.
func (e *Evaluator) allMasks(failed []topology.Component) []uint64 {
	alive := railMaskAll(e.c.Rails)
	nicDown := make([]uint64, e.c.Nodes)
	for _, comp := range failed {
		kind, node, rail := e.c.Describe(comp)
		if kind == topology.KindBackplane {
			alive &^= 1 << uint(rail)
		} else {
			nicDown[node] |= 1 << uint(rail)
		}
	}
	masks := make([]uint64, e.c.Nodes)
	for i := range masks {
		masks[i] = alive &^ nicDown[i]
	}
	return masks
}

// AllConnected reports whether every pair of nodes can communicate
// under the failure scenario — i.e. the cluster is fully survivable.
func (e *Evaluator) AllConnected(failed []topology.Component) bool {
	masks := e.allMasks(failed)
	for _, m := range masks {
		if m == 0 {
			return false
		}
	}
	reached := masks[0]
	for {
		prev := reached
		for _, m := range masks {
			if m&reached != 0 {
				reached |= m
			}
		}
		if reached == prev {
			break
		}
	}
	for _, m := range masks {
		if m&reached == 0 {
			return false
		}
	}
	return true
}

// AttachedRails returns the bitmask of rails node is attached to under
// the failure scenario (bit k set means attached to rail k).
func (e *Evaluator) AttachedRails(failed []topology.Component, node int) uint64 {
	e.checkNode(node)
	return e.allMasks(failed)[node]
}

// ComponentsReachable returns, for each node, whether it can
// communicate with node a under the failure scenario.
func (e *Evaluator) ComponentsReachable(failed []topology.Component, a int) []bool {
	e.checkNode(a)
	masks := e.allMasks(failed)
	out := make([]bool, e.c.Nodes)
	if masks[a] == 0 {
		out[a] = true
		return out
	}
	reached := masks[a]
	for {
		prev := reached
		for _, m := range masks {
			if m&reached != 0 {
				reached |= m
			}
		}
		if reached == prev {
			break
		}
	}
	for i, m := range masks {
		out[i] = i == a || m&reached != 0
	}
	return out
}

func (e *Evaluator) checkNode(n int) {
	if n < 0 || n >= e.c.Nodes {
		panic(fmt.Sprintf("conn: node %d out of range [0,%d)", n, e.c.Nodes))
	}
}
