package conn

import (
	"testing"
	"testing/quick"

	"drsnet/internal/rng"
	"drsnet/internal/topology"
)

func mustEval(t *testing.T, c topology.Cluster) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(c)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// refPairConnected is an independent reference implementation: build
// the explicit node graph (edge iff the two nodes share an alive rail)
// and BFS.
func refPairConnected(c topology.Cluster, failed []topology.Component, a, b int) bool {
	alive := make([]bool, c.Rails)
	for i := range alive {
		alive[i] = true
	}
	nicUp := make([][]bool, c.Nodes)
	for i := range nicUp {
		nicUp[i] = make([]bool, c.Rails)
		for k := range nicUp[i] {
			nicUp[i][k] = true
		}
	}
	for _, comp := range failed {
		kind, node, rail := c.Describe(comp)
		if kind == topology.KindBackplane {
			alive[rail] = false
		} else {
			nicUp[node][rail] = false
		}
	}
	attached := func(node, rail int) bool { return alive[rail] && nicUp[node][rail] }
	adj := func(i, j int) bool {
		for k := 0; k < c.Rails; k++ {
			if attached(i, k) && attached(j, k) {
				return true
			}
		}
		return false
	}
	visited := make([]bool, c.Nodes)
	queue := []int{a}
	visited[a] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == b {
			return true
		}
		for j := 0; j < c.Nodes; j++ {
			if !visited[j] && adj(cur, j) {
				visited[j] = true
				queue = append(queue, j)
			}
		}
	}
	return visited[b]
}

func TestKnownScenariosDual(t *testing.T) {
	// Nodes A=0, B=1 in a 5-node dual-rail cluster.
	c := topology.Dual(5)
	e := mustEval(t, c)
	a0 := c.NIC(0, 0)
	a1 := c.NIC(0, 1)
	b0 := c.NIC(1, 0)
	b1 := c.NIC(1, 1)
	bp0 := c.Backplane(0)
	bp1 := c.Backplane(1)

	cases := []struct {
		name   string
		failed []topology.Component
		want   bool
	}{
		{"no failures", nil, true},
		{"one backplane", []topology.Component{bp0}, true},
		{"both backplanes", []topology.Component{bp0, bp1}, false},
		{"A loses both NICs", []topology.Component{a0, a1}, false},
		{"B loses both NICs", []topology.Component{b0, b1}, false},
		{"bp0 down and A's other NIC down", []topology.Component{bp0, a1}, false},
		{"bp0 down and B's other NIC down", []topology.Component{bp0, b1}, false},
		{"bp1 down and A's other NIC down", []topology.Component{bp1, a0}, false},
		{"same-rail NIC pair still direct on other rail", []topology.Component{a0, b0}, true},
		{"cross-rail NICs need a relay (exists)", []topology.Component{a0, b1}, true},
		{"cross-rail plus all relays cut", []topology.Component{a0, b1,
			c.NIC(2, 0), c.NIC(3, 0), c.NIC(4, 0)}, false},
		{"cross-rail, relays cut on mixed rails", []topology.Component{a0, b1,
			c.NIC(2, 0), c.NIC(3, 1), c.NIC(4, 0)}, false},
		{"cross-rail, one relay intact", []topology.Component{a0, b1,
			c.NIC(2, 0), c.NIC(3, 0)}, true},
		{"unrelated NIC failures", []topology.Component{c.NIC(2, 0), c.NIC(3, 1)}, true},
	}
	for _, tc := range cases {
		if got := e.PairConnected(tc.failed, 0, 1); got != tc.want {
			t.Errorf("%s: PairConnected = %v, want %v", tc.name, got, tc.want)
		}
		if ref := refPairConnected(c, tc.failed, 0, 1); ref != tc.want {
			t.Errorf("%s: reference implementation disagrees with expectation (%v)", tc.name, ref)
		}
	}
}

func TestCrossRailRelaysCutOnMixedRailsIsSubtle(t *testing.T) {
	// With A only on rail 1 and B only on rail 0, a relay needs BOTH
	// NICs up. Node 2 keeps rail 1 only, node 3 keeps rail 0 only:
	// neither bridges, and chaining 2→3 is impossible because they do
	// not share a rail with each other... actually they do not share a
	// live path to both endpoints. Verify against the reference.
	c := topology.Dual(4)
	e := mustEval(t, c)
	failed := []topology.Component{
		c.NIC(0, 0), c.NIC(1, 1), // A on rail1 only, B on rail0 only
		c.NIC(2, 0), c.NIC(3, 1), // node2 on rail1 only, node3 on rail0 only
	}
	got := e.PairConnected(failed, 0, 1)
	want := refPairConnected(c, failed, 0, 1)
	if got != want {
		t.Fatalf("PairConnected = %v, reference = %v", got, want)
	}
	if want {
		t.Fatal("expected disconnection: no node bridges the two rails")
	}
}

func TestTwoNodeCluster(t *testing.T) {
	c := topology.Dual(2)
	e := mustEval(t, c)
	// Cross-rail NIC failures with no third node to relay: fail.
	failed := []topology.Component{c.NIC(0, 0), c.NIC(1, 1)}
	if e.PairConnected(failed, 0, 1) {
		t.Fatal("two-node cluster has no relay; cross-rail failures must disconnect")
	}
	// Same-rail failures leave the other rail direct.
	failed = []topology.Component{c.NIC(0, 0), c.NIC(1, 0)}
	if !e.PairConnected(failed, 0, 1) {
		t.Fatal("same-rail failures should leave rail 1 direct")
	}
}

func TestSelfIsAlwaysConnected(t *testing.T) {
	c := topology.Dual(3)
	e := mustEval(t, c)
	failed := []topology.Component{c.NIC(1, 0), c.NIC(1, 1)}
	if !e.PairConnected(failed, 1, 1) {
		t.Fatal("a node must always be connected to itself")
	}
}

func TestAgainstReferenceQuick(t *testing.T) {
	r := rng.New(2024)
	err := quick.Check(func(n8, f8, seed uint8) bool {
		n := int(n8%10) + 2
		c := topology.Dual(n)
		e, err := NewEvaluator(c)
		if err != nil {
			return false
		}
		m := c.Components()
		f := int(f8) % (m + 1)
		sub := r.Split(uint64(seed) ^ uint64(n)<<8 ^ uint64(f)<<16)
		idx := make([]int, f)
		sub.SampleK(idx, m)
		failed := make([]topology.Component, f)
		for i, v := range idx {
			failed[i] = topology.Component(v)
		}
		a := sub.Intn(n)
		b := sub.Intn(n)
		return e.PairConnected(failed, a, b) == refPairConnected(c, failed, a, b)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAgainstReferenceThreeRails(t *testing.T) {
	// Multi-rail chains exercise the rail-closure logic: A on rail 0
	// only, B on rail 2 only, bridged by two partial relays.
	c := topology.Cluster{Nodes: 4, Rails: 3}
	e := mustEval(t, c)
	failed := []topology.Component{
		c.NIC(0, 1), c.NIC(0, 2), // A rail0 only
		c.NIC(1, 0), c.NIC(1, 1), // B rail2 only
		c.NIC(2, 2), // node2 bridges rails 0,1
		c.NIC(3, 0), // node3 bridges rails 1,2
	}
	if !e.PairConnected(failed, 0, 1) {
		t.Fatal("two-hop relay chain across three rails should connect")
	}
	if !refPairConnected(c, failed, 0, 1) {
		t.Fatal("reference disagrees with scenario expectation")
	}
	// Cut the chain.
	failed = append(failed, c.NIC(3, 1))
	if e.PairConnected(failed, 0, 1) {
		t.Fatal("severed relay chain should disconnect")
	}
}

func TestAgainstReferenceQuickMultiRail(t *testing.T) {
	r := rng.New(7)
	err := quick.Check(func(n8, r8, f8, seed uint8) bool {
		n := int(n8%8) + 2
		rails := int(r8%4) + 1
		c := topology.Cluster{Nodes: n, Rails: rails}
		e, err := NewEvaluator(c)
		if err != nil {
			return false
		}
		m := c.Components()
		f := int(f8) % (m + 1)
		sub := r.Split(uint64(seed)<<24 ^ uint64(n)<<16 ^ uint64(rails)<<8 ^ uint64(f))
		idx := make([]int, f)
		sub.SampleK(idx, m)
		failed := make([]topology.Component, f)
		for i, v := range idx {
			failed[i] = topology.Component(v)
		}
		a := sub.Intn(n)
		b := sub.Intn(n)
		return e.PairConnected(failed, a, b) == refPairConnected(c, failed, a, b)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllConnected(t *testing.T) {
	c := topology.Dual(4)
	e := mustEval(t, c)
	if !e.AllConnected(nil) {
		t.Fatal("healthy cluster must be fully connected")
	}
	if e.AllConnected([]topology.Component{c.Backplane(0), c.Backplane(1)}) {
		t.Fatal("both backplanes down cannot be fully connected")
	}
	if e.AllConnected([]topology.Component{c.NIC(2, 0), c.NIC(2, 1)}) {
		t.Fatal("an isolated node breaks full connectivity")
	}
	// One backplane down: everyone still shares rail 1.
	if !e.AllConnected([]topology.Component{c.Backplane(0)}) {
		t.Fatal("single backplane failure should be survivable")
	}
}

func TestAllConnectedImpliesAllPairs(t *testing.T) {
	r := rng.New(99)
	c := topology.Dual(6)
	e := mustEval(t, c)
	m := c.Components()
	for trial := 0; trial < 500; trial++ {
		f := r.Intn(m)
		idx := make([]int, f)
		r.SampleK(idx, m)
		failed := make([]topology.Component, f)
		for i, v := range idx {
			failed[i] = topology.Component(v)
		}
		all := e.AllConnected(failed)
		pairwise := true
		for a := 0; a < c.Nodes && pairwise; a++ {
			for b := a + 1; b < c.Nodes; b++ {
				if !e.PairConnected(failed, a, b) {
					pairwise = false
					break
				}
			}
		}
		if all != pairwise {
			t.Fatalf("trial %d: AllConnected=%v but pairwise=%v (failed=%v)", trial, all, pairwise, failed)
		}
	}
}

func TestAttachedRails(t *testing.T) {
	c := topology.Dual(3)
	e := mustEval(t, c)
	if got := e.AttachedRails(nil, 0); got != 0b11 {
		t.Fatalf("healthy attachment = %b", got)
	}
	got := e.AttachedRails([]topology.Component{c.NIC(0, 0)}, 0)
	if got != 0b10 {
		t.Fatalf("attachment after nic(0,0) fail = %b", got)
	}
	got = e.AttachedRails([]topology.Component{c.Backplane(1)}, 0)
	if got != 0b01 {
		t.Fatalf("attachment after backplane(1) fail = %b", got)
	}
}

func TestComponentsReachable(t *testing.T) {
	c := topology.Dual(4)
	e := mustEval(t, c)
	// Isolate node 2.
	failed := []topology.Component{c.NIC(2, 0), c.NIC(2, 1)}
	reach := e.ComponentsReachable(failed, 0)
	want := []bool{true, true, false, true}
	for i := range want {
		if reach[i] != want[i] {
			t.Fatalf("reach = %v, want %v", reach, want)
		}
	}
	// From the isolated node, only itself.
	reach = e.ComponentsReachable(failed, 2)
	want = []bool{false, false, true, false}
	for i := range want {
		if reach[i] != want[i] {
			t.Fatalf("reach from isolated = %v, want %v", reach, want)
		}
	}
}

func TestNewEvaluatorRejectsBadShapes(t *testing.T) {
	if _, err := NewEvaluator(topology.Cluster{Nodes: 1, Rails: 2}); err == nil {
		t.Fatal("1-node cluster accepted")
	}
	if _, err := NewEvaluator(topology.Cluster{Nodes: 4, Rails: 65}); err == nil {
		t.Fatal("65-rail cluster accepted")
	}
}

func TestLargeFailureListFallback(t *testing.T) {
	// More failed components than the fast path tracks: should fall
	// back to the general path and agree with the reference.
	c := topology.Dual(40)
	e := mustEval(t, c)
	var failed []topology.Component
	for i := 2; i < 38; i++ {
		failed = append(failed, c.NIC(i, 0))
	}
	got := e.PairConnected(failed, 0, 1)
	if ref := refPairConnected(c, failed, 0, 1); got != ref {
		t.Fatalf("fallback path = %v, reference = %v", got, ref)
	}
}

func BenchmarkPairConnectedF4(b *testing.B) {
	c := topology.Dual(63)
	e, err := NewEvaluator(c)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	m := c.Components()
	idx := make([]int, 4)
	failed := make([]topology.Component, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SampleK(idx, m)
		for j, v := range idx {
			failed[j] = topology.Component(v)
		}
		e.PairConnected(failed, 0, 1)
	}
}

func TestPairConnectedSetAndCluster(t *testing.T) {
	c := topology.Dual(4)
	e := mustEval(t, c)
	if e.Cluster() != c {
		t.Fatal("Cluster accessor wrong")
	}
	set := topology.NewSetOf(c.Components(), c.Backplane(0), c.Backplane(1))
	if e.PairConnectedSet(set, 0, 1) {
		t.Fatal("both backplanes down should disconnect (Set path)")
	}
	set = topology.NewSetOf(c.Components(), c.NIC(2, 0))
	if !e.PairConnectedSet(set, 0, 1) {
		t.Fatal("unrelated failure should not disconnect (Set path)")
	}
}

func TestGeneralPathAgainstReferenceQuick(t *testing.T) {
	// Force the general (non-fast) path by exceeding the tracked-node
	// budget with many distinct affected nodes.
	r := rng.New(555)
	c := topology.Dual(40)
	e := mustEval(t, c)
	m := c.Components()
	for trial := 0; trial < 200; trial++ {
		f := 33 + r.Intn(20)
		idx := make([]int, f)
		r.SampleK(idx, m)
		failed := make([]topology.Component, f)
		for i, v := range idx {
			failed[i] = topology.Component(v)
		}
		a := r.Intn(40)
		b := r.Intn(40)
		if got, want := e.PairConnected(failed, a, b), refPairConnected(c, failed, a, b); got != want {
			t.Fatalf("trial %d: general path %v, reference %v", trial, got, want)
		}
	}
}

func TestCheckNodePanics(t *testing.T) {
	e := mustEval(t, topology.Dual(3))
	for name, fn := range map[string]func(){
		"PairConnected a": func() { e.PairConnected(nil, -1, 1) },
		"PairConnected b": func() { e.PairConnected(nil, 0, 3) },
		"AttachedRails":   func() { e.AttachedRails(nil, 5) },
		"Reachable":       func() { e.ComponentsReachable(nil, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSixtyFourRails(t *testing.T) {
	// The rail mask is a uint64; 64 rails is the documented limit and
	// must work end to end.
	c := topology.Cluster{Nodes: 2, Rails: 64}
	e := mustEval(t, c)
	var failed []topology.Component
	// Cut node 0 from every rail except the last.
	for rail := 0; rail < 63; rail++ {
		failed = append(failed, c.NIC(0, rail))
	}
	if !e.PairConnected(failed, 0, 1) {
		t.Fatal("last rail should still connect")
	}
	failed = append(failed, c.NIC(0, 63))
	if e.PairConnected(failed, 0, 1) {
		t.Fatal("node 0 fully cut should disconnect")
	}
}
