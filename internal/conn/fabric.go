package conn

import (
	"fmt"

	"drsnet/internal/topology"
)

// FabricEvaluator answers connectivity queries on a general switched
// fabric, where the dual-rail closed form does not apply. The graph
// has one vertex per host and per switch; a NIC gates the host↔switch
// edge it names, a trunk gates its switch↔switch edge, and a failed
// switch blocks its vertex entirely. Hosts may relay (a path may pass
// through intermediate host vertices), matching the dual-rail
// Evaluator's semantics — and what a correctly functioning DRS or
// BCube-style server-centric fabric provides.
//
// FabricEvaluator is the hot path of fabric Monte Carlo runs: queries
// allocate nothing when given a caller-owned Scratch (one per worker;
// a Scratch must not be shared between goroutines).
type FabricEvaluator struct {
	f     *topology.Fabric
	verts int // hosts then switches

	// CSR adjacency: for vertex v, edges are adj/edgeComp in
	// [off[v], off[v+1]) — the neighbouring vertex and the component id
	// whose failure severs the edge.
	off      []int32
	adj      []int32
	edgeComp []int32
}

// FabricScratch is the reusable per-worker query state.
type FabricScratch struct {
	failed  []bool  // indexed by component id; set and cleared per query
	visited []int32 // epoch marks per vertex
	epoch   int32
	queue   []int32
}

// NewFabricEvaluator builds an evaluator for the fabric.
func NewFabricEvaluator(f *topology.Fabric) (*FabricEvaluator, error) {
	if f == nil {
		return nil, fmt.Errorf("conn: nil fabric")
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	hosts, ports, switches := f.Hosts(), f.Ports(), f.Switches()
	verts := hosts + switches
	edges := hosts*ports + f.Trunks()

	deg := make([]int32, verts+1)
	for h := 0; h < hosts; h++ {
		for p := 0; p < ports; p++ {
			deg[h+1]++
			deg[hosts+f.HostSwitch(h, p)+1]++
		}
	}
	for t := 0; t < f.Trunks(); t++ {
		tr := f.Trunk(t)
		deg[hosts+tr.A+1]++
		deg[hosts+tr.B+1]++
	}
	for v := 0; v < verts; v++ {
		deg[v+1] += deg[v]
	}
	e := &FabricEvaluator{
		f:        f,
		verts:    verts,
		off:      deg,
		adj:      make([]int32, 2*edges),
		edgeComp: make([]int32, 2*edges),
	}
	fill := make([]int32, verts)
	add := func(u, v int, comp topology.Component) {
		i := e.off[u] + fill[u]
		e.adj[i], e.edgeComp[i] = int32(v), int32(comp)
		fill[u]++
	}
	for h := 0; h < hosts; h++ {
		for p := 0; p < ports; p++ {
			s := hosts + f.HostSwitch(h, p)
			c := f.NIC(h, p)
			add(h, s, c)
			add(s, h, c)
		}
	}
	for t := 0; t < f.Trunks(); t++ {
		tr := f.Trunk(t)
		c := f.TrunkComp(t)
		add(hosts+tr.A, hosts+tr.B, c)
		add(hosts+tr.B, hosts+tr.A, c)
	}
	return e, nil
}

// Fabric returns the fabric the evaluator was built for.
func (e *FabricEvaluator) Fabric() *topology.Fabric { return e.f }

// NewScratch returns fresh per-worker query state.
func (e *FabricEvaluator) NewScratch() *FabricScratch {
	return &FabricScratch{
		failed:  make([]bool, e.f.Components()),
		visited: make([]int32, e.verts),
		queue:   make([]int32, 0, e.verts),
	}
}

// mark installs the failure scenario into the scratch; the caller must
// unmark with the same slice before returning.
func (sc *FabricScratch) mark(failed []topology.Component) {
	for _, c := range failed {
		sc.failed[c] = true
	}
}

func (sc *FabricScratch) unmark(failed []topology.Component) {
	for _, c := range failed {
		sc.failed[c] = false
	}
}

// blockedSwitch reports whether vertex v (≥ hosts) is a failed switch.
func (e *FabricEvaluator) blockedSwitch(sc *FabricScratch, v int32) bool {
	hosts := e.f.Hosts()
	if int(v) < hosts {
		return false
	}
	return sc.failed[e.f.Switch(int(v)-hosts)]
}

// bfs runs a breadth-first search from host a over usable edges. If
// target ≥ 0 it stops early on reaching it and reports success; with
// target < 0 it visits the whole component and returns false. Visited
// marks for the query's epoch are left in sc.visited.
func (e *FabricEvaluator) bfs(sc *FabricScratch, a, target int) bool {
	if sc.epoch == 1<<31-1 {
		// Epoch wrap: reset marks so stale epochs can't alias.
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.epoch = 0
	}
	sc.epoch++
	sc.visited[a] = sc.epoch
	sc.queue = append(sc.queue[:0], int32(a))
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		for i := e.off[u]; i < e.off[u+1]; i++ {
			if sc.failed[e.edgeComp[i]] {
				continue
			}
			v := e.adj[i]
			if sc.visited[v] == sc.epoch || e.blockedSwitch(sc, v) {
				continue
			}
			if int(v) == target {
				return true
			}
			sc.visited[v] = sc.epoch
			sc.queue = append(sc.queue, v)
		}
	}
	return false
}

// PairConnected reports whether hosts a and b can communicate under
// the failure scenario. sc may be nil (a throwaway scratch is
// allocated); pass a per-worker scratch on hot paths.
func (e *FabricEvaluator) PairConnected(sc *FabricScratch, failed []topology.Component, a, b int) bool {
	e.checkHost(a)
	e.checkHost(b)
	if a == b {
		return true
	}
	if sc == nil {
		sc = e.NewScratch()
	}
	sc.mark(failed)
	ok := e.bfs(sc, a, b)
	sc.unmark(failed)
	return ok
}

// AllConnected reports whether every pair of hosts can communicate —
// the fabric analogue of the dual-rail evaluator's AllConnected.
func (e *FabricEvaluator) AllConnected(sc *FabricScratch, failed []topology.Component) bool {
	if sc == nil {
		sc = e.NewScratch()
	}
	sc.mark(failed)
	e.bfs(sc, 0, -1)
	ok := true
	for h := 0; h < e.f.Hosts(); h++ {
		if sc.visited[h] != sc.epoch {
			ok = false
			break
		}
	}
	sc.unmark(failed)
	return ok
}

// HostsReachable returns, for each host, whether it can communicate
// with host a under the failure scenario.
func (e *FabricEvaluator) HostsReachable(sc *FabricScratch, failed []topology.Component, a int) []bool {
	e.checkHost(a)
	if sc == nil {
		sc = e.NewScratch()
	}
	sc.mark(failed)
	e.bfs(sc, a, -1)
	out := make([]bool, e.f.Hosts())
	for h := range out {
		out[h] = sc.visited[h] == sc.epoch
	}
	out[a] = true
	sc.unmark(failed)
	return out
}

func (e *FabricEvaluator) checkHost(h int) {
	if h < 0 || h >= e.f.Hosts() {
		panic(fmt.Sprintf("conn: host %d out of range [0,%d)", h, e.f.Hosts()))
	}
}
