package conn

import (
	"testing"

	"drsnet/internal/rng"
	"drsnet/internal/topology"
)

// On a dual-rail fabric the FabricEvaluator must agree exactly with
// the closed-form dual-rail Evaluator, for every pair, across random
// failure scenarios.
func TestFabricMatchesDualRailEvaluator(t *testing.T) {
	for _, nodes := range []int{3, 5, 9} {
		cl := topology.Dual(nodes)
		dual, err := NewEvaluator(cl)
		if err != nil {
			t.Fatal(err)
		}
		fab, err := topology.FromCluster(cl)
		if err != nil {
			t.Fatal(err)
		}
		fe, err := NewFabricEvaluator(fab)
		if err != nil {
			t.Fatal(err)
		}
		sc := fe.NewScratch()
		r := rng.New(42)
		universe := cl.Components()
		for trial := 0; trial < 300; trial++ {
			f := trial % 7
			idxs := make([]int, f)
			r.SampleK(idxs, universe)
			failed := make([]topology.Component, 0, f)
			for _, idx := range idxs {
				failed = append(failed, topology.Component(idx))
			}
			if got, want := fe.AllConnected(sc, failed), dual.AllConnected(failed); got != want {
				t.Fatalf("n=%d trial=%d failed=%v: fabric AllConnected=%v dual=%v",
					nodes, trial, failed, got, want)
			}
			for a := 0; a < nodes; a++ {
				for b := a + 1; b < nodes; b++ {
					got := fe.PairConnected(sc, failed, a, b)
					want := dual.PairConnected(failed, a, b)
					if got != want {
						t.Fatalf("n=%d trial=%d failed=%v pair (%d,%d): fabric=%v dual=%v",
							nodes, trial, failed, a, b, got, want)
					}
				}
			}
		}
	}
}

func TestFabricFatTreeConnectivity(t *testing.T) {
	f, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFabricEvaluator(f)
	if err != nil {
		t.Fatal(err)
	}
	sc := fe.NewScratch()
	if !fe.AllConnected(sc, nil) {
		t.Fatal("healthy fat-tree should be fully connected")
	}
	// Hosts 0 and 1 share edge switch 0 (ToR); failing it cuts them
	// off from everyone, including each other (single-homed hosts).
	tor := f.Switch(0)
	if fe.PairConnected(sc, []topology.Component{tor}, 0, 2) {
		t.Fatal("host 0 should be severed by its ToR failure")
	}
	if fe.PairConnected(sc, []topology.Component{tor}, 0, 1) {
		t.Fatal("hosts 0,1 have no path with their shared ToR down")
	}
	if !fe.PairConnected(sc, []topology.Component{tor}, 2, 15) {
		t.Fatal("other pods should be unaffected by one ToR failure")
	}
	// Failing one aggregation switch leaves pod reachability intact
	// (k/2 = 2 agg switches per pod).
	agg := f.Switch(8) // first agg switch (edge switches are 0..7)
	if !fe.AllConnected(sc, []topology.Component{agg}) {
		t.Fatal("one agg switch down must not partition a k=4 fat-tree")
	}
	// Failing a host's only NIC isolates exactly that host.
	nic := f.NIC(5, 0)
	reach := fe.HostsReachable(sc, []topology.Component{nic}, 0)
	for h, ok := range reach {
		want := h != 5
		if ok != want {
			t.Fatalf("with host 5's NIC down, reach[%d]=%v want %v", h, ok, want)
		}
	}
}

func TestFabricBCubeHostRelay(t *testing.T) {
	f, err := topology.BCube(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFabricEvaluator(f)
	if err != nil {
		t.Fatal(err)
	}
	sc := fe.NewScratch()
	if !fe.AllConnected(sc, nil) {
		t.Fatal("healthy BCube should be fully connected")
	}
	// Hosts 0 and 5 share no switch (different rows and columns); the
	// path must relay through an intermediate host. Fail host 0's
	// level-0 switch and host 5's level-1 switch: still connected via
	// relays (e.g. 0 → sw(4+0) → host 4 → sw(1) → host 5).
	failed := []topology.Component{f.Switch(0), f.Switch(4 + 1)}
	if !fe.PairConnected(sc, failed, 0, 5) {
		t.Fatal("BCube should relay through hosts around failed switches")
	}
	// Failing both of host 0's switches isolates it.
	failed = []topology.Component{f.Switch(0), f.Switch(4 + 0)}
	if fe.PairConnected(sc, failed, 0, 5) {
		t.Fatal("host 0 with both switches down should be isolated")
	}
	// Failing both of host 0's NICs isolates it too.
	failed = []topology.Component{f.NIC(0, 0), f.NIC(0, 1)}
	if fe.PairConnected(sc, failed, 0, 1) {
		t.Fatal("host 0 with both NICs down should be isolated")
	}
}

// Queries through a reused scratch must not allocate.
func TestFabricQueriesZeroAlloc(t *testing.T) {
	f, err := topology.FatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFabricEvaluator(f)
	if err != nil {
		t.Fatal(err)
	}
	sc := fe.NewScratch()
	failed := []topology.Component{f.Switch(0), f.TrunkComp(3), f.NIC(9, 0)}
	// Warm the queue capacity.
	fe.PairConnected(sc, failed, 1, 100)
	allocs := testing.AllocsPerRun(100, func() {
		fe.PairConnected(sc, failed, 1, 100)
	})
	if allocs != 0 {
		t.Fatalf("PairConnected allocates %v per run, want 0", allocs)
	}
}
