package core

import (
	"testing"
	"time"

	"drsnet/internal/routing"
)

// The hot paths of the DRS daemon, benchmarked through the public API
// and the simulator so the numbers survive internal refactors. The
// BENCH_core.json baseline at the repo root records these before and
// after the layered decomposition.

// BenchmarkProbeRound measures one full phase-1 round of a 10-node
// dual-rail cluster: 10 daemons × 9 peers × 2 rails probes plus every
// echo reply and its RTT accounting.
func BenchmarkProbeRound(b *testing.B) {
	cfg := DefaultConfig()
	c := newCluster(b, 10, cfg)
	defer c.stop()
	c.runFor(2 * time.Second) // settle: every link measured
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.runFor(cfg.ProbeInterval)
	}
}

// BenchmarkSendDataDirect measures the steady-state data path: frame
// build, direct-route forward, simulated delivery.
func BenchmarkSendDataDirect(b *testing.B) {
	c := newCluster(b, 4, DefaultConfig())
	defer c.stop()
	c.runFor(2 * time.Second)
	payload := []byte("benchmark payload")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.daemons[0].SendData(1, payload); err != nil {
			b.Fatal(err)
		}
		c.runFor(50 * time.Microsecond)
	}
}

// BenchmarkRelayForward measures the relay data path: after a
// cross-rail failure, every 0→1 datagram crosses node 2's forwarding
// code (TTL decrement, next-hop selection, re-send).
func BenchmarkRelayForward(b *testing.B) {
	cfg := DefaultConfig()
	c := newCluster(b, 3, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	cl := c.net.Cluster()
	c.net.Fail(cl.NIC(0, 0))
	c.net.Fail(cl.NIC(1, 1))
	c.runFor(time.Duration(cfg.MissThreshold+3) * cfg.ProbeInterval)
	if rt := c.daemons[0].RouteTo(1); rt.Kind != RouteRelay {
		b.Fatalf("route = %+v, want relay", rt)
	}
	payload := []byte("benchmark payload")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.daemons[0].SendData(1, payload); err != nil {
			b.Fatal(err)
		}
		c.runFor(50 * time.Microsecond)
	}
}

// BenchmarkQueryOfferChurn measures phase-2 control processing: node 0
// receives a stream of distinct route queries (dedupe miss each time)
// and answers each with an offer.
func BenchmarkQueryOfferChurn(b *testing.B) {
	c := newCluster(b, 3, DefaultConfig())
	defer c.stop()
	c.runFor(2 * time.Second)
	before := c.daemons[0].Metrics().Counter(routing.CtrOffersSent).Value()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := routeQuery{Origin: 1, Target: 2, Seq: uint32(i + 1), TTL: 1}
		payload := routing.Envelope(routing.ProtoControl, marshalQuery(q))
		if err := c.net.Send(1, 0, 0, payload); err != nil {
			b.Fatal(err)
		}
		c.runFor(time.Millisecond)
	}
	b.StopTimer()
	if got := c.daemons[0].Metrics().Counter(routing.CtrOffersSent).Value(); got == before {
		b.Fatal("no offers sent — benchmark not exercising the offer path")
	}
}
