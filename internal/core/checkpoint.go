package core

import (
	"fmt"
	"time"

	"drsnet/internal/trace"
)

// Checkpoint is a daemon's warm-start image: everything a restarting
// daemon can legitimately reuse from its previous life — the route
// table, the membership view, and the smoothed RTT estimates that
// seed the adaptive probe deadlines. It is plain serializable data
// (a real deployment would persist it across the process crash); the
// cluster runtime takes one at crash time when the scenario asks for
// a warm restart. Flap-damping penalties are deliberately not
// checkpointed: a reboot clears them, the same way a replaced router
// starts with a clean reputation.
type Checkpoint struct {
	// Node is the daemon the checkpoint belongs to; restoring it on
	// any other node is rejected.
	Node int `json:"node"`
	// Incarnation is the life the checkpoint was taken in. The
	// restoring daemon must run a strictly newer incarnation.
	Incarnation uint32 `json:"incarnation"`
	// TakenAt is the simulated instant of the crash.
	TakenAt time.Duration `json:"takenAt"`
	// Peers holds the per-peer state, in ascending peer order.
	Peers []PeerState `json:"peers,omitempty"`
}

// PeerState is the checkpointed view of one monitored peer.
type PeerState struct {
	Peer   int  `json:"peer"`
	Static bool `json:"static,omitempty"`
	// LastHeard is the last time the peer produced valid traffic.
	LastHeard time.Duration `json:"lastHeard"`
	// Incarnation is the peer's last known incarnation (0 = unknown).
	Incarnation uint32 `json:"incarnation,omitempty"`
	// Route is the installed route to the peer at crash time.
	Route Route `json:"route"`
	// Rails holds per-rail link state, indexed by rail.
	Rails []RailState `json:"rails"`
}

// RailState is the checkpointed probe state of one (peer, rail) path.
type RailState struct {
	Up      bool          `json:"up"`
	SRTT    time.Duration `json:"srtt,omitempty"`
	RTTVar  time.Duration `json:"rttvar,omitempty"`
	Samples int64         `json:"samples,omitempty"`
}

// Checkpoint captures the daemon's warm-start image at this instant.
// It is safe to call on a running daemon; the runtime calls it at the
// moment of a scripted crash.
func (d *Daemon) Checkpoint() *Checkpoint {
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := &Checkpoint{
		Node:        d.tr.Node(),
		Incarnation: d.cfg.Incarnation,
		TakenAt:     d.clock.Now(),
	}
	for peer := 0; peer < d.links.Nodes(); peer++ {
		if !d.links.Monitored(peer) {
			continue
		}
		ps := PeerState{
			Peer:        peer,
			Static:      d.members.IsStatic(peer),
			LastHeard:   d.members.LastHeard(peer),
			Incarnation: d.members.Incarnation(peer),
			Route:       d.routes.Route(peer),
			Rails:       make([]RailState, d.tr.Rails()),
		}
		for rail := 0; rail < d.tr.Rails(); rail++ {
			st := d.links.State(peer, rail)
			ps.Rails[rail] = RailState{Up: st.Up}
			if rtt, ok := st.RTT(); ok {
				ps.Rails[rail].SRTT = rtt.SRTT
				ps.Rails[rail].RTTVar = rtt.RTTVar
				ps.Rails[rail].Samples = rtt.Samples
			}
		}
		cp.Peers = append(cp.Peers, ps)
	}
	return cp
}

// restoreLocked seeds a freshly built daemon from its previous life's
// checkpoint: link states, RTT estimates, membership marks and routes.
// Restored routes are recorded with SetRoute, not Install — a warm
// restore is not a repair — but each one that differs from the cold
// default emits a route-installed trace event (detail "warm restore"),
// which is what makes warm recovery measurable against cold. Called
// from New before the daemon starts; d.mu is not yet contended.
func (d *Daemon) restoreLocked(cp *Checkpoint) error {
	if cp.Node != d.tr.Node() {
		return fmt.Errorf("core: checkpoint of node %d restored on node %d", cp.Node, d.tr.Node())
	}
	if cp.Incarnation >= d.cfg.Incarnation {
		return fmt.Errorf("core: checkpoint incarnation %d not older than this life's %d",
			cp.Incarnation, d.cfg.Incarnation)
	}
	now := d.clock.Now()
	for _, ps := range cp.Peers {
		if ps.Peer < 0 || ps.Peer >= d.tr.Nodes() || ps.Peer == d.tr.Node() {
			return fmt.Errorf("core: checkpoint peer %d invalid for node %d of %d",
				ps.Peer, d.tr.Node(), d.tr.Nodes())
		}
		if len(ps.Rails) != d.tr.Rails() {
			return fmt.Errorf("core: checkpoint peer %d carries %d rails, cluster has %d",
				ps.Peer, len(ps.Rails), d.tr.Rails())
		}
		if !d.links.Monitored(ps.Peer) {
			if !d.cfg.DynamicMembership {
				continue // peer dropped from the static monitor set
			}
			d.addPeerLocked(ps.Peer, 0)
		}
		if ps.Static {
			d.members.MarkStatic(ps.Peer)
		}
		d.members.Heard(ps.Peer, ps.LastHeard)
		d.members.ObserveIncarnation(ps.Peer, ps.Incarnation)
		for rail, rs := range ps.Rails {
			st := d.links.State(ps.Peer, rail)
			st.Up = rs.Up
			st.SeedRTT(rs.SRTT, rs.RTTVar, rs.Samples)
		}
		rt := ps.Route
		if rt.Kind == RouteNone || rt == d.routes.Route(ps.Peer) {
			continue
		}
		if rt.Rail < 0 || rt.Rail >= d.tr.Rails() || rt.Via < 0 || rt.Via >= d.tr.Nodes() {
			return fmt.Errorf("core: checkpoint route to peer %d malformed", ps.Peer)
		}
		d.routes.SetRoute(ps.Peer, rt)
		d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindRouteInstalled,
			Peer: ps.Peer, Rail: rt.Rail, Detail: fmt.Sprintf("%s via %d (warm restore)", rt.Kind, rt.Via)})
	}
	return nil
}
