package core

import (
	"fmt"
	"time"

	"drsnet/internal/linkmon"
	"drsnet/internal/overload"
	"drsnet/internal/trace"
)

// Config parameterizes a DRS daemon.
type Config struct {
	// ProbeInterval is the period of the phase-1 link-check round.
	// The cost model (internal/costmodel) relates this to cluster
	// size and bandwidth budget. Default 1 s.
	ProbeInterval time.Duration
	// MissThreshold is the number of consecutive unanswered probes
	// after which a link is declared down. Default 2. A threshold of
	// 1 detects fastest but false-positives under frame loss — the
	// miss-threshold ablation bench quantifies the trade.
	MissThreshold int
	// RelayTTL is the rebroadcast depth of route queries. The default
	// of 1 is always sufficient on a dual-rail cluster (a single relay
	// bridges the rails); higher values let discovery cross relay
	// chains on ≥3-rail topologies.
	RelayTTL int
	// QueryTimeout is how long the daemon waits for route offers
	// before giving up (it retries at the next probe round while the
	// destination stays unreachable). Default ProbeInterval/2.
	QueryTimeout time.Duration
	// DataTTL bounds data-plane forwarding hops. Default 4.
	DataTTL int
	// QueueCapacity is the number of datagrams buffered per
	// destination while route discovery is in flight. When the queue
	// is full the oldest datagram is dropped (and counted by the
	// queue.overflow metric) so the freshest traffic survives the
	// wait. Default 16.
	QueueCapacity int
	// Monitor lists the peers this daemon link-checks; nil means all
	// other nodes (the deployed DRS monitors the whole cluster).
	Monitor []int
	// StaggerProbes spreads each round's link checks evenly across
	// the probe interval instead of bursting them at the round start.
	// Detection latency is unchanged (misses are still accounted per
	// round); what changes is the instantaneous load on the shared
	// segments — the difference between a once-a-second frame train
	// and a smooth trickle.
	StaggerProbes bool
	// DynamicMembership switches the daemon from the deployed DRS's
	// static host list to discovery: each round the daemon broadcasts
	// a hello, and any hello it hears adds the sender to its monitored
	// set. Monitor then lists only pre-seeded peers (nil means start
	// empty). An extension beyond the paper.
	DynamicMembership bool
	// PreferLowLatency steers direct routes toward the rail with the
	// lower smoothed probe RTT: each round, a route moves if another
	// healthy rail has been measured at less than half its current
	// rail's SRTT (the 2× hysteresis prevents flapping). The deployed
	// DRS used fixed rail preference; this extension uses the probes
	// the protocol already pays for as a congestion signal.
	PreferLowLatency bool
	// ForgetAfter removes a dynamically learned peer that has been
	// silent on every rail for this long (0 = never forget; static
	// members are never forgotten).
	ForgetAfter time.Duration
	// StrictLinkEvidence restricts link-liveness evidence to round
	// trips: only confirmed replies to our own probes clear misses or
	// raise a rail. By default any traffic heard from a peer also
	// counts — optimistic and fast, but it proves the peer→us
	// direction only, so an asymmetric cut (our frames to the peer
	// vanish while theirs arrive) is masked forever: the peer's own
	// probes keep resetting our miss counter while our data
	// blackholes. Strict evidence lets misses accumulate on the dead
	// tx direction and the route fail over. Membership freshness
	// still counts heard traffic either way.
	StrictLinkEvidence bool
	// FlapDamping holds a recovered (peer, rail) path down, RFC
	// 2439-style, while its flap penalty stays high: each link-down
	// transition charges a penalty that decays exponentially, and a
	// path whose penalty crossed the suppress threshold is not
	// re-trusted on recovery until the penalty decays below the reuse
	// threshold. Damped paths are excluded from route selection and
	// relay offers but keep being probed, so release is prompt once
	// the path genuinely stabilizes. The zero value disables damping
	// (the deployed DRS re-trusted links immediately); enable with
	// linkmon.DefaultDamping() or explicit thresholds. An extension
	// beyond the paper, motivated by gray-failure chaos campaigns.
	FlapDamping linkmon.Damping
	// Incarnation numbers this daemon's life within the crash–restart
	// lifecycle: zero (the default) disables lifecycle tracking and
	// keeps the legacy wire frames, so seeded goldens are unchanged.
	// When ≥ 1 the daemon opens with a rejoin broadcast carrying the
	// incarnation, stamps its hellos and route offers with it, and
	// rejects control frames from peers' previous lives.
	Incarnation uint32
	// Restore warm-starts the daemon from a checkpoint taken by its
	// previous life: routes, membership view and RTT estimates are
	// seeded instead of re-learned. Requires an Incarnation newer than
	// the checkpoint's. nil starts cold.
	Restore *Checkpoint
	// Overload enables the control-plane overload-protection layer:
	// token-bucket budgets on probe retransmits and discovery
	// broadcasts, deterministic jitter on RTO deadlines, hello storm
	// suppression, a prioritized control queue for deferred work, and
	// the degraded-mode governor that pins last-known-good routes when
	// budgets saturate. The zero value disables the layer entirely and
	// keeps seeded goldens byte-identical; enable with
	// overload.Default() or explicit budgets. An extension beyond the
	// paper, motivated by correlated-failure storm campaigns.
	Overload overload.Config
	// AdaptiveRTO replaces the fixed once-per-round probe deadline
	// with a Jacobson/Karels adaptive timeout: each probe arms a timer
	// at srtt + 4·rttvar (clamped, exponentially backed off on
	// consecutive misses) and the miss is counted the moment it
	// expires instead of at the next round. The zero value keeps the
	// classic round-based miss accounting.
	AdaptiveRTO linkmon.RTO
	// Trace, if non-nil, receives protocol events.
	Trace *trace.Log
}

// DefaultConfig returns the deployed defaults.
func DefaultConfig() Config {
	return Config{
		ProbeInterval: time.Second,
		MissThreshold: 2,
		RelayTTL:      1,
		DataTTL:       4,
		QueueCapacity: 16,
	}
}

func (c *Config) normalize(nodes, self int) error {
	if c.ProbeInterval <= 0 {
		return fmt.Errorf("core: probe interval must be positive")
	}
	if c.MissThreshold <= 0 {
		return fmt.Errorf("core: miss threshold must be positive")
	}
	if c.RelayTTL <= 0 {
		return fmt.Errorf("core: relay TTL must be positive")
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = c.ProbeInterval / 2
	}
	if c.QueryTimeout <= 0 {
		return fmt.Errorf("core: query timeout must be positive")
	}
	if c.DataTTL <= 0 {
		c.DataTTL = 4
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 16
	}
	if c.ForgetAfter < 0 {
		return fmt.Errorf("core: negative ForgetAfter")
	}
	if err := c.FlapDamping.Normalize(); err != nil {
		return fmt.Errorf("core: %v", err)
	}
	if err := c.AdaptiveRTO.Normalize(); err != nil {
		return fmt.Errorf("core: %v", err)
	}
	if err := c.Overload.Normalize(); err != nil {
		return fmt.Errorf("core: %v", err)
	}
	if c.Restore != nil && c.Incarnation == 0 {
		return fmt.Errorf("core: warm restore requires a nonzero incarnation")
	}
	if c.Monitor == nil && !c.DynamicMembership {
		for n := 0; n < nodes; n++ {
			if n != self {
				c.Monitor = append(c.Monitor, n)
			}
		}
	}
	seen := make(map[int]bool)
	for _, p := range c.Monitor {
		if p < 0 || p >= nodes || p == self {
			return fmt.Errorf("core: monitored peer %d invalid for node %d of %d", p, self, nodes)
		}
		if seen[p] {
			return fmt.Errorf("core: peer %d monitored twice", p)
		}
		seen[p] = true
	}
	return nil
}
