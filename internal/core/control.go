package core

import (
	"fmt"

	"drsnet/internal/routing"
	"drsnet/internal/trace"
)

// Phase-2 control plane: route queries and offers (relay discovery)
// and the hello/goodbye membership messages.

func (d *Daemon) onControl(rail, src int, body []byte) {
	if len(body) == 0 {
		return
	}
	switch body[0] {
	case msgRouteQuery:
		q, err := unmarshalQuery(body)
		if err != nil {
			return
		}
		d.onQuery(rail, src, q)
	case msgRouteOffer:
		o, err := unmarshalOffer(body)
		if err != nil {
			return
		}
		d.onOffer(rail, o)
	case msgHello:
		d.onHello(rail, src)
	case msgGoodbye:
		d.onGoodbye(src)
	case msgRejoin:
		inc, err := unmarshalRejoin(body)
		if err != nil {
			return
		}
		d.onRejoin(rail, src, inc)
	case msgHelloInc:
		inc, err := unmarshalHelloInc(body)
		if err != nil {
			return
		}
		if !d.admitIncarnation(src, inc) {
			return
		}
		d.onHello(rail, src)
	case msgOfferInc:
		o, inc, err := unmarshalOfferInc(body)
		if err != nil {
			return
		}
		// The stamp is the relay's incarnation: an offer delayed past
		// the relay's next reboot promises a route its current life
		// does not hold.
		if !d.admitIncarnation(int(o.Relay), inc) {
			return
		}
		d.onOffer(rail, o)
	}
}

// onHello learns a peer (dynamic membership) and refreshes liveness.
func (d *Daemon) onHello(rail, src int) {
	if !d.cfg.DynamicMembership || src == d.tr.Node() {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}
	now := d.clock.Now()
	d.members.Heard(src, now)
	if !d.links.Monitored(src) {
		d.addPeerLocked(src, rail)
		d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindRouteInstalled,
			Peer: src, Rail: rail, Detail: "peer discovered (hello)"})
	}
}

// onGoodbye retracts a dynamically learned peer immediately.
func (d *Daemon) onGoodbye(src int) {
	if !d.cfg.DynamicMembership {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped || !d.links.Monitored(src) || d.members.IsStatic(src) {
		return
	}
	d.removePeerLocked(src)
	d.event(trace.Event{At: d.clock.Now(), Node: d.tr.Node(), Kind: trace.KindRouteLost,
		Peer: src, Rail: -1, Detail: "peer left (goodbye)"})
}

func (d *Daemon) onQuery(rail, src int, q routeQuery) {
	self := d.tr.Node()
	origin := int(q.Origin)
	target := int(q.Target)
	if origin == self || origin < 0 || origin >= d.tr.Nodes() ||
		target < 0 || target >= d.tr.Nodes() {
		return
	}
	d.mset.Counter(routing.CtrQueriesRecv).Inc()

	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	now := d.clock.Now()
	if d.routes.SeenRecently(q.Origin, q.Seq, now, 10*d.cfg.ProbeInterval) {
		d.mu.Unlock()
		return
	}

	canOffer := false
	if target == self {
		// The query reached us, so origin↔us works on this rail:
		// offer ourselves; the origin installs a direct route.
		canOffer = true
	} else if d.links.Monitored(target) && d.links.AnyUsable(target) {
		// Only offer relay duty over paths we actually trust: a damped
		// rail would accept the origin's traffic and then refuse to
		// forward it.
		canOffer = true
	} else if rt := d.routes.Route(target); rt.Kind == RouteRelay && rt.Via != origin {
		// We reach the target through our own relay: offering chains
		// discoveries, which is what connects multi-rail topologies
		// where no single server touches both endpoints' rails. The
		// data plane's TTL and its no-bounce-back rule keep stale
		// chains from looping.
		canOffer = true
	}
	ttl := q.TTL
	d.mu.Unlock()

	if canOffer {
		offer := routeOffer{Origin: q.Origin, Target: q.Target, Seq: q.Seq, Relay: uint16(self)}
		body := marshalOffer(offer)
		if d.cfg.Incarnation > 0 {
			body = marshalOfferInc(offer, d.cfg.Incarnation)
		}
		if err := d.tr.Send(rail, origin, routing.Envelope(routing.ProtoControl, body)); err == nil {
			d.mset.Counter(routing.CtrOffersSent).Inc()
			d.event(trace.Event{At: now, Node: self, Kind: trace.KindOfferSent,
				Peer: origin, Rail: rail, Detail: fmt.Sprintf("target=%d", target)})
		}
		return
	}
	// Cannot help directly: extend the search if the query has depth
	// left (multi-rail topologies; a no-op at the default TTL of 1).
	if ttl > 1 {
		q.TTL = ttl - 1
		payload := routing.Envelope(routing.ProtoControl, marshalQuery(q))
		for r := 0; r < d.tr.Rails(); r++ {
			_ = d.tr.Send(r, routing.Broadcast, payload)
		}
	}
}

func (d *Daemon) onOffer(rail int, o routeOffer) {
	self := d.tr.Node()
	if int(o.Origin) != self {
		return // not addressed to us
	}
	target := int(o.Target)
	relay := int(o.Relay)
	if target < 0 || target >= d.tr.Nodes() || relay < 0 || relay >= d.tr.Nodes() {
		return
	}
	d.mset.Counter(routing.CtrOffersRecv).Inc()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}
	q, ok := d.routes.Pending(target)
	if !ok || q.Seq != o.Seq {
		return // stale or unsolicited offer; first offer already won
	}
	now := d.clock.Now()
	if relay == target {
		// The target itself answered: the rail works after all.
		d.installLocked(target, Route{Kind: RouteDirect, Rail: rail, Via: target}, now)
	} else {
		d.installLocked(target, Route{Kind: RouteRelay, Rail: rail, Via: relay}, now)
	}
}
