// Package core implements the Dynamic Routing System (DRS) — the
// paper's primary contribution: a proactive, daemon-based failover
// protocol for server clusters in which every node has one NIC per
// independent network rail (two, in the deployed system).
//
// Each node runs a Daemon that executes the paper's two-stage run
// process:
//
//	Phase 1 (link checks): every probe interval, the daemon sends an
//	ICMP echo request to every monitored host on every rail. A
//	returned echo proves "the hub, wiring, network interface card,
//	device driver, network protocol stack and host kernel are
//	operational" for that path. Consecutive misses mark the link down.
//
//	Phase 2 (answer and fix): the daemon answers peers' echo requests
//	and route queries, and repairs its own routes as failures are
//	found: first by failing over to the second direct rail, and — if
//	no direct link remains — by broadcasting a route query so "some
//	other server is able to act as a router to create a new path
//	between the sender and the proposed recipient."
//
// Because monitoring is continuous, the failure is usually discovered
// and the replacement route installed within a TCP retransmission
// interval, so applications never see the outage — the property the
// drsim experiment measures against the reactive baseline.
//
// The Daemon itself is a thin composition of the repository's protocol
// layers: linkmon schedules the rounds and keeps per-(peer, rail)
// probe and RTT state, routetable holds routes, repairs and the relay
// discovery lifecycle, dataplane builds, queues and polices data
// frames, membership tracks who belongs to the cluster, and
// routing/wire encodes everything that crosses the network. This file
// holds only the orchestration: what a probe means, when a route is
// repaired, how discovery is answered.
//
// The daemon is transport-agnostic (routing.Transport / routing.Clock)
// and runs unmodified over the deterministic packet simulator and over
// real UDP sockets.
package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"drsnet/internal/core/membership"
	"drsnet/internal/dataplane"
	"drsnet/internal/icmp"
	"drsnet/internal/linkmon"
	"drsnet/internal/metrics"
	"drsnet/internal/overload"
	"drsnet/internal/routetable"
	"drsnet/internal/routing"
	"drsnet/internal/trace"
)

// The route vocabulary is defined by internal/routetable and re-
// exported here: the daemon's public API predates the layering, and
// every consumer (runtime, experiments, examples) speaks these names.
type (
	// RouteKind classifies an installed route.
	RouteKind = routetable.Kind
	// Route describes the daemon's current path to one destination.
	Route = routetable.Route
	// Repair records one completed route repair, the unit of the
	// recovery-latency experiments.
	Repair = routetable.Repair
	// RTTStats is the smoothed round-trip estimate of one monitored
	// path.
	RTTStats = linkmon.RTTStats
)

// Route kinds.
const (
	// RouteNone means the destination is currently unreachable (or
	// discovery is in flight).
	RouteNone = routetable.None
	// RouteDirect sends straight to the destination on a rail.
	RouteDirect = routetable.Direct
	// RouteRelay sends through another server that can reach the
	// destination.
	RouteRelay = routetable.Relay
)

// Daemon is one node's DRS instance.
type Daemon struct {
	cfg   Config
	tr    routing.Transport
	clock routing.Clock
	mset  *metrics.Set

	mu      sync.Mutex
	started bool
	stopped bool
	deliver func(src int, data []byte)

	// The protocol layers. All are guarded by mu.
	links   *linkmon.Table      // phase-1 probe state per (peer, rail)
	members *membership.Tracker // static marks + last-heard times
	routes  *routetable.Table   // routes, repairs, discovery lifecycle
	plane   *dataplane.Plane    // data frames + discovery queues

	// Overload protection (all nil/zero unless cfg.Overload.Enabled;
	// guarded by mu). gov is the degraded-mode governor, jitter the
	// per-node deterministic timer spread, ctrlQ the prioritized queue
	// of deferred control intents. pinned marks peers whose
	// last-known-good route was kept while degraded, to re-repair on
	// exit; nextHello is the earliest instant the next membership
	// hello may broadcast.
	gov        *overload.Governor
	jitter     *overload.Jitter
	ctrlQ      *dataplane.ControlQueue
	pinned     map[int]bool
	nextHello  time.Duration
	drainArmed bool

	// frameBuf is scratch for frames sent immediately (never queued):
	// the simulated wire copies payloads on Send, so the buffer is
	// free for reuse as soon as Send returns. Guarded by mu.
	frameBuf []byte

	rounds *linkmon.Rounds // probe-round driver (own locking)
}

// New creates a DRS daemon for the node tr is attached to.
func New(tr routing.Transport, clock routing.Clock, cfg Config) (*Daemon, error) {
	if tr == nil || clock == nil {
		return nil, fmt.Errorf("core: nil transport or clock")
	}
	if err := cfg.normalize(tr.Nodes(), tr.Node()); err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:     cfg,
		tr:      tr,
		clock:   clock,
		mset:    metrics.NewSet(),
		links:   linkmon.NewTable(tr.Nodes(), tr.Rails()),
		members: membership.New(tr.Nodes()),
		routes:  routetable.New(tr.Nodes()),
		rounds:  linkmon.NewRounds(clock),
	}
	d.plane = dataplane.New(tr.Node(), tr.Nodes(), cfg.DataTTL, cfg.QueueCapacity,
		d.mset.Counter(routing.CtrQueueOverflow))
	if ov := cfg.Overload; ov.Enabled {
		d.links.SetRetransmitBudget(overload.NewBucket(ov.ProbeRate, ov.ProbeBurst))
		d.routes.SetQueryBudget(overload.NewBucket(ov.QueryRate, ov.QueryBurst))
		d.gov = overload.NewGovernor(ov)
		// The jitter stream is seeded per (node, incarnation): every
		// node draws a distinct deterministic sequence, so a seeded
		// simulation replays bit-identically while lock-stepped timers
		// spread out.
		d.jitter = overload.NewJitter(uint64(tr.Node())<<32 | uint64(cfg.Incarnation))
		d.ctrlQ = dataplane.NewControlQueue(ov.QueueCapacity,
			d.mset.Counter(routing.CtrCtrlDeferred),
			[dataplane.NumClasses]*metrics.Counter{
				dataplane.ClassLiveness:  d.mset.Counter(routing.CtrCtrlShedLiveness),
				dataplane.ClassRepair:    d.mset.Counter(routing.CtrCtrlShedRepair),
				dataplane.ClassDiscovery: d.mset.Counter(routing.CtrCtrlShedDiscovery),
			})
		d.pinned = make(map[int]bool)
	}
	for _, p := range cfg.Monitor {
		d.addPeerLocked(p, 0)
		d.members.MarkStatic(p)
	}
	if cfg.Restore != nil {
		if err := d.restoreLocked(cfg.Restore); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// addPeerLocked begins monitoring peer, with its initial direct route
// on rail. Links start optimistically up: the deployed daemon assumes
// health until a check fails. Caller holds d.mu (or is initializing).
func (d *Daemon) addPeerLocked(peer, rail int) {
	if !d.links.Add(peer) {
		return
	}
	d.routes.SetRoute(peer, Route{Kind: RouteDirect, Rail: rail, Via: peer})
	d.members.Heard(peer, d.clock.Now())
}

// removePeerLocked forgets a dynamically learned peer entirely.
func (d *Daemon) removePeerLocked(peer int) {
	if !d.links.Monitored(peer) || d.members.IsStatic(peer) {
		return
	}
	d.links.Remove(peer)
	d.plane.Discard(peer)
	d.routes.Drop(peer)
	// Routes relaying through the departed peer die with it: without
	// this, data frames keep being forwarded into the dead relay until
	// its own links finally time out.
	d.purgeRelaysViaLocked(peer, d.clock.Now())
}

// Peers returns the currently monitored peers in ascending order.
func (d *Daemon) Peers() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []int
	for p := 0; p < d.links.Nodes(); p++ {
		if d.links.Monitored(p) {
			out = append(out, p)
		}
	}
	return out
}

// Start installs the receiver and begins the probe loop.
func (d *Daemon) Start() error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return fmt.Errorf("core: daemon started twice")
	}
	d.started = true
	d.mu.Unlock()
	d.tr.SetReceiver(d.onFrame)
	if d.cfg.Incarnation > 0 {
		// Open with the rejoin handshake: peers that knew a previous
		// life purge routes relaying through it before the first probe
		// round even runs.
		membership.Rejoin(d.tr, d.cfg.Incarnation)
	}
	d.rounds.Run(d.cfg.ProbeInterval, d.probeRound)
	return nil
}

// Stop halts the daemon.
func (d *Daemon) Stop() {
	d.mu.Lock()
	d.stopped = true
	cancels := d.routes.Cancels()
	d.mu.Unlock()
	d.rounds.Stop()
	for _, c := range cancels {
		if c != nil {
			c()
		}
	}
}

// Leave announces departure to the cluster (dynamic membership) and
// stops the daemon.
func (d *Daemon) Leave() {
	if d.cfg.DynamicMembership {
		membership.Goodbye(d.tr)
	}
	d.Stop()
}

// SetDeliverFunc installs the application receive callback.
func (d *Daemon) SetDeliverFunc(fn func(src int, data []byte)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.deliver = fn
}

// Metrics exposes the daemon's counters.
func (d *Daemon) Metrics() *metrics.Set { return d.mset }

// LinkUp reports the monitored state of the (peer, rail) path.
func (d *Daemon) LinkUp(peer, rail int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.links.State(peer, rail)
	return st != nil && st.Up
}

// RouteTo returns the current route to peer.
func (d *Daemon) RouteTo(peer int) Route {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.routes.Route(peer)
}

// Repairs returns the completed route repairs in order.
func (d *Daemon) Repairs() []Repair {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.routes.Repairs()
}

// RTT returns the smoothed round-trip estimate for the (peer, rail)
// path; ok is false when the peer is unmonitored or no probe has
// completed yet.
func (d *Daemon) RTT(peer, rail int) (RTTStats, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.links.State(peer, rail)
	if st == nil {
		return RTTStats{}, false
	}
	return st.RTT()
}

// ---------------------------------------------------------------
// Phase 2: answer requests, fix problems (frame dispatch).

func (d *Daemon) onFrame(rail, src int, payload []byte) {
	proto, body, err := routing.SplitEnvelope(payload)
	if err != nil {
		return
	}
	switch proto {
	case routing.ProtoICMP:
		d.onICMP(rail, src, body)
	case routing.ProtoControl:
		d.onControl(rail, src, body)
	case routing.ProtoData:
		d.onData(rail, src, body)
	}
}

func (d *Daemon) onICMP(rail, src int, body []byte) {
	echo, err := icmp.Unmarshal(body)
	if err != nil {
		return
	}
	if echo.Request {
		// Phase 2: answer the peer's link check. Hearing a request
		// proves the src→us direction of this rail works; whether that
		// counts as link-liveness evidence is StrictLinkEvidence's
		// call (see noteAlive).
		reply, err := icmp.Reply(echo)
		if err == nil {
			_ = d.tr.Send(rail, src, routing.Envelope(routing.ProtoICMP, reply.Marshal()))
		}
		d.noteAlive(rail, src)
		return
	}
	// Echo reply: must match our outstanding probe for (src, rail).
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped || !d.links.Monitored(src) {
		return
	}
	if echo.ID != uint16(d.tr.Node()) {
		return // not ours
	}
	st, ok := d.links.Confirm(src, rail, echo.Seq)
	if !ok {
		return // stale reply
	}
	now := d.clock.Now()
	d.members.Heard(src, now)
	d.mset.Counter(routing.CtrProbeReplies).Inc()
	if len(echo.Data) >= 8 {
		if sentAt := time.Duration(binary.BigEndian.Uint64(echo.Data[:8])); sentAt <= now {
			st.ObserveRTT(now - sentAt)
		}
	}
	if !st.Up {
		d.markUpLocked(src, rail, now)
	}
}

// noteAlive records liveness evidence from valid traffic heard from
// src on rail. The peer's process is certainly alive, so membership is
// always refreshed. What it proves about the *link* is subtler: heard
// traffic vouches for the src→us direction only, and under an
// asymmetric partition our own frames to src may be vanishing while
// theirs arrive. By default (the original, optimistic behavior) the
// evidence is credited against probe misses and may re-raise the rail
// — cheap fast recovery, but it masks one-way cuts. With
// StrictLinkEvidence set, link state moves solely on round-trip
// evidence — confirmed replies to our own probes — so a dead tx
// direction accumulates misses and fails over no matter how much the
// peer is heard.
func (d *Daemon) noteAlive(rail, src int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped || !d.links.Monitored(src) {
		return
	}
	d.members.Heard(src, d.clock.Now())
	if d.cfg.StrictLinkEvidence {
		return
	}
	st := d.links.State(src, rail)
	st.Misses = 0
	if !st.Up {
		d.markUpLocked(src, rail, d.clock.Now())
	}
}

func (d *Daemon) event(e trace.Event) {
	if d.cfg.Trace != nil {
		d.cfg.Trace.Append(e)
	}
}

// tracing reports whether a trace sink is installed. Hot paths guard
// event construction with it so Detail strings are only formatted when
// someone will read them.
func (d *Daemon) tracing() bool { return d.cfg.Trace != nil }

var _ routing.Router = (*Daemon)(nil)
