// Package core implements the Dynamic Routing System (DRS) — the
// paper's primary contribution: a proactive, daemon-based failover
// protocol for server clusters in which every node has one NIC per
// independent network rail (two, in the deployed system).
//
// Each node runs a Daemon that executes the paper's two-stage run
// process:
//
//	Phase 1 (link checks): every probe interval, the daemon sends an
//	ICMP echo request to every monitored host on every rail. A
//	returned echo proves "the hub, wiring, network interface card,
//	device driver, network protocol stack and host kernel are
//	operational" for that path. Consecutive misses mark the link down.
//
//	Phase 2 (answer and fix): the daemon answers peers' echo requests
//	and route queries, and repairs its own routes as failures are
//	found: first by failing over to the second direct rail, and — if
//	no direct link remains — by broadcasting a route query so "some
//	other server is able to act as a router to create a new path
//	between the sender and the proposed recipient."
//
// Because monitoring is continuous, the failure is usually discovered
// and the replacement route installed within a TCP retransmission
// interval, so applications never see the outage — the property the
// drsim experiment measures against the reactive baseline.
//
// The daemon is transport-agnostic (routing.Transport / routing.Clock)
// and runs unmodified over the deterministic packet simulator and over
// real UDP sockets.
package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"drsnet/internal/icmp"
	"drsnet/internal/metrics"
	"drsnet/internal/routing"
	"drsnet/internal/trace"
)

// Config parameterizes a DRS daemon.
type Config struct {
	// ProbeInterval is the period of the phase-1 link-check round.
	// The cost model (internal/costmodel) relates this to cluster
	// size and bandwidth budget. Default 1 s.
	ProbeInterval time.Duration
	// MissThreshold is the number of consecutive unanswered probes
	// after which a link is declared down. Default 2. A threshold of
	// 1 detects fastest but false-positives under frame loss — the
	// miss-threshold ablation bench quantifies the trade.
	MissThreshold int
	// RelayTTL is the rebroadcast depth of route queries. The default
	// of 1 is always sufficient on a dual-rail cluster (a single relay
	// bridges the rails); higher values let discovery cross relay
	// chains on ≥3-rail topologies.
	RelayTTL int
	// QueryTimeout is how long the daemon waits for route offers
	// before giving up (it retries at the next probe round while the
	// destination stays unreachable). Default ProbeInterval/2.
	QueryTimeout time.Duration
	// DataTTL bounds data-plane forwarding hops. Default 4.
	DataTTL int
	// QueueCapacity is the number of datagrams buffered per
	// destination while route discovery is in flight. Default 16.
	QueueCapacity int
	// Monitor lists the peers this daemon link-checks; nil means all
	// other nodes (the deployed DRS monitors the whole cluster).
	Monitor []int
	// StaggerProbes spreads each round's link checks evenly across
	// the probe interval instead of bursting them at the round start.
	// Detection latency is unchanged (misses are still accounted per
	// round); what changes is the instantaneous load on the shared
	// segments — the difference between a once-a-second frame train
	// and a smooth trickle.
	StaggerProbes bool
	// DynamicMembership switches the daemon from the deployed DRS's
	// static host list to discovery: each round the daemon broadcasts
	// a hello, and any hello it hears adds the sender to its monitored
	// set. Monitor then lists only pre-seeded peers (nil means start
	// empty). An extension beyond the paper.
	DynamicMembership bool
	// PreferLowLatency steers direct routes toward the rail with the
	// lower smoothed probe RTT: each round, a route moves if another
	// healthy rail has been measured at less than half its current
	// rail's SRTT (the 2× hysteresis prevents flapping). The deployed
	// DRS used fixed rail preference; this extension uses the probes
	// the protocol already pays for as a congestion signal.
	PreferLowLatency bool
	// ForgetAfter removes a dynamically learned peer that has been
	// silent on every rail for this long (0 = never forget; static
	// members are never forgotten).
	ForgetAfter time.Duration
	// Trace, if non-nil, receives protocol events.
	Trace *trace.Log
}

// DefaultConfig returns the deployed defaults.
func DefaultConfig() Config {
	return Config{
		ProbeInterval: time.Second,
		MissThreshold: 2,
		RelayTTL:      1,
		DataTTL:       4,
		QueueCapacity: 16,
	}
}

func (c *Config) normalize(nodes, self int) error {
	if c.ProbeInterval <= 0 {
		return fmt.Errorf("core: probe interval must be positive")
	}
	if c.MissThreshold <= 0 {
		return fmt.Errorf("core: miss threshold must be positive")
	}
	if c.RelayTTL <= 0 {
		return fmt.Errorf("core: relay TTL must be positive")
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = c.ProbeInterval / 2
	}
	if c.QueryTimeout <= 0 {
		return fmt.Errorf("core: query timeout must be positive")
	}
	if c.DataTTL <= 0 {
		c.DataTTL = 4
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 16
	}
	if c.ForgetAfter < 0 {
		return fmt.Errorf("core: negative ForgetAfter")
	}
	if c.Monitor == nil && !c.DynamicMembership {
		for n := 0; n < nodes; n++ {
			if n != self {
				c.Monitor = append(c.Monitor, n)
			}
		}
	}
	seen := make(map[int]bool)
	for _, p := range c.Monitor {
		if p < 0 || p >= nodes || p == self {
			return fmt.Errorf("core: monitored peer %d invalid for node %d of %d", p, self, nodes)
		}
		if seen[p] {
			return fmt.Errorf("core: peer %d monitored twice", p)
		}
		seen[p] = true
	}
	return nil
}

// RouteKind classifies an installed route.
type RouteKind int

// Route kinds.
const (
	// RouteNone means the destination is currently unreachable (or
	// discovery is in flight).
	RouteNone RouteKind = iota
	// RouteDirect sends straight to the destination on a rail.
	RouteDirect
	// RouteRelay sends through another server that can reach the
	// destination.
	RouteRelay
)

// String implements fmt.Stringer.
func (k RouteKind) String() string {
	switch k {
	case RouteNone:
		return "none"
	case RouteDirect:
		return "direct"
	case RouteRelay:
		return "relay"
	default:
		return fmt.Sprintf("RouteKind(%d)", int(k))
	}
}

// Route describes the daemon's current path to one destination.
type Route struct {
	Kind RouteKind
	Rail int // rail the first hop uses
	Via  int // next-hop node (== destination for direct routes)
}

// Repair records one completed route repair, the unit of the
// recovery-latency experiments.
type Repair struct {
	Peer       int
	LostAt     time.Duration // when the previous route became unusable
	RepairedAt time.Duration // when the replacement was installed
	Route      Route         // the replacement
}

// Latency returns the repair latency.
func (r Repair) Latency() time.Duration { return r.RepairedAt - r.LostAt }

// linkState tracks phase-1 monitoring of one (peer, rail) path.
type linkState struct {
	up         bool
	misses     int
	pending    bool
	pendingSeq uint16
	// RTT estimation (Jacobson/Karels) from probe timestamps.
	srtt    time.Duration
	rttvar  time.Duration
	samples int64
}

// observeRTT folds one probe round-trip sample into the smoothed
// estimate: srtt ← srtt + (rtt−srtt)/8, rttvar ← rttvar + (|err|−rttvar)/4.
func (st *linkState) observeRTT(rtt time.Duration) {
	if rtt < 0 {
		return
	}
	st.samples++
	if st.samples == 1 {
		st.srtt = rtt
		st.rttvar = rtt / 2
		return
	}
	err := rtt - st.srtt
	if err < 0 {
		err = -err
	}
	st.srtt += (rtt - st.srtt) / 8
	st.rttvar += (err - st.rttvar) / 4
}

// RTTStats is the smoothed round-trip estimate of one monitored path.
type RTTStats struct {
	// SRTT is the smoothed round-trip time; RTTVar its mean deviation.
	SRTT, RTTVar time.Duration
	// Samples is the number of probe round trips measured.
	Samples int64
}

type pendingQuery struct {
	seq    uint32
	lostAt time.Duration
	cancel func() bool
}

// Daemon is one node's DRS instance.
type Daemon struct {
	cfg   Config
	tr    routing.Transport
	clock routing.Clock
	mset  *metrics.Set

	mu      sync.Mutex
	started bool
	stopped bool
	deliver func(src int, data []byte)

	// link[peer][rail]; nil slice for unmonitored peers.
	link [][]linkState
	// static[peer] marks pre-configured members, which are never
	// forgotten by dynamic membership.
	static []bool
	// lastHeard[peer] is the last time any valid traffic arrived from
	// the peer (dynamic-membership bookkeeping).
	lastHeard []time.Duration
	// routes[peer]
	routes []Route
	// probeSeq is the global echo sequence counter.
	probeSeq uint16
	// querySeq numbers this daemon's route discoveries.
	querySeq uint32
	// pending route discoveries by target.
	pending map[int]*pendingQuery
	// seenQueries dedupes (origin, seq) across rails/rebroadcasts.
	seenQueries map[uint64]time.Duration
	// queued data awaiting a route, by destination.
	queued  map[int][][]byte
	dataSeq uint32
	repairs []Repair

	probeCancel func() bool
}

// New creates a DRS daemon for the node tr is attached to.
func New(tr routing.Transport, clock routing.Clock, cfg Config) (*Daemon, error) {
	if tr == nil || clock == nil {
		return nil, fmt.Errorf("core: nil transport or clock")
	}
	if err := cfg.normalize(tr.Nodes(), tr.Node()); err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:         cfg,
		tr:          tr,
		clock:       clock,
		mset:        metrics.NewSet(),
		link:        make([][]linkState, tr.Nodes()),
		static:      make([]bool, tr.Nodes()),
		lastHeard:   make([]time.Duration, tr.Nodes()),
		routes:      make([]Route, tr.Nodes()),
		pending:     make(map[int]*pendingQuery),
		seenQueries: make(map[uint64]time.Duration),
		queued:      make(map[int][][]byte),
	}
	for _, p := range cfg.Monitor {
		d.addPeerLocked(p, 0)
		d.static[p] = true
	}
	return d, nil
}

// addPeerLocked begins monitoring peer, with its initial direct route
// on rail. Links start optimistically up: the deployed daemon assumes
// health until a check fails. Caller holds d.mu (or is initializing).
func (d *Daemon) addPeerLocked(peer, rail int) {
	if d.link[peer] != nil {
		return
	}
	d.link[peer] = make([]linkState, d.tr.Rails())
	for r := range d.link[peer] {
		d.link[peer][r] = linkState{up: true}
	}
	d.routes[peer] = Route{Kind: RouteDirect, Rail: rail, Via: peer}
	d.lastHeard[peer] = d.clock.Now()
}

// removePeerLocked forgets a dynamically learned peer entirely.
func (d *Daemon) removePeerLocked(peer int) {
	if d.link[peer] == nil || d.static[peer] {
		return
	}
	d.link[peer] = nil
	d.routes[peer] = Route{}
	delete(d.queued, peer)
	if q, ok := d.pending[peer]; ok {
		if q.cancel != nil {
			q.cancel()
		}
		delete(d.pending, peer)
	}
}

// Peers returns the currently monitored peers in ascending order.
func (d *Daemon) Peers() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []int
	for p := range d.link {
		if d.link[p] != nil {
			out = append(out, p)
		}
	}
	return out
}

// Start installs the receiver and begins the probe loop.
func (d *Daemon) Start() error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return fmt.Errorf("core: daemon started twice")
	}
	d.started = true
	d.mu.Unlock()
	d.tr.SetReceiver(d.onFrame)
	d.probeRound()
	return nil
}

// Stop halts the daemon.
func (d *Daemon) Stop() {
	d.mu.Lock()
	d.stopped = true
	cancels := []func() bool{d.probeCancel}
	for _, q := range d.pending {
		cancels = append(cancels, q.cancel)
	}
	d.mu.Unlock()
	for _, c := range cancels {
		if c != nil {
			c()
		}
	}
}

// SetDeliverFunc installs the application receive callback.
func (d *Daemon) SetDeliverFunc(fn func(src int, data []byte)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.deliver = fn
}

// Metrics exposes the daemon's counters.
func (d *Daemon) Metrics() *metrics.Set { return d.mset }

// LinkUp reports the monitored state of the (peer, rail) path.
func (d *Daemon) LinkUp(peer, rail int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.link[peer] == nil {
		return false
	}
	return d.link[peer][rail].up
}

// RouteTo returns the current route to peer.
func (d *Daemon) RouteTo(peer int) Route {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.routes[peer]
}

// Repairs returns the completed route repairs in order.
func (d *Daemon) Repairs() []Repair {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Repair(nil), d.repairs...)
}

// ---------------------------------------------------------------
// Phase 1: link checks.

// probeRound runs one phase-1 round: account the previous round's
// misses, then probe every monitored peer on every rail.
func (d *Daemon) probeRound() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	now := d.clock.Now()
	// Dynamic membership: forget peers that have been silent too long
	// before probing them again.
	if d.cfg.DynamicMembership && d.cfg.ForgetAfter > 0 {
		for peer := range d.link {
			if d.link[peer] == nil || d.static[peer] {
				continue
			}
			if now-d.lastHeard[peer] > d.cfg.ForgetAfter {
				d.removePeerLocked(peer)
				d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindRouteLost,
					Peer: peer, Rail: -1, Detail: "peer forgotten (silent)"})
			}
		}
	}
	if d.cfg.PreferLowLatency {
		d.steerByLatencyLocked(now)
	}
	type probe struct{ peer, rail int }
	var probes []probe
	for peer := range d.link {
		if d.link[peer] == nil {
			continue
		}
		for rail := 0; rail < d.tr.Rails(); rail++ {
			st := &d.link[peer][rail]
			if st.pending {
				st.misses++
				if st.up && st.misses >= d.cfg.MissThreshold {
					d.markDownLocked(peer, rail, now)
				}
			}
			d.probeSeq++
			st.pending = true
			st.pendingSeq = d.probeSeq
			probes = append(probes, probe{peer, rail})
		}
	}
	seqs := make(map[probe]uint16, len(probes))
	for _, p := range probes {
		seqs[p] = d.link[p.peer][p.rail].pendingSeq
	}
	self := uint16(d.tr.Node())
	stagger := d.cfg.StaggerProbes && len(probes) > 1
	dynamic := d.cfg.DynamicMembership
	d.mu.Unlock()

	if dynamic {
		// Announce ourselves so unknown peers learn us (and we learn
		// them from their hellos).
		hello := routing.Envelope(routing.ProtoControl, marshalHello())
		for rail := 0; rail < d.tr.Rails(); rail++ {
			_ = d.tr.Send(rail, routing.Broadcast, hello)
		}
	}

	send := func(p probe) {
		// The probe carries its send time; the echoed copy yields an
		// RTT sample with no per-probe state at the sender.
		ts := make([]byte, 8)
		binary.BigEndian.PutUint64(ts, uint64(d.clock.Now()))
		echo := icmp.Echo{Request: true, ID: self, Seq: seqs[p], Data: ts}
		payload := routing.Envelope(routing.ProtoICMP, echo.Marshal())
		if err := d.tr.Send(p.rail, p.peer, payload); err == nil {
			d.mset.Counter(routing.CtrProbesSent).Inc()
		}
	}
	if stagger {
		step := d.cfg.ProbeInterval / time.Duration(len(probes))
		for i, p := range probes {
			p := p
			if i == 0 {
				send(p)
				continue
			}
			d.clock.AfterFunc(time.Duration(i)*step, func() {
				d.mu.Lock()
				stopped := d.stopped
				d.mu.Unlock()
				if !stopped {
					send(p)
				}
			})
		}
	} else {
		for _, p := range probes {
			send(p)
		}
	}

	d.mu.Lock()
	if !d.stopped {
		d.probeCancel = d.clock.AfterFunc(d.cfg.ProbeInterval, d.probeRound)
	}
	d.mu.Unlock()
}

// steerByLatencyLocked moves direct routes to a clearly faster rail.
// A move needs both rails measured (≥ minSteerSamples each) and the
// candidate's SRTT below half the current rail's — hysteresis that
// keeps routes stable under ordinary jitter. Caller holds d.mu.
func (d *Daemon) steerByLatencyLocked(now time.Duration) {
	const minSteerSamples = 8
	for peer := range d.link {
		if d.link[peer] == nil {
			continue
		}
		rt := d.routes[peer]
		if rt.Kind != RouteDirect {
			continue
		}
		cur := d.link[peer][rt.Rail]
		if !cur.up || cur.samples < minSteerSamples {
			continue
		}
		best := rt.Rail
		bestRTT := cur.srtt
		for rail := 0; rail < d.tr.Rails(); rail++ {
			if rail == rt.Rail {
				continue
			}
			st := d.link[peer][rail]
			if st.up && st.samples >= minSteerSamples && st.srtt*2 < cur.srtt && st.srtt < bestRTT {
				best = rail
				bestRTT = st.srtt
			}
		}
		if best != rt.Rail {
			d.installLocked(peer, Route{Kind: RouteDirect, Rail: best, Via: peer}, now)
		}
	}
}

// markDownLocked transitions a link to down and repairs routes that
// depended on it. Caller holds d.mu.
func (d *Daemon) markDownLocked(peer, rail int, now time.Duration) {
	st := &d.link[peer][rail]
	if !st.up {
		return
	}
	st.up = false
	d.mset.Counter(routing.CtrLinkDown).Inc()
	d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindLinkDown,
		Peer: peer, Rail: rail})
	// Repair the peer's own route if it used this rail directly.
	if rt := d.routes[peer]; rt.Kind == RouteDirect && rt.Rail == rail {
		d.repairLocked(peer, now)
	}
	// Relay routes through this peer survive while any rail to the
	// relay works; once every rail to the relay is down, they die too.
	if !d.anyLinkUpLocked(peer) {
		for dst := range d.routes {
			if rt := d.routes[dst]; rt.Kind == RouteRelay && rt.Via == peer {
				d.repairLocked(dst, now)
			}
		}
	}
}

// markUpLocked transitions a link to up and upgrades routes.
func (d *Daemon) markUpLocked(peer, rail int, now time.Duration) {
	st := &d.link[peer][rail]
	if st.up {
		return
	}
	st.up = true
	d.mset.Counter(routing.CtrLinkUp).Inc()
	d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindLinkUp,
		Peer: peer, Rail: rail})
	// A live direct link always beats a relay, and beats a direct
	// route on a dead rail.
	rt := d.routes[peer]
	needUpgrade := rt.Kind != RouteDirect || !d.link[peer][rt.Rail].up
	if needUpgrade {
		d.installLocked(peer, Route{Kind: RouteDirect, Rail: rail, Via: peer}, now)
	}
}

func (d *Daemon) anyLinkUpLocked(peer int) bool {
	if d.link[peer] == nil {
		return false
	}
	for rail := range d.link[peer] {
		if d.link[peer][rail].up {
			return true
		}
	}
	return false
}

// repairLocked replaces the route to peer: second direct rail first,
// then relay discovery.
func (d *Daemon) repairLocked(peer int, now time.Duration) {
	for rail := 0; rail < d.tr.Rails(); rail++ {
		if d.link[peer][rail].up {
			d.installLocked(peer, Route{Kind: RouteDirect, Rail: rail, Via: peer}, now)
			return
		}
	}
	// No direct path remains: note the loss and ask the cluster.
	if d.routes[peer].Kind != RouteNone {
		d.routes[peer] = Route{Kind: RouteNone}
		d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindRouteLost, Peer: peer, Rail: -1})
	}
	d.startQueryLocked(peer, now)
}

// installLocked records a new route, completes any pending discovery,
// logs the repair, and flushes queued traffic.
func (d *Daemon) installLocked(peer int, rt Route, now time.Duration) {
	prev := d.routes[peer]
	if prev == rt {
		return
	}
	d.routes[peer] = rt
	d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindRouteInstalled,
		Peer: peer, Rail: rt.Rail, Detail: fmt.Sprintf("%s via %d", rt.Kind, rt.Via)})
	d.mset.Counter(routing.CtrRepairs).Inc()

	lostAt := now
	if q, ok := d.pending[peer]; ok {
		lostAt = q.lostAt
		if q.cancel != nil {
			q.cancel()
		}
		delete(d.pending, peer)
	}
	d.repairs = append(d.repairs, Repair{Peer: peer, LostAt: lostAt, RepairedAt: now, Route: rt})

	if queue := d.queued[peer]; len(queue) > 0 {
		delete(d.queued, peer)
		// Flush outside the lock is unnecessary: transports never
		// call back inline into SendData paths, and the simulator
		// delivers asynchronously.
		for _, frame := range queue {
			d.forwardLocked(peer, frame)
		}
	}
}

// startQueryLocked begins (or refreshes) relay discovery for peer.
func (d *Daemon) startQueryLocked(peer int, now time.Duration) {
	if _, ok := d.pending[peer]; ok {
		return // one discovery in flight per target
	}
	d.querySeq++
	q := &pendingQuery{seq: d.querySeq, lostAt: now}
	d.pending[peer] = q
	query := routeQuery{
		Origin: uint16(d.tr.Node()),
		Target: uint16(peer),
		Seq:    q.seq,
		TTL:    uint8(d.cfg.RelayTTL),
	}
	payload := routing.Envelope(routing.ProtoControl, marshalQuery(query))
	for rail := 0; rail < d.tr.Rails(); rail++ {
		if err := d.tr.Send(rail, routing.Broadcast, payload); err == nil {
			d.mset.Counter(routing.CtrQueriesSent).Inc()
		}
	}
	d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindQuerySent,
		Peer: peer, Rail: -1, Detail: fmt.Sprintf("seq=%d ttl=%d", q.seq, query.TTL)})
	q.cancel = d.clock.AfterFunc(d.cfg.QueryTimeout, func() { d.queryExpired(peer, q.seq) })
}

// queryExpired abandons a discovery that received no offer; the next
// probe round retries while the peer remains unreachable.
func (d *Daemon) queryExpired(peer int, seq uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}
	q, ok := d.pending[peer]
	if !ok || q.seq != seq {
		return
	}
	delete(d.pending, peer)
	// Retry immediately if the peer is still routeless and a sender is
	// waiting; otherwise the next markDown/SendData will requery.
	if d.routes[peer].Kind == RouteNone && len(d.queued[peer]) > 0 {
		d.startQueryLocked(peer, d.clock.Now())
		// Preserve the original loss time for latency accounting.
		if nq, ok := d.pending[peer]; ok {
			nq.lostAt = q.lostAt
		}
	}
}

// ---------------------------------------------------------------
// Phase 2: answer requests, fix problems (frame dispatch).

func (d *Daemon) onFrame(rail, src int, payload []byte) {
	proto, body, err := routing.SplitEnvelope(payload)
	if err != nil {
		return
	}
	switch proto {
	case routing.ProtoICMP:
		d.onICMP(rail, src, body)
	case routing.ProtoControl:
		d.onControl(rail, src, body)
	case routing.ProtoData:
		d.onData(rail, src, body)
	}
}

func (d *Daemon) onICMP(rail, src int, body []byte) {
	echo, err := icmp.Unmarshal(body)
	if err != nil {
		return
	}
	if echo.Request {
		// Phase 2: answer the peer's link check. Hearing a request
		// also proves the path from src on this rail works — treat it
		// as implicit liveness evidence.
		reply, err := icmp.Reply(echo)
		if err == nil {
			_ = d.tr.Send(rail, src, routing.Envelope(routing.ProtoICMP, reply.Marshal()))
		}
		d.noteAlive(rail, src)
		return
	}
	// Echo reply: must match our outstanding probe for (src, rail).
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped || d.link[src] == nil {
		return
	}
	if echo.ID != uint16(d.tr.Node()) {
		return // not ours
	}
	st := &d.link[src][rail]
	if !st.pending || echo.Seq != st.pendingSeq {
		return // stale reply
	}
	st.pending = false
	st.misses = 0
	now := d.clock.Now()
	d.lastHeard[src] = now
	d.mset.Counter(routing.CtrProbeReplies).Inc()
	if len(echo.Data) >= 8 {
		if sentAt := time.Duration(binary.BigEndian.Uint64(echo.Data[:8])); sentAt <= now {
			st.observeRTT(now - sentAt)
		}
	}
	if !st.up {
		d.markUpLocked(src, rail, now)
	}
}

// RTT returns the smoothed round-trip estimate for the (peer, rail)
// path; ok is false when the peer is unmonitored or no probe has
// completed yet.
func (d *Daemon) RTT(peer, rail int) (RTTStats, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if peer < 0 || peer >= len(d.link) || d.link[peer] == nil ||
		rail < 0 || rail >= d.tr.Rails() {
		return RTTStats{}, false
	}
	st := d.link[peer][rail]
	if st.samples == 0 {
		return RTTStats{}, false
	}
	return RTTStats{SRTT: st.srtt, RTTVar: st.rttvar, Samples: st.samples}, true
}

// noteAlive records implicit liveness evidence for (src, rail):
// any valid traffic from the peer proves the receive path.
func (d *Daemon) noteAlive(rail, src int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped || d.link[src] == nil {
		return
	}
	d.lastHeard[src] = d.clock.Now()
	st := &d.link[src][rail]
	st.misses = 0
	if !st.up {
		d.markUpLocked(src, rail, d.clock.Now())
	}
}

func (d *Daemon) onControl(rail, src int, body []byte) {
	if len(body) == 0 {
		return
	}
	switch body[0] {
	case msgRouteQuery:
		q, err := unmarshalQuery(body)
		if err != nil {
			return
		}
		d.onQuery(rail, src, q)
	case msgRouteOffer:
		o, err := unmarshalOffer(body)
		if err != nil {
			return
		}
		d.onOffer(rail, o)
	case msgHello:
		d.onHello(rail, src)
	case msgGoodbye:
		d.onGoodbye(src)
	}
}

// onHello learns a peer (dynamic membership) and refreshes liveness.
func (d *Daemon) onHello(rail, src int) {
	if !d.cfg.DynamicMembership || src == d.tr.Node() {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}
	now := d.clock.Now()
	d.lastHeard[src] = now
	if d.link[src] == nil {
		d.addPeerLocked(src, rail)
		d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindRouteInstalled,
			Peer: src, Rail: rail, Detail: "peer discovered (hello)"})
	}
}

// onGoodbye retracts a dynamically learned peer immediately.
func (d *Daemon) onGoodbye(src int) {
	if !d.cfg.DynamicMembership {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped || d.link[src] == nil || d.static[src] {
		return
	}
	d.removePeerLocked(src)
	d.event(trace.Event{At: d.clock.Now(), Node: d.tr.Node(), Kind: trace.KindRouteLost,
		Peer: src, Rail: -1, Detail: "peer left (goodbye)"})
}

// Leave announces departure to the cluster (dynamic membership) and
// stops the daemon.
func (d *Daemon) Leave() {
	if d.cfg.DynamicMembership {
		bye := routing.Envelope(routing.ProtoControl, marshalGoodbye())
		for rail := 0; rail < d.tr.Rails(); rail++ {
			_ = d.tr.Send(rail, routing.Broadcast, bye)
		}
	}
	d.Stop()
}

func (d *Daemon) onQuery(rail, src int, q routeQuery) {
	self := d.tr.Node()
	origin := int(q.Origin)
	target := int(q.Target)
	if origin == self || origin < 0 || origin >= d.tr.Nodes() ||
		target < 0 || target >= d.tr.Nodes() {
		return
	}
	d.mset.Counter(routing.CtrQueriesRecv).Inc()

	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	now := d.clock.Now()
	key := uint64(q.Origin)<<32 | uint64(q.Seq)
	if at, seen := d.seenQueries[key]; seen && now-at < 10*d.cfg.ProbeInterval {
		d.mu.Unlock()
		return
	}
	d.seenQueries[key] = now
	d.gcSeenLocked(now)

	canOffer := false
	if target == self {
		// The query reached us, so origin↔us works on this rail:
		// offer ourselves; the origin installs a direct route.
		canOffer = true
	} else if d.link[target] != nil && d.anyLinkUpLocked(target) {
		canOffer = true
	} else if rt := d.routes[target]; rt.Kind == RouteRelay && rt.Via != origin {
		// We reach the target through our own relay: offering chains
		// discoveries, which is what connects multi-rail topologies
		// where no single server touches both endpoints' rails. The
		// data plane's TTL and its no-bounce-back rule keep stale
		// chains from looping.
		canOffer = true
	}
	ttl := q.TTL
	d.mu.Unlock()

	if canOffer {
		offer := routeOffer{Origin: q.Origin, Target: q.Target, Seq: q.Seq, Relay: uint16(self)}
		if err := d.tr.Send(rail, origin, routing.Envelope(routing.ProtoControl, marshalOffer(offer))); err == nil {
			d.mset.Counter(routing.CtrOffersSent).Inc()
			d.event(trace.Event{At: now, Node: self, Kind: trace.KindOfferSent,
				Peer: origin, Rail: rail, Detail: fmt.Sprintf("target=%d", target)})
		}
		return
	}
	// Cannot help directly: extend the search if the query has depth
	// left (multi-rail topologies; a no-op at the default TTL of 1).
	if ttl > 1 {
		q.TTL = ttl - 1
		payload := routing.Envelope(routing.ProtoControl, marshalQuery(q))
		for r := 0; r < d.tr.Rails(); r++ {
			_ = d.tr.Send(r, routing.Broadcast, payload)
		}
	}
}

// gcSeenLocked bounds the dedupe cache.
func (d *Daemon) gcSeenLocked(now time.Duration) {
	if len(d.seenQueries) < 4096 {
		return
	}
	for k, at := range d.seenQueries {
		if now-at >= 10*d.cfg.ProbeInterval {
			delete(d.seenQueries, k)
		}
	}
}

func (d *Daemon) onOffer(rail int, o routeOffer) {
	self := d.tr.Node()
	if int(o.Origin) != self {
		return // not addressed to us
	}
	target := int(o.Target)
	relay := int(o.Relay)
	if target < 0 || target >= d.tr.Nodes() || relay < 0 || relay >= d.tr.Nodes() {
		return
	}
	d.mset.Counter(routing.CtrOffersRecv).Inc()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}
	q, ok := d.pending[target]
	if !ok || q.seq != o.Seq {
		return // stale or unsolicited offer; first offer already won
	}
	now := d.clock.Now()
	if relay == target {
		// The target itself answered: the rail works after all.
		d.installLocked(target, Route{Kind: RouteDirect, Rail: rail, Via: target}, now)
	} else {
		d.installLocked(target, Route{Kind: RouteRelay, Rail: rail, Via: relay}, now)
	}
}

// ---------------------------------------------------------------
// Data plane.

// SendData routes one application datagram to dst. While discovery is
// in flight the datagram is queued (bounded) and flushed when a route
// installs; nil is returned in that case because recovery is the
// expected outcome.
func (d *Daemon) SendData(dst int, data []byte) error {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return routing.ErrStopped
	}
	if dst < 0 || dst >= d.tr.Nodes() || dst == d.tr.Node() {
		d.mu.Unlock()
		return fmt.Errorf("core: bad destination %d", dst)
	}
	if d.link[dst] == nil {
		d.mu.Unlock()
		return fmt.Errorf("core: destination %d is not monitored", dst)
	}
	d.dataSeq++
	h := routing.DataHeader{
		Origin: uint16(d.tr.Node()),
		Final:  uint16(dst),
		TTL:    uint8(d.cfg.DataTTL),
		Seq:    d.dataSeq,
	}
	frame := routing.Envelope(routing.ProtoData, routing.MarshalData(h, data))

	if d.routes[dst].Kind == RouteNone {
		now := d.clock.Now()
		if len(d.queued[dst]) >= d.cfg.QueueCapacity {
			d.mu.Unlock()
			d.mset.Counter(routing.CtrDataNoRoute).Inc()
			return routing.ErrNoRoute
		}
		d.queued[dst] = append(d.queued[dst], frame)
		d.startQueryLocked(dst, now)
		d.mu.Unlock()
		return nil
	}
	d.forwardLocked(dst, frame)
	d.mu.Unlock()
	d.mset.Counter(routing.CtrDataSent).Inc()
	return nil
}

// forwardLocked transmits an already-enveloped data frame along the
// installed route to dst. Caller holds d.mu.
func (d *Daemon) forwardLocked(dst int, frame []byte) {
	rt := d.routes[dst]
	if rt.Kind == RouteNone {
		d.mset.Counter(routing.CtrDataDropped).Inc()
		return
	}
	_ = d.tr.Send(rt.Rail, rt.Via, frame)
}

func (d *Daemon) onData(rail, src int, body []byte) {
	h, data, err := routing.UnmarshalData(body)
	if err != nil {
		return
	}
	self := d.tr.Node()
	if int(h.Final) == self {
		d.mu.Lock()
		deliver := d.deliver
		stopped := d.stopped
		now := d.clock.Now()
		d.mu.Unlock()
		if stopped || deliver == nil {
			return
		}
		d.mset.Counter(routing.CtrDataDelivered).Inc()
		d.event(trace.Event{At: now, Node: self, Kind: trace.KindDataDelivered,
			Peer: int(h.Origin), Rail: rail, Detail: fmt.Sprintf("seq=%d", h.Seq)})
		deliver(int(h.Origin), data)
		return
	}
	// Relay duty: forward toward the final destination.
	if h.TTL <= 1 {
		d.mset.Counter(routing.CtrDataDropped).Inc()
		return
	}
	h.TTL--
	final := int(h.Final)
	if final < 0 || final >= d.tr.Nodes() || final == self {
		d.mset.Counter(routing.CtrDataDropped).Inc()
		return
	}
	d.mu.Lock()
	if d.stopped || d.link[final] == nil {
		d.mu.Unlock()
		d.mset.Counter(routing.CtrDataDropped).Inc()
		return
	}
	now := d.clock.Now()
	// Prefer a live direct rail; fall back to our own relay route as
	// long as it does not bounce the frame back where it came from
	// (the TTL is the backstop against longer cycles on exotic
	// topologies).
	outRail, outVia := -1, -1
	for r := 0; r < d.tr.Rails(); r++ {
		if d.link[final][r].up {
			outRail, outVia = r, final
			break
		}
	}
	if outRail < 0 {
		if rt := d.routes[final]; rt.Kind == RouteRelay && rt.Via != src && rt.Via != int(h.Origin) {
			outRail, outVia = rt.Rail, rt.Via
		}
	}
	d.mu.Unlock()
	if outRail < 0 {
		d.mset.Counter(routing.CtrDataDropped).Inc()
		return
	}
	d.mset.Counter(routing.CtrDataForwarded).Inc()
	d.event(trace.Event{At: now, Node: self, Kind: trace.KindDataForwarded,
		Peer: final, Rail: outRail, Detail: fmt.Sprintf("origin=%d seq=%d", h.Origin, h.Seq)})
	_ = d.tr.Send(outRail, outVia, routing.Envelope(routing.ProtoData, routing.MarshalData(h, data)))
}

func (d *Daemon) event(e trace.Event) {
	if d.cfg.Trace != nil {
		d.cfg.Trace.Append(e)
	}
}

var _ routing.Router = (*Daemon)(nil)
