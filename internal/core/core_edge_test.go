package core

import (
	"testing"
	"time"

	"drsnet/internal/netsim"
	"drsnet/internal/rng"
	"drsnet/internal/routing"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

// lossyCluster builds a cluster over a network with random frame loss.
func lossyCluster(t *testing.T, n int, lossRate float64, cfg Config) *cluster {
	t.Helper()
	sched := simtime.NewScheduler()
	params := netsim.DefaultParams()
	params.LossRate = lossRate
	net, err := netsim.New(sched, topology.Dual(n), params, 7)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{sched: sched, net: net, delivered: make([][]msg, n)}
	clock := routing.SimClock{Sched: sched}
	for node := 0; node < n; node++ {
		node := node
		d, err := New(routing.NewSimNode(net, node), clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.SetDeliverFunc(func(src int, data []byte) {
			c.delivered[node] = append(c.delivered[node], msg{src, string(data)})
		})
		c.daemons = append(c.daemons, d)
	}
	for _, d := range c.daemons {
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestMissThresholdAbsorbsFrameLoss(t *testing.T) {
	// 5% random loss, threshold 2: the probability of two consecutive
	// probe losses on a link is 1 - (1-l)^2-ish per pair of rounds...
	// strictly, a false down needs both the request/reply pair of two
	// consecutive rounds to vanish (p ≈ (1-0.95²)² ≈ 0.0095 per two
	// rounds per link). Over a short run, most links must stay up and
	// any that flap must recover.
	cfg := DefaultConfig()
	cfg.MissThreshold = 2
	c := lossyCluster(t, 4, 0.05, cfg)
	defer c.stop()
	c.runFor(30 * time.Second)

	// The steady state after the run: every link should be up again
	// even if a flap happened (the next successful probe restores it).
	c.runFor(5 * time.Second)
	downLinks := 0
	for node, d := range c.daemons {
		for peer := 0; peer < 4; peer++ {
			if peer == node {
				continue
			}
			for rail := 0; rail < 2; rail++ {
				if !d.LinkUp(peer, rail) {
					downLinks++
				}
			}
		}
	}
	if downLinks > 2 {
		t.Fatalf("%d links believed down on a lossy-but-healthy network", downLinks)
	}
}

func TestMissThresholdOneFalsePositivesUnderLoss(t *testing.T) {
	// The ablation behind the MissThreshold default: with threshold 1
	// every single lost probe exchange flags the link, so a lossy
	// network sees far more link-down transitions than with
	// threshold 2 on the very same loss process.
	flaps := func(threshold int) int64 {
		cfg := DefaultConfig()
		cfg.MissThreshold = threshold
		c := lossyCluster(t, 4, 0.05, cfg)
		defer c.stop()
		c.runFor(60 * time.Second)
		var n int64
		for _, d := range c.daemons {
			n += d.Metrics().Counter(routing.CtrLinkDown).Value()
		}
		return n
	}
	f1 := flaps(1)
	f2 := flaps(2)
	if f1 == 0 {
		t.Fatal("threshold 1 saw no flaps at 5% loss — loss injection broken?")
	}
	if f2*3 > f1 {
		t.Fatalf("threshold 2 (%d flaps) not clearly more robust than threshold 1 (%d)", f2, f1)
	}
}

func TestDataStillFlowsUnderLoss(t *testing.T) {
	cfg := DefaultConfig()
	c := lossyCluster(t, 3, 0.05, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	sent := 0
	for i := 0; i < 200; i++ {
		if err := c.daemons[0].SendData(1, []byte("x")); err == nil {
			sent++
		}
		c.runFor(100 * time.Millisecond)
	}
	got := len(c.delivered[1])
	if got < sent*80/100 {
		t.Fatalf("delivered %d of %d under 5%% loss", got, sent)
	}
}

func TestDuplicateQueriesAnsweredOnce(t *testing.T) {
	// A route query is broadcast on both rails, so relays hear it
	// twice; the dedupe cache must keep them from offering twice.
	cfg := DefaultConfig()
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	cl := c.net.Cluster()
	c.net.Fail(cl.NIC(0, 0))
	c.net.Fail(cl.NIC(1, 1))
	c.runFor(time.Duration(cfg.MissThreshold+3) * cfg.ProbeInterval)

	offers := c.daemons[2].Metrics().Counter(routing.CtrOffersSent).Value()
	queriesRecv := c.daemons[2].Metrics().Counter(routing.CtrQueriesRecv).Value()
	if offers == 0 {
		t.Fatal("relay never offered")
	}
	if offers > queriesRecv {
		t.Fatalf("more offers (%d) than queries received (%d)", offers, queriesRecv)
	}
	// Both endpoints query (each lost its path to the other); node 2
	// must offer at most once per distinct discovery, not once per
	// rail copy. Queries go out on both live rails, but with node 0
	// only on rail 1 and node 1 only on rail 0, each discovery
	// reaches node 2 exactly once per rail it was broadcast on —
	// hence the dedupe cache is what keeps offers ≤ discoveries.
	discoveries := (c.daemons[0].Metrics().Counter(routing.CtrQueriesSent).Value() +
		c.daemons[1].Metrics().Counter(routing.CtrQueriesSent).Value()) / 2
	if discoveries == 0 {
		discoveries = 1
	}
	if offers > discoveries {
		t.Fatalf("relay offered %d times for %d discoveries — dedupe broken", offers, discoveries)
	}
}

func TestStaleOfferIgnored(t *testing.T) {
	cfg := DefaultConfig()
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(2 * time.Second)

	// Hand-craft an unsolicited offer to node 0 claiming node 2
	// relays to node 1; with no pending discovery it must be ignored.
	offer := routeOffer{Origin: 0, Target: 1, Seq: 999, Relay: 2}
	payload := routing.Envelope(routing.ProtoControl, marshalOffer(offer))
	if err := c.net.Send(2, 0, 0, payload); err != nil {
		t.Fatal(err)
	}
	c.runFor(100 * time.Millisecond)
	rt := c.daemons[0].RouteTo(1)
	if rt.Kind != RouteDirect {
		t.Fatalf("unsolicited offer installed a route: %+v", rt)
	}
}

func TestMalformedFramesIgnored(t *testing.T) {
	cfg := DefaultConfig()
	c := newCluster(t, 2, cfg)
	defer c.stop()
	c.runFor(time.Second)
	garbage := [][]byte{
		nil,
		{},
		{0xff},
		{routing.ProtoICMP},              // empty ICMP
		{routing.ProtoICMP, 1, 2, 3},     // truncated ICMP
		{routing.ProtoControl},           // empty control
		{routing.ProtoControl, 99, 1, 2}, // unknown control type
		{routing.ProtoControl, 1, 0},     // truncated query
		{routing.ProtoData, 1, 2, 3},     // truncated data header
		routing.Envelope(routing.ProtoData, // data to an absurd final
			routing.MarshalData(routing.DataHeader{Origin: 0, Final: 9999, TTL: 3}, nil)),
	}
	for _, g := range garbage {
		if len(g) == 0 {
			// net.Send requires a payload slice; zero-length is fine.
			g = []byte{}
		}
		if err := c.net.Send(0, 0, 1, g); err != nil {
			t.Fatal(err)
		}
	}
	c.runFor(2 * time.Second) // must not panic, links must stay up
	if !c.daemons[1].LinkUp(0, 0) {
		t.Fatal("garbage frames perturbed link state")
	}
}

func TestForwardingTTLBoundary(t *testing.T) {
	// A data frame arriving at a relay with TTL 1 must be dropped,
	// not forwarded with TTL 0.
	cfg := DefaultConfig()
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(2 * time.Second)

	h := routing.DataHeader{Origin: 0, Final: 1, TTL: 1, Seq: 42}
	payload := routing.Envelope(routing.ProtoData, routing.MarshalData(h, []byte("doomed")))
	// Deliver it to node 2 (not the final destination).
	if err := c.net.Send(0, 0, 2, payload); err != nil {
		t.Fatal(err)
	}
	c.runFor(500 * time.Millisecond)
	if len(c.delivered[1]) != 0 {
		t.Fatal("TTL-1 frame crossed a relay")
	}
	if c.daemons[2].Metrics().Counter(routing.CtrDataDropped).Value() == 0 {
		t.Fatal("drop not counted")
	}
}

func TestSeenQueryCacheGC(t *testing.T) {
	// Flood a daemon with unique queries; the dedupe cache must stay
	// bounded (the GC triggers at 4096 entries and evicts expired
	// ones).
	cfg := DefaultConfig()
	cfg.ProbeInterval = 10 * time.Millisecond // fast expiry: 10×10ms
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(100 * time.Millisecond)
	for i := 0; i < 6000; i++ {
		q := routeQuery{Origin: 1, Target: 2, Seq: uint32(i), TTL: 1}
		payload := routing.Envelope(routing.ProtoControl, marshalQuery(q))
		if err := c.net.Send(1, 0, 0, payload); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			c.runFor(200 * time.Millisecond) // let entries expire
		}
	}
	c.runFor(time.Second)
	c.daemons[0].mu.Lock()
	size := c.daemons[0].routes.SeenSize()
	c.daemons[0].mu.Unlock()
	if size > 5000 {
		t.Fatalf("seen-query cache grew to %d entries", size)
	}
}

func TestChainedRelayDiscoveryAcrossThreeRails(t *testing.T) {
	// A three-rail topology where no single server touches both
	// endpoints' live rails: A(0) keeps only rail 0, B(1) keeps only
	// rail 2, node 2 bridges rails 0–1, node 3 bridges rails 1–2.
	// Connectivity requires the two-hop chain A→2→3→B. The DRS gets
	// there by chaining discoveries: node 3 offers node 2 a relay to
	// B, after which node 2 can itself answer A's query with its
	// relay route.
	shape := topology.Cluster{Nodes: 4, Rails: 3}
	cfg := DefaultConfig()
	c := newClusterShape(t, shape, cfg)
	defer c.stop()
	cl := c.net.Cluster()
	c.runFor(3 * time.Second)
	c.net.Fail(cl.NIC(0, 1))
	c.net.Fail(cl.NIC(0, 2))
	c.net.Fail(cl.NIC(1, 0))
	c.net.Fail(cl.NIC(1, 1))
	c.net.Fail(cl.NIC(2, 2))
	c.net.Fail(cl.NIC(3, 0))
	// Let every daemon's own discovery settle (node 2 must learn its
	// relay to B before it can answer A).
	c.runFor(time.Duration(cfg.MissThreshold+6) * cfg.ProbeInterval)

	if err := c.daemons[0].SendData(1, []byte("chain")); err != nil {
		t.Fatalf("send failed: %v", err)
	}
	c.runFor(4 * cfg.ProbeInterval)
	if len(c.delivered[1]) != 1 {
		t.Fatalf("chained relay delivered %d messages, want 1", len(c.delivered[1]))
	}
	// The frame must genuinely have crossed both relays.
	f2 := c.daemons[2].Metrics().Counter(routing.CtrDataForwarded).Value()
	f3 := c.daemons[3].Metrics().Counter(routing.CtrDataForwarded).Value()
	if f2 == 0 || f3 == 0 {
		t.Fatalf("chain not exercised: forwards node2=%d node3=%d", f2, f3)
	}
}

func TestProbeSeqWraparound(t *testing.T) {
	// The echo sequence counter is uint16 and wraps after ~65k probes;
	// matching must keep working across the wrap.
	cfg := DefaultConfig()
	cfg.ProbeInterval = 100 * time.Millisecond
	c := newCluster(t, 2, cfg)
	defer c.stop()
	// Jump the counters to the brink of the wrap on both daemons.
	for _, d := range c.daemons {
		d.mu.Lock()
		d.links.SetSeq(65530)
		d.mu.Unlock()
	}
	c.runFor(10 * time.Second) // ~100 rounds × 2 probes: well past the wrap
	for _, d := range c.daemons {
		d.mu.Lock()
		seq := d.links.Seq()
		d.mu.Unlock()
		if seq >= 65530 {
			t.Fatalf("sequence did not wrap (%d)", seq)
		}
		if d.Metrics().Counter(routing.CtrLinkDown).Value() != 0 {
			t.Fatal("wraparound caused spurious link-down")
		}
	}
	if !c.daemons[0].LinkUp(1, 0) || !c.daemons[0].LinkUp(1, 1) {
		t.Fatal("links down after wraparound")
	}
}

func TestMonitoringEventuallyConsistent(t *testing.T) {
	// Churn components at random for a while, stop, let the daemons
	// settle, then demand exact agreement between every daemon's
	// monitored link state and the network's ground truth — the
	// eventual-consistency property behind the whole protocol.
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	cfg := DefaultConfig()
	c := newCluster(t, 6, cfg)
	defer c.stop()
	cl := c.net.Cluster()
	r := rng.New(31)
	for round := 0; round < 40; round++ {
		comp := topology.Component(r.Intn(cl.Components()))
		if r.Intn(2) == 0 {
			c.net.Fail(comp)
		} else {
			c.net.Restore(comp)
		}
		c.runFor(700 * time.Millisecond)
	}
	// Stop churning; restore nothing. Let detection and recovery
	// settle fully.
	c.runFor(time.Duration(cfg.MissThreshold+4) * cfg.ProbeInterval)

	for node, d := range c.daemons {
		selfUp := func(rail int) bool {
			return c.net.ComponentUp(cl.NIC(node, rail)) && c.net.ComponentUp(cl.Backplane(rail))
		}
		for peer := 0; peer < 6; peer++ {
			if peer == node {
				continue
			}
			for rail := 0; rail < 2; rail++ {
				truth := selfUp(rail) && c.net.ComponentUp(cl.NIC(peer, rail))
				if got := d.LinkUp(peer, rail); got != truth {
					t.Errorf("node %d view of (%d,%d) = %v, ground truth %v (failed: %v)",
						node, peer, rail, got, truth, c.net.FailedComponents())
				}
			}
		}
	}
}
