package core

import (
	"fmt"
	"testing"
	"time"

	"drsnet/internal/conn"
	"drsnet/internal/netsim"
	"drsnet/internal/rng"
	"drsnet/internal/routing"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

// cluster is a DRS test harness: n daemons over a simulated dual-rail
// network.
type cluster struct {
	sched     *simtime.Scheduler
	net       *netsim.Network
	daemons   []*Daemon
	delivered [][]msg
	log       *trace.Log
}

type msg struct {
	src  int
	data string
}

func newCluster(t testing.TB, n int, cfg Config) *cluster {
	t.Helper()
	return newClusterShape(t, topology.Dual(n), cfg)
}

func newClusterShape(t testing.TB, shape topology.Cluster, cfg Config) *cluster {
	t.Helper()
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, shape, netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{
		sched:     sched,
		net:       net,
		delivered: make([][]msg, shape.Nodes),
		log:       trace.NewLog(0),
	}
	cfg.Trace = c.log
	clock := routing.SimClock{Sched: sched}
	for node := 0; node < shape.Nodes; node++ {
		node := node
		d, err := New(routing.NewSimNode(net, node), clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.SetDeliverFunc(func(src int, data []byte) {
			c.delivered[node] = append(c.delivered[node], msg{src, string(data)})
		})
		c.daemons = append(c.daemons, d)
	}
	for _, d := range c.daemons {
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func (c *cluster) runFor(d time.Duration) {
	c.sched.RunUntil(c.sched.Now().Add(d))
}

func (c *cluster) stop() {
	for _, d := range c.daemons {
		d.Stop()
	}
}

func TestSteadyStateDirectDelivery(t *testing.T) {
	c := newCluster(t, 4, DefaultConfig())
	defer c.stop()
	c.runFor(100 * time.Millisecond)
	if err := c.daemons[0].SendData(3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	c.runFor(100 * time.Millisecond)
	if len(c.delivered[3]) != 1 || c.delivered[3][0] != (msg{0, "hello"}) {
		t.Fatalf("delivered = %v", c.delivered[3])
	}
	if rt := c.daemons[0].RouteTo(3); rt.Kind != RouteDirect || rt.Via != 3 {
		t.Fatalf("route = %+v", rt)
	}
}

func TestProbesFlowAndLinksStayUp(t *testing.T) {
	c := newCluster(t, 3, DefaultConfig())
	defer c.stop()
	c.runFor(5 * time.Second)
	for node, d := range c.daemons {
		for peer := 0; peer < 3; peer++ {
			if peer == node {
				continue
			}
			for rail := 0; rail < 2; rail++ {
				if !d.LinkUp(peer, rail) {
					t.Fatalf("node %d thinks (%d,%d) is down on a healthy network", node, peer, rail)
				}
			}
		}
		if d.Metrics().Counter(routing.CtrProbesSent).Value() == 0 {
			t.Fatalf("node %d sent no probes", node)
		}
		if d.Metrics().Counter(routing.CtrProbeReplies).Value() == 0 {
			t.Fatalf("node %d got no replies", node)
		}
		if d.Metrics().Counter(routing.CtrLinkDown).Value() != 0 {
			t.Fatalf("node %d saw spurious link-down", node)
		}
	}
}

func TestNICFailureFailsOverToSecondRail(t *testing.T) {
	cfg := DefaultConfig()
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)

	// Kill B's rail-0 NIC; A's route to B is direct rail 0.
	failAt := c.sched.Now().Duration()
	c.net.Fail(c.net.Cluster().NIC(1, 0))

	// Detection needs MissThreshold consecutive missed rounds.
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)

	if c.daemons[0].LinkUp(1, 0) {
		t.Fatal("A still believes B's rail-0 link is up")
	}
	rt := c.daemons[0].RouteTo(1)
	if rt.Kind != RouteDirect || rt.Rail != 1 || rt.Via != 1 {
		t.Fatalf("route after failover = %+v, want direct rail 1", rt)
	}

	// Repair latency must be within the proactive budget:
	// (MissThreshold+1) probe intervals.
	repairs := c.daemons[0].Repairs()
	if len(repairs) == 0 {
		t.Fatal("no repair recorded")
	}
	last := repairs[len(repairs)-1]
	if last.Peer != 1 {
		t.Fatalf("repair = %+v", last)
	}
	detectionBudget := time.Duration(cfg.MissThreshold+1) * cfg.ProbeInterval
	if got := last.RepairedAt - failAt; got > detectionBudget {
		t.Fatalf("repair took %v after failure, budget %v", got, detectionBudget)
	}

	// Traffic flows on the new route.
	if err := c.daemons[0].SendData(1, []byte("after")); err != nil {
		t.Fatal(err)
	}
	c.runFor(100 * time.Millisecond)
	if len(c.delivered[1]) != 1 || c.delivered[1][0].data != "after" {
		t.Fatalf("delivered = %v", c.delivered[1])
	}
}

func TestBackplaneFailureFailsOverEveryone(t *testing.T) {
	cfg := DefaultConfig()
	c := newCluster(t, 5, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	c.net.Fail(c.net.Cluster().Backplane(0))
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)

	for node, d := range c.daemons {
		for peer := 0; peer < 5; peer++ {
			if peer == node {
				continue
			}
			rt := d.RouteTo(peer)
			if rt.Kind != RouteDirect || rt.Rail != 1 {
				t.Fatalf("node %d route to %d = %+v, want direct rail 1", node, peer, rt)
			}
		}
	}
	// All-pairs traffic still works.
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if a == b {
				continue
			}
			if err := c.daemons[a].SendData(b, []byte(fmt.Sprintf("%d>%d", a, b))); err != nil {
				t.Fatalf("%d->%d: %v", a, b, err)
			}
		}
	}
	c.runFor(500 * time.Millisecond)
	for b := 0; b < 5; b++ {
		if len(c.delivered[b]) != 4 {
			t.Fatalf("node %d received %d messages, want 4", b, len(c.delivered[b]))
		}
	}
}

func TestCrossRailFailureUsesRelay(t *testing.T) {
	// A keeps only rail 1, B keeps only rail 0: no direct path, but
	// any healthy third node can relay — the DRS broadcast discovery.
	cfg := DefaultConfig()
	c := newCluster(t, 4, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	cl := c.net.Cluster()
	c.net.Fail(cl.NIC(0, 0))
	c.net.Fail(cl.NIC(1, 1))
	c.runFor(time.Duration(cfg.MissThreshold+3) * cfg.ProbeInterval)

	if err := c.daemons[0].SendData(1, []byte("via-relay")); err != nil {
		t.Fatal(err)
	}
	c.runFor(2 * cfg.ProbeInterval)
	if len(c.delivered[1]) != 1 || c.delivered[1][0].data != "via-relay" {
		t.Fatalf("delivered = %v", c.delivered[1])
	}
	rt := c.daemons[0].RouteTo(1)
	if rt.Kind != RouteRelay {
		t.Fatalf("route = %+v, want relay", rt)
	}
	if rt.Via != 2 && rt.Via != 3 {
		t.Fatalf("relay via %d, want a healthy third node", rt.Via)
	}
	forwarded := c.daemons[2].Metrics().Counter(routing.CtrDataForwarded).Value() +
		c.daemons[3].Metrics().Counter(routing.CtrDataForwarded).Value()
	if forwarded == 0 {
		t.Fatal("no relay forwarding recorded")
	}
}

func TestQueuedDataFlushedAfterDiscovery(t *testing.T) {
	cfg := DefaultConfig()
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	cl := c.net.Cluster()
	c.net.Fail(cl.NIC(0, 0))
	c.net.Fail(cl.NIC(1, 1))
	c.runFor(time.Duration(cfg.MissThreshold+3) * cfg.ProbeInterval)

	// The route may already be repaired via discovery triggered by
	// markDown; force a fresh discovery by sending immediately after
	// another failure/restore cycle is unnecessary — instead verify
	// multiple sends all arrive in order.
	for i := 0; i < 3; i++ {
		if err := c.daemons[0].SendData(1, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.runFor(2 * cfg.ProbeInterval)
	if len(c.delivered[1]) != 3 {
		t.Fatalf("delivered = %v", c.delivered[1])
	}
	for i, m := range c.delivered[1] {
		if m.data != fmt.Sprintf("m%d", i) {
			t.Fatalf("order broken: %v", c.delivered[1])
		}
	}
}

func TestRecoveryReinstatesDirectRoute(t *testing.T) {
	cfg := DefaultConfig()
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	nic := c.net.Cluster().NIC(1, 0)
	c.net.Fail(nic)
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)
	if rt := c.daemons[0].RouteTo(1); rt.Rail != 1 {
		t.Fatalf("expected failover first, route = %+v", rt)
	}
	c.net.Restore(nic)
	c.runFor(3 * cfg.ProbeInterval)
	if !c.daemons[0].LinkUp(1, 0) {
		t.Fatal("restored link not re-detected")
	}
	// Route stays on the (still healthy) rail 1 — stability — but the
	// link state must have recovered; kill rail 1 and the daemon must
	// fail back instantly.
	c.net.Fail(c.net.Cluster().NIC(1, 1))
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)
	rt := c.daemons[0].RouteTo(1)
	if rt.Kind != RouteDirect || rt.Rail != 0 {
		t.Fatalf("fail-back route = %+v, want direct rail 0", rt)
	}
}

func TestTotalPartitionQueuesThenDropsOldest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueCapacity = 4
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	cl := c.net.Cluster()
	// Isolate node 1 completely.
	c.net.Fail(cl.NIC(1, 0))
	c.net.Fail(cl.NIC(1, 1))
	c.runFor(time.Duration(cfg.MissThreshold+3) * cfg.ProbeInterval)

	if rt := c.daemons[0].RouteTo(1); rt.Kind != RouteNone {
		t.Fatalf("route to isolated node = %+v, want none", rt)
	}
	// The queue fills, then overflow evicts the oldest datagram: every
	// send still succeeds (recovery is the expected outcome) and the
	// overflow counter records each eviction.
	for i := 0; i < cfg.QueueCapacity+2; i++ {
		if err := c.daemons[0].SendData(1, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d failed: %v", i, err)
		}
		c.runFor(10 * time.Millisecond)
	}
	if got := c.daemons[0].Metrics().Counter(routing.CtrQueueOverflow).Value(); got != 2 {
		t.Fatalf("queue.overflow = %d, want 2", got)
	}
	if len(c.delivered[1]) != 0 {
		t.Fatal("data delivered to an isolated node")
	}

	// Repair the partition: discovery reruns, the route reinstalls and
	// exactly the freshest QueueCapacity datagrams flush, oldest-first.
	c.net.Restore(cl.NIC(1, 0))
	c.net.Restore(cl.NIC(1, 1))
	c.runFor(time.Duration(cfg.MissThreshold+3) * cfg.ProbeInterval)
	got := c.delivered[1]
	if len(got) != cfg.QueueCapacity {
		t.Fatalf("%d datagrams delivered after repair, want %d: %v", len(got), cfg.QueueCapacity, got)
	}
	for i, m := range got {
		if want := string([]byte{byte(i + 2)}); m.src != 0 || m.data != want {
			t.Fatalf("delivery %d = %+v, want payload %q from 0", i, m, want)
		}
	}
}

func TestImplicitLivenessFromEchoRequests(t *testing.T) {
	// A daemon that hears a peer's probe treats it as liveness
	// evidence even before its own probe cycle confirms.
	cfg := DefaultConfig()
	c := newCluster(t, 2, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	nic := c.net.Cluster().NIC(0, 0)
	c.net.Fail(nic)
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)
	if c.daemons[1].LinkUp(0, 0) {
		t.Fatal("B did not notice A's rail-0 NIC failure")
	}
	c.net.Restore(nic)
	c.runFor(3 * cfg.ProbeInterval)
	if !c.daemons[1].LinkUp(0, 0) {
		t.Fatal("B did not re-learn the restored link")
	}
}

func TestMonitorSubset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Monitor = []int{1} // node 0 only watches node 1
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(3), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(routing.NewSimNode(net, 0), routing.SimClock{Sched: sched}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	sched.RunUntil(simtime.Time(100 * time.Millisecond))
	if err := d.SendData(2, nil); err == nil {
		t.Fatal("send to unmonitored peer accepted")
	}
	if d.LinkUp(2, 0) {
		t.Fatal("unmonitored peer reported up")
	}
}

func TestConfigValidation(t *testing.T) {
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(3), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := routing.NewSimNode(net, 0)
	clock := routing.SimClock{Sched: sched}
	if _, err := New(nil, clock, DefaultConfig()); err == nil {
		t.Error("nil transport accepted")
	}
	for name, mutate := range map[string]func(*Config){
		"zero interval":  func(c *Config) { c.ProbeInterval = 0 },
		"zero threshold": func(c *Config) { c.MissThreshold = 0 },
		"zero relay ttl": func(c *Config) { c.RelayTTL = 0 },
		"neg timeout":    func(c *Config) { c.QueryTimeout = -time.Second },
		"monitor self":   func(c *Config) { c.Monitor = []int{0} },
		"monitor oob":    func(c *Config) { c.Monitor = []int{7} },
		"monitor dup":    func(c *Config) { c.Monitor = []int{1, 1} },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(tr, clock, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	d, err := New(tr, clock, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err == nil {
		t.Error("double start accepted")
	}
	if err := d.SendData(0, nil); err == nil {
		t.Error("self send accepted")
	}
	if err := d.SendData(99, nil); err == nil {
		t.Error("oob send accepted")
	}
	d.Stop()
	if err := d.SendData(1, nil); err != routing.ErrStopped {
		t.Errorf("send after stop: %v", err)
	}
}

func TestStopHaltsProbing(t *testing.T) {
	c := newCluster(t, 2, DefaultConfig())
	c.runFor(2 * time.Second)
	c.stop()
	before := c.daemons[0].Metrics().Counter(routing.CtrProbesSent).Value()
	c.runFor(5 * time.Second)
	after := c.daemons[0].Metrics().Counter(routing.CtrProbesSent).Value()
	if after != before {
		t.Fatalf("stopped daemon kept probing: %d -> %d", before, after)
	}
}

// TestSimulationMatchesAnalyticModel is the keystone integration test:
// for random failure scenarios, the running protocol delivers between
// the designated pair if and only if the analytic connectivity
// predicate (the basis of Equation 1) says the pair is connected.
func TestSimulationMatchesAnalyticModel(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep in -short mode")
	}
	shape := topology.Dual(5)
	eval, err := conn.NewEvaluator(shape)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(20240706)
	cfg := DefaultConfig()
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		f := 1 + r.Intn(5)
		idx := make([]int, f)
		r.SampleK(idx, shape.Components())
		failed := make([]topology.Component, f)
		for i, v := range idx {
			failed[i] = topology.Component(v)
		}
		want := eval.PairConnected(failed, 0, 1)

		c := newCluster(t, shape.Nodes, cfg)
		c.runFor(2 * time.Second) // healthy warm-up
		for _, comp := range failed {
			c.net.Fail(comp)
		}
		// Let detection and repair settle everywhere.
		c.runFor(time.Duration(cfg.MissThreshold+4) * cfg.ProbeInterval)
		sendErr := c.daemons[0].SendData(1, []byte("probe"))
		c.runFor(3 * cfg.ProbeInterval)
		got := len(c.delivered[1]) > 0
		c.stop()

		if got != want {
			t.Fatalf("trial %d: failures %v: delivered=%v analytic=%v (send err %v)",
				trial, failed, got, want, sendErr)
		}
	}
}

func TestThreeRailClusterFailsOverAcrossAllRails(t *testing.T) {
	cfg := DefaultConfig()
	c := newClusterShape(t, topology.Cluster{Nodes: 3, Rails: 3}, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	cl := c.net.Cluster()
	c.net.Fail(cl.NIC(1, 0))
	c.net.Fail(cl.NIC(1, 1))
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)
	rt := c.daemons[0].RouteTo(1)
	if rt.Kind != RouteDirect || rt.Rail != 2 {
		t.Fatalf("route = %+v, want direct rail 2", rt)
	}
	if err := c.daemons[0].SendData(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.runFor(200 * time.Millisecond)
	if len(c.delivered[1]) != 1 {
		t.Fatal("not delivered on third rail")
	}
}

func TestNoRoutingLoopsUnderChurn(t *testing.T) {
	// Fail and restore components while blasting traffic; total
	// forwards must stay bounded by sends × TTL — a loop would blow
	// far past it — and the scheduler must quiesce.
	cfg := DefaultConfig()
	c := newCluster(t, 6, cfg)
	defer c.stop()
	r := rng.New(99)
	cl := c.net.Cluster()
	sends := 0
	for round := 0; round < 20; round++ {
		comp := topology.Component(r.Intn(cl.Components()))
		if round%3 == 2 {
			c.net.Restore(comp)
		} else {
			c.net.Fail(comp)
		}
		for i := 0; i < 4; i++ {
			a := r.Intn(6)
			b := r.Intn(6)
			if a == b {
				continue
			}
			if err := c.daemons[a].SendData(b, []byte("churn")); err == nil {
				sends++
			}
		}
		c.runFor(1500 * time.Millisecond)
	}
	var forwarded int64
	for _, d := range c.daemons {
		forwarded += d.Metrics().Counter(routing.CtrDataForwarded).Value()
	}
	if forwarded > int64(sends*cfg.DataTTL) {
		t.Fatalf("forwarded %d frames for %d sends (TTL %d): routing loop",
			forwarded, sends, cfg.DataTTL)
	}
}

func TestRouteKindString(t *testing.T) {
	if RouteNone.String() != "none" || RouteDirect.String() != "direct" || RouteRelay.String() != "relay" {
		t.Fatal("RouteKind strings wrong")
	}
	if RouteKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestRepairLatencyHelper(t *testing.T) {
	r := Repair{LostAt: time.Second, RepairedAt: 3 * time.Second}
	if r.Latency() != 2*time.Second {
		t.Fatalf("latency = %v", r.Latency())
	}
}
