package core

import (
	"testing"
	"time"

	"drsnet/internal/linkmon"
	"drsnet/internal/routing"
	"drsnet/internal/trace"
)

// testDamping is an aggressive damping policy sized for fast tests:
// two down-transitions within a few seconds cross the suppress
// threshold, and release follows roughly ten quiet seconds later.
func testDamping() linkmon.Damping {
	return linkmon.Damping{
		Penalty:  1,
		Suppress: 1.5,
		Reuse:    0.5,
		HalfLife: 5 * time.Second,
		Max:      6,
	}
}

// flapRail fails and restores component NIC(node,rail) once, running
// the simulator long enough for the cluster to detect each edge.
func (c *cluster) flapNIC(cfg Config, node, rail int) {
	nic := c.net.Cluster().NIC(node, rail)
	c.net.Fail(nic)
	c.runFor(time.Duration(cfg.MissThreshold+1) * cfg.ProbeInterval)
	c.net.Restore(nic)
	c.runFor(2 * cfg.ProbeInterval)
}

// routeChanges counts route-installed plus route-lost transitions
// observed at node for peer — the churn the damping extension exists
// to suppress.
func (c *cluster) routeChanges(node, peer int) int {
	n := 0
	for _, e := range c.log.Events() {
		if e.Node != node || e.Peer != peer {
			continue
		}
		if e.Kind == trace.KindRouteInstalled || e.Kind == trace.KindRouteLost {
			n++
		}
	}
	return n
}

// TestFlappingLinkEntersDamped drives a repeatedly flapping rail with
// damping enabled and checks the recovered link is held untrusted:
// physically up, but excluded from routing until released.
func TestFlappingLinkEntersDamped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlapDamping = testDamping()
	c := newCluster(t, 2, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)

	// Rail 1 is dead for peer 1, so rail 0 is node 0's only path.
	c.net.Fail(c.net.Cluster().NIC(1, 1))
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)

	for i := 0; i < 3; i++ {
		c.flapNIC(cfg, 1, 0)
	}

	d := c.daemons[0]
	if !d.LinkUp(1, 0) {
		t.Fatal("link (1,0) should be physically up after the last restore")
	}
	if got := d.Metrics().Counter(routing.CtrRouteDamped).Value(); got == 0 {
		t.Fatal("route.damped never incremented despite repeated flaps")
	}
	if got := d.Metrics().Counter(routing.CtrLinkFlaps).Value(); got < 3 {
		t.Fatalf("link.flaps = %d, want >= 3", got)
	}
	// The damped path must not carry a route even though it is the only
	// physical path left.
	if rt := d.RouteTo(1); rt.Kind == RouteDirect && rt.Rail == 0 {
		t.Fatalf("route %+v trusts the damped rail", rt)
	}
	found := false
	for _, e := range c.log.Events() {
		if e.Kind == trace.KindRouteDamped && e.Node == 0 && e.Peer == 1 && e.Rail == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no route-damped trace event emitted")
	}
}

// TestDampedLinkReleasedAfterQuietPeriod checks the exponential decay
// side: once the path stops flapping, the penalty decays below the
// reuse threshold and the route is re-installed.
func TestDampedLinkReleasedAfterQuietPeriod(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlapDamping = testDamping()
	c := newCluster(t, 2, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)

	c.net.Fail(c.net.Cluster().NIC(1, 1))
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)
	for i := 0; i < 3; i++ {
		c.flapNIC(cfg, 1, 0)
	}
	d := c.daemons[0]
	if d.Metrics().Counter(routing.CtrRouteDamped).Value() == 0 {
		t.Fatal("precondition: link never entered the damped state")
	}

	// Quiet period: long enough for the capped penalty (≤ 6) to decay
	// below reuse (0.5) at a 5 s half-life: 5·log2(6/0.5) ≈ 18 s.
	c.runFor(25 * time.Second)

	if rt := d.RouteTo(1); rt.Kind != RouteDirect || rt.Rail != 0 {
		t.Fatalf("route = %+v after quiet period, want direct rail 0", rt)
	}
	if got := d.Metrics().Counter(routing.CtrDampedNs).Value(); got <= 0 {
		t.Fatalf("route.damped_ns = %d, want > 0", got)
	}
	if n := len(c.log.Filter(trace.KindRouteUndamped)); n == 0 {
		t.Fatal("no route-undamped trace event emitted")
	}

	// And the released route actually carries traffic.
	if err := d.SendData(1, []byte("released")); err != nil {
		t.Fatal(err)
	}
	c.runFor(200 * time.Millisecond)
	if len(c.delivered[1]) != 1 || c.delivered[1][0].data != "released" {
		t.Fatalf("delivered = %v", c.delivered[1])
	}
}

// TestDampingReducesRouteChurn is the headline property: at identical
// seeds and identical fault schedules, enabling damping yields strictly
// fewer route transitions than the undamped baseline.
func TestDampingReducesRouteChurn(t *testing.T) {
	run := func(damp linkmon.Damping) int {
		cfg := DefaultConfig()
		cfg.FlapDamping = damp
		c := newCluster(t, 2, cfg)
		defer c.stop()
		c.runFor(3 * time.Second)
		c.net.Fail(c.net.Cluster().NIC(1, 1))
		c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)
		for i := 0; i < 5; i++ {
			c.flapNIC(cfg, 1, 0)
		}
		return c.routeChanges(0, 1)
	}
	undamped := run(linkmon.Damping{})
	damped := run(testDamping())
	if damped >= undamped {
		t.Fatalf("route churn with damping = %d, without = %d; want strictly fewer", damped, undamped)
	}
	if undamped < 5 {
		t.Fatalf("undamped baseline saw only %d transitions; flap schedule too gentle to be probative", undamped)
	}
}

// TestDampingDisabledIsInert verifies the zero-value config changes
// nothing: no damped events, no damped counters, prompt re-trust.
func TestDampingDisabledIsInert(t *testing.T) {
	cfg := DefaultConfig()
	c := newCluster(t, 2, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	c.net.Fail(c.net.Cluster().NIC(1, 1))
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)
	for i := 0; i < 3; i++ {
		c.flapNIC(cfg, 1, 0)
	}
	d := c.daemons[0]
	if got := d.Metrics().Counter(routing.CtrRouteDamped).Value(); got != 0 {
		t.Fatalf("route.damped = %d with damping disabled", got)
	}
	if n := len(c.log.Filter(trace.KindRouteDamped)); n != 0 {
		t.Fatalf("%d route-damped events with damping disabled", n)
	}
	// Links still re-trusted immediately: the last restore reinstalls
	// the direct rail-0 route.
	if rt := d.RouteTo(1); rt.Kind != RouteDirect || rt.Rail != 0 {
		t.Fatalf("route = %+v, want direct rail 0", rt)
	}
	// link.flaps still counts (it is a plain observability counter).
	if got := d.Metrics().Counter(routing.CtrLinkFlaps).Value(); got < 3 {
		t.Fatalf("link.flaps = %d, want >= 3", got)
	}
}
