package core

import (
	"fmt"
	"strconv"

	"drsnet/internal/dataplane"
	"drsnet/internal/routing"
	"drsnet/internal/trace"
)

// detailSeq renders "seq=N" without fmt — byte-identical to the
// Sprintf it replaces, one allocation instead of fmt's slow path.
func detailSeq(seq uint32) string {
	var b [16]byte
	out := append(b[:0], "seq="...)
	out = strconv.AppendUint(out, uint64(seq), 10)
	return string(out)
}

// detailOriginSeq renders "origin=O seq=N" without fmt.
func detailOriginSeq(origin uint16, seq uint32) string {
	var b [32]byte
	out := append(b[:0], "origin="...)
	out = strconv.AppendUint(out, uint64(origin), 10)
	out = append(out, " seq="...)
	out = strconv.AppendUint(out, uint64(seq), 10)
	return string(out)
}

// Data plane: originate, relay and deliver application datagrams over
// whatever routes phase 2 has installed. The mechanics (sequence
// numbers, TTL policing, discovery queues) live in internal/dataplane;
// this file supplies the DRS's next-hop policy.

// SendData routes one application datagram to dst. While discovery is
// in flight the datagram is queued (bounded, oldest dropped first on
// overflow) and flushed when a route installs; nil is returned in that
// case because recovery is the expected outcome.
func (d *Daemon) SendData(dst int, data []byte) error {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return routing.ErrStopped
	}
	if dst < 0 || dst >= d.tr.Nodes() || dst == d.tr.Node() {
		d.mu.Unlock()
		return fmt.Errorf("core: bad destination %d", dst)
	}
	if !d.links.Monitored(dst) {
		d.mu.Unlock()
		return fmt.Errorf("core: destination %d is not monitored", dst)
	}
	if d.routes.Route(dst).Kind == RouteNone {
		// Queued frames are retained until a route installs, so they
		// get their own allocation.
		frame := d.plane.NewFrame(dst, data)
		now := d.clock.Now()
		d.plane.Enqueue(dst, frame)
		d.startQueryLocked(dst, now)
		d.mu.Unlock()
		return nil
	}
	// Sent-immediately frames go through the scratch buffer: the
	// simulated wire copies the payload before Send returns.
	d.frameBuf = d.plane.NewFrameInto(d.frameBuf, dst, data)
	d.forwardLocked(dst, d.frameBuf)
	d.mu.Unlock()
	d.mset.Counter(routing.CtrDataSent).Inc()
	return nil
}

// forwardLocked transmits an already-enveloped data frame along the
// installed route to dst. Caller holds d.mu.
func (d *Daemon) forwardLocked(dst int, frame []byte) {
	rt := d.routes.Route(dst)
	if rt.Kind == RouteNone {
		d.mset.Counter(routing.CtrDataDropped).Inc()
		return
	}
	_ = d.tr.Send(rt.Rail, rt.Via, frame)
}

func (d *Daemon) onData(rail, src int, body []byte) {
	h, data, act := d.plane.Classify(body)
	switch act {
	case dataplane.Deliver:
		d.mu.Lock()
		deliver := d.deliver
		stopped := d.stopped
		now := d.clock.Now()
		d.mu.Unlock()
		if stopped || deliver == nil {
			return
		}
		d.mset.Counter(routing.CtrDataDelivered).Inc()
		if d.tracing() {
			d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindDataDelivered,
				Peer: int(h.Origin), Rail: rail, Detail: detailSeq(h.Seq)})
		}
		deliver(int(h.Origin), data)
	case dataplane.Drop:
		d.mset.Counter(routing.CtrDataDropped).Inc()
	case dataplane.Forward:
		// Relay duty: forward toward the final destination. Classify
		// already decremented the TTL.
		final := int(h.Final)
		d.mu.Lock()
		if d.stopped || !d.links.Monitored(final) {
			d.mu.Unlock()
			d.mset.Counter(routing.CtrDataDropped).Inc()
			return
		}
		now := d.clock.Now()
		// Prefer a live (and un-damped) direct rail; fall back to our
		// own relay route as long as it does not bounce the frame back
		// where it came from (the TTL is the backstop against longer
		// cycles on exotic topologies).
		outRail, outVia := -1, -1
		if r, ok := d.links.FirstUsable(final); ok {
			outRail, outVia = r, final
		}
		if outRail < 0 {
			if rt := d.routes.Route(final); rt.Kind == RouteRelay && rt.Via != src && rt.Via != int(h.Origin) {
				outRail, outVia = rt.Rail, rt.Via
			}
		}
		if outRail < 0 {
			d.mu.Unlock()
			d.mset.Counter(routing.CtrDataDropped).Inc()
			return
		}
		// Re-frame into the scratch buffer and send while still holding
		// mu (forwardLocked sets the precedent; the wire copies).
		d.frameBuf = dataplane.AppendFrame(d.frameBuf[:0], h, data)
		_ = d.tr.Send(outRail, outVia, d.frameBuf)
		d.mu.Unlock()
		d.mset.Counter(routing.CtrDataForwarded).Inc()
		if d.tracing() {
			d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindDataForwarded,
				Peer: final, Rail: outRail, Detail: detailOriginSeq(h.Origin, h.Seq)})
		}
	}
}
