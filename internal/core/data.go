package core

import (
	"fmt"

	"drsnet/internal/dataplane"
	"drsnet/internal/routing"
	"drsnet/internal/trace"
)

// Data plane: originate, relay and deliver application datagrams over
// whatever routes phase 2 has installed. The mechanics (sequence
// numbers, TTL policing, discovery queues) live in internal/dataplane;
// this file supplies the DRS's next-hop policy.

// SendData routes one application datagram to dst. While discovery is
// in flight the datagram is queued (bounded, oldest dropped first on
// overflow) and flushed when a route installs; nil is returned in that
// case because recovery is the expected outcome.
func (d *Daemon) SendData(dst int, data []byte) error {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return routing.ErrStopped
	}
	if dst < 0 || dst >= d.tr.Nodes() || dst == d.tr.Node() {
		d.mu.Unlock()
		return fmt.Errorf("core: bad destination %d", dst)
	}
	if !d.links.Monitored(dst) {
		d.mu.Unlock()
		return fmt.Errorf("core: destination %d is not monitored", dst)
	}
	frame := d.plane.NewFrame(dst, data)

	if d.routes.Route(dst).Kind == RouteNone {
		now := d.clock.Now()
		d.plane.Enqueue(dst, frame)
		d.startQueryLocked(dst, now)
		d.mu.Unlock()
		return nil
	}
	d.forwardLocked(dst, frame)
	d.mu.Unlock()
	d.mset.Counter(routing.CtrDataSent).Inc()
	return nil
}

// forwardLocked transmits an already-enveloped data frame along the
// installed route to dst. Caller holds d.mu.
func (d *Daemon) forwardLocked(dst int, frame []byte) {
	rt := d.routes.Route(dst)
	if rt.Kind == RouteNone {
		d.mset.Counter(routing.CtrDataDropped).Inc()
		return
	}
	_ = d.tr.Send(rt.Rail, rt.Via, frame)
}

func (d *Daemon) onData(rail, src int, body []byte) {
	h, data, act := d.plane.Classify(body)
	switch act {
	case dataplane.Deliver:
		d.mu.Lock()
		deliver := d.deliver
		stopped := d.stopped
		now := d.clock.Now()
		d.mu.Unlock()
		if stopped || deliver == nil {
			return
		}
		d.mset.Counter(routing.CtrDataDelivered).Inc()
		d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindDataDelivered,
			Peer: int(h.Origin), Rail: rail, Detail: fmt.Sprintf("seq=%d", h.Seq)})
		deliver(int(h.Origin), data)
	case dataplane.Drop:
		d.mset.Counter(routing.CtrDataDropped).Inc()
	case dataplane.Forward:
		// Relay duty: forward toward the final destination. Classify
		// already decremented the TTL.
		final := int(h.Final)
		d.mu.Lock()
		if d.stopped || !d.links.Monitored(final) {
			d.mu.Unlock()
			d.mset.Counter(routing.CtrDataDropped).Inc()
			return
		}
		now := d.clock.Now()
		// Prefer a live (and un-damped) direct rail; fall back to our
		// own relay route as long as it does not bounce the frame back
		// where it came from (the TTL is the backstop against longer
		// cycles on exotic topologies).
		outRail, outVia := -1, -1
		if r, ok := d.links.FirstUsable(final); ok {
			outRail, outVia = r, final
		}
		if outRail < 0 {
			if rt := d.routes.Route(final); rt.Kind == RouteRelay && rt.Via != src && rt.Via != int(h.Origin) {
				outRail, outVia = rt.Rail, rt.Via
			}
		}
		d.mu.Unlock()
		if outRail < 0 {
			d.mset.Counter(routing.CtrDataDropped).Inc()
			return
		}
		d.mset.Counter(routing.CtrDataForwarded).Inc()
		d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindDataForwarded,
			Peer: final, Rail: outRail, Detail: fmt.Sprintf("origin=%d seq=%d", h.Origin, h.Seq)})
		_ = d.tr.Send(outRail, outVia, dataplane.Frame(h, data))
	}
}
