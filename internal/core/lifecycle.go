package core

import (
	"fmt"
	"time"

	"drsnet/internal/routing"
	"drsnet/internal/trace"
)

// Crash–restart lifecycle handling: rejoin announcements and the
// incarnation guard on stamped control frames. All of it is inert
// while Config.Incarnation is zero — a lifecycle-free daemon never
// sends these frames, and accepting them costs nothing.

// onRejoin processes a peer's rejoin broadcast: record the new
// incarnation, treat the frame as liveness proof for the arrival
// rail, and — when the peer was already known under an older life —
// purge every route that relays through it, because those routes were
// installed against a route table the reboot erased.
func (d *Daemon) onRejoin(rail, src int, inc uint32) {
	if src == d.tr.Node() || src < 0 || src >= d.tr.Nodes() {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}
	now := d.clock.Now()
	prev := d.members.Incarnation(src)
	d.members.ObserveIncarnation(src, inc)
	if inc <= prev {
		return // duplicate rejoin, or one from a life we already left
	}
	if d.links.Monitored(src) {
		// The broadcast arrived, so this rail demonstrably works:
		// clear the miss count and bring the link back immediately
		// rather than waiting out a probe round.
		st := d.links.State(src, rail)
		st.Misses = 0
		d.members.Heard(src, now)
		if !st.Up {
			d.markUpLocked(src, rail, now)
		}
	}
	if prev == 0 {
		return // first sighting (cluster start): nothing to purge
	}
	d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindPeerRejoined,
		Peer: src, Rail: rail, Detail: fmt.Sprintf("incarnation %d->%d", prev, inc)})
	d.purgeRelaysViaLocked(src, now)
}

// admitIncarnation vets an incarnation-stamped control frame from
// peer: a frame from a previous life is dropped (counted by the
// control.stale metric — the out-of-order-delivery race the stamp
// exists for), and a newer incarnation observed here (the rejoin
// broadcast may have been lost) purges relay routes through the
// peer's earlier life before the frame is processed.
func (d *Daemon) admitIncarnation(peer int, inc uint32) bool {
	if peer < 0 || peer >= d.tr.Nodes() || peer == d.tr.Node() {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return false
	}
	if d.members.StaleIncarnation(peer, inc) {
		d.mset.Counter(routing.CtrStaleControl).Inc()
		return false
	}
	if d.members.ObserveIncarnation(peer, inc) {
		d.purgeRelaysViaLocked(peer, d.clock.Now())
	}
	return true
}

// purgeRelaysViaLocked tears down every route relaying through via —
// installed against a life of via that no longer holds the matching
// state — and immediately looks for replacements. Caller holds d.mu.
func (d *Daemon) purgeRelaysViaLocked(via int, now time.Duration) {
	for _, dst := range d.routes.ViaRelay(via) {
		d.repairLocked(dst, now)
	}
}
