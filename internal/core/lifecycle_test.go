package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"drsnet/internal/netsim"
	"drsnet/internal/routing"
	"drsnet/internal/routing/wire"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

// lifecycleDaemon builds a single daemon on a fresh simulated network,
// for tests that inject crafted control frames directly.
func lifecycleDaemon(t *testing.T, nodes int, cfg Config) (*Daemon, *trace.Log) {
	t.Helper()
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(nodes), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	log := trace.NewLog(0)
	cfg.Trace = log
	d, err := New(routing.NewSimNode(net, 0), routing.SimClock{Sched: sched}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d, log
}

// TestCheckpointJSONRoundTrip: the warm-start image is plain
// serializable data — a real deployment would persist it across the
// process crash — so it must survive JSON exactly.
func TestCheckpointJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Incarnation = 1
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	c.net.Fail(c.net.Cluster().NIC(1, 0))
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)

	cp := c.daemons[0].Checkpoint()
	if cp.Node != 0 || cp.Incarnation != 1 || len(cp.Peers) != 2 {
		t.Fatalf("checkpoint header = %+v", cp)
	}
	if cp.TakenAt != c.sched.Now().Duration() {
		t.Fatalf("TakenAt = %v, want %v", cp.TakenAt, c.sched.Now().Duration())
	}
	// The image reflects the failure: route to 1 moved off rail 0, and
	// the dead path is recorded down while the healthy ones carry RTTs.
	var ps *PeerState
	for i := range cp.Peers {
		if cp.Peers[i].Peer == 1 {
			ps = &cp.Peers[i]
		}
	}
	if ps == nil || ps.Route.Kind != RouteDirect || ps.Route.Rail != 1 {
		t.Fatalf("peer-1 state = %+v", ps)
	}
	if ps.Rails[0].Up || !ps.Rails[1].Up {
		t.Fatalf("rail states = %+v", ps.Rails)
	}
	if ps.Rails[1].SRTT <= 0 || ps.Rails[1].Samples == 0 {
		t.Fatalf("healthy rail carries no RTT estimate: %+v", ps.Rails[1])
	}

	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, &back) {
		t.Fatalf("round trip changed the checkpoint:\n%+v\n%+v", cp, &back)
	}
}

// TestWarmRestoreValidation: a checkpoint that cannot belong to this
// daemon's previous life is rejected at construction.
func TestWarmRestoreValidation(t *testing.T) {
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(3), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := routing.NewSimNode(net, 0)
	clock := routing.SimClock{Sched: sched}
	valid := func() *Checkpoint {
		return &Checkpoint{Node: 0, Incarnation: 1, Peers: []PeerState{
			{Peer: 1, Route: Route{Kind: RouteDirect, Rail: 1, Via: 1}, Rails: make([]RailState, 2)},
		}}
	}
	// The valid baseline is accepted.
	cfg := DefaultConfig()
	cfg.Incarnation = 2
	cfg.Restore = valid()
	if _, err := New(tr, clock, cfg); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}

	cases := []struct {
		name        string
		incarnation uint32
		mutate      func(*Checkpoint)
		wantErr     string
	}{
		{"restore without incarnation", 0, func(cp *Checkpoint) {},
			"warm restore requires a nonzero incarnation"},
		{"foreign node", 2, func(cp *Checkpoint) { cp.Node = 1 },
			"checkpoint of node 1 restored on node 0"},
		{"same incarnation", 2, func(cp *Checkpoint) { cp.Incarnation = 2 },
			"not older"},
		{"newer incarnation", 2, func(cp *Checkpoint) { cp.Incarnation = 5 },
			"not older"},
		{"self as peer", 2, func(cp *Checkpoint) { cp.Peers[0].Peer = 0 },
			"invalid for node"},
		{"peer out of range", 2, func(cp *Checkpoint) { cp.Peers[0].Peer = 7 },
			"invalid for node"},
		{"rail count mismatch", 2, func(cp *Checkpoint) { cp.Peers[0].Rails = cp.Peers[0].Rails[:1] },
			"carries 1 rails"},
		{"malformed route", 2, func(cp *Checkpoint) { cp.Peers[0].Route.Rail = 5 },
			"malformed"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		cfg.Incarnation = tc.incarnation
		cfg.Restore = valid()
		tc.mutate(cfg.Restore)
		_, err := New(tr, clock, cfg)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestWarmRestoreSeedsPreviousLife is the core of warm recovery: a
// daemon rebuilt from its predecessor's checkpoint opens with the old
// route table, link states and RTT estimates instead of re-learning
// them, and the restored route is visible in the trace before the
// first probe round runs.
func TestWarmRestoreSeedsPreviousLife(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Incarnation = 1
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	c.net.Fail(c.net.Cluster().NIC(1, 0))
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)
	if rt := c.daemons[0].RouteTo(1); rt.Kind != RouteDirect || rt.Rail != 1 {
		t.Fatalf("pre-crash route = %+v, want direct rail 1", rt)
	}

	// Crash node 0: checkpoint, stop, rebuild warm in the next life.
	cp := c.daemons[0].Checkpoint()
	c.daemons[0].Stop()
	cfg2 := cfg
	cfg2.Incarnation = 2
	cfg2.Restore = cp
	cfg2.Trace = c.log
	d, err := New(routing.NewSimNode(c.net, 0), routing.SimClock{Sched: c.sched}, cfg2)
	if err != nil {
		t.Fatal(err)
	}

	// Before the daemon even starts, the previous life's knowledge is
	// back: the failed-over route, the dead rail, the RTT estimates.
	if rt := d.RouteTo(1); rt.Kind != RouteDirect || rt.Rail != 1 {
		t.Fatalf("restored route = %+v, want direct rail 1", rt)
	}
	if d.LinkUp(1, 0) {
		t.Fatal("dead rail restored as up")
	}
	if !d.LinkUp(1, 1) {
		t.Fatal("healthy rail restored as down")
	}
	got, ok := d.RTT(1, 1)
	if !ok {
		t.Fatal("RTT estimate not restored")
	}
	var want RailState
	for _, ps := range cp.Peers {
		if ps.Peer == 1 {
			want = ps.Rails[1]
		}
	}
	if got.SRTT != want.SRTT || got.RTTVar != want.RTTVar || got.Samples != want.Samples {
		t.Fatalf("restored RTT = %+v, checkpointed %+v", got, want)
	}

	// Exactly one warm-restore trace event: the failed-over route to 1.
	// The route to 2 matches the cold default and is not re-announced.
	restores := 0
	for _, e := range c.log.Events() {
		if e.Kind == trace.KindRouteInstalled && strings.Contains(e.Detail, "warm restore") {
			restores++
			if e.Node != 0 || e.Peer != 1 || e.Rail != 1 {
				t.Fatalf("warm restore event = %+v", e)
			}
		}
	}
	if restores != 1 {
		t.Fatalf("warm restore events = %d, want 1", restores)
	}

	// The new life runs: traffic flows on the restored route at once.
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	c.daemons[0] = d
	if err := d.SendData(1, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	c.runFor(100 * time.Millisecond)
	if len(c.delivered[1]) != 1 || c.delivered[1][0].data != "warm" {
		t.Fatalf("delivered = %v", c.delivered[1])
	}
}

// TestWarmRestoreDynamicReaddsPeers: under dynamic membership the
// checkpointed peers are re-admitted to the monitored set instead of
// waiting for their next hello.
func TestWarmRestoreDynamicReaddsPeers(t *testing.T) {
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(3), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DynamicMembership = true
	cfg.Incarnation = 2
	cfg.Restore = &Checkpoint{Node: 0, Incarnation: 1, Peers: []PeerState{{
		Peer:        1,
		LastHeard:   5 * time.Millisecond,
		Incarnation: 3,
		Route:       Route{Kind: RouteDirect, Rail: 1, Via: 1},
		Rails:       []RailState{{Up: true}, {Up: false}},
	}}}
	d, err := New(routing.NewSimNode(net, 0), routing.SimClock{Sched: sched}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if peers := d.Peers(); len(peers) != 1 || peers[0] != 1 {
		t.Fatalf("peers after restore = %v, want [1]", peers)
	}
	if rt := d.RouteTo(1); rt.Kind != RouteDirect || rt.Rail != 1 {
		t.Fatalf("route = %+v", rt)
	}
	if !d.LinkUp(1, 0) || d.LinkUp(1, 1) {
		t.Fatal("rail states not restored")
	}
	if inc := d.members.Incarnation(1); inc != 3 {
		t.Fatalf("peer incarnation = %d, want 3", inc)
	}
}

// TestDeadRelayPurgedOnGoodbye is the purge-on-death regression test:
// when a relay leaves the cluster, routes relaying through it must die
// with it immediately — no data frame may be forwarded into the dead
// relay while its links time out.
func TestDeadRelayPurgedOnGoodbye(t *testing.T) {
	cfg := DefaultConfig()
	c := dynamicCluster(t, 4, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)

	// Strand 0 and 1 on opposite rails: only a relay connects them.
	cl := c.net.Cluster()
	c.net.Fail(cl.NIC(0, 0))
	c.net.Fail(cl.NIC(1, 1))
	c.runFor(time.Duration(cfg.MissThreshold+3) * cfg.ProbeInterval)
	if err := c.daemons[0].SendData(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	c.runFor(2 * cfg.ProbeInterval)
	rt := c.daemons[0].RouteTo(1)
	if rt.Kind != RouteRelay {
		t.Fatalf("route = %+v, want relay", rt)
	}
	relay := rt.Via
	if len(c.delivered[1]) != 1 {
		t.Fatalf("relay path never worked: %v", c.delivered[1])
	}

	// The relay dies with a goodbye. The route through it must be gone
	// by the time the goodbye has propagated — not MissThreshold probe
	// rounds later.
	c.daemons[relay].Leave()
	c.runFor(cfg.ProbeInterval)
	if rt := c.daemons[0].RouteTo(1); rt.Kind == RouteRelay && rt.Via == relay {
		t.Fatalf("route still relays through departed node %d", relay)
	}

	// Traffic after the death must flow via the surviving relay and
	// never enter the dead one.
	forwardedBefore := c.daemons[relay].Metrics().Counter(routing.CtrDataForwarded).Value()
	if err := c.daemons[0].SendData(1, []byte("after")); err != nil {
		t.Fatal(err)
	}
	c.runFor(2 * cfg.ProbeInterval)
	if len(c.delivered[1]) != 2 || c.delivered[1][1].data != "after" {
		t.Fatalf("delivery after relay death failed: %v", c.delivered[1])
	}
	if got := c.daemons[relay].Metrics().Counter(routing.CtrDataForwarded).Value(); got != forwardedBefore {
		t.Fatalf("dead relay forwarded %d more frames", got-forwardedBefore)
	}
	if rt := c.daemons[0].RouteTo(1); rt.Kind != RouteRelay || rt.Via == relay {
		t.Fatalf("post-death route = %+v, want relay via a survivor", rt)
	}
}

// TestStaleOfferRace is the out-of-order-delivery race the incarnation
// stamp exists for: a route offer issued by a relay's previous life
// arrives after the relay rebooted. Accepting it would install a route
// the relay's current life does not hold.
func TestStaleOfferRace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DynamicMembership = true
	cfg.Incarnation = 1
	d, _ := lifecycleDaemon(t, 3, cfg)

	// Learn the two peers from stamped hellos: node 1 (the target) and
	// node 2, whose current life is incarnation 5.
	d.onControl(0, 1, wire.MarshalHelloInc(1))
	d.onControl(0, 2, wire.MarshalHelloInc(5))

	// Node 1 becomes unreachable; a send queues and opens discovery.
	d.mu.Lock()
	d.links.State(1, 0).Up = false
	d.links.State(1, 1).Up = false
	d.routes.SetRoute(1, Route{Kind: RouteNone})
	d.mu.Unlock()
	if err := d.SendData(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	q, ok := d.routes.Pending(1)
	d.mu.Unlock()
	if !ok {
		t.Fatal("send did not open a discovery")
	}

	// A delayed offer from node 2's incarnation 3 — two lives ago —
	// arrives with the matching discovery sequence. Without the stamp
	// this is indistinguishable from a valid answer.
	stale := routeOffer{Origin: 0, Target: 1, Seq: q.Seq, Relay: 2}
	d.onControl(0, 2, marshalOfferInc(stale, 3))
	if got := d.Metrics().Counter(routing.CtrStaleControl).Value(); got != 1 {
		t.Fatalf("control.stale = %d, want 1", got)
	}
	if rt := d.RouteTo(1); rt.Kind != RouteNone {
		t.Fatalf("stale offer installed route %+v", rt)
	}

	// The same offer stamped with the current life is accepted.
	d.onControl(0, 2, marshalOfferInc(stale, 5))
	if rt := d.RouteTo(1); rt.Kind != RouteRelay || rt.Via != 2 {
		t.Fatalf("current-life offer rejected: route = %+v", rt)
	}

	// A later hello revealing incarnation 6 (the rejoin broadcast was
	// lost) purges the relay route installed against life 5.
	d.onControl(0, 2, wire.MarshalHelloInc(6))
	if rt := d.RouteTo(1); rt.Kind == RouteRelay && rt.Via == 2 {
		t.Fatal("relay route survived the relay's reboot")
	}
}

// TestStaleHelloRejected: a hello from a previous life neither
// refreshes liveness nor rolls the incarnation view back.
func TestStaleHelloRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DynamicMembership = true
	cfg.Incarnation = 1
	d, _ := lifecycleDaemon(t, 3, cfg)
	d.onControl(0, 2, wire.MarshalHelloInc(5))
	if inc := d.members.Incarnation(2); inc != 5 {
		t.Fatalf("incarnation = %d, want 5", inc)
	}
	d.onControl(0, 2, wire.MarshalHelloInc(3))
	if got := d.Metrics().Counter(routing.CtrStaleControl).Value(); got != 1 {
		t.Fatalf("control.stale = %d, want 1", got)
	}
	if inc := d.members.Incarnation(2); inc != 5 {
		t.Fatalf("stale hello rolled incarnation back to %d", inc)
	}
}

// TestRejoinPurgesRelayRoutes pins the rejoin handshake's semantics:
// the first sighting of a peer purges nothing, a genuine reboot purges
// every route relaying through the peer's previous life, and duplicate
// rejoins are idempotent.
func TestRejoinPurgesRelayRoutes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Incarnation = 1
	d, log := lifecycleDaemon(t, 4, cfg)

	// Route to 3 relays through 2; no direct rail to 3 works.
	d.mu.Lock()
	d.links.State(3, 0).Up = false
	d.links.State(3, 1).Up = false
	d.routes.SetRoute(3, Route{Kind: RouteRelay, Rail: 0, Via: 2})
	d.mu.Unlock()

	rejoined := func() int {
		n := 0
		for _, e := range log.Events() {
			if e.Kind == trace.KindPeerRejoined {
				n++
			}
		}
		return n
	}

	// First sighting (cluster start): record the incarnation, purge
	// nothing — tearing down good routes on first contact would make
	// every cold boot a routing event.
	d.onControl(0, 2, wire.MarshalRejoin(1))
	if rt := d.RouteTo(3); rt.Kind != RouteRelay || rt.Via != 2 {
		t.Fatalf("first rejoin purged the relay route: %+v", rt)
	}
	if rejoined() != 0 {
		t.Fatal("first sighting logged as a rejoin")
	}

	// The relay reboots: its state is gone, the route must go too.
	d.onControl(0, 2, wire.MarshalRejoin(2))
	if rt := d.RouteTo(3); rt.Kind == RouteRelay && rt.Via == 2 {
		t.Fatal("reboot left the relay route installed")
	}
	if rejoined() != 1 {
		t.Fatalf("rejoin events = %d, want 1", rejoined())
	}
	var ev trace.Event
	for _, e := range log.Events() {
		if e.Kind == trace.KindPeerRejoined {
			ev = e
		}
	}
	if ev.Peer != 2 || !strings.Contains(ev.Detail, "incarnation 1->2") {
		t.Fatalf("rejoin event = %+v", ev)
	}

	// A duplicate of the same rejoin (broadcast on two rails) is a
	// no-op.
	d.onControl(1, 2, wire.MarshalRejoin(2))
	if rejoined() != 1 {
		t.Fatal("duplicate rejoin double-counted")
	}
}
