package membership

import (
	"testing"

	"drsnet/internal/routing/wire"
)

// TestIncarnationObservation pins the reboot-detection contract: a
// first sighting records silently, an advance from a known life
// reports a reboot, and anything older or equal is a no-op.
func TestIncarnationObservation(t *testing.T) {
	m := New(4)
	if m.Incarnation(2) != 0 {
		t.Fatal("fresh tracker has an incarnation")
	}
	// First sighting: recorded, but NOT a reboot — purging relay routes
	// on first contact would tear down perfectly good state.
	if m.ObserveIncarnation(2, 3) {
		t.Fatal("first sighting reported as a reboot")
	}
	if m.Incarnation(2) != 3 {
		t.Fatalf("incarnation = %d, want 3", m.Incarnation(2))
	}
	// Same incarnation again: no-op.
	if m.ObserveIncarnation(2, 3) {
		t.Fatal("unchanged incarnation reported as a reboot")
	}
	// Advance: the peer rebooted.
	if !m.ObserveIncarnation(2, 4) {
		t.Fatal("advance from a known life not reported as a reboot")
	}
	// Regression: an older stamp never rolls the view back.
	if m.ObserveIncarnation(2, 1) {
		t.Fatal("stale incarnation reported as a reboot")
	}
	if m.Incarnation(2) != 4 {
		t.Fatalf("incarnation rolled back to %d", m.Incarnation(2))
	}
}

func TestStaleIncarnation(t *testing.T) {
	m := New(4)
	// Nothing is stale before the first sighting.
	if m.StaleIncarnation(1, 0) || m.StaleIncarnation(1, 7) {
		t.Fatal("stale before any observation")
	}
	m.ObserveIncarnation(1, 5)
	if !m.StaleIncarnation(1, 4) {
		t.Fatal("older incarnation not stale")
	}
	if m.StaleIncarnation(1, 5) || m.StaleIncarnation(1, 6) {
		t.Fatal("current/newer incarnation reported stale")
	}
}

// TestRejoinAndAnnounceInc: the lifecycle broadcasts carry the
// incarnation on every rail.
func TestRejoinAndAnnounceInc(t *testing.T) {
	tr := &broadcastRecorder{rails: 2}
	Rejoin(tr, 7)
	AnnounceInc(tr, 7)
	if len(tr.frames) != 4 {
		t.Fatalf("%d frames broadcast, want 4", len(tr.frames))
	}
	for i, frame := range tr.frames {
		proto, body, err := wire.SplitEnvelope(frame)
		if err != nil || proto != wire.ProtoControl {
			t.Fatalf("frame %d malformed: %v", i, err)
		}
		var inc uint32
		if i < 2 {
			inc, err = wire.UnmarshalRejoin(body)
		} else {
			inc, err = wire.UnmarshalHelloInc(body)
		}
		if err != nil || inc != 7 {
			t.Fatalf("frame %d: inc=%d err=%v", i, inc, err)
		}
	}
}
