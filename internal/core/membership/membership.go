// Package membership implements the DRS's dynamic-membership
// extension: instead of the deployed system's statically configured
// host list, daemons announce themselves with a hello each probe
// round, retract themselves with a goodbye, and forget peers that
// have gone silent. The Tracker only keeps the who-and-when
// bookkeeping; the owning daemon decides what joining or leaving does
// to its monitoring and route state.
//
// A Tracker is not goroutine-safe; the daemon serializes access under
// its own lock.
package membership

import (
	"time"

	"drsnet/internal/routing"
	"drsnet/internal/routing/wire"
)

// Tracker records which peers are statically configured and when each
// peer was last heard from.
type Tracker struct {
	static    []bool
	lastHeard []time.Duration
}

// New returns a tracker for a cluster of nodes.
func New(nodes int) *Tracker {
	return &Tracker{
		static:    make([]bool, nodes),
		lastHeard: make([]time.Duration, nodes),
	}
}

// MarkStatic pins peer as pre-configured: static members are never
// forgotten, no matter how long they stay silent.
func (m *Tracker) MarkStatic(peer int) { m.static[peer] = true }

// IsStatic reports whether peer is pre-configured.
func (m *Tracker) IsStatic(peer int) bool { return m.static[peer] }

// Heard records valid traffic from peer at now.
func (m *Tracker) Heard(peer int, now time.Duration) { m.lastHeard[peer] = now }

// LastHeard returns the last time peer produced valid traffic.
func (m *Tracker) LastHeard(peer int) time.Duration { return m.lastHeard[peer] }

// Stale reports whether a dynamically learned peer has been silent on
// every rail for longer than ttl (static members are never stale).
func (m *Tracker) Stale(peer int, now, ttl time.Duration) bool {
	return !m.static[peer] && now-m.lastHeard[peer] > ttl
}

// Announce broadcasts a hello on every rail so unknown peers learn
// the sender (and the sender learns them from their hellos).
func Announce(tr routing.Transport) {
	hello := routing.Envelope(routing.ProtoControl, wire.MarshalHello())
	for rail := 0; rail < tr.Rails(); rail++ {
		_ = tr.Send(rail, routing.Broadcast, hello)
	}
}

// Goodbye broadcasts a departure announcement on every rail.
func Goodbye(tr routing.Transport) {
	bye := routing.Envelope(routing.ProtoControl, wire.MarshalGoodbye())
	for rail := 0; rail < tr.Rails(); rail++ {
		_ = tr.Send(rail, routing.Broadcast, bye)
	}
}
