// Package membership implements the DRS's dynamic-membership
// extension: instead of the deployed system's statically configured
// host list, daemons announce themselves with a hello each probe
// round, retract themselves with a goodbye, and forget peers that
// have gone silent. The Tracker only keeps the who-and-when
// bookkeeping; the owning daemon decides what joining or leaving does
// to its monitoring and route state.
//
// A Tracker is not goroutine-safe; the daemon serializes access under
// its own lock.
package membership

import (
	"time"

	"drsnet/internal/routing"
	"drsnet/internal/routing/wire"
)

// Tracker records which peers are statically configured, when each
// peer was last heard from, and — when the crash–restart lifecycle is
// enabled — the highest incarnation number observed per peer.
type Tracker struct {
	static    []bool
	lastHeard []time.Duration
	inc       []uint32
}

// New returns a tracker for a cluster of nodes.
func New(nodes int) *Tracker {
	return &Tracker{
		static:    make([]bool, nodes),
		lastHeard: make([]time.Duration, nodes),
		inc:       make([]uint32, nodes),
	}
}

// MarkStatic pins peer as pre-configured: static members are never
// forgotten, no matter how long they stay silent.
func (m *Tracker) MarkStatic(peer int) { m.static[peer] = true }

// IsStatic reports whether peer is pre-configured.
func (m *Tracker) IsStatic(peer int) bool { return m.static[peer] }

// Heard records valid traffic from peer at now.
func (m *Tracker) Heard(peer int, now time.Duration) { m.lastHeard[peer] = now }

// LastHeard returns the last time peer produced valid traffic.
func (m *Tracker) LastHeard(peer int) time.Duration { return m.lastHeard[peer] }

// Stale reports whether a dynamically learned peer has been silent on
// every rail for longer than ttl (static members are never stale).
func (m *Tracker) Stale(peer int, now, ttl time.Duration) bool {
	return !m.static[peer] && now-m.lastHeard[peer] > ttl
}

// Incarnation returns the highest incarnation observed from peer
// (zero until the first incarnation-stamped frame).
func (m *Tracker) Incarnation(peer int) uint32 { return m.inc[peer] }

// ObserveIncarnation records inc when it is newer than the stored
// view. It reports whether the view advanced from one known life to
// another — a reboot observed mid-flight; first sightings (from zero)
// record silently and return false.
func (m *Tracker) ObserveIncarnation(peer int, inc uint32) (rebooted bool) {
	cur := m.inc[peer]
	if inc > cur {
		m.inc[peer] = inc
		return cur != 0
	}
	return false
}

// StaleIncarnation reports whether inc belongs to a previous life of
// peer — a control frame stamped with it must be dropped.
func (m *Tracker) StaleIncarnation(peer int, inc uint32) bool {
	return inc < m.inc[peer]
}

// Announce broadcasts a hello on every rail so unknown peers learn
// the sender (and the sender learns them from their hellos).
func Announce(tr routing.Transport) {
	hello := routing.Envelope(routing.ProtoControl, wire.MarshalHello())
	for rail := 0; rail < tr.Rails(); rail++ {
		_ = tr.Send(rail, routing.Broadcast, hello)
	}
}

// AnnounceInc broadcasts an incarnation-stamped hello on every rail
// (the lifecycle-enabled variant of Announce).
func AnnounceInc(tr routing.Transport, inc uint32) {
	hello := routing.Envelope(routing.ProtoControl, wire.MarshalHelloInc(inc))
	for rail := 0; rail < tr.Rails(); rail++ {
		_ = tr.Send(rail, routing.Broadcast, hello)
	}
}

// Goodbye broadcasts a departure announcement on every rail.
func Goodbye(tr routing.Transport) {
	bye := routing.Envelope(routing.ProtoControl, wire.MarshalGoodbye())
	for rail := 0; rail < tr.Rails(); rail++ {
		_ = tr.Send(rail, routing.Broadcast, bye)
	}
}

// Rejoin broadcasts a rejoin announcement on every rail: the restart
// handshake a recovering daemon opens with, telling peers its new
// incarnation so they purge state from the previous life.
func Rejoin(tr routing.Transport, inc uint32) {
	msg := routing.Envelope(routing.ProtoControl, wire.MarshalRejoin(inc))
	for rail := 0; rail < tr.Rails(); rail++ {
		_ = tr.Send(rail, routing.Broadcast, msg)
	}
}
