package membership

import (
	"testing"
	"time"

	"drsnet/internal/routing"
	"drsnet/internal/routing/wire"
)

func TestTracker(t *testing.T) {
	m := New(4)
	m.MarkStatic(1)
	if !m.IsStatic(1) || m.IsStatic(2) {
		t.Fatal("static marks wrong")
	}
	m.Heard(2, 5*time.Second)
	if m.LastHeard(2) != 5*time.Second {
		t.Fatalf("last heard = %v", m.LastHeard(2))
	}
	// Dynamic peer 2: stale only once silence exceeds ttl.
	if m.Stale(2, 7*time.Second, 2*time.Second) {
		t.Fatal("stale at exactly ttl")
	}
	if !m.Stale(2, 7*time.Second+time.Nanosecond, 2*time.Second) {
		t.Fatal("not stale past ttl")
	}
	// Static peer 1 never goes stale.
	if m.Stale(1, time.Hour, time.Second) {
		t.Fatal("static peer went stale")
	}
}

// broadcastRecorder counts hello/goodbye broadcasts per rail.
type broadcastRecorder struct {
	rails  int
	frames [][]byte
	dsts   []int
}

func (r *broadcastRecorder) Node() int  { return 0 }
func (r *broadcastRecorder) Nodes() int { return 4 }
func (r *broadcastRecorder) Rails() int { return r.rails }
func (r *broadcastRecorder) Send(rail, dst int, payload []byte) error {
	r.frames = append(r.frames, payload)
	r.dsts = append(r.dsts, dst)
	return nil
}
func (r *broadcastRecorder) SetReceiver(func(rail, src int, payload []byte)) {}

func TestAnnounceAndGoodbye(t *testing.T) {
	tr := &broadcastRecorder{rails: 2}
	Announce(tr)
	Goodbye(tr)
	if len(tr.frames) != 4 {
		t.Fatalf("%d frames broadcast, want 4", len(tr.frames))
	}
	for i, frame := range tr.frames {
		if tr.dsts[i] != routing.Broadcast {
			t.Fatalf("frame %d sent to %d, not broadcast", i, tr.dsts[i])
		}
		proto, body, err := wire.SplitEnvelope(frame)
		if err != nil || proto != wire.ProtoControl || len(body) != 1 {
			t.Fatalf("frame %d malformed: proto=%d body=%v err=%v", i, proto, body, err)
		}
		want := byte(wire.MsgHello)
		if i >= 2 {
			want = wire.MsgGoodbye
		}
		if body[0] != want {
			t.Fatalf("frame %d type = %d, want %d", i, body[0], want)
		}
	}
}
