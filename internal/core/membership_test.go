package core

import (
	"testing"
	"time"

	"drsnet/internal/netsim"
	"drsnet/internal/routing"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

// dynamicCluster builds daemons with dynamic membership and an empty
// initial monitor set.
func dynamicCluster(t *testing.T, n int, cfg Config) *cluster {
	t.Helper()
	cfg.DynamicMembership = true
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(n), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{sched: sched, net: net, delivered: make([][]msg, n)}
	clock := routing.SimClock{Sched: sched}
	for node := 0; node < n; node++ {
		node := node
		d, err := New(routing.NewSimNode(net, node), clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.SetDeliverFunc(func(src int, data []byte) {
			c.delivered[node] = append(c.delivered[node], msg{src, string(data)})
		})
		c.daemons = append(c.daemons, d)
	}
	for _, d := range c.daemons {
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestDynamicDiscoveryFromEmpty(t *testing.T) {
	cfg := DefaultConfig()
	c := dynamicCluster(t, 4, cfg)
	defer c.stop()
	// Before any hello exchange, nobody knows anybody.
	if got := c.daemons[0].Peers(); len(got) != 0 {
		t.Fatalf("peers before discovery = %v", got)
	}
	if err := c.daemons[0].SendData(1, []byte("x")); err == nil {
		t.Fatal("send to undiscovered peer accepted")
	}
	c.runFor(3 * cfg.ProbeInterval)
	for node, d := range c.daemons {
		if got := d.Peers(); len(got) != 3 {
			t.Fatalf("node %d discovered %v, want 3 peers", node, got)
		}
	}
	// Discovered peers route and deliver.
	if err := c.daemons[0].SendData(3, []byte("found-you")); err != nil {
		t.Fatal(err)
	}
	c.runFor(200 * time.Millisecond)
	if len(c.delivered[3]) != 1 || c.delivered[3][0].data != "found-you" {
		t.Fatalf("delivered = %v", c.delivered[3])
	}
}

func TestDynamicLateJoiner(t *testing.T) {
	// Build 4 daemons but start the last one later: the early three
	// must pick it up when it finally says hello.
	cfg := DefaultConfig()
	cfg.DynamicMembership = true
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(4), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	clock := routing.SimClock{Sched: sched}
	var daemons []*Daemon
	for node := 0; node < 4; node++ {
		d, err := New(routing.NewSimNode(net, node), clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		daemons = append(daemons, d)
	}
	for node := 0; node < 3; node++ {
		if err := daemons[node].Start(); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, d := range daemons {
			d.Stop()
		}
	}()
	sched.RunUntil(simtime.Time(3 * time.Second))
	if got := daemons[0].Peers(); len(got) != 2 {
		t.Fatalf("early peers = %v, want 2", got)
	}
	if err := daemons[3].Start(); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(simtime.Time(6 * time.Second))
	for node := 0; node < 3; node++ {
		found := false
		for _, p := range daemons[node].Peers() {
			if p == 3 {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d did not discover the late joiner", node)
		}
	}
	if got := daemons[3].Peers(); len(got) != 3 {
		t.Fatalf("late joiner discovered %v", got)
	}
}

func TestDynamicGoodbyeRemovesPeer(t *testing.T) {
	cfg := DefaultConfig()
	c := dynamicCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(3 * cfg.ProbeInterval)
	if len(c.daemons[0].Peers()) != 2 {
		t.Fatal("discovery incomplete")
	}
	c.daemons[2].Leave()
	c.runFor(cfg.ProbeInterval)
	for node := 0; node < 2; node++ {
		for _, p := range c.daemons[node].Peers() {
			if p == 2 {
				t.Fatalf("node %d still monitors departed peer", node)
			}
		}
	}
	// The departed node's routes are gone.
	if rt := c.daemons[0].RouteTo(2); rt.Kind != RouteNone {
		t.Fatalf("route to departed peer = %+v", rt)
	}
}

func TestDynamicForgetSilentPeer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ForgetAfter = 5 * time.Second
	c := dynamicCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(3 * cfg.ProbeInterval)
	if len(c.daemons[0].Peers()) != 2 {
		t.Fatal("discovery incomplete")
	}
	// Node 2 falls off the network entirely (both NICs die) without a
	// goodbye; after ForgetAfter it is dropped.
	cl := c.net.Cluster()
	c.net.Fail(cl.NIC(2, 0))
	c.net.Fail(cl.NIC(2, 1))
	c.runFor(cfg.ForgetAfter + 3*cfg.ProbeInterval)
	for _, p := range c.daemons[0].Peers() {
		if p == 2 {
			t.Fatal("silent peer never forgotten")
		}
	}
	// Live peers are unaffected.
	if len(c.daemons[0].Peers()) != 1 {
		t.Fatalf("peers = %v", c.daemons[0].Peers())
	}
	// When the peer comes back and hellos, it is re-learned.
	c.net.Restore(cl.NIC(2, 0))
	c.net.Restore(cl.NIC(2, 1))
	c.runFor(3 * cfg.ProbeInterval)
	if len(c.daemons[0].Peers()) != 2 {
		t.Fatalf("returning peer not re-learned: %v", c.daemons[0].Peers())
	}
}

func TestStaticSeedsNeverForgotten(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DynamicMembership = true
	cfg.ForgetAfter = 2 * time.Second
	cfg.Monitor = []int{1} // node 1 is a static seed
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(3), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	clock := routing.SimClock{Sched: sched}
	d, err := New(routing.NewSimNode(net, 0), clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	// Nobody else runs: node 1 is silent forever, but being a static
	// seed it must stay monitored (just marked down).
	sched.RunUntil(simtime.Time(10 * time.Second))
	peers := d.Peers()
	if len(peers) != 1 || peers[0] != 1 {
		t.Fatalf("peers = %v, want the static seed", peers)
	}
	if d.LinkUp(1, 0) || d.LinkUp(1, 1) {
		t.Fatal("silent static peer should be marked down")
	}
}

func TestDynamicFailoverStillWorks(t *testing.T) {
	cfg := DefaultConfig()
	c := dynamicCluster(t, 4, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	c.net.Fail(c.net.Cluster().NIC(1, 0))
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)
	rt := c.daemons[0].RouteTo(1)
	if rt.Kind != RouteDirect || rt.Rail != 1 {
		t.Fatalf("route = %+v, want direct rail 1", rt)
	}
	if err := c.daemons[0].SendData(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.runFor(200 * time.Millisecond)
	if len(c.delivered[1]) != 1 {
		t.Fatal("failover delivery failed under dynamic membership")
	}
}

func TestStaticModeIgnoresHellos(t *testing.T) {
	// A static-membership daemon must not learn peers from stray
	// hellos (configuration is authoritative, as deployed).
	cfg := DefaultConfig()
	cfg.Monitor = []int{1}
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(3), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	clock := routing.SimClock{Sched: sched}
	d, err := New(routing.NewSimNode(net, 0), clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if err := net.Send(2, 0, 0, routing.Envelope(routing.ProtoControl, marshalHello())); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(simtime.Time(time.Second))
	peers := d.Peers()
	if len(peers) != 1 || peers[0] != 1 {
		t.Fatalf("static daemon learned from hello: %v", peers)
	}
}

func TestDynamicConfigValidation(t *testing.T) {
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(3), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DynamicMembership = true
	cfg.ForgetAfter = -time.Second
	if _, err := New(routing.NewSimNode(net, 0), routing.SimClock{Sched: sched}, cfg); err == nil {
		t.Fatal("negative ForgetAfter accepted")
	}
}
