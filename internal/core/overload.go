package core

import (
	"fmt"
	"sort"
	"time"

	"drsnet/internal/core/membership"
	"drsnet/internal/dataplane"
	"drsnet/internal/linkmon"
	"drsnet/internal/routing"
	"drsnet/internal/trace"
)

// Overload protection: the daemon-side half of internal/overload.
//
// The budgets live in the layers that own the traffic they bound —
// linkmon carries the probe-retransmit bucket, routetable the
// discovery bucket — and this file supplies the orchestration: what a
// budget refusal defers, when the prioritized control queue drains,
// and what degraded mode pins. Everything is a no-op (and every hook
// a nil check) unless cfg.Overload.Enabled, so seeded goldens stay
// byte-identical with the layer off.

// rtoDeadlineLocked is the adaptive-RTO deadline for st, extended by
// up to JitterFrac of deterministic per-node jitter when overload
// protection is on — synchronized nodes desynchronize their
// retransmits instead of storming in lock-step. Caller holds d.mu.
func (d *Daemon) rtoDeadlineLocked(st *linkmon.State) time.Duration {
	dl := st.Deadline(d.cfg.AdaptiveRTO)
	if d.gov != nil {
		dl = d.jitter.Scale(dl, d.cfg.Overload.JitterFrac)
	}
	return dl
}

// shedLocked records one budget-saturation event with the governor,
// entering degraded mode when saturation crosses the threshold.
// Caller holds d.mu.
func (d *Daemon) shedLocked(now time.Duration) {
	if d.gov == nil {
		return
	}
	if d.gov.Shed(now) {
		d.mset.Counter(routing.CtrDegradedEnter).Inc()
		d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindDegradedEnter,
			Peer: -1, Rail: -1})
	}
}

// deferControlLocked parks a control intent on the prioritized queue
// (deduplicated, so one flapping peer cannot occupy it) and makes
// sure a drain is scheduled. Caller holds d.mu.
func (d *Daemon) deferControlLocked(it dataplane.ControlItem) {
	if d.ctrlQ == nil {
		return
	}
	if !d.ctrlQ.Contains(it) {
		d.ctrlQ.Push(it)
	}
	d.armDrainLocked()
}

// armDrainLocked schedules one control-queue drain a quarter probe
// interval out (jittered) unless one is already pending. The drain
// re-arms itself while work remains, so deferred intents trickle out
// at the budgeted rate instead of waiting for the next full round.
// Caller holds d.mu.
func (d *Daemon) armDrainLocked() {
	if d.ctrlQ == nil || d.drainArmed || d.stopped || d.ctrlQ.Len() == 0 {
		return
	}
	d.drainArmed = true
	delay := d.cfg.ProbeInterval / 4
	if delay <= 0 {
		delay = 50 * time.Millisecond
	}
	d.clock.AfterFunc(d.jitter.Scale(delay, d.cfg.Overload.JitterFrac), func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		d.drainArmed = false
		if d.stopped {
			return
		}
		d.drainControlLocked(d.clock.Now())
		d.armDrainLocked()
	})
}

// overloadRoundLocked is the probe round's overload housekeeping:
// re-evaluate the degraded-mode exit (unpinning routes when the storm
// has passed) and drain whatever deferred work the budgets now admit.
// Caller holds d.mu.
func (d *Daemon) overloadRoundLocked(now time.Duration) {
	if d.gov == nil {
		return
	}
	if exited, held := d.gov.Tick(now); exited {
		d.mset.Counter(routing.CtrDegradedNs).Add(int64(held))
		d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindDegradedExit,
			Peer: -1, Rail: -1, Detail: fmt.Sprintf("held %v", held)})
		d.unpinRoutesLocked(now)
	}
	d.drainControlLocked(now)
}

// unpinRoutesLocked re-evaluates every route kept last-known-good
// during the degraded episode, in ascending peer order so a seeded
// run replays identically. Caller holds d.mu.
func (d *Daemon) unpinRoutesLocked(now time.Duration) {
	if len(d.pinned) == 0 {
		return
	}
	peers := make([]int, 0, len(d.pinned))
	for peer := range d.pinned {
		peers = append(peers, peer)
	}
	sort.Ints(peers)
	for _, peer := range peers {
		delete(d.pinned, peer)
		if d.links.Monitored(peer) {
			d.repairLocked(peer, now)
		}
	}
}

// drainControlLocked services the prioritized control queue in class
// order — liveness re-probes, then deferred discoveries, then
// membership chatter — spending budget tokens as it goes and stopping
// a class the moment its budget runs dry. Caller holds d.mu.
func (d *Daemon) drainControlLocked(now time.Duration) {
	if d.ctrlQ == nil {
		return
	}
	for d.ctrlQ.Depth(dataplane.ClassLiveness) > 0 {
		it, _ := d.ctrlQ.PeekClass(dataplane.ClassLiveness)
		if !d.links.Monitored(it.Peer) {
			d.ctrlQ.PopClass(dataplane.ClassLiveness)
			continue
		}
		if !d.links.AllowRetransmit(now) {
			break
		}
		d.ctrlQ.PopClass(dataplane.ClassLiveness)
		d.reprobeLocked(it.Peer, now)
	}
	for d.ctrlQ.Depth(dataplane.ClassRepair) > 0 {
		it, _ := d.ctrlQ.PeekClass(dataplane.ClassRepair)
		if _, pending := d.routes.Pending(it.Peer); pending ||
			!d.links.Monitored(it.Peer) || d.routes.Route(it.Peer).Kind != RouteNone {
			d.ctrlQ.PopClass(dataplane.ClassRepair) // intent went stale
			continue
		}
		if !d.routes.AllowQuery(now) {
			break
		}
		d.ctrlQ.PopClass(dataplane.ClassRepair)
		d.sendQueryLocked(it.Peer, now)
	}
	if d.ctrlQ.Depth(dataplane.ClassDiscovery) > 0 && d.helloAllowedLocked(now) {
		// All queued hello intents collapse into the one broadcast.
		for {
			if _, ok := d.ctrlQ.PopClass(dataplane.ClassDiscovery); !ok {
				break
			}
		}
		d.announceLocked(now)
	}
}

// reprobeLocked sends a budget-admitted replacement probe to peer on
// every rail without an outstanding one — the liveness intent a shed
// retransmit parked. Caller holds d.mu.
func (d *Daemon) reprobeLocked(peer int, now time.Duration) {
	self := uint16(d.tr.Node())
	for rail := 0; rail < d.tr.Rails(); rail++ {
		st := d.links.State(peer, rail)
		if st == nil || st.Pending {
			continue
		}
		seq, down := d.links.BeginProbe(peer, rail, d.cfg.MissThreshold)
		if down {
			d.markDownLocked(peer, rail, now)
		}
		d.sendProbeLocked(self, peer, rail, seq, now, true)
		if d.cfg.AdaptiveRTO.Enabled() {
			deadline := d.rtoDeadlineLocked(st)
			d.clock.AfterFunc(deadline, func() { d.probeExpired(peer, rail, seq) })
		}
	}
}

// sendProbeLocked transmits one echo request carrying its send time
// (the wire copies, so no buffer is retained). Caller holds d.mu.
func (d *Daemon) sendProbeLocked(self uint16, peer, rail int, seq uint16, now time.Duration, retransmit bool) {
	if err := d.tr.Send(rail, peer, probeFrame(self, seq, now)); err == nil {
		d.mset.Counter(routing.CtrProbesSent).Inc()
		if retransmit {
			d.mset.Counter(routing.CtrProbeRetransmits).Inc()
		}
	}
}

// helloAllowedLocked reports whether a membership hello may broadcast
// now: not while degraded, and not before the min-interval gate
// reopens. Caller holds d.mu.
func (d *Daemon) helloAllowedLocked(now time.Duration) bool {
	if d.gov == nil {
		return true
	}
	if d.gov.Degraded() {
		return false
	}
	return d.cfg.Overload.HelloMinInterval == 0 || now >= d.nextHello
}

// announceLocked broadcasts the membership hello and closes the
// min-interval gate behind it, jittered so a cluster that restarted
// in lock-step staggers its chatter. Caller holds d.mu.
func (d *Daemon) announceLocked(now time.Duration) {
	if d.cfg.Incarnation > 0 {
		membership.AnnounceInc(d.tr, d.cfg.Incarnation)
	} else {
		membership.Announce(d.tr)
	}
	if d.gov != nil && d.cfg.Overload.HelloMinInterval > 0 {
		d.nextHello = now + d.jitter.Scale(d.cfg.Overload.HelloMinInterval, d.cfg.Overload.JitterFrac)
	}
}
