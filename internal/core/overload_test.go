package core

import (
	"testing"
	"time"

	"drsnet/internal/linkmon"
	"drsnet/internal/overload"
	"drsnet/internal/routing"
	"drsnet/internal/trace"
)

// overloadConfig is a test base: adaptive RTO on (retransmits exist to
// budget) plus an enabled overload layer the caller tightens.
func overloadConfig(ov overload.Config) Config {
	cfg := DefaultConfig()
	cfg.AdaptiveRTO = linkmon.DefaultRTO()
	cfg.Overload = ov
	return cfg
}

func TestOverloadStatusGauges(t *testing.T) {
	c := newCluster(t, 3, overloadConfig(overload.Default()))
	defer c.stop()
	c.runFor(2 * time.Second)
	s := c.daemons[0].Status()
	if s.Overload == nil {
		t.Fatal("overload enabled but Status().Overload is nil")
	}
	if s.Overload.Degraded {
		t.Fatal("healthy cluster reports degraded mode")
	}
	// No retransmits or discoveries on a healthy cluster: both buckets
	// should still be full.
	if got, want := s.Overload.ProbeTokens, float64(overload.DefaultProbeBurst); got != want {
		t.Fatalf("probe tokens = %v, want %v", got, want)
	}
	if got, want := s.Overload.QueryTokens, float64(overload.DefaultQueryBurst); got != want {
		t.Fatalf("query tokens = %v, want %v", got, want)
	}
	if len(s.Overload.Deferred) != 3 {
		t.Fatalf("deferred depths = %v, want one per class", s.Overload.Deferred)
	}

	// Disabled layer: the gauge block is absent.
	c2 := newCluster(t, 2, DefaultConfig())
	defer c2.stop()
	c2.runFor(time.Second)
	if s := c2.daemons[0].Status(); s.Overload != nil {
		t.Fatalf("overload disabled but Status().Overload = %+v", s.Overload)
	}
}

func TestOverloadBudgetBoundsRetransmits(t *testing.T) {
	ov := overload.Config{
		Enabled:       true,
		ProbeRate:     0.5,
		ProbeBurst:    2,
		DegradedSheds: -1, // isolate the budget from the governor
	}
	c := newCluster(t, 3, overloadConfig(ov))
	defer c.stop()
	c.runFor(3 * time.Second)

	// Kill node 1 outright: nodes 0 and 2 probe a black hole on both
	// rails, so every RTO expiry wants a retransmit.
	cl := c.net.Cluster()
	c.net.Fail(cl.NIC(1, 0))
	c.net.Fail(cl.NIC(1, 1))
	c.runFor(10 * time.Second)

	m := c.daemons[0].Metrics()
	retrans := m.Counter(routing.CtrProbeRetransmits).Value()
	shed := m.Counter(routing.CtrProbeShed).Value()
	// The bucket admits at most rate·T + burst retransmits over the
	// whole 13 s run.
	if max := int64(0.5*13.0 + 2.5); retrans > max {
		t.Fatalf("retransmits = %d, budget admits at most %d", retrans, max)
	}
	if shed == 0 {
		t.Fatal("dead peer on both rails but no retransmit was ever shed")
	}
	if m.Counter(routing.CtrCtrlDeferred).Value() == 0 {
		t.Fatal("sheds occurred but nothing was deferred to the control queue")
	}
}

func TestOverloadBudgetBoundsDiscovery(t *testing.T) {
	ov := overload.Config{
		Enabled:       true,
		QueryRate:     0.5,
		QueryBurst:    1,
		DegradedSheds: -1,
	}
	c := newCluster(t, 5, overloadConfig(ov))
	defer c.stop()
	c.runFor(3 * time.Second)

	// Cut nodes 2, 3 and 4 off entirely (so no surviving neighbor can
	// offer a stale relay), then keep offering node 4 traffic: every
	// send and every query timeout wants a fresh discovery broadcast.
	cl := c.net.Cluster()
	for _, peer := range []int{2, 3, 4} {
		c.net.Fail(cl.NIC(peer, 0))
		c.net.Fail(cl.NIC(peer, 1))
	}
	c.runFor(2 * time.Second)
	for i := 0; i < 10; i++ {
		if err := c.daemons[0].SendData(4, []byte("x")); err != nil {
			t.Fatal(err)
		}
		c.runFor(time.Second)
	}

	m := c.daemons[0].Metrics()
	sent := m.Counter(routing.CtrQueriesSent).Value()
	// queries.sent counts frames — one per rail per discovery — so the
	// budget bound is (rate·T + burst) · rails for the 15 s run.
	if max := int64(0.5*15.0+1.5) * 2; sent > max {
		t.Fatalf("query frames = %d, budget admits at most %d", sent, max)
	}
	if m.Counter(routing.CtrQueryShed).Value() == 0 {
		t.Fatal("discovery storm but no query was ever shed")
	}
}

func TestOverloadDegradedPinsAndRecovers(t *testing.T) {
	ov := overload.Config{
		Enabled:        true,
		ProbeRate:      0.1,
		ProbeBurst:     1,
		QueryRate:      0.1,
		QueryBurst:     1,
		DegradedSheds:  2,
		DegradedWindow: 4 * time.Second,
		DegradedQuiet:  2 * time.Second,
	}
	cfg := overloadConfig(ov)
	// A high miss threshold keeps the route installed while retransmit
	// sheds pile up, so the eventual teardown happens inside the
	// degraded episode and pins the route instead.
	cfg.MissThreshold = 8
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	if rt := c.daemons[0].RouteTo(2); rt.Kind != RouteDirect {
		t.Fatalf("warm-up route to 2 = %+v", rt)
	}

	cl := c.net.Cluster()
	c.net.Fail(cl.NIC(2, 0))
	c.net.Fail(cl.NIC(2, 1))
	c.runFor(8 * time.Second)

	if !c.daemons[0].Status().Overload.Degraded {
		t.Fatal("storm of shed retransmits did not enter degraded mode")
	}
	if got := c.log.Count(trace.KindDegradedEnter); got == 0 {
		t.Fatal("no degraded-enter event traced")
	}
	// The route to the dead peer is pinned last-known-good, not torn
	// down into a doomed discovery.
	if rt := c.daemons[0].RouteTo(2); rt.Kind != RouteDirect {
		t.Fatalf("degraded route to 2 = %+v, want pinned direct", rt)
	}
	if c.log.Count(trace.KindRoutePinned) == 0 {
		t.Fatal("no route-pinned event traced")
	}
	if got := c.daemons[0].Status().Overload.Pinned; got == 0 {
		t.Fatal("status reports no pinned routes while degraded")
	}

	// Heal. Probes succeed again, sheds stop, and after DegradedQuiet
	// the governor exits and re-evaluates the pins.
	c.net.Restore(cl.NIC(2, 0))
	c.net.Restore(cl.NIC(2, 1))
	c.runFor(8 * time.Second)

	st := c.daemons[0].Status()
	if st.Overload.Degraded {
		t.Fatal("storm healed but degraded mode never exited")
	}
	if st.Overload.Pinned != 0 {
		t.Fatalf("pins survived the degraded exit: %d", st.Overload.Pinned)
	}
	if c.log.Count(trace.KindDegradedExit) == 0 {
		t.Fatal("no degraded-exit event traced")
	}
	if err := c.daemons[0].SendData(2, []byte("post-heal")); err != nil {
		t.Fatal(err)
	}
	c.runFor(time.Second)
	if n := len(c.delivered[2]); n != 1 {
		t.Fatalf("post-heal delivery count = %d", n)
	}
}

func TestOverloadHelloSuppression(t *testing.T) {
	ov := overload.Config{
		Enabled:          true,
		HelloMinInterval: 4 * time.Second,
		DegradedSheds:    -1,
	}
	cfg := overloadConfig(ov)
	cfg.DynamicMembership = true
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(12 * time.Second)

	// The classic cadence is one hello per probe round; the gate floors
	// the gap at 4 s, so most rounds suppress their hello.
	m := c.daemons[0].Metrics()
	if m.Counter(routing.CtrHelloSuppressed).Value() == 0 {
		t.Fatal("hello min-interval set but nothing was suppressed")
	}
	// Suppression must not break discovery: everyone still learns
	// everyone from the hellos that do flow.
	for node, d := range c.daemons {
		for peer := 0; peer < 3; peer++ {
			if peer == node {
				continue
			}
			if rt := d.RouteTo(peer); rt.Kind == RouteNone {
				t.Fatalf("node %d never found a route to %d under hello suppression", node, peer)
			}
		}
	}
}

func TestOverloadEnabledDeterministic(t *testing.T) {
	run := func() []trace.Event {
		cfg := overloadConfig(overload.Default())
		cfg.DynamicMembership = true
		c := newCluster(t, 4, cfg)
		defer c.stop()
		c.runFor(3 * time.Second)
		cl := c.net.Cluster()
		c.net.Fail(cl.NIC(3, 0))
		c.net.Fail(cl.NIC(3, 1))
		c.runFor(6 * time.Second)
		c.net.Restore(cl.NIC(3, 0))
		c.net.Restore(cl.NIC(3, 1))
		c.runFor(6 * time.Second)
		return c.log.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
