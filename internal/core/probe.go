package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"drsnet/internal/dataplane"
	"drsnet/internal/icmp"
	"drsnet/internal/routing"
	"drsnet/internal/trace"
)

// ---------------------------------------------------------------
// Phase 1: link checks.

// probeRound runs one phase-1 round: account the previous round's
// misses, then probe every monitored peer on every rail. The rounds
// driver reschedules it after it returns.
func (d *Daemon) probeRound() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	now := d.clock.Now()
	// Overload housekeeping first: re-evaluate degraded mode and
	// drain whatever deferred control work the budgets now admit.
	d.overloadRoundLocked(now)
	// Dynamic membership: forget peers that have been silent too long
	// before probing them again.
	if d.cfg.DynamicMembership && d.cfg.ForgetAfter > 0 {
		for peer := 0; peer < d.links.Nodes(); peer++ {
			if !d.links.Monitored(peer) || d.members.IsStatic(peer) {
				continue
			}
			if d.members.Stale(peer, now, d.cfg.ForgetAfter) {
				d.removePeerLocked(peer)
				d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindRouteLost,
					Peer: peer, Rail: -1, Detail: "peer forgotten (silent)"})
			}
		}
	}
	if d.cfg.FlapDamping.Enabled() {
		d.releaseDampedLocked(now)
	}
	if d.cfg.PreferLowLatency {
		d.steerByLatencyLocked(now)
	}
	type probe struct {
		peer, rail int
		seq        uint16
		deadline   time.Duration // adaptive RTO; 0 = round-based misses
	}
	rto := d.cfg.AdaptiveRTO
	var probes []probe
	for peer := 0; peer < d.links.Nodes(); peer++ {
		if !d.links.Monitored(peer) {
			continue
		}
		for rail := 0; rail < d.tr.Rails(); rail++ {
			seq, down := d.links.BeginProbe(peer, rail, d.cfg.MissThreshold)
			if down {
				d.markDownLocked(peer, rail, now)
			}
			p := probe{peer: peer, rail: rail, seq: seq}
			if rto.Enabled() {
				p.deadline = d.rtoDeadlineLocked(d.links.State(peer, rail))
			}
			probes = append(probes, p)
		}
	}
	self := uint16(d.tr.Node())
	stagger := d.cfg.StaggerProbes && len(probes) > 1
	dynamic := d.cfg.DynamicMembership
	sendHello := dynamic
	if dynamic && d.gov != nil && !d.helloAllowedLocked(now) {
		// Hello storm suppression: while degraded, or inside the
		// min-interval gate, this round's hello is withheld. The
		// intent parks on the control queue so chatter resumes the
		// moment the gate reopens — jittered, not in lock-step.
		sendHello = false
		d.mset.Counter(routing.CtrHelloSuppressed).Inc()
		d.deferControlLocked(dataplane.ControlItem{Class: dataplane.ClassDiscovery, Peer: -1})
	}
	if sendHello {
		// Announce ourselves so unknown peers learn us (and we learn
		// them from their hellos). With the lifecycle enabled the hello
		// carries our incarnation so peers can spot reboots they missed.
		// (announceLocked sends under mu — transports never call back
		// inline — and closes the overload min-interval gate.)
		d.announceLocked(now)
	}
	d.mu.Unlock()

	send := func(p probe) {
		if err := d.tr.Send(p.rail, p.peer, probeFrame(self, p.seq, d.clock.Now())); err == nil {
			d.mset.Counter(routing.CtrProbesSent).Inc()
		}
		if p.deadline > 0 {
			d.clock.AfterFunc(p.deadline, func() { d.probeExpired(p.peer, p.rail, p.seq) })
		}
	}
	if stagger {
		d.rounds.Stagger(d.cfg.ProbeInterval, len(probes), func(i int) { send(probes[i]) })
	} else {
		for _, p := range probes {
			send(p)
		}
	}
}

// probeExpired is the adaptive-RTO deadline handler: the probe is
// overdue against the learned RTT, so the miss is counted now —
// typically within tens of milliseconds — instead of at the next
// round, and a replacement probe goes out under an exponentially
// backed-off deadline. A probe that was already answered (or
// superseded by a newer round's probe) makes this a no-op.
func (d *Daemon) probeExpired(peer, rail int, seq uint16) {
	d.mu.Lock()
	if d.stopped || !d.links.Monitored(peer) {
		d.mu.Unlock()
		return
	}
	st := d.links.State(peer, rail)
	if st == nil || !st.Pending || st.PendingSeq != seq {
		d.mu.Unlock()
		return
	}
	now := d.clock.Now()
	st.Pending = false
	st.Misses++
	st.RecordRTOMiss()
	d.mset.Counter(routing.CtrRTOExpired).Inc()
	if st.Misses >= d.cfg.MissThreshold {
		d.markDownLocked(peer, rail, now)
	}
	if d.gov != nil && !d.links.AllowRetransmit(now) {
		// Budget exhausted: shed this retransmit instead of feeding
		// the storm. A liveness intent parks on the control queue so
		// the path re-probes as soon as tokens return (and the next
		// round re-probes regardless).
		d.mset.Counter(routing.CtrProbeShed).Inc()
		d.shedLocked(now)
		d.deferControlLocked(dataplane.ControlItem{Class: dataplane.ClassLiveness, Peer: peer})
		d.mu.Unlock()
		return
	}
	nseq, _ := d.links.BeginProbe(peer, rail, d.cfg.MissThreshold)
	deadline := d.rtoDeadlineLocked(st)
	self := uint16(d.tr.Node())
	d.mu.Unlock()

	if err := d.tr.Send(rail, peer, probeFrame(self, nseq, now)); err == nil {
		d.mset.Counter(routing.CtrProbesSent).Inc()
		d.mset.Counter(routing.CtrProbeRetransmits).Inc()
	}
	d.clock.AfterFunc(deadline, func() { d.probeExpired(peer, rail, nseq) })
}

// probeFrame builds one echo-request frame carrying its send time;
// the echoed copy yields an RTT sample with no per-probe state at the
// sender.
func probeFrame(self, seq uint16, now time.Duration) []byte {
	ts := make([]byte, 8)
	binary.BigEndian.PutUint64(ts, uint64(now))
	echo := icmp.Echo{Request: true, ID: self, Seq: seq, Data: ts}
	return routing.Envelope(routing.ProtoICMP, echo.Marshal())
}

// steerByLatencyLocked moves direct routes to a clearly faster rail.
// A move needs both rails measured (≥ minSteerSamples each) and the
// candidate's SRTT below half the current rail's — hysteresis that
// keeps routes stable under ordinary jitter. Caller holds d.mu.
func (d *Daemon) steerByLatencyLocked(now time.Duration) {
	const minSteerSamples = 8
	for peer := 0; peer < d.links.Nodes(); peer++ {
		if !d.links.Monitored(peer) {
			continue
		}
		rt := d.routes.Route(peer)
		if rt.Kind != RouteDirect {
			continue
		}
		cur := d.links.State(peer, rt.Rail)
		curRTT, curSamples := cur.SRTT()
		if !cur.Up || curSamples < minSteerSamples {
			continue
		}
		best := rt.Rail
		bestRTT := curRTT
		for rail := 0; rail < d.tr.Rails(); rail++ {
			if rail == rt.Rail {
				continue
			}
			st := d.links.State(peer, rail)
			srtt, samples := st.SRTT()
			if st.Up && !st.Damped() && samples >= minSteerSamples && srtt*2 < curRTT && srtt < bestRTT {
				best = rail
				bestRTT = srtt
			}
		}
		if best != rt.Rail {
			d.installLocked(peer, Route{Kind: RouteDirect, Rail: best, Via: peer}, now)
		}
	}
}

// markDownLocked transitions a link to down and repairs routes that
// depended on it. Caller holds d.mu.
func (d *Daemon) markDownLocked(peer, rail int, now time.Duration) {
	st := d.links.State(peer, rail)
	if !st.Up {
		return
	}
	st.Up = false
	st.RecordFlap(d.cfg.FlapDamping, now)
	d.mset.Counter(routing.CtrLinkDown).Inc()
	d.mset.Counter(routing.CtrLinkFlaps).Inc()
	d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindLinkDown,
		Peer: peer, Rail: rail})
	// Repair the peer's own route if it used this rail directly.
	if rt := d.routes.Route(peer); rt.Kind == RouteDirect && rt.Rail == rail {
		d.repairLocked(peer, now)
	}
	// Relay routes through this peer survive while any rail to the
	// relay works; once every rail to the relay is down, they die too.
	if !d.links.AnyUp(peer) {
		for dst := 0; dst < d.links.Nodes(); dst++ {
			if rt := d.routes.Route(dst); rt.Kind == RouteRelay && rt.Via == peer {
				d.repairLocked(dst, now)
			}
		}
	}
}

// markUpLocked transitions a link to up and upgrades routes — unless
// route-flap damping holds the recovered path down, in which case the
// link is physically up but stays untrusted until the probe round's
// release sweep decays its penalty below the reuse threshold.
func (d *Daemon) markUpLocked(peer, rail int, now time.Duration) {
	st := d.links.State(peer, rail)
	if st.Up {
		return
	}
	st.Up = true
	d.mset.Counter(routing.CtrLinkUp).Inc()
	d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindLinkUp,
		Peer: peer, Rail: rail})
	if st.Damped() || st.Suppressed(d.cfg.FlapDamping, now) {
		if !st.Damped() {
			st.EnterDamped(now)
			d.mset.Counter(routing.CtrRouteDamped).Inc()
			d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindRouteDamped,
				Peer: peer, Rail: rail,
				Detail: fmt.Sprintf("penalty %.2f", st.Penalty(d.cfg.FlapDamping, now))})
		}
		return
	}
	// A live direct link always beats a relay, and beats a direct
	// route on a dead or damped rail.
	rt := d.routes.Route(peer)
	needUpgrade := rt.Kind != RouteDirect || !d.links.Usable(peer, rt.Rail)
	if needUpgrade {
		d.installLocked(peer, Route{Kind: RouteDirect, Rail: rail, Via: peer}, now)
	}
}

// releaseDampedLocked is the probe round's damping sweep: every path
// whose penalty has decayed below the reuse threshold is re-trusted,
// and if it is up and the current route is worse, upgraded to.
// Caller holds d.mu.
func (d *Daemon) releaseDampedLocked(now time.Duration) {
	for peer := 0; peer < d.links.Nodes(); peer++ {
		if !d.links.Monitored(peer) {
			continue
		}
		for rail := 0; rail < d.tr.Rails(); rail++ {
			st := d.links.State(peer, rail)
			held, released := st.TryRelease(d.cfg.FlapDamping, now)
			if !released {
				continue
			}
			d.mset.Counter(routing.CtrDampedNs).Add(int64(held))
			d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindRouteUndamped,
				Peer: peer, Rail: rail, Detail: fmt.Sprintf("held %v", held)})
			if !st.Up {
				continue
			}
			rt := d.routes.Route(peer)
			if rt.Kind != RouteDirect || !d.links.Usable(peer, rt.Rail) {
				d.installLocked(peer, Route{Kind: RouteDirect, Rail: rail, Via: peer}, now)
			}
		}
	}
}

// repairLocked replaces the route to peer: second usable direct rail
// first (damped rails are not trusted), then relay discovery. In
// degraded mode an existing route is pinned last-known-good instead
// of being torn down and requeried: during a correlated storm the
// discovery would mostly fail anyway, and suppressing the churn is
// the point — the route is re-evaluated when the episode exits.
func (d *Daemon) repairLocked(peer int, now time.Duration) {
	if rail, ok := d.links.FirstUsable(peer); ok {
		d.installLocked(peer, Route{Kind: RouteDirect, Rail: rail, Via: peer}, now)
		return
	}
	if d.gov != nil && d.gov.Degraded() {
		if rt := d.routes.Route(peer); rt.Kind != RouteNone {
			if !d.pinned[peer] {
				d.pinned[peer] = true
				d.mset.Counter(routing.CtrRoutePinned).Inc()
				d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindRoutePinned,
					Peer: peer, Rail: rt.Rail, Detail: fmt.Sprintf("%s via %d", rt.Kind, rt.Via)})
			}
			return
		}
	}
	// No direct path remains: note the loss and ask the cluster.
	if d.routes.Route(peer).Kind != RouteNone {
		d.routes.SetRoute(peer, Route{Kind: RouteNone})
		d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindRouteLost, Peer: peer, Rail: -1})
	}
	d.startQueryLocked(peer, now)
}

// installLocked records a new route, completes any pending discovery,
// logs the repair, and flushes queued traffic. A route whose first hop
// is a damped link is refused: discovery can prove a flapping rail
// works *right now* (the target answers the retried query the moment
// it comes back), and without this gate an offer would re-trust the
// rail microseconds after damping held it down.
func (d *Daemon) installLocked(peer int, rt Route, now time.Duration) {
	if d.links.Monitored(rt.Via) && d.links.State(rt.Via, rt.Rail).Damped() {
		return
	}
	if !d.routes.Install(peer, rt, now) {
		return
	}
	delete(d.pinned, peer) // a fresh install supersedes any pin
	d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindRouteInstalled,
		Peer: peer, Rail: rt.Rail, Detail: fmt.Sprintf("%s via %d", rt.Kind, rt.Via)})
	d.mset.Counter(routing.CtrRepairs).Inc()
	// Flush outside the lock is unnecessary: transports never call
	// back inline into SendData paths, and the simulator delivers
	// asynchronously.
	for _, frame := range d.plane.Flush(peer) {
		d.forwardLocked(peer, frame)
	}
}

// startQueryLocked begins (or refreshes) relay discovery for peer,
// budget permitting: a discovery the token bucket refuses is counted,
// reported to the degraded-mode governor, and deferred to the control
// queue — drained when tokens return — instead of broadcast.
func (d *Daemon) startQueryLocked(peer int, now time.Duration) {
	if d.gov != nil {
		if _, pending := d.routes.Pending(peer); !pending && !d.routes.AllowQuery(now) {
			d.mset.Counter(routing.CtrQueryShed).Inc()
			d.shedLocked(now)
			d.deferControlLocked(dataplane.ControlItem{Class: dataplane.ClassRepair, Peer: peer})
			return
		}
	}
	d.sendQueryLocked(peer, now)
}

// sendQueryLocked is the unbudgeted tail of startQueryLocked (the
// control-queue drain calls it directly after spending the token).
func (d *Daemon) sendQueryLocked(peer int, now time.Duration) {
	q := d.routes.Begin(peer, now)
	if q == nil {
		return // one discovery in flight per target
	}
	query := routeQuery{
		Origin: uint16(d.tr.Node()),
		Target: uint16(peer),
		Seq:    q.Seq,
		TTL:    uint8(d.cfg.RelayTTL),
	}
	payload := routing.Envelope(routing.ProtoControl, marshalQuery(query))
	for rail := 0; rail < d.tr.Rails(); rail++ {
		if err := d.tr.Send(rail, routing.Broadcast, payload); err == nil {
			d.mset.Counter(routing.CtrQueriesSent).Inc()
		}
	}
	d.event(trace.Event{At: now, Node: d.tr.Node(), Kind: trace.KindQuerySent,
		Peer: peer, Rail: -1, Detail: fmt.Sprintf("seq=%d ttl=%d", q.Seq, query.TTL)})
	q.Cancel = d.clock.AfterFunc(d.cfg.QueryTimeout, func() { d.queryExpired(peer, q.Seq) })
}

// queryExpired abandons a discovery that received no offer; the next
// probe round retries while the peer remains unreachable.
func (d *Daemon) queryExpired(peer int, seq uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}
	q, ok := d.routes.Abandon(peer, seq)
	if !ok {
		return
	}
	// Retry immediately if the peer is still routeless and a sender is
	// waiting; otherwise the next markDown/SendData will requery.
	if d.routes.Route(peer).Kind == RouteNone && d.plane.QueueLen(peer) > 0 {
		d.startQueryLocked(peer, d.clock.Now())
		// Preserve the original loss time for latency accounting.
		if nq, ok := d.routes.Pending(peer); ok {
			nq.LostAt = q.LostAt
		}
	}
}
