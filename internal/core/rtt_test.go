package core

import (
	"testing"
	"time"

	"drsnet/internal/netsim"
)

func TestRTTMeasuredOnHealthyLinks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbeInterval = 100 * time.Millisecond
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(2 * time.Second)

	// Expected: request tx + propagation, then reply tx + propagation.
	// Both frames are minimum-size (84 B at 100 Mb/s ≈ 6.72 µs) plus
	// 5 µs latency each way ≈ 23 µs, with queueing jitter on top from
	// the burst of probes sharing the segment.
	perFrame := time.Duration(84 * 8 * float64(time.Second) / netsim.DefaultRate)
	floor := 2*perFrame + 2*netsim.DefaultLatency

	for peer := 1; peer < 3; peer++ {
		for rail := 0; rail < 2; rail++ {
			rtt, ok := c.daemons[0].RTT(peer, rail)
			if !ok {
				t.Fatalf("no RTT for (%d,%d)", peer, rail)
			}
			if rtt.Samples < 10 {
				t.Fatalf("(%d,%d): only %d samples", peer, rail, rtt.Samples)
			}
			if rtt.SRTT < floor {
				t.Fatalf("(%d,%d): SRTT %v below physical floor %v", peer, rail, rtt.SRTT, floor)
			}
			// Bursty probes serialize behind each other: allow up to
			// ~20 frame times of queueing.
			if rtt.SRTT > floor+20*perFrame {
				t.Fatalf("(%d,%d): SRTT %v implausibly high", peer, rail, rtt.SRTT)
			}
			if rtt.RTTVar < 0 {
				t.Fatalf("(%d,%d): negative RTTVar", peer, rail)
			}
		}
	}
}

func TestRTTGrowsUnderContention(t *testing.T) {
	// Saturating background traffic on rail 0 queues the probes there;
	// rail 1 stays quiet. The RTT estimator must see the difference.
	cfg := DefaultConfig()
	cfg.ProbeInterval = 100 * time.Millisecond
	c := newCluster(t, 3, cfg)
	defer c.stop()
	c.runFor(500 * time.Millisecond)

	// Background blast: node 2 floods node 1 on rail 0 via raw frames.
	payload := make([]byte, 1400)
	var blast func()
	blast = func() {
		for i := 0; i < 20; i++ {
			_ = c.net.Send(2, 0, 1, payload)
		}
		c.sched.After(2*time.Millisecond, blast)
	}
	c.sched.After(0, blast)
	c.runFor(3 * time.Second)

	busy, ok := c.daemons[0].RTT(1, 0)
	if !ok {
		t.Fatal("no RTT on busy rail")
	}
	quiet, ok := c.daemons[0].RTT(1, 1)
	if !ok {
		t.Fatal("no RTT on quiet rail")
	}
	if busy.SRTT < 4*quiet.SRTT {
		t.Fatalf("contention invisible: busy rail %v vs quiet rail %v", busy.SRTT, quiet.SRTT)
	}
}

func TestRTTUnknownPeer(t *testing.T) {
	c := newCluster(t, 2, DefaultConfig())
	defer c.stop()
	if _, ok := c.daemons[0].RTT(0, 0); ok {
		t.Fatal("RTT for self reported")
	}
	if _, ok := c.daemons[0].RTT(9, 0); ok {
		t.Fatal("RTT for out-of-range peer reported")
	}
	if _, ok := c.daemons[0].RTT(1, 9); ok {
		t.Fatal("RTT for bad rail reported")
	}
	// Before any probe completes there is no estimate.
	if _, ok := c.daemons[0].RTT(1, 0); ok {
		t.Fatal("RTT before first round reported")
	}
}
