package core

import (
	"testing"
	"time"

	"drsnet/internal/icmp"
	"drsnet/internal/netsim"
	"drsnet/internal/routing"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

// recordingTransport wraps a Transport and records the send time of
// every ICMP probe.
type recordingTransport struct {
	routing.Transport
	clock routing.Clock
	sends *[]time.Duration
}

func (r *recordingTransport) Send(rail, dst int, payload []byte) error {
	// Count only outgoing echo REQUESTS (probes); the daemon also
	// sends echo replies to its peers' probes through this transport.
	if len(payload) > 1 && payload[0] == routing.ProtoICMP &&
		payload[1] == icmp.TypeEchoRequest && dst != routing.Broadcast {
		*r.sends = append(*r.sends, r.clock.Now())
	}
	return r.Transport.Send(rail, dst, payload)
}

func probeSpread(t *testing.T, stagger bool) (spread time.Duration, sends int) {
	t.Helper()
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(8), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	clock := routing.SimClock{Sched: sched}
	var times []time.Duration

	cfg := DefaultConfig()
	cfg.StaggerProbes = stagger
	// Only node 0 gets the recording wrapper; the rest run plainly so
	// replies flow.
	tr := &recordingTransport{Transport: routing.NewSimNode(net, 0), clock: clock, sends: &times}
	d0, err := New(tr, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	daemons := []*Daemon{d0}
	for node := 1; node < 8; node++ {
		d, err := New(routing.NewSimNode(net, node), clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		daemons = append(daemons, d)
	}
	for _, d := range daemons {
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
	}
	// Observe exactly the round that starts at t=2s: clear just
	// before it, stop just before the next one.
	sched.RunUntil(simtime.Time(2*time.Second - time.Millisecond))
	times = times[:0]
	sched.RunUntil(simtime.Time(2*time.Second + cfg.ProbeInterval - 2*time.Millisecond))
	for _, d := range daemons {
		d.Stop()
	}
	if len(times) == 0 {
		t.Fatal("no probes recorded")
	}
	min, max := times[0], times[0]
	for _, at := range times {
		if at < min {
			min = at
		}
		if at > max {
			max = at
		}
	}
	return max - min, len(times)
}

func TestStaggerSpreadsProbes(t *testing.T) {
	burstSpread, burstSends := probeSpread(t, false)
	smoothSpread, smoothSends := probeSpread(t, true)
	if burstSends != smoothSends {
		t.Fatalf("probe counts differ: burst %d vs staggered %d", burstSends, smoothSends)
	}
	// 7 peers × 2 rails = 14 probes per round.
	if burstSends != 14 {
		t.Fatalf("probes per round = %d, want 14", burstSends)
	}
	if burstSpread != 0 {
		t.Fatalf("unstaggered probes spread over %v, want a single burst", burstSpread)
	}
	// Staggered: 14 probes at interval/14 steps → spread 13/14 of the
	// interval.
	if smoothSpread < 800*time.Millisecond {
		t.Fatalf("staggered probes spread only %v", smoothSpread)
	}
}

func TestStaggerDoesNotBreakDetection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StaggerProbes = true
	c := newCluster(t, 4, cfg)
	defer c.stop()
	c.runFor(3 * time.Second)
	c.net.Fail(c.net.Cluster().NIC(1, 0))
	c.runFor(time.Duration(cfg.MissThreshold+2) * cfg.ProbeInterval)
	if c.daemons[0].LinkUp(1, 0) {
		t.Fatal("staggered daemon missed the failure")
	}
	rt := c.daemons[0].RouteTo(1)
	if rt.Kind != RouteDirect || rt.Rail != 1 {
		t.Fatalf("route = %+v, want direct rail 1", rt)
	}
	if err := c.daemons[0].SendData(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.runFor(200 * time.Millisecond)
	if len(c.delivered[1]) != 1 {
		t.Fatal("data not delivered after staggered failover")
	}
}

func TestStaggerStopsCleanly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StaggerProbes = true
	c := newCluster(t, 4, cfg)
	c.runFor(2500 * time.Millisecond)
	c.stop()
	before := c.daemons[0].Metrics().Counter(routing.CtrProbesSent).Value()
	c.runFor(3 * time.Second)
	after := c.daemons[0].Metrics().Counter(routing.CtrProbesSent).Value()
	if after != before {
		t.Fatalf("stopped staggered daemon kept probing: %d -> %d", before, after)
	}
}
