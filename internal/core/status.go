package core

import (
	"time"

	"drsnet/internal/dataplane"
)

// Status is a point-in-time, JSON-serializable snapshot of a running
// daemon: the live daemon's status reporter emits one per interval,
// and the daemon smoke tests read convergence and rejoin out of it.
type Status struct {
	// Node is the local node index.
	Node int `json:"node"`
	// Incarnation is the life this daemon is running.
	Incarnation uint32 `json:"incarnation"`
	// Now is the daemon clock at snapshot time.
	Now time.Duration `json:"now"`
	// Repairs counts completed route repairs since start.
	Repairs int `json:"repairs"`
	// Queued counts data frames parked in discovery queues.
	Queued int `json:"queued"`
	// Peers holds the per-peer view, in ascending peer order.
	Peers []PeerStatus `json:"peers,omitempty"`
	// Overload reports the overload-protection layer's gauges; nil
	// when the layer is disabled.
	Overload *OverloadStatus `json:"overload,omitempty"`
}

// OverloadStatus is the snapshot of the overload-protection layer:
// whether the daemon is riding out a storm in degraded mode, how much
// control budget remains, and how much deferred work is parked.
type OverloadStatus struct {
	// Degraded reports whether the degraded-mode governor currently
	// holds routes pinned last-known-good.
	Degraded bool `json:"degraded"`
	// ProbeTokens and QueryTokens are the budget tokens available
	// right now for probe retransmits and discovery broadcasts.
	ProbeTokens float64 `json:"probeTokens"`
	QueryTokens float64 `json:"queryTokens"`
	// Deferred holds per-class control-queue depths, indexed by
	// dataplane.Class (liveness, repair, discovery).
	Deferred []int `json:"deferred"`
	// Pinned counts routes held last-known-good by degraded mode.
	Pinned int `json:"pinned"`
}

// PeerStatus is the snapshot of one monitored peer.
type PeerStatus struct {
	Peer int `json:"peer"`
	// Route is the installed route kind: "none", "direct" or "relay".
	Route string `json:"route"`
	// Rail and Via qualify the route (meaningless for "none").
	Rail int `json:"rail"`
	Via  int `json:"via"`
	// LastHeard is the last time the peer produced valid traffic.
	LastHeard time.Duration `json:"lastHeard"`
	// Incarnation is the peer's last known incarnation (0 = unknown).
	Incarnation uint32 `json:"incarnation,omitempty"`
	// Rails holds per-rail link state, indexed by rail.
	Rails []RailStatus `json:"rails"`
}

// RailStatus is the snapshot of one (peer, rail) monitored path.
type RailStatus struct {
	Up bool `json:"up"`
	// SRTT is the smoothed round-trip estimate; zero until the first
	// probe completes.
	SRTT time.Duration `json:"srtt,omitempty"`
}

// Status captures a snapshot of the daemon's routes, link states and
// membership view. Safe to call on a running daemon.
func (d *Daemon) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := Status{
		Node:        d.tr.Node(),
		Incarnation: d.cfg.Incarnation,
		Now:         d.clock.Now(),
		Repairs:     d.routes.RepairCount(),
		Queued:      d.plane.Queued(),
	}
	for peer := 0; peer < d.links.Nodes(); peer++ {
		if !d.links.Monitored(peer) {
			continue
		}
		rt := d.routes.Route(peer)
		ps := PeerStatus{
			Peer:        peer,
			Route:       rt.Kind.String(),
			Rail:        rt.Rail,
			Via:         rt.Via,
			LastHeard:   d.members.LastHeard(peer),
			Incarnation: d.members.Incarnation(peer),
			Rails:       make([]RailStatus, d.tr.Rails()),
		}
		for rail := 0; rail < d.tr.Rails(); rail++ {
			st := d.links.State(peer, rail)
			ps.Rails[rail] = RailStatus{Up: st.Up}
			if rtt, ok := st.RTT(); ok {
				ps.Rails[rail].SRTT = rtt.SRTT
			}
		}
		s.Peers = append(s.Peers, ps)
	}
	if d.gov != nil {
		now := d.clock.Now()
		os := &OverloadStatus{
			Degraded:    d.gov.Degraded(),
			ProbeTokens: d.links.RetransmitTokens(now),
			QueryTokens: d.routes.QueryTokens(now),
			Deferred:    make([]int, dataplane.NumClasses),
			Pinned:      len(d.pinned),
		}
		for c := dataplane.Class(0); c < dataplane.NumClasses; c++ {
			os.Deferred[c] = d.ctrlQ.Depth(c)
		}
		s.Overload = os
	}
	return s
}
