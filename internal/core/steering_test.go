package core

import (
	"testing"
	"time"
)

// congestRail keeps a ~67% background load on one rail of the test
// cluster: enough queueing to inflate probe RTTs an order of
// magnitude, not enough to starve the probes into a false link-down
// (12 × 1438-byte wire frames per 2 ms ≈ 67 Mb/s of 100).
func congestRail(c *cluster, rail int) {
	payload := make([]byte, 1400)
	var blast func()
	blast = func() {
		for i := 0; i < 12; i++ {
			// A bystander pair (last two nodes) generates the load.
			_ = c.net.Send(len(c.daemons)-1, rail, len(c.daemons)-2, payload)
		}
		c.sched.After(2*time.Millisecond, blast)
	}
	c.sched.After(0, blast)
}

func TestLatencySteeringMovesOffCongestedRail(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbeInterval = 100 * time.Millisecond
	cfg.PreferLowLatency = true
	c := newCluster(t, 4, cfg)
	defer c.stop()

	// Initial route 0→1 is direct rail 0. Congest rail 0 heavily.
	congestRail(c, 0)
	c.runFor(5 * time.Second)

	rt := c.daemons[0].RouteTo(1)
	if rt.Kind != RouteDirect || rt.Rail != 0 {
		// Steering should have moved it — check it did, to rail 1.
		if rt.Rail != 1 {
			t.Fatalf("route = %+v", rt)
		}
	}
	if rt.Rail != 1 {
		t.Fatalf("route stayed on the congested rail: %+v", rt)
	}
	// Sanity: the RTT gap really is what drove it.
	busy, _ := c.daemons[0].RTT(1, 0)
	quiet, _ := c.daemons[0].RTT(1, 1)
	if busy.SRTT < 2*quiet.SRTT {
		t.Fatalf("test precondition broken: busy %v vs quiet %v", busy.SRTT, quiet.SRTT)
	}
	// Data follows the steered route.
	if err := c.daemons[0].SendData(1, []byte("steered")); err != nil {
		t.Fatal(err)
	}
	c.runFor(200 * time.Millisecond)
	if len(c.delivered[1]) != 1 {
		t.Fatal("steered route did not deliver")
	}
}

func TestLatencySteeringOffByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbeInterval = 100 * time.Millisecond
	c := newCluster(t, 4, cfg)
	defer c.stop()
	congestRail(c, 0)
	c.runFor(5 * time.Second)
	rt := c.daemons[0].RouteTo(1)
	if rt.Rail != 0 {
		t.Fatalf("deployed behaviour changed: route moved to %+v without opting in", rt)
	}
}

func TestLatencySteeringHysteresisNoFlap(t *testing.T) {
	// Comparable load on both rails: routes must not oscillate.
	cfg := DefaultConfig()
	cfg.ProbeInterval = 100 * time.Millisecond
	cfg.PreferLowLatency = true
	c := newCluster(t, 4, cfg)
	defer c.stop()
	congestRail(c, 0)
	congestRail(c, 1)
	c.runFor(5 * time.Second)
	// Count route installs for peer 1 at node 0 beyond the initial
	// one: flapping would rack them up.
	moves := 0
	for _, r := range c.daemons[0].Repairs() {
		if r.Peer == 1 {
			moves++
		}
	}
	if moves > 2 {
		t.Fatalf("route to peer 1 moved %d times under symmetric load", moves)
	}
}

func TestLatencySteeringStillFailsOver(t *testing.T) {
	// Steering must not interfere with failure handling.
	cfg := DefaultConfig()
	cfg.ProbeInterval = 100 * time.Millisecond
	cfg.PreferLowLatency = true
	c := newCluster(t, 4, cfg)
	defer c.stop()
	c.runFor(2 * time.Second)
	c.net.Fail(c.net.Cluster().NIC(1, 0))
	c.runFor(time.Second)
	rt := c.daemons[0].RouteTo(1)
	if rt.Kind != RouteDirect || rt.Rail != 1 {
		t.Fatalf("failover broken with steering enabled: %+v", rt)
	}
}
