package core

import "drsnet/internal/routing/wire"

// The DRS control codecs live in drsnet/internal/routing/wire together
// with every other on-the-wire format; the aliases below keep this
// package's internals reading naturally.

// DRS control message types (carried in routing.ProtoControl frames).
const (
	msgRouteQuery = wire.MsgRouteQuery
	msgRouteOffer = wire.MsgRouteOffer
	msgHello      = wire.MsgHello
	msgGoodbye    = wire.MsgGoodbye
	msgRejoin     = wire.MsgRejoin
	msgHelloInc   = wire.MsgHelloInc
	msgOfferInc   = wire.MsgOfferInc
)

// routeQuery is the broadcast the DRS makes when no direct link to a
// peer remains; routeOffer answers it (see wire.Query / wire.Offer).
type (
	routeQuery = wire.Query
	routeOffer = wire.Offer
)

var (
	marshalHello   = wire.MarshalHello
	marshalGoodbye = wire.MarshalGoodbye
	marshalQuery   = wire.MarshalQuery
	unmarshalQuery = wire.UnmarshalQuery
	marshalOffer   = wire.MarshalOffer
	unmarshalOffer = wire.UnmarshalOffer
	// Crash–restart lifecycle codecs (emission of the rejoin and the
	// stamped hello lives in the membership package).
	unmarshalRejoin   = wire.UnmarshalRejoin
	unmarshalHelloInc = wire.UnmarshalHelloInc
	marshalOfferInc   = wire.MarshalOfferInc
	unmarshalOfferInc = wire.UnmarshalOfferInc
)
