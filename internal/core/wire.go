package core

import (
	"encoding/binary"
	"errors"
)

// DRS control message types (carried in routing.ProtoControl frames).
const (
	msgRouteQuery = 1
	msgRouteOffer = 2
	// msgHello and msgGoodbye implement dynamic membership (an
	// extension beyond the paper's statically configured host lists):
	// hello announces the sender, goodbye retracts it. The sender's
	// identity comes from the frame, so both are a bare type byte.
	msgHello   = 3
	msgGoodbye = 4
)

func marshalHello() []byte   { return []byte{msgHello} }
func marshalGoodbye() []byte { return []byte{msgGoodbye} }

// errBadControl is returned for undecodable control messages.
var errBadControl = errors.New("core: malformed control message")

// routeQuery is the broadcast the DRS makes when no direct link to a
// peer remains: "is some other server able to act as a router to
// create a new path between the sender and the proposed recipient?"
type routeQuery struct {
	Origin uint16 // node asking
	Target uint16 // node it wants to reach
	Seq    uint32 // per-origin discovery sequence (dedupes rebroadcasts)
	TTL    uint8  // remaining rebroadcast depth
}

const routeQueryLen = 1 + 2 + 2 + 4 + 1

func marshalQuery(q routeQuery) []byte {
	b := make([]byte, routeQueryLen)
	b[0] = msgRouteQuery
	binary.BigEndian.PutUint16(b[1:3], q.Origin)
	binary.BigEndian.PutUint16(b[3:5], q.Target)
	binary.BigEndian.PutUint32(b[5:9], q.Seq)
	b[9] = q.TTL
	return b
}

func unmarshalQuery(b []byte) (routeQuery, error) {
	if len(b) < routeQueryLen || b[0] != msgRouteQuery {
		return routeQuery{}, errBadControl
	}
	return routeQuery{
		Origin: binary.BigEndian.Uint16(b[1:3]),
		Target: binary.BigEndian.Uint16(b[3:5]),
		Seq:    binary.BigEndian.Uint32(b[5:9]),
		TTL:    b[9],
	}, nil
}

// routeOffer answers a routeQuery: "I can reach Target; route through
// me." When Relay equals Target the offer came from the target itself,
// so the origin installs a direct route on the rail the offer arrived
// on.
type routeOffer struct {
	Origin uint16 // the querying node (offer is unicast back to it)
	Target uint16
	Seq    uint32 // echoes the query sequence
	Relay  uint16 // the offering node
}

const routeOfferLen = 1 + 2 + 2 + 4 + 2

func marshalOffer(o routeOffer) []byte {
	b := make([]byte, routeOfferLen)
	b[0] = msgRouteOffer
	binary.BigEndian.PutUint16(b[1:3], o.Origin)
	binary.BigEndian.PutUint16(b[3:5], o.Target)
	binary.BigEndian.PutUint32(b[5:9], o.Seq)
	binary.BigEndian.PutUint16(b[9:11], o.Relay)
	return b
}

func unmarshalOffer(b []byte) (routeOffer, error) {
	if len(b) < routeOfferLen || b[0] != msgRouteOffer {
		return routeOffer{}, errBadControl
	}
	return routeOffer{
		Origin: binary.BigEndian.Uint16(b[1:3]),
		Target: binary.BigEndian.Uint16(b[3:5]),
		Seq:    binary.BigEndian.Uint32(b[5:9]),
		Relay:  binary.BigEndian.Uint16(b[9:11]),
	}, nil
}
