// Package costmodel quantifies the price of the DRS's proactive
// monitoring, reproducing the paper's Figure 1 ("Response Time VS
// Number of Nodes for a 100 Mb/s Network").
//
// To find errors before they affect applications, every DRS daemon
// continuously link-checks every monitored peer on every rail with
// ICMP echo requests. The bandwidth devoted to those checks is capped
// at a fraction of the link rate; the time to complete one full round
// of checks is then the system's error-detection response time. As the
// cluster grows the number of pairwise checks grows quadratically, so
// for a fixed bandwidth budget the response time grows quadratically —
// the trade-off Figure 1 plots. The paper's headline: ninety hosts are
// supported in under one second using only 10% of the bandwidth.
package costmodel

import (
	"fmt"
	"math"
)

// Default wire parameters. A minimum-size Ethernet frame comfortably
// carries an ICMP echo (14 MAC + 20 IP + 8 ICMP + payload + 4 FCS ≤ 64
// bytes); on the wire it also occupies 8 preamble bytes and a 12-byte
// inter-frame gap.
const (
	DefaultLinkRate   = 100e6 // bits/s, the paper's 100 Mb/s network
	DefaultFrameBytes = 84    // 64-byte minimum frame + preamble + IFG
)

// Params configures the probing cost model.
type Params struct {
	// LinkRate is the raw capacity of one rail in bits/s.
	LinkRate float64
	// FrameBytes is the on-wire size of one probe frame (request or
	// reply), including preamble and inter-frame gap.
	FrameBytes int
	// OrderedPairs selects the probing policy. When false (the
	// default), each unordered pair is checked once per round per rail
	// — an echo exchange validates both directions, and the answering
	// daemon refreshes its own state for the peer from the request it
	// saw. When true, every daemon independently probes every peer,
	// doubling the traffic; the corresponding bench quantifies this
	// ablation.
	OrderedPairs bool
	// Switched models a switched fabric instead of the paper's shared
	// hubs: every node has a dedicated full-rate port, so the binding
	// constraint is the busiest port, not the shared medium. Round
	// time then grows linearly in N instead of quadratically.
	Switched bool
}

// Defaults returns the paper's configuration.
func Defaults() Params {
	return Params{LinkRate: DefaultLinkRate, FrameBytes: DefaultFrameBytes}
}

func (p Params) validate() error {
	if !(p.LinkRate > 0) {
		return fmt.Errorf("costmodel: link rate must be positive, have %v", p.LinkRate)
	}
	if p.FrameBytes <= 0 {
		return fmt.Errorf("costmodel: frame size must be positive, have %d", p.FrameBytes)
	}
	return nil
}

// FramesPerRound returns the number of probe frames one full round of
// link checks places on each rail for an n-node cluster. Each check is
// an echo request plus an echo reply.
func (p Params) FramesPerRound(n int) int64 {
	if n < 2 {
		return 0
	}
	pairs := int64(n) * int64(n-1) / 2
	frames := 2 * pairs // request + reply
	if p.OrderedPairs {
		frames *= 2
	}
	return frames
}

// BitsPerRound returns the number of bits one full round of checks
// places on each rail.
func (p Params) BitsPerRound(n int) float64 {
	return float64(p.FramesPerRound(n)) * float64(p.FrameBytes) * 8
}

// FramesPerRoundPort returns, for a switched fabric, the number of
// frames one round pushes through the busiest node port. Every node
// emits a request (or answers with a reply) toward each of its n-1
// peers: with per-pair probing each pair exchanges one request and one
// reply, so a port carries n-1 frames outbound; with ordered pairs
// each daemon both probes everyone and answers everyone: 2(n-1).
func (p Params) FramesPerRoundPort(n int) int64 {
	if n < 2 {
		return 0
	}
	frames := int64(n - 1)
	if p.OrderedPairs {
		frames *= 2
	}
	return frames
}

// bitsPerRoundBottleneck returns the bits the binding resource must
// carry in one round: the shared medium on a hub, the busiest port on
// a switch.
func (p Params) bitsPerRoundBottleneck(n int) float64 {
	if p.Switched {
		return float64(p.FramesPerRoundPort(n)) * float64(p.FrameBytes) * 8
	}
	return p.BitsPerRound(n)
}

// ResponseTime returns the time, in seconds, to complete one full
// round of link checks on an n-node cluster when probing may use at
// most budget (a fraction in (0, 1]) of each rail's capacity. Because
// a failure is detected within one round, this is the system's
// error-detection response time. Both rails are probed concurrently,
// so the per-rail cost is the system cost.
func (p Params) ResponseTime(n int, budget float64) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if budget <= 0 || budget > 1 {
		return 0, fmt.Errorf("costmodel: budget %v outside (0,1]", budget)
	}
	if n < 2 {
		return 0, fmt.Errorf("costmodel: need at least 2 nodes, have %d", n)
	}
	return p.bitsPerRoundBottleneck(n) / (budget * p.LinkRate), nil
}

// Overhead returns the fraction of rail capacity consumed when an
// n-node cluster must achieve a round time of responseTime seconds.
// This inverts ResponseTime: it answers "what bandwidth does a given
// detection latency cost?".
func (p Params) Overhead(n int, responseTime float64) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if responseTime <= 0 {
		return 0, fmt.Errorf("costmodel: response time must be positive")
	}
	if n < 2 {
		return 0, fmt.Errorf("costmodel: need at least 2 nodes, have %d", n)
	}
	return p.bitsPerRoundBottleneck(n) / (responseTime * p.LinkRate), nil
}

// MaxNodes returns the largest cluster whose full check round fits in
// responseTime seconds at the given bandwidth budget — the paper's
// "maximum number of servers in the cluster that the DRS supports
// given a requirement for error resolution in X time units".
func (p Params) MaxNodes(budget, responseTime float64) (int, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if budget <= 0 || budget > 1 {
		return 0, fmt.Errorf("costmodel: budget %v outside (0,1]", budget)
	}
	if responseTime <= 0 {
		return 0, fmt.Errorf("costmodel: response time must be positive")
	}
	// Solve the budget equation for an over-estimate of n, then
	// correct by scanning downward (which also absorbs the
	// ordered-pairs factor and integer effects).
	perCheck := float64(p.FrameBytes) * 8 * 2 // request + reply bits
	if p.OrderedPairs {
		perCheck *= 2
	}
	budgetBits := budget * p.LinkRate * responseTime
	var n int
	if p.Switched {
		// Busiest port carries ~(n-1) checks' worth of frames.
		n = int(2*budgetBits/perCheck) + 3
	} else {
		// Shared medium carries n(n-1)/2 checks.
		n = int(math.Sqrt(2*budgetBits/perCheck)) + 2
	}
	for n >= 2 {
		rt, err := p.ResponseTime(n, budget)
		if err != nil {
			return 0, err
		}
		if rt <= responseTime {
			return n, nil
		}
		n--
	}
	return 0, fmt.Errorf("costmodel: no cluster of ≥2 nodes fits budget %v in %vs", budget, responseTime)
}

// Point is one (nodes, responseTime) sample of a Figure 1 curve.
type Point struct {
	Nodes        int
	ResponseTime float64 // seconds
}

// Curve returns the Figure 1 series for one bandwidth budget over
// n = nMin..nMax.
func (p Params) Curve(budget float64, nMin, nMax int) ([]Point, error) {
	if nMin < 2 || nMax < nMin {
		return nil, fmt.Errorf("costmodel: bad range [%d,%d]", nMin, nMax)
	}
	out := make([]Point, 0, nMax-nMin+1)
	for n := nMin; n <= nMax; n++ {
		rt, err := p.ResponseTime(n, budget)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{Nodes: n, ResponseTime: rt})
	}
	return out, nil
}

// FigureBudgets are the bandwidth budgets plotted in the paper's
// Figure 1.
var FigureBudgets = []float64{0.05, 0.10, 0.15, 0.25}
