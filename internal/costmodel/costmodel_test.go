package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFramesPerRound(t *testing.T) {
	p := Defaults()
	if got := p.FramesPerRound(2); got != 2 {
		t.Fatalf("2 nodes: %d frames, want 2 (request+reply)", got)
	}
	if got := p.FramesPerRound(4); got != 12 {
		t.Fatalf("4 nodes: %d frames, want 12 (6 pairs × 2)", got)
	}
	if got := p.FramesPerRound(1); got != 0 {
		t.Fatalf("1 node: %d frames, want 0", got)
	}
	p.OrderedPairs = true
	if got := p.FramesPerRound(4); got != 24 {
		t.Fatalf("ordered pairs 4 nodes: %d frames, want 24", got)
	}
}

func TestPaperHeadlineNinetyHosts(t *testing.T) {
	// "ninety hosts are supported in less than 1 second with only 10%
	// of the bandwidth usage."
	p := Defaults()
	rt, err := p.ResponseTime(90, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if rt >= 1 {
		t.Fatalf("90 hosts at 10%% budget take %vs, paper says < 1s", rt)
	}
	n, err := p.MaxNodes(0.10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if n < 90 {
		t.Fatalf("MaxNodes(10%%, 1s) = %d, paper requires ≥ 90", n)
	}
}

func TestResponseTimeQuadratic(t *testing.T) {
	p := Defaults()
	rt1, err := p.ResponseTime(10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := p.ResponseTime(20, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// n(n-1): 20·19 / 10·9 = 380/90
	want := rt1 * 380 / 90
	if math.Abs(rt2-want) > 1e-12 {
		t.Fatalf("scaling wrong: rt(20)=%v, want %v", rt2, want)
	}
}

func TestResponseTimeInverseInBudget(t *testing.T) {
	p := Defaults()
	err := quick.Check(func(n8 uint8, budPct uint8) bool {
		n := int(n8%100) + 2
		bud := (float64(budPct%99) + 1) / 100
		rt1, err1 := p.ResponseTime(n, bud)
		rt2, err2 := p.ResponseTime(n, bud/2)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(rt2-2*rt1) < 1e-9*rt1+1e-15
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestOverheadInvertsResponseTime(t *testing.T) {
	p := Defaults()
	for _, n := range []int{2, 10, 90, 128} {
		for _, bud := range FigureBudgets {
			rt, err := p.ResponseTime(n, bud)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Overhead(n, rt)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-bud) > 1e-12 {
				t.Fatalf("Overhead(n=%d, rt=%v) = %v, want %v", n, rt, got, bud)
			}
		}
	}
}

func TestMaxNodesBoundary(t *testing.T) {
	p := Defaults()
	for _, bud := range FigureBudgets {
		for _, rtBudget := range []float64{0.1, 0.5, 1, 2} {
			n, err := p.MaxNodes(bud, rtBudget)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := p.ResponseTime(n, bud)
			if err != nil {
				t.Fatal(err)
			}
			if rt > rtBudget {
				t.Fatalf("MaxNodes(%v,%v) = %d but its round takes %v", bud, rtBudget, n, rt)
			}
			rtNext, err := p.ResponseTime(n+1, bud)
			if err != nil {
				t.Fatal(err)
			}
			if rtNext <= rtBudget {
				t.Fatalf("MaxNodes(%v,%v) = %d is not maximal: n+1 fits (%v)", bud, rtBudget, n, rtNext)
			}
		}
	}
}

func TestMaxNodesTooTight(t *testing.T) {
	p := Defaults()
	if _, err := p.MaxNodes(0.0001, 1e-6); err == nil {
		t.Fatal("impossible budget accepted")
	}
}

func TestCurve(t *testing.T) {
	p := Defaults()
	c, err := p.Curve(0.10, 2, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 127 || c[0].Nodes != 2 || c[126].Nodes != 128 {
		t.Fatalf("curve shape wrong: len=%d", len(c))
	}
	for i := 1; i < len(c); i++ {
		if c[i].ResponseTime <= c[i-1].ResponseTime {
			t.Fatal("response time must grow with cluster size")
		}
	}
	if _, err := p.Curve(0.10, 10, 5); err == nil {
		t.Fatal("bad range accepted")
	}
}

func TestBudgetOrdering(t *testing.T) {
	// A bigger budget always means a faster round (Figure 1's curves
	// never cross).
	p := Defaults()
	for n := 2; n <= 128; n += 7 {
		prev := math.Inf(1)
		for _, bud := range FigureBudgets {
			rt, err := p.ResponseTime(n, bud)
			if err != nil {
				t.Fatal(err)
			}
			if rt >= prev {
				t.Fatalf("n=%d: budget %v not faster than smaller budget", n, bud)
			}
			prev = rt
		}
	}
}

func TestOrderedPairsDoublesCost(t *testing.T) {
	base := Defaults()
	doubled := Defaults()
	doubled.OrderedPairs = true
	rt1, err := base.ResponseTime(50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := doubled.ResponseTime(50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rt2-2*rt1) > 1e-12 {
		t.Fatalf("ordered pairs: %v, want exactly double %v", rt2, rt1)
	}
}

func TestValidation(t *testing.T) {
	p := Defaults()
	if _, err := p.ResponseTime(1, 0.1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := p.ResponseTime(10, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := p.ResponseTime(10, 1.5); err == nil {
		t.Error("budget > 1 accepted")
	}
	if _, err := p.Overhead(10, 0); err == nil {
		t.Error("zero response time accepted")
	}
	bad := Params{LinkRate: 0, FrameBytes: 84}
	if _, err := bad.ResponseTime(10, 0.1); err == nil {
		t.Error("zero link rate accepted")
	}
	bad = Params{LinkRate: 1e8, FrameBytes: 0}
	if _, err := bad.ResponseTime(10, 0.1); err == nil {
		t.Error("zero frame size accepted")
	}
}
