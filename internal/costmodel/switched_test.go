package costmodel

import (
	"math"
	"testing"
)

func TestSwitchedScalesLinearly(t *testing.T) {
	p := Defaults()
	p.Switched = true
	rt10, err := p.ResponseTime(10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rt20, err := p.ResponseTime(20, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// (n-1): 19/9.
	want := rt10 * 19 / 9
	if math.Abs(rt20-want) > 1e-12 {
		t.Fatalf("switched scaling wrong: rt(20)=%v, want %v", rt20, want)
	}
}

func TestSwitchedBeatsHub(t *testing.T) {
	hub := Defaults()
	sw := Defaults()
	sw.Switched = true
	for _, n := range []int{4, 16, 64, 128} {
		hrt, err := hub.ResponseTime(n, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		srt, err := sw.ResponseTime(n, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if srt >= hrt {
			t.Fatalf("n=%d: switch (%v) not faster than hub (%v)", n, srt, hrt)
		}
		// The advantage is exactly the medium-sharing factor n: the
		// hub carries all n(n-1) frames of the round, the busiest
		// switch port only its own n-1.
		if ratio := hrt / srt; math.Abs(ratio-float64(n)) > 1e-9 {
			t.Fatalf("n=%d: hub/switch ratio %v, want %v", n, ratio, float64(n))
		}
	}
}

func TestSwitchedFramesPerRoundPort(t *testing.T) {
	p := Defaults()
	p.Switched = true
	if got := p.FramesPerRoundPort(10); got != 9 {
		t.Fatalf("per-pair port frames = %d, want 9", got)
	}
	p.OrderedPairs = true
	if got := p.FramesPerRoundPort(10); got != 18 {
		t.Fatalf("ordered port frames = %d, want 18", got)
	}
	if got := p.FramesPerRoundPort(1); got != 0 {
		t.Fatalf("1 node port frames = %d, want 0", got)
	}
}

func TestSwitchedMaxNodesMaximal(t *testing.T) {
	p := Defaults()
	p.Switched = true
	for _, bud := range FigureBudgets {
		for _, rtBudget := range []float64{0.1, 0.5, 1} {
			n, err := p.MaxNodes(bud, rtBudget)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := p.ResponseTime(n, bud)
			if err != nil {
				t.Fatal(err)
			}
			if rt > rtBudget {
				t.Fatalf("MaxNodes(%v,%v)=%d does not fit (%v)", bud, rtBudget, n, rt)
			}
			rtNext, err := p.ResponseTime(n+1, bud)
			if err != nil {
				t.Fatal(err)
			}
			if rtNext <= rtBudget {
				t.Fatalf("MaxNodes(%v,%v)=%d not maximal (n+1 takes %v)", bud, rtBudget, n, rtNext)
			}
		}
	}
}

func TestSwitchedMaxNodesDwarfsHub(t *testing.T) {
	hub := Defaults()
	sw := Defaults()
	sw.Switched = true
	hn, err := hub.MaxNodes(0.10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := sw.MaxNodes(0.10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if sn <= 10*hn {
		t.Fatalf("switched MaxNodes %d not dramatically above hub %d", sn, hn)
	}
}

func TestSwitchedOverheadInverts(t *testing.T) {
	p := Defaults()
	p.Switched = true
	rt, err := p.ResponseTime(50, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	over, err := p.Overhead(50, rt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(over-0.15) > 1e-12 {
		t.Fatalf("Overhead = %v, want 0.15", over)
	}
}
