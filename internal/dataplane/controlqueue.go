package dataplane

import "drsnet/internal/metrics"

// Class ranks deferred control work. Lower values are more important:
// liveness re-checks outrank route repair, which outranks discovery
// chatter — under a correlated failure storm the budget drains in
// exactly that order.
type Class int

const (
	// ClassLiveness is a probe retransmit whose budget token was not
	// available when the RTO fired.
	ClassLiveness Class = iota
	// ClassRepair is a deferred route-discovery broadcast.
	ClassRepair
	// ClassDiscovery is deferred membership chatter (hello announces).
	ClassDiscovery
	// NumClasses sizes per-class arrays.
	NumClasses
)

var classNames = [NumClasses]string{"liveness", "repair", "discovery"}

// String implements fmt.Stringer.
func (c Class) String() string {
	if c >= 0 && c < NumClasses {
		return classNames[c]
	}
	return "unknown"
}

// ControlItem is one deferred control intent: what kind of work, and
// about which peer (-1 for broadcasts). Intents, not frames: a frame
// built at defer time would carry stale sequence numbers by the time
// the budget admits it, so the owner regenerates the message on drain.
type ControlItem struct {
	Class Class
	Peer  int
}

// ControlQueue is a bounded, prioritized queue of deferred control
// intents. When budget saturation defers work it parks here instead
// of being silently dropped, and under sustained overload the queue
// sheds load from the least important class first — with every shed
// and deferral counted, replacing the silent drop-oldest behavior.
//
// Like Plane, a ControlQueue is not goroutine-safe; the owning
// protocol serializes access under its own lock.
type ControlQueue struct {
	capacity int
	q        [NumClasses][]ControlItem
	// deferred counts accepted intents; shed counts evictions and
	// refusals per class. Nil counters disable counting.
	deferred *metrics.Counter
	shed     [NumClasses]*metrics.Counter
}

// NewControlQueue returns a queue holding at most capacity intents
// across all classes. deferred counts every accepted intent; shed[c]
// counts intents of class c lost to overflow.
func NewControlQueue(capacity int, deferred *metrics.Counter, shed [NumClasses]*metrics.Counter) *ControlQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &ControlQueue{capacity: capacity, deferred: deferred, shed: shed}
}

// Len returns the total number of queued intents.
func (cq *ControlQueue) Len() int {
	n := 0
	for c := range cq.q {
		n += len(cq.q[c])
	}
	return n
}

// Depth returns the number of queued intents of one class.
func (cq *ControlQueue) Depth(c Class) int { return len(cq.q[c]) }

// Contains reports whether an identical intent is already queued —
// owners dedupe before pushing so one flapping peer cannot occupy the
// whole queue.
func (cq *ControlQueue) Contains(it ControlItem) bool {
	for _, q := range cq.q[it.Class] {
		if q == it {
			return true
		}
	}
	return false
}

// Push queues an intent, shedding to make room when full: the victim
// is the oldest intent of the least important class no more important
// than the newcomer. If everything queued outranks the newcomer, the
// newcomer itself is shed and Push reports false.
func (cq *ControlQueue) Push(it ControlItem) bool {
	if it.Class < 0 || it.Class >= NumClasses {
		return false
	}
	if cq.Len() >= cq.capacity {
		victim := -1
		for c := int(NumClasses) - 1; c >= int(it.Class); c-- {
			if len(cq.q[c]) > 0 {
				victim = c
				break
			}
		}
		if victim < 0 {
			cq.count(cq.shed[it.Class])
			return false
		}
		q := cq.q[victim]
		copy(q, q[1:])
		cq.q[victim] = q[:len(q)-1]
		cq.count(cq.shed[victim])
	}
	cq.q[it.Class] = append(cq.q[it.Class], it)
	cq.count(cq.deferred)
	return true
}

// Peek returns the most important queued intent without removing it.
func (cq *ControlQueue) Peek() (ControlItem, bool) {
	for c := range cq.q {
		if len(cq.q[c]) > 0 {
			return cq.q[c][0], true
		}
	}
	return ControlItem{}, false
}

// Pop removes and returns the most important queued intent.
func (cq *ControlQueue) Pop() (ControlItem, bool) {
	for c := range cq.q {
		if q := cq.q[c]; len(q) > 0 {
			it := q[0]
			copy(q, q[1:])
			cq.q[c] = q[:len(q)-1]
			return it, true
		}
	}
	return ControlItem{}, false
}

// PeekClass returns the oldest intent of one class without removing
// it.
func (cq *ControlQueue) PeekClass(c Class) (ControlItem, bool) {
	if len(cq.q[c]) == 0 {
		return ControlItem{}, false
	}
	return cq.q[c][0], true
}

// PopClass removes and returns the oldest intent of one class.
func (cq *ControlQueue) PopClass(c Class) (ControlItem, bool) {
	q := cq.q[c]
	if len(q) == 0 {
		return ControlItem{}, false
	}
	it := q[0]
	copy(q, q[1:])
	cq.q[c] = q[:len(q)-1]
	return it, true
}

func (cq *ControlQueue) count(ctr *metrics.Counter) {
	if ctr != nil {
		ctr.Inc()
	}
}
