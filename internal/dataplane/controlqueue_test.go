package dataplane

import (
	"testing"

	"drsnet/internal/metrics"
)

func meters() (*metrics.Set, *metrics.Counter, [NumClasses]*metrics.Counter) {
	mset := metrics.NewSet()
	var shed [NumClasses]*metrics.Counter
	for c := Class(0); c < NumClasses; c++ {
		shed[c] = mset.Counter("overload.shed_" + c.String())
	}
	return mset, mset.Counter("overload.deferred"), shed
}

func TestControlQueuePriorityOrder(t *testing.T) {
	_, def, shed := meters()
	cq := NewControlQueue(8, def, shed)
	cq.Push(ControlItem{ClassDiscovery, -1})
	cq.Push(ControlItem{ClassRepair, 3})
	cq.Push(ControlItem{ClassLiveness, 1})
	cq.Push(ControlItem{ClassRepair, 4})
	want := []ControlItem{{ClassLiveness, 1}, {ClassRepair, 3}, {ClassRepair, 4}, {ClassDiscovery, -1}}
	for i, w := range want {
		if it, ok := cq.Peek(); !ok || it != w {
			t.Fatalf("peek %d = %v %v, want %v", i, it, ok, w)
		}
		if it, ok := cq.Pop(); !ok || it != w {
			t.Fatalf("pop %d = %v %v, want %v", i, it, ok, w)
		}
	}
	if _, ok := cq.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	if def.Value() != 4 {
		t.Fatalf("deferred = %d, want 4", def.Value())
	}
}

func TestControlQueueShedsLeastImportantFirst(t *testing.T) {
	_, def, shed := meters()
	cq := NewControlQueue(3, def, shed)
	cq.Push(ControlItem{ClassDiscovery, -1})
	cq.Push(ControlItem{ClassDiscovery, -2})
	cq.Push(ControlItem{ClassRepair, 7})
	// Full. A liveness push evicts the oldest discovery intent.
	if !cq.Push(ControlItem{ClassLiveness, 1}) {
		t.Fatal("liveness push refused")
	}
	if got := shed[ClassDiscovery].Value(); got != 1 {
		t.Fatalf("discovery sheds = %d, want 1", got)
	}
	if cq.Depth(ClassDiscovery) != 1 || cq.Depth(ClassRepair) != 1 || cq.Depth(ClassLiveness) != 1 {
		t.Fatalf("depths = %d/%d/%d", cq.Depth(ClassLiveness), cq.Depth(ClassRepair), cq.Depth(ClassDiscovery))
	}
	// Another repair push evicts the remaining discovery intent; the
	// one after that evicts the older repair intent (its own class).
	cq.Push(ControlItem{ClassRepair, 8})
	cq.Push(ControlItem{ClassRepair, 9})
	if got := shed[ClassDiscovery].Value(); got != 2 {
		t.Fatalf("discovery sheds = %d, want 2", got)
	}
	if got := shed[ClassRepair].Value(); got != 1 {
		t.Fatalf("repair sheds = %d, want 1", got)
	}
	if it, _ := cq.Pop(); it != (ControlItem{ClassLiveness, 1}) {
		t.Fatalf("head = %v", it)
	}
	if it, _ := cq.Pop(); it != (ControlItem{ClassRepair, 8}) {
		t.Fatalf("second = %v (oldest repair should have been shed)", it)
	}
}

func TestControlQueueRefusesOutrankedNewcomer(t *testing.T) {
	_, def, shed := meters()
	cq := NewControlQueue(2, def, shed)
	cq.Push(ControlItem{ClassLiveness, 1})
	cq.Push(ControlItem{ClassRepair, 2})
	if cq.Push(ControlItem{ClassDiscovery, -1}) {
		t.Fatal("discovery push admitted over liveness+repair at capacity")
	}
	if got := shed[ClassDiscovery].Value(); got != 1 {
		t.Fatalf("discovery sheds = %d, want 1", got)
	}
	if cq.Len() != 2 {
		t.Fatalf("len = %d, want 2", cq.Len())
	}
}

func TestControlQueueContainsAndPopClass(t *testing.T) {
	_, def, shed := meters()
	cq := NewControlQueue(8, def, shed)
	it := ControlItem{ClassRepair, 5}
	if cq.Contains(it) {
		t.Fatal("empty queue contains item")
	}
	cq.Push(it)
	if !cq.Contains(it) {
		t.Fatal("queued item not found")
	}
	if cq.Contains(ControlItem{ClassRepair, 6}) || cq.Contains(ControlItem{ClassLiveness, 5}) {
		t.Fatal("Contains matched a different intent")
	}
	if got, ok := cq.PopClass(ClassRepair); !ok || got != it {
		t.Fatalf("PopClass = %v %v", got, ok)
	}
	if _, ok := cq.PopClass(ClassRepair); ok {
		t.Fatal("PopClass on empty class succeeded")
	}
}
