// Package dataplane implements the data-plane mechanics every router
// in this repository shares: origin sequence numbering, frame
// construction, the deliver/forward/drop decision with TTL policing,
// and the bounded per-destination queue that buffers traffic while
// route discovery is in flight.
//
// What the package deliberately does not do is pick next hops or send
// anything — that is the routing protocol's whole job. A protocol
// builds frames with NewFrame, classifies received bodies with
// Classify, and acts on the verdict with its own route state.
//
// A Plane is not goroutine-safe; the owning protocol serializes
// access under its own lock.
package dataplane

import (
	"drsnet/internal/metrics"
	"drsnet/internal/routing/wire"
)

// Action is Classify's verdict on an incoming data frame.
type Action int

const (
	// Ignore means the body was malformed; it is not counted as
	// protocol traffic.
	Ignore Action = iota
	// Deliver means the frame is addressed to this node.
	Deliver
	// Drop means the frame cannot be forwarded (TTL exhausted or the
	// destination is outside the cluster).
	Drop
	// Forward means the frame should be relayed; the returned header
	// already has its TTL decremented.
	Forward
)

// Plane is one node's data-plane state.
type Plane struct {
	node  int
	nodes int
	ttl   int
	// capacity bounds each destination's discovery queue; zero
	// disables queueing entirely.
	capacity int
	// overflow counts frames discarded because a full queue had to
	// drop its oldest entry; nil disables counting.
	overflow *metrics.Counter

	seq    uint32
	queued map[int][][]byte
}

// New returns a data plane for node in a cluster of nodes, stamping
// ttl on originated frames and queueing at most capacity frames per
// destination (0 = no queueing). overflow, if non-nil, counts
// drop-oldest evictions.
func New(node, nodes, ttl, capacity int, overflow *metrics.Counter) *Plane {
	return &Plane{
		node:     node,
		nodes:    nodes,
		ttl:      ttl,
		capacity: capacity,
		overflow: overflow,
		queued:   make(map[int][][]byte),
	}
}

// NewFrame assigns the next origin sequence number and builds the
// complete ProtoData frame for dst.
func (p *Plane) NewFrame(dst int, data []byte) []byte {
	p.seq++
	h := wire.DataHeader{
		Origin: uint16(p.node),
		Final:  uint16(dst),
		TTL:    uint8(p.ttl),
		Seq:    p.seq,
	}
	return Frame(h, data)
}

// Frame envelopes a data header and payload into a sendable frame.
func Frame(h wire.DataHeader, data []byte) []byte {
	return AppendFrame(make([]byte, 0, 1+wire.DataHeaderLen+len(data)), h, data)
}

// AppendFrame appends a complete framed datagram (envelope byte,
// header, payload) to buf and returns the extended slice. It is the
// allocation-free form of Frame: callers reusing a scratch buffer must
// hand the result only to transports that copy (netsim does) and must
// not retain it past the buffer's next use.
func AppendFrame(buf []byte, h wire.DataHeader, data []byte) []byte {
	buf = append(buf, wire.ProtoData)
	return wire.AppendData(buf, h, data)
}

// NewFrameInto is the scratch-buffer form of NewFrame: it assigns the
// next sequence number and appends the framed datagram to buf[:0].
// The same retention caveats as AppendFrame apply.
func (p *Plane) NewFrameInto(buf []byte, dst int, data []byte) []byte {
	p.seq++
	h := wire.DataHeader{
		Origin: uint16(p.node),
		Final:  uint16(dst),
		TTL:    uint8(p.ttl),
		Seq:    p.seq,
	}
	return AppendFrame(buf[:0], h, data)
}

// Classify decodes a ProtoData body and decides its fate. For Forward
// verdicts the returned header's TTL is already decremented; the
// caller re-frames it with Frame after picking a next hop.
func (p *Plane) Classify(body []byte) (wire.DataHeader, []byte, Action) {
	h, data, err := wire.UnmarshalData(body)
	if err != nil {
		return h, nil, Ignore
	}
	if int(h.Final) == p.node {
		return h, data, Deliver
	}
	if h.TTL <= 1 {
		return h, data, Drop
	}
	h.TTL--
	if final := int(h.Final); final < 0 || final >= p.nodes {
		return h, data, Drop
	}
	return h, data, Forward
}

// CanQueue reports whether discovery queueing is enabled.
func (p *Plane) CanQueue() bool { return p.capacity > 0 }

// Enqueue buffers a frame for dst while discovery is in flight. When
// the queue is full the oldest frames are evicted — deterministically,
// from the head — so the freshest traffic survives the wait, and the
// overflow counter records exactly one increment per evicted frame: a
// burst that displaces several frames in one call counts each loss
// once, never more. With queueing disabled (capacity 0) the frame
// itself is the eviction.
func (p *Plane) Enqueue(dst int, frame []byte) {
	q := p.queued[dst]
	if p.capacity <= 0 {
		if p.overflow != nil {
			p.overflow.Inc()
		}
		return
	}
	for len(q) >= p.capacity {
		copy(q, q[1:])
		q = q[:len(q)-1]
		if p.overflow != nil {
			p.overflow.Inc()
		}
	}
	p.queued[dst] = append(q, frame)
}

// QueueLen returns the number of frames queued for dst.
func (p *Plane) QueueLen(dst int) int { return len(p.queued[dst]) }

// Queued returns the total number of frames parked across all
// discovery queues — the backlog figure the daemon status reporter
// exposes.
func (p *Plane) Queued() int {
	n := 0
	for _, q := range p.queued {
		n += len(q)
	}
	return n
}

// Flush removes and returns dst's queue (nil when empty).
func (p *Plane) Flush(dst int) [][]byte {
	q := p.queued[dst]
	if q != nil {
		delete(p.queued, dst)
	}
	return q
}

// Discard drops dst's queue without returning it (peer removal).
func (p *Plane) Discard(dst int) { delete(p.queued, dst) }
