package dataplane

import (
	"bytes"
	"fmt"
	"testing"

	"drsnet/internal/metrics"
	"drsnet/internal/routing/wire"
)

func TestNewFrameSequencesAndRoundTrips(t *testing.T) {
	p := New(3, 8, 4, 16, nil)
	for want := uint32(1); want <= 3; want++ {
		frame := p.NewFrame(5, []byte("payload"))
		proto, body, err := wire.SplitEnvelope(frame)
		if err != nil || proto != wire.ProtoData {
			t.Fatalf("frame envelope: proto=%d err=%v", proto, err)
		}
		h, data, err := wire.UnmarshalData(body)
		if err != nil {
			t.Fatal(err)
		}
		if h.Origin != 3 || h.Final != 5 || h.TTL != 4 || h.Seq != want {
			t.Fatalf("header = %+v, want seq %d", h, want)
		}
		if string(data) != "payload" {
			t.Fatalf("data = %q", data)
		}
	}
}

func TestClassify(t *testing.T) {
	p := New(2, 4, 4, 16, nil)
	mk := func(final, ttl int) []byte {
		return wire.MarshalData(wire.DataHeader{Origin: 0, Final: uint16(final), TTL: uint8(ttl), Seq: 1}, []byte("x"))
	}
	if _, _, act := p.Classify([]byte{1, 2}); act != Ignore {
		t.Fatalf("malformed body: %v", act)
	}
	if h, data, act := p.Classify(mk(2, 1)); act != Deliver || h.Final != 2 || string(data) != "x" {
		t.Fatalf("frame for self: %v %+v", act, h)
	}
	if _, _, act := p.Classify(mk(3, 1)); act != Drop {
		t.Fatalf("TTL-exhausted frame: %v", act)
	}
	if _, _, act := p.Classify(mk(9, 3)); act != Drop {
		t.Fatalf("out-of-cluster destination: %v", act)
	}
	h, _, act := p.Classify(mk(3, 3))
	if act != Forward || h.TTL != 2 {
		t.Fatalf("relay frame: %v ttl=%d", act, h.TTL)
	}
	// Frame re-frames the decremented header byte-identically to a
	// fresh marshal.
	if got, want := Frame(h, []byte("x")), wire.Envelope(wire.ProtoData, mk(3, 2)); !bytes.Equal(got, want) {
		t.Fatalf("reframe = %x, want %x", got, want)
	}
}

func TestEnqueueDropsOldestDeterministically(t *testing.T) {
	mset := metrics.NewSet()
	ctr := mset.Counter("queue.overflow")
	p := New(0, 4, 4, 3, ctr)
	if !p.CanQueue() {
		t.Fatal("CanQueue = false with capacity 3")
	}
	for i := 0; i < 5; i++ {
		p.Enqueue(2, []byte(fmt.Sprintf("frame-%d", i)))
	}
	if got := ctr.Value(); got != 2 {
		t.Fatalf("overflow counter = %d, want 2", got)
	}
	if n := p.QueueLen(2); n != 3 {
		t.Fatalf("queue length = %d, want 3", n)
	}
	// The two oldest frames (0, 1) were evicted; order preserved.
	got := p.Flush(2)
	for i, want := range []string{"frame-2", "frame-3", "frame-4"} {
		if string(got[i]) != want {
			t.Fatalf("flushed[%d] = %q, want %q", i, got[i], want)
		}
	}
	if p.QueueLen(2) != 0 || p.Flush(2) != nil {
		t.Fatal("queue survived flush")
	}
}

func TestDiscard(t *testing.T) {
	p := New(0, 4, 4, 8, nil)
	p.Enqueue(1, []byte("a"))
	p.Enqueue(3, []byte("b"))
	p.Discard(1)
	if p.QueueLen(1) != 0 {
		t.Fatal("discard left frames behind")
	}
	if p.QueueLen(3) != 1 {
		t.Fatal("discard hit the wrong destination")
	}
}

func TestZeroCapacityDisablesQueueing(t *testing.T) {
	p := New(0, 4, 4, 0, nil)
	if p.CanQueue() {
		t.Fatal("CanQueue = true with capacity 0")
	}
}
