package dataplane

import (
	"fmt"
	"testing"

	"drsnet/internal/metrics"
)

// Regression for the overflow-accounting audit: every evicted frame
// increments queue.overflow exactly once — a burst far past capacity
// counts one loss per displaced frame, never more, never fewer — and
// destinations account independently.
func TestEnqueueOverflowBurstAccounting(t *testing.T) {
	mset := metrics.NewSet()
	ctr := mset.Counter("queue.overflow")
	p := New(0, 8, 4, 4, ctr)
	const burst = 100
	for i := 0; i < burst; i++ {
		p.Enqueue(2, []byte(fmt.Sprintf("a-%d", i)))
	}
	if got, want := ctr.Value(), int64(burst-4); got != want {
		t.Fatalf("overflow after %d enqueues at capacity 4 = %d, want %d", burst, got, want)
	}
	if n := p.QueueLen(2); n != 4 {
		t.Fatalf("queue length = %d, want 4", n)
	}
	// The survivors are exactly the four freshest, in order.
	for i, frame := range p.Flush(2) {
		if want := fmt.Sprintf("a-%d", burst-4+i); string(frame) != want {
			t.Fatalf("survivor[%d] = %q, want %q", i, frame, want)
		}
	}
	// A second destination's queue neither shares frames nor counts.
	before := ctr.Value()
	for i := 0; i < 4; i++ {
		p.Enqueue(3, []byte("b"))
	}
	if got := ctr.Value(); got != before {
		t.Fatalf("filling a fresh queue to capacity counted %d overflows", got-before)
	}
}

// With queueing disabled the frame itself is the loss: counted once,
// no queue growth, and — regression — no panic slicing an empty queue.
func TestEnqueueZeroCapacityCountsFrame(t *testing.T) {
	mset := metrics.NewSet()
	ctr := mset.Counter("queue.overflow")
	p := New(0, 4, 4, 0, ctr)
	for i := 0; i < 3; i++ {
		p.Enqueue(1, []byte("x"))
	}
	if got := ctr.Value(); got != 3 {
		t.Fatalf("overflow = %d, want 3", got)
	}
	if p.QueueLen(1) != 0 {
		t.Fatal("capacity-0 plane queued frames")
	}
}
