package experiments

import (
	"fmt"
	"io"
	"time"

	"drsnet/internal/availability"
	"drsnet/internal/failure"
	"drsnet/internal/runtime"
	"drsnet/internal/topology"
)

// AvailabilityConfig describes a long-run availability measurement:
// a DRS cluster under continuous component failure and repair, with a
// steady application flow whose delivery ratio IS the availability.
type AvailabilityConfig struct {
	Nodes int
	// MTBF and MTTR drive the per-component failure/repair schedule.
	MTBF, MTTR time.Duration
	// Horizon is the simulated observation window.
	Horizon time.Duration
	// ProbeInterval and MissThreshold configure the DRS daemons.
	ProbeInterval time.Duration
	MissThreshold int
	// TrafficInterval is the application flow period (node 0 → 1).
	TrafficInterval time.Duration
	// Seed drives schedule sampling.
	Seed uint64
}

// DefaultAvailabilityConfig returns a fast-but-meaningful regime:
// a 2-hour window with each component failing every ~20 minutes.
func DefaultAvailabilityConfig() AvailabilityConfig {
	return AvailabilityConfig{
		Nodes:           6,
		MTBF:            20 * time.Minute,
		MTTR:            time.Minute,
		Horizon:         2 * time.Hour,
		ProbeInterval:   time.Second,
		MissThreshold:   2,
		TrafficInterval: time.Second,
		Seed:            1,
	}
}

func (c AvailabilityConfig) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("experiments: availability needs ≥ 2 nodes")
	}
	if c.MTBF <= 0 || c.MTTR <= 0 || c.Horizon <= 0 {
		return fmt.Errorf("experiments: MTBF, MTTR and horizon must be positive")
	}
	if c.ProbeInterval <= 0 || c.MissThreshold <= 0 || c.TrafficInterval <= 0 {
		return fmt.Errorf("experiments: probe interval, miss threshold and traffic interval must be positive")
	}
	return nil
}

// AvailabilityResult pairs the measured delivery ratio with the
// analytic prediction.
type AvailabilityResult struct {
	Config          AvailabilityConfig
	Sent, Delivered int
	// Measured is Delivered/Sent — the application-experienced
	// availability.
	Measured float64
	// Model is the first-order analytic prediction
	// (availability.Effective).
	Model availability.Result
	// Failures is the number of component failures injected.
	Failures int
}

// MeasureAvailability runs the long-horizon experiment and the
// analytic model side by side.
func MeasureAvailability(cfg AvailabilityConfig) (*AvailabilityResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cluster := topology.Dual(cfg.Nodes)
	plan, err := failure.RandomSchedule(cluster, failure.ScheduleConfig{
		Horizon: cfg.Horizon,
		MTBF:    cfg.MTBF,
		MTTR:    cfg.MTTR,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	spec := runtime.ClusterSpec{
		Nodes:    cfg.Nodes,
		Protocol: runtime.ProtoDRS,
		Seed:     cfg.Seed,
		Duration: cfg.Horizon,
		Tunables: runtime.Tunables{
			ProbeInterval: cfg.ProbeInterval,
			MissThreshold: cfg.MissThreshold,
		},
		// Frames in flight at the horizon are microseconds from
		// delivery — noise against an hours-long window — so no drain
		// pass is needed (the flow runs to the horizon).
		Flows: []runtime.Flow{{From: 0, To: 1, Interval: cfg.TrafficInterval}},
	}
	failures := 0
	for _, a := range plan {
		if !a.Up {
			failures++
		}
		spec.Faults = append(spec.Faults, runtime.Fault{At: a.At, Comp: a.Component, Restore: a.Up})
	}
	run, err := runtime.Run(spec)
	if err != nil {
		return nil, err
	}
	sent, delivered := run.Flows[0].Sent, run.Flows[0].Delivered

	model, err := availability.Effective(availability.Params{
		Nodes: cfg.Nodes,
		MTBF:  cfg.MTBF,
		MTTR:  cfg.MTTR,
		// Mean repair window: detection takes between MissThreshold
		// and MissThreshold+1 probe rounds after the failure.
		RepairWindow: time.Duration(float64(cfg.MissThreshold)+0.5) * cfg.ProbeInterval,
	})
	if err != nil {
		return nil, err
	}
	return &AvailabilityResult{
		Config:    cfg,
		Sent:      sent,
		Delivered: delivered,
		Measured:  float64(delivered) / float64(sent),
		Model:     model,
		Failures:  failures,
	}, nil
}

// WriteAvailability renders a measurement next to its prediction.
func WriteAvailability(w io.Writer, res *AvailabilityResult) error {
	c := res.Config
	if _, err := fmt.Fprintf(w, "# Availability: %d nodes, MTBF %v, MTTR %v, horizon %v, %d failures injected\n",
		c.Nodes, c.MTBF, c.MTTR, c.Horizon, res.Failures); err != nil {
		return err
	}
	fmt.Fprintf(w, "per-component steady-state unavailability q:  %.4f\n", res.Model.Q)
	fmt.Fprintf(w, "structural pair availability (Equation 1 IID): %.5f\n", res.Model.Structural)
	fmt.Fprintf(w, "DRS detection penalty (first order):           %.5f\n", res.Model.DetectionPenalty)
	fmt.Fprintf(w, "model effective availability:                  %.5f\n", res.Model.Effective)
	fmt.Fprintf(w, "measured (delivered %d of %d):               %.5f  (%d nines, %v downtime/yr)\n",
		res.Delivered, res.Sent, res.Measured,
		availability.Nines(res.Measured),
		availability.DowntimePerYear(1-res.Measured).Round(time.Minute))
	return nil
}
