package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestMeasureAvailabilityAgainstModel(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon availability in -short mode")
	}
	cfg := DefaultAvailabilityConfig()
	res, err := MeasureAvailability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Delivered == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	if res.Failures == 0 {
		t.Fatal("no failures injected at MTBF << horizon")
	}
	// The measurement must land in the model's neighborhood. The
	// first-order model ignores repair bursts and queue flushes, so
	// allow a ±5-point absolute band — tight enough to catch a broken
	// protocol (which lands far below) or a broken injector (1.0).
	if math.Abs(res.Measured-res.Model.Effective) > 0.05 {
		t.Fatalf("measured %v vs model %v", res.Measured, res.Model.Effective)
	}
	// Availability must be visibly below 1 (failures hurt) and above
	// the no-protocol floor.
	if res.Measured >= 0.9999 {
		t.Fatal("measured availability suspiciously perfect")
	}
	if res.Measured < 0.8 {
		t.Fatalf("measured availability %v too low for a working DRS", res.Measured)
	}
	var sb strings.Builder
	if err := WriteAvailability(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "measured") {
		t.Fatalf("availability report: %q", sb.String())
	}
}

func TestMeasureAvailabilityFasterProbesHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon availability in -short mode")
	}
	slow := DefaultAvailabilityConfig()
	slow.Horizon = time.Hour
	slow.ProbeInterval = 5 * time.Second
	fast := slow
	fast.ProbeInterval = 500 * time.Millisecond

	sres, err := MeasureAvailability(slow)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := MeasureAvailability(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !(fres.Measured > sres.Measured) {
		t.Fatalf("faster probing did not improve availability: %v vs %v",
			fres.Measured, sres.Measured)
	}
}

func TestMeasureAvailabilityValidation(t *testing.T) {
	good := DefaultAvailabilityConfig()
	for name, mutate := range map[string]func(*AvailabilityConfig){
		"nodes":   func(c *AvailabilityConfig) { c.Nodes = 1 },
		"mtbf":    func(c *AvailabilityConfig) { c.MTBF = 0 },
		"mttr":    func(c *AvailabilityConfig) { c.MTTR = 0 },
		"horizon": func(c *AvailabilityConfig) { c.Horizon = 0 },
		"probe":   func(c *AvailabilityConfig) { c.ProbeInterval = 0 },
		"miss":    func(c *AvailabilityConfig) { c.MissThreshold = 0 },
		"traffic": func(c *AvailabilityConfig) { c.TrafficInterval = 0 },
	} {
		cfg := good
		mutate(&cfg)
		if _, err := MeasureAvailability(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
