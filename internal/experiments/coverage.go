package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"drsnet/internal/conn"
	"drsnet/internal/parallel"
	"drsnet/internal/runtime"
	"drsnet/internal/topology"
)

// CoverageConfig describes a fault-coverage campaign: EVERY failure
// scenario up to MaxFaults simultaneous component failures is injected
// into a fresh packet-level cluster, and the running DRS's behaviour
// is checked against the analytic connectivity predicate — the
// systematic version of the paper's survivability claim.
type CoverageConfig struct {
	Nodes     int
	MaxFaults int
	// DRS tunables.
	ProbeInterval time.Duration
	MissThreshold int
	// Timing: failure injected at FailAt; outcome judged at Deadline.
	TrafficInterval time.Duration
	FailAt          time.Duration
	Deadline        time.Duration
	Seed            uint64
	// Workers bounds the number of scenarios simulated concurrently;
	// 0 means GOMAXPROCS. Every scenario runs in its own simulator, so
	// the campaign outcome is bit-identical for every worker count.
	Workers int
}

// DefaultCoverageConfig covers all single and double faults of an
// 8-node cluster (18 components → 18 + 153 = 171 scenarios).
func DefaultCoverageConfig() CoverageConfig {
	return CoverageConfig{
		Nodes:           8,
		MaxFaults:       2,
		ProbeInterval:   500 * time.Millisecond,
		MissThreshold:   2,
		TrafficInterval: 100 * time.Millisecond,
		FailAt:          3 * time.Second,
		Deadline:        12 * time.Second,
	}
}

func (c CoverageConfig) validate() error {
	if c.Nodes < 3 {
		return fmt.Errorf("experiments: coverage needs ≥ 3 nodes")
	}
	if c.MaxFaults < 1 || c.MaxFaults > 3 {
		return fmt.Errorf("experiments: MaxFaults must be 1..3 (got %d); larger campaigns explode combinatorially", c.MaxFaults)
	}
	if c.ProbeInterval <= 0 || c.MissThreshold <= 0 || c.TrafficInterval <= 0 {
		return fmt.Errorf("experiments: positive probe interval, miss threshold and traffic interval required")
	}
	if c.FailAt <= 0 || c.Deadline <= c.FailAt {
		return fmt.Errorf("experiments: bad coverage timing")
	}
	if c.Workers < 0 {
		return fmt.Errorf("experiments: negative worker count %d", c.Workers)
	}
	return nil
}

// ClassStats aggregates scenarios of one fault class (e.g. "nic+nic").
type ClassStats struct {
	Scenarios    int
	Connected    int // analytically survivable for the pair (0,1)
	Recovered    int // the running DRS delivered after the failure
	Inconsistent int // simulation disagreed with the predicate
	MaxOutage    time.Duration
	TotalOutage  time.Duration
}

// MeanOutage returns the average outage over recovered scenarios.
func (c ClassStats) MeanOutage() time.Duration {
	if c.Recovered == 0 {
		return 0
	}
	return c.TotalOutage / time.Duration(c.Recovered)
}

// CoverageResult is the campaign outcome.
type CoverageResult struct {
	Config  CoverageConfig
	Total   ClassStats
	Classes map[string]ClassStats
	// FirstInconsistency describes the first scenario (if any) where
	// the simulation disagreed with the analytic predicate.
	FirstInconsistency string
}

// FaultCoverage runs the campaign. Scenarios are enumerated in a
// fixed order, simulated concurrently (cfg.Workers goroutines, each
// scenario in its own simulator), and reduced back in enumeration
// order — so the result, down to the first-inconsistency report, is
// identical to a serial run.
func FaultCoverage(cfg CoverageConfig) (*CoverageResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	cluster := topology.Dual(cfg.Nodes)
	eval, err := conn.NewEvaluator(cluster)
	if err != nil {
		return nil, err
	}

	scenarios := enumerateScenarios(cluster.Components(), cfg.MaxFaults)
	outcomes, err := parallel.Map(nil, cfg.Workers, len(scenarios), func(i int) (scenarioOutcome, error) {
		return runScenario(cfg, cluster, eval, scenarios[i])
	})
	if err != nil {
		return nil, err
	}

	res := &CoverageResult{Config: cfg, Classes: make(map[string]ClassStats)}
	for i, scenario := range scenarios {
		res.record(cluster, scenario, outcomes[i])
	}
	recordSweep("coverage", parallel.Workers(cfg.Workers, len(scenarios)), time.Since(start))
	return res, nil
}

// enumerateScenarios lists every non-empty fault scenario of up to
// maxFaults of m components, in the campaign's canonical order
// (depth-first: {0}, {0,1}, {0,2}, ..., {1}, {1,2}, ...).
func enumerateScenarios(m, maxFaults int) [][]topology.Component {
	var out [][]topology.Component
	var scenario []topology.Component
	var walk func(start int)
	walk = func(start int) {
		if len(scenario) > 0 {
			out = append(out, append([]topology.Component(nil), scenario...))
		}
		if len(scenario) == maxFaults {
			return
		}
		for c := start; c < m; c++ {
			scenario = append(scenario, topology.Component(c))
			walk(c + 1)
			scenario = scenario[:len(scenario)-1]
		}
	}
	walk(0)
	return out
}

// classKey names a scenario's fault class by component kinds.
func classKey(cluster topology.Cluster, scenario []topology.Component) string {
	kinds := make([]string, 0, len(scenario))
	for _, comp := range scenario {
		kind, _, _ := cluster.Describe(comp)
		if kind == topology.KindBackplane {
			kinds = append(kinds, "backplane")
		} else {
			kinds = append(kinds, "nic")
		}
	}
	sort.Strings(kinds)
	key := kinds[0]
	for _, k := range kinds[1:] {
		key += "+" + k
	}
	return key
}

// scenarioOutcome is the result of simulating one fault scenario —
// the pure per-item payload of the parallel campaign.
type scenarioOutcome struct {
	want      bool // analytic predicate: pair (0,1) survivable
	recovered bool // the running DRS delivered after the failure
	outage    time.Duration
}

// runScenario simulates one fault scenario in a private runtime
// cluster and judges it against the analytic predicate. It mutates
// nothing shared, so any number of scenarios can run concurrently.
func runScenario(cfg CoverageConfig, cluster topology.Cluster, eval *conn.Evaluator, scenario []topology.Component) (scenarioOutcome, error) {
	want := eval.PairConnected(scenario, 0, 1)

	spec := runtime.ClusterSpec{
		Nodes:    cfg.Nodes,
		Protocol: runtime.ProtoDRS,
		Seed:     cfg.Seed,
		Duration: cfg.Deadline,
		Tunables: runtime.Tunables{
			ProbeInterval: cfg.ProbeInterval,
			MissThreshold: cfg.MissThreshold,
		},
		Flows: []runtime.Flow{{
			From:     0,
			To:       1,
			Interval: cfg.TrafficInterval,
			Payload:  []byte("c"),
		}},
	}
	for _, comp := range scenario {
		spec.Faults = append(spec.Faults, runtime.Fault{At: cfg.FailAt, Comp: comp})
	}
	run, err := runtime.Run(spec)
	if err != nil {
		return scenarioOutcome{}, err
	}

	var firstAfter time.Duration = -1
	for _, at := range run.Flows[0].Deliveries {
		if at >= cfg.FailAt {
			firstAfter = at
			break
		}
	}
	out := scenarioOutcome{want: want, recovered: firstAfter >= 0}
	if out.recovered {
		out.outage = firstAfter - cfg.FailAt
	}
	return out, nil
}

// record folds one scenario outcome into the campaign result. Called
// in enumeration order, which keeps FirstInconsistency deterministic.
func (res *CoverageResult) record(cluster topology.Cluster, scenario []topology.Component, o scenarioOutcome) {
	key := classKey(cluster, scenario)
	cs := res.Classes[key]
	cs.Scenarios++
	res.Total.Scenarios++
	if o.want {
		cs.Connected++
		res.Total.Connected++
	}
	if o.recovered {
		cs.Recovered++
		res.Total.Recovered++
		cs.TotalOutage += o.outage
		res.Total.TotalOutage += o.outage
		if o.outage > cs.MaxOutage {
			cs.MaxOutage = o.outage
		}
		if o.outage > res.Total.MaxOutage {
			res.Total.MaxOutage = o.outage
		}
	}
	if o.recovered != o.want {
		cs.Inconsistent++
		res.Total.Inconsistent++
		if res.FirstInconsistency == "" {
			names := ""
			for i, comp := range scenario {
				if i > 0 {
					names += ", "
				}
				names += cluster.Name(comp)
			}
			res.FirstInconsistency = fmt.Sprintf("{%s}: simulated recovered=%v, predicate=%v",
				names, o.recovered, o.want)
		}
	}
	res.Classes[key] = cs
}

// WriteCoverage renders the campaign as the fault-coverage matrix.
func WriteCoverage(w io.Writer, res *CoverageResult) error {
	cfg := res.Config
	if _, err := fmt.Fprintf(w, "# Fault coverage: %d nodes, all scenarios up to %d faults (%d total)\n",
		cfg.Nodes, cfg.MaxFaults, res.Total.Scenarios); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-24s %9s %10s %10s %12s %12s %8s\n",
		"class", "scenarios", "survivable", "recovered", "mean-outage", "max-outage", "inconsis")
	keys := make([]string, 0, len(res.Classes))
	for k := range res.Classes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	write := func(name string, cs ClassStats) {
		fmt.Fprintf(w, "%-24s %9d %10d %10d %12v %12v %8d\n",
			name, cs.Scenarios, cs.Connected, cs.Recovered,
			cs.MeanOutage().Round(time.Millisecond), cs.MaxOutage.Round(time.Millisecond),
			cs.Inconsistent)
	}
	for _, k := range keys {
		write(k, res.Classes[k])
	}
	write("TOTAL", res.Total)
	if res.FirstInconsistency != "" {
		fmt.Fprintf(w, "first inconsistency: %s\n", res.FirstInconsistency)
	}
	return nil
}
