package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFaultCoverageExhaustiveConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive campaign in -short mode")
	}
	// A 6-node cluster: 14 components → 14 single + 91 double = 105
	// scenarios, each simulated end to end.
	cfg := DefaultCoverageConfig()
	cfg.Nodes = 6
	res, err := FaultCoverage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantScenarios := 14 + 14*13/2
	if res.Total.Scenarios != wantScenarios {
		t.Fatalf("ran %d scenarios, want %d", res.Total.Scenarios, wantScenarios)
	}
	// The decisive assertion: the running protocol's outcome matches
	// the analytic predicate in EVERY scenario.
	if res.Total.Inconsistent != 0 {
		t.Fatalf("%d inconsistent scenarios; first: %s",
			res.Total.Inconsistent, res.FirstInconsistency)
	}
	// Every single fault is survivable and survived.
	singleNIC := res.Classes["nic"]
	singleBP := res.Classes["backplane"]
	if singleNIC.Scenarios != 12 || singleBP.Scenarios != 2 {
		t.Fatalf("single-fault classes: nic=%d backplane=%d", singleNIC.Scenarios, singleBP.Scenarios)
	}
	if singleNIC.Recovered != singleNIC.Scenarios || singleBP.Recovered != singleBP.Scenarios {
		t.Fatal("a single fault was not survived")
	}
	// Double backplane faults are never survivable.
	dbp := res.Classes["backplane+backplane"]
	if dbp.Scenarios != 1 || dbp.Connected != 0 || dbp.Recovered != 0 {
		t.Fatalf("backplane+backplane stats: %+v", dbp)
	}
	// Recovery latency is bounded by the detection budget plus the
	// discovery exchange.
	budget := time.Duration(cfg.MissThreshold+2)*cfg.ProbeInterval + cfg.TrafficInterval
	if res.Total.MaxOutage > budget {
		t.Fatalf("max outage %v exceeds budget %v", res.Total.MaxOutage, budget)
	}
	var sb strings.Builder
	if err := WriteCoverage(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fault coverage", "nic+nic", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("coverage table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "first inconsistency") {
		t.Fatalf("unexpected inconsistency note:\n%s", out)
	}
}

func TestFaultCoverageSingleOnly(t *testing.T) {
	cfg := DefaultCoverageConfig()
	cfg.Nodes = 4
	cfg.MaxFaults = 1
	res, err := FaultCoverage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Scenarios != 10 {
		t.Fatalf("scenarios = %d, want 10 (2·4+2 components)", res.Total.Scenarios)
	}
	if res.Total.Recovered != 10 || res.Total.Inconsistent != 0 {
		t.Fatalf("single-fault campaign: %+v", res.Total)
	}
}

func TestFaultCoverageValidation(t *testing.T) {
	good := DefaultCoverageConfig()
	for name, mutate := range map[string]func(*CoverageConfig){
		"nodes":     func(c *CoverageConfig) { c.Nodes = 2 },
		"maxfaults": func(c *CoverageConfig) { c.MaxFaults = 0 },
		"explode":   func(c *CoverageConfig) { c.MaxFaults = 4 },
		"probe":     func(c *CoverageConfig) { c.ProbeInterval = 0 },
		"timing":    func(c *CoverageConfig) { c.Deadline = c.FailAt },
	} {
		cfg := good
		mutate(&cfg)
		if _, err := FaultCoverage(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
