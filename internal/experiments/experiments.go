// Package experiments implements one generator per table/figure of the
// paper's evaluation, shared by the cmd/ tools and the benchmark
// harness. Each generator returns structured results and can render
// the same rows/series the paper reports.
//
// Index (see DESIGN.md):
//
//	E1  Figure 1  — proactive probing cost (costmodel)
//	E2  Figure 2  — P[Success] vs N for fixed f (survival)
//	E2a thresholds — first N with P[S] > 0.99 for f = 2, 3, 4
//	E3  Figure 3  — Monte Carlo convergence to Equation 1 (montecarlo)
//	E4  13% stat  — fleet failure log (failure)
//	E5  recovery  — proactive vs reactive repair latency (core, routing,
//	               netsim, tcpmodel)
package experiments

import (
	"fmt"
	"io"
	"math/big"
	"time"

	"drsnet/internal/costmodel"
	"drsnet/internal/failure"
	"drsnet/internal/metrics"
	"drsnet/internal/montecarlo"
	"drsnet/internal/parallel"
	"drsnet/internal/survival"
)

// Metrics collects per-sweep engine telemetry: for every parallel
// generator run, sweep.<name>.wall_ns and sweep.<name>.workers gauges
// record the last run's wall time and resolved worker count, and the
// sweep.<name>.runs counter accumulates.
var Metrics = metrics.NewSet()

// recordSweep stores one sweep's telemetry.
func recordSweep(name string, workers int, wall time.Duration) {
	Metrics.Gauge("sweep." + name + ".wall_ns").Set(int64(wall))
	Metrics.Gauge("sweep." + name + ".workers").Set(int64(workers))
	Metrics.Counter("sweep." + name + ".runs").Inc()
}

// ---------------------------------------------------------------
// E1: Figure 1 — Response Time vs Number of Nodes.

// Figure1Result holds one cost curve per bandwidth budget.
type Figure1Result struct {
	Params  costmodel.Params
	Budgets []float64
	Nodes   []int
	// Times[b][i] is the round time for Budgets[b] at Nodes[i].
	Times [][]float64
}

// Figure1 computes the Figure 1 curves for node counts nMin..nMax in
// steps of step.
func Figure1(params costmodel.Params, budgets []float64, nMin, nMax, step int) (*Figure1Result, error) {
	return Figure1Workers(params, budgets, nMin, nMax, step, 0)
}

// Figure1Workers is Figure1 on the parallel sweep engine: every
// (budget, node) cell is an independent evaluation written into its
// own slot, so the result is bit-identical for every worker count
// (0 = GOMAXPROCS).
func Figure1Workers(params costmodel.Params, budgets []float64, nMin, nMax, step, workers int) (*Figure1Result, error) {
	if step <= 0 {
		return nil, fmt.Errorf("experiments: step must be positive")
	}
	if len(budgets) == 0 {
		return nil, fmt.Errorf("experiments: no budgets")
	}
	start := time.Now()
	res := &Figure1Result{Params: params, Budgets: budgets}
	for n := nMin; n <= nMax; n += step {
		res.Nodes = append(res.Nodes, n)
	}
	res.Times = make([][]float64, len(budgets))
	for b := range budgets {
		res.Times[b] = make([]float64, len(res.Nodes))
	}
	cells := len(budgets) * len(res.Nodes)
	err := parallel.ForEach(nil, workers, cells, func(i int) error {
		b, j := i/len(res.Nodes), i%len(res.Nodes)
		rt, err := params.ResponseTime(res.Nodes[j], budgets[b])
		if err != nil {
			return err
		}
		res.Times[b][j] = rt
		return nil
	})
	if err != nil {
		return nil, err
	}
	recordSweep("figure1", parallel.Workers(workers, cells), time.Since(start))
	return res, nil
}

// WriteTable renders the curves as the paper's figure data.
func (r *Figure1Result) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Figure 1: response time (s) vs number of nodes, %.0f Mb/s network\n",
		r.Params.LinkRate/1e6); err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s", "nodes")
	for _, b := range r.Budgets {
		fmt.Fprintf(w, " %9.0f%%", b*100)
	}
	fmt.Fprintln(w)
	for i, n := range r.Nodes {
		fmt.Fprintf(w, "%6d", n)
		for b := range r.Budgets {
			fmt.Fprintf(w, " %10.4f", r.Times[b][i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ---------------------------------------------------------------
// E2: Figure 2 — convergence of P[Success] to 1.

// Figure2Result holds one analytic survivability curve per failure
// count.
type Figure2Result struct {
	Failures []int
	NMax     int
	// P[fi][n-(Failures[fi]+1)] = P[Success](n, Failures[fi]).
	P [][]float64
}

// Figure2 computes P[Success] for every f in failures and every
// f < N ≤ nMax (the paper plots f < N < 64).
func Figure2(failures []int, nMax int) (*Figure2Result, error) {
	return Figure2Workers(failures, nMax, 0)
}

// Figure2Workers is Figure2 on the parallel sweep engine. The sweep is
// sharded over every (f, N) point — not per curve, so short curves do
// not serialize behind long ones — and every point is an independent
// exact evaluation written into its own slot: the result is
// bit-identical for every worker count (0 = GOMAXPROCS).
func Figure2Workers(failures []int, nMax, workers int) (*Figure2Result, error) {
	if len(failures) == 0 {
		return nil, fmt.Errorf("experiments: no failure counts")
	}
	start := time.Now()
	res := &Figure2Result{Failures: failures, NMax: nMax}
	// Flatten the ragged (f, N) grid into one work list.
	type cell struct{ fi, n int }
	var cells []cell
	for fi, f := range failures {
		if f < 1 || f+1 > nMax {
			return nil, fmt.Errorf("experiments: f=%d has no N in range (nMax=%d)", f, nMax)
		}
		res.P = append(res.P, make([]float64, nMax-f))
		for n := f + 1; n <= nMax; n++ {
			cells = append(cells, cell{fi, n})
		}
	}
	_ = parallel.ForEach(nil, workers, len(cells), func(i int) error {
		c := cells[i]
		f := failures[c.fi]
		res.P[c.fi][c.n-(f+1)] = survival.PSuccessFloat(c.n, f)
		return nil
	})
	recordSweep("figure2", parallel.Workers(workers, len(cells)), time.Since(start))
	return res, nil
}

// WriteTable renders the curves.
func (r *Figure2Result) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Figure 2: P[Success] vs nodes (Equation 1)\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s", "nodes")
	for _, f := range r.Failures {
		fmt.Fprintf(w, " %8df", f)
	}
	fmt.Fprintln(w)
	for n := 3; n <= r.NMax; n++ {
		fmt.Fprintf(w, "%6d", n)
		for fi, f := range r.Failures {
			if n <= f {
				fmt.Fprintf(w, " %9s", "-")
				continue
			}
			fmt.Fprintf(w, " %9.5f", r.P[fi][n-(f+1)])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ThresholdRow is one E2a result.
type ThresholdRow struct {
	F     int
	N     int
	P     float64
	Found bool
}

// Thresholds computes, for each f, the first N ≤ nMax at which
// P[Success] exceeds target. The paper reports 18, 32 and 45 for
// f = 2, 3, 4 at target 0.99.
func Thresholds(failures []int, target float64, nMax int) ([]ThresholdRow, error) {
	return ThresholdsWorkers(failures, target, nMax, 0)
}

// ThresholdsWorkers is Thresholds on the parallel sweep engine: each
// failure count's scan is independent, so rows solve concurrently and
// land in input order (0 = GOMAXPROCS). Results are bit-identical for
// every worker count.
func ThresholdsWorkers(failures []int, target float64, nMax, workers int) ([]ThresholdRow, error) {
	rat := new(big.Rat)
	if rat.SetFloat64(target) == nil {
		return nil, fmt.Errorf("experiments: bad target %v", target)
	}
	start := time.Now()
	rows, err := parallel.Map(nil, workers, len(failures), func(i int) (ThresholdRow, error) {
		f := failures[i]
		n, err := survival.Threshold(f, rat, 2, nMax)
		if err != nil {
			// Not found within range — a data row, not a sweep failure.
			return ThresholdRow{F: f}, nil
		}
		return ThresholdRow{F: f, N: n, P: survival.PSuccessFloat(n, f), Found: true}, nil
	})
	if err != nil {
		return nil, err
	}
	recordSweep("thresholds", parallel.Workers(workers, len(failures)), time.Since(start))
	return rows, nil
}

// WriteThresholds renders E2a.
func WriteThresholds(w io.Writer, rows []ThresholdRow, target float64) error {
	if _, err := fmt.Fprintf(w, "# First N with P[Success] > %.2f\n", target); err != nil {
		return err
	}
	fmt.Fprintf(w, "%4s %6s %10s\n", "f", "N", "P[S](N,f)")
	for _, r := range rows {
		if !r.Found {
			fmt.Fprintf(w, "%4d %6s %10s\n", r.F, "-", "-")
			continue
		}
		fmt.Fprintf(w, "%4d %6d %10.5f\n", r.F, r.N, r.P)
	}
	return nil
}

// ---------------------------------------------------------------
// E3: Figure 3 — convergence of the simulation to Equation 1.

// Figure3Result wraps the Monte Carlo convergence study.
type Figure3Result struct {
	Config montecarlo.ConvergenceConfig
	Series []montecarlo.ConvergenceSeries
}

// Figure3 runs the convergence study.
func Figure3(cfg montecarlo.ConvergenceConfig) (*Figure3Result, error) {
	series, err := montecarlo.Convergence(cfg)
	if err != nil {
		return nil, err
	}
	return &Figure3Result{Config: cfg, Series: series}, nil
}

// Figure3Defaults returns the paper's configuration: f = 2..10,
// f < N < 64, iterations on a log10 ladder.
func Figure3Defaults() montecarlo.ConvergenceConfig {
	return montecarlo.ConvergenceConfig{
		Failures:   []int{2, 3, 4, 5, 6, 7, 8, 9, 10},
		NMax:       63,
		Iterations: []int64{10, 100, 1000, 10000, 100000},
		Seed:       1,
	}
}

// WriteTable renders the mean-absolute-deviation curves (the paper's
// y-axis) against the iteration ladder (log10 x-axis).
func (r *Figure3Result) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Figure 3: mean |simulated - analytic| over f<N<%d vs iterations\n",
		r.Config.NMax+1); err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s", "iters")
	for _, s := range r.Series {
		fmt.Fprintf(w, " %9df", s.F)
	}
	fmt.Fprintln(w)
	for i, iters := range r.Config.Iterations {
		fmt.Fprintf(w, "%10d", iters)
		for _, s := range r.Series {
			fmt.Fprintf(w, " %10.6f", s.MAD[i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ---------------------------------------------------------------
// E4: the 13% motivating statistic.

// Fleet generates the fleet failure log and returns its summary.
func Fleet(cfg failure.FleetConfig) (*failure.FleetLog, failure.FleetSummary, error) {
	log, err := failure.GenerateFleetLog(cfg)
	if err != nil {
		return nil, failure.FleetSummary{}, err
	}
	return log, log.Summary(), nil
}

// WriteFleet renders the summary.
func WriteFleet(w io.Writer, log *failure.FleetLog) error {
	s := log.Summary()
	if _, err := fmt.Fprintf(w, "# Fleet failure log: %d servers, %d days, seed %d\n",
		log.Config.Servers, log.Config.Days, log.Config.Seed); err != nil {
		return err
	}
	fmt.Fprintf(w, "total hardware failures: %d\n", s.Total)
	for cat, count := range s.ByCategory {
		if count == 0 {
			continue
		}
		tag := ""
		if failure.Category(cat).IsNetwork() {
			tag = "  [network]"
		}
		fmt.Fprintf(w, "  %-8s %4d (%5.1f%%)%s\n",
			failure.Category(cat), count, 100*float64(count)/float64(s.Total), tag)
	}
	fmt.Fprintf(w, "network-related fraction: %.1f%% (paper: 13%%)\n", 100*s.NetworkFraction)
	return nil
}
