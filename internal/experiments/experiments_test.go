package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"drsnet/internal/costmodel"
	"drsnet/internal/failure"
	"drsnet/internal/montecarlo"
	"drsnet/internal/runtime"
)

func TestFigure1(t *testing.T) {
	res, err := Figure1(costmodel.Defaults(), costmodel.FigureBudgets, 10, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 10 || res.Nodes[0] != 10 || res.Nodes[9] != 100 {
		t.Fatalf("nodes = %v", res.Nodes)
	}
	if len(res.Times) != len(costmodel.FigureBudgets) {
		t.Fatalf("%d curves", len(res.Times))
	}
	// The headline cell: 90 nodes at 10% budget < 1 s.
	var i90, b10 = -1, -1
	for i, n := range res.Nodes {
		if n == 90 {
			i90 = i
		}
	}
	for b, bud := range res.Budgets {
		if bud == 0.10 {
			b10 = b
		}
	}
	if i90 < 0 || b10 < 0 {
		t.Fatal("grid misses the headline cell")
	}
	if rt := res.Times[b10][i90]; rt >= 1 {
		t.Fatalf("90 nodes at 10%% = %v s, paper says < 1 s", rt)
	}
	var sb strings.Builder
	if err := res.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 1") || !strings.Contains(sb.String(), "10%") {
		t.Fatalf("table output: %q", sb.String())
	}
}

func TestFigure1Errors(t *testing.T) {
	if _, err := Figure1(costmodel.Defaults(), nil, 2, 10, 1); err == nil {
		t.Error("no budgets accepted")
	}
	if _, err := Figure1(costmodel.Defaults(), []float64{0.1}, 2, 10, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Figure1(costmodel.Defaults(), []float64{2}, 2, 10, 1); err == nil {
		t.Error("budget > 1 accepted")
	}
}

func TestFigure2(t *testing.T) {
	res, err := Figure2([]int{2, 3, 4}, 63)
	if err != nil {
		t.Fatal(err)
	}
	// Check the paper's anchor point P(18,2) ≈ 0.99005.
	p := res.P[0][18-3]
	if math.Abs(p-0.990042674) > 1e-6 {
		t.Fatalf("P(18,2) = %v", p)
	}
	var sb strings.Builder
	if err := res.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 2") {
		t.Fatal("missing header")
	}
	if _, err := Figure2(nil, 63); err == nil {
		t.Error("empty failure list accepted")
	}
	if _, err := Figure2([]int{70}, 63); err == nil {
		t.Error("f >= nMax accepted")
	}
}

func TestThresholdsMatchPaper(t *testing.T) {
	rows, err := Thresholds([]int{2, 3, 4}, 0.99, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{2: 18, 3: 32, 4: 45}
	for _, r := range rows {
		if !r.Found {
			t.Fatalf("f=%d: threshold not found", r.F)
		}
		if r.N != want[r.F] {
			t.Fatalf("f=%d: N=%d, paper says %d", r.F, r.N, want[r.F])
		}
		if r.P <= 0.99 {
			t.Fatalf("f=%d: P=%v not above target", r.F, r.P)
		}
	}
	var sb strings.Builder
	if err := WriteThresholds(&sb, rows, 0.99); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "18") || !strings.Contains(sb.String(), "45") {
		t.Fatalf("threshold table: %q", sb.String())
	}
}

func TestThresholdsNotFoundRendered(t *testing.T) {
	rows, err := Thresholds([]int{9}, 0.99, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Found {
		t.Fatal("threshold found below N=10 for f=9?")
	}
	var sb strings.Builder
	if err := WriteThresholds(&sb, rows, 0.99); err != nil {
		t.Fatal(err)
	}
}

func TestFigure3Small(t *testing.T) {
	cfg := montecarlo.ConvergenceConfig{
		Failures:   []int{2, 3},
		NMax:       16,
		Iterations: []int64{10, 10000},
		Seed:       2,
	}
	res, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.MAD[1] >= s.MAD[0] {
			t.Fatalf("f=%d: no convergence: %v", s.F, s.MAD)
		}
	}
	var sb strings.Builder
	if err := res.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 3") {
		t.Fatal("missing header")
	}
}

func TestFigure3DefaultsShape(t *testing.T) {
	cfg := Figure3Defaults()
	if len(cfg.Failures) != 9 || cfg.Failures[0] != 2 || cfg.Failures[8] != 10 {
		t.Fatalf("failures = %v (paper: 2..10)", cfg.Failures)
	}
	if cfg.NMax != 63 {
		t.Fatalf("NMax = %d (paper: f < N < 64)", cfg.NMax)
	}
}

func TestFleet(t *testing.T) {
	log, sum, err := Fleet(failure.DefaultFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total == 0 {
		t.Fatal("empty fleet log")
	}
	var sb strings.Builder
	if err := WriteFleet(&sb, log); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "network-related fraction") || !strings.Contains(out, "[network]") {
		t.Fatalf("fleet output: %q", out)
	}
}

func TestRecoveryDRSMasksNICFailure(t *testing.T) {
	cfg := DefaultRecoveryConfig(runtime.ProtoDRS, ScenarioNIC)
	res, err := Recovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("DRS did not recover from a single NIC failure")
	}
	// Detection + repair within the proactive budget.
	budget := time.Duration(cfg.MissThreshold+1) * cfg.ProbeInterval
	if res.RepairLatency > budget {
		t.Fatalf("repair latency %v exceeds %v", res.RepairLatency, budget)
	}
	if res.DetectionLatency <= 0 {
		t.Fatal("no detection recorded")
	}
	if !res.SurvivedByTCP {
		t.Fatal("outage killed the TCP model connection")
	}
	// The outage must be within a few probe intervals.
	if res.Outage > budget+cfg.TrafficInterval {
		t.Fatalf("application outage %v too long", res.Outage)
	}
}

func TestRecoveryComparisonOrdering(t *testing.T) {
	// The paper's qualitative claim: proactive beats reactive beats
	// static on identical failure traces.
	base := DefaultRecoveryConfig(runtime.ProtoDRS, ScenarioNIC)
	results, err := CompareRecovery(base)
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[string]*RecoveryResult{}
	for _, r := range results {
		byProto[r.Config.Protocol] = r
	}
	drs, reactive, static := byProto[runtime.ProtoDRS], byProto[runtime.ProtoReactive], byProto[runtime.ProtoStatic]
	if drs == nil || reactive == nil || static == nil {
		t.Fatal("missing protocol result")
	}
	if !drs.Recovered || !reactive.Recovered {
		t.Fatalf("recovery flags: drs=%v reactive=%v", drs.Recovered, reactive.Recovered)
	}
	if static.Recovered {
		t.Fatal("static routing recovered from a NIC failure?!")
	}
	if !(drs.Outage < reactive.Outage) {
		t.Fatalf("DRS outage %v not better than reactive %v", drs.Outage, reactive.Outage)
	}
	if !(drs.Lost <= reactive.Lost && reactive.Lost < static.Lost) {
		t.Fatalf("loss ordering violated: drs=%d reactive=%d static=%d",
			drs.Lost, reactive.Lost, static.Lost)
	}
	var sb strings.Builder
	if err := WriteRecovery(&sb, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "drs") || !strings.Contains(sb.String(), "static") {
		t.Fatalf("recovery table: %q", sb.String())
	}
}

func TestRecoveryCrossRailNeedsRelay(t *testing.T) {
	cfg := DefaultRecoveryConfig(runtime.ProtoDRS, ScenarioCrossRail)
	res, err := Recovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("DRS relay discovery did not reconnect the cross-rail failure")
	}
}

func TestRecoveryBackplane(t *testing.T) {
	cfg := DefaultRecoveryConfig(runtime.ProtoDRS, ScenarioBackplane)
	res, err := Recovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("DRS did not survive a back plane failure")
	}
}

func TestRecoveryValidation(t *testing.T) {
	good := DefaultRecoveryConfig(runtime.ProtoDRS, ScenarioNIC)
	for name, mutate := range map[string]func(*RecoveryConfig){
		"too few nodes": func(c *RecoveryConfig) { c.Nodes = 2 },
		"bad protocol":  func(c *RecoveryConfig) { c.Protocol = "ospf" },
		"bad scenario":  func(c *RecoveryConfig) { c.Scenario = "meteor" },
		"bad timing":    func(c *RecoveryConfig) { c.Duration = c.FailAt },
	} {
		cfg := good
		mutate(&cfg)
		if _, err := Recovery(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestProbeOverheadMatchesCostModel(t *testing.T) {
	measured, predicted, err := ProbeOverhead(10, time.Second, 10*time.Second, false)
	if err != nil {
		t.Fatal(err)
	}
	if predicted <= 0 || measured <= 0 {
		t.Fatalf("overheads: measured=%v predicted=%v", measured, predicted)
	}
	// The empirical utilization must match the analytic model within
	// 15% (edge effects from the finite window and the replies that
	// straggle past it).
	if rel := math.Abs(measured-predicted) / predicted; rel > 0.15 {
		t.Fatalf("measured %v vs predicted %v (rel err %v)", measured, predicted, rel)
	}
}

func TestProbeOverheadValidation(t *testing.T) {
	if _, _, err := ProbeOverhead(1, time.Second, time.Second, false); err == nil {
		t.Error("n=1 accepted")
	}
	if _, _, err := ProbeOverhead(4, 0, time.Second, false); err == nil {
		t.Error("zero interval accepted")
	}
}
