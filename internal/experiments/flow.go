package experiments

import (
	"fmt"
	"io"
	"time"

	"drsnet/internal/core"
	"drsnet/internal/flowsim"
	"drsnet/internal/netsim"
	"drsnet/internal/routing"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

// FlowRecoveryConfig describes the connection-level E5 variant: a
// reliable retransmitting stream (flowsim) rides the router under test
// across an injected failure, and the connection's fate is observed.
type FlowRecoveryConfig struct {
	Protocol Protocol
	Nodes    int
	Scenario Scenario
	// SegmentInterval is the application's send cadence.
	SegmentInterval time.Duration
	// FailAt and Duration bound the run.
	FailAt, Duration time.Duration
	// DRS and reactive tunables (as in RecoveryConfig).
	ProbeInterval     time.Duration
	MissThreshold     int
	AdvertiseInterval time.Duration
	RouteTimeout      time.Duration
	// Flow is the transport configuration (zero value = TCP-like
	// defaults).
	Flow flowsim.FlowConfig
	Seed uint64
}

// DefaultFlowRecoveryConfig mirrors DefaultRecoveryConfig with a
// 200 ms-probing DRS — the regime in which the paper claims
// applications never notice.
func DefaultFlowRecoveryConfig(p Protocol, s Scenario) FlowRecoveryConfig {
	return FlowRecoveryConfig{
		Protocol:          p,
		Nodes:             10,
		Scenario:          s,
		SegmentInterval:   100 * time.Millisecond,
		FailAt:            10 * time.Second,
		Duration:          60 * time.Second,
		ProbeInterval:     200 * time.Millisecond,
		MissThreshold:     2,
		AdvertiseInterval: time.Second,
		RouteTimeout:      6 * time.Second,
		Flow:              flowsim.DefaultFlowConfig(),
		Seed:              1,
	}
}

// FlowRecoveryResult is the connection-level outcome.
type FlowRecoveryResult struct {
	Config FlowRecoveryConfig
	// Sender-side stats.
	Flow flowsim.FlowStats
	// Receiver-side stats.
	Sink flowsim.SinkStats
	// Survived is the connection-level verdict: everything enqueued
	// was acknowledged and the retry budget never ran out.
	Survived bool
}

// FlowRecovery runs one connection-level recovery experiment.
func FlowRecovery(cfg FlowRecoveryConfig) (*FlowRecoveryResult, error) {
	rc := RecoveryConfig{
		Protocol:          cfg.Protocol,
		Nodes:             cfg.Nodes,
		Scenario:          cfg.Scenario,
		TrafficInterval:   cfg.SegmentInterval,
		FailAt:            cfg.FailAt,
		Duration:          cfg.Duration,
		ProbeInterval:     cfg.ProbeInterval,
		MissThreshold:     cfg.MissThreshold,
		AdvertiseInterval: cfg.AdvertiseInterval,
		RouteTimeout:      cfg.RouteTimeout,
		Seed:              cfg.Seed,
	}
	if err := rc.normalize(); err != nil {
		return nil, err
	}

	sched := simtime.NewScheduler()
	cl := topology.Dual(cfg.Nodes)
	net, err := netsim.New(sched, cl, netsim.DefaultParams(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	clock := routing.SimClock{Sched: sched}

	routers := make([]routing.Router, cfg.Nodes)
	for node := 0; node < cfg.Nodes; node++ {
		tr := routing.NewSimNode(net, node)
		switch cfg.Protocol {
		case ProtoDRS:
			c := core.DefaultConfig()
			c.ProbeInterval = cfg.ProbeInterval
			c.MissThreshold = cfg.MissThreshold
			d, err := core.New(tr, clock, c)
			if err != nil {
				return nil, err
			}
			routers[node] = d
		case ProtoReactive:
			rcfg := routing.DefaultReactiveConfig()
			rcfg.AdvertiseInterval = cfg.AdvertiseInterval
			rcfg.RouteTimeout = cfg.RouteTimeout
			r, err := routing.NewReactive(tr, clock, rcfg)
			if err != nil {
				return nil, err
			}
			routers[node] = r
		case ProtoLinkState:
			lc := routing.DefaultLinkStateConfig()
			lc.HelloInterval = cfg.AdvertiseInterval
			l, err := routing.NewLinkState(tr, clock, lc)
			if err != nil {
				return nil, err
			}
			routers[node] = l
		case ProtoStatic:
			s, err := routing.NewStatic(tr, 0)
			if err != nil {
				return nil, err
			}
			routers[node] = s
		}
	}
	for _, r := range routers {
		if err := r.Start(); err != nil {
			return nil, err
		}
	}

	sender, err := flowsim.NewEndpoint(routers[0], clock)
	if err != nil {
		return nil, err
	}
	receiver, err := flowsim.NewEndpoint(routers[1], clock)
	if err != nil {
		return nil, err
	}
	flow, err := sender.Dial(1, 1, cfg.Flow)
	if err != nil {
		return nil, err
	}
	sink, err := receiver.Listen(0, 1)
	if err != nil {
		return nil, err
	}

	// The application stops sending early enough for in-flight
	// segments (and their retransmissions) to drain before the
	// horizon; otherwise a healthy tail segment would read as loss.
	drain := 8 * cfg.Flow.RTO
	if drain < 5*time.Second {
		drain = 5 * time.Second
	}
	stopAt := cfg.Duration - drain
	var tick func()
	tick = func() {
		if time.Duration(sched.Now()) >= stopAt {
			return
		}
		// A dead connection stops the application; nothing more to do.
		if err := flow.Send([]byte("segment")); err != nil {
			return
		}
		sched.After(cfg.SegmentInterval, tick)
	}
	// One warm-up interval before the stream starts.
	sched.After(cfg.SegmentInterval, tick)

	for _, comp := range rc.components(cl) {
		comp := comp
		sched.At(simtime.Time(cfg.FailAt), func() { net.Fail(comp) })
	}

	sched.RunUntil(simtime.Time(cfg.Duration))
	for _, r := range routers {
		r.Stop()
	}

	fs := flow.Stats()
	res := &FlowRecoveryResult{
		Config:   cfg,
		Flow:     fs,
		Sink:     sink.Stats(),
		Survived: !fs.Dead && fs.Acked == fs.Enqueued,
	}
	return res, nil
}

// CompareFlowRecovery runs the connection-level scenario under every
// protocol.
func CompareFlowRecovery(base FlowRecoveryConfig) ([]*FlowRecoveryResult, error) {
	out := make([]*FlowRecoveryResult, 0, 4)
	for _, p := range []Protocol{ProtoDRS, ProtoLinkState, ProtoReactive, ProtoStatic} {
		cfg := base
		cfg.Protocol = p
		res, err := FlowRecovery(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// WriteFlowRecovery renders the connection-level comparison.
func WriteFlowRecovery(w io.Writer, results []*FlowRecoveryResult) error {
	if len(results) == 0 {
		return nil
	}
	c := results[0].Config
	if _, err := fmt.Fprintf(w, "# Connection-level recovery: scenario=%s nodes=%d segment every %v, failure at %v, RTO %v\n",
		c.Scenario, c.Nodes, c.SegmentInterval, c.FailAt, c.Flow.RTO); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-9s %9s %9s %9s %12s %12s %9s\n",
		"protocol", "enqueued", "acked", "retrans", "max-stall", "recv-gap", "survived")
	for _, r := range results {
		fmt.Fprintf(w, "%-9s %9d %9d %9d %12v %12v %9v\n",
			r.Config.Protocol, r.Flow.Enqueued, r.Flow.Acked, r.Flow.Retransmissions,
			r.Flow.MaxAckStall, r.Sink.MaxGap, r.Survived)
	}
	return nil
}
