package experiments

import (
	"fmt"
	"io"
	"time"

	"drsnet/internal/flowsim"
	"drsnet/internal/runtime"
)

// FlowRecoveryConfig describes the connection-level E5 variant: a
// reliable retransmitting stream (flowsim) rides the router under test
// across an injected failure, and the connection's fate is observed.
type FlowRecoveryConfig struct {
	// Protocol names the registered routing protocol under test.
	Protocol string
	Nodes    int
	Scenario Scenario
	// SegmentInterval is the application's send cadence.
	SegmentInterval time.Duration
	// FailAt and Duration bound the run.
	FailAt, Duration time.Duration
	// DRS and reactive tunables (as in RecoveryConfig).
	ProbeInterval     time.Duration
	MissThreshold     int
	AdvertiseInterval time.Duration
	RouteTimeout      time.Duration
	// Flow is the transport configuration (zero value = TCP-like
	// defaults).
	Flow flowsim.FlowConfig
	Seed uint64
}

// DefaultFlowRecoveryConfig mirrors DefaultRecoveryConfig with a
// 200 ms-probing DRS — the regime in which the paper claims
// applications never notice.
func DefaultFlowRecoveryConfig(p string, s Scenario) FlowRecoveryConfig {
	return FlowRecoveryConfig{
		Protocol:          p,
		Nodes:             10,
		Scenario:          s,
		SegmentInterval:   100 * time.Millisecond,
		FailAt:            10 * time.Second,
		Duration:          60 * time.Second,
		ProbeInterval:     200 * time.Millisecond,
		MissThreshold:     2,
		AdvertiseInterval: time.Second,
		RouteTimeout:      6 * time.Second,
		Flow:              flowsim.DefaultFlowConfig(),
		Seed:              1,
	}
}

// FlowRecoveryResult is the connection-level outcome.
type FlowRecoveryResult struct {
	Config FlowRecoveryConfig
	// Sender-side stats.
	Flow flowsim.FlowStats
	// Receiver-side stats.
	Sink flowsim.SinkStats
	// Survived is the connection-level verdict: everything enqueued
	// was acknowledged and the retry budget never ran out.
	Survived bool
}

// FlowRecovery runs one connection-level recovery experiment. The
// cluster is assembled by the unified runtime; the reliable stream
// replaces the runtime's plain datagram flows, so this harness uses
// the Build/Start seam and drives the stream itself.
func FlowRecovery(cfg FlowRecoveryConfig) (*FlowRecoveryResult, error) {
	rc := RecoveryConfig{
		Protocol:          cfg.Protocol,
		Nodes:             cfg.Nodes,
		Scenario:          cfg.Scenario,
		TrafficInterval:   cfg.SegmentInterval,
		FailAt:            cfg.FailAt,
		Duration:          cfg.Duration,
		ProbeInterval:     cfg.ProbeInterval,
		MissThreshold:     cfg.MissThreshold,
		AdvertiseInterval: cfg.AdvertiseInterval,
		RouteTimeout:      cfg.RouteTimeout,
		Seed:              cfg.Seed,
	}
	if err := rc.normalize(); err != nil {
		return nil, err
	}
	spec := rc.spec()
	spec.Flows = nil // the reliable stream below replaces datagram flows
	cluster, err := runtime.Build(spec)
	if err != nil {
		return nil, err
	}
	if err := cluster.Start(); err != nil {
		return nil, err
	}

	sched := cluster.Scheduler()
	clock := cluster.Clock()
	sender, err := flowsim.NewEndpoint(cluster.Router(0), clock)
	if err != nil {
		return nil, err
	}
	receiver, err := flowsim.NewEndpoint(cluster.Router(1), clock)
	if err != nil {
		return nil, err
	}
	flow, err := sender.Dial(1, 1, cfg.Flow)
	if err != nil {
		return nil, err
	}
	sink, err := receiver.Listen(0, 1)
	if err != nil {
		return nil, err
	}

	// The application stops sending early enough for in-flight
	// segments (and their retransmissions) to drain before the
	// horizon; otherwise a healthy tail segment would read as loss.
	drain := 8 * cfg.Flow.RTO
	if drain < 5*time.Second {
		drain = 5 * time.Second
	}
	stopAt := cfg.Duration - drain
	var tick func()
	tick = func() {
		if time.Duration(sched.Now()) >= stopAt {
			return
		}
		// A dead connection stops the application; nothing more to do.
		if err := flow.Send([]byte("segment")); err != nil {
			return
		}
		sched.After(cfg.SegmentInterval, tick)
	}
	// One warm-up interval before the stream starts.
	sched.After(cfg.SegmentInterval, tick)

	cluster.ScheduleFaults()
	cluster.RunUntil(cfg.Duration)
	cluster.StopRouters()

	fs := flow.Stats()
	res := &FlowRecoveryResult{
		Config:   cfg,
		Flow:     fs,
		Sink:     sink.Stats(),
		Survived: !fs.Dead && fs.Acked == fs.Enqueued,
	}
	return res, nil
}

// CompareFlowRecovery runs the connection-level scenario under every
// registered protocol, in the registry's canonical order.
func CompareFlowRecovery(base FlowRecoveryConfig) ([]*FlowRecoveryResult, error) {
	protocols := runtime.Protocols()
	out := make([]*FlowRecoveryResult, 0, len(protocols))
	for _, p := range protocols {
		cfg := base
		cfg.Protocol = p
		res, err := FlowRecovery(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// WriteFlowRecovery renders the connection-level comparison.
func WriteFlowRecovery(w io.Writer, results []*FlowRecoveryResult) error {
	if len(results) == 0 {
		return nil
	}
	c := results[0].Config
	if _, err := fmt.Fprintf(w, "# Connection-level recovery: scenario=%s nodes=%d segment every %v, failure at %v, RTO %v\n",
		c.Scenario, c.Nodes, c.SegmentInterval, c.FailAt, c.Flow.RTO); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-9s %9s %9s %9s %12s %12s %9s\n",
		"protocol", "enqueued", "acked", "retrans", "max-stall", "recv-gap", "survived")
	for _, r := range results {
		fmt.Fprintf(w, "%-9s %9d %9d %9d %12v %12v %9v\n",
			r.Config.Protocol, r.Flow.Enqueued, r.Flow.Acked, r.Flow.Retransmissions,
			r.Flow.MaxAckStall, r.Sink.MaxGap, r.Survived)
	}
	return nil
}
