package experiments

import (
	"strings"
	"testing"
	"time"

	"drsnet/internal/runtime"
)

func TestFlowRecoveryDRSUnawareApplications(t *testing.T) {
	// The paper's headline, measured end to end: with 200 ms probing
	// the DRS repairs fast enough that one retransmission heals the
	// stream and the connection never notices.
	cfg := DefaultFlowRecoveryConfig(runtime.ProtoDRS, ScenarioNIC)
	res, err := FlowRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Survived {
		t.Fatalf("connection did not survive: %+v", res.Flow)
	}
	if res.Flow.Retransmissions > 3 {
		t.Fatalf("%d retransmissions, want ≤ 3", res.Flow.Retransmissions)
	}
	// Max stall ≈ one RTO: the retransmitted segment finds the
	// repaired route.
	if res.Flow.MaxAckStall > cfg.Flow.RTO+500*time.Millisecond {
		t.Fatalf("max stall %v, want ≈ %v", res.Flow.MaxAckStall, cfg.Flow.RTO)
	}
}

func TestFlowRecoveryComparison(t *testing.T) {
	results, err := CompareFlowRecovery(DefaultFlowRecoveryConfig(runtime.ProtoDRS, ScenarioNIC))
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]*FlowRecoveryResult{}
	for _, r := range results {
		by[r.Config.Protocol] = r
	}
	drs, reactive, static := by[runtime.ProtoDRS], by[runtime.ProtoReactive], by[runtime.ProtoStatic]
	if !drs.Survived {
		t.Fatal("DRS connection died")
	}
	if !reactive.Survived {
		// Reactive recovers within its 6 s timeout, inside TCP's
		// retry budget: the connection survives but suffers.
		t.Fatalf("reactive connection died: %+v", reactive.Flow)
	}
	if static.Survived {
		t.Fatal("static connection survived a permanent failure")
	}
	// Within the horizon the static flow is wedged in backoff (the
	// 8-retry schedule stretches past three minutes); its stream has
	// stalled permanently even before the RST.
	if static.Flow.Acked >= static.Flow.Enqueued {
		t.Fatalf("static flow acked everything despite a dead path: %+v", static.Flow)
	}
	// Pain ordering: DRS stalls least, retransmits least.
	if !(drs.Flow.MaxAckStall < reactive.Flow.MaxAckStall) {
		t.Fatalf("stall ordering violated: drs %v vs reactive %v",
			drs.Flow.MaxAckStall, reactive.Flow.MaxAckStall)
	}
	if drs.Flow.Retransmissions > reactive.Flow.Retransmissions {
		t.Fatalf("retransmission ordering violated: drs %d vs reactive %d",
			drs.Flow.Retransmissions, reactive.Flow.Retransmissions)
	}
	var sb strings.Builder
	if err := WriteFlowRecovery(&sb, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "survived") {
		t.Fatalf("table: %q", sb.String())
	}
}

func TestFlowRecoveryCrossRail(t *testing.T) {
	res, err := FlowRecovery(DefaultFlowRecoveryConfig(runtime.ProtoDRS, ScenarioCrossRail))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Survived {
		t.Fatalf("relay repair did not save the connection: %+v", res.Flow)
	}
}

func TestFlowRecoveryValidation(t *testing.T) {
	cfg := DefaultFlowRecoveryConfig(runtime.ProtoDRS, ScenarioNIC)
	cfg.Nodes = 2
	if _, err := FlowRecovery(cfg); err == nil {
		t.Error("2-node config accepted")
	}
	cfg = DefaultFlowRecoveryConfig("bogus", ScenarioNIC)
	if _, err := FlowRecovery(cfg); err == nil {
		t.Error("bogus protocol accepted")
	}
	cfg = DefaultFlowRecoveryConfig(runtime.ProtoDRS, ScenarioNIC)
	cfg.Flow.RTO = 0
	if _, err := FlowRecovery(cfg); err == nil {
		t.Error("zero RTO accepted")
	}
}
