package experiments

import (
	"bytes"
	"testing"
	"time"

	"drsnet/internal/costmodel"
	"drsnet/internal/survival"
)

// renderFigure2 formats a Figure 2 sweep at the given worker count.
func renderFigure2(t *testing.T, workers int) string {
	t.Helper()
	res, err := Figure2Workers([]int{2, 3, 4}, 40, workers)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFigure2WorkersByteIdentical is the satellite determinism
// regression: the formatted Figure 2 table must be byte-identical
// between Workers=1 and Workers=8 (and everything in between).
func TestFigure2WorkersByteIdentical(t *testing.T) {
	survival.ResetCaches()
	ref := renderFigure2(t, 1)
	for _, workers := range []int{2, 4, 8} {
		if got := renderFigure2(t, workers); got != ref {
			t.Fatalf("workers=%d: Figure 2 table diverges from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
				workers, ref, workers, got)
		}
	}
}

// TestThresholdsWorkersByteIdentical covers the threshold solver the
// same way, including the paper's 18/32/45 values.
func TestThresholdsWorkersByteIdentical(t *testing.T) {
	render := func(workers int) string {
		rows, err := ThresholdsWorkers([]int{2, 3, 4}, 0.99, 64, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteThresholds(&buf, rows, 0.99); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); got != ref {
			t.Fatalf("workers=%d: threshold table diverges:\n%s\nvs\n%s", workers, ref, got)
		}
	}
	rows, err := ThresholdsWorkers([]int{2, 3, 4}, 0.99, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{18, 32, 45} {
		if !rows[i].Found || rows[i].N != want {
			t.Fatalf("threshold f=%d: got %+v, want N=%d", rows[i].F, rows[i], want)
		}
	}
}

// TestFigure1WorkersByteIdentical covers the cost-model sweep.
func TestFigure1WorkersByteIdentical(t *testing.T) {
	budgets := []float64{0.01, 0.05, 0.10}
	render := func(workers int) string {
		res, err := Figure1Workers(costmodel.Defaults(), budgets, 2, 50, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); got != ref {
			t.Fatalf("workers=%d: Figure 1 table diverges", workers)
		}
	}
}

// TestSurfaceWorkersByteIdentical covers the availability surface,
// pair and all-pairs variants.
func TestSurfaceWorkersByteIdentical(t *testing.T) {
	for _, allPairs := range []bool{false, true} {
		render := func(workers int) string {
			res, err := Surface(DefaultSurfaceQs(), DefaultSurfaceSizes(), allPairs, workers)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteSurface(&buf, res); err != nil {
				t.Fatal(err)
			}
			return buf.String()
		}
		ref := render(1)
		for _, workers := range []int{2, 8} {
			if got := render(workers); got != ref {
				t.Fatalf("allPairs=%v workers=%d: surface diverges", allPairs, workers)
			}
		}
	}
}

// coverageCampaign runs a small fault-coverage campaign at the given
// worker count and returns the formatted matrix.
func coverageCampaign(t *testing.T, workers int) string {
	t.Helper()
	cfg := DefaultCoverageConfig()
	cfg.Nodes = 4 // 10 components → 55 scenarios: fast but non-trivial
	cfg.Workers = workers
	res, err := FaultCoverage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCoverage(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCoverageWorkersByteIdentical: the full campaign matrix — class
// rows, outage statistics and first-inconsistency line — must be
// byte-identical between serial and 8-way parallel runs.
func TestCoverageWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level campaign is slow in -short mode")
	}
	ref := coverageCampaign(t, 1)
	got := coverageCampaign(t, 8)
	if got != ref {
		t.Fatalf("coverage matrix diverges between workers=1 and workers=8:\n--- serial ---\n%s--- parallel ---\n%s", ref, got)
	}
}

// TestSweepTelemetryRecorded: every parallel generator must leave
// wall-time and worker-count gauges behind.
func TestSweepTelemetryRecorded(t *testing.T) {
	if _, err := Figure2Workers([]int{2}, 20, 3); err != nil {
		t.Fatal(err)
	}
	snap := Metrics.GaugeSnapshot()
	if snap["sweep.figure2.workers"] != 3 {
		t.Fatalf("sweep.figure2.workers = %d, want 3", snap["sweep.figure2.workers"])
	}
	if snap["sweep.figure2.wall_ns"] < 0 {
		t.Fatalf("negative wall time %d", snap["sweep.figure2.wall_ns"])
	}
	if Metrics.Snapshot()["sweep.figure2.runs"] < 1 {
		t.Fatal("sweep.figure2.runs not incremented")
	}
}

// TestCoverageRejectsNegativeWorkers guards the config validation.
func TestCoverageRejectsNegativeWorkers(t *testing.T) {
	cfg := DefaultCoverageConfig()
	cfg.Workers = -1
	cfg.Deadline = 4 * time.Second
	if _, err := FaultCoverage(cfg); err == nil {
		t.Fatal("negative Workers accepted")
	}
}
