package experiments

import (
	"fmt"
	"io"

	"drsnet/internal/asciiplot"
)

// WritePlot renders Figure 1 as an ASCII chart.
func (r *Figure1Result) WritePlot(w io.Writer) error {
	xs := make([]float64, len(r.Nodes))
	for i, n := range r.Nodes {
		xs[i] = float64(n)
	}
	series := make([]asciiplot.Series, 0, len(r.Budgets))
	for b, bud := range r.Budgets {
		series = append(series, asciiplot.Series{
			Name: fmt.Sprintf("%.0f%%", bud*100),
			X:    xs,
			Y:    r.Times[b],
		})
	}
	return asciiplot.Render(w, asciiplot.Config{
		Title:  "Figure 1: link-check round time vs cluster size",
		XLabel: "nodes",
		YLabel: "response time (s)",
	}, series...)
}

// WritePlot renders Figure 2 as an ASCII chart.
func (r *Figure2Result) WritePlot(w io.Writer) error {
	series := make([]asciiplot.Series, 0, len(r.Failures))
	for fi, f := range r.Failures {
		xs := make([]float64, 0, len(r.P[fi]))
		for n := f + 1; n <= r.NMax; n++ {
			xs = append(xs, float64(n))
		}
		series = append(series, asciiplot.Series{
			Name: fmt.Sprintf("f=%d", f),
			X:    xs,
			Y:    r.P[fi],
		})
	}
	return asciiplot.Render(w, asciiplot.Config{
		Title:  "Figure 2: P[Success] vs cluster size (Equation 1)",
		XLabel: "nodes",
		YLabel: "P[Success]",
	}, series...)
}

// WritePlot renders Figure 3 as an ASCII chart (log10 x-axis, as in
// the paper).
func (r *Figure3Result) WritePlot(w io.Writer) error {
	xs := make([]float64, len(r.Config.Iterations))
	for i, it := range r.Config.Iterations {
		xs[i] = float64(it)
	}
	series := make([]asciiplot.Series, 0, len(r.Series))
	for _, s := range r.Series {
		series = append(series, asciiplot.Series{
			Name: fmt.Sprintf("f=%d", s.F),
			X:    xs,
			Y:    s.MAD,
		})
	}
	return asciiplot.Render(w, asciiplot.Config{
		Title:  "Figure 3: mean |simulated - analytic| vs iterations",
		XLabel: "iterations (log scale)",
		YLabel: "mean absolute deviation",
		LogX:   true,
	}, series...)
}
