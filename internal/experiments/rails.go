package experiments

import (
	"fmt"
	"io"

	"drsnet/internal/montecarlo"
	"drsnet/internal/topology"
)

// RailsResult is the redundancy ablation: Monte Carlo P[Success]
// estimates for clusters with varying numbers of independent network
// rails. The paper's design point is two rails; one rail is the
// no-redundancy strawman, and three quantify diminishing returns.
type RailsResult struct {
	Nodes      int
	Rails      []int
	Failures   []int
	Iterations int64
	// P[fi][ri] estimates P[Success] with Failures[fi] failures on
	// Rails[ri] rails. CI[fi][ri] is the 95% half-width.
	P  [][]float64
	CI [][]float64
}

// RailsComparison runs the ablation. Each (f, rails) cell draws f
// failed components uniformly from the n·rails + rails components of
// that topology.
func RailsComparison(n int, rails, failures []int, iterations int64, seed uint64) (*RailsResult, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiments: need ≥ 2 nodes, have %d", n)
	}
	if len(rails) == 0 || len(failures) == 0 {
		return nil, fmt.Errorf("experiments: empty rails or failures list")
	}
	res := &RailsResult{Nodes: n, Rails: rails, Failures: failures, Iterations: iterations}
	for fi, f := range failures {
		res.P = append(res.P, make([]float64, len(rails)))
		res.CI = append(res.CI, make([]float64, len(rails)))
		for ri, r := range rails {
			cluster := topology.Cluster{Nodes: n, Rails: r}
			if f > cluster.Components() {
				res.P[fi][ri] = 0
				continue
			}
			est, err := montecarlo.Estimate(montecarlo.Config{
				Cluster:    cluster,
				Failures:   f,
				Iterations: iterations,
				Seed:       seed ^ uint64(f)<<16 ^ uint64(r),
			})
			if err != nil {
				return nil, err
			}
			res.P[fi][ri] = est.P
			res.CI[fi][ri] = est.CI95
		}
	}
	return res, nil
}

// WriteTable renders the ablation.
func (r *RailsResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Redundancy ablation: P[Success] by rail count (N=%d, %d iterations, Monte Carlo)\n",
		r.Nodes, r.Iterations); err != nil {
		return err
	}
	fmt.Fprintf(w, "%4s", "f")
	for _, rails := range r.Rails {
		fmt.Fprintf(w, " %8d-rail", rails)
	}
	fmt.Fprintln(w)
	for fi, f := range r.Failures {
		fmt.Fprintf(w, "%4d", f)
		for ri := range r.Rails {
			fmt.Fprintf(w, " %13.5f", r.P[fi][ri])
		}
		fmt.Fprintln(w)
	}
	return nil
}
