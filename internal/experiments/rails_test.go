package experiments

import (
	"math"
	"strings"
	"testing"

	"drsnet/internal/survival"
)

// singleRailAnalytic: with one rail, the pair communicates iff none of
// {backplane, A's NIC, B's NIC} is among the f failures (relays cannot
// help when there is only one medium): C(M-3, f) / C(M, f), M = n+1.
func singleRailAnalytic(n, f int) float64 {
	num := survival.Binomial(n+1-3, f)
	den := survival.Binomial(n+1, f)
	nf, _ := num.Float64()
	df, _ := den.Float64()
	if df == 0 {
		return 0
	}
	return nf / df
}

func TestRailsComparison(t *testing.T) {
	res, err := RailsComparison(10, []int{1, 2, 3}, []int{2, 4}, 200000, 9)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range res.Failures {
		// More rails never hurt.
		for ri := 1; ri < len(res.Rails); ri++ {
			if res.P[fi][ri]+res.CI[fi][ri]+res.CI[fi][ri-1] < res.P[fi][ri-1] {
				t.Errorf("f=%d: %d rails (%v) worse than %d rails (%v)",
					f, res.Rails[ri], res.P[fi][ri], res.Rails[ri-1], res.P[fi][ri-1])
			}
		}
		// Rail-2 estimate matches Equation 1.
		want := survival.PSuccessFloat(10, f)
		if diff := math.Abs(res.P[fi][1] - want); diff > 4*res.CI[fi][1]+1e-9 {
			t.Errorf("f=%d: dual-rail estimate %v vs Equation 1 %v", f, res.P[fi][1], want)
		}
		// Rail-1 estimate matches the single-rail closed form.
		want1 := singleRailAnalytic(10, f)
		if diff := math.Abs(res.P[fi][0] - want1); diff > 4*res.CI[fi][0]+1e-9 {
			t.Errorf("f=%d: single-rail estimate %v vs analytic %v", f, res.P[fi][0], want1)
		}
		// The dual rail is dramatically better than a single rail —
		// the paper's core design argument.
		if res.P[fi][1] < res.P[fi][0]+0.1 {
			t.Errorf("f=%d: dual rail %v does not clearly beat single rail %v",
				f, res.P[fi][1], res.P[fi][0])
		}
	}
	var sb strings.Builder
	if err := res.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Redundancy ablation") {
		t.Fatalf("table: %q", sb.String())
	}
}

func TestRailsComparisonValidation(t *testing.T) {
	if _, err := RailsComparison(1, []int{2}, []int{2}, 100, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := RailsComparison(5, nil, []int{2}, 100, 1); err == nil {
		t.Error("empty rails accepted")
	}
	if _, err := RailsComparison(5, []int{2}, nil, 100, 1); err == nil {
		t.Error("empty failures accepted")
	}
}

func TestRailsComparisonOversizedF(t *testing.T) {
	// f larger than the 1-rail universe (n+1 = 4 components): that
	// cell reports 0, while the 2-rail topology (8 components) can
	// still survive 5 failures (e.g. the whole rail-0 side plus both
	// relay NICs).
	res, err := RailsComparison(3, []int{1, 2}, []int{5}, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.P[0][0] != 0 {
		t.Fatalf("oversized-f cell = %v, want 0", res.P[0][0])
	}
	if res.P[0][1] <= 0 {
		t.Fatal("2-rail cell should still estimate")
	}
}
