package experiments

import (
	"fmt"
	"io"
	"time"

	"drsnet/internal/costmodel"
	"drsnet/internal/runtime"
	"drsnet/internal/tcpmodel"
	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

// Scenario names a canned failure to inject.
type Scenario string

// Scenarios for the recovery experiment.
const (
	// ScenarioNIC fails the destination's primary-rail NIC: the
	// classic single-component failure the DRS hides behind a
	// second-NIC failover.
	ScenarioNIC Scenario = "nic"
	// ScenarioBackplane fails the primary back plane, forcing every
	// node onto the second rail at once.
	ScenarioBackplane Scenario = "backplane"
	// ScenarioCrossRail fails the sender's rail-0 NIC and the
	// receiver's rail-1 NIC: no direct path remains and only the DRS
	// relay discovery (or the reactive two-hop route) can reconnect.
	ScenarioCrossRail Scenario = "crossrail"
)

// RecoveryConfig describes one E5 run.
type RecoveryConfig struct {
	// Protocol names the registered routing protocol under test
	// (runtime.Protocols lists the choices).
	Protocol string
	// Nodes is the cluster size (the deployed clusters were 8–12).
	Nodes int
	// Scenario selects the injected failure.
	Scenario Scenario
	// TrafficInterval is the period of the application flow 0 → 1.
	TrafficInterval time.Duration
	// FailAt is when the failure is injected.
	FailAt time.Duration
	// Duration is the total simulated time.
	Duration time.Duration
	// DRS tunables (used when Protocol == runtime.ProtoDRS).
	ProbeInterval time.Duration
	MissThreshold int
	// Reactive tunables (used when Protocol == runtime.ProtoReactive).
	AdvertiseInterval time.Duration
	RouteTimeout      time.Duration
	// Seed drives the simulator's stochastic pieces.
	Seed uint64
	// TraceSink, if non-nil, receives every protocol event of the run
	// (probe results are too chatty to log; link transitions, route
	// changes, discovery and forwarding are recorded).
	TraceSink *trace.Log
}

// DefaultRecoveryConfig returns the standard E5 run: a 10-node
// cluster, failure at t = 10 s, application messages every 100 ms.
func DefaultRecoveryConfig(p string, s Scenario) RecoveryConfig {
	return RecoveryConfig{
		Protocol:          p,
		Nodes:             10,
		Scenario:          s,
		TrafficInterval:   100 * time.Millisecond,
		FailAt:            10 * time.Second,
		Duration:          40 * time.Second,
		ProbeInterval:     time.Second,
		MissThreshold:     2,
		AdvertiseInterval: time.Second,
		RouteTimeout:      6 * time.Second,
		Seed:              1,
	}
}

func (c *RecoveryConfig) normalize() error {
	if c.Nodes < 3 {
		return fmt.Errorf("experiments: recovery needs ≥ 3 nodes (a relay), have %d", c.Nodes)
	}
	if c.TrafficInterval <= 0 || c.FailAt <= 0 || c.Duration <= c.FailAt {
		return fmt.Errorf("experiments: bad timing (interval %v, fail %v, duration %v)",
			c.TrafficInterval, c.FailAt, c.Duration)
	}
	if c.Protocol == "" {
		c.Protocol = runtime.ProtoDRS
	}
	if _, err := runtime.Lookup(c.Protocol); err != nil {
		return err
	}
	switch c.Scenario {
	case ScenarioNIC, ScenarioBackplane, ScenarioCrossRail:
	default:
		return fmt.Errorf("experiments: unknown scenario %q", c.Scenario)
	}
	return nil
}

// components returns the components the scenario fails.
func (c RecoveryConfig) components(cl topology.Cluster) []topology.Component {
	switch c.Scenario {
	case ScenarioNIC:
		return []topology.Component{cl.NIC(1, 0)}
	case ScenarioBackplane:
		return []topology.Component{cl.Backplane(0)}
	case ScenarioCrossRail:
		return []topology.Component{cl.NIC(0, 0), cl.NIC(1, 1)}
	default:
		return nil
	}
}

// spec translates the experiment configuration into a runtime spec:
// one 0 → 1 flow and the scenario's faults at FailAt.
func (c RecoveryConfig) spec() runtime.ClusterSpec {
	spec := runtime.ClusterSpec{
		Nodes:    c.Nodes,
		Protocol: c.Protocol,
		Seed:     c.Seed,
		Duration: c.Duration,
		Tunables: runtime.Tunables{
			ProbeInterval:     c.ProbeInterval,
			MissThreshold:     c.MissThreshold,
			AdvertiseInterval: c.AdvertiseInterval,
			RouteTimeout:      c.RouteTimeout,
		},
		Flows: []runtime.Flow{{
			From:     0,
			To:       1,
			Interval: c.TrafficInterval,
			Payload:  []byte("app"),
		}},
		Trace: c.TraceSink,
	}
	cl := topology.Dual(c.Nodes)
	for _, comp := range c.components(cl) {
		spec.Faults = append(spec.Faults, runtime.Fault{At: c.FailAt, Comp: comp})
	}
	return spec
}

// RecoveryResult reports what the application experienced.
type RecoveryResult struct {
	Config RecoveryConfig
	// Sent and Delivered count application messages on the 0 → 1 flow.
	Sent, Delivered, Lost int
	// Recovered reports whether delivery resumed after the failure.
	Recovered bool
	// Outage is the application-visible gap: the time from the
	// injected failure to the first post-failure delivery.
	Outage time.Duration
	// DetectionLatency is how long the protocol took to notice the
	// failure (DRS link-down event; zero for protocols that never
	// detect anything).
	DetectionLatency time.Duration
	// RepairLatency is how long until a replacement route was
	// installed at the sender (DRS only; zero otherwise).
	RepairLatency time.Duration
	// MaskedFromTCP reports whether the outage fits inside one TCP
	// retransmission (tcpmodel defaults) — the paper's "server
	// applications are unaware that a network failure has occurred".
	MaskedFromTCP bool
	// SurvivedByTCP reports whether a TCP connection (default
	// parameters) would have survived the outage at all.
	SurvivedByTCP bool
}

// Recovery runs one E5 experiment on the unified cluster runtime.
func Recovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	run, err := runtime.Run(cfg.spec())
	if err != nil {
		return nil, err
	}

	flow := run.Flows[0]
	res := &RecoveryResult{Config: cfg, Sent: flow.Sent, Delivered: flow.Delivered}
	res.Lost = res.Sent - res.Delivered

	// Outage: failure time to first subsequent delivery.
	var firstAfter time.Duration = -1
	for _, at := range flow.Deliveries {
		if at >= cfg.FailAt {
			firstAfter = at
			break
		}
	}
	if firstAfter >= 0 {
		res.Recovered = true
		res.Outage = firstAfter - cfg.FailAt
	} else {
		res.Outage = cfg.Duration - cfg.FailAt // censored
	}

	// Protocol-level latencies from the trace (sender's view).
	if cfg.Protocol == runtime.ProtoDRS {
		for _, e := range run.Trace.Events() {
			if e.Kind == trace.KindLinkDown && e.Node == 0 && e.At >= cfg.FailAt {
				res.DetectionLatency = e.At - cfg.FailAt
				break
			}
		}
		for _, rep := range run.Repairs {
			if rep.Node == 0 && rep.Peer == 1 && rep.RepairedAt >= cfg.FailAt {
				res.RepairLatency = rep.RepairedAt - cfg.FailAt
				break
			}
		}
	}

	tcp := tcpmodel.Defaults()
	if mask, err := tcp.MaxMaskableOutage(); err == nil {
		res.MaskedFromTCP = res.Recovered && res.Outage <= mask
	}
	if surv, err := tcp.SurvivableOutage(); err == nil {
		res.SurvivedByTCP = res.Recovered && res.Outage <= surv
	}
	return res, nil
}

// CompareRecovery runs the same scenario under every registered
// protocol, in the registry's canonical (sorted) order. A protocol
// registered by a test or a plugin appears in the table without any
// change here.
func CompareRecovery(base RecoveryConfig) ([]*RecoveryResult, error) {
	protocols := runtime.Protocols()
	out := make([]*RecoveryResult, 0, len(protocols))
	for _, p := range protocols {
		cfg := base
		cfg.Protocol = p
		res, err := Recovery(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// WriteRecovery renders E5 results.
func WriteRecovery(w io.Writer, results []*RecoveryResult) error {
	if len(results) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# Recovery: scenario=%s nodes=%d traffic every %v, failure at %v\n",
		results[0].Config.Scenario, results[0].Config.Nodes,
		results[0].Config.TrafficInterval, results[0].Config.FailAt); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-15s %9s %9s %7s %12s %12s %12s %7s %9s\n",
		"protocol", "sent", "lost", "recov", "outage", "detect", "repair", "masked", "tcp-alive")
	for _, r := range results {
		outage := r.Outage.String()
		if !r.Recovered {
			outage = ">" + outage
		}
		fmt.Fprintf(w, "%-15s %9d %9d %7v %12s %12v %12v %7v %9v\n",
			r.Config.Protocol, r.Sent, r.Lost, r.Recovered, outage,
			r.DetectionLatency, r.RepairLatency, r.MaskedFromTCP, r.SurvivedByTCP)
	}
	return nil
}

// ProbeOverhead measures, empirically, the bandwidth the DRS's
// phase-1 link checks consume on one rail of an idle n-node cluster,
// and returns it alongside the cost model's prediction — the
// simulation-level validation of Figure 1. The DRS probes every peer
// on every rail each round (ordered pairs), so the prediction uses the
// ordered-pairs policy. With switched set, both the simulated fabric
// and the prediction use the switched (per-port) model; the measured
// figure is then aggregate-fabric utilization, which for uniform
// all-pairs probing equals the per-port load.
func ProbeOverhead(n int, probeInterval, duration time.Duration, switched bool) (measured, predicted float64, err error) {
	if n < 2 || probeInterval <= 0 || duration <= 0 {
		return 0, 0, fmt.Errorf("experiments: bad probe-overhead parameters")
	}
	cluster, err := runtime.Build(runtime.ClusterSpec{
		Nodes:    n,
		Protocol: runtime.ProtoDRS,
		Switched: switched,
		Seed:     1,
		Tunables: runtime.Tunables{ProbeInterval: probeInterval},
	})
	if err != nil {
		return 0, 0, err
	}
	if err := cluster.Start(); err != nil {
		return 0, 0, err
	}
	cluster.RunUntil(duration)
	cluster.StopRouters()
	measured = cluster.Network().Utilization(0)

	params := costmodel.Defaults()
	params.OrderedPairs = true
	var bits float64
	if switched {
		// Aggregate fabric load per round: every node's port carries
		// its 2(n-1) ordered-pair frames, and with symmetric traffic
		// the aggregate utilization equals the per-port utilization.
		bits = float64(params.FramesPerRoundPort(n)) * float64(params.FrameBytes) * 8
	} else {
		bits = params.BitsPerRound(n)
	}
	predicted = bits / probeInterval.Seconds() / params.LinkRate
	return measured, predicted, nil
}
