package experiments

import (
	"fmt"
	"io"
	"time"

	"drsnet/internal/core"
	"drsnet/internal/costmodel"
	"drsnet/internal/netsim"
	"drsnet/internal/routing"
	"drsnet/internal/simtime"
	"drsnet/internal/tcpmodel"
	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

// Protocol selects the routing implementation under test in E5.
type Protocol string

// Protocols available to the recovery experiment.
const (
	ProtoDRS       Protocol = "drs"
	ProtoReactive  Protocol = "reactive"
	ProtoLinkState Protocol = "linkstate"
	ProtoStatic    Protocol = "static"
)

// Scenario names a canned failure to inject.
type Scenario string

// Scenarios for the recovery experiment.
const (
	// ScenarioNIC fails the destination's primary-rail NIC: the
	// classic single-component failure the DRS hides behind a
	// second-NIC failover.
	ScenarioNIC Scenario = "nic"
	// ScenarioBackplane fails the primary back plane, forcing every
	// node onto the second rail at once.
	ScenarioBackplane Scenario = "backplane"
	// ScenarioCrossRail fails the sender's rail-0 NIC and the
	// receiver's rail-1 NIC: no direct path remains and only the DRS
	// relay discovery (or the reactive two-hop route) can reconnect.
	ScenarioCrossRail Scenario = "crossrail"
)

// RecoveryConfig describes one E5 run.
type RecoveryConfig struct {
	// Protocol under test.
	Protocol Protocol
	// Nodes is the cluster size (the deployed clusters were 8–12).
	Nodes int
	// Scenario selects the injected failure.
	Scenario Scenario
	// TrafficInterval is the period of the application flow 0 → 1.
	TrafficInterval time.Duration
	// FailAt is when the failure is injected.
	FailAt time.Duration
	// Duration is the total simulated time.
	Duration time.Duration
	// DRS tunables (used when Protocol == ProtoDRS).
	ProbeInterval time.Duration
	MissThreshold int
	// Reactive tunables (used when Protocol == ProtoReactive).
	AdvertiseInterval time.Duration
	RouteTimeout      time.Duration
	// Seed drives the simulator's stochastic pieces.
	Seed uint64
	// TraceSink, if non-nil, receives every protocol event of the run
	// (probe results are too chatty to log; link transitions, route
	// changes, discovery and forwarding are recorded).
	TraceSink *trace.Log
}

// DefaultRecoveryConfig returns the standard E5 run: a 10-node
// cluster, failure at t = 10 s, application messages every 100 ms.
func DefaultRecoveryConfig(p Protocol, s Scenario) RecoveryConfig {
	return RecoveryConfig{
		Protocol:          p,
		Nodes:             10,
		Scenario:          s,
		TrafficInterval:   100 * time.Millisecond,
		FailAt:            10 * time.Second,
		Duration:          40 * time.Second,
		ProbeInterval:     time.Second,
		MissThreshold:     2,
		AdvertiseInterval: time.Second,
		RouteTimeout:      6 * time.Second,
		Seed:              1,
	}
}

func (c *RecoveryConfig) normalize() error {
	if c.Nodes < 3 {
		return fmt.Errorf("experiments: recovery needs ≥ 3 nodes (a relay), have %d", c.Nodes)
	}
	if c.TrafficInterval <= 0 || c.FailAt <= 0 || c.Duration <= c.FailAt {
		return fmt.Errorf("experiments: bad timing (interval %v, fail %v, duration %v)",
			c.TrafficInterval, c.FailAt, c.Duration)
	}
	switch c.Protocol {
	case ProtoDRS, ProtoReactive, ProtoLinkState, ProtoStatic:
	default:
		return fmt.Errorf("experiments: unknown protocol %q", c.Protocol)
	}
	switch c.Scenario {
	case ScenarioNIC, ScenarioBackplane, ScenarioCrossRail:
	default:
		return fmt.Errorf("experiments: unknown scenario %q", c.Scenario)
	}
	return nil
}

// components returns the components the scenario fails.
func (c RecoveryConfig) components(cl topology.Cluster) []topology.Component {
	switch c.Scenario {
	case ScenarioNIC:
		return []topology.Component{cl.NIC(1, 0)}
	case ScenarioBackplane:
		return []topology.Component{cl.Backplane(0)}
	case ScenarioCrossRail:
		return []topology.Component{cl.NIC(0, 0), cl.NIC(1, 1)}
	default:
		return nil
	}
}

// RecoveryResult reports what the application experienced.
type RecoveryResult struct {
	Config RecoveryConfig
	// Sent and Delivered count application messages on the 0 → 1 flow.
	Sent, Delivered, Lost int
	// Recovered reports whether delivery resumed after the failure.
	Recovered bool
	// Outage is the application-visible gap: the time from the
	// injected failure to the first post-failure delivery.
	Outage time.Duration
	// DetectionLatency is how long the protocol took to notice the
	// failure (DRS link-down event; zero for protocols that never
	// detect anything).
	DetectionLatency time.Duration
	// RepairLatency is how long until a replacement route was
	// installed at the sender (DRS only; zero otherwise).
	RepairLatency time.Duration
	// MaskedFromTCP reports whether the outage fits inside one TCP
	// retransmission (tcpmodel defaults) — the paper's "server
	// applications are unaware that a network failure has occurred".
	MaskedFromTCP bool
	// SurvivedByTCP reports whether a TCP connection (default
	// parameters) would have survived the outage at all.
	SurvivedByTCP bool
}

// Recovery runs one E5 experiment.
func Recovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	sched := simtime.NewScheduler()
	cl := topology.Dual(cfg.Nodes)
	net, err := netsim.New(sched, cl, netsim.DefaultParams(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	clock := routing.SimClock{Sched: sched}
	log := cfg.TraceSink
	if log == nil {
		log = trace.NewLog(0)
	}

	routers := make([]routing.Router, cfg.Nodes)
	var drsSender *core.Daemon
	for node := 0; node < cfg.Nodes; node++ {
		tr := routing.NewSimNode(net, node)
		switch cfg.Protocol {
		case ProtoDRS:
			c := core.DefaultConfig()
			c.ProbeInterval = cfg.ProbeInterval
			c.MissThreshold = cfg.MissThreshold
			c.Trace = log
			d, err := core.New(tr, clock, c)
			if err != nil {
				return nil, err
			}
			if node == 0 {
				drsSender = d
			}
			routers[node] = d
		case ProtoReactive:
			rc := routing.DefaultReactiveConfig()
			rc.AdvertiseInterval = cfg.AdvertiseInterval
			rc.RouteTimeout = cfg.RouteTimeout
			rc.Trace = log
			r, err := routing.NewReactive(tr, clock, rc)
			if err != nil {
				return nil, err
			}
			routers[node] = r
		case ProtoLinkState:
			lc := routing.DefaultLinkStateConfig()
			lc.HelloInterval = cfg.AdvertiseInterval
			lc.Trace = log
			l, err := routing.NewLinkState(tr, clock, lc)
			if err != nil {
				return nil, err
			}
			routers[node] = l
		case ProtoStatic:
			s, err := routing.NewStatic(tr, 0)
			if err != nil {
				return nil, err
			}
			routers[node] = s
		}
	}

	// The application flow: node 0 sends a message to node 1 every
	// TrafficInterval; node 1 records delivery times.
	var deliveries []time.Duration
	routers[1].SetDeliverFunc(func(src int, data []byte) {
		if src == 0 {
			deliveries = append(deliveries, sched.Now().Duration())
		}
	})
	for _, r := range routers {
		if err := r.Start(); err != nil {
			return nil, err
		}
	}

	sent := 0
	var tick func()
	tick = func() {
		// Reactive routers legitimately return ErrNoRoute during
		// warm-up and outages; the message is simply lost, exactly as
		// an application datagram would be.
		if err := routers[0].SendData(1, []byte("app")); err == nil {
			sent++
		} else {
			sent++ // the application still tried
		}
		sched.After(cfg.TrafficInterval, tick)
	}
	// Give routing protocols one interval of warm-up before traffic.
	sched.After(cfg.TrafficInterval, tick)

	for _, comp := range cfg.components(cl) {
		comp := comp
		sched.At(simtime.Time(cfg.FailAt), func() { net.Fail(comp) })
	}

	sched.RunUntil(simtime.Time(cfg.Duration))
	for _, r := range routers {
		r.Stop()
	}

	res := &RecoveryResult{Config: cfg, Sent: sent, Delivered: len(deliveries)}
	res.Lost = res.Sent - res.Delivered

	// Outage: failure time to first subsequent delivery.
	var firstAfter time.Duration = -1
	for _, at := range deliveries {
		if at >= cfg.FailAt {
			firstAfter = at
			break
		}
	}
	if firstAfter >= 0 {
		res.Recovered = true
		res.Outage = firstAfter - cfg.FailAt
	} else {
		res.Outage = cfg.Duration - cfg.FailAt // censored
	}

	// Protocol-level latencies from the trace (sender's view).
	if cfg.Protocol == ProtoDRS {
		for _, e := range log.Events() {
			if e.Kind == trace.KindLinkDown && e.Node == 0 && e.At >= cfg.FailAt {
				res.DetectionLatency = e.At - cfg.FailAt
				break
			}
		}
		if drsSender != nil {
			for _, rep := range drsSender.Repairs() {
				if rep.Peer == 1 && rep.RepairedAt >= cfg.FailAt {
					res.RepairLatency = rep.RepairedAt - cfg.FailAt
					break
				}
			}
		}
	}

	tcp := tcpmodel.Defaults()
	if mask, err := tcp.MaxMaskableOutage(); err == nil {
		res.MaskedFromTCP = res.Recovered && res.Outage <= mask
	}
	if surv, err := tcp.SurvivableOutage(); err == nil {
		res.SurvivedByTCP = res.Recovered && res.Outage <= surv
	}
	return res, nil
}

// CompareRecovery runs the same scenario under every protocol.
func CompareRecovery(base RecoveryConfig) ([]*RecoveryResult, error) {
	out := make([]*RecoveryResult, 0, 4)
	for _, p := range []Protocol{ProtoDRS, ProtoLinkState, ProtoReactive, ProtoStatic} {
		cfg := base
		cfg.Protocol = p
		res, err := Recovery(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// WriteRecovery renders E5 results.
func WriteRecovery(w io.Writer, results []*RecoveryResult) error {
	if len(results) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# Recovery: scenario=%s nodes=%d traffic every %v, failure at %v\n",
		results[0].Config.Scenario, results[0].Config.Nodes,
		results[0].Config.TrafficInterval, results[0].Config.FailAt); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-9s %9s %9s %7s %12s %12s %12s %7s %9s\n",
		"protocol", "sent", "lost", "recov", "outage", "detect", "repair", "masked", "tcp-alive")
	for _, r := range results {
		outage := r.Outage.String()
		if !r.Recovered {
			outage = ">" + outage
		}
		fmt.Fprintf(w, "%-9s %9d %9d %7v %12s %12v %12v %7v %9v\n",
			r.Config.Protocol, r.Sent, r.Lost, r.Recovered, outage,
			r.DetectionLatency, r.RepairLatency, r.MaskedFromTCP, r.SurvivedByTCP)
	}
	return nil
}

// ProbeOverhead measures, empirically, the bandwidth the DRS's
// phase-1 link checks consume on one rail of an idle n-node cluster,
// and returns it alongside the cost model's prediction — the
// simulation-level validation of Figure 1. The DRS probes every peer
// on every rail each round (ordered pairs), so the prediction uses the
// ordered-pairs policy. With switched set, both the simulated fabric
// and the prediction use the switched (per-port) model; the measured
// figure is then aggregate-fabric utilization, which for uniform
// all-pairs probing equals the per-port load.
func ProbeOverhead(n int, probeInterval, duration time.Duration, switched bool) (measured, predicted float64, err error) {
	if n < 2 || probeInterval <= 0 || duration <= 0 {
		return 0, 0, fmt.Errorf("experiments: bad probe-overhead parameters")
	}
	sched := simtime.NewScheduler()
	netParams := netsim.DefaultParams()
	netParams.Switched = switched
	net, err := netsim.New(sched, topology.Dual(n), netParams, 1)
	if err != nil {
		return 0, 0, err
	}
	clock := routing.SimClock{Sched: sched}
	daemons := make([]*core.Daemon, n)
	for node := 0; node < n; node++ {
		cfg := core.DefaultConfig()
		cfg.ProbeInterval = probeInterval
		d, err := core.New(routing.NewSimNode(net, node), clock, cfg)
		if err != nil {
			return 0, 0, err
		}
		daemons[node] = d
	}
	for _, d := range daemons {
		if err := d.Start(); err != nil {
			return 0, 0, err
		}
	}
	sched.RunUntil(simtime.Time(duration))
	for _, d := range daemons {
		d.Stop()
	}
	measured = net.Utilization(0)

	params := costmodel.Defaults()
	params.OrderedPairs = true
	var bits float64
	if switched {
		// Aggregate fabric load per round: every node's port carries
		// its 2(n-1) ordered-pair frames, and with symmetric traffic
		// the aggregate utilization equals the per-port utilization.
		bits = float64(params.FramesPerRoundPort(n)) * float64(params.FrameBytes) * 8
	} else {
		bits = params.BitsPerRound(n)
	}
	predicted = bits / probeInterval.Seconds() / params.LinkRate
	return measured, predicted, nil
}
