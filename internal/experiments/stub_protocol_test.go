package experiments

import (
	"testing"

	"drsnet/internal/routing"
	"drsnet/internal/runtime"
)

// TestStubProtocolInCompareRecovery verifies the registry's promise at
// the harness level: registering a new protocol makes it appear in the
// compare-all-protocols table without editing this package (or
// cmd/drsim, which only enumerates the registry).
func TestStubProtocolInCompareRecovery(t *testing.T) {
	const name = "zstub" // sorts last, so built-in rows keep their order
	runtime.Register(name, func(ctx runtime.BuildContext) (routing.Router, error) {
		return routing.NewStatic(ctx.Transport, 0)
	})
	defer runtime.Deregister(name)

	base := DefaultRecoveryConfig(runtime.ProtoDRS, ScenarioNIC)
	base.Nodes = 4
	base.Duration = 15 * base.TrafficInterval
	base.FailAt = 5 * base.TrafficInterval
	results, err := CompareRecovery(base)
	if err != nil {
		t.Fatalf("CompareRecovery: %v", err)
	}
	want := append([]string{}, runtime.Protocols()...)
	if len(results) != len(want) {
		t.Fatalf("%d results for %d registered protocols", len(results), len(want))
	}
	for i, r := range results {
		if r.Config.Protocol != want[i] {
			t.Fatalf("result %d is %q, want %q", i, r.Config.Protocol, want[i])
		}
	}
	last := results[len(results)-1]
	if last.Config.Protocol != name {
		t.Fatalf("stub row missing: last protocol %q", last.Config.Protocol)
	}
	if last.Sent == 0 {
		t.Fatalf("stub protocol run sent no traffic")
	}

	// The stub also runs directly through runtime.Run.
	cfg := base
	cfg.Protocol = name
	res, err := Recovery(cfg)
	if err != nil {
		t.Fatalf("Recovery under stub protocol: %v", err)
	}
	if res.Config.Protocol != name {
		t.Fatalf("Recovery result protocol %q, want %q", res.Config.Protocol, name)
	}
}
