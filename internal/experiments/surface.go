package experiments

import (
	"fmt"
	"io"
	"time"

	"drsnet/internal/availability"
	"drsnet/internal/parallel"
)

// SurfaceResult is the IID availability surface: P[pair connected]
// (or all-pairs connected) for every per-component unavailability q
// and cluster size N in the request, row-major over Qs × Sizes.
type SurfaceResult struct {
	Qs       []float64
	Sizes    []int
	AllPairs bool
	P        [][]float64 // P[qi][ni]
}

// DefaultSurfaceQs are the unavailability levels drsavail prints.
func DefaultSurfaceQs() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1}
}

// DefaultSurfaceSizes are the cluster sizes drsavail prints.
func DefaultSurfaceSizes() []int {
	return []int{4, 8, 12, 16, 32, 64}
}

// Surface computes the availability surface on the parallel sweep
// engine: every (q, N) cell is an independent Equation 1 mixture,
// sharded across workers (0 = GOMAXPROCS) and written into its own
// slot, so the surface is bit-identical for every worker count.
func Surface(qs []float64, sizes []int, allPairs bool, workers int) (*SurfaceResult, error) {
	if len(qs) == 0 || len(sizes) == 0 {
		return nil, fmt.Errorf("experiments: empty availability surface")
	}
	start := time.Now()
	res := &SurfaceResult{Qs: qs, Sizes: sizes, AllPairs: allPairs}
	res.P = make([][]float64, len(qs))
	for i := range res.P {
		res.P[i] = make([]float64, len(sizes))
	}
	cells := len(qs) * len(sizes)
	err := parallel.ForEach(nil, workers, cells, func(i int) error {
		qi, ni := i/len(sizes), i%len(sizes)
		var (
			p   float64
			err error
		)
		if allPairs {
			p, err = availability.AllPairsIID(sizes[ni], qs[qi])
		} else {
			p, err = availability.PSuccessIID(sizes[ni], qs[qi])
		}
		if err != nil {
			return err
		}
		res.P[qi][ni] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	recordSweep("surface", parallel.Workers(workers, cells), time.Since(start))
	return res, nil
}

// WriteSurface renders the surface as the q × N matrix drsavail
// prints.
func WriteSurface(w io.Writer, res *SurfaceResult) error {
	if _, err := fmt.Fprintf(w, "%8s", "q \\ N"); err != nil {
		return err
	}
	for _, n := range res.Sizes {
		fmt.Fprintf(w, " %9d", n)
	}
	fmt.Fprintln(w)
	for qi, q := range res.Qs {
		fmt.Fprintf(w, "%8.3f", q)
		for ni := range res.Sizes {
			fmt.Fprintf(w, " %9.6f", res.P[qi][ni])
		}
		fmt.Fprintln(w)
	}
	return nil
}
