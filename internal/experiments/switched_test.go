package experiments

import (
	"math"
	"testing"
	"time"
)

func TestProbeOverheadSwitchedMatchesCostModel(t *testing.T) {
	measured, predicted, err := ProbeOverhead(10, time.Second, 10*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	if predicted <= 0 || measured <= 0 {
		t.Fatalf("overheads: measured=%v predicted=%v", measured, predicted)
	}
	if rel := math.Abs(measured-predicted) / predicted; rel > 0.15 {
		t.Fatalf("switched: measured %v vs predicted %v (rel err %v)", measured, predicted, rel)
	}
}

func TestSwitchedFabricCheaperThanHub(t *testing.T) {
	hubMeasured, _, err := ProbeOverhead(10, time.Second, 10*time.Second, false)
	if err != nil {
		t.Fatal(err)
	}
	swMeasured, _, err := ProbeOverhead(10, time.Second, 10*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate switched utilization is the hub figure divided by the
	// node count (same frames, N× the capacity).
	if !(swMeasured < hubMeasured) {
		t.Fatalf("switched utilization %v not below hub %v", swMeasured, hubMeasured)
	}
	if ratio := hubMeasured / swMeasured; math.Abs(ratio-10) > 1 {
		t.Fatalf("hub/switch utilization ratio = %v, want ~10", ratio)
	}
}
