package failover

import (
	"fmt"
	"sync"

	"drsnet/internal/metrics"
	"drsnet/internal/routing"
	"drsnet/internal/routing/wire"
)

// Bounce is the header-rewriting static fast-failover variant. All
// nodes share one global, precomputed sequence of destination-rooted
// trees; a packet's wire.FailoverHeader carries the index of the tree
// it is currently following (Attempt). A node holding the packet
// forwards along its own edge in that tree if the edge has carrier,
// and otherwise scans strictly forward through the sequence — so the
// header state is monotone, the packet may legally bounce back to a
// node it has visited (in a new state), and termination needs no TTL:
// every tree is loop-free and the tree index can only grow.
//
// The tree sequence for destination d, rails R, relays w_j =
// (d+1+j) mod N:
//
//	k in [0,R):  direct to d on rail (d+k) mod R
//	then, for each relay j, each approach rail ra, each final rail rb:
//	             everyone sends to w_j on rail ra; w_j sends direct to
//	             d on rail rb
//
// Enumerating full (ra, rb) rail pairs is what lets the packet
// survive mixed-rail failures (sender dead on rail 0, receiver dead
// on rail 1) while keeping every tree static.
type Bounce struct {
	mu       sync.Mutex
	tr       routing.Transport
	sensor   Sensor
	nodes    int
	rails    int
	relays   int
	trees    int
	hopLimit int
	seq      uint32
	deliver  func(src int, data []byte)
	mset     *metrics.Set
	started  bool
	stopped  bool
}

// NewBounce returns the header-rewriting variant.
func NewBounce(tr routing.Transport, sensor Sensor, cfg Config) (*Bounce, error) {
	if tr == nil {
		return nil, fmt.Errorf("failover: nil transport")
	}
	if sensor == nil {
		return nil, fmt.Errorf("failover: nil carrier sensor")
	}
	nodes, rails := tr.Nodes(), tr.Rails()
	relays := relayGroups(nodes)
	trees := rails + relays*rails*rails
	if trees > 256 {
		return nil, fmt.Errorf("failover: %d trees exceed the 8-bit attempt space", trees)
	}
	return &Bounce{
		tr:       tr,
		sensor:   sensor,
		nodes:    nodes,
		rails:    rails,
		relays:   relays,
		trees:    trees,
		hopLimit: cfg.hopLimit(),
		mset:     metrics.NewSet(),
	}, nil
}

// edge returns this node's forwarding edge for dst in tree k.
func (b *Bounce) edge(dst, k int) (rail, via int) {
	if k < b.rails {
		return (dst + k) % b.rails, dst
	}
	i := k - b.rails
	j := i / (b.rails * b.rails)
	ra := (i / b.rails) % b.rails
	rb := i % b.rails
	relay := (dst + 1 + j) % b.nodes
	if relay == dst || relay == b.tr.Node() {
		// Degenerate tree: this node is the relay (or the cluster is
		// too small for one) — the edge is the relay's final leg.
		return rb, dst
	}
	return ra, relay
}

// forward scans trees from attempt for a live edge toward h.Final and
// sends the packet along it, rewriting the header. It reports the
// tree used (-1 when every remaining tree is dead).
func (b *Bounce) forward(h wire.FailoverHeader, data []byte) int {
	dst := int(h.Final)
	for k := int(h.Attempt); k < b.trees; k++ {
		rail, via := b.edge(dst, k)
		if !b.sensor.CarrierUp(via, rail) {
			continue
		}
		h.Attempt = uint8(k)
		h.Hops++
		b.tr.Send(rail, via, wire.Envelope(wire.ProtoFailover, wire.MarshalFailover(h, data)))
		return k
	}
	return -1
}

// Start implements routing.Router.
func (b *Bounce) Start() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.started {
		return fmt.Errorf("failover: bounce router started twice")
	}
	b.started = true
	b.tr.SetReceiver(b.onFrame)
	return nil
}

// Stop implements routing.Router.
func (b *Bounce) Stop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stopped = true
}

// SetDeliverFunc implements routing.Router.
func (b *Bounce) SetDeliverFunc(fn func(src int, data []byte)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deliver = fn
}

// Metrics implements routing.Router.
func (b *Bounce) Metrics() *metrics.Set { return b.mset }

// SendData implements routing.Router.
func (b *Bounce) SendData(dst int, data []byte) error {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return routing.ErrStopped
	}
	if dst < 0 || dst >= b.nodes || dst == b.tr.Node() {
		b.mu.Unlock()
		return fmt.Errorf("failover: bad destination %d", dst)
	}
	b.seq++
	h := wire.FailoverHeader{
		Origin: uint16(b.tr.Node()),
		Final:  uint16(dst),
		Seq:    b.seq,
	}
	used := b.forward(h, data)
	b.mu.Unlock()

	if used < 0 {
		b.mset.Counter(routing.CtrDataNoRoute).Inc()
		return routing.ErrNoRoute
	}
	b.mset.Counter(routing.CtrDataSent).Inc()
	if used > 0 {
		b.mset.Counter(CtrReroutes).Inc()
	}
	return nil
}

func (b *Bounce) onFrame(rail, src int, payload []byte) {
	proto, body, err := wire.SplitEnvelope(payload)
	if err != nil || proto != wire.ProtoFailover {
		return
	}
	h, data, err := wire.UnmarshalFailover(body)
	if err != nil {
		return
	}
	b.mu.Lock()
	stopped := b.stopped
	deliver := b.deliver
	b.mu.Unlock()
	if stopped {
		return
	}

	if int(h.Final) == b.tr.Node() {
		b.mset.Counter(routing.CtrDataDelivered).Inc()
		if deliver != nil {
			deliver(int(h.Origin), data)
		}
		return
	}
	if int(h.Final) >= b.nodes || int(h.Hops) >= b.hopLimit {
		// Corrupt destination, or the odometer budget is spent —
		// defence in depth against damaged headers.
		b.mset.Counter(routing.CtrDataDropped).Inc()
		return
	}
	b.mu.Lock()
	used := b.forward(h, data)
	b.mu.Unlock()
	if used < 0 {
		b.mset.Counter(routing.CtrDataDropped).Inc()
		return
	}
	b.mset.Counter(routing.CtrDataForwarded).Inc()
	if used > int(h.Attempt) {
		b.mset.Counter(CtrReroutes).Inc()
	}
}

var _ routing.Router = (*Bounce)(nil)
