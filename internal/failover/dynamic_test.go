package failover_test

import (
	"testing"
	"time"

	"drsnet/internal/chaos"
	"drsnet/internal/invariant"
	"drsnet/internal/runtime"
	"drsnet/internal/topology"
)

// TestDynamicFlapDegradation is the Dai & Foerster adversarial regime:
// the receiver's preferred NIC flaps with a period comparable to the
// frame flight time (~11.7µs at 100 Mb/s), so the carrier oracle is
// truthful at send time yet stale by arrival — packets launched into
// an up-window die mid-flight when the link drops under them. No
// static variant can mask that (the failure is faster than any local
// reaction), so availability degrades; the invariant harness proves
// the degradation is honest loss, never a loop. The counts are golden:
// the flap schedule, traffic cadence and simulator are all seeded, so
// any drift here is a behaviour change in the family or the chaos
// layer.
func TestDynamicFlapDegradation(t *testing.T) {
	cl := topology.Dual(4)
	spec := func(proto string) runtime.ClusterSpec {
		return runtime.ClusterSpec{
			Nodes:    4,
			Protocol: proto,
			Seed:     1,
			Duration: 100 * time.Millisecond,
			Flows: []runtime.Flow{{
				From: 0, To: 3,
				Interval: 250 * time.Microsecond,
				Stop:     99 * time.Millisecond,
			}},
			Impairments: []chaos.Spec{{
				// Node 3's rail-1 NIC — the rotor's first choice for
				// destination 3 — flapping just faster than a frame's
				// flight, the classic dynamic-failure adversary.
				Comp:       cl.NIC(3, 1),
				Start:      time.Millisecond,
				Stop:       95 * time.Millisecond,
				FlapPeriod: 17 * time.Microsecond,
				FlapDuty:   0.5,
			}},
			// Loop-freedom stays mandatory; delivery cannot (that is
			// the point), so no RequireDelivery.
			Invariant: &invariant.Config{},
		}
	}

	// Golden per-variant outcomes under the identical seeded adversary.
	// The counts are the same for all three variants — deliberately so:
	// the flap strikes after the (correct) routing decision, so extra
	// forwarding machinery buys nothing. 111 of 395 packets lost is the
	// degradation no static scheme escapes.
	for _, tc := range []struct {
		proto       string
		delivered   int
		undelivered int
	}{
		{runtime.ProtoFailoverRotor, 284, 111},
		{runtime.ProtoFailoverArbor, 284, 111},
		{runtime.ProtoFailoverBounce, 284, 111},
	} {
		t.Run(tc.proto, func(t *testing.T) {
			run, err := runtime.Run(spec(tc.proto))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			rep := run.Invariant
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
			if rep.Loops != 0 {
				t.Fatalf("dynamic failures induced a loop: %+v", rep)
			}
			if rep.Undelivered == 0 {
				t.Fatal("adversarial flapping caused no loss — the regime is not biting")
			}
			if rep.Delivered != tc.delivered || rep.Undelivered != tc.undelivered {
				t.Fatalf("golden drift: delivered %d undelivered %d, want %d/%d",
					rep.Delivered, rep.Undelivered, tc.delivered, tc.undelivered)
			}
		})
	}
}
