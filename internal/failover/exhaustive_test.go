package failover_test

import (
	"fmt"
	"testing"
	"time"

	"drsnet/internal/invariant"
	"drsnet/internal/runtime"
	"drsnet/internal/topology"
)

// allPairsSpec is one exhaustive-sweep cell: every ordered (src, dst)
// pair sends exactly one datagram at t=10ms into a cluster whose fault
// script ran at t=0, under the strict delivery invariant. The flow
// stops after one shot and the horizon leaves ample landing time.
func allPairsSpec(n int, proto string, faults []runtime.Fault) runtime.ClusterSpec {
	spec := runtime.ClusterSpec{
		Nodes:     n,
		Protocol:  proto,
		Seed:      1,
		Duration:  500 * time.Millisecond,
		Faults:    faults,
		Invariant: &invariant.Config{RequireDelivery: true},
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			spec.Flows = append(spec.Flows, runtime.Flow{
				From:     src,
				To:       dst,
				Interval: time.Second,
				Start:    10 * time.Millisecond,
				Stop:     20 * time.Millisecond,
			})
		}
	}
	return spec
}

// TestExhaustiveSingleFailures is the property sweep the tentpole
// promises: for every single component failure (each NIC, each
// backplane) on 4-, 8- and 12-host dual-rail clusters, every variant
// of the static family delivers every (src, dst) pair loop-free. A
// single failure never disconnects the dual-rail topology, so strict
// delivery must hold everywhere — no excuses accepted.
func TestExhaustiveSingleFailures(t *testing.T) {
	sizes := []int{4, 8, 12}
	if testing.Short() {
		sizes = []int{4, 8}
	}
	for _, n := range sizes {
		cl := topology.Dual(n)
		for _, proto := range []string{
			runtime.ProtoFailoverRotor, runtime.ProtoFailoverArbor, runtime.ProtoFailoverBounce,
		} {
			t.Run(fmt.Sprintf("%s/n=%d", proto, n), func(t *testing.T) {
				for comp := topology.Component(0); int(comp) < cl.Components(); comp++ {
					run, err := runtime.Run(allPairsSpec(n, proto, []runtime.Fault{{Comp: comp}}))
					if err != nil {
						t.Fatalf("comp %v: Run: %v", comp, err)
					}
					rep := run.Invariant
					if err := rep.Err(); err != nil {
						t.Fatalf("comp %v: %v", comp, err)
					}
					if want := n * (n - 1); rep.Packets != want {
						t.Fatalf("comp %v: tracked %d packets, want %d (a send refused a route)",
							comp, rep.Packets, want)
					}
					if rep.Delivered != rep.Packets || rep.Undelivered != 0 {
						t.Fatalf("comp %v: delivered %d of %d (undelivered %d) — single failure must be masked",
							comp, rep.Delivered, rep.Packets, rep.Undelivered)
					}
					if rep.Loops != 0 {
						t.Fatalf("comp %v: %d loops", comp, rep.Loops)
					}
				}
			})
		}
	}
}

// TestDoubleFailureProvablyDisconnects: killing both of a host's NICs
// severs it, and the three variants part ways — the definitive
// head-to-head of the family's design space. The rotor's direct-only
// table senses the dead receiver on every rail and refuses at the
// source (nothing launched, nothing lost in flight). The stateless
// arborescence cannot tell a dead destination from a dead direct
// link: it hands the packet to a relay, the relay can only hand it to
// another relay, and the invariant checker convicts the resulting
// relay ping-pong — the loop that header rewriting exists to prevent.
// The bounce variant carries its tree index in the header, so relays
// resume the scan monotonically, exhaust the family and drop: revisits
// but provably zero loops, with the loss excused by the reachability
// oracle.
func TestDoubleFailureProvablyDisconnects(t *testing.T) {
	const n, victim = 6, 3
	cl := topology.Dual(n)
	faults := []runtime.Fault{
		{Comp: cl.NIC(victim, 0)},
		{Comp: cl.NIC(victim, 1)},
	}
	run := func(t *testing.T, proto string) *invariant.Report {
		t.Helper()
		res, err := runtime.Run(allPairsSpec(n, proto, faults))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Invariant
	}
	// Bystander pairs avoid the victim entirely: all must deliver.
	bystanders := (n - 1) * (n - 2)

	t.Run(runtime.ProtoFailoverRotor, func(t *testing.T) {
		rep := run(t, runtime.ProtoFailoverRotor)
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		// Sends toward the victim are refused at the source (the
		// carrier oracle sees its dead receivers), so only bystander
		// packets are ever launched.
		if rep.Packets != bystanders || rep.Delivered != bystanders {
			t.Fatalf("tracked %d delivered %d, want %d bystanders only", rep.Packets, rep.Delivered, bystanders)
		}
	})

	t.Run(runtime.ProtoFailoverArbor, func(t *testing.T) {
		rep := run(t, runtime.ProtoFailoverArbor)
		if rep.Loops == 0 || rep.Err() == nil {
			t.Fatalf("stateless arborescence did not loop under destination death: %+v", rep)
		}
		if rep.Delivered != bystanders {
			t.Fatalf("delivered %d, want %d bystanders despite the looping inbound traffic",
				rep.Delivered, bystanders)
		}
	})

	t.Run(runtime.ProtoFailoverBounce, func(t *testing.T) {
		rep := run(t, runtime.ProtoFailoverBounce)
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		if rep.Loops != 0 {
			t.Fatalf("header-rewriting variant looped: %+v", rep)
		}
		// Inbound packets are launched (the first relay edge is live),
		// bounce until the tree family is exhausted, and their loss is
		// excused by provable disconnection.
		if rep.Packets != bystanders+(n-1) || rep.Delivered != bystanders {
			t.Fatalf("tracked %d delivered %d, want %d launched and %d delivered",
				rep.Packets, rep.Delivered, bystanders+(n-1), bystanders)
		}
		if rep.Undelivered != n-1 || rep.UndeliveredExcused != n-1 {
			t.Fatalf("undelivered %d excused %d, want all %d inbound excused",
				rep.Undelivered, rep.UndeliveredExcused, n-1)
		}
	})
}

// TestMixedRailPairRequiresRelay pins the variants' separation: with
// the sender dark on rail 0 and the receiver dark on rail 1, no direct
// rail connects them. The rotor (direct hops only) refuses the send;
// the arborescence and header-rewriting variants relay in two hops.
func TestMixedRailPairRequiresRelay(t *testing.T) {
	const n = 6
	cl := topology.Dual(n)
	faults := []runtime.Fault{
		{Comp: cl.NIC(1, 0)},
		{Comp: cl.NIC(4, 1)},
	}
	spec := func(proto string) runtime.ClusterSpec {
		s := allPairsSpec(n, proto, faults)
		// Keep only the severed pair plus one bystander control.
		s.Flows = []runtime.Flow{
			{From: 1, To: 4, Interval: time.Second, Start: 10 * time.Millisecond, Stop: 20 * time.Millisecond},
			{From: 4, To: 1, Interval: time.Second, Start: 10 * time.Millisecond, Stop: 20 * time.Millisecond},
			{From: 0, To: 5, Interval: time.Second, Start: 10 * time.Millisecond, Stop: 20 * time.Millisecond},
		}
		return s
	}

	for _, proto := range []string{runtime.ProtoFailoverArbor, runtime.ProtoFailoverBounce} {
		t.Run(proto, func(t *testing.T) {
			run, err := runtime.Run(spec(proto))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			rep := run.Invariant
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
			if rep.Packets != 3 || rep.Delivered != 3 {
				t.Fatalf("delivered %d of %d, want all three via relay", rep.Delivered, rep.Packets)
			}
			if rep.MaxHopsSeen != 2 {
				t.Fatalf("longest path %d hops, want 2 (one relay)", rep.MaxHopsSeen)
			}
		})
	}

	t.Run(runtime.ProtoFailoverRotor, func(t *testing.T) {
		run, err := runtime.Run(spec(runtime.ProtoFailoverRotor))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		// The rotor has no relay to offer: the severed pair's sends are
		// refused outright (no frame launched, hence only the control
		// packet is tracked) while the bystander still delivers.
		rep := run.Invariant
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		if rep.Packets != 1 || rep.Delivered != 1 {
			t.Fatalf("tracked %d delivered %d, want only the bystander packet", rep.Packets, rep.Delivered)
		}
		if run.Flows[0].Delivered != 0 || run.Flows[1].Delivered != 0 {
			t.Fatalf("rotor delivered across a mixed-rail cut: %+v", run.Flows[:2])
		}
	})
}
