// Package failover implements a family of static fast-failover
// routing variants: forwarding is entirely precomputed and reacts to
// failures using only locally sensible information — physical-layer
// carrier on the node's own ports — with no control plane, no probes,
// and no convergence delay. This is the "static resilience" point in
// the design space the DRS paper's dynamic protocol is evaluated
// against: failover is instantaneous, but only failures the carrier
// sensor can see are survivable (a fail-stopped daemon keeps its link
// lights on and blackholes traffic forever).
//
// Three variants, in increasing sophistication:
//
//   - Rotor (BuildRotor): per destination, rotate through the direct
//     rails in a fixed circular order and use the first with carrier.
//     No forwarding at all — if every direct rail is dead the packet
//     is lost, even when a relay path exists.
//   - Arborescence (BuildArbor): per destination, a precomputed
//     candidate sequence of destination-rooted spanning trees — the
//     direct rails first, then relay hops. Relays forward using their
//     own table, so mixed-rail failures (sender dead on one rail,
//     receiver dead on the other) are survivable.
//   - Bounce (NewBounce): the header-rewriting variant. The packet
//     carries its failover state — the index of the tree it is
//     following — in a wire.FailoverHeader, rewritten strictly upward
//     at every reroute. Loop-freedom needs no TTL: a packet can never
//     revisit a node in the same header state, because the state only
//     grows and each tree is loop-free.
//
// The rotor and arborescence variants share one table-driven Router;
// New accepts an arbitrary Table without semantic validation, which
// lets tests run deliberately broken tables under the invariant
// checker to prove the checker catches real loops.
package failover

import (
	"fmt"
	"sync"

	"drsnet/internal/dataplane"
	"drsnet/internal/metrics"
	"drsnet/internal/routing"
	"drsnet/internal/routing/wire"
)

// Sensor is the physical-layer carrier oracle: whether this node's
// port on rail currently has end-to-end carrier to peer (loss-of-
// signal / link-layer keepalive, as hardware fast-failover groups
// use). It deliberately cannot see whether peer's daemon is alive.
type Sensor interface {
	CarrierUp(peer, rail int) bool
}

// CtrReroutes counts datagrams that left on a non-primary candidate —
// the static family's analogue of a repair.
const CtrReroutes = "failover.reroutes"

// Hop is one precomputed forwarding alternative: transmit on Rail to
// Via (Via == final destination means a direct hop).
type Hop struct {
	Rail int
	Via  int
}

// Table is one node's complete static forwarding state: for every
// destination, an ordered candidate list tried first-carrier-wins.
type Table struct {
	Node int
	// Next[dst] is the candidate sequence for dst (empty for dst ==
	// Node).
	Next [][]Hop
}

// relayGroups returns how many relay candidates the precomputed
// tables route through: two — (dst+1) and (dst+2) mod nodes — so that
// even when one candidate coincides with the sender (degenerating to
// a direct hop) a genuine relay remains. Zero when the cluster has no
// third node to relay through.
func relayGroups(nodes int) int {
	if nodes < 3 {
		return 0
	}
	return 2
}

// BuildRotor precomputes the rotor table for node: direct rails only,
// in circular order starting at dst mod rails so destinations spread
// load across rails.
func BuildRotor(node, nodes, rails int) Table {
	t := Table{Node: node, Next: make([][]Hop, nodes)}
	for dst := 0; dst < nodes; dst++ {
		if dst == node {
			continue
		}
		for k := 0; k < rails; k++ {
			t.Next[dst] = append(t.Next[dst], Hop{Rail: (dst + k) % rails, Via: dst})
		}
	}
	return t
}

// BuildArbor precomputes the arborescence table for node: the rotor's
// direct rails first, then relay alternatives through up to two
// deterministic relays ((dst+1) mod nodes, (dst+2) mod nodes) on each
// rail. When this node is itself the designated relay the alternative
// degenerates to a direct hop on that rail.
func BuildArbor(node, nodes, rails int) Table {
	t := BuildRotor(node, nodes, rails)
	for dst := 0; dst < nodes; dst++ {
		if dst == node {
			continue
		}
		for j := 0; j < relayGroups(nodes); j++ {
			relay := (dst + 1 + j) % nodes
			for r := 0; r < rails; r++ {
				hop := Hop{Rail: r, Via: relay}
				if relay == dst || relay == node {
					hop.Via = dst
				}
				t.Next[dst] = append(t.Next[dst], hop)
			}
		}
	}
	return t
}

// Validate bounds-checks a table against the cluster shape. It does
// NOT verify loop-freedom — that is the invariant harness's job, and
// tests rely on being able to run semantically broken tables.
func Validate(t Table, nodes, rails int) error {
	if t.Node < 0 || t.Node >= nodes {
		return fmt.Errorf("failover: table node %d out of range [0,%d)", t.Node, nodes)
	}
	if len(t.Next) != nodes {
		return fmt.Errorf("failover: table covers %d destinations, cluster has %d", len(t.Next), nodes)
	}
	for dst, hops := range t.Next {
		if dst == t.Node && len(hops) != 0 {
			return fmt.Errorf("failover: table routes to self")
		}
		for _, h := range hops {
			if h.Rail < 0 || h.Rail >= rails {
				return fmt.Errorf("failover: dst %d: rail %d out of range [0,%d)", dst, h.Rail, rails)
			}
			if h.Via < 0 || h.Via >= nodes || h.Via == t.Node {
				return fmt.Errorf("failover: dst %d: bad via %d", dst, h.Via)
			}
		}
	}
	return nil
}

// Config tunes a failover router.
type Config struct {
	// TTL stamps originated ProtoData frames of the table-driven
	// variants (0 = 6). It is defence in depth, not the loop-freedom
	// mechanism.
	TTL int
	// HopLimit is the bounce variant's hop odometer budget (0 = 8).
	HopLimit int
}

func (c Config) ttl() int {
	if c.TTL <= 0 {
		return 6
	}
	return c.TTL
}

func (c Config) hopLimit() int {
	if c.HopLimit <= 0 {
		return 8
	}
	return c.HopLimit
}

// Router is the shared table-driven data plane of the rotor and
// arborescence variants: stateless first-carrier-wins selection over
// a precomputed candidate list, ordinary ProtoData frames.
type Router struct {
	mu      sync.Mutex
	tr      routing.Transport
	sensor  Sensor
	table   Table
	plane   *dataplane.Plane
	deliver func(src int, data []byte)
	mset    *metrics.Set
	started bool
	stopped bool
}

// New returns a router running an arbitrary table. The table is
// bounds-checked only; callers own its semantics.
func New(tr routing.Transport, sensor Sensor, table Table, cfg Config) (*Router, error) {
	if tr == nil {
		return nil, fmt.Errorf("failover: nil transport")
	}
	if sensor == nil {
		return nil, fmt.Errorf("failover: nil carrier sensor")
	}
	if table.Node != tr.Node() {
		return nil, fmt.Errorf("failover: table for node %d on node %d", table.Node, tr.Node())
	}
	if err := Validate(table, tr.Nodes(), tr.Rails()); err != nil {
		return nil, err
	}
	mset := metrics.NewSet()
	return &Router{
		tr:     tr,
		sensor: sensor,
		table:  table,
		plane:  dataplane.New(tr.Node(), tr.Nodes(), cfg.ttl(), 0, nil),
		mset:   mset,
	}, nil
}

// NewRotor returns the circular direct-rail variant.
func NewRotor(tr routing.Transport, sensor Sensor, cfg Config) (*Router, error) {
	if tr == nil {
		return nil, fmt.Errorf("failover: nil transport")
	}
	return New(tr, sensor, BuildRotor(tr.Node(), tr.Nodes(), tr.Rails()), cfg)
}

// NewArbor returns the arborescence variant.
func NewArbor(tr routing.Transport, sensor Sensor, cfg Config) (*Router, error) {
	if tr == nil {
		return nil, fmt.Errorf("failover: nil transport")
	}
	return New(tr, sensor, BuildArbor(tr.Node(), tr.Nodes(), tr.Rails()), cfg)
}

// Start implements routing.Router.
func (r *Router) Start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return fmt.Errorf("failover: router started twice")
	}
	r.started = true
	r.tr.SetReceiver(r.onFrame)
	return nil
}

// Stop implements routing.Router.
func (r *Router) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopped = true
}

// SetDeliverFunc implements routing.Router.
func (r *Router) SetDeliverFunc(fn func(src int, data []byte)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deliver = fn
}

// Metrics implements routing.Router.
func (r *Router) Metrics() *metrics.Set { return r.mset }

// pick returns the first candidate for dst with live carrier, and its
// index (-1 when none).
func (r *Router) pick(dst int) (Hop, int) {
	for i, h := range r.table.Next[dst] {
		if r.sensor.CarrierUp(h.Via, h.Rail) {
			return h, i
		}
	}
	return Hop{}, -1
}

// SendData implements routing.Router.
func (r *Router) SendData(dst int, data []byte) error {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return routing.ErrStopped
	}
	if dst < 0 || dst >= r.tr.Nodes() || dst == r.tr.Node() {
		r.mu.Unlock()
		return fmt.Errorf("failover: bad destination %d", dst)
	}
	frame := r.plane.NewFrame(dst, data)
	hop, idx := r.pick(dst)
	r.mu.Unlock()

	if idx < 0 {
		r.mset.Counter(routing.CtrDataNoRoute).Inc()
		return routing.ErrNoRoute
	}
	r.mset.Counter(routing.CtrDataSent).Inc()
	if idx > 0 {
		r.mset.Counter(CtrReroutes).Inc()
	}
	return r.tr.Send(hop.Rail, hop.Via, frame)
}

func (r *Router) onFrame(rail, src int, payload []byte) {
	proto, body, err := wire.SplitEnvelope(payload)
	if err != nil || proto != wire.ProtoData {
		return
	}
	r.mu.Lock()
	h, data, action := r.plane.Classify(body)
	stopped := r.stopped
	deliver := r.deliver
	var hop Hop
	idx := -1
	if action == dataplane.Forward {
		hop, idx = r.pick(int(h.Final))
	}
	r.mu.Unlock()
	if stopped {
		return
	}
	switch action {
	case dataplane.Deliver:
		r.mset.Counter(routing.CtrDataDelivered).Inc()
		if deliver != nil {
			deliver(int(h.Origin), data)
		}
	case dataplane.Forward:
		if idx < 0 {
			r.mset.Counter(routing.CtrDataDropped).Inc()
			return
		}
		r.mset.Counter(routing.CtrDataForwarded).Inc()
		if idx > 0 {
			r.mset.Counter(CtrReroutes).Inc()
		}
		r.tr.Send(hop.Rail, hop.Via, dataplane.Frame(h, data))
	case dataplane.Drop:
		r.mset.Counter(routing.CtrDataDropped).Inc()
	}
}

var _ routing.Router = (*Router)(nil)
