package failover_test

import (
	"errors"
	"testing"

	"drsnet/internal/failover"
	"drsnet/internal/invariant"
	"drsnet/internal/netsim"
	"drsnet/internal/routing"
	"drsnet/internal/routing/wire"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

// carrier adapts one node's view of the network to the Sensor oracle,
// exactly as the runtime does.
type carrier struct {
	net  *netsim.Network
	node int
}

func (c carrier) CarrierUp(peer, rail int) bool { return c.net.CarrierUp(c.node, peer, rail) }

type recv struct {
	src  int
	data string
}

// cluster is an n-node simulated cluster of one failover variant,
// with the invariant checker installed as the network tap.
type cluster struct {
	t       *testing.T
	sched   *simtime.Scheduler
	net     *netsim.Network
	routers []routing.Router
	checker *invariant.Checker
	got     [][]recv
}

func newCluster(t *testing.T, n int, build func(tr routing.Transport, s failover.Sensor) (routing.Router, error)) *cluster {
	t.Helper()
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(n), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{t: t, sched: sched, net: net, got: make([][]recv, n)}
	c.checker = invariant.New(invariant.Config{RequireDelivery: true, Reachable: net.Reachable})
	net.SetTap(c.checker)
	for node := 0; node < n; node++ {
		node := node
		r, err := build(routing.NewSimNode(net, node), carrier{net, node})
		if err != nil {
			t.Fatal(err)
		}
		r.SetDeliverFunc(func(src int, data []byte) {
			c.got[node] = append(c.got[node], recv{src, string(data)})
		})
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		c.routers = append(c.routers, r)
	}
	return c
}

func (c *cluster) run() { c.sched.Run(0) }

func (c *cluster) finalize() *invariant.Report {
	return c.checker.Finalize(c.sched.Now().Duration())
}

func rotor(tr routing.Transport, s failover.Sensor) (routing.Router, error) {
	return failover.NewRotor(tr, s, failover.Config{})
}

func arbor(tr routing.Transport, s failover.Sensor) (routing.Router, error) {
	return failover.NewArbor(tr, s, failover.Config{})
}

func bounce(tr routing.Transport, s failover.Sensor) (routing.Router, error) {
	return failover.NewBounce(tr, s, failover.Config{})
}

// TestHealthyDelivery: on an unimpaired cluster every variant
// delivers directly, invariant-clean.
func TestHealthyDelivery(t *testing.T) {
	for name, build := range map[string]func(routing.Transport, failover.Sensor) (routing.Router, error){
		"rotor": rotor, "arbor": arbor, "bounce": bounce,
	} {
		t.Run(name, func(t *testing.T) {
			c := newCluster(t, 3, build)
			if err := c.routers[0].SendData(2, []byte("hi")); err != nil {
				t.Fatal(err)
			}
			c.run()
			if len(c.got[2]) != 1 || c.got[2][0] != (recv{0, "hi"}) {
				t.Fatalf("delivered = %v", c.got[2])
			}
			rep := c.finalize()
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
			if rep.MaxHopsSeen != 1 {
				t.Fatalf("direct delivery took %d hops", rep.MaxHopsSeen)
			}
		})
	}
}

// TestRotorFailsOverAcrossRails: with the destination's primary-rail
// NIC dead, the rotor's carrier sensor steers the very first packet
// onto the other rail — zero convergence delay.
func TestRotorFailsOverAcrossRails(t *testing.T) {
	c := newCluster(t, 3, rotor)
	c.net.Fail(c.net.Cluster().NIC(2, 0))
	if err := c.routers[0].SendData(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.run()
	if len(c.got[2]) != 1 {
		t.Fatalf("delivered = %v", c.got[2])
	}
	if err := c.finalize().Err(); err != nil {
		t.Fatal(err)
	}
	if got := c.routers[0].Metrics().Counter(failover.CtrReroutes).Value(); got != 1 {
		t.Fatalf("reroutes = %d, want 1", got)
	}
}

// TestMixedRailFailure is the case separating the variants: sender
// dead on rail 0, receiver dead on rail 1. No direct rail exists, but
// any relay bridges. The rotor (direct-only) must refuse with
// ErrNoRoute; arborescence and bounce must deliver through a relay.
func TestMixedRailFailure(t *testing.T) {
	wound := func(c *cluster) {
		c.net.Fail(c.net.Cluster().NIC(0, 0))
		c.net.Fail(c.net.Cluster().NIC(2, 1))
	}

	t.Run("rotor-refuses", func(t *testing.T) {
		c := newCluster(t, 3, rotor)
		wound(c)
		if err := c.routers[0].SendData(2, []byte("x")); !errors.Is(err, routing.ErrNoRoute) {
			t.Fatalf("err = %v, want ErrNoRoute", err)
		}
		c.run()
		// The rotor refused at the source, so nothing was even sent:
		// clean, just not useful.
		if err := c.finalize().Err(); err != nil {
			t.Fatal(err)
		}
	})

	for name, build := range map[string]func(routing.Transport, failover.Sensor) (routing.Router, error){
		"arbor": arbor, "bounce": bounce,
	} {
		t.Run(name+"-relays", func(t *testing.T) {
			c := newCluster(t, 3, build)
			wound(c)
			if err := c.routers[0].SendData(2, []byte("x")); err != nil {
				t.Fatal(err)
			}
			c.run()
			if len(c.got[2]) != 1 {
				t.Fatalf("delivered = %v", c.got[2])
			}
			rep := c.finalize()
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
			if rep.MaxHopsSeen != 2 {
				t.Fatalf("relay delivery took %d hops", rep.MaxHopsSeen)
			}
		})
	}
}

// TestBounceRevisitsMonotonically: wound the cluster so the bounce
// packet reaches a relay whose onward legs are all dead, forcing it
// back through already-visited territory at a higher attempt. The
// invariant checker must see revisits but zero same-state loops, and
// the packet must terminate (dropped, not circulating) despite having
// no TTL.
func TestBounceRevisitsMonotonically(t *testing.T) {
	c := newCluster(t, 4, bounce)
	cl := c.net.Cluster()
	// Sender 1 -> destination 3. Relay candidates for 3 are node 0 and
	// node 1 (the sender itself, degenerate). Kill: sender's rail-0
	// transmit, destination's rail-1 receive, and relay 0's rail-0
	// transmit. Now 1->3 has no direct rail, relay 0 is reachable but
	// cannot reach 3, and the only remaining relay is the sender — a
	// dead end. Node 2 could bridge, but it is not a relay candidate:
	// static resilience is imperfect (Dai & Foerster).
	c.net.FailDir(cl.NIC(1, 0), netsim.DirTx)
	c.net.FailDir(cl.NIC(3, 1), netsim.DirRx)
	c.net.FailDir(cl.NIC(0, 0), netsim.DirTx)

	if err := c.routers[1].SendData(3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.run()
	if len(c.got[3]) != 0 {
		t.Fatalf("delivered = %v, want drop", c.got[3])
	}
	rep := c.finalize()
	if rep.Loops != 0 {
		t.Fatalf("loops = %d, want 0", rep.Loops)
	}
	if rep.Revisits == 0 {
		t.Fatal("expected a header-rewriting revisit")
	}
	// Ground truth says 1 and 3 are still connected (via node 2), so
	// this loss is a genuine — and expected — resilience violation.
	if rep.Undelivered != 1 || rep.UndeliveredExcused != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Err() == nil {
		t.Fatal("undelivered-while-connected must violate RequireDelivery")
	}
}

// TestCrashedDaemonBlackholes: a fail-stopped daemon keeps its link
// lights on, so no static variant can detect it — the frame is sent
// into the void. With the crashed node being the only possible relay,
// ground truth agrees the endpoints are disconnected, so the loss is
// excused: the protocol could not have done better.
func TestCrashedDaemonBlackholes(t *testing.T) {
	c := newCluster(t, 3, arbor)
	cl := c.net.Cluster()
	// Force the relay path (as in TestMixedRailFailure), then crash the
	// relay daemon. Carrier stays up, so the arbor still picks it.
	c.net.Fail(cl.NIC(0, 0))
	c.net.Fail(cl.NIC(2, 1))
	c.net.FailNode(1)

	err := c.routers[0].SendData(2, []byte("x"))
	if err != nil {
		t.Fatalf("carrier-blind send should succeed, got %v", err)
	}
	c.run()
	if len(c.got[2]) != 0 {
		t.Fatalf("delivered = %v, want blackhole", c.got[2])
	}
	rep := c.finalize()
	// 0 and 2 are genuinely disconnected with the only relay dead, so
	// the checker excuses the loss — the protocol could not have done
	// better, which is exactly the point of the excuse clause.
	if rep.Undelivered != 1 || rep.UndeliveredExcused != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestBrokenTableLoops is the harness's negative control: a
// deliberately mis-built table — node 0 routes to 2 via 1, node 1
// routes to 2 via 0 — must produce a real forwarding loop, and the
// invariant checker must catch it. This proves the checker detects
// loops the TTL would otherwise silently absorb.
func TestBrokenTableLoops(t *testing.T) {
	broken := func(node, via int) failover.Table {
		t := failover.BuildRotor(node, 3, 2)
		t.Next[2] = []failover.Hop{{Rail: 0, Via: via}}
		return t
	}
	build := func(tr routing.Transport, s failover.Sensor) (routing.Router, error) {
		tables := map[int]failover.Table{
			0: broken(0, 1),
			1: broken(1, 0),
			2: failover.BuildRotor(2, 3, 2),
		}
		return failover.New(tr, s, tables[tr.Node()], failover.Config{TTL: 6})
	}
	c := newCluster(t, 3, build)
	if err := c.routers[0].SendData(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.run()
	rep := c.finalize()
	if rep.Loops == 0 {
		t.Fatal("invariant checker missed a seeded forwarding loop")
	}
	if rep.Err() == nil {
		t.Fatal("looping run reported clean")
	}
	if len(c.got[2]) != 0 {
		t.Fatalf("delivered = %v", c.got[2])
	}
}

// TestTableShapes pins the precomputed table structure.
func TestTableShapes(t *testing.T) {
	rot := failover.BuildRotor(0, 4, 2)
	if err := failover.Validate(rot, 4, 2); err != nil {
		t.Fatal(err)
	}
	if len(rot.Next[0]) != 0 {
		t.Fatal("rotor routes to self")
	}
	if got := rot.Next[2]; len(got) != 2 || got[0] != (failover.Hop{Rail: 0, Via: 2}) || got[1] != (failover.Hop{Rail: 1, Via: 2}) {
		t.Fatalf("rotor candidates = %v", got)
	}

	arb := failover.BuildArbor(0, 4, 2)
	if err := failover.Validate(arb, 4, 2); err != nil {
		t.Fatal(err)
	}
	// Direct rails first, then relays (dst+1)%4=3... for dst 2: relays
	// 3 and 0; relay 0 is this node, degenerating to direct.
	want := []failover.Hop{
		{Rail: 0, Via: 2}, {Rail: 1, Via: 2}, // rotor prefix
		{Rail: 0, Via: 3}, {Rail: 1, Via: 3}, // relay (2+1)%4
		{Rail: 0, Via: 2}, {Rail: 1, Via: 2}, // relay (2+2)%4 == self -> direct
	}
	if got := arb.Next[2]; len(got) != len(want) {
		t.Fatalf("arbor candidates = %v", got)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("arbor candidate %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// TestValidateRejects pins the bounds checks.
func TestValidateRejects(t *testing.T) {
	good := failover.BuildRotor(0, 3, 2)
	cases := map[string]failover.Table{
		"wrong-node": {Node: 9, Next: good.Next},
		"short":      {Node: 0, Next: good.Next[:2]},
		"self-route": {Node: 0, Next: [][]failover.Hop{{{Rail: 0, Via: 1}}, {{Rail: 0, Via: 0}}, {{Rail: 0, Via: 1}}}},
		"bad-rail":   {Node: 0, Next: [][]failover.Hop{nil, {{Rail: 7, Via: 1}}, {{Rail: 0, Via: 1}}}},
		"via-self":   {Node: 0, Next: [][]failover.Hop{nil, {{Rail: 0, Via: 0}}, {{Rail: 0, Via: 1}}}},
		"via-range":  {Node: 0, Next: [][]failover.Hop{nil, {{Rail: 0, Via: 5}}, {{Rail: 0, Via: 1}}}},
	}
	for name, tab := range cases {
		if err := failover.Validate(tab, 3, 2); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := failover.Validate(good, 3, 2); err != nil {
		t.Error(err)
	}
}

// TestStoppedAndBadArgs covers the router lifecycle edges shared with
// the other baselines.
func TestStoppedAndBadArgs(t *testing.T) {
	c := newCluster(t, 3, rotor)
	if err := c.routers[0].SendData(0, nil); err == nil {
		t.Fatal("send to self accepted")
	}
	if err := c.routers[0].SendData(99, nil); err == nil {
		t.Fatal("send out of range accepted")
	}
	if err := c.routers[0].Start(); err == nil {
		t.Fatal("double start accepted")
	}
	c.routers[0].Stop()
	if err := c.routers[0].SendData(2, nil); !errors.Is(err, routing.ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}

	b := newCluster(t, 3, bounce)
	if err := b.routers[0].SendData(0, nil); err == nil {
		t.Fatal("bounce send to self accepted")
	}
	if err := b.routers[0].Start(); err == nil {
		t.Fatal("bounce double start accepted")
	}
	b.routers[0].Stop()
	if err := b.routers[0].SendData(2, nil); !errors.Is(err, routing.ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}

	if _, err := failover.New(nil, nil, failover.Table{}, failover.Config{}); err == nil {
		t.Fatal("nil transport accepted")
	}
	if _, err := failover.NewBounce(nil, nil, failover.Config{}); err == nil {
		t.Fatal("bounce nil transport accepted")
	}
}

// TestBounceNoRouteWhenIsolated: with every own port dead the bounce
// origin refuses immediately.
func TestBounceNoRouteWhenIsolated(t *testing.T) {
	c := newCluster(t, 3, bounce)
	cl := c.net.Cluster()
	c.net.Fail(cl.NIC(0, 0))
	c.net.Fail(cl.NIC(0, 1))
	if err := c.routers[0].SendData(2, []byte("x")); !errors.Is(err, routing.ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

// TestBounceHopLimit: a header claiming an exhausted hop odometer is
// dropped by the backstop instead of forwarded — defence in depth
// against corrupted or adversarial headers.
func TestBounceHopLimit(t *testing.T) {
	c := newCluster(t, 3, bounce)
	spent := wire.Envelope(wire.ProtoFailover, wire.MarshalFailover(wire.FailoverHeader{
		Origin: 0, Final: 2, Seq: 1, Attempt: 0, Hops: 255,
	}, []byte("x")))
	if err := c.net.Send(0, 0, 1, spent); err != nil {
		t.Fatal(err)
	}
	c.run()
	if len(c.got[2]) != 0 {
		t.Fatalf("delivered = %v, want odometer drop", c.got[2])
	}
	if got := c.routers[1].Metrics().Counter(routing.CtrDataDropped).Value(); got != 1 {
		t.Fatalf("drops at relay = %d, want 1", got)
	}
}
