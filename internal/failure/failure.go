// Package failure generates the failure workloads of the paper's
// evaluation:
//
//   - a synthetic fleet failure log reproducing the motivating
//     statistic — "we evaluated one hundred deployed systems and found
//     that over a one-year period, thirteen percent of the hardware
//     failures were network related";
//   - component failure/repair schedules for driving the packet-level
//     simulator through long-running availability experiments (the
//     voice-mail deployment scenario).
//
// Everything is seeded and deterministic.
package failure

import (
	"fmt"
	"sort"
	"time"

	"drsnet/internal/rng"
	"drsnet/internal/topology"
)

// Category classifies a hardware failure in the fleet log.
type Category int

// Failure categories. The network-related ones — NICs, hubs, cabling —
// are the paper's 13%.
const (
	CatDisk Category = iota
	CatMemory
	CatCPU
	CatPower
	CatFan
	CatOther
	CatNIC
	CatHub
	CatCable
	numCategories
)

var categoryNames = [...]string{
	"disk", "memory", "cpu", "power", "fan", "other", "nic", "hub", "cable",
}

// String implements fmt.Stringer.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// IsNetwork reports whether the category is network related.
func (c Category) IsNetwork() bool {
	return c == CatNIC || c == CatHub || c == CatCable
}

// FleetConfig parameterizes the fleet failure-log generator.
type FleetConfig struct {
	// Servers is the fleet size (the paper evaluated 100).
	Servers int
	// Days is the observation window (the paper's was one year).
	Days int
	// AnnualFailureRate is the expected hardware failures per server
	// per year, all categories combined.
	AnnualFailureRate float64
	// Weights gives the relative likelihood of each category.
	// Nil selects DefaultWeights.
	Weights []float64
	// Seed drives the generator.
	Seed uint64
}

// DefaultWeights mirrors field experience with commodity servers of
// the era and puts exactly 13% of the mass on network categories
// (nic 7% + hub 4% + cable 2%), matching the paper's statistic.
func DefaultWeights() []float64 {
	w := make([]float64, numCategories)
	w[CatDisk] = 0.35
	w[CatMemory] = 0.10
	w[CatCPU] = 0.05
	w[CatPower] = 0.12
	w[CatFan] = 0.08
	w[CatOther] = 0.17
	w[CatNIC] = 0.07
	w[CatHub] = 0.04
	w[CatCable] = 0.02
	return w
}

// DefaultFleetConfig reproduces the paper's observation: 100 servers,
// one year, with an overall failure rate of 1.2 per server-year.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		Servers:           100,
		Days:              365,
		AnnualFailureRate: 1.2,
		Seed:              1,
	}
}

func (c *FleetConfig) normalize() error {
	if c.Servers <= 0 {
		return fmt.Errorf("failure: need at least one server")
	}
	if c.Days <= 0 {
		return fmt.Errorf("failure: need a positive observation window")
	}
	if !(c.AnnualFailureRate > 0) {
		return fmt.Errorf("failure: need a positive failure rate")
	}
	if c.Weights == nil {
		c.Weights = DefaultWeights()
	}
	if len(c.Weights) != int(numCategories) {
		return fmt.Errorf("failure: %d weights, want %d", len(c.Weights), numCategories)
	}
	total := 0.0
	for i, w := range c.Weights {
		if w < 0 {
			return fmt.Errorf("failure: negative weight for %v", Category(i))
		}
		total += w
	}
	if !(total > 0) {
		return fmt.Errorf("failure: all weights zero")
	}
	return nil
}

// FleetEvent is one hardware failure in the fleet log.
type FleetEvent struct {
	Day      int
	Server   int
	Category Category
}

// FleetLog is the generated failure history.
type FleetLog struct {
	Config FleetConfig
	Events []FleetEvent
}

// FleetSummary aggregates a log.
type FleetSummary struct {
	Total           int
	ByCategory      [numCategories]int
	Network         int
	NetworkFraction float64
}

// GenerateFleetLog samples a failure history: each server fails as a
// Poisson process at the configured annual rate, with categories drawn
// by weight, uniformly placed in time.
func GenerateFleetLog(cfg FleetConfig) (*FleetLog, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	cum := cumulative(cfg.Weights)
	var events []FleetEvent
	dailyRate := cfg.AnnualFailureRate / 365
	for server := 0; server < cfg.Servers; server++ {
		sub := r.Split(uint64(server))
		// Poisson arrivals by exponential gaps.
		t := sub.ExpFloat64() / dailyRate
		for t < float64(cfg.Days) {
			events = append(events, FleetEvent{
				Day:      int(t),
				Server:   server,
				Category: pickCategory(cum, sub.Float64()),
			})
			t += sub.ExpFloat64() / dailyRate
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Day != events[j].Day {
			return events[i].Day < events[j].Day
		}
		return events[i].Server < events[j].Server
	})
	return &FleetLog{Config: cfg, Events: events}, nil
}

func cumulative(w []float64) []float64 {
	cum := make([]float64, len(w))
	total := 0.0
	for i, v := range w {
		total += v
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

func pickCategory(cum []float64, u float64) Category {
	for i, c := range cum {
		if u < c {
			return Category(i)
		}
	}
	return Category(len(cum) - 1)
}

// Summary aggregates the log.
func (l *FleetLog) Summary() FleetSummary {
	var s FleetSummary
	for _, e := range l.Events {
		s.Total++
		s.ByCategory[e.Category]++
		if e.Category.IsNetwork() {
			s.Network++
		}
	}
	if s.Total > 0 {
		s.NetworkFraction = float64(s.Network) / float64(s.Total)
	}
	return s
}

// ---------------------------------------------------------------
// Component failure schedules for the packet simulator.

// Action is one scheduled component state change.
type Action struct {
	At        time.Duration
	Component topology.Component
	// Up false fails the component; true restores it.
	Up bool
}

// Schedule is a time-ordered list of component state changes.
type Schedule []Action

// ScheduleConfig parameterizes random failure/repair schedules.
type ScheduleConfig struct {
	// Horizon is the simulated time covered.
	Horizon time.Duration
	// MTBF is each component's mean time between failures.
	MTBF time.Duration
	// MTTR is the mean time to repair a failed component.
	MTTR time.Duration
	// Seed drives the sampling.
	Seed uint64
}

func (c ScheduleConfig) validate() error {
	if c.Horizon <= 0 || c.MTBF <= 0 || c.MTTR <= 0 {
		return fmt.Errorf("failure: horizon, MTBF and MTTR must be positive")
	}
	return nil
}

// RandomSchedule samples an alternating fail/repair process for every
// component of the cluster: exponential up-times with mean MTBF and
// down-times with mean MTTR, truncated at the horizon.
func RandomSchedule(cluster topology.Cluster, cfg ScheduleConfig) (Schedule, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	var sched Schedule
	for comp := 0; comp < cluster.Components(); comp++ {
		sub := r.Split(uint64(comp))
		t := time.Duration(sub.ExpFloat64() * float64(cfg.MTBF))
		up := false // next transition takes the component down
		for t < cfg.Horizon {
			sched = append(sched, Action{At: t, Component: topology.Component(comp), Up: up})
			if up {
				t += time.Duration(sub.ExpFloat64() * float64(cfg.MTBF))
			} else {
				t += time.Duration(sub.ExpFloat64() * float64(cfg.MTTR))
			}
			up = !up
		}
	}
	sort.Slice(sched, func(i, j int) bool {
		if sched[i].At != sched[j].At {
			return sched[i].At < sched[j].At
		}
		return sched[i].Component < sched[j].Component
	})
	return sched, nil
}

// Downtime returns the total scheduled down-time per component over
// the horizon (useful for sanity-checking MTTR calibration).
func (s Schedule) Downtime(cluster topology.Cluster, horizon time.Duration) map[topology.Component]time.Duration {
	downSince := make(map[topology.Component]time.Duration)
	total := make(map[topology.Component]time.Duration)
	for _, a := range s {
		if !a.Up {
			if _, down := downSince[a.Component]; !down {
				downSince[a.Component] = a.At
			}
		} else if since, down := downSince[a.Component]; down {
			total[a.Component] += a.At - since
			delete(downSince, a.Component)
		}
	}
	for comp, since := range downSince {
		total[comp] += horizon - since
	}
	return total
}
