package failure

import (
	"math"
	"testing"
	"time"

	"drsnet/internal/topology"
)

func TestDefaultWeightsEncodeThirteenPercent(t *testing.T) {
	w := DefaultWeights()
	total, network := 0.0, 0.0
	for i, v := range w {
		total += v
		if Category(i).IsNetwork() {
			network += v
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("weights sum to %v", total)
	}
	if math.Abs(network/total-0.13) > 1e-12 {
		t.Fatalf("network weight fraction = %v, want 0.13", network/total)
	}
}

func TestFleetLogReproducesPaperStatistic(t *testing.T) {
	// "over a one-year period, thirteen percent of the hardware
	// failures were network related" (100 servers).
	log, err := GenerateFleetLog(DefaultFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := log.Summary()
	if s.Total < 60 {
		t.Fatalf("only %d failures in a year across 100 servers", s.Total)
	}
	// ~120 samples of a 13% Bernoulli: allow ±3σ ≈ ±0.09.
	if math.Abs(s.NetworkFraction-0.13) > 0.09 {
		t.Fatalf("network fraction = %v, want ≈ 0.13", s.NetworkFraction)
	}
	if s.Network == 0 {
		t.Fatal("no network failures at all")
	}
}

func TestFleetLogLargeSampleConverges(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Servers = 5000
	cfg.Seed = 3
	log, err := GenerateFleetLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := log.Summary()
	if math.Abs(s.NetworkFraction-0.13) > 0.02 {
		t.Fatalf("network fraction = %v with %d failures, want ≈ 0.13",
			s.NetworkFraction, s.Total)
	}
}

func TestFleetLogDeterministic(t *testing.T) {
	a, err := GenerateFleetLog(DefaultFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFleetLog(DefaultFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("nondeterministic event count")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestFleetLogSortedAndInRange(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Seed = 7
	log, err := GenerateFleetLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prevDay := -1
	for _, e := range log.Events {
		if e.Day < prevDay {
			t.Fatal("events not sorted by day")
		}
		prevDay = e.Day
		if e.Day < 0 || e.Day >= cfg.Days {
			t.Fatalf("day %d out of range", e.Day)
		}
		if e.Server < 0 || e.Server >= cfg.Servers {
			t.Fatalf("server %d out of range", e.Server)
		}
		if e.Category < 0 || e.Category >= numCategories {
			t.Fatalf("bad category %v", e.Category)
		}
	}
}

func TestFleetRateCalibration(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Servers = 2000
	cfg.Seed = 11
	log, err := GenerateFleetLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perServerYear := float64(log.Summary().Total) / float64(cfg.Servers)
	if math.Abs(perServerYear-cfg.AnnualFailureRate) > 0.1 {
		t.Fatalf("observed rate %v, want ≈ %v", perServerYear, cfg.AnnualFailureRate)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*FleetConfig){
		"no servers": func(c *FleetConfig) { c.Servers = 0 },
		"no days":    func(c *FleetConfig) { c.Days = 0 },
		"zero rate":  func(c *FleetConfig) { c.AnnualFailureRate = 0 },
		"bad weight": func(c *FleetConfig) { c.Weights = []float64{1, -1} },
		"all zero": func(c *FleetConfig) {
			c.Weights = make([]float64, numCategories)
		},
	} {
		cfg := DefaultFleetConfig()
		mutate(&cfg)
		if _, err := GenerateFleetLog(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	if CatNIC.String() != "nic" || CatHub.String() != "hub" || CatDisk.String() != "disk" {
		t.Fatal("category names wrong")
	}
	if Category(99).String() != "Category(99)" {
		t.Fatal("unknown category formatting")
	}
	for _, c := range []Category{CatNIC, CatHub, CatCable} {
		if !c.IsNetwork() {
			t.Fatalf("%v not network", c)
		}
	}
	for _, c := range []Category{CatDisk, CatMemory, CatCPU, CatPower, CatFan, CatOther} {
		if c.IsNetwork() {
			t.Fatalf("%v wrongly network", c)
		}
	}
}

func TestRandomScheduleShape(t *testing.T) {
	cluster := topology.Dual(8)
	cfg := ScheduleConfig{
		Horizon: 100 * time.Hour,
		MTBF:    20 * time.Hour,
		MTTR:    time.Hour,
		Seed:    5,
	}
	sched, err := RandomSchedule(cluster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) == 0 {
		t.Fatal("empty schedule at MTBF << horizon")
	}
	prev := time.Duration(-1)
	state := make(map[topology.Component]bool) // true = currently down
	for _, a := range sched {
		if a.At < prev {
			t.Fatal("schedule not time ordered")
		}
		prev = a.At
		if a.At < 0 || a.At >= cfg.Horizon {
			t.Fatalf("action at %v outside horizon", a.At)
		}
		if int(a.Component) < 0 || int(a.Component) >= cluster.Components() {
			t.Fatalf("component %d out of range", a.Component)
		}
		// Alternation per component: a fail only when up, a repair
		// only when down.
		if a.Up {
			if !state[a.Component] {
				t.Fatalf("repair of a healthy component %v", a.Component)
			}
			state[a.Component] = false
		} else {
			if state[a.Component] {
				t.Fatalf("double failure of %v", a.Component)
			}
			state[a.Component] = true
		}
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	cluster := topology.Dual(4)
	cfg := ScheduleConfig{Horizon: 50 * time.Hour, MTBF: 10 * time.Hour, MTTR: time.Hour, Seed: 9}
	a, err := RandomSchedule(cluster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSchedule(cluster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("action %d differs", i)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	cluster := topology.Dual(4)
	bad := ScheduleConfig{Horizon: 0, MTBF: time.Hour, MTTR: time.Hour}
	if _, err := RandomSchedule(cluster, bad); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := RandomSchedule(topology.Cluster{Nodes: 1, Rails: 2},
		ScheduleConfig{Horizon: time.Hour, MTBF: time.Hour, MTTR: time.Minute}); err == nil {
		t.Error("bad cluster accepted")
	}
}

func TestDowntimeAccounting(t *testing.T) {
	cluster := topology.Dual(2)
	comp := cluster.NIC(0, 0)
	s := Schedule{
		{At: time.Hour, Component: comp, Up: false},
		{At: 2 * time.Hour, Component: comp, Up: true},
		{At: 4 * time.Hour, Component: comp, Up: false},
	}
	down := s.Downtime(cluster, 5*time.Hour)
	if got := down[comp]; got != 2*time.Hour {
		t.Fatalf("downtime = %v, want 2h (1h repaired + 1h truncated)", got)
	}
}

func TestDowntimeRatioMatchesMTTR(t *testing.T) {
	cluster := topology.Dual(16)
	cfg := ScheduleConfig{
		Horizon: 2000 * time.Hour,
		MTBF:    50 * time.Hour,
		MTTR:    5 * time.Hour,
		Seed:    13,
	}
	sched, err := RandomSchedule(cluster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	down := sched.Downtime(cluster, cfg.Horizon)
	var total time.Duration
	for _, d := range down {
		total += d
	}
	// Expected unavailability ≈ MTTR/(MTBF+MTTR) ≈ 9.1%.
	frac := float64(total) / (float64(cfg.Horizon) * float64(cluster.Components()))
	want := float64(cfg.MTTR) / float64(cfg.MTBF+cfg.MTTR)
	if math.Abs(frac-want) > 0.03 {
		t.Fatalf("downtime fraction %v, want ≈ %v", frac, want)
	}
}
