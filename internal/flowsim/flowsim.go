// Package flowsim runs reliable application flows over the routing
// layer, turning the paper's "server applications are unaware that a
// network failure has occurred" from a model (package tcpmodel) into a
// measurement: an actual retransmitting transport rides the DRS (or a
// baseline router) across injected failures, and the connection-level
// outcome — stalls, retransmissions, survival — is observed.
//
// The transport is deliberately minimal TCP: stop-and-wait with
// per-segment acknowledgements, an exponential-backoff retransmission
// timer, and a retry budget after which the connection is declared
// dead. Stop-and-wait is sufficient because the question under study
// is how retransmission interacts with rerouting, not throughput.
package flowsim

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"drsnet/internal/routing"
)

// Wire format: [flowID uint16][kind byte][seq uint32][payload...]
const (
	kindSegment = 1
	kindAck     = 2
	headerLen   = 2 + 1 + 4
)

func marshal(flowID uint16, kind byte, seq uint32, payload []byte) []byte {
	b := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint16(b[0:2], flowID)
	b[2] = kind
	binary.BigEndian.PutUint32(b[3:7], seq)
	copy(b[headerLen:], payload)
	return b
}

func unmarshal(b []byte) (flowID uint16, kind byte, seq uint32, payload []byte, err error) {
	if len(b) < headerLen {
		return 0, 0, 0, nil, fmt.Errorf("flowsim: frame too short")
	}
	return binary.BigEndian.Uint16(b[0:2]), b[2], binary.BigEndian.Uint32(b[3:7]), b[headerLen:], nil
}

// FlowConfig tunes the sender's retransmission behaviour. The defaults
// mirror tcpmodel.Defaults: RTO 1 s, cap 64 s, 8 retries.
type FlowConfig struct {
	RTO        time.Duration
	MaxRTO     time.Duration
	MaxRetries int
}

// DefaultFlowConfig returns the LAN-typical TCP-like configuration.
func DefaultFlowConfig() FlowConfig {
	return FlowConfig{RTO: time.Second, MaxRTO: 64 * time.Second, MaxRetries: 8}
}

func (c *FlowConfig) normalize() error {
	if c.RTO <= 0 {
		return fmt.Errorf("flowsim: RTO must be positive")
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 64 * c.RTO
	}
	if c.MaxRTO < c.RTO {
		return fmt.Errorf("flowsim: MaxRTO below RTO")
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("flowsim: negative retry budget")
	}
	return nil
}

// Endpoint multiplexes flows over one node's Router. Create one per
// node, then Dial outgoing flows and Listen for incoming ones.
type Endpoint struct {
	router routing.Router
	clock  routing.Clock

	mu      sync.Mutex
	senders map[flowKey]*Flow
	sinks   map[flowKey]*Sink
}

type flowKey struct {
	peer   int
	flowID uint16
}

// NewEndpoint wraps a started Router. It takes over the router's
// deliver callback; all application traffic on this node must flow
// through this endpoint afterwards.
func NewEndpoint(router routing.Router, clock routing.Clock) (*Endpoint, error) {
	if router == nil || clock == nil {
		return nil, fmt.Errorf("flowsim: nil router or clock")
	}
	e := &Endpoint{
		router:  router,
		clock:   clock,
		senders: make(map[flowKey]*Flow),
		sinks:   make(map[flowKey]*Sink),
	}
	router.SetDeliverFunc(e.onDeliver)
	return e, nil
}

func (e *Endpoint) onDeliver(src int, data []byte) {
	flowID, kind, seq, payload, err := unmarshal(data)
	if err != nil {
		return
	}
	key := flowKey{peer: src, flowID: flowID}
	switch kind {
	case kindSegment:
		e.mu.Lock()
		sink := e.sinks[key]
		e.mu.Unlock()
		if sink != nil {
			sink.onSegment(seq, payload)
		}
	case kindAck:
		e.mu.Lock()
		flow := e.senders[key]
		e.mu.Unlock()
		if flow != nil {
			flow.onAck(seq)
		}
	}
}

// Dial creates a sending flow to dst with the given id.
func (e *Endpoint) Dial(dst int, flowID uint16, cfg FlowConfig) (*Flow, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	f := &Flow{
		ep:     e,
		dst:    dst,
		flowID: flowID,
		cfg:    cfg,
	}
	key := flowKey{peer: dst, flowID: flowID}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.senders[key]; dup {
		return nil, fmt.Errorf("flowsim: flow %d to node %d already dialed", flowID, dst)
	}
	e.senders[key] = f
	return f, nil
}

// Listen creates a receiving sink for flow id from src.
func (e *Endpoint) Listen(src int, flowID uint16) (*Sink, error) {
	s := &Sink{ep: e, src: src, flowID: flowID}
	key := flowKey{peer: src, flowID: flowID}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.sinks[key]; dup {
		return nil, fmt.Errorf("flowsim: flow %d from node %d already listened", flowID, src)
	}
	e.sinks[key] = s
	return s, nil
}

// FlowStats summarizes a sender's experience.
type FlowStats struct {
	// Enqueued counts segments handed to the flow; Acked counts
	// segments confirmed by the receiver.
	Enqueued, Acked int
	// Retransmissions counts every resend of any segment.
	Retransmissions int
	// MaxAckStall is the longest time any single segment waited from
	// first transmission to acknowledgement — the application-visible
	// hiccup.
	MaxAckStall time.Duration
	// Dead reports whether the retry budget was exhausted (the
	// connection reset).
	Dead bool
}

// Flow is the sending half of a reliable stop-and-wait stream.
// Its methods are safe for use from router callbacks and timers.
type Flow struct {
	ep     *Endpoint
	dst    int
	flowID uint16
	cfg    FlowConfig

	mu        sync.Mutex
	queue     [][]byte
	nextSeq   uint32
	inFlight  bool
	flightSeq uint32
	sentAt    time.Duration // first transmission of the in-flight segment
	attempts  int
	rto       time.Duration
	cancel    func() bool
	stats     FlowStats
}

// Send enqueues one segment. Transmission is asynchronous; delivery is
// confirmed through Stats().Acked. Sending on a dead flow returns an
// error.
func (f *Flow) Send(data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stats.Dead {
		return fmt.Errorf("flowsim: connection reset")
	}
	f.queue = append(f.queue, append([]byte(nil), data...))
	f.stats.Enqueued++
	f.pumpLocked()
	return nil
}

// pumpLocked transmits the next segment if none is in flight.
func (f *Flow) pumpLocked() {
	if f.inFlight || len(f.queue) == 0 || f.stats.Dead {
		return
	}
	f.inFlight = true
	f.flightSeq = f.nextSeq
	f.nextSeq++
	f.attempts = 0
	f.rto = f.cfg.RTO
	f.sentAt = f.ep.clock.Now()
	f.transmitLocked()
}

// transmitLocked sends the in-flight segment and arms the timer.
func (f *Flow) transmitLocked() {
	seg := f.queue[0]
	payload := marshal(f.flowID, kindSegment, f.flightSeq, seg)
	// SendData errors (no route yet) are treated like a lost segment:
	// the retransmission timer drives recovery, exactly as TCP's
	// does.
	_ = f.ep.router.SendData(f.dst, payload)
	f.attempts++
	seq := f.flightSeq
	f.cancel = f.ep.clock.AfterFunc(f.rto, func() { f.timeout(seq) })
}

func (f *Flow) timeout(seq uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.inFlight || f.flightSeq != seq || f.stats.Dead {
		return
	}
	if f.attempts > f.cfg.MaxRetries {
		f.stats.Dead = true
		f.queue = nil
		return
	}
	f.stats.Retransmissions++
	f.rto *= 2
	if f.rto > f.cfg.MaxRTO {
		f.rto = f.cfg.MaxRTO
	}
	f.transmitLocked()
}

func (f *Flow) onAck(seq uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.inFlight || seq != f.flightSeq || f.stats.Dead {
		return // duplicate or stale ack
	}
	if f.cancel != nil {
		f.cancel()
	}
	f.inFlight = false
	f.queue = f.queue[1:]
	f.stats.Acked++
	if stall := f.ep.clock.Now() - f.sentAt; stall > f.stats.MaxAckStall {
		f.stats.MaxAckStall = stall
	}
	f.pumpLocked()
}

// Stats returns a snapshot of the flow's counters.
func (f *Flow) Stats() FlowStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Pending returns the number of unacknowledged segments (queued plus
// in flight).
func (f *Flow) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queue)
}

// SinkStats summarizes a receiver's experience.
type SinkStats struct {
	// Received counts distinct segments delivered in order;
	// Duplicates counts retransmissions of already-delivered
	// segments.
	Received, Duplicates int
	// Bytes is the total in-order payload delivered.
	Bytes int
	// MaxGap is the longest time between consecutive in-order
	// deliveries.
	MaxGap time.Duration
}

// Sink is the receiving half: it acknowledges every segment and
// delivers payloads in order.
type Sink struct {
	ep     *Endpoint
	src    int
	flowID uint16

	mu       sync.Mutex
	expected uint32
	lastAt   time.Duration
	haveLast bool
	stats    SinkStats
	deliver  func(data []byte)
}

// SetDeliverFunc installs an in-order payload callback.
func (s *Sink) SetDeliverFunc(fn func(data []byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deliver = fn
}

func (s *Sink) onSegment(seq uint32, payload []byte) {
	s.mu.Lock()
	var deliver func(data []byte)
	var data []byte
	// Always acknowledge: the ack for a duplicate may be the one that
	// finally gets through.
	ack := marshal(s.flowID, kindAck, seq, nil)
	switch {
	case seq == s.expected:
		s.expected++
		s.stats.Received++
		s.stats.Bytes += len(payload)
		now := s.ep.clock.Now()
		if s.haveLast {
			if gap := now - s.lastAt; gap > s.stats.MaxGap {
				s.stats.MaxGap = gap
			}
		}
		s.lastAt = now
		s.haveLast = true
		deliver = s.deliver
		data = append([]byte(nil), payload...)
	case seq < s.expected:
		s.stats.Duplicates++
	default:
		// Stop-and-wait never legitimately skips ahead; drop and do
		// not ack so the sender's view stays consistent.
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	_ = s.ep.router.SendData(s.src, ack)
	if deliver != nil {
		deliver(data)
	}
}

// Stats returns a snapshot of the sink's counters.
func (s *Sink) Stats() SinkStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
