package flowsim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"drsnet/internal/core"
	"drsnet/internal/netsim"
	"drsnet/internal/routing"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

// rig is a DRS cluster with a flow from node 0 to node 1.
type rig struct {
	sched *simtime.Scheduler
	net   *netsim.Network
	ds    []*core.Daemon
	flow  *Flow
	sink  *Sink
	got   [][]byte
}

func newRig(t *testing.T, nodes int, probe time.Duration, lossRate float64, fcfg FlowConfig) *rig {
	t.Helper()
	sched := simtime.NewScheduler()
	params := netsim.DefaultParams()
	params.LossRate = lossRate
	net, err := netsim.New(sched, topology.Dual(nodes), params, 3)
	if err != nil {
		t.Fatal(err)
	}
	clock := routing.SimClock{Sched: sched}
	r := &rig{sched: sched, net: net}
	var endpoints []*Endpoint
	for node := 0; node < nodes; node++ {
		cfg := core.DefaultConfig()
		cfg.ProbeInterval = probe
		d, err := core.New(routing.NewSimNode(net, node), clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		ep, err := NewEndpoint(d, clock)
		if err != nil {
			t.Fatal(err)
		}
		endpoints = append(endpoints, ep)
		r.ds = append(r.ds, d)
	}
	r.flow, err = endpoints[0].Dial(1, 7, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	r.sink, err = endpoints[1].Listen(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	r.sink.SetDeliverFunc(func(data []byte) { r.got = append(r.got, data) })
	return r
}

func (r *rig) run(d time.Duration) { r.sched.RunUntil(r.sched.Now().Add(d)) }

func (r *rig) stop() {
	for _, d := range r.ds {
		d.Stop()
	}
}

func TestWireRoundTrip(t *testing.T) {
	b := marshal(300, kindSegment, 42, []byte("payload"))
	flowID, kind, seq, payload, err := unmarshal(b)
	if err != nil || flowID != 300 || kind != kindSegment || seq != 42 || !bytes.Equal(payload, []byte("payload")) {
		t.Fatalf("round trip: %d %d %d %q %v", flowID, kind, seq, payload, err)
	}
	if _, _, _, _, err := unmarshal([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestHealthyStreamInOrder(t *testing.T) {
	r := newRig(t, 3, time.Second, 0, DefaultFlowConfig())
	defer r.stop()
	r.run(time.Second)
	const n = 20
	for i := 0; i < n; i++ {
		if err := r.flow.Send([]byte(fmt.Sprintf("seg-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r.run(2 * time.Second)
	fs := r.flow.Stats()
	ss := r.sink.Stats()
	if fs.Acked != n || fs.Dead {
		t.Fatalf("flow stats: %+v", fs)
	}
	if fs.Retransmissions != 0 {
		t.Fatalf("healthy stream retransmitted %d times", fs.Retransmissions)
	}
	if ss.Received != n || ss.Duplicates != 0 {
		t.Fatalf("sink stats: %+v", ss)
	}
	for i, data := range r.got {
		if want := fmt.Sprintf("seg-%02d", i); string(data) != want {
			t.Fatalf("order broken at %d: %q", i, data)
		}
	}
	// Stop-and-wait stall on a healthy LAN is sub-millisecond.
	if fs.MaxAckStall > time.Millisecond {
		t.Fatalf("healthy stall = %v", fs.MaxAckStall)
	}
}

func TestFlowSurvivesNICFailureUnderDRS(t *testing.T) {
	// Fast probing (200 ms): the DRS repairs within 400 ms, so TCP's
	// first 1 s retransmission finds a working path — the paper's
	// "applications are unaware" regime made concrete.
	r := newRig(t, 4, 200*time.Millisecond, 0, DefaultFlowConfig())
	defer r.stop()
	r.run(time.Second)

	// Stream steadily; fail the receiver's primary NIC mid-stream.
	sent := 0
	for i := 0; i < 10; i++ {
		if err := r.flow.Send([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
		sent++
		r.run(50 * time.Millisecond)
	}
	r.net.Fail(r.net.Cluster().NIC(1, 0))
	for i := 0; i < 10; i++ {
		if err := r.flow.Send([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
		sent++
		r.run(50 * time.Millisecond)
	}
	r.run(5 * time.Second)

	fs := r.flow.Stats()
	ss := r.sink.Stats()
	if fs.Dead {
		t.Fatalf("connection died across a single NIC failure: %+v", fs)
	}
	if fs.Acked != sent {
		t.Fatalf("acked %d of %d", fs.Acked, sent)
	}
	if ss.Received != sent {
		t.Fatalf("received %d of %d", ss.Received, sent)
	}
	// One segment (plus possibly its ack) was in the blast radius;
	// recovery must cost at most a few retransmissions...
	if fs.Retransmissions > 3 {
		t.Fatalf("%d retransmissions for one failover", fs.Retransmissions)
	}
	// ...and the worst stall is one RTO plus scheduling slack: the
	// retransmitted segment rides the repaired route.
	if fs.MaxAckStall > 1500*time.Millisecond {
		t.Fatalf("max stall %v, want ≈ 1 RTO", fs.MaxAckStall)
	}
}

func TestFlowDiesOnStaticOutage(t *testing.T) {
	// The same transport over static routing: the failure is forever,
	// the retry budget runs out, the connection resets.
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(2), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	clock := routing.SimClock{Sched: sched}
	mk := func(node int) *Endpoint {
		s, err := routing.NewStatic(routing.NewSimNode(net, node), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		ep, err := NewEndpoint(s, clock)
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	a, b := mk(0), mk(1)
	fcfg := FlowConfig{RTO: 100 * time.Millisecond, MaxRTO: 400 * time.Millisecond, MaxRetries: 4}
	flow, err := a.Dial(1, 1, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Listen(0, 1); err != nil {
		t.Fatal(err)
	}
	net.Fail(net.Cluster().Backplane(0))
	if err := flow.Send([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(simtime.Time(10 * time.Second))
	fs := flow.Stats()
	if !fs.Dead {
		t.Fatalf("flow survived a permanent outage: %+v", fs)
	}
	if fs.Retransmissions != fcfg.MaxRetries {
		t.Fatalf("retransmissions = %d, want %d", fs.Retransmissions, fcfg.MaxRetries)
	}
	if err := flow.Send([]byte("after-death")); err == nil {
		t.Fatal("send on dead flow accepted")
	}
}

func TestDuplicatesHandledUnderLoss(t *testing.T) {
	// 20% frame loss: segments and acks both vanish; the protocol
	// must deliver everything exactly once in order anyway.
	fcfg := FlowConfig{RTO: 200 * time.Millisecond, MaxRTO: time.Second, MaxRetries: 20}
	r := newRig(t, 3, time.Second, 0.2, fcfg)
	defer r.stop()
	r.run(time.Second)
	const n = 30
	for i := 0; i < n; i++ {
		if err := r.flow.Send([]byte(fmt.Sprintf("%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r.run(60 * time.Second)
	fs := r.flow.Stats()
	ss := r.sink.Stats()
	if fs.Dead {
		t.Fatalf("flow died under 20%% loss: %+v", fs)
	}
	if fs.Acked != n || ss.Received != n {
		t.Fatalf("acked %d received %d of %d", fs.Acked, ss.Received, n)
	}
	if fs.Retransmissions == 0 {
		t.Fatal("no retransmissions at 20% loss — loss injection broken?")
	}
	if len(r.got) != n {
		t.Fatalf("delivered %d payloads", len(r.got))
	}
	for i, data := range r.got {
		if want := fmt.Sprintf("%03d", i); string(data) != want {
			t.Fatalf("order broken at %d: %q", i, data)
		}
	}
}

func TestEndpointValidation(t *testing.T) {
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(2), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	clock := routing.SimClock{Sched: sched}
	s, err := routing.NewStatic(routing.NewSimNode(net, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEndpoint(nil, clock); err == nil {
		t.Error("nil router accepted")
	}
	ep, err := NewEndpoint(s, clock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Dial(1, 5, DefaultFlowConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Dial(1, 5, DefaultFlowConfig()); err == nil {
		t.Error("duplicate dial accepted")
	}
	if _, err := ep.Listen(1, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Listen(1, 5); err == nil {
		t.Error("duplicate listen accepted")
	}
	bad := FlowConfig{RTO: 0}
	if _, err := ep.Dial(1, 6, bad); err == nil {
		t.Error("zero RTO accepted")
	}
	bad = FlowConfig{RTO: time.Second, MaxRTO: time.Millisecond}
	if _, err := ep.Dial(1, 6, bad); err == nil {
		t.Error("MaxRTO < RTO accepted")
	}
	bad = FlowConfig{RTO: time.Second, MaxRetries: -1}
	if _, err := ep.Dial(1, 6, bad); err == nil {
		t.Error("negative retries accepted")
	}
}

func TestPendingAccounting(t *testing.T) {
	r := newRig(t, 3, time.Second, 0, DefaultFlowConfig())
	defer r.stop()
	// Before any simulation time passes, everything is queued.
	for i := 0; i < 5; i++ {
		if err := r.flow.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.flow.Pending(); got != 5 {
		t.Fatalf("pending = %d, want 5", got)
	}
	r.run(time.Second)
	if got := r.flow.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d", got)
	}
}
