package icmp

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal checks that arbitrary bytes never panic the decoder
// and that everything it accepts re-marshals to the identical wire
// form (round-trip stability).
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Echo{Request: true, ID: 1, Seq: 2}.Marshal())
	f.Add(Echo{Request: false, ID: 0xffff, Seq: 0xffff, Data: []byte("payload")}.Marshal())
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		e, err := Unmarshal(b)
		if err != nil {
			return
		}
		// Accepted messages must round-trip bit for bit.
		out := e.Marshal()
		if !bytes.Equal(out, b) {
			t.Fatalf("round trip changed wire form: % x -> % x", b, out)
		}
	})
}
