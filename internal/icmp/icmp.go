// Package icmp implements the ICMP echo request/reply wire format
// (RFC 792) used by DRS link checks. The DRS determines link health by
// sending an echo request to each monitored host on each network; a
// returned echo validates the hub, wiring, NIC, driver, protocol stack
// and kernel of both ends.
//
// Only the echo message pair is implemented — it is all the protocol
// needs — but the encoding is the real one: type, code, Internet
// checksum, identifier and sequence number, followed by opaque data.
package icmp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message types (RFC 792).
const (
	TypeEchoReply   = 0
	TypeEchoRequest = 8
)

// HeaderLen is the length of the fixed echo header in bytes.
const HeaderLen = 8

// Errors returned by Unmarshal.
var (
	ErrTruncated   = errors.New("icmp: message shorter than header")
	ErrBadChecksum = errors.New("icmp: checksum mismatch")
	ErrBadType     = errors.New("icmp: not an echo message")
	ErrBadCode     = errors.New("icmp: nonzero code in echo message")
)

// Echo is an ICMP echo request or reply.
type Echo struct {
	// Request distinguishes echo request (true) from echo reply.
	Request bool
	// ID identifies the sending process; DRS daemons use their node
	// index.
	ID uint16
	// Seq is the probe sequence number.
	Seq uint16
	// Data is the optional payload, echoed back verbatim.
	Data []byte
}

// Marshal encodes the message with a correct Internet checksum.
func (e Echo) Marshal() []byte {
	b := make([]byte, HeaderLen+len(e.Data))
	if e.Request {
		b[0] = TypeEchoRequest
	} else {
		b[0] = TypeEchoReply
	}
	b[1] = 0 // code
	binary.BigEndian.PutUint16(b[4:6], e.ID)
	binary.BigEndian.PutUint16(b[6:8], e.Seq)
	copy(b[HeaderLen:], e.Data)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
	return b
}

// Unmarshal decodes and validates an echo message, verifying the
// checksum. The returned Echo's Data aliases b.
func Unmarshal(b []byte) (Echo, error) {
	if len(b) < HeaderLen {
		return Echo{}, ErrTruncated
	}
	switch b[0] {
	case TypeEchoRequest, TypeEchoReply:
	default:
		return Echo{}, ErrBadType
	}
	if b[1] != 0 {
		return Echo{}, ErrBadCode
	}
	if Checksum(b) != 0 {
		// Checksumming a message that includes a valid checksum field
		// yields zero (ones'-complement arithmetic).
		return Echo{}, ErrBadChecksum
	}
	return Echo{
		Request: b[0] == TypeEchoRequest,
		ID:      binary.BigEndian.Uint16(b[4:6]),
		Seq:     binary.BigEndian.Uint16(b[6:8]),
		Data:    b[HeaderLen:],
	}, nil
}

// Reply constructs the echo reply for a request, echoing ID, Seq and
// Data as RFC 792 requires. It returns an error if e is not a request.
func Reply(e Echo) (Echo, error) {
	if !e.Request {
		return Echo{}, fmt.Errorf("icmp: cannot reply to an echo reply")
	}
	return Echo{Request: false, ID: e.ID, Seq: e.Seq, Data: e.Data}, nil
}

// Checksum computes the Internet checksum (RFC 1071) over b: the
// ones'-complement of the ones'-complement sum of the 16-bit words,
// padding an odd final byte with zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
