package icmp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	e := Echo{Request: true, ID: 0x1234, Seq: 7, Data: []byte("drs-probe")}
	b := e.Marshal()
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Request != e.Request || got.ID != e.ID || got.Seq != e.Seq || !bytes.Equal(got.Data, e.Data) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, e)
	}
}

func TestRoundTripQuick(t *testing.T) {
	err := quick.Check(func(req bool, id, seq uint16, data []byte) bool {
		e := Echo{Request: req, ID: id, Seq: seq, Data: data}
		got, err := Unmarshal(e.Marshal())
		return err == nil &&
			got.Request == req && got.ID == id && got.Seq == seq &&
			bytes.Equal(got.Data, data)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWireFormat(t *testing.T) {
	b := Echo{Request: true, ID: 0x0102, Seq: 0x0304}.Marshal()
	if len(b) != HeaderLen {
		t.Fatalf("len = %d", len(b))
	}
	if b[0] != TypeEchoRequest || b[1] != 0 {
		t.Fatalf("type/code = %d/%d", b[0], b[1])
	}
	if b[4] != 1 || b[5] != 2 || b[6] != 3 || b[7] != 4 {
		t.Fatalf("id/seq bytes wrong: % x", b)
	}
	r := Echo{Request: false, ID: 1, Seq: 1}.Marshal()
	if r[0] != TypeEchoReply {
		t.Fatalf("reply type = %d", r[0])
	}
}

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 §3: words 0001 f203 f4f5 f6f7
	// sum to ddf2 (before complement), so the checksum is ^0xddf2.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length data is padded with a zero byte.
	if Checksum([]byte{0xab}) != Checksum([]byte{0xab, 0x00}) {
		t.Fatal("odd-length padding wrong")
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	err := quick.Check(func(data []byte) bool {
		b := Echo{Request: true, ID: 9, Seq: 9, Data: data}.Marshal()
		return Checksum(b) == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	e := Echo{Request: true, ID: 42, Seq: 1000, Data: []byte{1, 2, 3, 4}}
	b := e.Marshal()
	for i := range b {
		for _, flip := range []byte{0x01, 0x80} {
			c := append([]byte(nil), b...)
			c[i] ^= flip
			if _, err := Unmarshal(c); err == nil {
				// A flip of the type byte may still land on a valid
				// type with a now-wrong checksum; any corruption must
				// error one way or another.
				t.Fatalf("corruption at byte %d (mask %#x) not detected", i, flip)
			}
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{8, 0, 0}); err != ErrTruncated {
		t.Fatalf("truncated: %v", err)
	}
	bad := Echo{Request: true, ID: 1, Seq: 1}.Marshal()
	bad[0] = 13 // not an echo type
	if _, err := Unmarshal(bad); err != ErrBadType {
		t.Fatalf("bad type: %v", err)
	}
	// Nonzero code with a recomputed checksum: code error.
	withCode := Echo{Request: true, ID: 1, Seq: 1}.Marshal()
	withCode[1] = 5
	if _, err := Unmarshal(withCode); err != ErrBadCode {
		t.Fatalf("bad code: %v", err)
	}
	corrupt := Echo{Request: true, ID: 1, Seq: 1}.Marshal()
	corrupt[6] ^= 0xff
	if _, err := Unmarshal(corrupt); err != ErrBadChecksum {
		t.Fatalf("bad checksum: %v", err)
	}
}

func TestReply(t *testing.T) {
	req := Echo{Request: true, ID: 5, Seq: 9, Data: []byte("x")}
	rep, err := Reply(req)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Request || rep.ID != 5 || rep.Seq != 9 || !bytes.Equal(rep.Data, req.Data) {
		t.Fatalf("reply = %+v", rep)
	}
	if _, err := Reply(rep); err == nil {
		t.Fatal("reply to a reply accepted")
	}
}

func BenchmarkMarshalUnmarshal(b *testing.B) {
	e := Echo{Request: true, ID: 3, Seq: 77, Data: make([]byte, 48)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := e.Marshal()
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
