// Package invariant is a per-frame forwarding-trace checker: it
// watches every application datagram cross the simulated network and
// asserts the correctness properties the static fast-failover
// literature states exactly — and every other protocol in this
// repository should satisfy too:
//
//   - Loop-freedom: no packet visits the same node twice in the same
//     header state. For plain ProtoData traffic the header state is
//     empty, so any revisit is a loop; for ProtoFailover traffic the
//     state is the header's Attempt field, so a packet may legally
//     return to a node after rewriting its header (that is how
//     header-carried failover state buys resilience) but never in the
//     same state. Detection is TTL-independent: a loop is flagged on
//     the first repeat visit, whether or not a TTL would eventually
//     have killed the packet.
//   - Delivery or provable disconnection: a packet either reaches its
//     final destination or its loss is excused by the ground-truth
//     topology — origin and destination were genuinely disconnected.
//     Enforced only when Config.RequireDelivery is set (convergence
//     protocols legitimately lose packets while they relearn routes);
//     always reported.
//   - Bounded stretch: no packet consumes more than MaxHops
//     forwarding hops (shortest paths here are one or two hops).
//
// The checker implements netsim.Tap, so any protocol run — DRS,
// link-state, reactive, static, or the failover family — can execute
// under invariant enforcement in tests and chaos campaigns simply by
// installing it on the network. It is purely observational and draws
// no randomness: enabling it never changes a seeded run's bytes.
package invariant

import (
	"fmt"
	"sync"
	"time"

	"drsnet/internal/netsim"
	"drsnet/internal/routing/wire"
)

// DefaultMaxHops is the stretch bound when Config.MaxHops is zero.
// Direct paths are one hop and relay paths two; eight leaves the
// header-rewriting variant room to explore without hiding a loop.
const DefaultMaxHops = 8

// maxViolations bounds the retained Violation records; totals keep
// counting past it.
const maxViolations = 64

// Config parameterizes a Checker.
type Config struct {
	// RequireDelivery asserts delivery-or-provable-disconnection: an
	// undelivered packet whose endpoints were connected (at send time
	// and still at Finalize) is a violation. Leave false for
	// convergence protocols, which lose packets legitimately during
	// warm-up and repair.
	RequireDelivery bool
	// MaxHops bounds a packet's forwarding hops (0 = DefaultMaxHops).
	MaxHops int
	// Reachable reports ground-truth connectivity between two nodes,
	// normally netsim's Reachable. Nil disables the disconnection
	// excuse (every undelivered packet counts as reachable).
	Reachable func(src, dst int) bool
}

// Kind classifies a violation.
type Kind int

const (
	// KindLoop is a node revisit at the same header state.
	KindLoop Kind = iota
	// KindStretch is a packet exceeding the MaxHops bound.
	KindStretch
	// KindUndelivered is a packet that vanished although its endpoints
	// were provably connected (RequireDelivery only).
	KindUndelivered
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLoop:
		return "loop"
	case KindStretch:
		return "stretch"
	case KindUndelivered:
		return "undelivered"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Violation is one invariant breach.
type Violation struct {
	Kind   Kind
	Origin int
	Final  int
	Seq    uint32
	// Node is where the breach was observed (-1 for undelivered).
	Node int
	// At is the simulated time of the breach (Finalize time for
	// undelivered).
	At     time.Duration
	Detail string
}

// String renders the violation compactly.
func (v Violation) String() string {
	return fmt.Sprintf("%s: packet %d->%d seq=%d at node %d t=%v (%s)",
		v.Kind, v.Origin, v.Final, v.Seq, v.Node, v.At, v.Detail)
}

// key identifies one origin-stamped datagram.
type key struct {
	proto  byte
	origin uint16
	final  uint16
	seq    uint32
}

// packet is the live state of one datagram generation. The crash
// lifecycle rebuilds routers (sequence numbers restart), so an origin
// re-sending an existing key supersedes the old generation rather
// than corrupting its trace.
type packet struct {
	delivered bool
	hops      int
	// reachableAtSend snapshots ground truth when the origin emitted
	// the packet.
	reachableAtSend bool
	stretchFlagged  bool
	looped          bool
	// visits[node] holds the header states the packet has been seen in
	// at node.
	visits map[int]map[uint8]bool
}

// Checker asserts the forwarding invariants over one simulation run.
// Install it with netsim's SetTap, run the simulation, then call
// Finalize for the verdict.
type Checker struct {
	cfg Config

	mu      sync.Mutex
	packets map[key]*packet

	// Aggregates, including superseded generations.
	totalPackets int
	delivered    int
	undelivered  int // superseded generations only; Finalize adds open ones
	unreachable  int // superseded undelivered with a disconnection excuse
	loops        int
	revisits     int
	stretch      int
	maxHops      int
	violations   []Violation
}

// New returns a checker for one run.
func New(cfg Config) *Checker {
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = DefaultMaxHops
	}
	return &Checker{cfg: cfg, packets: make(map[key]*packet)}
}

// parse extracts the tracked identity and header state of a frame, if
// it carries application data.
func parse(payload []byte) (k key, origin, final int, state uint8, ok bool) {
	proto, body, err := wire.SplitEnvelope(payload)
	if err != nil {
		return key{}, 0, 0, 0, false
	}
	switch proto {
	case wire.ProtoData:
		h, _, err := wire.UnmarshalData(body)
		if err != nil {
			return key{}, 0, 0, 0, false
		}
		// The TTL is deliberately NOT part of the header state: loops
		// must be caught even where a TTL would mask them.
		return key{proto: proto, origin: h.Origin, final: h.Final, seq: h.Seq},
			int(h.Origin), int(h.Final), 0, true
	case wire.ProtoFailover:
		h, _, err := wire.UnmarshalFailover(body)
		if err != nil {
			return key{}, 0, 0, 0, false
		}
		return key{proto: proto, origin: h.Origin, final: h.Final, seq: h.Seq},
			int(h.Origin), int(h.Final), h.Attempt, true
	}
	return key{}, 0, 0, 0, false
}

// FrameSent implements netsim.Tap: an origin emission registers a new
// packet generation (relay re-transmissions are not registrations).
func (c *Checker) FrameSent(at time.Duration, fr netsim.Frame) {
	k, origin, _, state, ok := parse(fr.Payload)
	if !ok || fr.Src != origin {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, live := c.packets[k]; live {
		// Same key re-originated (a restarted daemon's sequence space
		// reset): close out the old generation.
		c.closeLocked(old, k, at)
	}
	p := &packet{visits: map[int]map[uint8]bool{origin: {state: true}}}
	if c.cfg.Reachable != nil {
		p.reachableAtSend = c.cfg.Reachable(origin, int(k.final))
	} else {
		p.reachableAtSend = true
	}
	c.packets[k] = p
	c.totalPackets++
}

// FrameDelivered implements netsim.Tap: every arrival is a visit,
// checked against the packet's visit history.
func (c *Checker) FrameDelivered(at time.Duration, fr netsim.Frame) {
	k, _, final, state, ok := parse(fr.Payload)
	if !ok {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, live := c.packets[k]
	if !live {
		// Corrupted header or traffic predating the checker: not ours.
		return
	}
	node := fr.Dst
	p.hops++
	if p.hops > c.maxHops {
		c.maxHops = p.hops
	}
	states := p.visits[node]
	switch {
	case states == nil:
		p.visits[node] = map[uint8]bool{state: true}
	case states[state]:
		c.loops++
		if !p.looped {
			p.looped = true
			c.violate(Violation{
				Kind: KindLoop, Origin: int(k.origin), Final: int(k.final), Seq: k.seq,
				Node: node, At: at,
				Detail: fmt.Sprintf("revisit in header state %d after %d hops", state, p.hops),
			})
		}
	default:
		// Legal revisit: the header state changed in between — counted
		// so campaigns can watch header-rewriting explore.
		c.revisits++
		states[state] = true
	}
	if p.hops > c.cfg.MaxHops && !p.stretchFlagged {
		p.stretchFlagged = true
		c.stretch++
		c.violate(Violation{
			Kind: KindStretch, Origin: int(k.origin), Final: int(k.final), Seq: k.seq,
			Node: node, At: at,
			Detail: fmt.Sprintf("%d hops exceeds bound %d", p.hops, c.cfg.MaxHops),
		})
	}
	if node == final {
		p.delivered = true
	}
}

// closeLocked folds a superseded generation into the aggregates.
func (c *Checker) closeLocked(p *packet, k key, at time.Duration) {
	if p.delivered {
		c.delivered++
		return
	}
	c.undelivered++
	excused := !p.reachableAtSend
	if excused {
		c.unreachable++
	}
	if c.cfg.RequireDelivery && !excused {
		c.violate(Violation{
			Kind: KindUndelivered, Origin: int(k.origin), Final: int(k.final), Seq: k.seq,
			Node: -1, At: at, Detail: "lost while endpoints were connected",
		})
	}
}

// violate records a violation, bounded.
func (c *Checker) violate(v Violation) {
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, v)
	}
}

// Report is the checker's verdict over a run.
type Report struct {
	// Packets counts tracked datagram generations; Delivered of them
	// reached their destination.
	Packets   int
	Delivered int
	// Undelivered packets vanished; UndeliveredExcused of those had a
	// provable disconnection excuse (endpoints unreachable at send or
	// at the horizon).
	Undelivered        int
	UndeliveredExcused int
	// Loops counts same-state node revisits (always violations);
	// Revisits counts header-state-changing revisits (legal for the
	// header-rewriting variant, reported for visibility).
	Loops    int
	Revisits int
	// StretchViolations counts packets exceeding the hop bound;
	// MaxHopsSeen is the longest path any packet took.
	StretchViolations int
	MaxHopsSeen       int
	// Violations holds the first breaches in detail (bounded).
	Violations []Violation
}

// Clean reports whether no violation of any kind was recorded.
func (r *Report) Clean() bool {
	return len(r.Violations) == 0 && r.Loops == 0 && r.StretchViolations == 0
}

// Err returns nil for a clean report, or an error naming the first
// violations.
func (r *Report) Err() error {
	if r.Clean() {
		return nil
	}
	msg := fmt.Sprintf("invariant: %d loop(s), %d stretch, %d undelivered-while-connected",
		r.Loops, r.StretchViolations, r.undeliveredViolations())
	n := len(r.Violations)
	if n > 3 {
		n = 3
	}
	for _, v := range r.Violations[:n] {
		msg += "\n  " + v.String()
	}
	return fmt.Errorf("%s", msg)
}

func (r *Report) undeliveredViolations() int {
	n := 0
	for _, v := range r.Violations {
		if v.Kind == KindUndelivered {
			n++
		}
	}
	return n
}

// Finalize closes every open packet generation and returns the
// verdict. Call it after the simulation horizon; the disconnection
// excuse for still-undelivered packets consults ground truth at this
// instant (at), so a packet that was sent into a genuinely severed
// topology is not a violation.
func (c *Checker) Finalize(at time.Duration) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := &Report{
		Packets:            c.totalPackets,
		Delivered:          c.delivered,
		Undelivered:        c.undelivered,
		UndeliveredExcused: c.unreachable,
		Loops:              c.loops,
		Revisits:           c.revisits,
		StretchViolations:  c.stretch,
		MaxHopsSeen:        c.maxHops,
		Violations:         append([]Violation(nil), c.violations...),
	}
	for k, p := range c.packets {
		if p.delivered {
			rep.Delivered++
			continue
		}
		rep.Undelivered++
		excused := !p.reachableAtSend
		if !excused && c.cfg.Reachable != nil && !c.cfg.Reachable(int(k.origin), int(k.final)) {
			// Disconnected by the horizon: the topology changed under
			// the packet, which is the network's fault, not the
			// protocol's.
			excused = true
		}
		if excused {
			rep.UndeliveredExcused++
		} else if c.cfg.RequireDelivery {
			rep.Violations = appendBounded(rep.Violations, Violation{
				Kind: KindUndelivered, Origin: int(k.origin), Final: int(k.final), Seq: k.seq,
				Node: -1, At: at, Detail: "lost while endpoints were connected",
			})
		}
	}
	return rep
}

func appendBounded(vs []Violation, v Violation) []Violation {
	if len(vs) >= maxViolations {
		return vs
	}
	return append(vs, v)
}
