package invariant

import (
	"strings"
	"testing"
	"time"

	"drsnet/internal/netsim"
	"drsnet/internal/routing/wire"
)

// dataFrame builds a ProtoData payload as the dataplane would emit it.
func dataFrame(origin, final int, ttl uint8, seq uint32) []byte {
	h := wire.DataHeader{Origin: uint16(origin), Final: uint16(final), TTL: ttl, Seq: seq}
	return wire.Envelope(wire.ProtoData, wire.MarshalData(h, []byte("payload")))
}

// failFrame builds a ProtoFailover payload at a given attempt.
func failFrame(origin, final int, seq uint32, attempt uint8) []byte {
	h := wire.FailoverHeader{Origin: uint16(origin), Final: uint16(final), Seq: seq, Attempt: attempt}
	return wire.Envelope(wire.ProtoFailover, wire.MarshalFailover(h, []byte("payload")))
}

func send(c *Checker, src int, payload []byte) {
	c.FrameSent(0, netsim.Frame{Src: src, Rail: 0, Payload: payload})
}

func deliver(c *Checker, src, dst int, payload []byte) {
	c.FrameDelivered(0, netsim.Frame{Src: src, Dst: dst, Rail: 0, Payload: payload})
}

// TestCleanRelayDelivery: a two-hop relayed delivery satisfies every
// invariant; the TTL decrementing along the way must not register as a
// header-state change.
func TestCleanRelayDelivery(t *testing.T) {
	c := New(Config{RequireDelivery: true})
	send(c, 0, dataFrame(0, 2, 6, 1))
	deliver(c, 0, 1, dataFrame(0, 2, 5, 1)) // relay hop, TTL decremented
	deliver(c, 1, 2, dataFrame(0, 2, 4, 1)) // final hop
	rep := c.Finalize(time.Second)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Packets != 1 || rep.Delivered != 1 || rep.Undelivered != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MaxHopsSeen != 2 || rep.Revisits != 0 {
		t.Fatalf("hops/revisits = %d/%d", rep.MaxHopsSeen, rep.Revisits)
	}
}

// TestLoopDetected: a ProtoData packet arriving twice at the same node
// is a loop, even though its TTL differs between visits — detection is
// TTL-independent by design.
func TestLoopDetected(t *testing.T) {
	c := New(Config{})
	send(c, 0, dataFrame(0, 3, 6, 9))
	deliver(c, 0, 1, dataFrame(0, 3, 5, 9))
	deliver(c, 1, 2, dataFrame(0, 3, 4, 9))
	deliver(c, 2, 1, dataFrame(0, 3, 3, 9)) // back to node 1: loop
	rep := c.Finalize(time.Second)
	if rep.Loops != 1 {
		t.Fatalf("loops = %d, want 1", rep.Loops)
	}
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "loop") {
		t.Fatalf("err = %v", err)
	}
	if len(rep.Violations) != 1 || rep.Violations[0].Kind != KindLoop || rep.Violations[0].Node != 1 {
		t.Fatalf("violations = %v", rep.Violations)
	}
}

// TestReturnToOriginIsLoop: the origin's own emission counts as the
// first visit, so a packet bounced straight back to it loops.
func TestReturnToOriginIsLoop(t *testing.T) {
	c := New(Config{})
	send(c, 0, dataFrame(0, 2, 6, 1))
	deliver(c, 0, 1, dataFrame(0, 2, 5, 1))
	deliver(c, 1, 0, dataFrame(0, 2, 4, 1)) // back to origin, same (empty) state
	if rep := c.Finalize(time.Second); rep.Loops != 1 {
		t.Fatalf("loops = %d, want 1", rep.Loops)
	}
}

// TestHeaderRewriteRevisitIsLegal: a failover packet may revisit a
// node after rewriting Attempt — counted as a revisit, not a loop —
// but a second arrival in the same state is a loop.
func TestHeaderRewriteRevisitIsLegal(t *testing.T) {
	c := New(Config{})
	send(c, 0, failFrame(0, 3, 7, 0))
	deliver(c, 0, 1, failFrame(0, 3, 7, 0))
	deliver(c, 1, 0, failFrame(0, 3, 7, 1)) // bounced back, attempt rewritten: legal
	deliver(c, 0, 1, failFrame(0, 3, 7, 1)) // node 1 again at new attempt: legal
	rep := c.Finalize(time.Second)
	if rep.Loops != 0 || rep.Revisits != 2 {
		t.Fatalf("loops/revisits = %d/%d, want 0/2", rep.Loops, rep.Revisits)
	}

	deliver(c, 1, 0, failFrame(0, 3, 7, 1)) // origin again at attempt 1: loop
	if rep := c.Finalize(time.Second); rep.Loops != 1 {
		t.Fatalf("loops = %d, want 1", rep.Loops)
	}
}

// TestStretchBound: exceeding MaxHops flags once per packet and keeps
// counting MaxHopsSeen.
func TestStretchBound(t *testing.T) {
	c := New(Config{MaxHops: 2})
	send(c, 0, failFrame(0, 9, 1, 0))
	for hop, node := range []int{1, 2, 3, 4} {
		deliver(c, node-1, node, failFrame(0, 9, 1, uint8(hop)))
	}
	rep := c.Finalize(time.Second)
	if rep.StretchViolations != 1 {
		t.Fatalf("stretch = %d, want 1", rep.StretchViolations)
	}
	if rep.MaxHopsSeen != 4 {
		t.Fatalf("max hops = %d, want 4", rep.MaxHopsSeen)
	}
	if rep.Err() == nil {
		t.Fatal("stretch violation not an error")
	}
}

// TestDeliveryRequired: an undelivered packet between connected
// endpoints violates; the same loss with a disconnection excuse — at
// send time or by the horizon — does not.
func TestDeliveryRequired(t *testing.T) {
	connected := true
	c := New(Config{
		RequireDelivery: true,
		Reachable:       func(src, dst int) bool { return connected },
	})
	send(c, 0, dataFrame(0, 1, 6, 1)) // never delivered
	rep := c.Finalize(time.Second)
	if rep.Undelivered != 1 || rep.UndeliveredExcused != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "undelivered") {
		t.Fatalf("err = %v", err)
	}

	// Same loss, but the topology is severed by the horizon: excused.
	connected = false
	rep = c.Finalize(time.Second)
	if rep.UndeliveredExcused != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}

	// Unreachable already at send time: excused even if later repaired.
	c2 := New(Config{
		RequireDelivery: true,
		Reachable:       func(src, dst int) bool { return false },
	})
	send(c2, 0, dataFrame(0, 1, 6, 2))
	rep = c2.Finalize(time.Second)
	if rep.UndeliveredExcused != 1 || rep.Err() != nil {
		t.Fatalf("report = %+v err = %v", rep, rep.Err())
	}
}

// TestConvergenceLossTolerated: without RequireDelivery a lost packet
// is reported but is not a violation.
func TestConvergenceLossTolerated(t *testing.T) {
	c := New(Config{})
	send(c, 0, dataFrame(0, 1, 6, 1))
	rep := c.Finalize(time.Second)
	if rep.Undelivered != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSequenceReuseStartsNewGeneration: a restarted daemon re-uses its
// sequence space; the checker must treat the re-originated key as a
// fresh packet, not a loop, and still account the superseded one.
func TestSequenceReuseStartsNewGeneration(t *testing.T) {
	c := New(Config{})
	send(c, 0, dataFrame(0, 1, 6, 1))
	deliver(c, 0, 1, dataFrame(0, 1, 5, 1)) // delivered

	send(c, 0, dataFrame(0, 1, 6, 1))       // same key, new generation
	deliver(c, 0, 1, dataFrame(0, 1, 5, 1)) // would be a loop if generations merged
	rep := c.Finalize(time.Second)
	if rep.Loops != 0 {
		t.Fatalf("loops = %d, want 0 (generation not reset)", rep.Loops)
	}
	if rep.Packets != 2 || rep.Delivered != 2 {
		t.Fatalf("report = %+v", rep)
	}

	// A superseded undelivered generation is folded into the totals.
	c2 := New(Config{})
	send(c2, 0, dataFrame(0, 1, 6, 5)) // lost
	send(c2, 0, dataFrame(0, 1, 6, 5)) // re-originated, also lost
	rep = c2.Finalize(time.Second)
	if rep.Packets != 2 || rep.Undelivered != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestForeignFramesIgnored: relay re-transmissions, unknown keys, and
// undecodable payloads must not register packets or crash.
func TestForeignFramesIgnored(t *testing.T) {
	c := New(Config{RequireDelivery: true})
	send(c, 1, dataFrame(0, 2, 6, 1))       // relay send: src != origin
	deliver(c, 1, 2, dataFrame(0, 2, 5, 1)) // delivery for unregistered key
	send(c, 0, []byte{})                    // undecodable
	send(c, 0, []byte{wire.ProtoControl, 1, 2, 3})
	deliver(c, 0, 1, []byte{wire.ProtoData, 0}) // truncated header
	rep := c.Finalize(time.Second)
	if rep.Packets != 0 {
		t.Fatalf("packets = %d, want 0", rep.Packets)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestViolationString smoke-tests the human renderings used in test
// failure output.
func TestViolationString(t *testing.T) {
	v := Violation{Kind: KindLoop, Origin: 1, Final: 2, Seq: 3, Node: 4, At: time.Second, Detail: "d"}
	s := v.String()
	for _, want := range []string{"loop", "1->2", "node 4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("%q missing %q", s, want)
		}
	}
	if KindStretch.String() != "stretch" || KindUndelivered.String() != "undelivered" {
		t.Fatal("kind strings")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Fatal("unknown kind string")
	}
}
