package linkmon

import (
	"time"

	"drsnet/internal/overload"
)

// Probe-retransmit budgeting. The adaptive RTO turns every silent
// peer into a retransmit source (each expiry sends a replacement
// probe under backoff), and a correlated failure storm fires those
// retransmits on every node at once. A Table can carry a token bucket
// that admits retransmits at a configured rate; the round-start probe
// is never budgeted — only the RTO-driven extras — so detection
// latency under normal operation is untouched.

// SetRetransmitBudget installs (or, with nil, removes) the probe
// retransmit token bucket. Not goroutine-safe; call under the owning
// protocol's lock, like every other Table method.
func (t *Table) SetRetransmitBudget(b *overload.Bucket) { t.retransmitBudget = b }

// AllowRetransmit spends one retransmit token, reporting false when
// the budget is exhausted. Without an installed budget every
// retransmit is admitted.
func (t *Table) AllowRetransmit(now time.Duration) bool {
	return t.retransmitBudget.Take(now)
}

// RetransmitTokens reports the tokens currently available (-1 when
// unbudgeted), for status gauges.
func (t *Table) RetransmitTokens(now time.Duration) float64 {
	return t.retransmitBudget.Tokens(now)
}
