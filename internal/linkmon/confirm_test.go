package linkmon

import (
	"testing"
	"time"
)

// These tests pin Table.Confirm's behaviour under the garbage the
// chaos corruption injector now generates: replies with mangled
// sequence numbers, duplicated replies, replies arriving after the
// link was declared down, and replies on out-of-range rails. The
// invariant: misses, pending state and the RTT estimate never go
// inconsistent — a bad reply changes nothing, a good reply resets the
// miss count and clears exactly its own probe.

func beginOne(t *testing.T, tbl *Table, peer, rail int) uint16 {
	t.Helper()
	seq, down := tbl.BeginProbe(peer, rail, 2)
	if down {
		t.Fatalf("unexpected down from BeginProbe(%d,%d)", peer, rail)
	}
	return seq
}

// TestConfirmRejectsCorruptedSeq: a reply whose sequence number was
// mangled in transit must not clear the outstanding probe or the miss
// count.
func TestConfirmRejectsCorruptedSeq(t *testing.T) {
	tbl := NewTable(3, 2)
	tbl.Add(1)
	seq := beginOne(t, tbl, 1, 0)
	if _, ok := tbl.Confirm(1, 0, seq^0x5aa5); ok {
		t.Fatal("corrupted seq confirmed")
	}
	st := tbl.State(1, 0)
	if !st.Pending || st.PendingSeq != seq {
		t.Fatalf("probe state disturbed by corrupted reply: %+v", st)
	}
	// The genuine reply still matches afterwards.
	if _, ok := tbl.Confirm(1, 0, seq); !ok {
		t.Fatal("genuine reply rejected after corrupted one")
	}
	if st.Pending || st.Misses != 0 {
		t.Fatalf("probe not cleanly confirmed: %+v", st)
	}
}

// TestConfirmRejectsDuplicate: the second copy of a reply (frame
// duplicated or replayed) is ignored.
func TestConfirmRejectsDuplicate(t *testing.T) {
	tbl := NewTable(3, 2)
	tbl.Add(1)
	seq := beginOne(t, tbl, 1, 0)
	if _, ok := tbl.Confirm(1, 0, seq); !ok {
		t.Fatal("first reply rejected")
	}
	if _, ok := tbl.Confirm(1, 0, seq); ok {
		t.Fatal("duplicate reply confirmed")
	}
}

// TestConfirmRejectsStaleAfterReprobe: a reply to probe N arriving
// after probe N+1 was armed is stale and must not clear probe N+1
// (it would hide a genuine miss).
func TestConfirmRejectsStaleAfterReprobe(t *testing.T) {
	tbl := NewTable(3, 2)
	tbl.Add(1)
	oldSeq := beginOne(t, tbl, 1, 0)
	// Second round: the unanswered probe counts one miss.
	newSeq, down := tbl.BeginProbe(1, 0, 2)
	if down {
		t.Fatal("down after a single miss with threshold 2")
	}
	st := tbl.State(1, 0)
	if st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", st.Misses)
	}
	if _, ok := tbl.Confirm(1, 0, oldSeq); ok {
		t.Fatal("stale reply confirmed")
	}
	if st.Misses != 1 || !st.Pending || st.PendingSeq != newSeq {
		t.Fatalf("stale reply disturbed state: %+v", st)
	}
}

// TestConfirmAfterLinkDeclaredDown: a reply that arrives after the
// miss threshold declared the link down still matches its outstanding
// probe (that is recovery evidence), resets the misses, and leaves
// the up/down decision to the caller.
func TestConfirmAfterLinkDeclaredDown(t *testing.T) {
	tbl := NewTable(3, 2)
	tbl.Add(1)
	beginOne(t, tbl, 1, 0)
	var seq uint16
	var down bool
	for i := 0; i < 2; i++ {
		seq, down = tbl.BeginProbe(1, 0, 2)
	}
	if !down {
		t.Fatal("threshold 2 not crossed after two silent rounds")
	}
	st := tbl.State(1, 0)
	st.Up = false // caller declares the link down
	got, ok := tbl.Confirm(1, 0, seq)
	if !ok || got != st {
		t.Fatal("late reply on a down link rejected")
	}
	if st.Misses != 0 || st.Pending {
		t.Fatalf("late reply did not reset probe state: %+v", st)
	}
	if st.Up {
		t.Fatal("Confirm flipped Up by itself — that decision belongs to the caller")
	}
}

// TestConfirmOutOfRange: replies claiming impossible peers or rails
// (corrupted headers) are rejected without panicking.
func TestConfirmOutOfRange(t *testing.T) {
	tbl := NewTable(3, 2)
	tbl.Add(1)
	for _, c := range []struct{ peer, rail int }{
		{1, -1}, {1, 2}, {-1, 0}, {7, 0}, {2, 0}, // peer 2 unmonitored
	} {
		if _, ok := tbl.Confirm(c.peer, c.rail, 1); ok {
			t.Errorf("Confirm(%d,%d) accepted", c.peer, c.rail)
		}
	}
}

// TestConfirmKeepsRTTMonotonicState: bad replies never add RTT
// samples; good ones do, and a negative sample (clock garbage from a
// corrupted timestamp) is discarded by ObserveRTT.
func TestConfirmKeepsRTTMonotonicState(t *testing.T) {
	tbl := NewTable(3, 2)
	tbl.Add(1)
	seq := beginOne(t, tbl, 1, 0)
	if _, ok := tbl.Confirm(1, 0, seq^1); ok {
		t.Fatal("bad reply accepted")
	}
	if _, ok := tbl.State(1, 0).RTT(); ok {
		t.Fatal("bad reply produced an RTT sample")
	}
	st, ok := tbl.Confirm(1, 0, seq)
	if !ok {
		t.Fatal("good reply rejected")
	}
	st.ObserveRTT(-time.Millisecond) // corrupted timestamp
	if _, ok := st.RTT(); ok {
		t.Fatal("negative RTT sample accepted")
	}
	st.ObserveRTT(2 * time.Millisecond)
	if rtt, ok := st.RTT(); !ok || rtt.SRTT != 2*time.Millisecond || rtt.Samples != 1 {
		t.Fatalf("RTT after one good sample: %+v, ok=%v", rtt, ok)
	}
}
