package linkmon

import (
	"fmt"
	"math"
	"time"
)

// Damping parameterizes RFC 2439-style route-flap damping for
// monitored paths. Each down transition charges the path a penalty;
// the penalty decays exponentially; while the decayed penalty sits at
// or above Suppress, a recovering path is held down (kept untrusted)
// instead of being re-trusted immediately, and it is released only
// once the penalty has decayed below Reuse. The hold-down grows with
// flap frequency (more flaps, more penalty, longer decay) but is
// capped by Max, so a path that genuinely stabilizes is always
// re-trusted eventually.
//
// The zero value disables damping entirely — the seed protocol's
// behaviour, which every existing golden pins.
type Damping struct {
	// Penalty is charged per down transition (default 1).
	Penalty float64
	// Suppress is the decayed-penalty figure of merit at or above
	// which a recovering path stays untrusted. Zero disables damping.
	Suppress float64
	// Reuse is the decayed penalty below which a held-down path is
	// re-trusted (default Suppress/2). Must be below Suppress — the
	// gap is the hysteresis that keeps a marginal path from oscillating
	// in and out of suppression.
	Reuse float64
	// HalfLife is the penalty's exponential decay half-life
	// (default 15 s).
	HalfLife time.Duration
	// Max caps the accumulated penalty (default 4×Suppress), bounding
	// the worst-case hold-down of even a permanently flapping path.
	Max float64
}

// Enabled reports whether damping is active.
func (d Damping) Enabled() bool { return d.Suppress > 0 }

// DefaultDamping returns a configuration tuned for the simulator's
// second-scale probe rounds: a path is held down after its third flap
// inside one half-life and released roughly one half-life after it
// stops flapping.
func DefaultDamping() Damping {
	return Damping{Penalty: 1, Suppress: 2.5, Reuse: 1, HalfLife: 15 * time.Second, Max: 10}
}

// Normalize applies defaults and checks consistency. A disabled
// configuration is always valid.
func (d *Damping) Normalize() error {
	if !d.Enabled() {
		if d.Suppress < 0 {
			return fmt.Errorf("linkmon: damping suppress threshold %v negative", d.Suppress)
		}
		return nil
	}
	if d.Penalty == 0 {
		d.Penalty = 1
	}
	if d.Reuse == 0 {
		d.Reuse = d.Suppress / 2
	}
	if d.HalfLife == 0 {
		d.HalfLife = 15 * time.Second
	}
	if d.Max == 0 {
		d.Max = 4 * d.Suppress
	}
	if d.Penalty <= 0 {
		return fmt.Errorf("linkmon: damping penalty %v must be positive", d.Penalty)
	}
	if d.HalfLife <= 0 {
		return fmt.Errorf("linkmon: damping half-life %v must be positive", d.HalfLife)
	}
	if d.Reuse <= 0 || d.Reuse >= d.Suppress {
		return fmt.Errorf("linkmon: damping reuse threshold %v outside (0, %v)", d.Reuse, d.Suppress)
	}
	if d.Max < d.Suppress {
		return fmt.Errorf("linkmon: damping penalty cap %v below suppress threshold %v", d.Max, d.Suppress)
	}
	return nil
}

// decayPenalty folds elapsed time into the path's penalty.
func (st *State) decayPenalty(cfg Damping, now time.Duration) {
	if now <= st.penaltyAt {
		return
	}
	if st.penalty > 0 {
		st.penalty *= math.Exp2(-float64(now-st.penaltyAt) / float64(cfg.HalfLife))
		if st.penalty < 1e-9 {
			st.penalty = 0
		}
	}
	st.penaltyAt = now
}

// RecordFlap counts one down transition and, when damping is enabled,
// charges the path's penalty (decayed to now first, capped at Max).
func (st *State) RecordFlap(cfg Damping, now time.Duration) {
	st.flaps++
	if !cfg.Enabled() {
		return
	}
	st.decayPenalty(cfg, now)
	st.penalty += cfg.Penalty
	if st.penalty > cfg.Max {
		st.penalty = cfg.Max
	}
}

// Suppressed reports whether a recovering path must stay untrusted:
// its decayed penalty has reached the suppress threshold.
func (st *State) Suppressed(cfg Damping, now time.Duration) bool {
	if !cfg.Enabled() {
		return false
	}
	st.decayPenalty(cfg, now)
	return st.penalty >= cfg.Suppress
}

// EnterDamped marks the path held down from now. Entering an already
// damped path is a no-op.
func (st *State) EnterDamped(now time.Duration) {
	if st.damped {
		return
	}
	st.damped = true
	st.dampedAt = now
}

// TryRelease exits the hold-down once the decayed penalty has fallen
// below the reuse threshold. It reports how long this spell lasted and
// whether release happened.
func (st *State) TryRelease(cfg Damping, now time.Duration) (held time.Duration, released bool) {
	if !st.damped {
		return 0, false
	}
	st.decayPenalty(cfg, now)
	if st.penalty >= cfg.Reuse {
		return 0, false
	}
	st.damped = false
	held = now - st.dampedAt
	st.dampedTotal += held
	return held, true
}

// Damped reports whether the path is currently held down.
func (st *State) Damped() bool { return st.damped }

// Flaps returns the number of down transitions recorded on the path.
func (st *State) Flaps() int64 { return st.flaps }

// Penalty returns the penalty decayed to now (read-only: the stored
// state is not modified, so telemetry reads don't disturb damping).
func (st *State) Penalty(cfg Damping, now time.Duration) float64 {
	p := st.penalty
	if cfg.Enabled() && now > st.penaltyAt && p > 0 {
		p *= math.Exp2(-float64(now-st.penaltyAt) / float64(cfg.HalfLife))
	}
	return p
}

// DampedFor returns the total time the path has spent held down,
// including the current spell.
func (st *State) DampedFor(now time.Duration) time.Duration {
	total := st.dampedTotal
	if st.damped {
		total += now - st.dampedAt
	}
	return total
}
