package linkmon

import (
	"testing"
	"time"
)

func enabledDamping(t *testing.T) Damping {
	t.Helper()
	cfg := DefaultDamping()
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestDampingDisabledIsInert: with the zero config a flapping path
// records flap counts but is never suppressed or damped.
func TestDampingDisabledIsInert(t *testing.T) {
	var cfg Damping
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Enabled() {
		t.Fatal("zero Damping enabled")
	}
	var st State
	for i := 0; i < 100; i++ {
		st.RecordFlap(cfg, time.Duration(i)*time.Second)
	}
	if st.Suppressed(cfg, 100*time.Second) {
		t.Fatal("disabled damping suppressed a path")
	}
	if st.Damped() {
		t.Fatal("disabled damping damped a path")
	}
	if st.Flaps() != 100 {
		t.Fatalf("Flaps = %d, want 100", st.Flaps())
	}
}

// TestDampingSuppressAfterRepeatedFlaps: rapid flaps accumulate
// penalty past the suppress threshold; a single flap does not.
func TestDampingSuppressAfterRepeatedFlaps(t *testing.T) {
	cfg := enabledDamping(t)
	var st State
	st.RecordFlap(cfg, 0)
	if st.Suppressed(cfg, 0) {
		t.Fatal("suppressed after one flap")
	}
	st.RecordFlap(cfg, time.Second)
	st.RecordFlap(cfg, 2*time.Second)
	if !st.Suppressed(cfg, 2*time.Second) {
		t.Fatalf("not suppressed after 3 rapid flaps (penalty %v, suppress %v)",
			st.Penalty(cfg, 2*time.Second), cfg.Suppress)
	}
}

// TestDampingDecayAndRelease: a held-down path is released once its
// penalty halves down below the reuse threshold, and the spell length
// is reported exactly once.
func TestDampingDecayAndRelease(t *testing.T) {
	cfg := enabledDamping(t)
	var st State
	at := time.Duration(0)
	for i := 0; i < 3; i++ {
		st.RecordFlap(cfg, at)
		at += time.Second
	}
	if !st.Suppressed(cfg, at) {
		t.Fatal("not suppressed")
	}
	st.EnterDamped(at)
	if !st.Damped() {
		t.Fatal("not damped after EnterDamped")
	}
	// Penalty ≈ 3 must fall below Reuse = 1: needs log2(3) ≈ 1.58
	// half-lives. One half-life is not enough...
	if _, released := st.TryRelease(cfg, at+cfg.HalfLife); released {
		t.Fatal("released after one half-life (penalty should still be ~1.5)")
	}
	// ...two is.
	held, released := st.TryRelease(cfg, at+2*cfg.HalfLife)
	if !released {
		t.Fatalf("not released after two half-lives (penalty %v)", st.Penalty(cfg, at+2*cfg.HalfLife))
	}
	if held != 2*cfg.HalfLife {
		t.Fatalf("held = %v, want %v", held, 2*cfg.HalfLife)
	}
	if st.DampedFor(at+2*cfg.HalfLife) != 2*cfg.HalfLife {
		t.Fatalf("DampedFor = %v", st.DampedFor(at+2*cfg.HalfLife))
	}
	// Second release is a no-op.
	if _, again := st.TryRelease(cfg, at+3*cfg.HalfLife); again {
		t.Fatal("released twice")
	}
}

// TestDampingPenaltyCap: a permanently flapping path's penalty is
// bounded by Max, so its worst-case hold-down is bounded too.
func TestDampingPenaltyCap(t *testing.T) {
	cfg := enabledDamping(t)
	var st State
	for i := 0; i < 1000; i++ {
		st.RecordFlap(cfg, time.Duration(i)*time.Millisecond)
	}
	if p := st.Penalty(cfg, time.Second); p > cfg.Max {
		t.Fatalf("penalty %v exceeds cap %v", p, cfg.Max)
	}
	// From the cap, release takes at most log2(Max/Reuse) half-lives.
	st.EnterDamped(time.Second)
	worst := time.Duration(5) * cfg.HalfLife // log2(10/1) ≈ 3.33 < 5
	if _, released := st.TryRelease(cfg, time.Second+worst); !released {
		t.Fatalf("capped path not released after %v", worst)
	}
}

// TestDampingNormalizeRejectsNonsense: precise validation of the
// tunable space.
func TestDampingNormalizeRejectsNonsense(t *testing.T) {
	bad := []Damping{
		{Suppress: -1},
		{Suppress: 2, Reuse: 2},               // reuse not below suppress
		{Suppress: 2, Reuse: 3},               // reuse above suppress
		{Suppress: 2, Reuse: -1},              // negative reuse... normalized? no: explicit
		{Suppress: 2, Penalty: -1},            // negative penalty
		{Suppress: 2, HalfLife: -time.Second}, // negative half-life
		{Suppress: 2, Max: 1},                 // cap below suppress
	}
	for _, cfg := range bad {
		c := cfg
		if err := c.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted", cfg)
		}
	}
	ok := Damping{Suppress: 2}
	if err := ok.Normalize(); err != nil {
		t.Fatalf("minimal enabled config rejected: %v", err)
	}
	if ok.Reuse != 1 || ok.Penalty != 1 || ok.HalfLife != 15*time.Second || ok.Max != 8 {
		t.Fatalf("defaults not applied: %+v", ok)
	}
}

// TestUsableSkipsDampedRails: Table route-selection helpers exclude
// held-down paths while FirstUp (physical state) still sees them.
func TestUsableSkipsDampedRails(t *testing.T) {
	tbl := NewTable(2, 2)
	tbl.Add(1)
	tbl.State(1, 0).EnterDamped(0)
	if !tbl.Usable(1, 1) || tbl.Usable(1, 0) {
		t.Fatal("Usable wrong")
	}
	if rail, ok := tbl.FirstUsable(1); !ok || rail != 1 {
		t.Fatalf("FirstUsable = %d,%v, want 1,true", rail, ok)
	}
	if rail, ok := tbl.FirstUp(1); !ok || rail != 0 {
		t.Fatalf("FirstUp = %d,%v, want 0,true (damped is still physically up)", rail, ok)
	}
	if !tbl.AnyUsable(1) {
		t.Fatal("AnyUsable = false with rail 1 clean")
	}
	tbl.State(1, 1).EnterDamped(0)
	if tbl.AnyUsable(1) {
		t.Fatal("AnyUsable = true with every rail damped")
	}
	if _, ok := tbl.FirstUsable(1); ok {
		t.Fatal("FirstUsable found a rail with every rail damped")
	}
}
