package linkmon

import "time"

// Deadlines tracks timeout-style liveness for every (peer, rail) path:
// an entry is alive while its expiry lies in the future and silent
// once it passes. Link-state adjacencies ("dead interval") and
// reactive routes ("route timeout") are both this shape.
type Deadlines struct {
	m [][]time.Duration // [peer][rail] expiry; zero = never heard
}

// NewDeadlines returns an all-silent matrix for nodes×rails.
func NewDeadlines(nodes, rails int) *Deadlines {
	d := &Deadlines{m: make([][]time.Duration, nodes)}
	for i := range d.m {
		d.m[i] = make([]time.Duration, rails)
	}
	return d
}

// Nodes returns the cluster size the matrix was created for.
func (d *Deadlines) Nodes() int { return len(d.m) }

// Refresh extends the (peer, rail) deadline to expiry and reports
// whether the path was dead at now (the transition edge protocols
// re-advertise on).
func (d *Deadlines) Refresh(peer, rail int, now, expiry time.Duration) (wasDead bool) {
	wasDead = d.m[peer][rail] <= now
	d.m[peer][rail] = expiry
	return wasDead
}

// Alive reports whether the (peer, rail) deadline lies beyond now.
func (d *Deadlines) Alive(peer, rail int, now time.Duration) bool {
	return d.m[peer][rail] > now
}

// AnyAlive reports whether any rail to peer is alive at now.
func (d *Deadlines) AnyAlive(peer int, now time.Duration) bool {
	for _, exp := range d.m[peer] {
		if exp > now {
			return true
		}
	}
	return false
}

// FirstAlive returns the lowest-numbered alive rail to peer at now.
func (d *Deadlines) FirstAlive(peer int, now time.Duration) (rail int, ok bool) {
	for rail, exp := range d.m[peer] {
		if exp > now {
			return rail, true
		}
	}
	return 0, false
}

// Sweep zeroes every entry that has expired by now — heard once but
// silent past its deadline — invoking expired for each in (peer, rail)
// order, and reports whether anything expired.
func (d *Deadlines) Sweep(now time.Duration, expired func(peer, rail int)) bool {
	any := false
	for peer := range d.m {
		for rail := range d.m[peer] {
			if exp := d.m[peer][rail]; exp != 0 && exp <= now {
				d.m[peer][rail] = 0
				any = true
				if expired != nil {
					expired(peer, rail)
				}
			}
		}
	}
	return any
}
