// Package linkmon provides the link-monitoring building blocks every
// protocol in this repository schedules its periodic work with:
//
//   - Rounds drives a periodic protocol round (the DRS probe round,
//     the link-state hello round, the reactive advertisement loop) and
//     can stagger a round's transmissions across the interval.
//   - Table tracks per-(peer, rail) probe state for request/reply
//     monitoring: outstanding probe sequence, consecutive misses,
//     up/down, and a Jacobson/Karels RTT estimate.
//   - Deadlines tracks per-(peer, rail) expiry times for
//     timeout-style monitoring: link-state adjacencies and reactive
//     routes are both "alive until silent too long".
//
// The package is deliberately free of wire formats and transports: it
// holds state and timing, the protocol decides what a probe is.
// Unless stated otherwise the types are not goroutine-safe; the
// owning protocol serializes access under its own lock.
package linkmon

import "drsnet/internal/clock"

// Clock abstracts time. It is the canonical seam from internal/clock
// (this package sits below routing, which aliases the same
// definition).
type Clock = clock.Clock
