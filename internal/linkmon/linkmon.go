// Package linkmon provides the link-monitoring building blocks every
// protocol in this repository schedules its periodic work with:
//
//   - Rounds drives a periodic protocol round (the DRS probe round,
//     the link-state hello round, the reactive advertisement loop) and
//     can stagger a round's transmissions across the interval.
//   - Table tracks per-(peer, rail) probe state for request/reply
//     monitoring: outstanding probe sequence, consecutive misses,
//     up/down, and a Jacobson/Karels RTT estimate.
//   - Deadlines tracks per-(peer, rail) expiry times for
//     timeout-style monitoring: link-state adjacencies and reactive
//     routes are both "alive until silent too long".
//
// The package is deliberately free of wire formats and transports: it
// holds state and timing, the protocol decides what a probe is.
// Unless stated otherwise the types are not goroutine-safe; the
// owning protocol serializes access under its own lock.
package linkmon

import "time"

// Clock abstracts time. It is structurally identical to routing.Clock
// (this package sits below routing and cannot import it).
type Clock interface {
	// Now returns the time elapsed since an arbitrary epoch.
	Now() time.Duration
	// AfterFunc schedules fn after d; the returned function cancels
	// the timer and reports whether it was still pending.
	AfterFunc(d time.Duration, fn func()) (cancel func() bool)
}
