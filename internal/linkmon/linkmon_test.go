package linkmon

import (
	"testing"
	"time"

	"drsnet/internal/simtime"
)

// simClock adapts the deterministic scheduler to the Clock interface
// (the same shape internal/netsim uses for protocol code).
type simClock struct{ s *simtime.Scheduler }

func (c simClock) Now() time.Duration { return c.s.Now().Duration() }

func (c simClock) AfterFunc(d time.Duration, fn func()) func() bool {
	t := c.s.After(d, fn)
	return t.Cancel
}

func TestRoundsPeriodAndStop(t *testing.T) {
	s := simtime.NewScheduler()
	r := NewRounds(simClock{s})
	var fired []time.Duration
	r.Run(time.Second, func() { fired = append(fired, s.Now().Duration()) })
	s.RunUntil(simtime.Time(3500 * time.Millisecond))
	if len(fired) != 4 { // t=0s,1s,2s,3s
		t.Fatalf("fired %d times: %v", len(fired), fired)
	}
	for i, at := range fired {
		if want := time.Duration(i) * time.Second; at != want {
			t.Fatalf("round %d at %v, want %v", i, at, want)
		}
	}
	r.Stop()
	if !r.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	s.RunUntil(simtime.Time(10 * time.Second))
	if len(fired) != 4 {
		t.Fatalf("rounds kept firing after Stop: %d", len(fired))
	}
}

func TestStaggerSpreadsSends(t *testing.T) {
	s := simtime.NewScheduler()
	r := NewRounds(simClock{s})
	type send struct {
		i  int
		at time.Duration
	}
	var sends []send
	r.Stagger(time.Second, 4, func(i int) {
		sends = append(sends, send{i, s.Now().Duration()})
	})
	// send(0) runs inline, before any event executes.
	if len(sends) != 1 || sends[0] != (send{0, 0}) {
		t.Fatalf("inline send = %v", sends)
	}
	s.RunUntil(simtime.Time(time.Second))
	if len(sends) != 4 {
		t.Fatalf("sends = %v", sends)
	}
	for i, got := range sends {
		want := send{i, time.Duration(i) * 250 * time.Millisecond}
		if got != want {
			t.Fatalf("send %d = %v, want %v", i, got, want)
		}
	}
}

func TestStaggerSkipsAfterStop(t *testing.T) {
	s := simtime.NewScheduler()
	r := NewRounds(simClock{s})
	var count int
	r.Stagger(time.Second, 4, func(int) { count++ })
	s.RunUntil(simtime.Time(300 * time.Millisecond)) // send 0 and 1
	r.Stop()
	s.RunUntil(simtime.Time(2 * time.Second))
	if count != 2 {
		t.Fatalf("sends after stop: count = %d, want 2", count)
	}
}

func TestTableProbeLifecycle(t *testing.T) {
	tbl := NewTable(4, 2)
	if tbl.Monitored(1) {
		t.Fatal("peer 1 monitored before Add")
	}
	if !tbl.Add(1) || tbl.Add(1) {
		t.Fatal("Add should succeed once")
	}
	if !tbl.AnyUp(1) {
		t.Fatal("links should start optimistically up")
	}

	// First probe: no miss (nothing pending yet).
	seq, down := tbl.BeginProbe(1, 0, 2)
	if down {
		t.Fatal("down on first probe")
	}
	// Reply confirms it; miss count clears.
	st, ok := tbl.Confirm(1, 0, seq)
	if !ok || st.Misses != 0 || st.Pending {
		t.Fatalf("confirm: ok=%v st=%+v", ok, st)
	}
	// A stale sequence is rejected.
	if _, ok := tbl.Confirm(1, 0, seq); ok {
		t.Fatal("stale reply accepted")
	}

	// Two unanswered rounds cross threshold 2.
	if _, down := tbl.BeginProbe(1, 0, 2); down {
		t.Fatal("down after zero misses")
	}
	if _, down := tbl.BeginProbe(1, 0, 2); down {
		t.Fatal("down after one miss")
	}
	if _, down := tbl.BeginProbe(1, 0, 2); !down {
		t.Fatal("not down after two misses")
	}
	tbl.State(1, 0).Up = false
	if rail, ok := tbl.FirstUp(1); !ok || rail != 1 || !tbl.AnyUp(1) {
		t.Fatalf("FirstUp = %d,%v after rail 0 down", rail, ok)
	}

	tbl.Remove(1)
	if tbl.Monitored(1) || tbl.AnyUp(1) || tbl.State(1, 0) != nil {
		t.Fatal("peer survives Remove")
	}
}

func TestTableSeqSharedAndWraps(t *testing.T) {
	tbl := NewTable(3, 2)
	tbl.Add(1)
	tbl.Add(2)
	s1, _ := tbl.BeginProbe(1, 0, 2)
	s2, _ := tbl.BeginProbe(2, 1, 2)
	if s1 == s2 {
		t.Fatalf("probes share sequence %d", s1)
	}
	tbl.SetSeq(0xffff)
	s3, _ := tbl.BeginProbe(1, 1, 2)
	if s3 != 0 {
		t.Fatalf("wrapped seq = %d, want 0", s3)
	}
	if _, ok := tbl.Confirm(1, 1, 0); !ok {
		t.Fatal("wrapped probe not confirmable")
	}
}

func TestObserveRTTSmoothing(t *testing.T) {
	var st State
	st.ObserveRTT(-time.Millisecond) // negative samples ignored
	if _, ok := st.RTT(); ok {
		t.Fatal("negative sample recorded")
	}
	st.ObserveRTT(8 * time.Millisecond)
	stats, ok := st.RTT()
	if !ok || stats.SRTT != 8*time.Millisecond || stats.RTTVar != 4*time.Millisecond {
		t.Fatalf("first sample: %+v ok=%v", stats, ok)
	}
	// Second sample of 16 ms: srtt += (16-8)/8 = 9 ms,
	// rttvar += (8-4)/4 = 5 ms.
	st.ObserveRTT(16 * time.Millisecond)
	stats, _ = st.RTT()
	if stats.SRTT != 9*time.Millisecond || stats.RTTVar != 5*time.Millisecond {
		t.Fatalf("second sample: %+v", stats)
	}
	if stats.Samples != 2 {
		t.Fatalf("samples = %d", stats.Samples)
	}
	if srtt, n := st.SRTT(); srtt != 9*time.Millisecond || n != 2 {
		t.Fatalf("SRTT() = %v, %d", srtt, n)
	}
}

func TestDeadlines(t *testing.T) {
	d := NewDeadlines(3, 2)
	now := time.Second
	if d.AnyAlive(1, now) {
		t.Fatal("alive before any refresh")
	}
	if !d.Refresh(1, 0, now, now+4*time.Second) {
		t.Fatal("first refresh should report a dead->alive edge")
	}
	if d.Refresh(1, 0, now+time.Second, now+5*time.Second) {
		t.Fatal("refresh of a live path reported an edge")
	}
	if !d.Alive(1, 0, now) || d.Alive(1, 1, now) {
		t.Fatal("per-rail aliveness wrong")
	}
	if rail, ok := d.FirstAlive(1, now); !ok || rail != 0 {
		t.Fatalf("FirstAlive = %d,%v", rail, ok)
	}

	// Sweep at the deadline: the entry expires exactly once.
	var expired [][2]int
	if !d.Sweep(now+5*time.Second, func(p, r int) { expired = append(expired, [2]int{p, r}) }) {
		t.Fatal("sweep found nothing")
	}
	if len(expired) != 1 || expired[0] != [2]int{1, 0} {
		t.Fatalf("expired = %v", expired)
	}
	if d.Sweep(now+6*time.Second, nil) {
		t.Fatal("second sweep re-expired a zeroed entry")
	}
	if d.AnyAlive(1, now+5*time.Second) {
		t.Fatal("alive after expiry")
	}
}
