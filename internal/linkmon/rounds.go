package linkmon

import (
	"sync"
	"time"
)

// Rounds drives one periodic protocol round. The body runs first
// inline (from Run) and then once per interval; rescheduling happens
// after the body returns, so under a deterministic scheduler every
// send a round makes is ordered before the timer that starts the next
// round — the property the byte-identical simulation goldens pin.
//
// Rounds is safe for concurrent use; the body itself runs outside any
// Rounds lock.
type Rounds struct {
	clock Clock

	mu      sync.Mutex
	stopped bool
	cancel  func() bool
}

// NewRounds returns a stopped-free round driver on clock.
func NewRounds(clock Clock) *Rounds {
	return &Rounds{clock: clock}
}

// Run executes body now and then every interval until Stop. Call it
// once, from the protocol's Start.
func (r *Rounds) Run(interval time.Duration, body func()) {
	r.tick(interval, body)
}

func (r *Rounds) tick(interval time.Duration, body func()) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	body()

	r.mu.Lock()
	if !r.stopped {
		r.cancel = r.clock.AfterFunc(interval, func() { r.tick(interval, body) })
	}
	r.mu.Unlock()
}

// Stagger spreads a round's n transmissions evenly across interval:
// send(0) runs inline, send(i) fires at i·(interval/n). Sends coming
// due after Stop are skipped. With n ≤ 1 everything runs inline.
func (r *Rounds) Stagger(interval time.Duration, n int, send func(i int)) {
	if n <= 0 {
		return
	}
	send(0)
	if n == 1 {
		return
	}
	step := interval / time.Duration(n)
	for i := 1; i < n; i++ {
		i := i
		r.clock.AfterFunc(time.Duration(i)*step, func() {
			r.mu.Lock()
			stopped := r.stopped
			r.mu.Unlock()
			if !stopped {
				send(i)
			}
		})
	}
}

// Stop halts the loop: the pending timer is canceled and any timer
// that already fired becomes a no-op.
func (r *Rounds) Stop() {
	r.mu.Lock()
	r.stopped = true
	cancel := r.cancel
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Stopped reports whether Stop has been called.
func (r *Rounds) Stopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}
