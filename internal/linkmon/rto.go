package linkmon

import (
	"fmt"
	"time"
)

// RTO configures Jacobson/Karels-style adaptive probe deadlines. The
// classic daemon waits a full probe interval before counting a miss;
// with an RTO enabled the monitor arms a per-probe timer at
// srtt + 4·rttvar (clamped to [Min, Max]) and counts the miss the
// moment it expires, retransmitting with exponential backoff. The
// zero value disables the feature entirely, which keeps seeded runs
// byte-identical with the fixed-deadline behavior.
type RTO struct {
	// Min floors the computed deadline so one fast sample cannot arm
	// a hair-trigger timer. Zero means DefaultRTOMin.
	Min time.Duration
	// Max caps the base deadline and is the deadline used before the
	// first RTT sample (conservative: a cold path can never fire a
	// false link-down). Zero disables adaptive deadlines.
	Max time.Duration
	// MaxBackoff caps the exponential backoff: after k consecutive
	// unanswered probes the deadline is doubled min(k, MaxBackoff)
	// times. Zero means DefaultRTOBackoff.
	MaxBackoff int
}

// Defaults for an enabled RTO with unset fields.
const (
	DefaultRTOMin     = 50 * time.Millisecond
	DefaultRTOMax     = time.Second
	DefaultRTOBackoff = 3
)

// DefaultRTO returns the stock adaptive-deadline configuration.
func DefaultRTO() RTO {
	return RTO{Min: DefaultRTOMin, Max: DefaultRTOMax, MaxBackoff: DefaultRTOBackoff}
}

// Enabled reports whether adaptive deadlines are on.
func (r RTO) Enabled() bool { return r.Max != 0 }

// Normalize applies defaults and validates the configuration. The
// zero value (disabled) is valid; a disabled RTO with stray fields is
// rejected so a typo cannot silently turn the feature off.
func (r *RTO) Normalize() error {
	if !r.Enabled() {
		if r.Min != 0 || r.MaxBackoff != 0 {
			return fmt.Errorf("linkmon: adaptive RTO fields set without a max deadline")
		}
		return nil
	}
	if r.Max < 0 {
		return fmt.Errorf("linkmon: negative RTO max %v", r.Max)
	}
	if r.Min < 0 {
		return fmt.Errorf("linkmon: negative RTO min %v", r.Min)
	}
	if r.Min == 0 {
		r.Min = DefaultRTOMin
	}
	if r.Min > r.Max {
		return fmt.Errorf("linkmon: RTO min %v above max %v", r.Min, r.Max)
	}
	if r.MaxBackoff == 0 {
		r.MaxBackoff = DefaultRTOBackoff
	}
	if r.MaxBackoff < 0 || r.MaxBackoff > 16 {
		return fmt.Errorf("linkmon: RTO backoff cap %d outside [1,16]", r.MaxBackoff)
	}
	return nil
}

// Deadline returns the adaptive deadline for the next probe on this
// path: srtt + 4·rttvar clamped to [Min, Max], doubled once per
// consecutive miss up to the backoff cap. Before the first RTT sample
// the base deadline is Max.
func (st *State) Deadline(cfg RTO) time.Duration {
	d := cfg.Max
	if st.samples > 0 {
		d = st.srtt + 4*st.rttvar
		if d < cfg.Min {
			d = cfg.Min
		}
		if d > cfg.Max {
			d = cfg.Max
		}
	}
	shift := st.backoff
	if shift > cfg.MaxBackoff {
		shift = cfg.MaxBackoff
	}
	return d << shift
}

// RecordRTOMiss notes one more consecutive unanswered probe, growing
// the backoff. Confirm resets it.
func (st *State) RecordRTOMiss() { st.backoff++ }

// Backoff returns the consecutive-miss backoff count (testing hook).
func (st *State) Backoff() int { return st.backoff }

// SeedRTT restores a checkpointed RTT estimate so a warm-started
// daemon begins with its previous life's deadlines instead of the
// conservative Max. Non-positive sample counts and negative durations
// are ignored.
func (st *State) SeedRTT(srtt, rttvar time.Duration, samples int64) {
	if samples <= 0 || srtt < 0 || rttvar < 0 {
		return
	}
	st.srtt, st.rttvar, st.samples = srtt, rttvar, samples
}
