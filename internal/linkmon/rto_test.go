package linkmon

import (
	"testing"
	"time"
)

func TestRTONormalize(t *testing.T) {
	cases := []struct {
		name string
		in   RTO
		want RTO
		ok   bool
	}{
		{"zero value disabled", RTO{}, RTO{}, true},
		{"defaults", DefaultRTO(), DefaultRTO(), true},
		{"min defaulted", RTO{Max: time.Second},
			RTO{Min: DefaultRTOMin, Max: time.Second, MaxBackoff: DefaultRTOBackoff}, true},
		{"stray min without max", RTO{Min: time.Millisecond}, RTO{}, false},
		{"stray backoff without max", RTO{MaxBackoff: 2}, RTO{}, false},
		{"negative max", RTO{Max: -time.Second}, RTO{}, false},
		{"negative min", RTO{Min: -time.Millisecond, Max: time.Second}, RTO{}, false},
		{"min above max", RTO{Min: 2 * time.Second, Max: time.Second}, RTO{}, false},
		{"backoff out of range", RTO{Max: time.Second, MaxBackoff: 17}, RTO{}, false},
	}
	for _, tc := range cases {
		got := tc.in
		err := got.Normalize()
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("%s: normalized = %+v, want %+v", tc.name, got, tc.want)
		}
	}
	if (RTO{}).Enabled() {
		t.Error("zero RTO reports enabled")
	}
	if !DefaultRTO().Enabled() {
		t.Error("default RTO reports disabled")
	}
}

// TestRTODeadlineColdPath: before any RTT sample the deadline is Max —
// the conservative choice that can never fire a false link-down on an
// unmeasured path.
func TestRTODeadlineColdPath(t *testing.T) {
	cfg := DefaultRTO()
	var st State
	if d := st.Deadline(cfg); d != cfg.Max {
		t.Fatalf("cold deadline = %v, want %v", d, cfg.Max)
	}
}

// TestRTODeadlineTracksRTT: with samples the deadline follows
// srtt + 4·rttvar, clamped to [Min, Max].
func TestRTODeadlineTracksRTT(t *testing.T) {
	cfg := DefaultRTO()
	var st State
	st.ObserveRTT(10 * time.Millisecond) // srtt=10ms, rttvar=5ms: 30ms < Min
	if d := st.Deadline(cfg); d != cfg.Min {
		t.Fatalf("deadline = %v, want floor %v", d, cfg.Min)
	}
	// Push srtt high enough that the cap engages.
	for i := 0; i < 64; i++ {
		st.ObserveRTT(5 * time.Second)
	}
	if d := st.Deadline(cfg); d != cfg.Max {
		t.Fatalf("deadline = %v, want cap %v", d, cfg.Max)
	}
	// Between the bounds the formula applies exactly.
	st = State{}
	st.ObserveRTT(100 * time.Millisecond) // srtt=100ms rttvar=50ms
	if d, want := st.Deadline(cfg), 300*time.Millisecond; d != want {
		t.Fatalf("deadline = %v, want srtt+4·rttvar = %v", d, want)
	}
}

// TestRTOBackoffDoublesAndCaps: each recorded miss doubles the
// deadline, up to MaxBackoff doublings; a confirmed reply resets it.
func TestRTOBackoffDoublesAndCaps(t *testing.T) {
	cfg := RTO{Min: 50 * time.Millisecond, Max: 200 * time.Millisecond, MaxBackoff: 3}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	tab := NewTable(2, 1)
	tab.Add(1)
	st := tab.State(1, 0)
	st.ObserveRTT(100 * time.Millisecond) // base = min(100+200, Max) = 200ms
	base := st.Deadline(cfg)
	if base != cfg.Max {
		t.Fatalf("base deadline = %v, want %v", base, cfg.Max)
	}
	for miss, want := range []time.Duration{2 * base, 4 * base, 8 * base, 8 * base, 8 * base} {
		st.RecordRTOMiss()
		if d := st.Deadline(cfg); d != want {
			t.Fatalf("after %d misses deadline = %v, want %v", miss+1, d, want)
		}
	}
	if st.Backoff() != 5 {
		t.Fatalf("backoff = %d, want 5", st.Backoff())
	}
	// A confirmed probe clears the backoff along with the miss count.
	seq, _ := tab.BeginProbe(1, 0, 2)
	if _, ok := tab.Confirm(1, 0, seq); !ok {
		t.Fatal("confirm rejected the matching reply")
	}
	if st.Backoff() != 0 {
		t.Fatalf("backoff = %d after Confirm, want 0", st.Backoff())
	}
	if d := st.Deadline(cfg); d != base {
		t.Fatalf("deadline = %v after Confirm, want %v", d, base)
	}
}

// TestSeedRTT: a checkpointed estimate restores the deadline of the
// previous life; garbage inputs are ignored.
func TestSeedRTT(t *testing.T) {
	cfg := DefaultRTO()
	var st State
	st.SeedRTT(100*time.Millisecond, 50*time.Millisecond, 9)
	stats, ok := st.RTT()
	if !ok || stats.SRTT != 100*time.Millisecond || stats.RTTVar != 50*time.Millisecond || stats.Samples != 9 {
		t.Fatalf("seeded stats = %+v ok=%v", stats, ok)
	}
	if d, want := st.Deadline(cfg), 300*time.Millisecond; d != want {
		t.Fatalf("seeded deadline = %v, want %v", d, want)
	}
	var fresh State
	fresh.SeedRTT(-time.Millisecond, 0, 5)
	if _, ok := fresh.RTT(); ok {
		t.Fatal("negative srtt seeded")
	}
	fresh.SeedRTT(time.Millisecond, time.Millisecond, 0)
	if _, ok := fresh.RTT(); ok {
		t.Fatal("zero-sample seed accepted")
	}
}
