package linkmon

import (
	"time"

	"drsnet/internal/overload"
)

// RTTStats is the smoothed round-trip estimate of one monitored path.
type RTTStats struct {
	// SRTT is the smoothed round-trip time; RTTVar its mean deviation.
	SRTT, RTTVar time.Duration
	// Samples is the number of probe round trips measured.
	Samples int64
}

// State tracks request/reply monitoring of one (peer, rail) path.
type State struct {
	// Up is the declared link state. Links start optimistically up:
	// the deployed daemon assumes health until a check fails.
	Up bool
	// Misses counts consecutive unanswered probes.
	Misses int
	// Pending marks an outstanding probe; PendingSeq identifies it.
	Pending    bool
	PendingSeq uint16

	// RTT estimation (Jacobson/Karels) from probe timestamps.
	srtt    time.Duration
	rttvar  time.Duration
	samples int64

	// backoff counts consecutive adaptive-RTO misses (see rto.go);
	// each doubles the next probe deadline up to the configured cap.
	backoff int

	// Route-flap damping bookkeeping (see damping.go). Inert unless
	// the owner records flaps with an enabled Damping config.
	penalty     float64
	penaltyAt   time.Duration
	damped      bool
	dampedAt    time.Duration
	dampedTotal time.Duration
	flaps       int64
}

// ObserveRTT folds one probe round-trip sample into the smoothed
// estimate: srtt ← srtt + (rtt−srtt)/8, rttvar ← rttvar + (|err|−rttvar)/4.
func (st *State) ObserveRTT(rtt time.Duration) {
	if rtt < 0 {
		return
	}
	st.samples++
	if st.samples == 1 {
		st.srtt = rtt
		st.rttvar = rtt / 2
		return
	}
	err := rtt - st.srtt
	if err < 0 {
		err = -err
	}
	st.srtt += (rtt - st.srtt) / 8
	st.rttvar += (err - st.rttvar) / 4
}

// RTT returns the smoothed estimate; ok is false before the first
// sample.
func (st *State) RTT() (RTTStats, bool) {
	if st.samples == 0 {
		return RTTStats{}, false
	}
	return RTTStats{SRTT: st.srtt, RTTVar: st.rttvar, Samples: st.samples}, true
}

// SRTT returns the smoothed round-trip time (zero before the first
// sample) and the sample count, for steering decisions.
func (st *State) SRTT() (time.Duration, int64) { return st.srtt, st.samples }

// Table tracks probe state for every monitored (peer, rail) path and
// allocates probe sequence numbers from one shared counter.
type Table struct {
	rails int
	links [][]State // nil row = unmonitored peer
	seq   uint16
	// retransmitBudget, when non-nil, rate-limits RTO-driven probe
	// retransmits (see budget.go). Nil means unbudgeted.
	retransmitBudget *overload.Bucket
}

// NewTable returns a table for a cluster of nodes×rails with no peer
// monitored yet.
func NewTable(nodes, rails int) *Table {
	return &Table{rails: rails, links: make([][]State, nodes)}
}

// Nodes returns the cluster size the table was created for.
func (t *Table) Nodes() int { return len(t.links) }

// Rails returns the rail count.
func (t *Table) Rails() int { return t.rails }

// Add begins monitoring peer with every rail optimistically up; it
// reports false if the peer was already monitored.
func (t *Table) Add(peer int) bool {
	if t.links[peer] != nil {
		return false
	}
	t.links[peer] = make([]State, t.rails)
	for r := range t.links[peer] {
		t.links[peer][r] = State{Up: true}
	}
	return true
}

// Remove forgets peer entirely.
func (t *Table) Remove(peer int) { t.links[peer] = nil }

// Monitored reports whether peer is currently monitored.
func (t *Table) Monitored(peer int) bool {
	return peer >= 0 && peer < len(t.links) && t.links[peer] != nil
}

// State returns the mutable state of the (peer, rail) path, or nil
// when the peer is unmonitored or the rail out of range.
func (t *Table) State(peer, rail int) *State {
	if !t.Monitored(peer) || rail < 0 || rail >= t.rails {
		return nil
	}
	return &t.links[peer][rail]
}

// AnyUp reports whether any rail to peer is up.
func (t *Table) AnyUp(peer int) bool {
	if !t.Monitored(peer) {
		return false
	}
	for rail := range t.links[peer] {
		if t.links[peer][rail].Up {
			return true
		}
	}
	return false
}

// FirstUp returns the lowest-numbered up rail to peer.
func (t *Table) FirstUp(peer int) (rail int, ok bool) {
	if !t.Monitored(peer) {
		return 0, false
	}
	for rail := range t.links[peer] {
		if t.links[peer][rail].Up {
			return rail, true
		}
	}
	return 0, false
}

// Usable reports whether the (peer, rail) path is up AND not held
// down by flap damping — the paths route selection may trust. With
// damping disabled it is identical to the Up flag.
func (t *Table) Usable(peer, rail int) bool {
	st := t.State(peer, rail)
	return st != nil && st.Up && !st.damped
}

// AnyUsable reports whether any rail to peer is usable.
func (t *Table) AnyUsable(peer int) bool {
	if !t.Monitored(peer) {
		return false
	}
	for rail := range t.links[peer] {
		st := &t.links[peer][rail]
		if st.Up && !st.damped {
			return true
		}
	}
	return false
}

// FirstUsable returns the lowest-numbered usable rail to peer.
func (t *Table) FirstUsable(peer int) (rail int, ok bool) {
	if !t.Monitored(peer) {
		return 0, false
	}
	for rail := range t.links[peer] {
		st := &t.links[peer][rail]
		if st.Up && !st.damped {
			return rail, true
		}
	}
	return 0, false
}

// BeginProbe arms the next probe for (peer, rail): a still-pending
// previous probe counts as a miss, and down reports that the miss just
// crossed threshold on an up link (the caller declares the link down).
// The returned sequence number comes from the table-wide counter, so
// no two outstanding probes share one.
func (t *Table) BeginProbe(peer, rail, threshold int) (seq uint16, down bool) {
	st := &t.links[peer][rail]
	if st.Pending {
		st.Misses++
		down = st.Up && st.Misses >= threshold
	}
	t.seq++
	st.Pending = true
	st.PendingSeq = t.seq
	return t.seq, down
}

// Confirm matches an echo reply against the outstanding probe for
// (peer, rail): on a match it clears the probe and the miss count and
// returns the state for RTT accounting. A stale or unsolicited reply
// returns ok=false.
func (t *Table) Confirm(peer, rail int, seq uint16) (st *State, ok bool) {
	st = t.State(peer, rail)
	if st == nil || !st.Pending || st.PendingSeq != seq {
		return nil, false
	}
	st.Pending = false
	st.Misses = 0
	st.backoff = 0
	return st, true
}

// Seq exposes the probe sequence counter (testing hook).
func (t *Table) Seq() uint16 { return t.seq }

// SetSeq overrides the probe sequence counter (testing hook for
// wraparound coverage).
func (t *Table) SetSeq(seq uint16) { t.seq = seq }
