// Package metrics provides lightweight named counters shared by the
// protocol daemons and the simulation harness. Counters are safe for
// concurrent use so the same daemon code can run over the
// single-threaded simulator or over real UDP sockets.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically adjustable int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Set is a registry of counters keyed by name.
type Set struct {
	mu sync.Mutex
	m  map[string]*Counter
}

// NewSet returns an empty registry.
func NewSet() *Set { return &Set{m: make(map[string]*Counter)} }

// Counter returns the counter with the given name, creating it on
// first use. The returned pointer is stable: callers may cache it.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.m[name]
	if !ok {
		c = &Counter{}
		s.m[name] = c
	}
	return c
}

// Snapshot returns the current value of every counter.
func (s *Set) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.m))
	for name, c := range s.m {
		out[name] = c.Value()
	}
	return out
}

// Names returns the registered counter names in sorted order.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for name := range s.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
