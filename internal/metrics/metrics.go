// Package metrics provides lightweight named counters shared by the
// protocol daemons and the simulation harness. Counters are safe for
// concurrent use so the same daemon code can run over the
// single-threaded simulator or over real UDP sockets.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically adjustable int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins int64 — wall times, worker counts and
// other point-in-time measurements the sweep engine records.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Set is a registry of counters and gauges keyed by name. Counters and
// gauges live in separate namespaces: the same name may be used for
// one of each.
type Set struct {
	mu sync.Mutex
	m  map[string]*Counter
	g  map[string]*Gauge
}

// NewSet returns an empty registry.
func NewSet() *Set {
	return &Set{m: make(map[string]*Counter), g: make(map[string]*Gauge)}
}

// Counter returns the counter with the given name, creating it on
// first use. The returned pointer is stable: callers may cache it.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.m[name]
	if !ok {
		c = &Counter{}
		s.m[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first
// use. The returned pointer is stable: callers may cache it.
func (s *Set) Gauge(name string) *Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.g == nil {
		s.g = make(map[string]*Gauge)
	}
	g, ok := s.g[name]
	if !ok {
		g = &Gauge{}
		s.g[name] = g
	}
	return g
}

// GaugeSnapshot returns the current value of every gauge.
func (s *Set) GaugeSnapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.g))
	for name, g := range s.g {
		out[name] = g.Value()
	}
	return out
}

// Snapshot returns the current value of every counter.
func (s *Set) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.m))
	for name, c := range s.m {
		out[name] = c.Value()
	}
	return out
}

// Names returns the registered counter names in sorted order.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for name := range s.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
