package metrics

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	s := NewSet()
	c := s.Counter("probes")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	if s.Counter("probes") != c {
		t.Fatal("counter pointer not stable")
	}
}

func TestSnapshotAndNames(t *testing.T) {
	s := NewSet()
	s.Counter("b").Add(2)
	s.Counter("a").Add(1)
	snap := s.Snapshot()
	if snap["a"] != 1 || snap["b"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestGaugeBasics(t *testing.T) {
	s := NewSet()
	g := s.Gauge("sweep.figure2.wall_ns")
	g.Set(1234)
	if g.Value() != 1234 {
		t.Fatalf("value = %d", g.Value())
	}
	g.Set(42) // last value wins
	if g.Value() != 42 {
		t.Fatalf("value = %d", g.Value())
	}
	if s.Gauge("sweep.figure2.wall_ns") != g {
		t.Fatal("gauge pointer not stable")
	}
	snap := s.GaugeSnapshot()
	if snap["sweep.figure2.wall_ns"] != 42 {
		t.Fatalf("gauge snapshot = %v", snap)
	}
	// Counters and gauges are separate namespaces.
	s.Counter("sweep.figure2.wall_ns").Add(7)
	if g.Value() != 42 {
		t.Fatal("counter bled into gauge")
	}
}

func TestGaugeConcurrent(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Gauge("y").Set(int64(w))
			}
		}()
	}
	wg.Wait()
	if got := s.Gauge("y").Value(); got < 0 || got > 7 {
		t.Fatalf("value = %d", got)
	}
}

func TestConcurrent(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Counter("x").Inc()
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("x").Value(); got != 8000 {
		t.Fatalf("value = %d", got)
	}
}
