package metrics

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	s := NewSet()
	c := s.Counter("probes")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	if s.Counter("probes") != c {
		t.Fatal("counter pointer not stable")
	}
}

func TestSnapshotAndNames(t *testing.T) {
	s := NewSet()
	s.Counter("b").Add(2)
	s.Counter("a").Add(1)
	snap := s.Snapshot()
	if snap["a"] != 1 || snap["b"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestConcurrent(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Counter("x").Inc()
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("x").Value(); got != 8000 {
		t.Fatalf("value = %d", got)
	}
}
