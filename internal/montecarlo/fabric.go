package montecarlo

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"drsnet/internal/conn"
	"drsnet/internal/rng"
	"drsnet/internal/stats"
	"drsnet/internal/topology"
)

// FabricConfig describes one Monte Carlo estimation over a general
// switched fabric, where Equation 1's closed form does not apply.
// Exactly one failure model must be selected:
//
//   - Failures > 0 draws exactly that many failed components uniformly
//     at random per scenario (the paper's fixed-f model);
//   - Q > 0 fails each component independently with probability Q (the
//     steady-state IID model used by the availability extension).
type FabricConfig struct {
	// Fabric is the system under test.
	Fabric *topology.Fabric

	// Failures is the exact number of failed components per scenario
	// (fixed-f model). Zero selects the Q model instead.
	Failures int

	// Q is the independent per-component failure probability
	// (IID model). Zero selects the fixed-f model instead.
	Q float64

	// Iterations is the number of random scenarios to draw.
	Iterations int64

	// Seed selects the random stream. The same FabricConfig always
	// produces the same FabricResult regardless of worker count.
	Seed uint64

	// Workers is the number of concurrent estimator goroutines;
	// 0 means GOMAXPROCS.
	Workers int

	// PairA, PairB designate the monitored pair (defaults 0 and 1).
	PairA, PairB int

	// AllPairs, if set, scores a scenario as a success only when every
	// pair of hosts can communicate.
	AllPairs bool
}

func (c *FabricConfig) normalize() error {
	if c.Fabric == nil {
		return fmt.Errorf("montecarlo: Fabric not set")
	}
	if err := c.Fabric.Validate(); err != nil {
		return err
	}
	m := c.Fabric.Components()
	switch {
	case c.Failures > 0 && c.Q > 0:
		return fmt.Errorf("montecarlo: set Failures or Q, not both")
	case c.Failures == 0 && c.Q == 0:
		return fmt.Errorf("montecarlo: set Failures (fixed-f) or Q (IID)")
	case c.Failures < 0 || c.Failures > m:
		return fmt.Errorf("montecarlo: failures=%d outside [0,%d]", c.Failures, m)
	case c.Q < 0 || c.Q >= 1:
		return fmt.Errorf("montecarlo: q=%v outside [0,1)", c.Q)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("montecarlo: iterations must be positive, have %d", c.Iterations)
	}
	if c.Workers < 0 {
		return fmt.Errorf("montecarlo: negative worker count %d", c.Workers)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PairA == 0 && c.PairB == 0 {
		c.PairB = 1
	}
	hosts := c.Fabric.Hosts()
	if c.PairA < 0 || c.PairA >= hosts || c.PairB < 0 || c.PairB >= hosts {
		return fmt.Errorf("montecarlo: pair (%d,%d) outside fabric of %d hosts",
			c.PairA, c.PairB, hosts)
	}
	if c.PairA == c.PairB {
		return fmt.Errorf("montecarlo: pair nodes must differ")
	}
	return nil
}

// EstimateFabric runs the Monte Carlo estimation described by cfg.
// Like Estimate, work is divided into fixed-size chunks drawing from
// independent RNG substreams keyed by chunk index, so the result is
// identical for every worker count.
func EstimateFabric(cfg FabricConfig) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	eval, err := conn.NewFabricEvaluator(cfg.Fabric)
	if err != nil {
		return Result{}, err
	}

	nChunks := (cfg.Iterations + chunkSize - 1) / chunkSize
	parent := rng.New(cfg.Seed)
	m := cfg.Fabric.Components()
	var next int64 // atomic chunk cursor
	var successes int64

	var wg sync.WaitGroup
	workers := cfg.Workers
	if int64(workers) > nChunks {
		workers = int(nChunks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := *parent // private copy, as in Estimate
			sc := eval.NewScratch()
			idx := make([]int, cfg.Failures)
			failed := make([]topology.Component, 0, max(cfg.Failures, 8))
			var localSucc int64
			for {
				chunk := atomic.AddInt64(&next, 1) - 1
				if chunk >= nChunks {
					break
				}
				sub := local.Split(uint64(chunk))
				iters := int64(chunkSize)
				if rem := cfg.Iterations - chunk*chunkSize; rem < iters {
					iters = rem
				}
				for i := int64(0); i < iters; i++ {
					failed = failed[:0]
					if cfg.Failures > 0 {
						sub.SampleK(idx, m)
						for _, v := range idx {
							failed = append(failed, topology.Component(v))
						}
					} else {
						for cmp := 0; cmp < m; cmp++ {
							if sub.Float64() < cfg.Q {
								failed = append(failed, topology.Component(cmp))
							}
						}
					}
					ok := false
					if cfg.AllPairs {
						ok = eval.AllConnected(sc, failed)
					} else {
						ok = eval.PairConnected(sc, failed, cfg.PairA, cfg.PairB)
					}
					if ok {
						localSucc++
					}
				}
			}
			atomic.AddInt64(&successes, localSucc)
		}()
	}
	wg.Wait()

	p := float64(successes) / float64(cfg.Iterations)
	return Result{
		Successes:  successes,
		Iterations: cfg.Iterations,
		P:          p,
		CI95:       stats.BernoulliCI(successes, cfg.Iterations, 1.96),
	}, nil
}
