package montecarlo

import (
	"math"
	"testing"

	"drsnet/internal/conn"
	"drsnet/internal/survival"
	"drsnet/internal/topology"
)

func mustFatTree(tb testing.TB, k int) *topology.Fabric {
	tb.Helper()
	f, err := topology.FatTree(k)
	if err != nil {
		tb.Fatal(err)
	}
	return f
}

// TestEstimateFabricMatchesDualRailAnalytic checks the fabric
// estimator against Equation 1 on the one shape where the closed form
// applies: a dual-rail cluster rebuilt as a Fabric.
func TestEstimateFabricMatchesDualRailAnalytic(t *testing.T) {
	const n, f = 12, 3
	fab, err := topology.FromCluster(topology.Dual(n))
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimateFabric(FabricConfig{
		Fabric:     fab,
		Failures:   f,
		Iterations: 40000,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := survival.PSuccessFloat(n, f)
	if d := math.Abs(res.P - want); d > 0.015 {
		t.Fatalf("P = %.5f, analytic %.5f (|diff| %.5f)", res.P, want, d)
	}
}

// TestEstimateFabricMatchesExactSingleFailure cross-checks the f=1
// estimate on a k=4 fat-tree against exhaustive enumeration of every
// single-component failure.
func TestEstimateFabricMatchesExactSingleFailure(t *testing.T) {
	fab := mustFatTree(t, 4)
	eval, err := conn.NewFabricEvaluator(fab)
	if err != nil {
		t.Fatal(err)
	}
	const a, b = 0, 15
	m := fab.Components()
	ok := 0
	for c := 0; c < m; c++ {
		if eval.PairConnected(nil, []topology.Component{topology.Component(c)}, a, b) {
			ok++
		}
	}
	exact := float64(ok) / float64(m)

	res, err := EstimateFabric(FabricConfig{
		Fabric:     fab,
		Failures:   1,
		Iterations: 50000,
		Seed:       11,
		PairA:      a,
		PairB:      b,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(res.P - exact); d > 3*res.CI95+1e-9 {
		t.Fatalf("P = %.5f, exact %.5f, CI95 %.5f", res.P, exact, res.CI95)
	}
}

func TestEstimateFabricDeterministicAcrossWorkerCounts(t *testing.T) {
	fab := mustFatTree(t, 4)
	base := FabricConfig{
		Fabric:     fab,
		Failures:   5,
		Iterations: 3 * chunkSize, // exercise multiple chunks
		Seed:       42,
	}
	var first Result
	for i, w := range []int{1, 2, 7} {
		cfg := base
		cfg.Workers = w
		res, err := EstimateFabric(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
			continue
		}
		if res != first {
			t.Fatalf("workers=%d: %+v != %+v", w, res, first)
		}
	}
}

func TestEstimateFabricQModel(t *testing.T) {
	fab := mustFatTree(t, 4)
	// Near-zero component unavailability: the pair should almost
	// always communicate.
	res, err := EstimateFabric(FabricConfig{
		Fabric:     fab,
		Q:          1e-4,
		Iterations: 5000,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.99 {
		t.Fatalf("q=1e-4 gives P = %.4f, want ≈ 1", res.P)
	}
	// Heavy unavailability must hurt.
	bad, err := EstimateFabric(FabricConfig{
		Fabric:     fab,
		Q:          0.5,
		Iterations: 5000,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.P >= res.P {
		t.Fatalf("q=0.5 gives P = %.4f, not below q=1e-4's %.4f", bad.P, res.P)
	}
}

func TestEstimateFabricBCubeRelayCounts(t *testing.T) {
	// BCube(2,1): 4 hosts, 2 ports each, 4 switches, no trunks. Host
	// relaying is what connects different-level pairs, so all-pairs
	// survivability with a single failure is still high.
	fab, err := topology.BCube(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimateFabric(FabricConfig{
		Fabric:     fab,
		Failures:   1,
		Iterations: 2000,
		Seed:       9,
		AllPairs:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Any single NIC failure leaves its host attached via the other
	// port; any single switch failure leaves the level-peer switches.
	if res.P != 1 {
		t.Fatalf("BCube(2,1) all-pairs under f=1: P = %.4f, want 1", res.P)
	}
}

func TestEstimateFabricConfigErrors(t *testing.T) {
	fab := mustFatTree(t, 4)
	good := func() FabricConfig {
		return FabricConfig{Fabric: fab, Failures: 2, Iterations: 10, Seed: 1}
	}
	for name, mutate := range map[string]func(*FabricConfig){
		"nil fabric":    func(c *FabricConfig) { c.Fabric = nil },
		"both models":   func(c *FabricConfig) { c.Q = 0.1 },
		"neither model": func(c *FabricConfig) { c.Failures = 0 },
		"failures oob":  func(c *FabricConfig) { c.Failures = fab.Components() + 1 },
		"q oob":         func(c *FabricConfig) { c.Failures = 0; c.Q = 1 },
		"iterations":    func(c *FabricConfig) { c.Iterations = 0 },
		"workers":       func(c *FabricConfig) { c.Workers = -1 },
		"pair oob":      func(c *FabricConfig) { c.PairB = 99 },
		"pair equal":    func(c *FabricConfig) { c.PairA = 1; c.PairB = 1 },
	} {
		cfg := good()
		mutate(&cfg)
		if _, err := EstimateFabric(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// BenchmarkFatTree10kSurvivability is the scale benchmark from the
// fabric refactor: build a 10k+-host fat-tree (k=36 → 11664 hosts)
// and Monte Carlo-estimate pair survivability on it.
func BenchmarkFatTree10kSurvivability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fab, err := topology.FatTree(36)
		if err != nil {
			b.Fatal(err)
		}
		res, err := EstimateFabric(FabricConfig{
			Fabric:     fab,
			Failures:   8,
			Iterations: 512,
			Seed:       1,
			PairA:      0,
			PairB:      fab.Hosts() - 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Iterations != 512 {
			b.Fatalf("ran %d iterations", res.Iterations)
		}
	}
	b.ReportMetric(11664, "hosts")
}
