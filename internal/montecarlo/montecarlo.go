// Package montecarlo estimates the survivability model by simulation,
// reproducing the paper's validation experiment (Figure 3): draw f
// failed components uniformly at random from the 2N+2 components of a
// dual-rail cluster, test whether the designated pair can still
// communicate, and average over many iterations. As iterations grow,
// the mean absolute difference between the simulated and analytic
// P[Success] over f < N < 64 converges to zero.
//
// Estimates are deterministic for a given seed: work is divided into
// fixed-size chunks, each chunk draws from an independent substream
// keyed by its index, and success counts are summed — so results are
// identical regardless of worker count or scheduling.
package montecarlo

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"drsnet/internal/conn"
	"drsnet/internal/rng"
	"drsnet/internal/stats"
	"drsnet/internal/survival"
	"drsnet/internal/topology"
)

// chunkSize is the number of iterations drawn from one RNG substream.
// It is part of the deterministic contract: changing it changes the
// stream layout and therefore the (still valid) sampled values.
const chunkSize = 4096

// Config describes one Monte Carlo estimation.
type Config struct {
	// Cluster is the system under test. The zero value means the
	// paper's dual-rail cluster with Nodes taken from Nodes.
	Cluster topology.Cluster

	// Failures is the exact number of failed components per scenario.
	Failures int

	// Iterations is the number of random scenarios to draw.
	Iterations int64

	// Seed selects the random stream. The same Config always produces
	// the same Result.
	Seed uint64

	// Workers is the number of concurrent estimator goroutines;
	// 0 means GOMAXPROCS.
	Workers int

	// PairA, PairB designate the monitored pair (defaults 0 and 1).
	PairA, PairB int

	// AllPairs, if set, scores a scenario as a success only when
	// every pair of nodes can communicate (a stricter criterion than
	// the paper's designated-pair model).
	AllPairs bool
}

// Result is the outcome of an estimation.
type Result struct {
	Successes  int64
	Iterations int64
	// P is the estimated success probability.
	P float64
	// CI95 is the 95% normal-approximation half-width of P.
	CI95 float64
}

func (c *Config) normalize() error {
	if c.Cluster == (topology.Cluster{}) {
		return fmt.Errorf("montecarlo: Cluster not set")
	}
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	m := c.Cluster.Components()
	if c.Failures < 0 || c.Failures > m {
		return fmt.Errorf("montecarlo: failures=%d outside [0,%d]", c.Failures, m)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("montecarlo: iterations must be positive, have %d", c.Iterations)
	}
	if c.Workers < 0 {
		return fmt.Errorf("montecarlo: negative worker count %d", c.Workers)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PairA == 0 && c.PairB == 0 {
		c.PairB = 1
	}
	if c.PairA < 0 || c.PairA >= c.Cluster.Nodes || c.PairB < 0 || c.PairB >= c.Cluster.Nodes {
		return fmt.Errorf("montecarlo: pair (%d,%d) outside cluster of %d nodes",
			c.PairA, c.PairB, c.Cluster.Nodes)
	}
	if c.PairA == c.PairB {
		return fmt.Errorf("montecarlo: pair nodes must differ")
	}
	return nil
}

// Estimate runs the Monte Carlo estimation described by cfg.
func Estimate(cfg Config) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	eval, err := conn.NewEvaluator(cfg.Cluster)
	if err != nil {
		return Result{}, err
	}

	nChunks := (cfg.Iterations + chunkSize - 1) / chunkSize
	parent := rng.New(cfg.Seed)
	// Derive one label per chunk up front is unnecessary: Split is
	// cheap and safe to call concurrently only on distinct Sources,
	// so give each worker its own copy of the parent to split from.
	var next int64 // atomic chunk cursor
	var successes int64

	var wg sync.WaitGroup
	workers := cfg.Workers
	if int64(workers) > nChunks {
		workers = int(nChunks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := *parent // private copy; Split does not mutate, but keep isolation explicit
			idx := make([]int, cfg.Failures)
			failed := make([]topology.Component, cfg.Failures)
			m := cfg.Cluster.Components()
			var localSucc int64
			for {
				chunk := atomic.AddInt64(&next, 1) - 1
				if chunk >= nChunks {
					break
				}
				sub := local.Split(uint64(chunk))
				iters := int64(chunkSize)
				if rem := cfg.Iterations - chunk*chunkSize; rem < iters {
					iters = rem
				}
				for i := int64(0); i < iters; i++ {
					sub.SampleK(idx, m)
					for j, v := range idx {
						failed[j] = topology.Component(v)
					}
					ok := false
					if cfg.AllPairs {
						ok = eval.AllConnected(failed)
					} else {
						ok = eval.PairConnected(failed, cfg.PairA, cfg.PairB)
					}
					if ok {
						localSucc++
					}
				}
			}
			atomic.AddInt64(&successes, localSucc)
		}()
	}
	wg.Wait()

	p := float64(successes) / float64(cfg.Iterations)
	return Result{
		Successes:  successes,
		Iterations: cfg.Iterations,
		P:          p,
		CI95:       stats.BernoulliCI(successes, cfg.Iterations, 1.96),
	}, nil
}

// ConvergenceConfig describes the Figure 3 experiment: for each fixed
// failure count f, estimate P[Success] for every N with f < N < NMax+1
// at a ladder of iteration counts, and report the mean absolute
// deviation from the analytic Equation 1 at each rung.
type ConvergenceConfig struct {
	// Failures lists the fixed failure counts (the paper uses 2..10).
	Failures []int
	// NMax is the largest node count (the paper evaluates f < N < 64,
	// i.e. NMax = 63).
	NMax int
	// Iterations is the ascending ladder of iteration counts (the
	// paper's x-axis, log10 scale: 10, 100, 1000, ...).
	Iterations []int64
	// Seed selects the random stream.
	Seed uint64
	// Workers bounds concurrency; 0 means GOMAXPROCS.
	Workers int
}

// ConvergenceSeries is one curve of Figure 3.
type ConvergenceSeries struct {
	F int
	// MAD[i] is the mean absolute deviation between simulated and
	// analytic P[Success] over all N at Iterations[i] iterations.
	MAD []float64
	// MaxAD[i] is the corresponding maximum absolute deviation.
	MaxAD []float64
}

func (c *ConvergenceConfig) validate() error {
	if len(c.Failures) == 0 {
		return fmt.Errorf("montecarlo: no failure counts")
	}
	for _, f := range c.Failures {
		if f < 1 {
			return fmt.Errorf("montecarlo: failure count %d < 1", f)
		}
		if f+1 > c.NMax {
			return fmt.Errorf("montecarlo: NMax=%d leaves no N > f=%d", c.NMax, f)
		}
	}
	if len(c.Iterations) == 0 {
		return fmt.Errorf("montecarlo: no iteration ladder")
	}
	prev := int64(0)
	for _, it := range c.Iterations {
		if it <= prev {
			return fmt.Errorf("montecarlo: iteration ladder must be strictly ascending")
		}
		prev = it
	}
	if c.Workers < 0 {
		return fmt.Errorf("montecarlo: negative worker count")
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// Convergence runs the Figure 3 experiment. For each (f, N) cell it
// draws max(Iterations) scenarios once, recording success counts at
// every rung of the ladder, so rung r's estimate is the prefix of the
// same stream — exactly "the same simulation, observed earlier".
// Parallelism is over (f, N) cells; results are independent of the
// worker count.
func Convergence(cfg ConvergenceConfig) ([]ConvergenceSeries, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	maxIter := cfg.Iterations[len(cfg.Iterations)-1]

	type cell struct {
		f, n int
	}
	type cellResult struct {
		// p[r] is the estimate at iteration rung r.
		p []float64
	}
	var cells []cell
	for _, f := range cfg.Failures {
		for n := f + 1; n <= cfg.NMax; n++ {
			cells = append(cells, cell{f, n})
		}
	}
	results := make([]cellResult, len(cells))

	parent := rng.New(cfg.Seed)
	var cursor int64
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once

	workers := cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&cursor, 1) - 1
				if int(i) >= len(cells) {
					return
				}
				c := cells[i]
				res, err := runCell(parent, c.f, c.n, cfg.Iterations, maxIter)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				results[i] = cellResult{p: res}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Reduce cells into per-f MAD series.
	out := make([]ConvergenceSeries, 0, len(cfg.Failures))
	for _, f := range cfg.Failures {
		var analytic []float64
		var est = make([][]float64, len(cfg.Iterations))
		for i, c := range cells {
			if c.f != f {
				continue
			}
			analytic = append(analytic, survival.PSuccessFloat(c.n, c.f))
			for r := range cfg.Iterations {
				est[r] = append(est[r], results[i].p[r])
			}
		}
		series := ConvergenceSeries{F: f}
		for r := range cfg.Iterations {
			mad, err := stats.MeanAbsDeviation(est[r], analytic)
			if err != nil {
				return nil, err
			}
			maxad, err := stats.MaxAbsDeviation(est[r], analytic)
			if err != nil {
				return nil, err
			}
			series.MAD = append(series.MAD, mad)
			series.MaxAD = append(series.MaxAD, maxad)
		}
		out = append(out, series)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].F < out[j].F })
	return out, nil
}

// runCell simulates one (f, n) cell for maxIter iterations, returning
// the running estimate at each rung of the ladder.
func runCell(parent *rng.Source, f, n int, ladder []int64, maxIter int64) ([]float64, error) {
	cluster := topology.Dual(n)
	eval, err := conn.NewEvaluator(cluster)
	if err != nil {
		return nil, err
	}
	sub := parent.Split(uint64(f)<<32 | uint64(n))
	m := cluster.Components()
	idx := make([]int, f)
	failed := make([]topology.Component, f)

	est := make([]float64, len(ladder))
	var succ int64
	rung := 0
	for i := int64(1); i <= maxIter; i++ {
		sub.SampleK(idx, m)
		for j, v := range idx {
			failed[j] = topology.Component(v)
		}
		if eval.PairConnected(failed, 0, 1) {
			succ++
		}
		for rung < len(ladder) && i == ladder[rung] {
			est[rung] = float64(succ) / float64(i)
			rung++
		}
	}
	return est, nil
}
