package montecarlo

import (
	"math"
	"testing"

	"drsnet/internal/survival"
	"drsnet/internal/topology"
)

func TestEstimateMatchesAnalytic(t *testing.T) {
	for _, tc := range []struct{ n, f int }{
		{10, 2}, {18, 2}, {20, 3}, {12, 4}, {30, 5},
	} {
		cfg := Config{
			Cluster:    topology.Dual(tc.n),
			Failures:   tc.f,
			Iterations: 200000,
			Seed:       1,
		}
		res, err := Estimate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := survival.PSuccessFloat(tc.n, tc.f)
		if diff := math.Abs(res.P - want); diff > 4*res.CI95+1e-9 {
			t.Errorf("n=%d f=%d: estimate %v vs analytic %v (diff %v, CI %v)",
				tc.n, tc.f, res.P, want, diff, res.CI95)
		}
	}
}

func TestEstimateDeterministicAcrossWorkerCounts(t *testing.T) {
	base := Config{
		Cluster:    topology.Dual(16),
		Failures:   3,
		Iterations: 50000,
		Seed:       42,
	}
	var ref Result
	for i, workers := range []int{1, 2, 4, 7} {
		cfg := base
		cfg.Workers = workers
		res, err := Estimate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.Successes != ref.Successes {
			t.Fatalf("workers=%d: successes %d != reference %d — not deterministic",
				workers, res.Successes, ref.Successes)
		}
	}
}

func TestEstimateSeedChangesStream(t *testing.T) {
	base := Config{
		Cluster:    topology.Dual(16),
		Failures:   3,
		Iterations: 50000,
	}
	a := base
	a.Seed = 1
	b := base
	b.Seed = 2
	ra, err := Estimate(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Estimate(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Successes == rb.Successes {
		t.Log("different seeds produced equal success counts (possible but unlikely)")
	}
	// Both still near analytic.
	want := survival.PSuccessFloat(16, 3)
	for _, r := range []Result{ra, rb} {
		if math.Abs(r.P-want) > 5*r.CI95+1e-9 {
			t.Fatalf("estimate %v too far from analytic %v", r.P, want)
		}
	}
}

func TestEstimateTrivialCases(t *testing.T) {
	res, err := Estimate(Config{Cluster: topology.Dual(6), Failures: 0, Iterations: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Fatalf("f=0: P=%v, want 1", res.P)
	}
	m := topology.Dual(6).Components()
	res, err = Estimate(Config{Cluster: topology.Dual(6), Failures: m, Iterations: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("f=all: P=%v, want 0", res.P)
	}
}

func TestEstimateAllPairsIsStricter(t *testing.T) {
	pair, err := Estimate(Config{Cluster: topology.Dual(8), Failures: 4, Iterations: 100000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Estimate(Config{Cluster: topology.Dual(8), Failures: 4, Iterations: 100000, Seed: 9, AllPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if all.P > pair.P {
		t.Fatalf("all-pairs survivability %v exceeds pair survivability %v", all.P, pair.P)
	}
}

func TestEstimateExplicitPair(t *testing.T) {
	// By symmetry any pair gives the same distribution; check the
	// estimate for pair (3, 7) is near analytic too.
	res, err := Estimate(Config{
		Cluster: topology.Dual(12), Failures: 3, Iterations: 100000, Seed: 5,
		PairA: 3, PairB: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := survival.PSuccessFloat(12, 3)
	if math.Abs(res.P-want) > 5*res.CI95+1e-9 {
		t.Fatalf("pair(3,7) estimate %v vs analytic %v", res.P, want)
	}
}

func TestEstimateConfigErrors(t *testing.T) {
	good := Config{Cluster: topology.Dual(8), Failures: 2, Iterations: 10, Seed: 1}
	for name, mutate := range map[string]func(*Config){
		"zero cluster":   func(c *Config) { c.Cluster = topology.Cluster{} },
		"bad cluster":    func(c *Config) { c.Cluster = topology.Cluster{Nodes: 1, Rails: 2} },
		"neg failures":   func(c *Config) { c.Failures = -1 },
		"huge failures":  func(c *Config) { c.Failures = 1000 },
		"zero iters":     func(c *Config) { c.Iterations = 0 },
		"neg workers":    func(c *Config) { c.Workers = -1 },
		"pair oob":       func(c *Config) { c.PairB = 99 },
		"pair identical": func(c *Config) { c.PairA, c.PairB = 3, 3 },
	} {
		cfg := good
		mutate(&cfg)
		if _, err := Estimate(cfg); err == nil {
			t.Errorf("%s: error not reported", name)
		}
	}
}

func TestEstimateIterationRemainder(t *testing.T) {
	// Iterations not a multiple of the chunk size must still run
	// exactly Iterations scenarios.
	res, err := Estimate(Config{Cluster: topology.Dual(6), Failures: 0, Iterations: chunkSize + 17, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != chunkSize+17 || res.Successes != chunkSize+17 {
		t.Fatalf("ran %d/%d, want %d", res.Successes, res.Iterations, chunkSize+17)
	}
}

func TestConvergenceShrinks(t *testing.T) {
	series, err := Convergence(ConvergenceConfig{
		Failures:   []int{2, 5},
		NMax:       20,
		Iterations: []int64{10, 1000, 100000},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].F != 2 || series[1].F != 5 {
		t.Fatalf("series shape wrong: %+v", series)
	}
	for _, s := range series {
		if len(s.MAD) != 3 {
			t.Fatalf("f=%d: %d rungs, want 3", s.F, len(s.MAD))
		}
		// The last rung must be much tighter than the first; allow
		// noise in the middle but require end-to-end shrinkage.
		if !(s.MAD[2] < s.MAD[0]) {
			t.Errorf("f=%d: MAD did not shrink: %v", s.F, s.MAD)
		}
		if s.MAD[2] > 0.01 {
			t.Errorf("f=%d: MAD at 1e5 iterations = %v, want < 0.01", s.F, s.MAD[2])
		}
		for r := range s.MAD {
			if s.MaxAD[r] < s.MAD[r] {
				t.Errorf("f=%d rung %d: max deviation %v below mean %v", s.F, r, s.MaxAD[r], s.MAD[r])
			}
		}
	}
}

func TestConvergencePaperClaim(t *testing.T) {
	// The paper: "With 1,000 iterations, the mean absolute difference
	// is less than [0.0x] for each of the fixed f values." At 10,000
	// iterations the binomial standard error is ~0.005; assert MAD
	// stays within a generous envelope of that.
	if testing.Short() {
		t.Skip("full f-sweep in -short mode")
	}
	series, err := Convergence(ConvergenceConfig{
		Failures:   []int{2, 3, 4, 5, 6, 7, 8, 9, 10},
		NMax:       63,
		Iterations: []int64{1000, 10000},
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if s.MAD[0] > 0.02 {
			t.Errorf("f=%d: MAD at 1000 iterations = %v, want < 0.02", s.F, s.MAD[0])
		}
		if s.MAD[1] > 0.008 {
			t.Errorf("f=%d: MAD at 10000 iterations = %v, want < 0.008", s.F, s.MAD[1])
		}
		if s.MAD[1] >= s.MAD[0] {
			t.Errorf("f=%d: MAD grew from %v to %v", s.F, s.MAD[0], s.MAD[1])
		}
	}
}

func TestConvergenceDeterministicAcrossWorkers(t *testing.T) {
	cfg := ConvergenceConfig{
		Failures:   []int{3},
		NMax:       12,
		Iterations: []int64{100, 10000},
		Seed:       11,
	}
	cfg.Workers = 1
	a, err := Convergence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	b, err := Convergence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for r := range a[i].MAD {
			if a[i].MAD[r] != b[i].MAD[r] {
				t.Fatalf("worker count changed results: %v vs %v", a[i].MAD, b[i].MAD)
			}
		}
	}
}

func TestConvergenceConfigErrors(t *testing.T) {
	good := ConvergenceConfig{Failures: []int{2}, NMax: 10, Iterations: []int64{10, 100}, Seed: 1}
	for name, mutate := range map[string]func(*ConvergenceConfig){
		"no failures":    func(c *ConvergenceConfig) { c.Failures = nil },
		"f too small":    func(c *ConvergenceConfig) { c.Failures = []int{0} },
		"nmax too small": func(c *ConvergenceConfig) { c.NMax = 2; c.Failures = []int{5} },
		"no ladder":      func(c *ConvergenceConfig) { c.Iterations = nil },
		"ladder order":   func(c *ConvergenceConfig) { c.Iterations = []int64{100, 100} },
		"neg workers":    func(c *ConvergenceConfig) { c.Workers = -2 },
	} {
		cfg := good
		mutate(&cfg)
		if _, err := Convergence(cfg); err == nil {
			t.Errorf("%s: error not reported", name)
		}
	}
}

func BenchmarkEstimate63Nodes(b *testing.B) {
	cfg := Config{Cluster: topology.Dual(63), Failures: 4, Iterations: 100000, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAllPairsEstimateMatchesClosedForm(t *testing.T) {
	// The all-pairs Monte Carlo mode must agree with the all-pairs
	// closed form (itself validated against enumeration).
	for _, tc := range []struct{ n, f int }{{8, 2}, {8, 4}, {16, 3}} {
		res, err := Estimate(Config{
			Cluster:    topology.Dual(tc.n),
			Failures:   tc.f,
			Iterations: 200000,
			Seed:       5,
			AllPairs:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := survival.AllPairsPSuccessFloat(tc.n, tc.f)
		if diff := math.Abs(res.P - want); diff > 4*res.CI95+1e-9 {
			t.Errorf("n=%d f=%d: all-pairs estimate %v vs closed form %v",
				tc.n, tc.f, res.P, want)
		}
	}
}
