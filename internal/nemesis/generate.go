package nemesis

import (
	"time"

	"drsnet/internal/rng"
	"drsnet/internal/runtime"
)

// Config shapes schedule generation. The zero value means every
// documented default.
type Config struct {
	// Nodes is the cluster size (default 3).
	Nodes int
	// Protocol names a registered routing protocol (default "drs").
	Protocol string
	// Episodes is how many fault windows to script (default 4).
	Episodes int
	// Horizon is the fault phase's length (default 10s).
	Horizon time.Duration
	// Settle is the post-heal reconvergence window (default 2s).
	Settle time.Duration
	// ProbeInterval is the DRS probe cadence (default 100ms).
	ProbeInterval time.Duration
}

func (c *Config) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Protocol == "" {
		c.Protocol = runtime.ProtoDRS
	}
	if c.Episodes == 0 {
		c.Episodes = 4
	}
	if c.Horizon == 0 {
		c.Horizon = 10 * time.Second
	}
	if c.Settle == 0 {
		c.Settle = 2 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
}

// Generate grows a random fault schedule from the seed. The same
// (seed, config) pair always yields the same schedule, and generation
// draws from its own rng substream, so the run's impairment draws
// (which split from the same seed under a different label) are not
// perturbed by how many episodes were generated.
func Generate(seed uint64, cfg Config) Schedule {
	cfg.defaults()
	r := rng.New(seed).Split(0x4e3515)
	s := Schedule{
		Seed:          seed,
		Nodes:         cfg.Nodes,
		Protocol:      cfg.Protocol,
		ProbeInterval: Duration(cfg.ProbeInterval),
		Horizon:       Duration(cfg.Horizon),
		Settle:        Duration(cfg.Settle),
	}
	for i := 0; i < cfg.Episodes; i++ {
		s.Episodes = append(s.Episodes, randomEpisode(r, &s))
	}
	return s
}

// randomEpisode draws one episode. Kinds are weighted toward
// partitions — the campaign's namesake fault — and a crash that would
// overlap an existing crash window on the same node deterministically
// degrades to a partition instead (overlapping lives of one process
// are not a meaningful schedule).
func randomEpisode(r *rng.Source, s *Schedule) Episode {
	h := s.Horizon.dur()
	// Windows start in the first 90% of the horizon and run 10–30% of
	// it, clamped to end by the horizon — so schedules routinely carry
	// faults right up to the heal barrier, and the settle window (not
	// fault-free slack before the horizon) is what the invariants
	// measure.
	start := time.Duration(r.Uint64n(uint64(h * 9 / 10)))
	length := h/10 + time.Duration(r.Uint64n(uint64(h/5)))
	stop := start + length
	if stop > h {
		stop = h
	}
	e := Episode{Start: Duration(start), Stop: Duration(stop)}
	switch k := r.Intn(100); {
	case k < 40:
		e.Kind = KindPartition
	case k < 65:
		e.Kind = KindCrash
	case k < 85:
		e.Kind = KindFlap
	default:
		e.Kind = KindSkew
	}
	e.A = r.Intn(s.Nodes)
	switch e.Kind {
	case KindCrash:
		e.Warm = r.Intn(2) == 1
		for _, prev := range s.Episodes {
			if prev.Kind == KindCrash && prev.A == e.A &&
				e.Start.dur() < prev.Stop.dur() && prev.Start.dur() < e.Stop.dur() {
				e.Kind = KindPartition
				e.Warm = false
				break
			}
		}
	case KindFlap:
		e.Rail = r.Intn(rails)
		// Toggle a few times per window, never faster than 4 toggles
		// per probe interval would allow the monitor to notice.
		e.Period = Duration(s.ProbeInterval.dur() + time.Duration(r.Uint64n(uint64(s.ProbeInterval.dur()*4))))
	case KindSkew:
		// Up to 4 probe intervals of delivery lag: enough to blow probe
		// deadlines, not enough to look like a crash.
		e.Skew = Duration(s.ProbeInterval.dur()/2 + time.Duration(r.Uint64n(uint64(s.ProbeInterval.dur()*7/2))))
	}
	if e.Kind == KindPartition {
		e.B = (e.A + 1 + r.Intn(s.Nodes-1)) % s.Nodes
		e.Rail = r.Intn(rails+1) - 1 // AllRails, 0 or 1
		e.Direction = []string{DirBoth, DirTx, DirRx}[r.Intn(3)]
	}
	return e
}
