package nemesis

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"drsnet/internal/routing"
	"drsnet/internal/runtime"
)

// quickCfg keeps campaign tests fast: a short horizon is still dozens
// of probe rounds at the default 100ms cadence.
func quickCfg() Config {
	return Config{Horizon: 6 * time.Second, Settle: 2 * time.Second}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		a := Generate(seed, quickCfg())
		b := Generate(seed, quickCfg())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%+v\n%+v", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated schedule invalid: %v", seed, err)
		}
		if len(a.Episodes) != 4 {
			t.Fatalf("seed %d: %d episodes, want 4", seed, len(a.Episodes))
		}
	}
	if reflect.DeepEqual(Generate(1, quickCfg()), Generate(2, quickCfg())) {
		t.Fatal("different seeds generated the same schedule")
	}
}

// TestRunDeterministic: the whole point of the hermetic runner — the
// same schedule executes to a bit-identical outcome.
func TestRunDeterministic(t *testing.T) {
	s := Generate(3, quickCfg())
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Violations, b.Violations) {
		t.Fatalf("violations diverged:\n%v\n%v", a.Violations, b.Violations)
	}
	if a.Faults != b.Faults {
		t.Fatalf("fault stats diverged:\n%+v\n%+v", a.Faults, b.Faults)
	}
	if !reflect.DeepEqual(a.Statuses, b.Statuses) {
		t.Fatal("final daemon statuses diverged")
	}
}

// TestHealthyCampaignConverges: with a settle window worth many probe
// rounds, generated schedules must heal clean — partitions lifted,
// crashed nodes rejoined under new incarnations, routes direct,
// datagrams delivered. A violation here is a real protocol bug.
func TestHealthyCampaignConverges(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		s := Generate(seed, quickCfg())
		out, err := Run(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Failed() {
			t.Errorf("seed %d: %d violations after a full settle:", seed, len(out.Violations))
			for _, v := range out.Violations {
				t.Errorf("  %v", v)
			}
			for _, e := range s.Episodes {
				t.Logf("  episode: %v", e)
			}
		}
		if out.Faults.Partitioned == 0 && hasKind(s, KindPartition) {
			t.Errorf("seed %d: schedule partitions but no frame was ever cut", seed)
		}
	}
}

func hasKind(s Schedule, kind string) bool {
	for _, e := range s.Episodes {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

// TestCrashRestartRejoins pins the lifecycle path: a cold crash window
// must come back as incarnation 2 in every survivor's view.
func TestCrashRestartRejoins(t *testing.T) {
	s := Schedule{
		Seed: 9, Nodes: 3,
		ProbeInterval: Duration(100 * time.Millisecond),
		Horizon:       Duration(4 * time.Second),
		Settle:        Duration(2 * time.Second),
		Episodes: []Episode{
			{Kind: KindCrash, A: 1, Start: Duration(time.Second), Stop: Duration(3 * time.Second), Warm: true},
		},
	}
	out, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("violations: %v", out.Violations)
	}
	for _, st := range out.Statuses {
		if st.Node == 1 {
			if st.Incarnation != 2 {
				t.Fatalf("restarted node runs incarnation %d, want 2", st.Incarnation)
			}
			continue
		}
		for _, p := range st.Peers {
			if p.Peer == 1 && p.Incarnation != 2 {
				t.Fatalf("node %d sees node 1 at incarnation %d, want 2", st.Node, p.Incarnation)
			}
		}
	}
}

// violatingSchedule partitions 0–1 on every rail right up to the
// horizon and allows no settle: the cluster cannot possibly have
// reconverged when the invariants run. The flap and skew riders are
// noise the shrinker must strip.
func violatingSchedule() Schedule {
	return Schedule{
		Seed: 11, Nodes: 3,
		ProbeInterval: Duration(100 * time.Millisecond),
		Horizon:       Duration(3 * time.Second),
		Settle:        0,
		Episodes: []Episode{
			{Kind: KindSkew, A: 2, Start: Duration(500 * time.Millisecond), Stop: Duration(time.Second), Skew: Duration(50 * time.Millisecond)},
			{Kind: KindPartition, A: 0, B: 1, Rail: AllRails, Direction: DirBoth, Start: Duration(time.Second), Stop: Duration(3 * time.Second)},
			{Kind: KindFlap, A: 2, Rail: 1, Start: Duration(time.Second), Stop: Duration(2 * time.Second), Period: Duration(200 * time.Millisecond)},
		},
	}
}

// TestShrinkReducesToMinimalSchedule: the three-episode failing
// schedule must shrink to just the partition, and the shrunk schedule
// must replay to the identical violations.
func TestShrinkReducesToMinimalSchedule(t *testing.T) {
	s := violatingSchedule()
	out, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Failed() {
		t.Fatal("zero-settle partition schedule did not violate — the harness is not checking anything")
	}
	hasConvergence := false
	for _, v := range out.Violations {
		if v.Invariant == "convergence" {
			hasConvergence = true
		}
	}
	if !hasConvergence {
		t.Fatalf("expected a convergence violation, got %v", out.Violations)
	}

	shrunk, sout := Shrink(s)
	if sout == nil || !sout.Failed() {
		t.Fatal("shrink lost the violation")
	}
	if len(shrunk.Episodes) != 1 || shrunk.Episodes[0].Kind != KindPartition {
		t.Fatalf("shrunk to %v, want just the partition", shrunk.Episodes)
	}
	// Replay: the shrunk schedule is its own repro.
	replay, err := Run(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replay.Violations, sout.Violations) {
		t.Fatalf("replay of the shrunk schedule diverged:\n%v\n%v", replay.Violations, sout.Violations)
	}
}

// TestShrinkPassingScheduleIsNoop: shrinking only means something from
// a failing start.
func TestShrinkPassingScheduleIsNoop(t *testing.T) {
	s := Generate(1, quickCfg())
	shrunk, out := Shrink(s)
	if out != nil {
		t.Fatalf("passing schedule produced a shrink outcome: %v", out.Violations)
	}
	if !reflect.DeepEqual(shrunk, s) {
		t.Fatal("passing schedule was modified by Shrink")
	}
}

// TestDeliveryOnlyProtocols: non-DRS protocols expose no status, so
// campaigns degrade to the data-plane invariant — which a healed
// cluster must still pass.
func TestDeliveryOnlyProtocols(t *testing.T) {
	s := Schedule{
		Seed: 5, Nodes: 3, Protocol: runtime.ProtoStatic,
		ProbeInterval: Duration(100 * time.Millisecond),
		Horizon:       Duration(2 * time.Second),
		Settle:        Duration(time.Second),
		Episodes: []Episode{
			{Kind: KindPartition, A: 0, B: 1, Rail: 0, Direction: DirBoth, Start: Duration(500 * time.Millisecond), Stop: Duration(1500 * time.Millisecond)},
		},
	}
	out, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Statuses) != 0 {
		t.Fatalf("static protocol produced %d daemon statuses", len(out.Statuses))
	}
	if out.Failed() {
		t.Fatalf("healed static cluster violated: %v", out.Violations)
	}
}

// TestBudgetScheduleHoldsBound: with the budget block armed, a
// partition-plus-crash campaign must heal clean AND every daemon's
// control traffic must sit under the token-bucket admission bound —
// the budget invariant holding on a run where the faults actually
// pressured the retransmit and discovery paths.
func TestBudgetScheduleHoldsBound(t *testing.T) {
	s := Schedule{
		Seed: 21, Nodes: 3,
		ProbeInterval: Duration(100 * time.Millisecond),
		Budget:        &BudgetSpec{},
		Horizon:       Duration(4 * time.Second),
		Settle:        Duration(2 * time.Second),
		Episodes: []Episode{
			{Kind: KindPartition, A: 0, B: 1, Rail: AllRails, Direction: DirBoth, Start: Duration(500 * time.Millisecond), Stop: Duration(2 * time.Second)},
			{Kind: KindCrash, A: 2, Start: Duration(time.Second), Stop: Duration(3 * time.Second), Warm: true},
		},
	}
	out, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("budgeted campaign violated: %v", out.Violations)
	}
	if len(out.Statuses) == 0 {
		t.Fatal("no daemon statuses")
	}
	for _, st := range out.Statuses {
		if st.Overload == nil {
			t.Fatalf("node %d reports no overload block — the budget was not wired in", st.Node)
		}
	}
	// Determinism holds with the budget layer in the loop.
	again, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Statuses, out.Statuses) {
		t.Fatal("budgeted run is not bit-identical on replay")
	}
}

// TestBudgetCheckerFlagsExcess unit-tests the invariant itself: a
// counter snapshot exactly at the bucket ceiling passes, one past it
// is a violation.
func TestBudgetCheckerFlagsExcess(t *testing.T) {
	cfg, err := (&BudgetSpec{}).config()
	if err != nil {
		t.Fatal(err)
	}
	window := 10 * time.Second
	probeCeil := budgetCeiling(cfg.ProbeRate, cfg.ProbeBurst, window)
	queryCeil := budgetCeiling(cfg.QueryRate, cfg.QueryBurst, window) * rails
	atCeiling := map[string]int64{
		routing.CtrProbeRetransmits: probeCeil,
		routing.CtrQueriesSent:      queryCeil,
	}
	if vs := budgetViolations(0, atCeiling, cfg, window); len(vs) != 0 {
		t.Fatalf("snapshot at the ceiling flagged: %v", vs)
	}
	over := map[string]int64{
		routing.CtrProbeRetransmits: probeCeil + 1,
		routing.CtrQueriesSent:      queryCeil + 1,
	}
	vs := budgetViolations(4, over, cfg, window)
	if len(vs) != 2 {
		t.Fatalf("%d violations, want 2: %v", len(vs), vs)
	}
	for _, v := range vs {
		if v.Invariant != "budget" || v.Node != 4 {
			t.Fatalf("malformed violation %+v", v)
		}
	}
	if !strings.Contains(vs[0].Detail, "probe") || !strings.Contains(vs[1].Detail, "query") {
		t.Fatalf("details do not name the exceeded budgets: %v", vs)
	}
}

func TestScheduleValidation(t *testing.T) {
	base := violatingSchedule()
	cases := []struct {
		name string
		mut  func(*Schedule)
		want string
	}{
		{"too few nodes", func(s *Schedule) { s.Nodes = 1 }, "nodes"},
		{"zero horizon", func(s *Schedule) { s.Horizon = 0 }, "horizon"},
		{"negative settle", func(s *Schedule) { s.Settle = Duration(-time.Second) }, "settle"},
		{"window past horizon", func(s *Schedule) { s.Episodes[1].Stop = Duration(9 * time.Second) }, "outside"},
		{"empty window", func(s *Schedule) { s.Episodes[1].Stop = s.Episodes[1].Start }, "outside"},
		{"node out of range", func(s *Schedule) { s.Episodes[1].A = 7 }, "outside"},
		{"partition self", func(s *Schedule) { s.Episodes[1].B = s.Episodes[1].A }, "peer"},
		{"bad rail", func(s *Schedule) { s.Episodes[1].Rail = 5 }, "rail"},
		{"bad direction", func(s *Schedule) { s.Episodes[1].Direction = "up" }, "direction"},
		{"flap without period", func(s *Schedule) { s.Episodes[2].Period = 0 }, "period"},
		{"skew without skew", func(s *Schedule) { s.Episodes[0].Skew = 0 }, "skew"},
		{"unknown kind", func(s *Schedule) { s.Episodes[0].Kind = "meteor" }, "unknown kind"},
		{"negative budget rate", func(s *Schedule) { s.Budget = &BudgetSpec{ProbeRate: -1} }, "budget"},
		{"overlapping crashes", func(s *Schedule) {
			s.Episodes = append(s.Episodes,
				Episode{Kind: KindCrash, A: 0, Start: Duration(time.Second), Stop: Duration(2 * time.Second)},
				Episode{Kind: KindCrash, A: 0, Start: Duration(1500 * time.Millisecond), Stop: Duration(2500 * time.Millisecond)})
		}, "overlapping"},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base schedule invalid: %v", err)
	}
	for _, tc := range cases {
		s := violatingSchedule()
		tc.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestScheduleJSONRoundTrip: the repro artifact must survive
// serialization exactly, durations as readable strings.
func TestScheduleJSONRoundTrip(t *testing.T) {
	s := Generate(42, quickCfg())
	s.Budget = &BudgetSpec{ProbeRate: 3, QueryBurst: 5}
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"horizon": "6s"`) {
		t.Fatalf("durations not serialized as strings:\n%s", buf)
	}
	if !strings.Contains(string(buf), `"probeRate": 3`) {
		t.Fatalf("budget block not serialized:\n%s", buf)
	}
	var back Schedule
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("round trip changed the schedule:\n%+v\n%+v", back, s)
	}
	if err := json.Unmarshal([]byte(`{"horizon": 5}`), &back); err == nil {
		t.Fatal("numeric duration accepted")
	}
}
