package nemesis

import (
	"fmt"
	"sort"
	"time"

	"drsnet/internal/clock"
	"drsnet/internal/core"
	"drsnet/internal/linkmon"
	"drsnet/internal/overload"
	"drsnet/internal/routing"
	"drsnet/internal/runtime"
	"drsnet/internal/transport"
)

// memLatency is the hermetic fabric's one-way delivery latency.
const memLatency = 200 * time.Microsecond

// Violation is one invariant the cluster failed to restore after the
// schedule healed.
type Violation struct {
	// Invariant names the broken property: "convergence",
	// "incarnation", "membership" or "delivery".
	Invariant string `json:"invariant"`
	// Node is whose view is wrong; Peer is about whom (-1 when the
	// violation is not about a specific peer).
	Node int `json:"node"`
	Peer int `json:"peer"`
	// Detail is the human-readable specifics.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: node %d peer %d: %s", v.Invariant, v.Node, v.Peer, v.Detail)
}

// Outcome is the result of running one schedule to completion.
type Outcome struct {
	Schedule   Schedule    `json:"schedule"`
	Violations []Violation `json:"violations,omitempty"`
	// Faults counts what the fault controller did to traffic.
	Faults transport.FaultStats `json:"-"`
	// Statuses is each daemon's final view (DRS only), for diagnosis.
	Statuses []core.Status `json:"-"`
}

// Failed reports whether any invariant was violated.
func (o *Outcome) Failed() bool { return len(o.Violations) > 0 }

// runner is the hermetic cluster one schedule executes against:
// manual wall clock, in-memory transport wrapped by one shared fault
// controller, and the same runtime.BuildNode router assembly the live
// daemon uses. Everything runs on one goroutine (timer callbacks fire
// synchronously inside Advance), so a schedule replays bit-identically
// from its seed.
type runner struct {
	sched   Schedule
	spec    runtime.ClusterSpec
	budget  overload.Config // zero when the schedule has no budget block
	clk     *clock.Wall
	mem     *transport.Mem
	faults  *transport.Faults
	routers []routing.Router
	// incarnation and checkpoint track each node's crash–restart
	// lifecycle across episode windows.
	incarnation []uint32
	checkpoint  []*core.Checkpoint
	// delivered records data-plane check receipts, keyed src*Nodes+dst.
	delivered map[int]bool
}

// Run executes the schedule against a fresh hermetic cluster and
// checks the post-heal invariants. The only error is an invalid
// schedule or an unbuildable cluster; protocol misbehavior is reported
// as Violations, not an error.
func Run(s Schedule) (*Outcome, error) {
	if s.Protocol == "" {
		s.Protocol = runtime.ProtoDRS
	}
	if s.ProbeInterval.dur() == 0 {
		s.ProbeInterval = Duration(100 * time.Millisecond)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var budget overload.Config
	if s.Budget != nil {
		budget, _ = s.Budget.config() // Validate already vetted it
	}
	clk := clock.NewManual()
	r := &runner{
		sched: s,
		spec: runtime.ClusterSpec{
			Nodes:    s.Nodes,
			Protocol: s.Protocol,
			Tunables: runtime.Tunables{
				ProbeInterval: s.ProbeInterval.dur(),
				MissThreshold: 2,
				// The lifecycle guards restarts; strict link evidence
				// makes asymmetric cuts detectable instead of masked —
				// without it every tx-only partition is a guaranteed
				// (and uninteresting) violation.
				Lifecycle:          true,
				StrictLinkEvidence: true,
			},
		},
		budget:      budget,
		clk:         clk,
		mem:         transport.NewMem(s.Nodes, rails, clk, memLatency),
		faults:      transport.NewFaults(s.Seed, clk),
		routers:     make([]routing.Router, s.Nodes),
		incarnation: make([]uint32, s.Nodes),
		checkpoint:  make([]*core.Checkpoint, s.Nodes),
		delivered:   make(map[int]bool),
	}
	if s.Budget != nil {
		// Budgets bound the RTO retransmit storm, so the retransmits
		// must exist: the budget block implies the adaptive RTO.
		r.spec.Tunables.Overload = budget
		r.spec.Tunables.AdaptiveRTO = linkmon.DefaultRTO()
	}
	for n := 0; n < s.Nodes; n++ {
		if err := r.boot(n, 1, nil); err != nil {
			return nil, err
		}
	}
	for i := range s.Episodes {
		r.arm(s.Episodes[i])
	}
	// Fault phase, then the heal barrier (episodes all end by the
	// horizon; HealAll also clears anything a hand-written replay file
	// left dangling), then the settle window.
	r.clk.RunUntil(s.Horizon.dur())
	r.faults.HealAll()
	r.clk.RunUntil(s.Horizon.dur() + s.Settle.dur())

	out := &Outcome{Schedule: s}
	r.checkStatusInvariants(out)
	r.checkDelivery(out)
	r.checkBudget(out)
	out.Faults = r.faults.Stats()
	for _, rt := range r.routers {
		rt.Stop()
	}
	return out, nil
}

// boot builds and starts one node's router at the given incarnation,
// re-installing the data-plane receipt hook a restart would lose.
func (r *runner) boot(n int, inc uint32, restore *core.Checkpoint) error {
	router, err := runtime.BuildNode(r.spec, n, r.faults.Wrap(r.mem.Node(n)), r.clk, inc, restore)
	if err != nil {
		return fmt.Errorf("nemesis: node %d: %v", n, err)
	}
	dst := n
	router.SetDeliverFunc(func(src int, data []byte) {
		r.delivered[src*r.sched.Nodes+dst] = true
	})
	if err := router.Start(); err != nil {
		return fmt.Errorf("nemesis: node %d start: %v", n, err)
	}
	r.routers[n] = router
	r.incarnation[n] = inc
	return nil
}

// arm schedules one episode's state changes on the run's clock.
func (r *runner) arm(e Episode) {
	switch e.Kind {
	case KindPartition:
		for _, cut := range cuts(e) {
			r.faults.PartitionWindow(cut.src, cut.dst, cut.rail, e.Start.dur(), e.Stop.dur())
		}
	case KindCrash:
		node, warm := e.A, e.Warm
		r.clk.AfterFunc(e.Start.dur(), func() {
			if d, ok := r.routers[node].(*core.Daemon); ok && warm {
				r.checkpoint[node] = d.Checkpoint()
			} else {
				r.checkpoint[node] = nil
			}
			r.mem.FailNode(node)
			r.routers[node].Stop()
		})
		r.clk.AfterFunc(e.Stop.dur(), func() {
			r.mem.RestoreNode(node)
			if err := r.boot(node, r.incarnation[node]+1, r.checkpoint[node]); err != nil {
				// The spec built once already; a rebuild cannot fail.
				panic(err)
			}
		})
	case KindFlap:
		node, rail := e.A, e.Rail
		for at, up := e.Start.dur(), false; at < e.Stop.dur(); at, up = at+e.Period.dur(), !up {
			state := up
			r.clk.AfterFunc(at, func() { r.mem.SetNIC(node, rail, state) })
		}
		r.clk.AfterFunc(e.Stop.dur(), func() { r.mem.SetNIC(node, rail, true) })
	case KindSkew:
		node, skew := e.A, e.Skew.dur()
		r.clk.AfterFunc(e.Start.dur(), func() { r.faults.SetSkew(node, skew) })
		r.clk.AfterFunc(e.Stop.dur(), func() { r.faults.SetSkew(node, 0) })
	}
}

type cutSpec struct{ src, dst, rail int }

// cuts expands a partition episode into its directed (src, dst, rail)
// cuts: "both" is two directed cuts, "tx"/"rx" one.
func cuts(e Episode) []cutSpec {
	var out []cutSpec
	if e.Direction != DirRx {
		out = append(out, cutSpec{e.A, e.B, e.Rail})
	}
	if e.Direction != DirTx {
		out = append(out, cutSpec{e.B, e.A, e.Rail})
	}
	return out
}

// checkStatusInvariants inspects each daemon's post-settle view. Only
// the DRS exposes a Status; other protocols get the data-plane check
// alone.
func (r *runner) checkStatusInvariants(out *Outcome) {
	statuses := make([]*core.Status, r.sched.Nodes)
	for n, rt := range r.routers {
		if d, ok := rt.(*core.Daemon); ok {
			s := d.Status()
			statuses[n] = &s
			out.Statuses = append(out.Statuses, s)
		}
	}
	add := func(inv string, node, peer int, format string, args ...any) {
		out.Violations = append(out.Violations, Violation{
			Invariant: inv, Node: node, Peer: peer, Detail: fmt.Sprintf(format, args...),
		})
	}
	for n, s := range statuses {
		if s == nil {
			continue
		}
		for peer := 0; peer < r.sched.Nodes; peer++ {
			if peer == n {
				continue
			}
			p, ok := peerView(s, peer)
			if !ok {
				add("membership", n, peer, "no membership entry after settle")
				continue
			}
			// Convergence: with every fault healed and both rails up,
			// steady state is a direct route to everyone.
			if p.Route != "direct" {
				add("convergence", n, peer, "route %q (rail %d via %d), want direct", p.Route, p.Rail, p.Via)
			}
			// Incarnation: a view of a previous life after its
			// successor rejoined means the rejoin purge leaked. Zero is
			// legitimate ignorance — incarnations are only learned from
			// stamped control frames, and a node that restarted after a
			// peer's boot-time announce may never have seen one.
			if want := r.incarnation[peer]; p.Incarnation != 0 && p.Incarnation != want {
				add("incarnation", n, peer, "sees incarnation %d, peer is running %d", p.Incarnation, want)
			}
			// Membership: the peer must have been heard recently — more
			// than a few silent probe rounds at check time means the
			// failure detector never recovered from the faults.
			stale := r.sched.Horizon.dur() + r.sched.Settle.dur() - 3*r.sched.ProbeInterval.dur()
			if p.LastHeard < stale {
				add("membership", n, peer, "last heard %v, silent since (checked at %v)",
					p.LastHeard, r.sched.Horizon.dur()+r.sched.Settle.dur())
			}
		}
	}
	sortViolations(out.Violations)
}

func peerView(s *core.Status, peer int) (core.PeerStatus, bool) {
	for _, p := range s.Peers {
		if p.Peer == peer {
			return p, true
		}
	}
	return core.PeerStatus{}, false
}

// deliveryWindow is how long the data-plane check waits for its
// datagrams — generous (many probe rounds) on purpose: unlike the
// settle-bounded status invariants, a delivery failure here means the
// cluster lost a route it never gets back.
func (r *runner) deliveryWindow() time.Duration {
	w := 10 * r.sched.ProbeInterval.dur()
	if w < 500*time.Millisecond {
		w = 500 * time.Millisecond
	}
	return w
}

// checkDelivery sends one datagram along every ordered pair and runs
// the clock a generous window; anything undelivered is a violation.
func (r *runner) checkDelivery(out *Outcome) {
	noRoute := make(map[int]bool)
	for src := 0; src < r.sched.Nodes; src++ {
		for dst := 0; dst < r.sched.Nodes; dst++ {
			if src == dst {
				continue
			}
			payload := []byte(fmt.Sprintf("nemesis %d->%d", src, dst))
			if err := r.routers[src].SendData(dst, payload); err != nil {
				noRoute[src*r.sched.Nodes+dst] = true
			}
		}
	}
	r.clk.Advance(r.deliveryWindow())
	var vs []Violation
	for src := 0; src < r.sched.Nodes; src++ {
		for dst := 0; dst < r.sched.Nodes; dst++ {
			key := src*r.sched.Nodes + dst
			if src == dst || r.delivered[key] {
				continue
			}
			detail := "datagram never delivered"
			if noRoute[key] {
				detail = "send refused: no route"
			}
			vs = append(vs, Violation{Invariant: "delivery", Node: src, Peer: dst, Detail: detail})
		}
	}
	sortViolations(vs)
	out.Violations = append(out.Violations, vs...)
}

// budgetCeiling is the most admissions a token bucket (rate tokens
// per second refilling a burst-deep bucket that starts full) can have
// granted over a window.
func budgetCeiling(rate float64, burst int, window time.Duration) int64 {
	return int64(rate*window.Seconds() + float64(burst))
}

// budgetViolations checks one node's counter snapshot against the
// budget's hard admission bound over the run window. Split from the
// runner so the checker is unit-testable without a cluster run.
func budgetViolations(node int, snap map[string]int64, cfg overload.Config, window time.Duration) []Violation {
	var vs []Violation
	if n, ceil := snap[routing.CtrProbeRetransmits], budgetCeiling(cfg.ProbeRate, cfg.ProbeBurst, window); n > ceil {
		vs = append(vs, Violation{Invariant: "budget", Node: node, Peer: -1,
			Detail: fmt.Sprintf("%d probe retransmits, bucket admits at most %d over %v", n, ceil, window)})
	}
	// The query counter counts frames — one per rail per admitted
	// discovery — so the bucket bound scales by the rail count.
	if n, ceil := snap[routing.CtrQueriesSent], budgetCeiling(cfg.QueryRate, cfg.QueryBurst, window)*rails; n > ceil {
		vs = append(vs, Violation{Invariant: "budget", Node: node, Peer: -1,
			Detail: fmt.Sprintf("%d query frames, bucket admits at most %d over %v", n, ceil, window)})
	}
	return vs
}

// checkBudget is the post-heal control-traffic-bound invariant: with a
// budget block armed, every daemon's probe-retransmit and discovery
// counters must sit under what its token buckets could have admitted
// across the entire run — faults, heal, settle and delivery window
// included. A counter above the ceiling means a control path escaped
// its budget. (A restarted node's counters cover its last life only,
// which the full-run ceiling bounds a fortiori.)
func (r *runner) checkBudget(out *Outcome) {
	if r.sched.Budget == nil {
		return
	}
	window := r.sched.Horizon.dur() + r.sched.Settle.dur() + r.deliveryWindow()
	var vs []Violation
	for n, rt := range r.routers {
		if _, ok := rt.(*core.Daemon); !ok {
			continue
		}
		vs = append(vs, budgetViolations(n, rt.Metrics().Snapshot(), r.budget, window)...)
	}
	sortViolations(vs)
	out.Violations = append(out.Violations, vs...)
}

// sortViolations orders violations (invariant, node, peer) so outcome
// rendering is deterministic regardless of how checks accumulate.
func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Invariant != vs[j].Invariant {
			return vs[i].Invariant < vs[j].Invariant
		}
		if vs[i].Node != vs[j].Node {
			return vs[i].Node < vs[j].Node
		}
		return vs[i].Peer < vs[j].Peer
	})
}
