// Package nemesis is the deterministic partition/fault-schedule fuzzer
// for the live daemon stack: it generates randomized schedules of
// network partitions, process crashes, NIC flaps and clock-skew
// windows, executes them against a hermetic cluster (manual wall
// clock, in-memory transport, the same runtime.BuildNode assembly the
// real daemon uses), and after everything heals checks that the
// protocol actually recovered — routes reconverge, no stale
// incarnation survives, membership agrees, and the data plane
// delivers.
//
// Everything is replayable: a schedule is a plain value generated from
// a seed, the run executes on virtual time with every random draw
// coming from seeded rng substreams, so the same schedule always
// produces bit-identical outcomes. When a schedule violates an
// invariant, Shrink reduces it to a minimal failing schedule by
// deterministic delta debugging, and the shrunk schedule serializes to
// JSON as a one-file repro for `drsnemesis -replay`.
package nemesis

import (
	"encoding/json"
	"fmt"
	"time"

	"drsnet/internal/overload"
	"drsnet/internal/transport"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("150ms"), so schedule repro files stay human-readable and -editable.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("nemesis: duration must be a string like \"150ms\": %v", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("nemesis: %v", err)
	}
	*d = Duration(v)
	return nil
}

func (d Duration) dur() time.Duration { return time.Duration(d) }

// Episode kinds.
const (
	// KindPartition is a directed or symmetric cut between two nodes
	// over one rail or all rails, invisible to carrier sensing.
	KindPartition = "partition"
	// KindCrash fail-stops a node's process (no goodbye) and restarts
	// it at the window's end, warm from a checkpoint or cold.
	KindCrash = "crash"
	// KindFlap toggles one of a node's NICs down and up every Period
	// for the length of the window, ending up.
	KindFlap = "flap"
	// KindSkew delays every delivery to a node for the window — the
	// node's clock running behind the cluster.
	KindSkew = "skew"
)

// Directions for partition episodes.
const (
	DirBoth = "both"
	DirTx   = "tx" // only A→B severed; B still reaches A
	DirRx   = "rx" // only B→A severed
)

// AllRails, as an Episode.Rail value, cuts every rail of the pair.
const AllRails = transport.AllRails

// Episode is one fault window in a schedule. Which fields matter
// depends on Kind; Start/Stop bound every kind.
type Episode struct {
	Kind string `json:"kind"`
	// A is the episode's subject node (crash/flap/skew) or the
	// partition's first endpoint.
	A int `json:"a"`
	// B is the partition's second endpoint (partition only).
	B int `json:"b"`
	// Rail selects the severed or flapped rail; AllRails (-1) cuts
	// every rail (partition only — a flap names one NIC).
	Rail int `json:"rail"`
	// Direction orients a partition: "both", "tx" (A→B only) or "rx".
	Direction string `json:"direction,omitempty"`
	// Start and Stop bound the window on the run's virtual clock.
	Start Duration `json:"start"`
	Stop  Duration `json:"stop"`
	// Warm restarts a crashed node from its last checkpoint instead of
	// cold (crash only).
	Warm bool `json:"warm,omitempty"`
	// Period is the flap toggle cadence (flap only).
	Period Duration `json:"period,omitempty"`
	// Skew is the delivery delay imposed on node A (skew only).
	Skew Duration `json:"skew,omitempty"`
}

// String renders the episode as one log-friendly line.
func (e Episode) String() string {
	w := fmt.Sprintf("[%v,%v)", e.Start.dur(), e.Stop.dur())
	switch e.Kind {
	case KindPartition:
		rail := fmt.Sprintf("rail %d", e.Rail)
		if e.Rail == AllRails {
			rail = "all rails"
		}
		return fmt.Sprintf("partition %d–%d %s %s %s", e.A, e.B, e.Direction, rail, w)
	case KindCrash:
		mode := "cold"
		if e.Warm {
			mode = "warm"
		}
		return fmt.Sprintf("crash %d (%s restart) %s", e.A, mode, w)
	case KindFlap:
		return fmt.Sprintf("flap %d rail %d every %v %s", e.A, e.Rail, e.Period.dur(), w)
	case KindSkew:
		return fmt.Sprintf("skew %d by %v %s", e.A, e.Skew.dur(), w)
	}
	return fmt.Sprintf("%s %s", e.Kind, w)
}

// Schedule is one complete nemesis campaign against one cluster: the
// cluster shape, the fault episodes, and the post-heal settle window
// the convergence invariants are given. It serializes to JSON as the
// repro artifact for `drsnemesis -replay`.
type Schedule struct {
	// Seed drives every random decision of the run (the fault
	// controller's impairment draws); the generator also records the
	// seed it was grown from here.
	Seed uint64 `json:"seed"`
	// Nodes is the cluster size (dual-rail, always 2 rails).
	Nodes int `json:"nodes"`
	// Protocol names a registered routing protocol (default "drs").
	Protocol string `json:"protocol,omitempty"`
	// ProbeInterval is the DRS probe cadence (default 100ms).
	ProbeInterval Duration `json:"probeInterval,omitempty"`
	// Budget, when present, enables control-plane overload protection
	// on every DRS daemon and arms the post-heal budget invariant.
	// Absent means disabled — existing repro files replay unchanged.
	Budget *BudgetSpec `json:"budget,omitempty"`
	// Horizon is when every fault is healed: partitions lifted, crashed
	// nodes restarted, flaps ended, skew cleared. Episodes must end by
	// it.
	Horizon Duration `json:"horizon"`
	// Settle is how long after Horizon the cluster gets to reconverge
	// before the invariants are checked. A settle shorter than a few
	// probe rounds makes violations expected — useful for exercising
	// the shrinker, dishonest as a protocol verdict.
	Settle Duration `json:"settle"`
	// Episodes is the fault script.
	Episodes []Episode `json:"episodes"`
}

// rails is fixed: the hermetic cluster is the paper's dual-rail shape.
const rails = 2

// BudgetSpec is a schedule's optional overload-protection block. Its
// presence turns on the token-bucket budgets (and the adaptive RTO
// whose retransmits the probe bucket bounds) for every DRS daemon of
// the run, and arms the post-heal budget invariant: no node's
// control-traffic counters may exceed what its buckets could have
// admitted over the whole run. Zero fields take the overload
// defaults. The degraded-mode governor stays off — the nemesis
// invariant is about the budgets' hard admission bound; the degraded
// state machine has its own tests and the storm campaign.
type BudgetSpec struct {
	// ProbeRate/ProbeBurst bound RTO-driven probe retransmits.
	ProbeRate  float64 `json:"probeRate,omitempty"`
	ProbeBurst int     `json:"probeBurst,omitempty"`
	// QueryRate/QueryBurst bound route-discovery broadcasts.
	QueryRate  float64 `json:"queryRate,omitempty"`
	QueryBurst int     `json:"queryBurst,omitempty"`
}

// config maps the block onto a normalized overload.Config.
func (b *BudgetSpec) config() (overload.Config, error) {
	cfg := overload.Default()
	cfg.DegradedSheds = -1 // budgets without the governor
	if b.ProbeRate != 0 {
		cfg.ProbeRate = b.ProbeRate
	}
	if b.ProbeBurst != 0 {
		cfg.ProbeBurst = b.ProbeBurst
	}
	if b.QueryRate != 0 {
		cfg.QueryRate = b.QueryRate
	}
	if b.QueryBurst != 0 {
		cfg.QueryBurst = b.QueryBurst
	}
	if err := cfg.Normalize(); err != nil {
		return overload.Config{}, err
	}
	return cfg, nil
}

// Validate checks the schedule is executable. Generate always returns
// valid schedules; Validate guards hand-written -replay files.
func (s *Schedule) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("nemesis: %d nodes (want ≥ 2)", s.Nodes)
	}
	if s.Horizon.dur() <= 0 {
		return fmt.Errorf("nemesis: horizon %v must be positive", s.Horizon.dur())
	}
	if s.Settle.dur() < 0 {
		return fmt.Errorf("nemesis: negative settle %v", s.Settle.dur())
	}
	if s.ProbeInterval.dur() < 0 {
		return fmt.Errorf("nemesis: negative probe interval %v", s.ProbeInterval.dur())
	}
	if s.Budget != nil {
		if _, err := s.Budget.config(); err != nil {
			return fmt.Errorf("nemesis: budget: %v", err)
		}
	}
	type window struct{ start, stop time.Duration }
	crashes := make(map[int][]window)
	for i, e := range s.Episodes {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("nemesis: episodes[%d] (%s): %s", i, e.Kind, fmt.Sprintf(format, args...))
		}
		if e.Start.dur() < 0 || e.Stop.dur() <= e.Start.dur() || e.Stop.dur() > s.Horizon.dur() {
			return fail("window [%v,%v) outside (0, horizon %v]", e.Start.dur(), e.Stop.dur(), s.Horizon.dur())
		}
		if e.A < 0 || e.A >= s.Nodes {
			return fail("node %d outside [0,%d)", e.A, s.Nodes)
		}
		switch e.Kind {
		case KindPartition:
			if e.B < 0 || e.B >= s.Nodes || e.B == e.A {
				return fail("peer %d invalid for endpoint %d", e.B, e.A)
			}
			if e.Rail != AllRails && (e.Rail < 0 || e.Rail >= rails) {
				return fail("rail %d outside [0,%d) and not AllRails", e.Rail, rails)
			}
			switch e.Direction {
			case DirBoth, DirTx, DirRx:
			default:
				return fail("direction %q (want both, tx or rx)", e.Direction)
			}
		case KindCrash:
			for _, w := range crashes[e.A] {
				if e.Start.dur() < w.stop && w.start < e.Stop.dur() {
					return fail("overlapping crash windows on node %d", e.A)
				}
			}
			crashes[e.A] = append(crashes[e.A], window{e.Start.dur(), e.Stop.dur()})
		case KindFlap:
			if e.Rail < 0 || e.Rail >= rails {
				return fail("rail %d outside [0,%d)", e.Rail, rails)
			}
			if e.Period.dur() <= 0 {
				return fail("period %v must be positive", e.Period.dur())
			}
		case KindSkew:
			if e.Skew.dur() <= 0 {
				return fail("skew %v must be positive", e.Skew.dur())
			}
		default:
			return fail("unknown kind")
		}
	}
	return nil
}

// without returns a copy of the schedule with episode i removed — the
// shrinker's reduction step.
func (s Schedule) without(i int) Schedule {
	out := s
	out.Episodes = make([]Episode, 0, len(s.Episodes)-1)
	out.Episodes = append(out.Episodes, s.Episodes[:i]...)
	out.Episodes = append(out.Episodes, s.Episodes[i+1:]...)
	return out
}
