package nemesis

// Shrink reduces a failing schedule to a minimal one: repeatedly
// re-run the schedule with one episode removed, keep any removal that
// still violates an invariant, and stop when no single episode can be
// dropped — every surviving episode is necessary for the failure. The
// runs are deterministic, so shrinking is too, and the result replays
// to the same violations every time.
//
// Shrink returns the reduced schedule and its outcome. A schedule that
// does not fail (or fails to run at all) is returned unchanged with a
// nil outcome — shrinking is only meaningful from a failing start.
func Shrink(s Schedule) (Schedule, *Outcome) {
	out, err := Run(s)
	if err != nil || !out.Failed() {
		return s, nil
	}
	for {
		reduced := false
		for i := 0; i < len(s.Episodes); i++ {
			candidate := s.without(i)
			cout, err := Run(candidate)
			if err != nil || !cout.Failed() {
				continue
			}
			s, out = candidate, cout
			reduced = true
			i-- // the next episode slid into slot i
		}
		if !reduced {
			return s, out
		}
	}
}
