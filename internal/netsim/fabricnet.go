package netsim

import (
	"fmt"
	"time"

	"drsnet/internal/rng"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

// FabricNet is the switched-fabric generalization of Network: frames
// cross an arbitrary graph of hosts, switches and trunks with
// store-and-forward serialization on every link they traverse.
//
// Forwarding model: switches run converged shortest-path routing over
// the healthy portion of the fabric — next-hop tables are recomputed
// (lazily, deterministically) whenever a component fails or recovers,
// the way a link-state fabric converges. Frames already in flight
// still hit dead components and are dropped, exactly like Network.
// Hosts do NOT relay inside the fabric: multi-host relaying is the
// routing protocol's job (BCube-style server-centric paths emerge from
// DRS relay routes, not from the wire). A frame whose destination has
// no switch-level path is dropped and counted.
//
// Timing: a frame serializes (at Params.Rate) on each link it
// crosses — the sender's NIC link, every trunk, the receiver's NIC
// link — and pays Params.Latency propagation per link. Each link
// direction has its own busy clock, so disjoint paths never contend.
//
// Failure semantics mirror Network: NICs fail per-direction (gray
// failures), switches and trunks fail whole, FailNode blackholes a
// host's traffic without touching electrical state, and impairments
// (loss/corrupt/delay/jitter) attach to any component, applied at
// each crossing. Randomness is drawn only when an impairment or loss
// process is configured, so healthy runs are byte-identical across
// refactors.
type FabricNet struct {
	sched  *simtime.Scheduler
	fab    *topology.Fabric
	params Params

	nicTx, nicRx []bool // per dense NIC id
	swUp         []bool
	trkUp        []bool
	nodeUp       []bool
	handler      []Handler
	tap          Tap

	// Busy clocks, one per link direction.
	nicBusyUp   []simtime.Time // host → switch
	nicBusyDown []simtime.Time // switch → host
	trkBusyAB   []simtime.Time
	trkBusyBA   []simtime.Time

	rnd    *rng.Source
	impRnd *rng.Source
	imp    map[topology.Component]Impairment

	stats SegmentStats

	// Routing tables: per destination host, the next trunk from every
	// switch toward the destination's nearest live attachment switch.
	// epoch invalidates all tables whenever component state changes.
	epoch  uint64
	routes []*fabricRoute

	// Pooled in-flight events and the pre-bound hop callback.
	freeHop *hopEvent
	hopFn   func(any)
}

// fabricRoute is one destination host's converged routing state.
type fabricRoute struct {
	epoch uint64
	// trunk[s] is the trunk to take from switch s toward the
	// destination (-1 at attachment switches and unreachable ones).
	trunk []int32
	// downNIC[s] is the dense NIC id to deliver through when s is a
	// live attachment switch of the destination (-1 otherwise).
	downNIC []int32
	// dist[s] is the hop distance to the destination (-1 unreachable).
	dist []int32
}

// hopEvent carries one in-flight frame between fabric elements.
type hopEvent struct {
	fr      Frame // Rail is the ingress port; Dst is the final host
	sw      int32 // switch the frame is arriving at (stage switchHop)
	nic     int32 // NIC link being crossed (stages 1 and 2)
	stage   int8  // 0 = at switch, 1 = at host, 2 = post-impairment-delay
	corrupt bool  // a crossing drew a corruption; mangle at delivery
	next    *hopEvent
}

// NewFabricNet builds a healthy fabric network on the scheduler.
// Params.Switched is ignored — a fabric is switched by construction.
func NewFabricNet(sched *simtime.Scheduler, fab *topology.Fabric, params Params, seed uint64) (*FabricNet, error) {
	if sched == nil {
		return nil, fmt.Errorf("netsim: nil scheduler")
	}
	if fab == nil {
		return nil, fmt.Errorf("netsim: nil fabric")
	}
	if err := fab.Validate(); err != nil {
		return nil, err
	}
	if err := params.validate(); err != nil {
		return nil, err
	}
	nics := fab.Hosts() * fab.Ports()
	n := &FabricNet{
		sched:       sched,
		fab:         fab,
		params:      params,
		nicTx:       make([]bool, nics),
		nicRx:       make([]bool, nics),
		swUp:        make([]bool, fab.Switches()),
		trkUp:       make([]bool, fab.Trunks()),
		nodeUp:      make([]bool, fab.Hosts()),
		handler:     make([]Handler, fab.Hosts()),
		nicBusyUp:   make([]simtime.Time, nics),
		nicBusyDown: make([]simtime.Time, nics),
		trkBusyAB:   make([]simtime.Time, fab.Trunks()),
		trkBusyBA:   make([]simtime.Time, fab.Trunks()),
		rnd:         rng.New(seed),
		routes:      make([]*fabricRoute, fab.Hosts()),
	}
	n.impRnd = n.rnd.Split(0xc4a05)
	n.hopFn = n.hop
	for i := range n.nicTx {
		n.nicTx[i], n.nicRx[i] = true, true
	}
	for i := range n.swUp {
		n.swUp[i] = true
	}
	for i := range n.trkUp {
		n.trkUp[i] = true
	}
	for i := range n.nodeUp {
		n.nodeUp[i] = true
	}
	return n, nil
}

// Fabric returns the fabric shape.
func (n *FabricNet) Fabric() *topology.Fabric { return n.fab }

// Nodes returns the number of hosts.
func (n *FabricNet) Nodes() int { return n.fab.Hosts() }

// Rails returns the number of NIC ports per host.
func (n *FabricNet) Rails() int { return n.fab.Ports() }

// Scheduler returns the driving scheduler.
func (n *FabricNet) Scheduler() *simtime.Scheduler { return n.sched }

// SetHandler installs the frame handler for host.
func (n *FabricNet) SetHandler(host int, h Handler) {
	n.checkHost(host)
	n.handler[host] = h
}

// SetTap installs (or removes) the frame observer.
func (n *FabricNet) SetTap(t Tap) { n.tap = t }

func (n *FabricNet) checkHost(h int) {
	if h < 0 || h >= n.fab.Hosts() {
		panic(fmt.Sprintf("netsim: host %d out of range [0,%d)", h, n.fab.Hosts()))
	}
}

// invalidateRoutes marks every cached routing table stale.
func (n *FabricNet) invalidateRoutes() { n.epoch++ }

// routeFor returns dst's converged routing table, rebuilding it if
// component state changed since it was computed. The rebuild is a
// multi-source BFS from dst's live attachment switches over healthy
// switches and trunks, with deterministic ascending-id tie-breaks.
func (n *FabricNet) routeFor(dst int) *fabricRoute {
	rt := n.routes[dst]
	if rt != nil && rt.epoch == n.epoch {
		return rt
	}
	S := n.fab.Switches()
	if rt == nil {
		rt = &fabricRoute{
			trunk:   make([]int32, S),
			downNIC: make([]int32, S),
			dist:    make([]int32, S),
		}
		n.routes[dst] = rt
	}
	rt.epoch = n.epoch
	for s := 0; s < S; s++ {
		rt.trunk[s], rt.downNIC[s], rt.dist[s] = -1, -1, -1
	}
	// Seed with dst's live attachment switches, lowest port first so
	// a switch serving the host through two ports uses the lowest.
	queue := make([]int32, 0, S)
	for p := 0; p < n.fab.Ports(); p++ {
		nic := dst*n.fab.Ports() + p
		s := n.fab.HostSwitch(dst, p)
		if !n.nicRx[nic] || !n.swUp[s] {
			continue
		}
		if rt.dist[s] < 0 {
			rt.dist[s] = 0
			rt.downNIC[s] = int32(nic)
			queue = append(queue, int32(s))
		}
	}
	for head := 0; head < len(queue); head++ {
		u := int(queue[head])
		n.fab.SwitchNeighbors(u, func(v, t int) {
			if rt.dist[v] >= 0 || !n.trkUp[t] || !n.swUp[v] {
				return
			}
			rt.dist[v] = rt.dist[u] + 1
			rt.trunk[v] = int32(t) // trunk from v toward u (toward dst)
			queue = append(queue, int32(v))
		})
	}
	return rt
}

// Send transmits payload from src's port rail toward dst (or
// Broadcast). Semantics mirror Network.Send: the call never blocks
// and drops are silent but counted.
func (n *FabricNet) Send(src, rail, dst int, payload []byte) error {
	n.checkHost(src)
	if rail < 0 || rail >= n.fab.Ports() {
		return fmt.Errorf("netsim: rail %d out of range", rail)
	}
	if dst != Broadcast {
		n.checkHost(dst)
		if dst == src {
			return fmt.Errorf("netsim: node %d sending to itself", src)
		}
	}
	n.stats.FramesSent++
	if n.tap != nil {
		n.tap.FrameSent(n.sched.Now().Duration(), Frame{Src: src, Dst: dst, Rail: rail, Payload: payload})
	}
	if !n.nodeUp[src] {
		n.stats.DroppedNodeDown++
		return nil
	}
	nic := src*n.fab.Ports() + rail
	if !n.nicTx[nic] {
		n.stats.DroppedTxNIC++
		return nil
	}
	entry := n.fab.HostSwitch(src, rail)
	if !n.swUp[entry] {
		n.stats.DroppedSegment++
		return nil
	}
	drop, extra, corrupt := n.impair2(n.fab.NIC(src, rail), n.fab.Switch(entry))
	if drop {
		n.stats.DroppedImpaired++
		return nil
	}

	txTime, bits := n.wireTime(len(payload))
	data := append([]byte(nil), payload...)
	if corrupt {
		n.mangleFabric(data)
		n.stats.Corrupted++
	}

	// Serialize once on the sender's NIC link, then fan out.
	start := n.sched.Now()
	if n.nicBusyUp[nic] > start {
		start = n.nicBusyUp[nic]
	}
	end := start.Add(txTime)
	n.nicBusyUp[nic] = end
	n.stats.BitsSent += bits
	arrive := end.Add(n.params.Latency + extra)

	if dst == Broadcast {
		// Replicate toward every other host, ascending, sharing the
		// single ingress serialization — an L2 flood.
		for h := 0; h < n.fab.Hosts(); h++ {
			if h == src {
				continue
			}
			fr := Frame{Src: src, Dst: h, Rail: rail, Payload: data}
			n.schedHop(arrive, &hopEvent{fr: fr, sw: int32(entry), stage: 0})
		}
		return nil
	}
	fr := Frame{Src: src, Dst: dst, Rail: rail, Payload: data}
	n.schedHop(arrive, &hopEvent{fr: fr, sw: int32(entry), stage: 0})
	return nil
}

// wireTime returns the serialization time and on-wire bits of a
// payload under the fabric's parameters.
func (n *FabricNet) wireTime(payloadLen int) (time.Duration, float64) {
	wire := payloadLen + n.params.OverheadBytes
	if wire < n.params.MinFrameBytes {
		wire = n.params.MinFrameBytes
	}
	return time.Duration(float64(wire*8) / n.params.Rate * float64(time.Second)), float64(wire * 8)
}

// schedHop schedules ev (recycling from the freelist when the caller
// built it on the stack is not possible — see allocHop) at time at.
func (n *FabricNet) schedHop(at simtime.Time, ev *hopEvent) {
	p := n.allocHop()
	*p = hopEvent{fr: ev.fr, sw: ev.sw, nic: ev.nic, stage: ev.stage, corrupt: ev.corrupt}
	n.sched.AtCall(at, n.hopFn, p)
}

func (n *FabricNet) allocHop() *hopEvent {
	if ev := n.freeHop; ev != nil {
		n.freeHop = ev.next
		ev.next = nil
		return ev
	}
	return new(hopEvent)
}

func (n *FabricNet) freeHopEvent(ev *hopEvent) {
	*ev = hopEvent{next: n.freeHop}
	n.freeHop = ev
}

// hop is the scheduler callback for every fabric traversal event.
func (n *FabricNet) hop(arg any) {
	ev := arg.(*hopEvent)
	e := *ev
	n.freeHopEvent(ev)
	switch e.stage {
	case 0:
		n.switchArrive(e)
	case 1:
		n.hostArrive(e)
	default:
		n.hostFinal(e)
	}
}

// switchArrive handles a frame reaching switch e.sw: deliver down to
// the destination host if attached here, otherwise forward along the
// converged route.
func (n *FabricNet) switchArrive(e hopEvent) {
	sw := int(e.sw)
	if !n.swUp[sw] {
		n.stats.DroppedSegment++
		return
	}
	rt := n.routeFor(e.fr.Dst)
	switch {
	case rt.downNIC[sw] >= 0:
		// Attachment switch: serialize down the host link.
		nic := rt.downNIC[sw]
		drop, extra, corrupt := n.impair1(n.fab.NIC(int(nic)/n.fab.Ports(), int(nic)%n.fab.Ports()))
		if drop {
			n.stats.DroppedImpaired++
			return
		}
		txTime, bits := n.wireTime(len(e.fr.Payload))
		start := n.sched.Now()
		if n.nicBusyDown[nic] > start {
			start = n.nicBusyDown[nic]
		}
		end := start.Add(txTime)
		n.nicBusyDown[nic] = end
		n.stats.BitsSent += bits
		e.nic = nic
		e.stage = 1
		e.corrupt = e.corrupt || corrupt
		n.schedHop(end.Add(n.params.Latency+extra), &e)
	case rt.trunk[sw] >= 0:
		t := int(rt.trunk[sw])
		if !n.trkUp[t] {
			// Route table converged before this in-flight frame arrived.
			n.stats.DroppedSegment++
			return
		}
		tr := n.fab.Trunk(t)
		peer := tr.A
		busy := &n.trkBusyBA[t]
		if sw == tr.A {
			peer = tr.B
			busy = &n.trkBusyAB[t]
		}
		if !n.swUp[peer] {
			n.stats.DroppedSegment++
			return
		}
		drop, extra, corrupt := n.impair1(n.fab.TrunkComp(t))
		if drop {
			n.stats.DroppedImpaired++
			return
		}
		txTime, bits := n.wireTime(len(e.fr.Payload))
		start := n.sched.Now()
		if *busy > start {
			start = *busy
		}
		end := start.Add(txTime)
		*busy = end
		n.stats.BitsSent += bits
		e.sw = int32(peer)
		e.corrupt = e.corrupt || corrupt
		n.schedHop(end.Add(n.params.Latency+extra), &e)
	default:
		// No live path to the destination.
		n.stats.DroppedSegment++
	}
}

// hostArrive is the final hop into the receiver, mirroring Network's
// deliverTo: the receive-side NIC impairment is drawn here, and a
// delayed frame re-checks component state when the delay elapses.
func (n *FabricNet) hostArrive(e hopEvent) {
	if !n.nicRx[e.nic] {
		n.stats.DroppedRxNIC++
		return
	}
	if !n.nodeUp[e.fr.Dst] {
		n.stats.DroppedNodeDown++
		return
	}
	corrupt := e.corrupt
	if n.imp != nil {
		if imp, ok := n.imp[topology.Component(e.nic)]; ok {
			if imp.Loss > 0 && n.impRnd.Float64() < imp.Loss {
				n.stats.DroppedImpaired++
				return
			}
			if imp.Corrupt > 0 && n.impRnd.Float64() < imp.Corrupt {
				corrupt = true
			}
			extra := imp.Delay
			if imp.Jitter > 0 {
				extra += time.Duration(n.impRnd.Uint64n(uint64(imp.Jitter)))
			}
			if extra > 0 {
				// Stage 2 skips the impairment draw — the delay has
				// already been applied — but re-checks NIC and process
				// state at the deferred instant, like completeDelivery.
				e.corrupt = corrupt
				e.stage = 2
				n.schedHop(n.sched.Now().Add(extra), &e)
				return
			}
		}
	}
	n.finishDelivery(e, corrupt)
}

// hostFinal completes a delivery that an rx impairment delayed.
func (n *FabricNet) hostFinal(e hopEvent) {
	if !n.nicRx[e.nic] {
		n.stats.DroppedRxNIC++
		return
	}
	if !n.nodeUp[e.fr.Dst] {
		n.stats.DroppedNodeDown++
		return
	}
	n.finishDelivery(e, e.corrupt)
}

func (n *FabricNet) finishDelivery(e hopEvent, corrupt bool) {
	if n.params.LossRate > 0 && n.rnd.Float64() < n.params.LossRate {
		n.stats.DroppedLoss++
		return
	}
	h := n.handler[e.fr.Dst]
	if h == nil {
		return
	}
	n.stats.FramesDelivered++
	// Every delivery gets a private copy: the backing buffer is shared
	// with broadcast siblings still in flight, and receivers may retain
	// payloads (discovery queues do).
	payload := append([]byte(nil), e.fr.Payload...)
	if corrupt {
		n.mangleFabric(payload)
		n.stats.Corrupted++
	}
	// The delivery rail is the port the frame finally came in through.
	rail := int(e.nic) % n.fab.Ports()
	out := Frame{Src: e.fr.Src, Dst: e.fr.Dst, Rail: rail, Payload: payload}
	if n.tap != nil {
		n.tap.FrameDelivered(n.sched.Now().Duration(), out)
	}
	h(out)
}

// impair1 draws the impairment for one component crossing.
func (n *FabricNet) impair1(c topology.Component) (drop bool, extra time.Duration, corrupt bool) {
	if n.imp == nil {
		return false, 0, false
	}
	imp, ok := n.imp[c]
	if !ok {
		return false, 0, false
	}
	if imp.Loss > 0 && n.impRnd.Float64() < imp.Loss {
		return true, 0, false
	}
	extra = imp.Delay
	if imp.Jitter > 0 {
		extra += time.Duration(n.impRnd.Uint64n(uint64(imp.Jitter)))
	}
	if imp.Corrupt > 0 && n.impRnd.Float64() < imp.Corrupt {
		corrupt = true
	}
	return false, extra, corrupt
}

// impair2 draws impairments for two components in order.
func (n *FabricNet) impair2(a, b topology.Component) (drop bool, extra time.Duration, corrupt bool) {
	if n.imp == nil {
		return false, 0, false
	}
	d1, e1, c1 := n.impair1(a)
	if d1 {
		return true, 0, false
	}
	d2, e2, c2 := n.impair1(b)
	if d2 {
		return true, 0, false
	}
	return false, e1 + e2, c1 || c2
}

// mangleFabric flips one byte in place (see Network.mangle).
func (n *FabricNet) mangleFabric(data []byte) {
	if len(data) == 0 {
		return
	}
	i := n.impRnd.Intn(len(data))
	data[i] ^= byte(1 + n.impRnd.Intn(255))
}

// Fail takes a component down. Direction is meaningful only for NICs.
func (n *FabricNet) Fail(c topology.Component) { n.FailDir(c, DirBoth) }

// Restore brings a component back.
func (n *FabricNet) Restore(c topology.Component) { n.RestoreDir(c, DirBoth) }

// FailDir takes one direction of a NIC down; for switches and trunks
// the direction is ignored and the whole component fails.
func (n *FabricNet) FailDir(c topology.Component, dir Direction) {
	n.setComponent(c, dir, false)
}

// RestoreDir brings one direction of a component back.
func (n *FabricNet) RestoreDir(c topology.Component, dir Direction) {
	n.setComponent(c, dir, true)
}

func (n *FabricNet) setComponent(c topology.Component, dir Direction, up bool) {
	kind, a, b := n.fab.Describe(c)
	switch kind {
	case topology.KindNIC:
		nic := a*n.fab.Ports() + b
		if dir == DirBoth || dir == DirTx {
			n.nicTx[nic] = up
		}
		if dir == DirBoth || dir == DirRx {
			n.nicRx[nic] = up
		}
	case topology.KindSwitch:
		n.swUp[a] = up
	case topology.KindTrunk:
		n.trkUp[a] = up
	}
	n.invalidateRoutes()
}

// FailNode fail-stops host's daemon process (see Network.FailNode).
func (n *FabricNet) FailNode(host int) {
	n.checkHost(host)
	n.nodeUp[host] = false
}

// RestoreNode brings a fail-stopped host's process back.
func (n *FabricNet) RestoreNode(host int) {
	n.checkHost(host)
	n.nodeUp[host] = true
}

// NodeUp reports whether host's daemon process is running.
func (n *FabricNet) NodeUp(host int) bool {
	n.checkHost(host)
	return n.nodeUp[host]
}

// ComponentUp reports whether a component is fully operational.
func (n *FabricNet) ComponentUp(c topology.Component) bool {
	kind, a, b := n.fab.Describe(c)
	switch kind {
	case topology.KindNIC:
		nic := a*n.fab.Ports() + b
		return n.nicTx[nic] && n.nicRx[nic]
	case topology.KindSwitch:
		return n.swUp[a]
	default:
		return n.trkUp[a]
	}
}

// DirUp reports whether the given direction of a component works.
func (n *FabricNet) DirUp(c topology.Component, dir Direction) bool {
	kind, a, b := n.fab.Describe(c)
	if kind != topology.KindNIC {
		return n.ComponentUp(c)
	}
	nic := a*n.fab.Ports() + b
	switch dir {
	case DirTx:
		return n.nicTx[nic]
	case DirRx:
		return n.nicRx[nic]
	default:
		return n.nicTx[nic] && n.nicRx[nic]
	}
}

// SetImpairment installs (or replaces) the impairment on component c.
func (n *FabricNet) SetImpairment(c topology.Component, imp Impairment) error {
	if err := imp.Validate(); err != nil {
		return err
	}
	n.fab.Describe(c) // range check
	if imp.IsZero() {
		n.ClearImpairment(c)
		return nil
	}
	if n.imp == nil {
		n.imp = make(map[topology.Component]Impairment)
	}
	n.imp[c] = imp
	return nil
}

// ClearImpairment removes any impairment on c.
func (n *FabricNet) ClearImpairment(c topology.Component) {
	delete(n.imp, c)
	if len(n.imp) == 0 {
		n.imp = nil
	}
}

// ImpairmentOn returns the active impairment on c, if any.
func (n *FabricNet) ImpairmentOn(c topology.Component) (Impairment, bool) {
	imp, ok := n.imp[c]
	return imp, ok
}

// CarrierUp reports whether src's port rail currently has a converged
// fabric path to peer: the local transmit half, the fabric route and
// peer's delivery link are all alive. On a fabric this is the
// link-state view a converged switching layer exposes to its hosts,
// the closest analogue of the dual-rail carrier oracle.
func (n *FabricNet) CarrierUp(src, peer, rail int) bool {
	n.checkHost(src)
	n.checkHost(peer)
	if rail < 0 || rail >= n.fab.Ports() {
		panic(fmt.Sprintf("netsim: rail %d out of range", rail))
	}
	nic := src*n.fab.Ports() + rail
	if !n.nicTx[nic] {
		return false
	}
	entry := n.fab.HostSwitch(src, rail)
	if !n.swUp[entry] {
		return false
	}
	rt := n.routeFor(peer)
	return rt.dist[entry] >= 0
}

// Reachable reports ground-truth connectivity from src to dst,
// including protocol-level relaying through intermediate hosts whose
// daemons are running — the oracle invariant checkers use. A hop into
// a host needs its receive NIC; a hop out needs a transmit NIC; every
// intermediate host needs its process up.
func (n *FabricNet) Reachable(src, dst int) bool {
	n.checkHost(src)
	n.checkHost(dst)
	if !n.nodeUp[src] || !n.nodeUp[dst] {
		return false
	}
	if src == dst {
		return true
	}
	hosts, ports := n.fab.Hosts(), n.fab.Ports()
	verts := hosts + n.fab.Switches()
	visited := make([]bool, verts)
	visited[src] = true
	queue := make([]int, 0, verts)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if u < hosts {
			// Host → its switches, via live transmit NICs. Intermediate
			// hosts relay only when their process is up (src always is).
			if u != src && !n.nodeUp[u] {
				continue
			}
			for p := 0; p < ports; p++ {
				nic := u*ports + p
				s := hosts + n.fab.HostSwitch(u, p)
				if !n.nicTx[nic] || !n.swUp[s-hosts] || visited[s] {
					continue
				}
				visited[s] = true
				queue = append(queue, s)
			}
			continue
		}
		// Switch → neighbour switches over live trunks, and down to
		// attached hosts via live receive NICs.
		sw := u - hosts
		n.fab.SwitchNeighbors(sw, func(v, t int) {
			if visited[hosts+v] || !n.trkUp[t] || !n.swUp[v] {
				return
			}
			visited[hosts+v] = true
			queue = append(queue, hosts+v)
		})
		for h := 0; h < hosts; h++ {
			if visited[h] {
				continue
			}
			for p := 0; p < ports; p++ {
				if n.fab.HostSwitch(h, p) == sw && n.nicRx[h*ports+p] {
					if h == dst {
						return true
					}
					visited[h] = true
					queue = append(queue, h)
					break
				}
			}
		}
	}
	return false
}

// FailedComponents returns the currently failed components ascending.
func (n *FabricNet) FailedComponents() []topology.Component {
	var out []topology.Component
	for i := 0; i < n.fab.Components(); i++ {
		c := topology.Component(i)
		if !n.ComponentUp(c) {
			out = append(out, c)
		}
	}
	return out
}

// Stats returns a copy of the aggregate traffic counters. A fabric
// has one counter set; any in-range rail index returns it.
func (n *FabricNet) Stats(rail int) SegmentStats {
	if rail < 0 || rail >= n.fab.Ports() {
		panic(fmt.Sprintf("netsim: rail %d out of range", rail))
	}
	return n.stats
}

// Utilization returns the fraction of total fabric link capacity
// consumed so far (all links aggregated; same value for any rail).
func (n *FabricNet) Utilization(rail int) float64 {
	if rail < 0 || rail >= n.fab.Ports() {
		panic(fmt.Sprintf("netsim: rail %d out of range", rail))
	}
	elapsed := n.sched.Now().Duration().Seconds()
	if elapsed <= 0 {
		return 0
	}
	links := float64(n.fab.Hosts()*n.fab.Ports() + n.fab.Trunks())
	return n.stats.BitsSent / (n.params.Rate * links * elapsed)
}
