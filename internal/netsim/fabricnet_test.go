package netsim

import (
	"bytes"
	"testing"
	"time"

	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

func newFatTreeNet(t *testing.T, k int) (*simtime.Scheduler, *FabricNet) {
	t.Helper()
	f, err := topology.FatTree(k)
	if err != nil {
		t.Fatal(err)
	}
	sched := simtime.NewScheduler()
	n, err := NewFabricNet(sched, f, DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return sched, n
}

// collect installs a recording handler on every host.
func collect(n *FabricNet) *[]Frame {
	var got []Frame
	for h := 0; h < n.Nodes(); h++ {
		n.SetHandler(h, func(fr Frame) { got = append(got, fr) })
	}
	return &got
}

func TestFabricNetUnicastAcrossPods(t *testing.T) {
	sched, n := newFatTreeNet(t, 4)
	got := collect(n)

	// Host 0 (pod 0) to host 15 (pod 3): the longest path class —
	// NIC up, edge→agg, agg→core, core→agg, agg→edge, NIC down.
	payload := []byte("cross-pod")
	if err := n.Send(0, 0, 15, payload); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(*got) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(*got))
	}
	fr := (*got)[0]
	if fr.Src != 0 || fr.Dst != 15 || !bytes.Equal(fr.Payload, payload) {
		t.Fatalf("bad delivery %+v", fr)
	}
	// Store-and-forward: six link crossings, each serializing the full
	// frame and paying propagation latency.
	p := DefaultParams()
	wire := len(payload) + p.OverheadBytes
	if wire < p.MinFrameBytes {
		wire = p.MinFrameBytes
	}
	tx := time.Duration(float64(wire*8) / p.Rate * float64(time.Second))
	want := 6 * (tx + p.Latency)
	if at := sched.Now().Duration(); at != want {
		t.Fatalf("cross-pod delivery at %v, want %v (6 store-and-forward hops)", at, want)
	}

	// Same-ToR traffic takes exactly two crossings.
	*got = (*got)[:0]
	if err := n.Send(2, 0, 3, payload); err != nil {
		t.Fatal(err)
	}
	before := sched.Now().Duration()
	sched.Run(0)
	if len(*got) != 1 {
		t.Fatalf("same-ToR: got %d deliveries, want 1", len(*got))
	}
	if at := sched.Now().Duration() - before; at != 2*(tx+p.Latency) {
		t.Fatalf("same-ToR delivery took %v, want %v", at, 2*(tx+p.Latency))
	}
}

func TestFabricNetBroadcastFloods(t *testing.T) {
	sched, n := newFatTreeNet(t, 4)
	got := collect(n)
	if err := n.Send(5, 0, Broadcast, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(*got) != n.Nodes()-1 {
		t.Fatalf("broadcast reached %d hosts, want %d", len(*got), n.Nodes()-1)
	}
	seen := map[int]bool{}
	for _, fr := range *got {
		if fr.Src != 5 {
			t.Fatalf("broadcast delivery with src %d", fr.Src)
		}
		if seen[fr.Dst] {
			t.Fatalf("host %d received the broadcast twice", fr.Dst)
		}
		seen[fr.Dst] = true
	}
}

// Failing a ToR switch severs its single-homed hosts; the drop is
// counted, and restoring the switch heals the path (satellite: Fail on
// a switch component).
func TestFabricNetSwitchFailure(t *testing.T) {
	sched, n := newFatTreeNet(t, 4)
	got := collect(n)
	tor := n.Fabric().Switch(0) // hosts 0 and 1 attach here

	n.Fail(tor)
	if n.ComponentUp(tor) {
		t.Fatal("failed switch reports up")
	}
	if err := n.Send(0, 0, 15, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(15, 0, 0, []byte("y")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(*got) != 0 {
		t.Fatalf("deliveries through a failed ToR: %d", len(*got))
	}
	if s := n.Stats(0); s.DroppedSegment != 2 {
		t.Fatalf("DroppedSegment = %d, want 2 (one per direction)", s.DroppedSegment)
	}
	if n.Reachable(0, 15) {
		t.Fatal("host 0 should be unreachable with its ToR down")
	}
	// Hosts in other pods are unaffected.
	if !n.Reachable(2, 15) {
		t.Fatal("hosts 2 and 15 should still be connected")
	}

	n.Restore(tor)
	if err := n.Send(0, 0, 15, []byte("z")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(*got) != 1 {
		t.Fatalf("restore did not heal the path: %d deliveries", len(*got))
	}
}

// A trunk failure reroutes through the pod's other aggregation path —
// converged routing, not a drop.
func TestFabricNetTrunkFailureReroutes(t *testing.T) {
	sched, n := newFatTreeNet(t, 4)
	got := collect(n)
	fab := n.Fabric()

	// Fail one edge↔agg trunk out of host 0's ToR (trunks 0 and 1 are
	// edge 0's two uplinks); either way one uplink remains.
	n.Fail(fab.TrunkComp(0))
	if err := n.Send(0, 0, 15, []byte("reroute")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(*got) != 1 {
		t.Fatalf("trunk failure was not routed around: %d deliveries", len(*got))
	}
	// Failing both uplinks leaves no route: counted as a segment drop.
	n.Fail(fab.TrunkComp(1))
	*got = (*got)[:0]
	if err := n.Send(0, 0, 15, []byte("stranded")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(*got) != 0 {
		t.Fatalf("delivery despite both uplinks down")
	}
	if s := n.Stats(0); s.DroppedSegment == 0 {
		t.Fatal("no-route drop was not counted")
	}
	// Same-ToR traffic never leaves the edge switch and still works.
	if err := n.Send(0, 0, 1, []byte("local")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(*got) != 1 {
		t.Fatal("same-ToR delivery should not need uplinks")
	}
}

// Impairments on switch-attached links (satellite: loss, corruption
// and delay on trunks and switches, not just NICs).
func TestFabricNetImpairments(t *testing.T) {
	t.Run("loss on entry switch", func(t *testing.T) {
		sched, n := newFatTreeNet(t, 4)
		got := collect(n)
		entry := n.Fabric().Switch(0)
		if err := n.SetImpairment(entry, Impairment{Loss: 1}); err != nil {
			t.Fatal(err)
		}
		if err := n.Send(0, 0, 15, []byte("eaten")); err != nil {
			t.Fatal(err)
		}
		sched.Run(0)
		if len(*got) != 0 {
			t.Fatal("frame survived a loss-1.0 switch impairment")
		}
		if s := n.Stats(0); s.DroppedImpaired != 1 {
			t.Fatalf("DroppedImpaired = %d, want 1", s.DroppedImpaired)
		}
		n.ClearImpairment(entry)
		if err := n.Send(0, 0, 15, []byte("alive")); err != nil {
			t.Fatal(err)
		}
		sched.Run(0)
		if len(*got) != 1 {
			t.Fatal("clearing the impairment did not heal the path")
		}
	})

	t.Run("corrupt on trunk", func(t *testing.T) {
		sched, n := newFatTreeNet(t, 4)
		got := collect(n)
		fab := n.Fabric()
		// Impair every trunk so the corruption fires whichever path the
		// converged route picks.
		for tr := 0; tr < fab.Trunks(); tr++ {
			if err := n.SetImpairment(fab.TrunkComp(tr), Impairment{Corrupt: 1}); err != nil {
				t.Fatal(err)
			}
		}
		payload := []byte("pristine-bytes")
		if err := n.Send(0, 0, 15, payload); err != nil {
			t.Fatal(err)
		}
		sched.Run(0)
		if len(*got) != 1 {
			t.Fatalf("corrupted frame should still deliver, got %d", len(*got))
		}
		if bytes.Equal((*got)[0].Payload, payload) {
			t.Fatal("payload crossed corrupt trunks unmangled")
		}
		if s := n.Stats(0); s.Corrupted == 0 {
			t.Fatal("corruption not counted")
		}
	})

	t.Run("delay on trunk", func(t *testing.T) {
		sched, n := newFatTreeNet(t, 4)
		got := collect(n)
		fab := n.Fabric()
		const extra = 3 * time.Millisecond
		for tr := 0; tr < fab.Trunks(); tr++ {
			if err := n.SetImpairment(fab.TrunkComp(tr), Impairment{Delay: extra}); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Send(0, 0, 15, []byte("late")); err != nil {
			t.Fatal(err)
		}
		sched.Run(0)
		if len(*got) != 1 {
			t.Fatal("delayed frame vanished")
		}
		// Cross-pod path crosses four trunks; each adds the fixed delay.
		if at := sched.Now().Duration(); at < 4*extra {
			t.Fatalf("delivery at %v, want ≥ %v of accumulated trunk delay", at, 4*extra)
		}
	})

	t.Run("rx delay re-checks NIC state", func(t *testing.T) {
		sched, n := newFatTreeNet(t, 4)
		got := collect(n)
		fab := n.Fabric()
		nic := fab.NIC(15, 0)
		if err := n.SetImpairment(nic, Impairment{Delay: time.Second}); err != nil {
			t.Fatal(err)
		}
		if err := n.Send(0, 0, 15, []byte("doomed")); err != nil {
			t.Fatal(err)
		}
		// The NIC dies while the impairment is holding the frame.
		sched.RunUntil(simtime.Time(500 * time.Millisecond))
		n.FailDir(nic, DirRx)
		sched.Run(0)
		if len(*got) != 0 {
			t.Fatal("frame delivered through a NIC that died mid-delay")
		}
		if s := n.Stats(0); s.DroppedRxNIC != 1 {
			t.Fatalf("DroppedRxNIC = %d, want 1", s.DroppedRxNIC)
		}
	})
}

// BCube has no trunks: the wire only connects hosts sharing a switch,
// and inter-switch pairs need protocol-level host relaying (which the
// routing layer, not the fabric, provides).
func TestFabricNetBCubeServerCentric(t *testing.T) {
	f, err := topology.BCube(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched := simtime.NewScheduler()
	n, err := NewFabricNet(sched, f, DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(n)

	// Hosts 0 and 1 share level-0 switch 0: port 0 connects them.
	if err := n.Send(0, 0, 1, []byte("row")); err != nil {
		t.Fatal(err)
	}
	// Hosts 0 and 4 share level-1 switch 4: port 1 connects them.
	if err := n.Send(0, 1, 4, []byte("col")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(*got) != 2 {
		t.Fatalf("same-switch sends delivered %d, want 2", len(*got))
	}
	// Hosts 0 and 5 share no switch: the fabric cannot carry it (the
	// DRS's relay machinery can, one transport hop at a time).
	*got = (*got)[:0]
	if err := n.Send(0, 0, 5, []byte("diagonal")); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(0, 1, 5, []byte("diagonal")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(*got) != 0 {
		t.Fatal("no-shared-switch pair delivered without a relay")
	}
	if s := n.Stats(0); s.DroppedSegment != 2 {
		t.Fatalf("DroppedSegment = %d, want 2", s.DroppedSegment)
	}
	// The reachability oracle knows hosts relay: 0 can reach 5 through
	// an intermediate host as long as processes are up.
	if !n.Reachable(0, 5) {
		t.Fatal("oracle should see the host-relay path 0→4→5")
	}
	n.FailNode(4)
	// Other relays exist (0→1→5 via column switches), so still true.
	if !n.Reachable(0, 5) {
		t.Fatal("a single dead relay should not sever BCube(4,1)")
	}
}

func TestFabricNetCarrier(t *testing.T) {
	_, n := newFatTreeNet(t, 4)
	if !n.CarrierUp(0, 15, 0) {
		t.Fatal("healthy fabric should show carrier")
	}
	// A fail-stopped peer process keeps link lights on.
	n.FailNode(15)
	if !n.CarrierUp(0, 15, 0) {
		t.Fatal("carrier must ignore process state")
	}
	n.RestoreNode(15)
	// Peer's delivery NIC down: converged routing has no path.
	n.FailDir(n.Fabric().NIC(15, 0), DirRx)
	if n.CarrierUp(0, 15, 0) {
		t.Fatal("carrier should drop when the peer's rx NIC dies")
	}
	n.RestoreDir(n.Fabric().NIC(15, 0), DirRx)
	// Local tx half down.
	n.FailDir(n.Fabric().NIC(0, 0), DirTx)
	if n.CarrierUp(0, 15, 0) {
		t.Fatal("carrier should drop when the local tx half dies")
	}
}

func TestFabricNetNodeFailBlackholes(t *testing.T) {
	sched, n := newFatTreeNet(t, 4)
	got := collect(n)
	n.FailNode(3)
	if err := n.Send(3, 0, 5, []byte("from-dead")); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(5, 0, 3, []byte("to-dead")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(*got) != 0 {
		t.Fatalf("fail-stopped node exchanged %d frames", len(*got))
	}
	if s := n.Stats(0); s.DroppedNodeDown != 2 {
		t.Fatalf("DroppedNodeDown = %d, want 2", s.DroppedNodeDown)
	}
	// NICs stay electrically up.
	if !n.ComponentUp(n.Fabric().NIC(3, 0)) {
		t.Fatal("FailNode must not touch NIC state")
	}
}
