package netsim

import (
	"bytes"
	"testing"
	"time"

	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

// impairRig is a two-node dual-rail network with delivery recording.
type impairRig struct {
	sched *simtime.Scheduler
	net   *Network
	got   map[int][]Frame
}

func newImpairRig(t *testing.T, params Params) *impairRig {
	t.Helper()
	sched := simtime.NewScheduler()
	net, err := New(sched, topology.Dual(2), params, 42)
	if err != nil {
		t.Fatal(err)
	}
	rig := &impairRig{sched: sched, net: net, got: map[int][]Frame{}}
	for node := 0; node < 2; node++ {
		node := node
		net.SetHandler(node, func(fr Frame) { rig.got[node] = append(rig.got[node], fr) })
	}
	return rig
}

// TestUnidirectionalTxFailure: a TX-dead NIC eats the node's own
// frames on that rail while frames TO the node still arrive.
func TestUnidirectionalTxFailure(t *testing.T) {
	rig := newImpairRig(t, DefaultParams())
	nic := rig.net.Cluster().NIC(0, 0)
	rig.net.FailDir(nic, DirTx)

	if rig.net.ComponentUp(nic) {
		t.Fatal("half-failed NIC reports fully up")
	}
	if !rig.net.DirUp(nic, DirRx) || rig.net.DirUp(nic, DirTx) {
		t.Fatal("direction state wrong after FailDir(DirTx)")
	}

	if err := rig.net.Send(0, 0, 1, []byte("out")); err != nil {
		t.Fatal(err)
	}
	if err := rig.net.Send(1, 0, 0, []byte("in")); err != nil {
		t.Fatal(err)
	}
	rig.sched.Run(0)
	if len(rig.got[1]) != 0 {
		t.Fatalf("TX-dead NIC transmitted: %v", rig.got[1])
	}
	if len(rig.got[0]) != 1 || string(rig.got[0][0].Payload) != "in" {
		t.Fatalf("RX half should still work, got %v", rig.got[0])
	}
	if st := rig.net.Stats(0); st.DroppedTxNIC != 1 {
		t.Fatalf("DroppedTxNIC = %d, want 1", st.DroppedTxNIC)
	}

	rig.net.RestoreDir(nic, DirTx)
	if !rig.net.ComponentUp(nic) {
		t.Fatal("NIC not up after RestoreDir")
	}
}

// TestUnidirectionalRxFailure: the mirror case.
func TestUnidirectionalRxFailure(t *testing.T) {
	rig := newImpairRig(t, DefaultParams())
	nic := rig.net.Cluster().NIC(0, 1)
	rig.net.FailDir(nic, DirRx)

	if err := rig.net.Send(0, 1, 1, []byte("out")); err != nil {
		t.Fatal(err)
	}
	if err := rig.net.Send(1, 1, 0, []byte("in")); err != nil {
		t.Fatal(err)
	}
	rig.sched.Run(0)
	if len(rig.got[1]) != 1 {
		t.Fatalf("TX half should still work, got %v", rig.got[1])
	}
	if len(rig.got[0]) != 0 {
		t.Fatalf("RX-dead NIC received: %v", rig.got[0])
	}
	if st := rig.net.Stats(1); st.DroppedRxNIC != 1 {
		t.Fatalf("DroppedRxNIC = %d, want 1", st.DroppedRxNIC)
	}
}

// TestImpairmentLoss: a 100% loss impairment on the sender's NIC eats
// every frame and counts it, while the other rail is untouched.
func TestImpairmentLoss(t *testing.T) {
	rig := newImpairRig(t, DefaultParams())
	nic := rig.net.Cluster().NIC(0, 0)
	if err := rig.net.SetImpairment(nic, Impairment{Loss: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := rig.net.Send(0, 0, 1, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := rig.net.Send(0, 1, 1, []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	rig.sched.Run(0)
	if len(rig.got[1]) != 5 {
		t.Fatalf("rail 1 deliveries = %d, want 5", len(rig.got[1]))
	}
	if st := rig.net.Stats(0); st.DroppedImpaired != 5 {
		t.Fatalf("DroppedImpaired = %d, want 5", st.DroppedImpaired)
	}
}

// TestImpairmentDelay: a fixed extra delay shifts delivery by exactly
// that amount, deterministically.
func TestImpairmentDelay(t *testing.T) {
	base := newImpairRig(t, DefaultParams())
	if err := base.net.Send(0, 0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	base.sched.Run(0)
	baseline := base.sched.Now().Duration()

	rig := newImpairRig(t, DefaultParams())
	const extra = 3 * time.Millisecond
	if err := rig.net.SetImpairment(rig.net.Cluster().Backplane(0), Impairment{Delay: extra}); err != nil {
		t.Fatal(err)
	}
	if err := rig.net.Send(0, 0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	rig.sched.Run(0)
	if got := rig.sched.Now().Duration(); got != baseline+extra {
		t.Fatalf("delayed delivery at %v, want %v", got, baseline+extra)
	}
	if len(rig.got[1]) != 1 {
		t.Fatalf("delayed frame not delivered: %v", rig.got[1])
	}
}

// TestImpairmentCorruption: a 100% corrupt impairment mangles the
// payload but still delivers a frame of the same length.
func TestImpairmentCorruption(t *testing.T) {
	rig := newImpairRig(t, DefaultParams())
	if err := rig.net.SetImpairment(rig.net.Cluster().NIC(0, 0), Impairment{Corrupt: 1}); err != nil {
		t.Fatal(err)
	}
	orig := []byte("hello world")
	if err := rig.net.Send(0, 0, 1, orig); err != nil {
		t.Fatal(err)
	}
	rig.sched.Run(0)
	if len(rig.got[1]) != 1 {
		t.Fatalf("corrupted frame not delivered: %v", rig.got[1])
	}
	got := rig.got[1][0].Payload
	if len(got) != len(orig) {
		t.Fatalf("corruption changed length: %d != %d", len(got), len(orig))
	}
	if bytes.Equal(got, orig) {
		t.Fatal("payload not corrupted")
	}
	if st := rig.net.Stats(0); st.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", st.Corrupted)
	}
	// The sender's buffer must be untouched (payload was copied).
	if string(orig) != "hello world" {
		t.Fatalf("sender buffer mutated: %q", orig)
	}
}

// TestBroadcastCorruptionIsPerReceiver: RX-side corruption mangles
// only the impaired receiver's copy of a broadcast.
func TestBroadcastCorruptionIsPerReceiver(t *testing.T) {
	sched := simtime.NewScheduler()
	net, err := New(sched, topology.Dual(3), DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int][]byte{}
	for node := 0; node < 3; node++ {
		node := node
		net.SetHandler(node, func(fr Frame) { got[node] = fr.Payload })
	}
	if err := net.SetImpairment(net.Cluster().NIC(1, 0), Impairment{Corrupt: 1}); err != nil {
		t.Fatal(err)
	}
	orig := []byte("broadcast payload")
	if err := net.Send(0, 0, Broadcast, orig); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if !bytes.Equal(got[2], orig) {
		t.Fatalf("clean receiver got corrupted copy: %q", got[2])
	}
	if bytes.Equal(got[1], orig) {
		t.Fatal("impaired receiver got clean copy")
	}
}

// TestImpairmentValidation: out-of-range probabilities and negative
// delays are rejected.
func TestImpairmentValidation(t *testing.T) {
	rig := newImpairRig(t, DefaultParams())
	nic := rig.net.Cluster().NIC(0, 0)
	for _, imp := range []Impairment{
		{Loss: -0.1}, {Loss: 1.5}, {Corrupt: 2}, {Delay: -time.Second}, {Jitter: -1},
	} {
		if err := rig.net.SetImpairment(nic, imp); err == nil {
			t.Errorf("SetImpairment(%+v) accepted", imp)
		}
	}
	// Zero impairment clears instead of installing.
	if err := rig.net.SetImpairment(nic, Impairment{Loss: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := rig.net.SetImpairment(nic, Impairment{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := rig.net.ImpairmentOn(nic); ok {
		t.Fatal("zero impairment did not clear")
	}
}

// TestImpairmentDoesNotPerturbLossStream: installing an impairment on
// one component must not change which OTHER frames the global
// Params.LossRate process drops (separate rng substreams).
func TestImpairmentDoesNotPerturbLossStream(t *testing.T) {
	run := func(impaired bool) []string {
		params := DefaultParams()
		params.LossRate = 0.3
		sched := simtime.NewScheduler()
		net, err := New(sched, topology.Dual(2), params, 99)
		if err != nil {
			t.Fatal(err)
		}
		var delivered []string
		net.SetHandler(1, func(fr Frame) { delivered = append(delivered, string(fr.Payload)) })
		if impaired {
			// Impair rail 1; rail 0 traffic must see the same loss draws.
			if err := net.SetImpairment(net.Cluster().Backplane(1), Impairment{Loss: 0.5}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			if err := net.Send(0, 0, 1, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			sched.Run(0)
		}
		return delivered
	}
	clean, chaotic := run(false), run(true)
	if len(clean) != len(chaotic) {
		t.Fatalf("loss stream perturbed: %d vs %d deliveries", len(clean), len(chaotic))
	}
	for i := range clean {
		if clean[i] != chaotic[i] {
			t.Fatalf("delivery %d differs", i)
		}
	}
}
