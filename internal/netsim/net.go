package netsim

import (
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

// Net is the wire abstraction the rest of the simulator programs
// against: a deterministic, failable network connecting Nodes() hosts,
// each with Rails() ports. Two implementations exist — Network, the
// dual-rail shared-segment (or per-rail switched) model the paper
// studies, and FabricNet, the multi-hop switched-fabric generalization
// (fat-tree, BCube). Component ids come from the Fabric() shape; for
// Network they coincide with the dense dual-rail Cluster numbering.
type Net interface {
	// Shape.
	Nodes() int
	Rails() int
	Fabric() *topology.Fabric
	Scheduler() *simtime.Scheduler

	// Traffic.
	Send(src, rail, dst int, payload []byte) error
	SetHandler(node int, h Handler)
	SetTap(t Tap)

	// Component failures.
	Fail(c topology.Component)
	Restore(c topology.Component)
	FailDir(c topology.Component, dir Direction)
	RestoreDir(c topology.Component, dir Direction)
	ComponentUp(c topology.Component) bool
	DirUp(c topology.Component, dir Direction) bool
	FailedComponents() []topology.Component

	// Process (daemon) fail-stop.
	FailNode(node int)
	RestoreNode(node int)
	NodeUp(node int) bool

	// Gray-failure impairments.
	SetImpairment(c topology.Component, imp Impairment) error
	ClearImpairment(c topology.Component)
	ImpairmentOn(c topology.Component) (Impairment, bool)

	// Oracles.
	CarrierUp(src, peer, rail int) bool
	Reachable(src, dst int) bool

	// Accounting.
	Stats(rail int) SegmentStats
	Utilization(rail int) float64
}

var (
	_ Net = (*Network)(nil)
	_ Net = (*FabricNet)(nil)
)
