// Package netsim is a deterministic, packet-level discrete-event
// simulator of the cluster network the DRS runs on: dual (or more)
// shared 100 Mb/s segments — the paper's non-meshed back planes — with
// one NIC per node per segment.
//
// The simulator models what matters to the survivability study:
//
//   - shared-medium serialization: a segment transmits one frame at a
//     time at its line rate, so probe traffic genuinely consumes
//     bandwidth and the Figure 1 cost model can be verified
//     empirically;
//   - propagation latency;
//   - component failures: any NIC or segment can be failed and
//     restored at any simulated instant, silently eating frames the
//     way real broken hardware does;
//   - gray failures: a NIC can fail in one direction only (TX-dead
//     but RX-alive, or the reverse), and any component can carry an
//     Impairment — per-frame loss, extra delay and jitter, payload
//     corruption — that degrades traffic without killing it. The
//     internal/chaos package schedules these over time;
//   - broadcast: a frame addressed to Broadcast is delivered to every
//     live NIC on the segment, which the DRS relay discovery uses.
//
// It deliberately omits CSMA/CD collisions (the hub arbitrates
// perfectly) and variable queueing inside hosts; neither affects which
// component failures sever communication, and the paper's own
// simulation abstracts at the same level.
package netsim

import (
	"fmt"
	"time"

	"drsnet/internal/rng"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

// Broadcast is the destination node meaning "every node on the
// segment".
const Broadcast = -1

// Default wire parameters, matching the Figure 1 cost model.
const (
	DefaultRate          = 100e6 // bits/s
	DefaultLatency       = 5 * time.Microsecond
	DefaultOverheadBytes = 38 // 14 MAC + 4 FCS + 8 preamble + 12 IFG
	DefaultMinFrameBytes = 84 // minimum on-wire occupancy
)

// Params configures the physical layer.
type Params struct {
	// Rate is each segment's capacity in bits/s.
	Rate float64
	// Latency is the propagation delay from transmitter to receivers.
	Latency time.Duration
	// OverheadBytes is added to every payload for serialization
	// accounting (MAC header, FCS, preamble, inter-frame gap).
	OverheadBytes int
	// MinFrameBytes floors the on-wire size of a frame.
	MinFrameBytes int
	// LossRate drops each delivered frame independently with this
	// probability, modelling a flaky (but not failed) link.
	LossRate float64
	// Switched replaces each shared hub with a store-and-forward
	// switch: every node gets a dedicated full-rate port, frames
	// serialize on the sender's ingress and the receiver's egress
	// instead of on one shared medium, and concurrent flows between
	// disjoint node pairs no longer contend. Broadcast replicates the
	// frame onto every egress port. This is the "alternative network
	// topology" ablation: the same protocols, a fabric with N× the
	// aggregate capacity.
	Switched bool
}

// DefaultParams returns the paper's 100 Mb/s configuration.
func DefaultParams() Params {
	return Params{
		Rate:          DefaultRate,
		Latency:       DefaultLatency,
		OverheadBytes: DefaultOverheadBytes,
		MinFrameBytes: DefaultMinFrameBytes,
	}
}

func (p Params) validate() error {
	if !(p.Rate > 0) {
		return fmt.Errorf("netsim: rate must be positive, have %v", p.Rate)
	}
	if p.Latency < 0 {
		return fmt.Errorf("netsim: negative latency")
	}
	if p.OverheadBytes < 0 || p.MinFrameBytes < 0 {
		return fmt.Errorf("netsim: negative frame size parameter")
	}
	if p.LossRate < 0 || p.LossRate >= 1 {
		return fmt.Errorf("netsim: loss rate %v outside [0,1)", p.LossRate)
	}
	return nil
}

// Direction selects which half of a NIC's duplex path an operation
// applies to. Back planes have no direction: any Direction acts on the
// whole segment.
type Direction int

const (
	// DirBoth addresses both halves of the path (the classic
	// fail-stop model).
	DirBoth Direction = iota
	// DirTx addresses only the transmit half: the component silently
	// eats everything it is asked to send but still receives.
	DirTx
	// DirRx addresses only the receive half.
	DirRx
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirBoth:
		return "both"
	case DirTx:
		return "tx"
	case DirRx:
		return "rx"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Impairment degrades a component without killing it — the gray
// failures the fail-stop model cannot express. An impairment on a NIC
// applies to frames crossing that NIC (transmit side for the sender's
// NIC, receive side for a receiver's); an impairment on a back plane
// applies once per frame at transmit time. The zero value is no
// impairment.
type Impairment struct {
	// Loss drops each frame crossing the component independently with
	// this probability.
	Loss float64
	// Corrupt flips one random payload byte with this probability; the
	// mangled frame is still delivered, so receivers must survive
	// garbage (their codecs reject it).
	Corrupt float64
	// Delay adds fixed extra latency to every frame crossing the
	// component.
	Delay time.Duration
	// Jitter adds uniform random extra latency in [0, Jitter).
	Jitter time.Duration
}

// IsZero reports whether the impairment has no effect at all.
func (imp Impairment) IsZero() bool {
	return imp.Loss == 0 && imp.Corrupt == 0 && imp.Delay == 0 && imp.Jitter == 0
}

// Validate rejects impairments outside the model: probabilities must
// lie in [0,1] and time offsets must be non-negative.
func (imp Impairment) Validate() error {
	if imp.Loss < 0 || imp.Loss > 1 {
		return fmt.Errorf("netsim: impairment loss %v outside [0,1]", imp.Loss)
	}
	if imp.Corrupt < 0 || imp.Corrupt > 1 {
		return fmt.Errorf("netsim: impairment corrupt probability %v outside [0,1]", imp.Corrupt)
	}
	if imp.Delay < 0 {
		return fmt.Errorf("netsim: negative impairment delay %v", imp.Delay)
	}
	if imp.Jitter < 0 {
		return fmt.Errorf("netsim: negative impairment jitter %v", imp.Jitter)
	}
	return nil
}

// Frame is one delivered datagram.
type Frame struct {
	Src     int // sending node
	Dst     int // destination node, or Broadcast
	Rail    int // segment the frame travelled on
	Payload []byte
}

// Handler receives frames addressed to (or broadcast past) a node.
// Handlers run inside scheduler events: they may send frames and set
// timers but must not block.
type Handler func(fr Frame)

// Tap observes every frame crossing the network, for invariant
// checkers and protocol analyzers. A tap is purely observational: it
// must not send frames or mutate the network, and it draws no
// randomness, so installing one never perturbs a seeded run.
type Tap interface {
	// FrameSent fires once per Send call that passes validation, at
	// simulated time at, before any drop accounting — a frame eaten by
	// a dead NIC or an impairment is still reported here, because the
	// packet existed. fr.Dst may be Broadcast.
	FrameSent(at time.Duration, fr Frame)
	// FrameDelivered fires at actual delivery into a node's handler
	// (fr.Dst is the receiving node, never Broadcast), after every
	// drop check, with the payload as the handler sees it (corrupted
	// frames report their mangled bytes).
	FrameDelivered(at time.Duration, fr Frame)
}

// SegmentStats counts traffic on one segment.
type SegmentStats struct {
	FramesSent      int64
	FramesDelivered int64
	// BitsSent is the on-wire serialization cost of everything
	// transmitted, including overhead and minimum-frame padding.
	BitsSent float64
	// Drops by cause.
	DroppedTxNIC   int64 // sender's NIC was down
	DroppedSegment int64 // segment was down at transmit or delivery
	DroppedRxNIC   int64 // receiver's NIC was down
	DroppedLoss    int64 // random loss (Params.LossRate)
	// DroppedImpaired counts frames eaten by a gray-failure
	// impairment's loss process (chaos layer).
	DroppedImpaired int64
	// DroppedNodeDown counts frames blackholed because the node's
	// daemon process was fail-stopped (crash lifecycle): the NICs are
	// electrically up but nothing behind them sends or receives.
	DroppedNodeDown int64
	// DroppedPartitioned counts frames eaten by an installed network
	// partition (Partition): the directed (src, dst, rail) path was
	// blocked at delivery time.
	DroppedPartitioned int64
	// Corrupted counts frames whose payload was mangled in transit by
	// an impairment; they still occupy the wire and are delivered.
	Corrupted int64
}

type segment struct {
	up        bool
	busyUntil simtime.Time
	// Per-node port clocks, used only in switched mode.
	ingressBusy []simtime.Time
	egressBusy  []simtime.Time
	stats       SegmentStats
}

// Network is one simulated cluster network.
type Network struct {
	sched   *simtime.Scheduler
	cluster topology.Cluster
	params  Params
	segs    []segment
	// Per-NIC duplex state: a NIC is operational only when both halves
	// are; a unidirectional (gray) failure kills one half.
	nicTx [][]bool
	nicRx [][]bool
	// Per-node process state: false while the node's daemon is
	// fail-stopped (crash lifecycle). Unlike NIC failures this
	// blackholes every frame the node sends or would receive without
	// touching the electrical component state.
	nodeUp  []bool
	handler []Handler
	rnd     *rng.Source
	// Gray-failure state: active impairments by component, nil until
	// the first SetImpairment so the healthy fast path stays free.
	// impRnd is a substream split off the loss source at construction
	// (splitting does not perturb the parent), so enabling impairments
	// never changes the Params.LossRate draw sequence.
	imp    map[topology.Component]Impairment
	impRnd *rng.Source
	// tap, when non-nil, observes every frame (see Tap).
	tap Tap
	// part holds the installed network partitions (nil until the first
	// Partition, so partition-free runs pay nothing): directed
	// (src, dst, rail) paths whose frames vanish at delivery.
	part map[partKey]struct{}
	// Delivery-event recycling: hub-mode deliveries are never
	// cancelled, so their event records cycle through a freelist and
	// the pre-bound deliverEv method value instead of allocating a
	// fresh closure and timer per frame.
	freeEv    *frameEvent
	deliverEv func(any)
	// fabric is the Fabric view of the cluster, built once on demand.
	fabric *topology.Fabric
}

// frameEvent carries one in-flight hub-mode frame through the
// scheduler without a per-send closure.
type frameEvent struct {
	fr   Frame
	next *frameEvent
}

// New builds a healthy network for the given cluster shape on the
// given scheduler. seed feeds the (optional) random-loss process.
func New(sched *simtime.Scheduler, cluster topology.Cluster, params Params, seed uint64) (*Network, error) {
	if sched == nil {
		return nil, fmt.Errorf("netsim: nil scheduler")
	}
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	if err := params.validate(); err != nil {
		return nil, err
	}
	n := &Network{
		sched:   sched,
		cluster: cluster,
		params:  params,
		segs:    make([]segment, cluster.Rails),
		nicTx:   make([][]bool, cluster.Nodes),
		nicRx:   make([][]bool, cluster.Nodes),
		nodeUp:  make([]bool, cluster.Nodes),
		handler: make([]Handler, cluster.Nodes),
		rnd:     rng.New(seed),
	}
	n.impRnd = n.rnd.Split(0xc4a05)
	n.deliverEv = n.deliverEvent
	for r := range n.segs {
		n.segs[r].up = true
		if params.Switched {
			n.segs[r].ingressBusy = make([]simtime.Time, cluster.Nodes)
			n.segs[r].egressBusy = make([]simtime.Time, cluster.Nodes)
		}
	}
	for i := range n.nicTx {
		n.nicTx[i] = make([]bool, cluster.Rails)
		n.nicRx[i] = make([]bool, cluster.Rails)
		n.nodeUp[i] = true
		for r := range n.nicTx[i] {
			n.nicTx[i][r] = true
			n.nicRx[i][r] = true
		}
	}
	return n, nil
}

// Cluster returns the cluster shape.
func (n *Network) Cluster() topology.Cluster { return n.cluster }

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return n.cluster.Nodes }

// Rails returns the number of rails (NIC ports per node).
func (n *Network) Rails() int { return n.cluster.Rails }

// Fabric returns the fabric view of the cluster — same component
// numbering, back planes exposed as switches. Built once, on demand.
func (n *Network) Fabric() *topology.Fabric {
	if n.fabric == nil {
		f, err := topology.FromCluster(n.cluster)
		if err != nil {
			panic(err) // cluster was validated in New
		}
		n.fabric = f
	}
	return n.fabric
}

// Scheduler returns the driving scheduler (for protocol timers).
func (n *Network) Scheduler() *simtime.Scheduler { return n.sched }

// SetHandler installs the frame handler for node.
func (n *Network) SetHandler(node int, h Handler) {
	n.checkNode(node)
	n.handler[node] = h
}

// SetTap installs (or, with nil, removes) the network's frame
// observer. At most one tap is active; the healthy fast path pays
// nothing when none is installed.
func (n *Network) SetTap(t Tap) { n.tap = t }

// Send transmits payload from src to dst on rail. dst may be
// Broadcast. The call never blocks and never reports delivery
// failures: like real hardware, a frame sent into a broken NIC or
// dead segment silently vanishes (the drop is counted in
// SegmentStats). An error is returned only for malformed requests.
func (n *Network) Send(src, rail, dst int, payload []byte) error {
	n.checkNode(src)
	if rail < 0 || rail >= n.cluster.Rails {
		return fmt.Errorf("netsim: rail %d out of range", rail)
	}
	if dst != Broadcast {
		n.checkNode(dst)
		if dst == src {
			return fmt.Errorf("netsim: node %d sending to itself", src)
		}
	}
	seg := &n.segs[rail]
	seg.stats.FramesSent++
	if n.tap != nil {
		n.tap.FrameSent(n.sched.Now().Duration(), Frame{Src: src, Dst: dst, Rail: rail, Payload: payload})
	}
	if !n.nodeUp[src] {
		seg.stats.DroppedNodeDown++
		return nil
	}
	if !n.nicTx[src][rail] {
		seg.stats.DroppedTxNIC++
		return nil
	}
	if !seg.up {
		seg.stats.DroppedSegment++
		return nil
	}
	drop, extra, corrupt := n.impairTx(src, rail)
	if drop {
		seg.stats.DroppedImpaired++
		return nil
	}

	wire := len(payload) + n.params.OverheadBytes
	if wire < n.params.MinFrameBytes {
		wire = n.params.MinFrameBytes
	}
	txTime := time.Duration(float64(wire*8) / n.params.Rate * float64(time.Second))

	// Copy the payload: the sender may reuse its buffer.
	data := append([]byte(nil), payload...)
	if corrupt {
		n.mangle(data)
		seg.stats.Corrupted++
	}
	fr := Frame{Src: src, Dst: dst, Rail: rail, Payload: data}

	if n.params.Switched {
		n.sendSwitched(seg, fr, txTime, float64(wire*8), extra)
		return nil
	}

	// Shared medium (hub): one frame at a time on the whole segment.
	start := n.sched.Now()
	if seg.busyUntil > start {
		start = seg.busyUntil
	}
	end := start.Add(txTime)
	seg.busyUntil = end
	seg.stats.BitsSent += float64(wire * 8)
	ev := n.freeEv
	if ev != nil {
		n.freeEv = ev.next
		ev.next = nil
	} else {
		ev = new(frameEvent)
	}
	ev.fr = fr
	n.sched.AtCall(end.Add(n.params.Latency+extra), n.deliverEv, ev)
	return nil
}

// deliverEvent is the scheduler callback for hub-mode deliveries: it
// frees the event record (payload reference cleared so the freelist
// pins nothing) before running the delivery itself.
func (n *Network) deliverEvent(arg any) {
	ev := arg.(*frameEvent)
	fr := ev.fr
	ev.fr = Frame{}
	ev.next = n.freeEv
	n.freeEv = ev
	n.deliver(fr)
}

// impairTx applies the transmit-side impairments for a frame leaving
// src on rail: the sender's NIC impairment and the segment's, in that
// order. It returns whether the frame is eaten, the extra delay it
// accrues, and whether its payload is corrupted. With no impairments
// installed it draws no randomness at all, keeping unimpaired runs
// byte-identical.
func (n *Network) impairTx(src, rail int) (drop bool, extra time.Duration, corrupt bool) {
	if n.imp == nil {
		return false, 0, false
	}
	comps := [2]topology.Component{n.cluster.NIC(src, rail), n.cluster.Backplane(rail)}
	for _, c := range comps {
		imp, ok := n.imp[c]
		if !ok {
			continue
		}
		if imp.Loss > 0 && n.impRnd.Float64() < imp.Loss {
			return true, 0, false
		}
		extra += imp.Delay
		if imp.Jitter > 0 {
			extra += time.Duration(n.impRnd.Uint64n(uint64(imp.Jitter)))
		}
		if imp.Corrupt > 0 && n.impRnd.Float64() < imp.Corrupt {
			corrupt = true
		}
	}
	return false, extra, corrupt
}

// mangle flips one byte of data in place (no-op for empty payloads) —
// the corruption model: a burst error the FCS failed to catch.
func (n *Network) mangle(data []byte) {
	if len(data) == 0 {
		return
	}
	i := n.impRnd.Intn(len(data))
	data[i] ^= byte(1 + n.impRnd.Intn(255))
}

// sendSwitched models a store-and-forward switch: the frame serializes
// on the sender's ingress port, crosses the fabric, then serializes
// again on each receiver's egress port — so disjoint flows proceed in
// parallel and only same-port traffic contends.
func (n *Network) sendSwitched(seg *segment, fr Frame, txTime time.Duration, bits float64, extra time.Duration) {
	ingStart := n.sched.Now()
	if seg.ingressBusy[fr.Src] > ingStart {
		ingStart = seg.ingressBusy[fr.Src]
	}
	ingDone := ingStart.Add(txTime)
	seg.ingressBusy[fr.Src] = ingDone
	seg.stats.BitsSent += bits

	half := n.params.Latency / 2
	deliverVia := func(node int) {
		arrival := ingDone.Add(half + extra)
		egStart := arrival
		if seg.egressBusy[node] > egStart {
			egStart = seg.egressBusy[node]
		}
		egDone := egStart.Add(txTime)
		seg.egressBusy[node] = egDone
		n.sched.At(egDone.Add(half), func() {
			if !seg.up {
				seg.stats.DroppedSegment++
				return
			}
			n.deliverTo(seg, fr, node)
		})
	}
	if fr.Dst == Broadcast {
		for node := 0; node < n.cluster.Nodes; node++ {
			if node != fr.Src {
				deliverVia(node)
			}
		}
		return
	}
	deliverVia(fr.Dst)
}

func (n *Network) deliver(fr Frame) {
	seg := &n.segs[fr.Rail]
	if !seg.up {
		seg.stats.DroppedSegment++
		return
	}
	if fr.Dst == Broadcast {
		for node := 0; node < n.cluster.Nodes; node++ {
			if node == fr.Src {
				continue
			}
			n.deliverTo(seg, fr, node)
		}
		return
	}
	n.deliverTo(seg, fr, fr.Dst)
}

func (n *Network) deliverTo(seg *segment, fr Frame, node int) {
	// Receive-side impairment of the receiver's NIC: drawn here, at
	// arrival on the segment, so broadcast receivers are impaired
	// independently.
	corrupt := false
	if n.imp != nil {
		if imp, ok := n.imp[n.cluster.NIC(node, fr.Rail)]; ok {
			if imp.Loss > 0 && n.impRnd.Float64() < imp.Loss {
				seg.stats.DroppedImpaired++
				return
			}
			if imp.Corrupt > 0 && n.impRnd.Float64() < imp.Corrupt {
				corrupt = true
			}
			extra := imp.Delay
			if imp.Jitter > 0 {
				extra += time.Duration(n.impRnd.Uint64n(uint64(imp.Jitter)))
			}
			if extra > 0 {
				n.sched.After(extra, func() { n.completeDelivery(seg, fr, node, corrupt) })
				return
			}
		}
	}
	n.completeDelivery(seg, fr, node, corrupt)
}

// completeDelivery is the final hop into the receiver: the NIC state
// and random-loss checks happen here, at actual delivery time, so a
// NIC that died while an impairment delayed the frame still eats it.
func (n *Network) completeDelivery(seg *segment, fr Frame, node int, corrupt bool) {
	if !n.nodeUp[node] {
		seg.stats.DroppedNodeDown++
		return
	}
	if !n.nicRx[node][fr.Rail] {
		seg.stats.DroppedRxNIC++
		return
	}
	if n.partitioned(fr.Src, node, fr.Rail) {
		seg.stats.DroppedPartitioned++
		return
	}
	if n.params.LossRate > 0 && n.rnd.Float64() < n.params.LossRate {
		seg.stats.DroppedLoss++
		return
	}
	h := n.handler[node]
	if h == nil {
		return
	}
	seg.stats.FramesDelivered++
	// Each receiver of a broadcast gets its own copy; corruption also
	// forces a private copy so the wire image stays intact for others.
	payload := fr.Payload
	if fr.Dst == Broadcast || corrupt {
		payload = append([]byte(nil), fr.Payload...)
	}
	if corrupt {
		n.mangle(payload)
		seg.stats.Corrupted++
	}
	out := Frame{Src: fr.Src, Dst: node, Rail: fr.Rail, Payload: payload}
	if n.tap != nil {
		n.tap.FrameDelivered(n.sched.Now().Duration(), out)
	}
	h(out)
}

// Fail takes a component (NIC or back plane) down. Failing an already
// failed component is a no-op. Frames in flight on a failed segment
// are lost; frames in flight to a failed NIC are lost at delivery.
func (n *Network) Fail(c topology.Component) { n.FailDir(c, DirBoth) }

// Restore brings a failed component back (both directions of a NIC).
func (n *Network) Restore(c topology.Component) { n.RestoreDir(c, DirBoth) }

// FailDir takes one direction of a NIC down — the gray failure a
// fail-stop model cannot express: a TX-dead NIC silently eats
// everything its node sends on that rail while replies still arrive,
// and vice versa. For back planes the direction is ignored (a shared
// segment has no duplex halves).
func (n *Network) FailDir(c topology.Component, dir Direction) {
	kind, node, rail := n.cluster.Describe(c)
	if kind == topology.KindBackplane {
		n.segs[rail].up = false
		return
	}
	if dir == DirBoth || dir == DirTx {
		n.nicTx[node][rail] = false
	}
	if dir == DirBoth || dir == DirRx {
		n.nicRx[node][rail] = false
	}
}

// RestoreDir brings one direction of a NIC back.
func (n *Network) RestoreDir(c topology.Component, dir Direction) {
	kind, node, rail := n.cluster.Describe(c)
	if kind == topology.KindBackplane {
		n.segs[rail].up = true
		return
	}
	if dir == DirBoth || dir == DirTx {
		n.nicTx[node][rail] = true
	}
	if dir == DirBoth || dir == DirRx {
		n.nicRx[node][rail] = true
	}
}

// FailNode fail-stops node's daemon process: every frame it sends or
// would receive blackholes from this instant until RestoreNode. The
// NICs stay electrically up — ComponentUp still reports healthy — so
// peers see unanswered probes, not a severed link, exactly like a
// crashed router whose hardware keeps link lights on.
func (n *Network) FailNode(node int) {
	n.checkNode(node)
	n.nodeUp[node] = false
}

// RestoreNode brings a fail-stopped node's process back.
func (n *Network) RestoreNode(node int) {
	n.checkNode(node)
	n.nodeUp[node] = true
}

// NodeUp reports whether node's daemon process is running.
func (n *Network) NodeUp(node int) bool {
	n.checkNode(node)
	return n.nodeUp[node]
}

// ComponentUp reports whether a component is fully operational (both
// directions, for a NIC).
func (n *Network) ComponentUp(c topology.Component) bool {
	kind, node, rail := n.cluster.Describe(c)
	if kind == topology.KindBackplane {
		return n.segs[rail].up
	}
	return n.nicTx[node][rail] && n.nicRx[node][rail]
}

// DirUp reports whether the given direction of a component works
// (for back planes any direction means the whole segment).
func (n *Network) DirUp(c topology.Component, dir Direction) bool {
	kind, node, rail := n.cluster.Describe(c)
	if kind == topology.KindBackplane {
		return n.segs[rail].up
	}
	switch dir {
	case DirTx:
		return n.nicTx[node][rail]
	case DirRx:
		return n.nicRx[node][rail]
	default:
		return n.nicTx[node][rail] && n.nicRx[node][rail]
	}
}

// SetImpairment installs (or replaces) the impairment on component c.
// A zero impairment is equivalent to ClearImpairment.
func (n *Network) SetImpairment(c topology.Component, imp Impairment) error {
	if err := imp.Validate(); err != nil {
		return err
	}
	n.cluster.Describe(c) // range check (panics exactly like Fail)
	if imp.IsZero() {
		n.ClearImpairment(c)
		return nil
	}
	if n.imp == nil {
		n.imp = make(map[topology.Component]Impairment)
	}
	n.imp[c] = imp
	return nil
}

// ClearImpairment removes any impairment on c.
func (n *Network) ClearImpairment(c topology.Component) {
	delete(n.imp, c)
	if len(n.imp) == 0 {
		n.imp = nil
	}
}

// ImpairmentOn returns the active impairment on c, if any.
func (n *Network) ImpairmentOn(c topology.Component) (Impairment, bool) {
	imp, ok := n.imp[c]
	return imp, ok
}

// CarrierUp reports whether src's logical link to peer on rail has
// carrier right now: src's transmit half, the segment and peer's
// receive half are all electrically alive. This is the physical-layer
// failure detection static fast-failover switching relies on (loss of
// signal, link-layer keepalive) — and deliberately NOT a routing
// control plane: it reflects component state only, so a fail-stopped
// daemon behind healthy NICs (NodeUp false) still shows carrier,
// exactly like a crashed router whose link lights stay on.
func (n *Network) CarrierUp(src, peer, rail int) bool {
	n.checkNode(src)
	n.checkNode(peer)
	if rail < 0 || rail >= n.cluster.Rails {
		panic(fmt.Sprintf("netsim: rail %d out of range", rail))
	}
	return n.nicTx[src][rail] && n.segs[rail].up && n.nicRx[peer][rail]
}

// Reachable reports ground-truth connectivity from src to dst at this
// simulated instant: whether any chain of live forwarding hops exists,
// where a hop u→v needs u's transmit NIC, the segment and v's receive
// NIC alive on some rail with no partition blocking the directed
// (u, v, rail) path, and every node on the chain (including src and
// dst) must have its daemon process running. This is the oracle
// invariant checkers use to tell a legitimate "provably disconnected"
// packet loss from a routing failure.
func (n *Network) Reachable(src, dst int) bool {
	n.checkNode(src)
	n.checkNode(dst)
	if !n.nodeUp[src] || !n.nodeUp[dst] {
		return false
	}
	if src == dst {
		return true
	}
	// BFS over live nodes; the frontier is tiny (clusters are small and
	// dense), so the quadratic scan is fine.
	visited := make([]bool, n.cluster.Nodes)
	visited[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n.cluster.Nodes; v++ {
			if visited[v] || !n.nodeUp[v] {
				continue
			}
			for r := 0; r < n.cluster.Rails; r++ {
				if n.nicTx[u][r] && n.segs[r].up && n.nicRx[v][r] && !n.partitioned(u, v, r) {
					if v == dst {
						return true
					}
					visited[v] = true
					queue = append(queue, v)
					break
				}
			}
		}
	}
	return false
}

// FailedComponents returns the currently failed components in
// ascending order — the ground-truth failure scenario for comparing
// simulated behaviour against the analytic model.
func (n *Network) FailedComponents() []topology.Component {
	var out []topology.Component
	for i := 0; i < n.cluster.Components(); i++ {
		c := topology.Component(i)
		if !n.ComponentUp(c) {
			out = append(out, c)
		}
	}
	return out
}

// Stats returns a copy of the traffic counters for rail.
func (n *Network) Stats(rail int) SegmentStats {
	if rail < 0 || rail >= n.cluster.Rails {
		panic(fmt.Sprintf("netsim: rail %d out of range", rail))
	}
	return n.segs[rail].stats
}

// Utilization returns the fraction of rail capacity consumed so far,
// over the elapsed simulated time (0 if no time has passed). On a hub
// the capacity is one shared medium; on a switch it is one full-rate
// port per node.
func (n *Network) Utilization(rail int) float64 {
	elapsed := n.sched.Now().Duration().Seconds()
	if elapsed <= 0 {
		return 0
	}
	capacity := n.params.Rate * elapsed
	if n.params.Switched {
		capacity *= float64(n.cluster.Nodes)
	}
	return n.Stats(rail).BitsSent / capacity
}

func (n *Network) checkNode(node int) {
	if node < 0 || node >= n.cluster.Nodes {
		panic(fmt.Sprintf("netsim: node %d out of range [0,%d)", node, n.cluster.Nodes))
	}
}
