package netsim

import (
	"bytes"
	"testing"
	"time"

	"drsnet/internal/rng"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

func rngForTest(seed uint64) *rng.Source { return rng.New(seed) }

func newNet(t *testing.T, nodes int) (*simtime.Scheduler, *Network) {
	t.Helper()
	sched := simtime.NewScheduler()
	n, err := New(sched, topology.Dual(nodes), DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return sched, n
}

func TestUnicastDelivery(t *testing.T) {
	sched, n := newNet(t, 3)
	var got []Frame
	n.SetHandler(1, func(fr Frame) { got = append(got, fr) })
	n.SetHandler(2, func(fr Frame) { t.Error("unicast leaked to node 2") })
	if err := n.Send(0, 0, 1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(got) != 1 {
		t.Fatalf("delivered %d frames", len(got))
	}
	fr := got[0]
	if fr.Src != 0 || fr.Dst != 1 || fr.Rail != 0 || !bytes.Equal(fr.Payload, []byte("hello")) {
		t.Fatalf("frame = %+v", fr)
	}
}

func TestDeliveryTiming(t *testing.T) {
	sched, n := newNet(t, 2)
	var at simtime.Time
	n.SetHandler(1, func(fr Frame) { at = sched.Now() })
	payload := make([]byte, 46) // 46+38 overhead = 84 wire bytes
	if err := n.Send(0, 0, 1, payload); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	wantTx := time.Duration(84 * 8 * float64(time.Second) / DefaultRate)
	want := simtime.Time(0).Add(wantTx + DefaultLatency)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestMinFramePadding(t *testing.T) {
	sched, n := newNet(t, 2)
	n.SetHandler(1, func(Frame) {})
	if err := n.Send(0, 0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if got := n.Stats(0).BitsSent; got != 84*8 {
		t.Fatalf("BitsSent = %v, want %v (minimum frame)", got, 84*8)
	}
}

func TestSerializationQueues(t *testing.T) {
	// Two back-to-back frames: the second waits for the first to
	// finish transmitting.
	sched, n := newNet(t, 3)
	var times []simtime.Time
	handler := func(fr Frame) { times = append(times, sched.Now()) }
	n.SetHandler(1, handler)
	n.SetHandler(2, handler)
	payload := make([]byte, 46)
	if err := n.Send(0, 0, 1, payload); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(0, 0, 2, payload); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	tx := time.Duration(84 * 8 * float64(time.Second) / DefaultRate)
	if want := simtime.Time(0).Add(tx + DefaultLatency); times[0] != want {
		t.Fatalf("first at %v, want %v", times[0], want)
	}
	if want := simtime.Time(0).Add(2*tx + DefaultLatency); times[1] != want {
		t.Fatalf("second at %v, want %v (serialized)", times[1], want)
	}
}

func TestRailsAreIndependentMedia(t *testing.T) {
	// Frames on different rails do not serialize against each other.
	sched, n := newNet(t, 2)
	var times []simtime.Time
	n.SetHandler(1, func(fr Frame) { times = append(times, sched.Now()) })
	payload := make([]byte, 46)
	if err := n.Send(0, 0, 1, payload); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(0, 1, 1, payload); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(times) != 2 || times[0] != times[1] {
		t.Fatalf("rail frames not concurrent: %v", times)
	}
}

func TestBroadcast(t *testing.T) {
	sched, n := newNet(t, 4)
	got := map[int]int{}
	for node := 0; node < 4; node++ {
		node := node
		n.SetHandler(node, func(fr Frame) {
			if fr.Dst != node {
				t.Errorf("broadcast copy addressed to %d delivered to %d", fr.Dst, node)
			}
			got[node]++
		})
	}
	if err := n.Send(2, 1, Broadcast, []byte("who-can-reach")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if got[2] != 0 {
		t.Fatal("broadcast echoed to sender")
	}
	for _, node := range []int{0, 1, 3} {
		if got[node] != 1 {
			t.Fatalf("node %d received %d copies", node, got[node])
		}
	}
}

func TestBroadcastCopiesAreIndependent(t *testing.T) {
	sched, n := newNet(t, 3)
	var seen [][]byte
	for node := 1; node < 3; node++ {
		n.SetHandler(node, func(fr Frame) {
			fr.Payload[0] = byte(fr.Dst) // mutate
			seen = append(seen, fr.Payload)
		})
	}
	if err := n.Send(0, 0, Broadcast, []byte{0xff, 2}); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(seen) != 2 || seen[0][0] == seen[1][0] {
		t.Fatalf("broadcast receivers share payload storage: %v", seen)
	}
}

func TestSenderBufferReuseSafe(t *testing.T) {
	sched, n := newNet(t, 2)
	var got []byte
	n.SetHandler(1, func(fr Frame) { got = fr.Payload })
	buf := []byte("original")
	if err := n.Send(0, 0, 1, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "clobber!")
	sched.Run(0)
	if string(got) != "original" {
		t.Fatalf("payload corrupted by sender buffer reuse: %q", got)
	}
}

func TestFailedTxNICDropsSilently(t *testing.T) {
	sched, n := newNet(t, 2)
	n.SetHandler(1, func(Frame) { t.Error("frame delivered through failed NIC") })
	n.Fail(n.Cluster().NIC(0, 0))
	if err := n.Send(0, 0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if n.Stats(0).DroppedTxNIC != 1 {
		t.Fatalf("stats = %+v", n.Stats(0))
	}
}

func TestFailedRxNICDrops(t *testing.T) {
	sched, n := newNet(t, 2)
	n.SetHandler(1, func(Frame) { t.Error("delivered to failed NIC") })
	n.Fail(n.Cluster().NIC(1, 0))
	if err := n.Send(0, 0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if n.Stats(0).DroppedRxNIC != 1 {
		t.Fatalf("stats = %+v", n.Stats(0))
	}
}

func TestFailedSegmentDropsAtSend(t *testing.T) {
	sched, n := newNet(t, 2)
	n.SetHandler(1, func(Frame) { t.Error("delivered over failed segment") })
	n.Fail(n.Cluster().Backplane(0))
	if err := n.Send(0, 0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if n.Stats(0).DroppedSegment != 1 {
		t.Fatalf("stats = %+v", n.Stats(0))
	}
	// The other rail still works.
	delivered := false
	n.SetHandler(1, func(Frame) { delivered = true })
	if err := n.Send(0, 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if !delivered {
		t.Fatal("healthy rail affected by other rail's failure")
	}
}

func TestSegmentFailureMidFlight(t *testing.T) {
	sched, n := newNet(t, 2)
	n.SetHandler(1, func(Frame) { t.Error("in-flight frame survived segment failure") })
	if err := n.Send(0, 0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Fail the segment before propagation completes.
	n.Fail(n.Cluster().Backplane(0))
	sched.Run(0)
	if n.Stats(0).DroppedSegment != 1 {
		t.Fatalf("stats = %+v", n.Stats(0))
	}
}

func TestRestore(t *testing.T) {
	sched, n := newNet(t, 2)
	c := n.Cluster().NIC(0, 0)
	n.Fail(c)
	if n.ComponentUp(c) {
		t.Fatal("component up after Fail")
	}
	n.Restore(c)
	if !n.ComponentUp(c) {
		t.Fatal("component down after Restore")
	}
	delivered := false
	n.SetHandler(1, func(Frame) { delivered = true })
	if err := n.Send(0, 0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if !delivered {
		t.Fatal("restored NIC did not carry traffic")
	}
}

func TestFailedComponents(t *testing.T) {
	_, n := newNet(t, 3)
	c := n.Cluster()
	if got := n.FailedComponents(); len(got) != 0 {
		t.Fatalf("fresh network has failures: %v", got)
	}
	n.Fail(c.NIC(1, 0))
	n.Fail(c.Backplane(1))
	got := n.FailedComponents()
	if len(got) != 2 || got[0] != c.NIC(1, 0) || got[1] != c.Backplane(1) {
		t.Fatalf("FailedComponents = %v", got)
	}
}

func TestRandomLoss(t *testing.T) {
	sched := simtime.NewScheduler()
	params := DefaultParams()
	params.LossRate = 0.3
	n, err := New(sched, topology.Dual(2), params, 7)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	n.SetHandler(1, func(Frame) { delivered++ })
	const total = 2000
	for i := 0; i < total; i++ {
		if err := n.Send(0, 0, 1, []byte("x")); err != nil {
			t.Fatal(err)
		}
		sched.Run(0)
	}
	frac := float64(delivered) / total
	if frac < 0.64 || frac > 0.76 {
		t.Fatalf("delivered fraction %v, want ~0.7", frac)
	}
	if n.Stats(0).DroppedLoss != int64(total-delivered) {
		t.Fatalf("loss accounting mismatch: %+v", n.Stats(0))
	}
}

func TestUtilizationMatchesCostModelScale(t *testing.T) {
	// Saturate rail 0 for one simulated second and check utilization.
	sched, n := newNet(t, 2)
	n.SetHandler(1, func(Frame) {})
	payload := make([]byte, 46) // exactly minimum frame on the wire
	rate := float64(DefaultRate)
	frames := int(rate / (84 * 8)) // fills ~one second
	for i := 0; i < frames; i++ {
		if err := n.Send(0, 0, 1, payload); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(simtime.Time(time.Second))
	u := n.Utilization(0)
	if u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v, want ~1.0", u)
	}
}

func TestSendValidation(t *testing.T) {
	_, n := newNet(t, 2)
	if err := n.Send(0, 5, 1, nil); err == nil {
		t.Error("bad rail accepted")
	}
	if err := n.Send(0, 0, 0, nil); err == nil {
		t.Error("self-send accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad src node did not panic")
			}
		}()
		_ = n.Send(9, 0, 1, nil)
	}()
}

func TestNewValidation(t *testing.T) {
	sched := simtime.NewScheduler()
	if _, err := New(nil, topology.Dual(2), DefaultParams(), 0); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := New(sched, topology.Cluster{Nodes: 1, Rails: 2}, DefaultParams(), 0); err == nil {
		t.Error("bad cluster accepted")
	}
	bad := DefaultParams()
	bad.Rate = 0
	if _, err := New(sched, topology.Dual(2), bad, 0); err == nil {
		t.Error("zero rate accepted")
	}
	bad = DefaultParams()
	bad.LossRate = 1
	if _, err := New(sched, topology.Dual(2), bad, 0); err == nil {
		t.Error("loss rate 1 accepted")
	}
	bad = DefaultParams()
	bad.Latency = -time.Second
	if _, err := New(sched, topology.Dual(2), bad, 0); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestNoHandlerIsFine(t *testing.T) {
	sched, n := newNet(t, 2)
	if err := n.Send(0, 0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0) // must not panic
}

func TestFrameConservation(t *testing.T) {
	// For unicast traffic with handlers installed everywhere, every
	// sent frame is accounted for exactly once: delivered or dropped
	// with a cause.
	for _, switched := range []bool{false, true} {
		sched := simtime.NewScheduler()
		params := DefaultParams()
		params.Switched = switched
		params.LossRate = 0.1
		n, err := New(sched, topology.Dual(5), params, 11)
		if err != nil {
			t.Fatal(err)
		}
		for node := 0; node < 5; node++ {
			n.SetHandler(node, func(Frame) {})
		}
		r := rngForTest(22)
		cl := n.Cluster()
		for i := 0; i < 2000; i++ {
			src := int(r.Uint64n(5))
			dst := int(r.Uint64n(5))
			if dst == src {
				continue
			}
			rail := int(r.Uint64n(2))
			if err := n.Send(src, rail, dst, []byte("x")); err != nil {
				t.Fatal(err)
			}
			// Churn component state to exercise every drop path.
			switch r.Uint64n(20) {
			case 0:
				n.Fail(cl.NIC(int(r.Uint64n(5)), int(r.Uint64n(2))))
			case 1:
				n.Restore(cl.NIC(int(r.Uint64n(5)), int(r.Uint64n(2))))
			case 2:
				n.Fail(cl.Backplane(int(r.Uint64n(2))))
			case 3:
				n.Restore(cl.Backplane(int(r.Uint64n(2))))
			}
			if i%50 == 0 {
				sched.Run(0)
			}
		}
		sched.Run(0)
		for rail := 0; rail < 2; rail++ {
			s := n.Stats(rail)
			accounted := s.FramesDelivered + s.DroppedTxNIC + s.DroppedSegment +
				s.DroppedRxNIC + s.DroppedLoss
			if accounted != s.FramesSent {
				t.Fatalf("switched=%v rail %d: sent %d but accounted %d (%+v)",
					switched, rail, s.FramesSent, accounted, s)
			}
		}
	}
}
