package netsim

import (
	"testing"
)

// TestFailNodeBlackholesBothDirections: a failed node's frames vanish
// on send and on receive — the process is dead — while the NICs stay
// electrically up, so nothing else on the segment notices.
func TestFailNodeBlackholesBothDirections(t *testing.T) {
	sched, n := newNet(t, 3)
	var at1, at2 int
	n.SetHandler(1, func(Frame) { at1++ })
	n.SetHandler(2, func(Frame) { at2++ })

	n.FailNode(1)
	if n.NodeUp(1) {
		t.Fatal("NodeUp(1) = true after FailNode")
	}
	// Tx blackhole: the dead node's sends go nowhere.
	if err := n.Send(1, 0, 2, []byte("from the grave")); err != nil {
		t.Fatal(err)
	}
	// Rx blackhole: frames addressed to the dead node vanish on arrival.
	if err := n.Send(0, 0, 1, []byte("to the grave")); err != nil {
		t.Fatal(err)
	}
	// Third parties are untouched.
	if err := n.Send(0, 1, 2, []byte("bystander")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if at1 != 0 || at2 != 1 {
		t.Fatalf("deliveries: node1=%d node2=%d, want 0 and 1", at1, at2)
	}
	if got := n.Stats(0).DroppedNodeDown; got != 2 {
		t.Fatalf("rail-0 DroppedNodeDown = %d, want 2", got)
	}

	// The NICs never failed: the node's hardware is up even though the
	// process is not.
	for rail := 0; rail < 2; rail++ {
		if !n.ComponentUp(n.cluster.NIC(1, rail)) {
			t.Fatalf("NIC(1,%d) went down with the process", rail)
		}
	}

	n.RestoreNode(1)
	if !n.NodeUp(1) {
		t.Fatal("NodeUp(1) = false after RestoreNode")
	}
	if err := n.Send(0, 0, 1, []byte("welcome back")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if at1 != 1 {
		t.Fatalf("post-restore deliveries to node 1 = %d, want 1", at1)
	}
}

// TestFailNodeInFlightFrame: a frame already serialized onto the wire
// when its receiver dies is dropped at delivery time — exactly what a
// dead process does to a frame the NIC still DMA'd in.
func TestFailNodeInFlightFrame(t *testing.T) {
	sched, n := newNet(t, 2)
	delivered := 0
	n.SetHandler(1, func(Frame) { delivered++ })
	if err := n.Send(0, 0, 1, []byte("in flight")); err != nil {
		t.Fatal(err)
	}
	n.FailNode(1) // dies before the propagation delay elapses
	sched.Run(0)
	if delivered != 0 {
		t.Fatal("frame delivered to a node that died while it was in flight")
	}
	if got := n.Stats(0).DroppedNodeDown; got != 1 {
		t.Fatalf("DroppedNodeDown = %d, want 1", got)
	}
}

func TestNodeUpBoundsChecked(t *testing.T) {
	_, n := newNet(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("FailNode(-1) did not panic")
		}
	}()
	n.FailNode(-1)
}
