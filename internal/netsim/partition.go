package netsim

import "fmt"

// AllRails, as a Partition/Heal rail argument, addresses every rail of
// the pair at once — the classic full network partition. A concrete
// rail index partitions only that segment's path between the pair,
// which is how a misprogrammed switch filter or a poisoned ARP entry
// behaves: one rail is severed while the other still carries frames.
const AllRails = -1

// partKey names one blocked directed path: frames from src to dst on
// rail vanish at delivery. Keys always carry a concrete rail;
// AllRails is expanded when the partition is installed.
type partKey struct{ src, dst, rail int }

// Partition blocks delivery of frames from src to dst on rail
// (AllRails = every rail), from this instant until Heal. Partitions
// are directed: blocking src→dst alone is the asymmetric gray failure
// — dst goes deaf to src while src still hears dst. Install both
// directions for a symmetric partition. Frames already in flight when
// the partition lands are eaten at delivery time, exactly like frames
// into a failed NIC.
//
// A partition is a logical fault in the switching fabric, not an
// electrical one: CarrierUp still reports the path healthy (link
// lights stay on), ComponentUp is untouched, and only delivery — and
// the Reachable ground-truth oracle — see the cut. Installing the
// same directed path twice is idempotent.
func (n *Network) Partition(src, dst, rail int) {
	n.checkNode(src)
	n.checkNode(dst)
	if src == dst {
		panic(fmt.Sprintf("netsim: partitioning node %d from itself", src))
	}
	n.checkPartRail(rail)
	if n.part == nil {
		n.part = make(map[partKey]struct{})
	}
	for _, r := range n.partRails(rail) {
		n.part[partKey{src, dst, r}] = struct{}{}
	}
}

// Heal removes the directed src→dst block on rail (AllRails = every
// rail). Healing a path that was never partitioned is a no-op.
func (n *Network) Heal(src, dst, rail int) {
	n.checkNode(src)
	n.checkNode(dst)
	n.checkPartRail(rail)
	if n.part == nil {
		return
	}
	for _, r := range n.partRails(rail) {
		delete(n.part, partKey{src, dst, r})
	}
	if len(n.part) == 0 {
		n.part = nil
	}
}

// HealPartitions removes every installed partition at once — the
// "network heals" step of a nemesis schedule.
func (n *Network) HealPartitions() { n.part = nil }

// Partitioned reports whether frames from src to dst on rail are
// currently blocked. With AllRails it reports whether every rail of
// the directed pair is blocked.
func (n *Network) Partitioned(src, dst, rail int) bool {
	n.checkNode(src)
	n.checkNode(dst)
	n.checkPartRail(rail)
	if n.part == nil {
		return false
	}
	for _, r := range n.partRails(rail) {
		if _, ok := n.part[partKey{src, dst, r}]; !ok {
			return false
		}
	}
	return true
}

// partitioned is the delivery-path check: nil map short-circuits so
// partition-free runs stay byte-identical to their pre-partition
// goldens.
func (n *Network) partitioned(src, dst, rail int) bool {
	if n.part == nil {
		return false
	}
	_, ok := n.part[partKey{src, dst, rail}]
	return ok
}

// partRails expands a rail argument into concrete rail indices.
func (n *Network) partRails(rail int) []int {
	if rail != AllRails {
		return []int{rail}
	}
	rails := make([]int, n.cluster.Rails)
	for r := range rails {
		rails[r] = r
	}
	return rails
}

func (n *Network) checkPartRail(rail int) {
	if rail != AllRails && (rail < 0 || rail >= n.cluster.Rails) {
		panic(fmt.Sprintf("netsim: rail %d out of range [0,%d)", rail, n.cluster.Rails))
	}
}
