package netsim

import (
	"testing"
)

// TestPartitionAsymmetric: a directed partition eats frames in one
// direction only — node 1 goes deaf to node 0 on the blocked rail
// while node 0 still hears node 1 — and healing restores delivery.
func TestPartitionAsymmetric(t *testing.T) {
	sched, n := newNet(t, 3)
	var at0, at1 int
	n.SetHandler(0, func(Frame) { at0++ })
	n.SetHandler(1, func(Frame) { at1++ })

	n.Partition(0, 1, 0)
	if !n.Partitioned(0, 1, 0) {
		t.Fatal("Partitioned(0,1,0) = false after Partition")
	}
	if n.Partitioned(1, 0, 0) {
		t.Fatal("reverse direction blocked by a directed partition")
	}

	// Blocked direction: 0→1 on rail 0 vanishes.
	if err := n.Send(0, 0, 1, []byte("blocked")); err != nil {
		t.Fatal(err)
	}
	// Reverse direction and the other rail still work.
	if err := n.Send(1, 0, 0, []byte("reverse ok")); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(0, 1, 1, []byte("other rail ok")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if at0 != 1 || at1 != 1 {
		t.Fatalf("deliveries: node0=%d node1=%d, want 1 and 1", at0, at1)
	}
	if got := n.Stats(0).DroppedPartitioned; got != 1 {
		t.Fatalf("rail-0 DroppedPartitioned = %d, want 1", got)
	}

	n.Heal(0, 1, 0)
	if n.Partitioned(0, 1, 0) {
		t.Fatal("still partitioned after Heal")
	}
	if err := n.Send(0, 0, 1, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if at1 != 2 {
		t.Fatalf("post-heal deliveries to node 1 = %d, want 2", at1)
	}
}

// TestPartitionAllRails: AllRails blocks every segment of the directed
// pair at once, and HealPartitions clears the whole partition state.
func TestPartitionAllRails(t *testing.T) {
	sched, n := newNet(t, 2)
	delivered := 0
	n.SetHandler(1, func(Frame) { delivered++ })

	n.Partition(0, 1, AllRails)
	for rail := 0; rail < 2; rail++ {
		if !n.Partitioned(0, 1, rail) {
			t.Fatalf("rail %d not blocked by AllRails partition", rail)
		}
		if err := n.Send(0, rail, 1, []byte("blocked")); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run(0)
	if delivered != 0 {
		t.Fatalf("deliveries through an AllRails partition: %d", delivered)
	}

	n.HealPartitions()
	if n.Partitioned(0, 1, AllRails) {
		t.Fatal("still partitioned after HealPartitions")
	}
	if err := n.Send(0, 0, 1, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if delivered != 1 {
		t.Fatalf("post-heal deliveries = %d, want 1", delivered)
	}
}

// TestPartitionBroadcast: a broadcast frame is filtered per receiver —
// the partitioned destination misses it, everyone else gets it.
func TestPartitionBroadcast(t *testing.T) {
	sched, n := newNet(t, 4)
	counts := make([]int, 4)
	for node := 1; node < 4; node++ {
		node := node
		n.SetHandler(node, func(Frame) { counts[node]++ })
	}
	n.Partition(0, 2, 0)
	if err := n.Send(0, 0, Broadcast, []byte("hello all")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if counts[1] != 1 || counts[3] != 1 {
		t.Fatalf("unpartitioned receivers: node1=%d node3=%d, want 1 and 1", counts[1], counts[3])
	}
	if counts[2] != 0 {
		t.Fatal("broadcast delivered through a partition")
	}
}

// TestPartitionInFlightFrame: a frame already on the wire when the
// partition lands is eaten at delivery — the cut takes effect
// immediately, like a filter programmed into the switching fabric.
func TestPartitionInFlightFrame(t *testing.T) {
	sched, n := newNet(t, 2)
	delivered := 0
	n.SetHandler(1, func(Frame) { delivered++ })
	if err := n.Send(0, 0, 1, []byte("in flight")); err != nil {
		t.Fatal(err)
	}
	n.Partition(0, 1, 0)
	sched.Run(0)
	if delivered != 0 {
		t.Fatal("in-flight frame delivered through a partition")
	}
	if got := n.Stats(0).DroppedPartitioned; got != 1 {
		t.Fatalf("DroppedPartitioned = %d, want 1", got)
	}
}

// TestPartitionReachableAndCarrier: the Reachable ground-truth oracle
// sees partitions (a fully cut pair with no relay is unreachable) but
// CarrierUp does not — a partition is a logical fault, the link lights
// stay on. With a third node both rails can relay around the cut.
func TestPartitionReachableAndCarrier(t *testing.T) {
	_, n := newNet(t, 2)
	n.Partition(0, 1, AllRails)
	n.Partition(1, 0, AllRails)
	if n.Reachable(0, 1) || n.Reachable(1, 0) {
		t.Fatal("fully partitioned pair still Reachable")
	}
	if !n.CarrierUp(0, 1, 0) || !n.CarrierUp(0, 1, 1) {
		t.Fatal("partition killed carrier — it must stay electrically up")
	}

	// A relay node restores reachability: 0→2→1 is untouched.
	_, n3 := newNet(t, 3)
	n3.Partition(0, 1, AllRails)
	n3.Partition(1, 0, AllRails)
	if !n3.Reachable(0, 1) {
		t.Fatal("partitioned pair with a live relay reported unreachable")
	}

	// Asymmetric cut: 0→1 blocked everywhere, 1→0 open. Reachability is
	// directional.
	_, na := newNet(t, 2)
	na.Partition(0, 1, AllRails)
	if na.Reachable(0, 1) {
		t.Fatal("blocked direction reported reachable")
	}
	if !na.Reachable(1, 0) {
		t.Fatal("open direction reported unreachable")
	}
}

// TestPartitionValidation: self-partitions and bad rails panic, like
// every other malformed netsim request.
func TestPartitionValidation(t *testing.T) {
	_, n := newNet(t, 2)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("self-partition", func() { n.Partition(0, 0, 0) })
	mustPanic("bad rail", func() { n.Partition(0, 1, 2) })
	mustPanic("bad node", func() { n.Partitioned(0, 5, 0) })
}
