package netsim

import (
	"testing"
	"time"

	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

func newSwitched(t *testing.T, nodes int) (*simtime.Scheduler, *Network) {
	t.Helper()
	sched := simtime.NewScheduler()
	params := DefaultParams()
	params.Switched = true
	n, err := New(sched, topology.Dual(nodes), params, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sched, n
}

func txTime84() time.Duration {
	return time.Duration(84 * 8 * float64(time.Second) / DefaultRate)
}

func TestSwitchedUnicastTiming(t *testing.T) {
	sched, n := newSwitched(t, 3)
	var at simtime.Time
	n.SetHandler(1, func(fr Frame) { at = sched.Now() })
	if err := n.Send(0, 0, 1, make([]byte, 46)); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	// Store and forward: ingress tx + half latency + egress tx + half
	// latency.
	want := simtime.Time(0).Add(2*txTime84() + DefaultLatency)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestSwitchedDisjointFlowsDoNotContend(t *testing.T) {
	// 0→1 and 2→3 simultaneously: on a hub the second serializes
	// behind the first; on a switch both complete at the same time.
	sched, n := newSwitched(t, 4)
	var times []simtime.Time
	handler := func(fr Frame) { times = append(times, sched.Now()) }
	n.SetHandler(1, handler)
	n.SetHandler(3, handler)
	payload := make([]byte, 46)
	if err := n.Send(0, 0, 1, payload); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(2, 0, 3, payload); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(times) != 2 || times[0] != times[1] {
		t.Fatalf("disjoint switched flows not concurrent: %v", times)
	}
}

func TestSwitchedSameEgressSerializes(t *testing.T) {
	// 0→2 and 1→2 contend on node 2's egress port.
	sched, n := newSwitched(t, 3)
	var times []simtime.Time
	n.SetHandler(2, func(fr Frame) { times = append(times, sched.Now()) })
	payload := make([]byte, 46)
	if err := n.Send(0, 0, 2, payload); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 0, 2, payload); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[1]-times[0] != simtime.Time(txTime84()) {
		t.Fatalf("egress serialization gap %v, want %v", times[1].Sub(times[0]), txTime84())
	}
}

func TestSwitchedSameIngressSerializes(t *testing.T) {
	// Two frames from node 0 to different receivers share node 0's
	// ingress port but then fan out: the second arrives one tx later.
	sched, n := newSwitched(t, 3)
	arrivals := map[int]simtime.Time{}
	for node := 1; node < 3; node++ {
		node := node
		n.SetHandler(node, func(fr Frame) { arrivals[node] = sched.Now() })
	}
	payload := make([]byte, 46)
	if err := n.Send(0, 0, 1, payload); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(0, 0, 2, payload); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if got := arrivals[2] - arrivals[1]; got != simtime.Time(txTime84()) {
		t.Fatalf("ingress serialization gap %v, want %v", time.Duration(got), txTime84())
	}
}

func TestSwitchedBroadcast(t *testing.T) {
	sched, n := newSwitched(t, 4)
	got := map[int]int{}
	for node := 0; node < 4; node++ {
		node := node
		n.SetHandler(node, func(fr Frame) { got[node]++ })
	}
	if err := n.Send(1, 1, Broadcast, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if got[1] != 0 {
		t.Fatal("broadcast echoed to sender")
	}
	for _, node := range []int{0, 2, 3} {
		if got[node] != 1 {
			t.Fatalf("node %d received %d copies", node, got[node])
		}
	}
}

func TestSwitchedFailuresStillDrop(t *testing.T) {
	sched, n := newSwitched(t, 2)
	n.SetHandler(1, func(Frame) { t.Error("delivered through failure") })
	n.Fail(n.Cluster().NIC(1, 0))
	if err := n.Send(0, 0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if n.Stats(0).DroppedRxNIC != 1 {
		t.Fatalf("stats = %+v", n.Stats(0))
	}
	// Mid-flight segment failure.
	n.Restore(n.Cluster().NIC(1, 0))
	if err := n.Send(0, 0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	n.Fail(n.Cluster().Backplane(0))
	sched.Run(0)
	if n.Stats(0).DroppedSegment != 1 {
		t.Fatalf("stats = %+v", n.Stats(0))
	}
}

func TestSwitchedUtilizationUsesAggregateCapacity(t *testing.T) {
	sched, n := newSwitched(t, 4)
	n.SetHandler(1, func(Frame) {})
	rate := float64(DefaultRate)
	frames := int(rate / (84 * 8) / 2) // half-saturate node 0's ingress for 1s
	for i := 0; i < frames; i++ {
		if err := n.Send(0, 0, 1, make([]byte, 46)); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(simtime.Time(time.Second))
	u := n.Utilization(0)
	// Half of one port of a 4-port fabric = 1/8 of aggregate.
	if u < 0.115 || u > 0.135 {
		t.Fatalf("utilization = %v, want ~0.125", u)
	}
}
